#pragma once

// Turns the declarative IR into runtime objects: a microsvc::Application,
// a workload mix / navigator, and (via bench/rig's ScenarioRig) the full
// operator stack. The reverse direction — Application → TopologySpec — is
// what makes round-trip tests and `grunt_spec_check --dump-builtin`
// possible.

#include "microsvc/application.h"
#include "scenario/spec.h"
#include "workload/workload.h"

namespace grunt::scenario {

/// Builds the runtime application from a topology spec. Endpoint stages are
/// flattened to the runtime's sequential chain (calls of one stage in
/// declaration order). Throws std::invalid_argument on dangling service
/// references (naming the endpoint and service) and propagates every
/// Application::Builder validation error.
microsvc::Application BuildApplication(const TopologySpec& spec);

/// The workload's request mix resolved against a built application. An
/// empty spec mix yields the uniform mix over the app's public dynamic
/// types. Throws std::invalid_argument on unknown endpoint names.
workload::RequestMix BuildRequestMix(const microsvc::Application& app,
                                     const WorkloadSpec& spec);

/// Markov navigator for a closed-loop workload: kStationary rows all equal
/// the mix weights (stationary distribution == popularity, the idiom every
/// built-in app uses); kUniform is the uniform-transition chain.
workload::MarkovNavigator BuildNavigator(const microsvc::Application& app,
                                         const WorkloadSpec& spec);

/// Dumps a built application back into the IR (one single-call stage per
/// hop). BuildApplication(TopologyFromApplication(app)) is structurally
/// identical to `app` — the round-trip invariant the tests pin.
TopologySpec TopologyFromApplication(const microsvc::Application& app);

}  // namespace grunt::scenario
