#pragma once

// Scenario registry: the named catalogue behind `--scenario=<name|file>`.
// Builtins are spec factories (so they honor the current code's defaults);
// anything that is not a builtin name is resolved as a spec-file path.

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.h"

namespace grunt::scenario {

struct RegisteredScenario {
  std::string name;
  std::string description;
  std::function<ScenarioSpec()> make;
};

/// The built-in scenarios, in listing order: the two hand-modeled apps plus
/// the three paper-scale generated ones (Table IV's App.1-3, seed = size).
const std::vector<RegisteredScenario>& BuiltinScenarios();

/// Builds a builtin by name; nullopt if `name` is not registered.
std::optional<ScenarioSpec> MakeBuiltin(std::string_view name);

/// Resolves a `--scenario` argument: a builtin name, else a spec-file path.
/// Throws std::invalid_argument / json::Error with context on failure.
ScenarioSpec ResolveScenario(const std::string& name_or_path);

/// Human-readable catalogue, one "name - description" line per builtin
/// (the body of `--list-scenarios`).
std::string ListScenariosText();

}  // namespace grunt::scenario
