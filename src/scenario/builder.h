#pragma once

// SpecBuilder: the one shared topology-construction utility behind every
// built-in app. Before the scenario layer, socialnetwork.cpp,
// hotelreservation.cpp and mubench.cpp each carried their own copy-pasted
// `svc`/`type` lambdas (service sizing + admission stamping, fan-in stage
// construction, static endpoints); this class is that logic, once.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/spec.h"

namespace grunt::scenario {

/// Services with at least this many threads per replica are gateways:
/// effectively un-overflowable slot pools that never load-shed (the
/// exploited queues are always the small backend pools behind them).
inline constexpr std::int32_t kGatewayThreads = 1024;

/// Scales a mean demand in milliseconds by a cloud capacity factor (faster
/// cloud → shorter demand), mirroring the original per-app `D()` helpers.
SimDuration ScaledDemand(double ms, double capacity_scale);

class SpecBuilder {
 public:
  explicit SpecBuilder(std::string name);

  SpecBuilder& SetNetLatency(SimDuration lat);
  SpecBuilder& SetServiceTimeDist(microsvc::ServiceTimeDist dist);
  SpecBuilder& SetDefaultRpc(const std::optional<microsvc::RpcPolicy>& rpc);
  /// Admission control (load shedding + per-caller breakers) stamped onto
  /// every subsequently added backend service. Gateways (threads >=
  /// kGatewayThreads) never shed, matching the apps' long-standing rule.
  SpecBuilder& SetBackendAdmission(std::int32_t max_queue_per_replica,
                                   std::int32_t breaker_threshold,
                                   SimDuration breaker_cooldown);
  /// Graceful-degradation deployment (bulkhead quota, adaptive limiter,
  /// deadline shedding) stamped onto every subsequently added backend
  /// service — the same backend-only rule as SetBackendAdmission.
  SpecBuilder& SetBackendDegradation(
      std::int32_t bulkhead_per_downstream,
      const microsvc::AdaptiveLimitSpec& adaptive_limit,
      const microsvc::DeadlineShedSpec& deadline_shed);
  /// End-to-end deadline stamped onto every subsequently added dynamic
  /// endpoint (static endpoints never reach the backend). 0 = none.
  SpecBuilder& SetEndpointDeadline(SimDuration deadline);

  /// Adds a service; `max_replicas` 0 means `replicas * 8` (the app idiom).
  /// Returns the service name (specs reference services by name).
  const std::string& AddService(std::string name, std::int32_t threads,
                                std::int32_t cores, std::int32_t replicas,
                                std::int32_t max_replicas = 0);

  /// Adds a sequential-chain endpoint: each call becomes its own stage.
  void AddChainEndpoint(std::string name, std::vector<CallSpec> calls,
                        double heavy_multiplier, std::int64_t request_bytes,
                        std::int64_t response_bytes);

  /// Adds an endpoint with explicit (possibly fan-out) stages.
  void AddStagedEndpoint(std::string name, std::vector<StageSpec> stages,
                         double heavy_multiplier, std::int64_t request_bytes,
                         std::int64_t response_bytes);

  /// Adds a static edge-served endpoint (no backend stages).
  void AddStaticEndpoint(std::string name, std::int64_t request_bytes,
                         std::int64_t response_bytes);

  std::size_t service_count() const { return spec_.services.size(); }
  std::size_t endpoint_count() const { return spec_.endpoints.size(); }

  TopologySpec Build() &&;

 private:
  TopologySpec spec_;
  std::int32_t max_queue_per_replica_ = 0;
  std::int32_t breaker_threshold_ = 0;
  SimDuration breaker_cooldown_ = Ms(500);
  std::int32_t bulkhead_per_downstream_ = 0;
  microsvc::AdaptiveLimitSpec adaptive_limit_;
  microsvc::DeadlineShedSpec deadline_shed_;
  SimDuration endpoint_deadline_ = 0;
};

}  // namespace grunt::scenario
