#include "scenario/spec.h"

#include <initializer_list>
#include <stdexcept>
#include <string_view>

#include "util/json.h"

namespace grunt::scenario {

namespace {

using json::Value;

// ---------------------------------------------------------------- helpers --

/// Rejects unknown keys: a typo in a hand-written spec must fail loudly.
void CheckKeys(const Value& obj, std::initializer_list<std::string_view> allowed,
               const std::string& where) {
  for (const auto& [key, value] : obj.AsObject()) {
    bool known = false;
    for (std::string_view a : allowed) known = known || key == a;
    if (!known) {
      throw std::invalid_argument("unknown key \"" + key + "\" in " + where);
    }
  }
}

SimDuration GetDuration(const Value& obj, std::string_view key,
                        SimDuration fallback) {
  const Value* v = obj.Find(key);
  return v ? static_cast<SimDuration>(v->AsInt64()) : fallback;
}

double GetDouble(const Value& obj, std::string_view key, double fallback) {
  const Value* v = obj.Find(key);
  return v ? v->AsDouble() : fallback;
}

std::int64_t GetInt(const Value& obj, std::string_view key,
                    std::int64_t fallback) {
  const Value* v = obj.Find(key);
  return v ? v->AsInt64() : fallback;
}

std::int32_t GetInt32(const Value& obj, std::string_view key,
                      std::int32_t fallback) {
  return static_cast<std::int32_t>(GetInt(obj, key, fallback));
}

bool GetBool(const Value& obj, std::string_view key, bool fallback) {
  const Value* v = obj.Find(key);
  return v ? v->AsBool() : fallback;
}

std::string GetString(const Value& obj, std::string_view key,
                      const std::string& fallback) {
  const Value* v = obj.Find(key);
  return v ? v->AsString() : fallback;
}

// ------------------------------------------------------------- rpc policy --

Value RpcToJson(const microsvc::RpcPolicy& p) {
  Value v;
  v.Set("timeout_us", Value(p.timeout));
  v.Set("max_retries", Value(p.max_retries));
  v.Set("backoff_base_us", Value(p.backoff_base));
  v.Set("backoff_multiplier", Value(p.backoff_multiplier));
  v.Set("jitter", Value(p.jitter));
  // Conditional so pre-existing spec files stay byte-identical.
  if (p.nominal_rtt != 0) v.Set("nominal_rtt_us", Value(p.nominal_rtt));
  return v;
}

microsvc::RpcPolicy RpcFromJson(const Value& v, const std::string& where) {
  CheckKeys(v,
            {"timeout_us", "max_retries", "backoff_base_us",
             "backoff_multiplier", "jitter", "nominal_rtt_us"},
            where);
  microsvc::RpcPolicy p;
  p.timeout = GetDuration(v, "timeout_us", p.timeout);
  p.max_retries = GetInt32(v, "max_retries", p.max_retries);
  p.backoff_base = GetDuration(v, "backoff_base_us", p.backoff_base);
  p.backoff_multiplier = GetDouble(v, "backoff_multiplier",
                                   p.backoff_multiplier);
  p.jitter = GetDouble(v, "jitter", p.jitter);
  p.nominal_rtt = GetDuration(v, "nominal_rtt_us", p.nominal_rtt);
  return p;
}

// --------------------------------------------------------------- services --

Value ServiceToJson(const microsvc::ServiceSpec& s) {
  const microsvc::ServiceSpec defaults;
  Value v;
  v.Set("name", Value(s.name));
  v.Set("threads_per_replica", Value(s.threads_per_replica));
  v.Set("cores_per_replica", Value(s.cores_per_replica));
  v.Set("initial_replicas", Value(s.initial_replicas));
  v.Set("max_replicas", Value(s.max_replicas));
  if (s.max_queue_per_replica != defaults.max_queue_per_replica) {
    v.Set("max_queue_per_replica", Value(s.max_queue_per_replica));
  }
  if (s.breaker_threshold != defaults.breaker_threshold) {
    v.Set("breaker_threshold", Value(s.breaker_threshold));
  }
  if (s.breaker_cooldown != defaults.breaker_cooldown) {
    v.Set("breaker_cooldown_us", Value(s.breaker_cooldown));
  }
  if (s.bulkhead_per_downstream != defaults.bulkhead_per_downstream) {
    v.Set("bulkhead_per_downstream", Value(s.bulkhead_per_downstream));
  }
  if (s.adaptive_limit != defaults.adaptive_limit) {
    const microsvc::AdaptiveLimitSpec al_defaults;
    Value al;
    al.Set("enabled", Value(s.adaptive_limit.enabled));
    if (s.adaptive_limit.min_limit != al_defaults.min_limit) {
      al.Set("min_limit", Value(s.adaptive_limit.min_limit));
    }
    if (s.adaptive_limit.max_limit != al_defaults.max_limit) {
      al.Set("max_limit", Value(s.adaptive_limit.max_limit));
    }
    if (s.adaptive_limit.rtt_tolerance != al_defaults.rtt_tolerance) {
      al.Set("rtt_tolerance", Value(s.adaptive_limit.rtt_tolerance));
    }
    if (s.adaptive_limit.decrease_factor != al_defaults.decrease_factor) {
      al.Set("decrease_factor", Value(s.adaptive_limit.decrease_factor));
    }
    v.Set("adaptive_limit", std::move(al));
  }
  if (s.deadline_shed != defaults.deadline_shed) {
    const microsvc::DeadlineShedSpec ds_defaults;
    Value ds;
    ds.Set("enabled", Value(s.deadline_shed.enabled));
    if (s.deadline_shed.margin != ds_defaults.margin) {
      ds.Set("margin", Value(s.deadline_shed.margin));
    }
    if (s.deadline_shed.depth_weight != ds_defaults.depth_weight) {
      ds.Set("depth_weight", Value(s.deadline_shed.depth_weight));
    }
    v.Set("deadline_shed", std::move(ds));
  }
  return v;
}

microsvc::ServiceSpec ServiceFromJson(const Value& v) {
  const std::string name = GetString(v, "name", "");
  const std::string where = "service \"" + name + "\"";
  CheckKeys(v,
            {"name", "threads_per_replica", "cores_per_replica",
             "initial_replicas", "max_replicas", "max_queue_per_replica",
             "breaker_threshold", "breaker_cooldown_us",
             "bulkhead_per_downstream", "adaptive_limit", "deadline_shed"},
            where);
  microsvc::ServiceSpec s;
  s.name = name;
  s.threads_per_replica =
      GetInt32(v, "threads_per_replica", s.threads_per_replica);
  s.cores_per_replica = GetInt32(v, "cores_per_replica", s.cores_per_replica);
  s.initial_replicas = GetInt32(v, "initial_replicas", s.initial_replicas);
  s.max_replicas = GetInt32(v, "max_replicas", s.max_replicas);
  s.max_queue_per_replica =
      GetInt32(v, "max_queue_per_replica", s.max_queue_per_replica);
  s.breaker_threshold = GetInt32(v, "breaker_threshold", s.breaker_threshold);
  s.breaker_cooldown = GetDuration(v, "breaker_cooldown_us",
                                   s.breaker_cooldown);
  s.bulkhead_per_downstream =
      GetInt32(v, "bulkhead_per_downstream", s.bulkhead_per_downstream);
  if (const Value* al = v.Find("adaptive_limit")) {
    CheckKeys(*al,
              {"enabled", "min_limit", "max_limit", "rtt_tolerance",
               "decrease_factor"},
              where + " adaptive_limit");
    s.adaptive_limit.enabled =
        GetBool(*al, "enabled", s.adaptive_limit.enabled);
    s.adaptive_limit.min_limit =
        GetInt32(*al, "min_limit", s.adaptive_limit.min_limit);
    s.adaptive_limit.max_limit =
        GetInt32(*al, "max_limit", s.adaptive_limit.max_limit);
    s.adaptive_limit.rtt_tolerance =
        GetDouble(*al, "rtt_tolerance", s.adaptive_limit.rtt_tolerance);
    s.adaptive_limit.decrease_factor =
        GetDouble(*al, "decrease_factor", s.adaptive_limit.decrease_factor);
  }
  if (const Value* ds = v.Find("deadline_shed")) {
    CheckKeys(*ds, {"enabled", "margin", "depth_weight"},
              where + " deadline_shed");
    s.deadline_shed.enabled = GetBool(*ds, "enabled", s.deadline_shed.enabled);
    s.deadline_shed.margin = GetDouble(*ds, "margin", s.deadline_shed.margin);
    s.deadline_shed.depth_weight =
        GetDouble(*ds, "depth_weight", s.deadline_shed.depth_weight);
  }
  return s;
}

// -------------------------------------------------------------- endpoints --

Value CallToJson(const CallSpec& c) {
  Value v;
  v.Set("service", Value(c.service));
  v.Set("cpu_demand_us", Value(c.cpu_demand));
  if (c.post_demand != 0) v.Set("post_demand_us", Value(c.post_demand));
  if (c.rpc) v.Set("rpc", RpcToJson(*c.rpc));
  return v;
}

CallSpec CallFromJson(const Value& v, const std::string& where) {
  CheckKeys(v, {"service", "cpu_demand_us", "post_demand_us", "rpc"}, where);
  CallSpec c;
  c.service = v.At("service").AsString();
  c.cpu_demand = GetDuration(v, "cpu_demand_us", 0);
  c.post_demand = GetDuration(v, "post_demand_us", 0);
  if (const Value* rpc = v.Find("rpc")) {
    c.rpc = RpcFromJson(*rpc, where + " rpc");
  }
  return c;
}

/// A single-call stage dumps as the call object itself; a fan-out stage
/// dumps as {"parallel": [call, ...]}.
Value StageToJson(const StageSpec& stage) {
  if (stage.calls.size() == 1) return CallToJson(stage.calls[0]);
  json::Array calls;
  for (const auto& c : stage.calls) calls.push_back(CallToJson(c));
  Value v;
  v.Set("parallel", Value(std::move(calls)));
  return v;
}

StageSpec StageFromJson(const Value& v, const std::string& where) {
  StageSpec stage;
  if (const Value* par = v.Find("parallel")) {
    CheckKeys(v, {"parallel"}, where);
    for (const Value& c : par->AsArray()) {
      stage.calls.push_back(CallFromJson(c, where));
    }
    if (stage.calls.empty()) {
      throw std::invalid_argument("empty parallel stage in " + where);
    }
  } else {
    stage.calls.push_back(CallFromJson(v, where));
  }
  return stage;
}

Value EndpointToJson(const EndpointSpec& e) {
  Value v;
  v.Set("name", Value(e.name));
  if (e.is_static) v.Set("static", Value(true));
  if (e.heavy_multiplier != 1.0) {
    v.Set("heavy_multiplier", Value(e.heavy_multiplier));
  }
  v.Set("request_bytes", Value(e.request_bytes));
  v.Set("response_bytes", Value(e.response_bytes));
  if (e.deadline != 0) v.Set("deadline_us", Value(e.deadline));
  if (!e.stages.empty()) {
    json::Array stages;
    for (const auto& s : e.stages) stages.push_back(StageToJson(s));
    v.Set("stages", Value(std::move(stages)));
  }
  return v;
}

EndpointSpec EndpointFromJson(const Value& v) {
  EndpointSpec e;
  e.name = GetString(v, "name", "");
  const std::string where = "endpoint \"" + e.name + "\"";
  CheckKeys(v,
            {"name", "static", "heavy_multiplier", "request_bytes",
             "response_bytes", "deadline_us", "stages"},
            where);
  e.is_static = GetBool(v, "static", false);
  e.heavy_multiplier = GetDouble(v, "heavy_multiplier", 1.0);
  e.request_bytes = GetInt(v, "request_bytes", e.request_bytes);
  e.response_bytes = GetInt(v, "response_bytes", e.response_bytes);
  e.deadline = GetDuration(v, "deadline_us", 0);
  if (const Value* stages = v.Find("stages")) {
    for (const Value& s : stages->AsArray()) {
      e.stages.push_back(StageFromJson(s, where));
    }
  }
  return e;
}

// --------------------------------------------------------------- topology --

const char* DistName(microsvc::ServiceTimeDist d) {
  return d == microsvc::ServiceTimeDist::kDeterministic ? "deterministic"
                                                        : "exponential";
}

microsvc::ServiceTimeDist DistFromName(const std::string& s) {
  if (s == "deterministic") return microsvc::ServiceTimeDist::kDeterministic;
  if (s == "exponential") return microsvc::ServiceTimeDist::kExponential;
  throw std::invalid_argument("unknown service_time_dist: \"" + s + "\"");
}

Value TopologyToJson(const TopologySpec& t) {
  Value v;
  v.Set("name", Value(t.name));
  v.Set("net_latency_us", Value(t.net_latency));
  v.Set("service_time_dist", Value(DistName(t.dist)));
  if (t.default_rpc) v.Set("default_rpc", RpcToJson(*t.default_rpc));
  json::Array services;
  for (const auto& s : t.services) services.push_back(ServiceToJson(s));
  v.Set("services", Value(std::move(services)));
  json::Array endpoints;
  for (const auto& e : t.endpoints) endpoints.push_back(EndpointToJson(e));
  v.Set("endpoints", Value(std::move(endpoints)));
  return v;
}

TopologySpec TopologyFromJson(const Value& v) {
  CheckKeys(v,
            {"name", "net_latency_us", "service_time_dist", "default_rpc",
             "services", "endpoints"},
            "topology");
  TopologySpec t;
  t.name = GetString(v, "name", t.name);
  t.net_latency = GetDuration(v, "net_latency_us", t.net_latency);
  if (const Value* dist = v.Find("service_time_dist")) {
    t.dist = DistFromName(dist->AsString());
  }
  if (const Value* rpc = v.Find("default_rpc")) {
    t.default_rpc = RpcFromJson(*rpc, "topology default_rpc");
  }
  for (const Value& s : v.At("services").AsArray()) {
    t.services.push_back(ServiceFromJson(s));
  }
  for (const Value& e : v.At("endpoints").AsArray()) {
    t.endpoints.push_back(EndpointFromJson(e));
  }
  return t;
}

// --------------------------------------------------------------- workload --

Value WorkloadToJson(const WorkloadSpec& w) {
  Value v;
  if (w.kind == WorkloadSpec::Kind::kClosedLoop) {
    v.Set("kind", Value("closed"));
    v.Set("users", Value(w.users));
    v.Set("think_mean_us", Value(w.think_mean));
    v.Set("navigator",
          Value(w.navigator == WorkloadSpec::Navigator::kUniform
                    ? "uniform"
                    : "stationary"));
  } else {
    v.Set("kind", Value("open"));
    v.Set("rate", Value(w.rate));
  }
  if (!w.mix.empty()) {
    json::Array mix;
    for (const auto& m : w.mix) {
      Value entry;
      entry.Set("endpoint", Value(m.endpoint));
      entry.Set("weight", Value(m.weight));
      mix.push_back(std::move(entry));
    }
    v.Set("mix", Value(std::move(mix)));
  }
  return v;
}

WorkloadSpec WorkloadFromJson(const Value& v) {
  CheckKeys(v, {"kind", "users", "think_mean_us", "navigator", "rate", "mix"},
            "workload");
  WorkloadSpec w;
  const std::string kind = GetString(v, "kind", "closed");
  if (kind == "closed") {
    w.kind = WorkloadSpec::Kind::kClosedLoop;
  } else if (kind == "open") {
    w.kind = WorkloadSpec::Kind::kOpenLoop;
  } else {
    throw std::invalid_argument("unknown workload kind: \"" + kind + "\"");
  }
  w.users = GetInt32(v, "users", w.users);
  w.think_mean = GetDuration(v, "think_mean_us", w.think_mean);
  w.rate = GetDouble(v, "rate", w.rate);
  const std::string nav = GetString(v, "navigator", "stationary");
  if (nav == "stationary") {
    w.navigator = WorkloadSpec::Navigator::kStationary;
  } else if (nav == "uniform") {
    w.navigator = WorkloadSpec::Navigator::kUniform;
  } else {
    throw std::invalid_argument("unknown navigator: \"" + nav + "\"");
  }
  if (const Value* mix = v.Find("mix")) {
    for (const Value& entry : mix->AsArray()) {
      CheckKeys(entry, {"endpoint", "weight"}, "workload mix entry");
      MixEntrySpec m;
      m.endpoint = entry.At("endpoint").AsString();
      m.weight = GetDouble(entry, "weight", 1.0);
      w.mix.push_back(std::move(m));
    }
  }
  return w;
}

// -------------------------------------------------------------- operators --

Value OperatorsToJson(const OperatorSpec& o) {
  Value v;
  v.Set("coarse_granularity_us", Value(o.coarse_granularity));
  v.Set("fine_granularity_us", Value(o.fine_granularity));
  v.Set("rt_granularity_us", Value(o.rt_granularity));
  Value scaler;
  scaler.Set("enabled", Value(o.autoscaler_enabled));
  scaler.Set("up_threshold", Value(o.autoscaler.up_threshold));
  scaler.Set("down_threshold", Value(o.autoscaler.down_threshold));
  scaler.Set("window_us", Value(o.autoscaler.window));
  scaler.Set("provision_delay_us", Value(o.autoscaler.provision_delay));
  scaler.Set("cooldown_us", Value(o.autoscaler.cooldown));
  v.Set("autoscaler", std::move(scaler));
  Value ids;
  ids.Set("enabled", Value(o.ids_enabled));
  ids.Set("min_inter_request_us", Value(o.ids.min_inter_request));
  ids.Set("rate_limit", Value(o.ids.rate_limit));
  ids.Set("rate_window_us", Value(o.ids.rate_window));
  ids.Set("saturation_threshold", Value(o.ids.saturation_threshold));
  ids.Set("saturation_samples", Value(o.ids.saturation_samples));
  ids.Set("degradation_rt_ms", Value(o.ids.degradation_rt_ms));
  ids.Set("min_session_requests", Value(o.ids.min_session_requests));
  v.Set("ids", std::move(ids));
  return v;
}

OperatorSpec OperatorsFromJson(const Value& v) {
  CheckKeys(v,
            {"coarse_granularity_us", "fine_granularity_us",
             "rt_granularity_us", "autoscaler", "ids"},
            "operators");
  OperatorSpec o;
  o.coarse_granularity =
      GetDuration(v, "coarse_granularity_us", o.coarse_granularity);
  o.fine_granularity =
      GetDuration(v, "fine_granularity_us", o.fine_granularity);
  o.rt_granularity = GetDuration(v, "rt_granularity_us", o.rt_granularity);
  if (const Value* scaler = v.Find("autoscaler")) {
    CheckKeys(*scaler,
              {"enabled", "up_threshold", "down_threshold", "window_us",
               "provision_delay_us", "cooldown_us"},
              "operators autoscaler");
    o.autoscaler_enabled = GetBool(*scaler, "enabled", o.autoscaler_enabled);
    o.autoscaler.up_threshold =
        GetDouble(*scaler, "up_threshold", o.autoscaler.up_threshold);
    o.autoscaler.down_threshold =
        GetDouble(*scaler, "down_threshold", o.autoscaler.down_threshold);
    o.autoscaler.window = GetDuration(*scaler, "window_us",
                                      o.autoscaler.window);
    o.autoscaler.provision_delay =
        GetDuration(*scaler, "provision_delay_us",
                    o.autoscaler.provision_delay);
    o.autoscaler.cooldown =
        GetDuration(*scaler, "cooldown_us", o.autoscaler.cooldown);
  }
  if (const Value* ids = v.Find("ids")) {
    CheckKeys(*ids,
              {"enabled", "min_inter_request_us", "rate_limit",
               "rate_window_us", "saturation_threshold", "saturation_samples",
               "degradation_rt_ms", "min_session_requests"},
              "operators ids");
    o.ids_enabled = GetBool(*ids, "enabled", o.ids_enabled);
    o.ids.min_inter_request =
        GetDuration(*ids, "min_inter_request_us", o.ids.min_inter_request);
    o.ids.rate_limit = GetInt(*ids, "rate_limit", o.ids.rate_limit);
    o.ids.rate_window = GetDuration(*ids, "rate_window_us", o.ids.rate_window);
    o.ids.saturation_threshold =
        GetDouble(*ids, "saturation_threshold", o.ids.saturation_threshold);
    o.ids.saturation_samples =
        GetInt32(*ids, "saturation_samples", o.ids.saturation_samples);
    o.ids.degradation_rt_ms =
        GetDouble(*ids, "degradation_rt_ms", o.ids.degradation_rt_ms);
    o.ids.min_session_requests =
        GetInt32(*ids, "min_session_requests", o.ids.min_session_requests);
  }
  return o;
}

ScenarioSpec ScenarioFromJson(const Value& v) {
  CheckKeys(v,
            {"grunt_scenario", "name", "description", "topology", "workload",
             "operators"},
            "scenario");
  if (GetInt(v, "grunt_scenario", 1) != 1) {
    throw std::invalid_argument("unsupported grunt_scenario version");
  }
  ScenarioSpec spec;
  spec.name = GetString(v, "name", "");
  spec.description = GetString(v, "description", "");
  spec.topology = TopologyFromJson(v.At("topology"));
  if (spec.name.empty()) spec.name = spec.topology.name;
  if (const Value* w = v.Find("workload")) {
    spec.workload = WorkloadFromJson(*w);
  }
  if (const Value* o = v.Find("operators")) {
    spec.operators = OperatorsFromJson(*o);
  }
  return spec;
}

}  // namespace

// ---------------------------------------------------------- entry points --

std::string DumpScenario(const ScenarioSpec& spec) {
  Value v;
  v.Set("grunt_scenario", Value(1));
  v.Set("name", Value(spec.name));
  if (!spec.description.empty()) {
    v.Set("description", Value(spec.description));
  }
  v.Set("topology", TopologyToJson(spec.topology));
  v.Set("workload", WorkloadToJson(spec.workload));
  v.Set("operators", OperatorsToJson(spec.operators));
  return v.Dump();
}

std::string DumpTopology(const TopologySpec& spec) {
  return TopologyToJson(spec).Dump();
}

ScenarioSpec ParseScenario(const std::string& text) {
  return ScenarioFromJson(json::Parse(text));
}

TopologySpec ParseTopology(const std::string& text) {
  return TopologyFromJson(json::Parse(text));
}

ScenarioSpec LoadScenarioFile(const std::string& path) {
  const Value v = json::ParseFile(path);
  try {
    return ScenarioFromJson(v);
  } catch (const std::exception& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void SaveScenarioFile(const std::string& path, const ScenarioSpec& spec) {
  json::WriteFile(path, json::Parse(DumpScenario(spec)));
}

}  // namespace grunt::scenario
