#include "scenario/builtin_apps.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "scenario/builder.h"

namespace grunt::scenario {

namespace {

WorkloadSpec ClosedLoop(std::int32_t users,
                        std::vector<MixEntrySpec> mix) {
  WorkloadSpec wl;
  wl.kind = WorkloadSpec::Kind::kClosedLoop;
  wl.users = users;
  wl.mix = std::move(mix);
  return wl;
}

}  // namespace

ScenarioSpec SocialNetworkScenario(const DeploymentParams& p) {
  if (p.replica_scale < 1 || p.capacity_scale <= 0 || p.queue_scale <= 0) {
    throw std::invalid_argument("SocialNetworkScenario: bad params");
  }
  SpecBuilder b("socialnetwork");
  b.SetServiceTimeDist(p.dist).SetNetLatency(Us(400));
  b.SetDefaultRpc(p.default_rpc);
  b.SetBackendAdmission(p.max_queue_per_replica, p.breaker_threshold,
                        p.breaker_cooldown);
  b.SetBackendDegradation(p.bulkhead_per_downstream, p.adaptive_limit,
                          p.deadline_shed);
  b.SetEndpointDeadline(p.endpoint_deadline);

  const std::int32_t r = p.replica_scale;
  // queue_scale applies to backend services; the gateway keeps its huge
  // pool (it is never the exploited queue).
  auto svc = [&](const char* name, std::int32_t threads, std::int32_t cores,
                 std::int32_t replicas) -> std::string {
    const std::int32_t eff =
        threads >= kGatewayThreads
            ? threads
            : std::max<std::int32_t>(
                  4, static_cast<std::int32_t>(threads * p.queue_scale));
    return b.AddService(name, eff, cores, replicas);
  };

  // --- gateway (well provisioned: overflow never reaches its slot pool) ---
  const auto nginx = svc("nginx", 4096, 16, 1);

  // --- compose fan-in (dependency group A; shared UM: compose-post) ---
  const auto compose_post = svc("compose-post", 20, 4, r);
  const auto unique_id = svc("unique-id", 96, 2, r);
  const auto text_service = svc("text-service", 64, 2, r);
  const auto media_service = svc("media-service", 64, 2, r);
  const auto url_shorten = svc("url-shorten", 64, 2, r);
  const auto user_mention = svc("user-mention", 64, 2, r);
  const auto post_storage = svc("post-storage", 128, 4, r);
  const auto poll_service = svc("poll-service", 64, 2, r);

  // --- home-timeline read fan-in (group B; shared UM: home-timeline) ---
  const auto home_timeline = svc("home-timeline", 20, 4, r);
  const auto social_graph = svc("social-graph", 64, 2, r);
  const auto media_frontend = svc("media-frontend", 64, 2, r);
  const auto recommender = svc("recommender", 64, 2, r);

  // --- user-timeline read fan-in (group C; shared UM: user-timeline) ---
  const auto user_timeline = svc("user-timeline", 20, 4, r);
  const auto user_service = svc("user-service", 64, 2, r);
  const auto follow_service = svc("follow-service", 64, 2, r);
  const auto profile_service = svc("profile-service", 64, 2, r);

  // --- storage / auxiliary backends ---
  const auto media_storage = svc("media-storage", 128, 2, r);
  const auto user_db = svc("user-db", 128, 4, r);
  const auto social_graph_db = svc("social-graph-db", 128, 2, r);
  const auto auth_service = svc("auth-service", 64, 2, r);
  const auto search_service = svc("search-service", 64, 2, r);
  const auto post_cache = svc("post-cache", 128, 2, r);
  const auto timeline_cache = svc("timeline-cache", 128, 2, r);
  const auto user_cache = svc("user-cache", 128, 2, r);
  const auto media_cache = svc("media-cache", 128, 2, r);

  const double cs = p.capacity_scale;
  auto D = [cs](double ms) { return ScaledDemand(ms, cs); };
  auto type = [&](const char* name, std::vector<CallSpec> calls, double heavy,
                  std::int64_t req_bytes, std::int64_t resp_bytes) {
    if (p.client_rpc) calls[0].rpc = p.client_rpc;
    if (p.edge_rpc && calls.size() > 1) calls[1].rpc = p.edge_rpc;
    b.AddChainEndpoint(name, std::move(calls), heavy, req_bytes, resp_bytes);
  };

  // Group A: compose paths. compose-post is the shared upstream service;
  // each variant bottlenecks on a different downstream worker.
  type("compose/text",
       {{nginx, D(0.3), 0},
        {compose_post, D(1.5), D(0.7)},
        {unique_id, D(0.4), 0},
        {text_service, D(9.0), D(1.0)},
        {post_storage, D(1.2), 0}},
       1.6, 900, 1500);
  type("compose/media",
       {{nginx, D(0.3), 0},
        {compose_post, D(1.5), D(0.7)},
        {media_service, D(10.0), D(1.0)},
        {media_storage, D(1.5), 0}},
       1.6, 4000, 1600);
  type("compose/url",
       {{nginx, D(0.3), 0},
        {compose_post, D(1.4), D(0.7)},
        {url_shorten, D(9.0), D(0.8)},
        {post_storage, D(1.0), 0}},
       1.6, 1000, 1400);
  type("compose/mention",
       {{nginx, D(0.3), 0},
        {compose_post, D(1.5), D(0.7)},
        {user_mention, D(9.5), D(0.8)},
        {user_db, D(0.8), 0}},
       1.6, 1100, 1400);
  // The "upstream" path of the group: its bottleneck is compose-post itself,
  // giving it a sequential dependency over the other compose paths (it can
  // trigger an execution blocking effect directly, Definition II).
  type("compose/poll",
       {{nginx, D(0.3), 0},
        {compose_post, D(24.0), D(1.5)},
        {poll_service, D(1.0), 0}},
       1.6, 1200, 1300);

  // Group B: home-timeline reads.
  type("home/read",
       {{nginx, D(0.3), 0},
        {home_timeline, D(1.4), D(0.6)},
        {social_graph, D(9.0), D(0.8)},
        {post_cache, D(0.8), 0}},
       1.6, 600, 9000);
  type("home/media",
       {{nginx, D(0.3), 0},
        {home_timeline, D(1.4), D(0.6)},
        {media_frontend, D(10.0), D(0.8)},
        {media_cache, D(0.8), 0}},
       1.6, 600, 14000);
  type("home/recommend",
       {{nginx, D(0.3), 0},
        {home_timeline, D(1.4), D(0.6)},
        {recommender, D(11.0), D(0.8)},
        {user_cache, D(0.6), 0}},
       1.6, 700, 7000);

  // Group C: user-timeline reads.
  type("user/read",
       {{nginx, D(0.3), 0},
        {user_timeline, D(1.4), D(0.6)},
        {user_service, D(9.0), D(0.8)},
        {timeline_cache, D(0.8), 0}},
       1.6, 600, 8000);
  type("user/follow",
       {{nginx, D(0.3), 0},
        {user_timeline, D(1.4), D(0.6)},
        {follow_service, D(9.5), D(0.8)},
        {social_graph_db, D(0.8), 0}},
       1.6, 700, 1200);
  type("user/profile",
       {{nginx, D(0.3), 0},
        {user_timeline, D(1.4), D(0.6)},
        {profile_service, D(10.0), D(0.8)},
        {user_db, D(0.7), 0}},
       1.6, 600, 6000);

  // Independent singleton paths: share only nginx / leaf storage with the
  // groups, and the gateway is too well provisioned to overflow.
  type("auth/login",
       {{nginx, D(0.3), 0},
        {auth_service, D(6.0), D(0.8)},
        {user_cache, D(0.6), 0}},
       1.5, 500, 900);
  type("search",
       {{nginx, D(0.3), 0},
        {search_service, D(8.0), D(0.8)},
        {post_cache, D(0.7), 0}},
       1.6, 600, 5000);

  // Static asset served at the edge; excluded by the profiler.
  b.AddStaticEndpoint("static/logo.png", 400, 25000);

  ScenarioSpec scenario;
  scenario.name = "socialnetwork";
  scenario.description =
      "DeathStarBench SocialNetwork under closed-loop users (paper Sec V-B "
      "reference deployment)";
  scenario.topology = std::move(b).Build();
  // Read-leaning social-media mix, balanced so that at the reference
  // workload (7000 users ~= 1000 req/s) every worker bottleneck sits at a
  // realistic 35-55% utilization (Sec V-B: clouds run below saturation).
  scenario.workload = ClosedLoop(p.users > 0 ? p.users : 7000,
                                 {{"home/read", 10},
                                  {"home/media", 9},
                                  {"home/recommend", 8},
                                  {"user/read", 9},
                                  {"user/follow", 8},
                                  {"user/profile", 8},
                                  {"compose/text", 9},
                                  {"compose/media", 8},
                                  {"compose/url", 7},
                                  {"compose/mention", 7},
                                  {"compose/poll", 6},
                                  {"auth/login", 4},
                                  {"search", 3},
                                  {"static/logo.png", 1}});
  return scenario;
}

ScenarioSpec HotelReservationScenario(const DeploymentParams& p) {
  if (p.replica_scale < 1 || p.capacity_scale <= 0) {
    throw std::invalid_argument("HotelReservationScenario: bad params");
  }
  SpecBuilder b("hotelreservation");
  b.SetServiceTimeDist(p.dist).SetNetLatency(Us(400));
  b.SetDefaultRpc(p.default_rpc);
  b.SetBackendAdmission(p.max_queue_per_replica, p.breaker_threshold,
                        p.breaker_cooldown);
  b.SetBackendDegradation(p.bulkhead_per_downstream, p.adaptive_limit,
                          p.deadline_shed);
  b.SetEndpointDeadline(p.endpoint_deadline);

  const std::int32_t r = p.replica_scale;
  auto svc = [&](const char* name, std::int32_t threads, std::int32_t cores,
                 std::int32_t replicas) {
    return b.AddService(name, threads, cores, replicas);
  };

  const auto frontend = svc("frontend", 4096, 16, 1);

  // Search fan-in (group A; shared UM: search).
  const auto search = svc("search", 20, 4, r);
  const auto geo = svc("geo", 64, 2, r);
  const auto rate = svc("rate", 64, 2, r);
  const auto recommendation = svc("recommendation", 64, 2, r);
  const auto hotel_db = svc("hotel-db", 128, 4, r);
  const auto geo_cache = svc("geo-cache", 128, 2, r);
  const auto rate_cache = svc("rate-cache", 128, 2, r);

  // Reservation fan-in (group B; shared UM: reservation).
  const auto reservation = svc("reservation", 20, 4, r);
  const auto availability = svc("availability", 64, 2, r);
  const auto payment = svc("payment", 64, 2, r);
  const auto booking_records = svc("booking-records", 64, 2, r);
  const auto booking_db = svc("booking-db", 128, 4, r);
  const auto payment_gateway = svc("payment-gateway", 128, 2, r);

  // Independent paths + backends.
  const auto user = svc("user", 64, 2, r);
  const auto profile = svc("profile", 64, 2, r);
  const auto user_db = svc("user-db", 128, 2, r);
  const auto profile_db = svc("profile-db", 128, 2, r);

  const double cs = p.capacity_scale;
  auto D = [cs](double ms) { return ScaledDemand(ms, cs); };
  auto type = [&](const char* name, std::vector<CallSpec> calls, double heavy,
                  std::int64_t req_bytes, std::int64_t resp_bytes) {
    if (p.client_rpc) calls[0].rpc = p.client_rpc;
    if (p.edge_rpc && calls.size() > 1) calls[1].rpc = p.edge_rpc;
    b.AddChainEndpoint(name, std::move(calls), heavy, req_bytes, resp_bytes);
  };

  // Group A: searches (distinct worker bottlenecks behind `search`).
  type("search/nearby",
       {{frontend, D(0.3), 0},
        {search, D(1.5), D(0.6)},
        {geo, D(9.0), D(0.8)},
        {geo_cache, D(0.8), 0}},
       1.6, 700, 9000);
  type("search/rates",
       {{frontend, D(0.3), 0},
        {search, D(1.5), D(0.6)},
        {rate, D(10.0), D(0.8)},
        {rate_cache, D(0.8), 0}},
       1.6, 700, 7000);
  type("search/recommend",
       {{frontend, D(0.3), 0},
        {search, D(1.5), D(0.6)},
        {recommendation, D(10.5), D(0.8)},
        {hotel_db, D(0.8), 0}},
       1.6, 700, 8000);
  // The "upstream" member: a complex multi-criteria search that bottlenecks
  // on the search frontend itself (sequential dependency source).
  type("search/complex",
       {{frontend, D(0.3), 0},
        {search, D(24.0), D(1.5)},
        {hotel_db, D(1.0), 0}},
       1.6, 900, 11000);

  // Group B: reservations.
  type("reserve/availability",
       {{frontend, D(0.3), 0},
        {reservation, D(1.5), D(0.6)},
        {availability, D(9.5), D(0.8)},
        {booking_db, D(0.8), 0}},
       1.6, 800, 3000);
  type("reserve/book",
       {{frontend, D(0.3), 0},
        {reservation, D(1.6), D(0.7)},
        {payment, D(10.0), D(0.8)},
        {payment_gateway, D(1.0), 0}},
       1.6, 1200, 1500);
  type("reserve/history",
       {{frontend, D(0.3), 0},
        {reservation, D(1.5), D(0.6)},
        {booking_records, D(9.0), D(0.8)},
        {booking_db, D(0.7), 0}},
       1.6, 600, 5000);

  // Independent singleton paths.
  type("user/login",
       {{frontend, D(0.3), 0},
        {user, D(7.0), D(0.8)},
        {user_db, D(0.6), 0}},
       1.5, 500, 900);
  type("profile/view",
       {{frontend, D(0.3), 0},
        {profile, D(8.0), D(0.8)},
        {profile_db, D(0.7), 0}},
       1.6, 500, 6000);

  b.AddStaticEndpoint("static/map-tile.png", 400, 60000);

  ScenarioSpec scenario;
  scenario.name = "hotelreservation";
  scenario.description =
      "HotelReservation-style travel-booking topology (two fan-in "
      "dependency groups), browse-heavy closed-loop users";
  scenario.topology = std::move(b).Build();
  // Travel sites are browse-heavy: many searches per booking.
  scenario.workload = ClosedLoop(p.users > 0 ? p.users : 5000,
                                 {{"search/nearby", 16},
                                  {"search/rates", 14},
                                  {"search/recommend", 12},
                                  {"search/complex", 6},
                                  {"reserve/availability", 13},
                                  {"reserve/book", 8},
                                  {"reserve/history", 10},
                                  {"user/login", 6},
                                  {"profile/view", 8},
                                  {"static/map-tile.png", 3}});
  return scenario;
}

DeploymentParams DefendedDeployment(DeploymentParams p) {
  // The reference anti-Grunt stack. Values are calibrated against
  // bench_defense_degradation's acceptance bar (amplification < 3x at
  // within-5% legitimate goodput on the EC2-7K SocialNetwork campaign).
  // The load-bearing idea is "retry at the edge, fail fast in the core":
  //  * interior edges never retry and carry a short per-attempt timeout, so
  //    a rejection or millibottleneck at a worker frees the caller's thread
  //    immediately instead of pinning it through backoff cycles — in-slot
  //    retries are exactly the execution dependency the attack exploits,
  //    recursively re-created by the fault-tolerance layer;
  //  * only the gateway edge retries (its pool is too large to pin), with
  //    backoffs long enough to bridge a burst's drain, so legit calls
  //    caught in a millibottleneck land on a later attempt;
  //  * per-downstream bulkheads cap how much of a pool one edge can take;
  //  * the AIMD limiter clamps the attacked edge once RTTs leave the
  //    nominal band. nominal_rtt anchors the congestion test: the learned
  //    floor under exponential service times is a lucky near-zero draw,
  //    which would make honest RTTs read as congested;
  //  * deadline shedding drops doomed work before it consumes a slot,
  //    deepest-first, against a 1 s end-to-end budget.
  if (!p.default_rpc) {
    microsvc::RpcPolicy rpc;
    rpc.timeout = Ms(150);
    rpc.max_retries = 0;  // fail fast: never retry while holding a slot
    rpc.nominal_rtt = Ms(20);  // congested above tolerance x this
    p.default_rpc = rpc;
  }
  if (!p.edge_rpc) {
    microsvc::RpcPolicy rpc;
    rpc.timeout = Ms(250);  // covers a fail-fast subtree attempt
    rpc.max_retries = 4;
    rpc.backoff_base = Ms(15);
    rpc.backoff_multiplier = 2.0;
    rpc.jitter = 0.5;
    rpc.nominal_rtt = Ms(20);
    p.edge_rpc = rpc;
  }
  if (!p.client_rpc) {
    microsvc::RpcPolicy rpc;
    rpc.timeout = Sec(1);  // the user outlasts the gateway's retry span
    rpc.max_retries = 0;
    p.client_rpc = rpc;
  }
  p.bulkhead_per_downstream = 12;
  // The bulkhead's second half: a bounded arrival queue. Without it, a
  // caller timeout leaves the queued arrival behind as orphan work, so a
  // burst's overflow parks in the shared upstream's unbounded thread queue
  // and keeps it a millibottleneck long after every caller has given up.
  p.max_queue_per_replica = 16;
  p.adaptive_limit.enabled = true;
  p.adaptive_limit.min_limit = 4;
  p.adaptive_limit.max_limit = 24;
  p.adaptive_limit.rtt_tolerance = 3.0;
  p.adaptive_limit.decrease_factor = 0.7;
  p.deadline_shed.enabled = true;
  p.deadline_shed.margin = 2.0;
  p.deadline_shed.depth_weight = 0.5;
  p.endpoint_deadline = Sec(1);
  return p;
}

ScenarioSpec SocialNetworkDefendedScenario() {
  ScenarioSpec scenario = SocialNetworkScenario(DefendedDeployment());
  scenario.name = "socialnetwork_defended";
  scenario.topology.name = "socialnetwork_defended";
  scenario.description =
      "DeathStarBench SocialNetwork with the graceful-degradation layer "
      "deployed (timeouts, per-downstream bulkheads, adaptive concurrency "
      "limits, deadline-aware shedding)";
  return scenario;
}

}  // namespace grunt::scenario
