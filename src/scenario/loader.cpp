#include "scenario/loader.h"

#include <stdexcept>
#include <unordered_map>

namespace grunt::scenario {

microsvc::Application BuildApplication(const TopologySpec& spec) {
  microsvc::Application::Builder b;
  b.SetName(spec.name)
      .SetNetLatency(spec.net_latency)
      .SetServiceTimeDist(spec.dist);
  if (spec.default_rpc) b.SetDefaultRpcPolicy(*spec.default_rpc);

  // Service ids are assigned in declaration order; a name → id map resolves
  // the endpoints' by-name references.
  std::unordered_map<std::string, microsvc::ServiceId> ids;
  for (const auto& svc : spec.services) {
    ids[svc.name] = b.AddService(svc);
  }

  for (const auto& ep : spec.endpoints) {
    microsvc::RequestTypeSpec type;
    type.name = ep.name;
    type.heavy_multiplier = ep.heavy_multiplier;
    type.request_bytes = ep.request_bytes;
    type.response_bytes = ep.response_bytes;
    type.is_static = ep.is_static;
    type.deadline = ep.deadline;
    for (const auto& stage : ep.stages) {
      for (const auto& call : stage.calls) {
        const auto it = ids.find(call.service);
        if (it == ids.end()) {
          throw std::invalid_argument("endpoint \"" + ep.name +
                                      "\" calls unknown service \"" +
                                      call.service + "\"");
        }
        microsvc::Hop hop;
        hop.service = it->second;
        hop.cpu_demand = call.cpu_demand;
        hop.post_demand = call.post_demand;
        hop.rpc = call.rpc;
        type.hops.push_back(hop);
      }
    }
    b.AddRequestType(std::move(type));
  }
  return std::move(b).Build();
}

workload::RequestMix BuildRequestMix(const microsvc::Application& app,
                                     const WorkloadSpec& spec) {
  if (spec.mix.empty()) {
    return workload::RequestMix::Uniform(app.PublicDynamicTypes());
  }
  workload::RequestMix mix;
  for (const auto& entry : spec.mix) {
    const auto id = app.FindRequestType(entry.endpoint);
    if (!id) {
      throw std::invalid_argument("workload mix references unknown endpoint "
                                  "\"" + entry.endpoint + "\"");
    }
    mix.types.push_back(*id);
    mix.weights.push_back(entry.weight);
  }
  mix.Validate();
  return mix;
}

workload::MarkovNavigator BuildNavigator(const microsvc::Application& app,
                                         const WorkloadSpec& spec) {
  const workload::RequestMix mix = BuildRequestMix(app, spec);
  if (spec.navigator == WorkloadSpec::Navigator::kUniform) {
    return workload::MarkovNavigator::Uniform(mix.types);
  }
  // Memoryless chain whose stationary distribution equals the mix weights:
  // every row is the popularity vector.
  workload::MarkovNavigator nav;
  nav.types = mix.types;
  nav.transition.assign(mix.types.size(), mix.weights);
  return nav;
}

TopologySpec TopologyFromApplication(const microsvc::Application& app) {
  TopologySpec spec;
  spec.name = app.name();
  spec.net_latency = app.net_latency();
  spec.dist = app.service_time_dist();
  if (app.default_rpc() != microsvc::RpcPolicy{}) {
    spec.default_rpc = app.default_rpc();
  }
  spec.services = app.services();
  for (const auto& type : app.request_types()) {
    EndpointSpec ep;
    ep.name = type.name;
    ep.heavy_multiplier = type.heavy_multiplier;
    ep.request_bytes = type.request_bytes;
    ep.response_bytes = type.response_bytes;
    ep.is_static = type.is_static;
    ep.deadline = type.deadline;
    for (const auto& hop : type.hops) {
      CallSpec call;
      call.service = app.service(hop.service).name;
      call.cpu_demand = hop.cpu_demand;
      call.post_demand = hop.post_demand;
      call.rpc = hop.rpc;
      ep.stages.push_back(StageSpec{{call}});
    }
    spec.endpoints.push_back(std::move(ep));
  }
  return spec;
}

}  // namespace grunt::scenario
