#pragma once

// Declarative scenario IR — the data a spec file carries.
//
// A *scenario* is everything one experiment needs besides the attack under
// study: the application topology (services + endpoints as call-graph
// stages), the legitimate workload driving it, and the operator stack
// (monitors, autoscaler, IDS) watching it. Related simulators (uqSim,
// CloudNativeSim, µBench) get their coverage from exactly this kind of
// data-driven description; here it replaces the hard-coded C++ topologies
// of src/apps — adding a scenario means writing a JSON file, not
// recompiling three layers.
//
// Durations serialize as integer microseconds (`*_us` keys), matching the
// simulator's exact-integer time base, so a spec round-trip is lossless.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cloud/autoscaler.h"
#include "cloud/ids.h"
#include "microsvc/types.h"

namespace grunt::scenario {

/// One RPC call issued from an endpoint's call graph: the target service
/// (by name — specs never reference numeric ids), the CPU demand before the
/// downstream call and after its reply, and an optional per-edge RPC policy.
struct CallSpec {
  CallSpec() = default;
  CallSpec(std::string service, SimDuration cpu_demand,
           SimDuration post_demand = 0,
           std::optional<microsvc::RpcPolicy> rpc = std::nullopt)
      : service(std::move(service)),
        cpu_demand(cpu_demand),
        post_demand(post_demand),
        rpc(std::move(rpc)) {}

  std::string service;
  SimDuration cpu_demand = 0;
  SimDuration post_demand = 0;
  std::optional<microsvc::RpcPolicy> rpc;

  friend bool operator==(const CallSpec&, const CallSpec&) = default;
};

/// One stage of an endpoint's call graph. Stages execute in sequence; the
/// calls inside one stage are logically parallel (a fan-out). The runtime
/// cluster executes a single synchronous chain, so the loader serializes a
/// stage's calls in declaration order — the paper's blocking effects only
/// depend on which services a path visits and in what order, which the
/// flattening preserves.
struct StageSpec {
  std::vector<CallSpec> calls;

  friend bool operator==(const StageSpec&, const StageSpec&) = default;
};

/// One public endpoint (== request type == execution path).
struct EndpointSpec {
  std::string name;
  std::vector<StageSpec> stages;
  double heavy_multiplier = 1.0;
  std::int64_t request_bytes = 600;
  std::int64_t response_bytes = 4000;
  bool is_static = false;       ///< served at the edge; never reaches backends
  SimDuration deadline = 0;     ///< end-to-end deadline, 0 = none

  friend bool operator==(const EndpointSpec&, const EndpointSpec&) = default;
};

/// The static application description: services (reusing the runtime
/// ServiceSpec — cores/threads/replicas/admission are already spec-shaped)
/// plus endpoints.
struct TopologySpec {
  std::string name = "app";
  SimDuration net_latency = Us(500);
  microsvc::ServiceTimeDist dist = microsvc::ServiceTimeDist::kExponential;
  std::optional<microsvc::RpcPolicy> default_rpc;
  std::vector<microsvc::ServiceSpec> services;
  std::vector<EndpointSpec> endpoints;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// One entry of a workload's endpoint-popularity mix.
struct MixEntrySpec {
  std::string endpoint;
  double weight = 1.0;

  friend bool operator==(const MixEntrySpec&, const MixEntrySpec&) = default;
};

/// The legitimate workload of a scenario: either a closed-loop user
/// population with think times (the paper's default) or an open-loop
/// Poisson source (Table IV / trace-driven benches).
struct WorkloadSpec {
  enum class Kind : std::uint8_t { kClosedLoop, kOpenLoop };
  /// How closed-loop users pick their next page.
  enum class Navigator : std::uint8_t {
    kStationary,  ///< memoryless Markov chain whose every row is the mix
    kUniform,     ///< uniform transition over the mix's endpoints
  };

  Kind kind = Kind::kClosedLoop;
  std::int32_t users = 1000;        ///< closed-loop population
  SimDuration think_mean = Sec(7);  ///< closed-loop think time
  double rate = 100.0;              ///< open-loop requests/second
  /// Endpoint popularity. Empty = uniform over the topology's public
  /// dynamic endpoints.
  std::vector<MixEntrySpec> mix;
  Navigator navigator = Navigator::kStationary;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// The operator stack deployed next to the application. The cloud-layer
/// Config structs are spec-visible and serialize field-for-field.
struct OperatorSpec {
  SimDuration coarse_granularity = Sec(1);  ///< CloudWatch-style monitor
  SimDuration fine_granularity = Ms(100);   ///< fine-grained monitor
  SimDuration rt_granularity = Sec(1);      ///< response-time monitor
  bool autoscaler_enabled = true;
  cloud::AutoScaler::Config autoscaler;
  bool ids_enabled = true;
  cloud::Ids::Config ids;

  friend bool operator==(const OperatorSpec&, const OperatorSpec&) = default;
};

/// A complete experiment scenario.
struct ScenarioSpec {
  std::string name;
  std::string description;
  TopologySpec topology;
  WorkloadSpec workload;
  OperatorSpec operators;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Serializes a scenario (or just a topology) to the JSON text format
/// documented in DESIGN.md §6. Deterministic: dump → parse → dump is
/// byte-stable.
std::string DumpScenario(const ScenarioSpec& spec);
std::string DumpTopology(const TopologySpec& spec);

/// Parses the JSON text format. Unknown keys are rejected (a typo in a
/// hand-written spec should fail loudly, not silently fall back to a
/// default); omitted keys take the struct defaults above. Throws
/// json::Error on malformed documents and std::invalid_argument on
/// semantic problems.
ScenarioSpec ParseScenario(const std::string& text);
TopologySpec ParseTopology(const std::string& text);

/// File convenience wrappers (errors mention the path).
ScenarioSpec LoadScenarioFile(const std::string& path);
void SaveScenarioFile(const std::string& path, const ScenarioSpec& spec);

}  // namespace grunt::scenario
