#include "scenario/builder.h"

#include <algorithm>
#include <utility>

namespace grunt::scenario {

SimDuration ScaledDemand(double ms, double capacity_scale) {
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(ms * 1000.0 / capacity_scale));
}

SpecBuilder::SpecBuilder(std::string name) {
  spec_.name = std::move(name);
}

SpecBuilder& SpecBuilder::SetNetLatency(SimDuration lat) {
  spec_.net_latency = lat;
  return *this;
}

SpecBuilder& SpecBuilder::SetServiceTimeDist(microsvc::ServiceTimeDist dist) {
  spec_.dist = dist;
  return *this;
}

SpecBuilder& SpecBuilder::SetDefaultRpc(
    const std::optional<microsvc::RpcPolicy>& rpc) {
  spec_.default_rpc = rpc;
  return *this;
}

SpecBuilder& SpecBuilder::SetBackendAdmission(
    std::int32_t max_queue_per_replica, std::int32_t breaker_threshold,
    SimDuration breaker_cooldown) {
  max_queue_per_replica_ = max_queue_per_replica;
  breaker_threshold_ = breaker_threshold;
  breaker_cooldown_ = breaker_cooldown;
  return *this;
}

SpecBuilder& SpecBuilder::SetBackendDegradation(
    std::int32_t bulkhead_per_downstream,
    const microsvc::AdaptiveLimitSpec& adaptive_limit,
    const microsvc::DeadlineShedSpec& deadline_shed) {
  bulkhead_per_downstream_ = bulkhead_per_downstream;
  adaptive_limit_ = adaptive_limit;
  deadline_shed_ = deadline_shed;
  return *this;
}

SpecBuilder& SpecBuilder::SetEndpointDeadline(SimDuration deadline) {
  endpoint_deadline_ = deadline;
  return *this;
}

const std::string& SpecBuilder::AddService(std::string name,
                                           std::int32_t threads,
                                           std::int32_t cores,
                                           std::int32_t replicas,
                                           std::int32_t max_replicas) {
  microsvc::ServiceSpec svc;
  svc.name = std::move(name);
  svc.threads_per_replica = threads;
  svc.cores_per_replica = cores;
  svc.initial_replicas = replicas;
  svc.max_replicas = max_replicas > 0 ? max_replicas : replicas * 8;
  if (threads < kGatewayThreads) {  // backends only; gateways never shed
    svc.max_queue_per_replica = max_queue_per_replica_;
    svc.breaker_threshold = breaker_threshold_;
    svc.breaker_cooldown = breaker_cooldown_;
    svc.bulkhead_per_downstream = bulkhead_per_downstream_;
    svc.adaptive_limit = adaptive_limit_;
    svc.deadline_shed = deadline_shed_;
  }
  spec_.services.push_back(std::move(svc));
  return spec_.services.back().name;
}

void SpecBuilder::AddChainEndpoint(std::string name,
                                   std::vector<CallSpec> calls,
                                   double heavy_multiplier,
                                   std::int64_t request_bytes,
                                   std::int64_t response_bytes) {
  std::vector<StageSpec> stages;
  stages.reserve(calls.size());
  for (auto& call : calls) stages.push_back(StageSpec{{std::move(call)}});
  AddStagedEndpoint(std::move(name), std::move(stages), heavy_multiplier,
                    request_bytes, response_bytes);
}

void SpecBuilder::AddStagedEndpoint(std::string name,
                                    std::vector<StageSpec> stages,
                                    double heavy_multiplier,
                                    std::int64_t request_bytes,
                                    std::int64_t response_bytes) {
  EndpointSpec ep;
  ep.name = std::move(name);
  ep.stages = std::move(stages);
  ep.heavy_multiplier = heavy_multiplier;
  ep.request_bytes = request_bytes;
  ep.response_bytes = response_bytes;
  ep.deadline = endpoint_deadline_;
  spec_.endpoints.push_back(std::move(ep));
}

void SpecBuilder::AddStaticEndpoint(std::string name,
                                    std::int64_t request_bytes,
                                    std::int64_t response_bytes) {
  EndpointSpec ep;
  ep.name = std::move(name);
  ep.is_static = true;
  ep.request_bytes = request_bytes;
  ep.response_bytes = response_bytes;
  spec_.endpoints.push_back(std::move(ep));
}

TopologySpec SpecBuilder::Build() && { return std::move(spec_); }

}  // namespace grunt::scenario
