#include "scenario/generate.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "scenario/builder.h"
#include "util/rng.h"

namespace grunt::scenario {

ScenarioSpec GenerateMubench(std::uint64_t seed, const MubenchParams& p) {
  if (p.services < 8 || p.groups < 1 || p.paths_per_group < 2) {
    throw std::invalid_argument("GenerateMubench: bad params");
  }
  // Upper bound on services the embedded structure can consume (gateway +
  // per-group UM/workers/stores/mids/audit + singletons).
  const std::int32_t structural =
      1 + p.groups * (2 + 3 * p.paths_per_group) + 2 * p.singleton_paths;
  if (p.services < structural) {
    throw std::invalid_argument(
        "GenerateMubench: services too small for requested structure "
        "(need >= " +
        std::to_string(structural) + ")");
  }
  // The stream name and draw order below are a compatibility contract with
  // the legacy apps::MakeMuBench: same (seed, shape) -> same topology.
  RngStream rng(seed, "mubench.topology");
  SpecBuilder b("mubench-" + std::to_string(p.services) + "-s" +
                std::to_string(seed));
  b.SetServiceTimeDist(p.dist).SetNetLatency(Us(400));
  b.SetDefaultRpc(p.default_rpc);
  b.SetBackendAdmission(p.max_queue_per_replica, p.breaker_threshold,
                        p.breaker_cooldown);
  b.SetBackendDegradation(p.bulkhead_per_downstream, p.adaptive_limit,
                          p.deadline_shed);
  b.SetEndpointDeadline(p.endpoint_deadline);

  std::int32_t remaining = p.services;
  auto svc = [&](std::string name, std::int32_t threads,
                 std::int32_t cores) -> std::string {
    --remaining;
    // initial_replicas 1, max_replicas 8 (the AddService default for 1).
    return b.AddService(std::move(name), threads, cores, 1);
  };

  const auto gateway = svc("gateway", 4096, 16);

  auto light_demand = [&] { return Us(300 + rng.NextInt(0, 900)); };
  auto heavy_demand = [&] { return Us(8000 + rng.NextInt(0, 3500)); };

  std::vector<MixEntrySpec> mix;
  auto add_type = [&](std::string name, std::vector<CallSpec> calls,
                      double weight) {
    mix.push_back({name, weight});
    // Sequenced draws: request bytes strictly before response bytes (the
    // argument list of a call would leave the order unspecified).
    const std::int64_t req_bytes = 500 + rng.NextInt(0, 1500);
    const std::int64_t resp_bytes = 1000 + rng.NextInt(0, 9000);
    b.AddChainEndpoint(std::move(name), std::move(calls), 1.6, req_bytes,
                       resp_bytes);
  };

  for (std::int32_t g = 0; g < p.groups; ++g) {
    const std::string gp = "g" + std::to_string(g);
    // Shared upstream service of the group: small slot pool so cross-tier
    // overflow can reach it within the stealth volume budget.
    const auto um = svc(gp + "-frontend", 20, 4);
    for (std::int32_t pi = 0; pi < p.paths_per_group; ++pi) {
      const std::string pp = gp + "-p" + std::to_string(pi);
      const auto worker = svc(pp + "-worker", 64, 2);
      const auto leaf = svc(pp + "-store", 128, 2);
      std::vector<CallSpec> calls;
      calls.push_back({gateway, Us(300), 0});
      calls.push_back({um, Us(1400), Us(600)});
      // 0-1 light intermediate services for topology variety.
      if (rng.NextBool(0.5) && remaining > p.groups) {
        const auto mid = svc(pp + "-mid", 96, 2);
        calls.push_back({mid, light_demand(), 0});
      }
      calls.push_back({worker, heavy_demand(), Us(800)});
      calls.push_back({leaf, light_demand(), 0});
      add_type("api/" + pp, std::move(calls), 1.0);
    }
    if (g < p.upstream_paths) {
      // Path bottlenecking on the shared UM itself: the group's sequential
      // "upstream" member. Admin traffic is rare relative to the APIs.
      const auto leaf = svc(gp + "-audit", 128, 2);
      add_type("api/" + gp + "-admin",
               {{gateway, Us(300), 0},
                {um, Us(24000), Us(1200)},
                {leaf, light_demand(), 0}},
               0.25);
    }
  }

  for (std::int32_t s = 0; s < p.singleton_paths; ++s) {
    const std::string sp = "solo" + std::to_string(s);
    const auto worker = svc(sp + "-worker", 64, 2);
    const auto leaf = svc(sp + "-store", 128, 2);
    add_type("api/" + sp,
             {{gateway, Us(300), 0},
              {worker, heavy_demand(), Us(800)},
              {leaf, light_demand(), 0}},
             1.0);
  }

  // Pad to the requested service count with services public URLs never
  // reach (cron jobs, internal pipelines, replicated sidecars).
  std::int32_t pad = 0;
  while (remaining > 0) {
    svc("internal-" + std::to_string(pad++), 32, 1);
  }

  ScenarioSpec scenario;
  scenario.name = "mubench-s" + std::to_string(seed);
  scenario.description = "Seeded random topology (" +
                         std::to_string(p.services) + " services, " +
                         std::to_string(p.groups) +
                         " dependency groups), uBench-style generator";
  scenario.topology = std::move(b).Build();
  scenario.workload.users = p.users;
  scenario.workload.mix = std::move(mix);
  return scenario;
}

}  // namespace grunt::scenario
