#pragma once

// Seeded random-application generator, modeled on µBench [21]: deterministic
// random microservice topologies of a target size with embedded dependency
// groups, used for the paper's live attack scenarios against unknown
// architectures (Sec V-C; apps with 62, 118 and 196 unique microservices).
//
// The generator emits a ScenarioSpec, so a generated app can be dumped to a
// spec file, inspected, edited and re-loaded like any hand-written scenario.

#include <cstdint>
#include <optional>

#include "scenario/spec.h"

namespace grunt::scenario {

/// Shape parameters for GenerateMubench (mirrors apps::MuBenchOptions).
struct MubenchParams {
  std::int32_t services = 62;  ///< unique microservices to generate
  std::int32_t groups = 3;     ///< dependency groups to embed
  /// Dependent paths per group (each bottlenecks on its own worker service
  /// behind the group's shared upstream service).
  std::int32_t paths_per_group = 3;
  /// Additionally, one "upstream" path per group whose bottleneck is the
  /// shared UM itself (sequential dependency source). Generated for the
  /// first `upstream_paths` groups.
  std::int32_t upstream_paths = 1;
  std::int32_t singleton_paths = 2;  ///< independent paths (own group each)
  microsvc::ServiceTimeDist dist = microsvc::ServiceTimeDist::kExponential;
  /// Fault-tolerance deployment, all off by default (paper configuration).
  std::optional<microsvc::RpcPolicy> default_rpc;
  std::int32_t max_queue_per_replica = 0;
  std::int32_t breaker_threshold = 0;
  SimDuration breaker_cooldown = Ms(500);
  /// Graceful-degradation deployment, all off by default (stamped onto
  /// backend services like the admission knobs above).
  std::int32_t bulkhead_per_downstream = 0;
  microsvc::AdaptiveLimitSpec adaptive_limit;
  microsvc::DeadlineShedSpec deadline_shed;
  /// End-to-end deadline stamped onto every dynamic endpoint. 0 = none.
  SimDuration endpoint_deadline = 0;
  /// Closed-loop population for the scenario's workload section.
  std::int32_t users = 4000;
};

/// Generates a deterministic random scenario with the requested shape. The
/// same (seed, params) always yields the same spec; the RNG stream and draw
/// order are shared with the legacy apps::MakeMuBench so a generated
/// topology is structurally identical to the hard-coded factory's output.
/// Services not reachable from any public path pad the topology to
/// `services` (realistic: batch/ops services that public URLs never touch).
///
/// The workload mix down-weights "-admin" endpoints to 0.25 (they are
/// heavyweight on their group frontend; a uniform mix would saturate it).
ScenarioSpec GenerateMubench(std::uint64_t seed,
                             const MubenchParams& params = {});

}  // namespace grunt::scenario
