#include "scenario/registry.h"

#include <stdexcept>

#include "scenario/builtin_apps.h"
#include "scenario/generate.h"

namespace grunt::scenario {

namespace {

ScenarioSpec MubenchAtScale(std::int32_t services) {
  MubenchParams params;
  params.services = services;
  // Seeds follow bench_table4_live: seed = service count.
  return GenerateMubench(static_cast<std::uint64_t>(services), params);
}

}  // namespace

const std::vector<RegisteredScenario>& BuiltinScenarios() {
  static const std::vector<RegisteredScenario> kBuiltins = {
      {"socialnetwork",
       "DeathStarBench SocialNetwork, 7000 closed-loop users (Table I "
       "reference)",
       [] { return SocialNetworkScenario(); }},
      {"hotelreservation",
       "HotelReservation travel-booking topology, 5000 closed-loop users",
       [] { return HotelReservationScenario(); }},
      {"socialnetwork_defended",
       "SocialNetwork with the anti-Grunt degradation layer (timeouts, "
       "bulkheads, adaptive limits, deadline shedding)",
       [] { return SocialNetworkDefendedScenario(); }},
      {"mubench-62", "generated unknown-architecture app, 62 services "
                     "(Table IV App.1)",
       [] { return MubenchAtScale(62); }},
      {"mubench-118", "generated unknown-architecture app, 118 services "
                      "(Table IV App.2)",
       [] { return MubenchAtScale(118); }},
      {"mubench-196", "generated unknown-architecture app, 196 services "
                      "(Table IV App.3)",
       [] { return MubenchAtScale(196); }},
  };
  return kBuiltins;
}

std::optional<ScenarioSpec> MakeBuiltin(std::string_view name) {
  for (const auto& builtin : BuiltinScenarios()) {
    if (builtin.name == name) return builtin.make();
  }
  return std::nullopt;
}

ScenarioSpec ResolveScenario(const std::string& name_or_path) {
  if (auto builtin = MakeBuiltin(name_or_path)) return *std::move(builtin);
  // Heuristic: a bare word that is not a builtin is more likely a typo than
  // a file in the working directory; require path-ish arguments for files.
  if (name_or_path.find('/') == std::string::npos &&
      name_or_path.find('.') == std::string::npos) {
    throw std::invalid_argument("unknown scenario \"" + name_or_path +
                                "\" (not a builtin; spec files need a path "
                                "or .json suffix)\nbuiltins:\n" +
                                ListScenariosText());
  }
  return LoadScenarioFile(name_or_path);
}

std::string ListScenariosText() {
  std::string out;
  for (const auto& builtin : BuiltinScenarios()) {
    out += "  " + builtin.name + " - " + builtin.description + "\n";
  }
  return out;
}

}  // namespace grunt::scenario
