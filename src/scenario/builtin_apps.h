#pragma once

// Spec-first construction of the built-in application scenarios. These are
// the declarative ports of the topologies that used to be hard-coded in
// src/apps — the apps' Make* factories are now thin wrappers over
// BuildApplication(...) of what these functions return, and the shipped
// files under specs/ are their dumps at default parameters.

#include <cstdint>
#include <optional>

#include "scenario/spec.h"

namespace grunt::scenario {

/// Deployment knobs shared by the built-in scenarios (the union of the
/// apps' per-topology Options structs; fields a topology does not use are
/// ignored — e.g. queue_scale only affects SocialNetwork).
struct DeploymentParams {
  /// Scales the initial replica count of backend services.
  std::int32_t replica_scale = 1;
  /// Relative capacity of the hosting cloud (EC2 = 1.0).
  double capacity_scale = 1.0;
  microsvc::ServiceTimeDist dist = microsvc::ServiceTimeDist::kExponential;
  /// Multiplies every backend service's thread-pool (queue) size.
  double queue_scale = 1.0;
  /// Fault-tolerance deployment, all off by default (paper configuration).
  std::optional<microsvc::RpcPolicy> default_rpc;
  /// Policy for the gateway->backend edge only (the call INTO the first
  /// backend hop of every dynamic endpoint). Unset = default_rpc. The
  /// defended preset retries here and nowhere else: the gateway pool is too
  /// large to pin, so it can afford to wait out a burst, while interior
  /// edges fail fast and free their caller's slot immediately.
  std::optional<microsvc::RpcPolicy> edge_rpc;
  /// Policy for hop 0 — how long the external client waits before
  /// abandoning a request. Unset = default_rpc. The defended preset pins
  /// this to the endpoint deadline so the user outlasts the gateway's
  /// retry span instead of hanging up mid-recovery.
  std::optional<microsvc::RpcPolicy> client_rpc;
  std::int32_t max_queue_per_replica = 0;
  std::int32_t breaker_threshold = 0;
  SimDuration breaker_cooldown = Ms(500);
  /// Graceful-degradation deployment (anti-Grunt countermeasures), stamped
  /// onto backend services like the admission knobs above; all off by
  /// default.
  std::int32_t bulkhead_per_downstream = 0;
  microsvc::AdaptiveLimitSpec adaptive_limit;
  microsvc::DeadlineShedSpec deadline_shed;
  /// End-to-end deadline stamped onto every dynamic endpoint. 0 = none.
  SimDuration endpoint_deadline = 0;
  /// Closed-loop population; 0 keeps the scenario's reference default
  /// (SocialNetwork 7000, HotelReservation 5000).
  std::int32_t users = 0;
};

/// DeathStarBench SocialNetwork (Fig 12a): nginx gateway, compose-post
/// fan-in, home-/user-timeline read fan-ins, storage backends; 13 dynamic
/// endpoints + 1 static, forming three dependency groups + singletons.
ScenarioSpec SocialNetworkScenario(const DeploymentParams& params = {});

/// HotelReservation-style travel-booking topology: search and reservation
/// fan-ins plus independent login/profile paths (two dependency groups).
ScenarioSpec HotelReservationScenario(const DeploymentParams& params = {});

/// The reference anti-Grunt deployment preset used by the defended
/// scenario and bench_defense_degradation: short timeouts, per-downstream
/// bulkheads, adaptive concurrency limits, deadline-aware shedding and a
/// 1-second end-to-end deadline on every dynamic endpoint.
DeploymentParams DefendedDeployment(DeploymentParams params = {});

/// SocialNetwork with the full degradation layer deployed — the same
/// topology and workload as `socialnetwork`, differing only in the defense
/// knobs (shipped as specs/socialnetwork_defended.json).
ScenarioSpec SocialNetworkDefendedScenario();

}  // namespace grunt::scenario
