#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "microsvc/types.h"

namespace grunt::microsvc {

/// Static description of a microservice application: its services and the
/// request types (execution paths) it supports. Immutable once built; the
/// runtime `Cluster` instantiates it into a simulation.
class Application {
 public:
  /// Incrementally builds an Application; `Build()` validates the topology.
  /// Defined out-of-line below (it holds an Application by value).
  class Builder;

  const std::string& name() const { return name_; }
  SimDuration net_latency() const { return net_latency_; }
  ServiceTimeDist service_time_dist() const { return dist_; }
  /// Application-wide RPC policy for hops that don't set their own.
  /// Defaults to "no timeout, no retry".
  const RpcPolicy& default_rpc() const { return default_rpc_; }
  /// Policy governing calls into hop `hop` of type `t` (the hop's own policy
  /// or the application default). Inline: Cluster consults it on every hop
  /// issue/completion, so the lookup must fold into the caller.
  const RpcPolicy& rpc_policy(RequestTypeId t, std::size_t hop) const {
    const Hop& h = request_type(t).hops[hop];
    return h.rpc ? *h.rpc : default_rpc_;
  }

  std::size_t service_count() const { return services_.size(); }
  std::size_t request_type_count() const { return types_.size(); }
  const ServiceSpec& service(ServiceId id) const {
    return services_[static_cast<std::size_t>(id)];
  }
  const RequestTypeSpec& request_type(RequestTypeId id) const {
    return types_[static_cast<std::size_t>(id)];
  }
  const std::vector<ServiceSpec>& services() const { return services_; }
  const std::vector<RequestTypeSpec>& request_types() const { return types_; }

  std::optional<ServiceId> FindService(std::string_view name) const;
  std::optional<RequestTypeId> FindRequestType(std::string_view name) const;

  /// Ids of non-static request types — the paths a blackbox profiler can
  /// discover by crawling public URLs.
  std::vector<RequestTypeId> PublicDynamicTypes() const;

  /// The ordered services on a type's critical path.
  std::vector<ServiceId> PathServices(RequestTypeId t) const;

  /// Services present on both paths, in path-a order.
  std::vector<ServiceId> SharedServices(RequestTypeId a, RequestTypeId b) const;

  /// Position (hop index) of `s` on path `t`, or nullopt.
  std::optional<std::size_t> HopIndexOf(RequestTypeId t, ServiceId s) const;

  /// True if `up` appears strictly before `down` on path `t`.
  bool IsUpstreamOn(RequestTypeId t, ServiceId up, ServiceId down) const;

  /// All request types whose path visits service `s`.
  std::vector<RequestTypeId> TypesThrough(ServiceId s) const;

 private:
  friend class Builder;

  /// Heterogeneous string hashing so FindService/FindRequestType accept
  /// string_view without materializing a std::string per lookup.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using NameIndex =
      std::unordered_map<std::string, std::int32_t, NameHash, std::equal_to<>>;

  std::string name_ = "app";
  SimDuration net_latency_ = 500;  // 0.5 ms per RPC message
  ServiceTimeDist dist_ = ServiceTimeDist::kExponential;
  RpcPolicy default_rpc_;
  std::vector<ServiceSpec> services_;
  std::vector<RequestTypeSpec> types_;
  // Name → id indices, built once in Builder::Build() (the spec loader
  // resolves every endpoint/service reference by name).
  NameIndex service_index_;
  NameIndex type_index_;
};

/// True when the two applications describe the same static topology:
/// identical name, network latency, service-time distribution, default RPC
/// policy, service list and request-type list (field-by-field, in order).
/// This is the "golden equivalence" check between spec-built and
/// legacy-built applications.
bool StructurallyEqual(const Application& a, const Application& b);

class Application::Builder {
 public:
  /// Adds a service and returns its id.
  ServiceId AddService(ServiceSpec spec);
  /// Adds a request type and returns its id. Hops must reference existing
  /// services; validation happens in Build().
  RequestTypeId AddRequestType(RequestTypeSpec spec);
  Builder& SetName(std::string name);
  Builder& SetNetLatency(SimDuration lat);
  Builder& SetServiceTimeDist(ServiceTimeDist dist);
  /// Sets the application-wide default RPC policy (per-hop policies on the
  /// request types override it).
  Builder& SetDefaultRpcPolicy(RpcPolicy policy);

  /// Validates and returns the application. Throws std::invalid_argument on
  /// dangling service references, empty paths, or duplicate names.
  Application Build() &&;

 private:
  Application app_;
};

}  // namespace grunt::microsvc
