#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "microsvc/types.h"
#include "sim/simulation.h"

namespace grunt::microsvc {

/// Runtime state of one microservice (all replicas aggregated).
///
/// Two coupled resources:
///  * **Thread slots** — bounded concurrency. A request holds a slot from
///    admission until it replies upstream, *including* the whole time it is
///    blocked on downstream calls (synchronous RPC). When all slots are in
///    use, incoming calls wait in an arrival queue while their caller's
///    thread stays blocked upstream — this is what propagates saturation
///    upstream (cross-tier queue overflow, [58]).
///  * **CPU cores** — FCFS multi-server for CPU bursts. Utilization here is
///    what CloudWatch-style monitors and the autoscaler observe.
class Service {
 public:
  Service(sim::Simulation& sim, ServiceSpec spec, ServiceId id);

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  ServiceId id() const { return id_; }
  const ServiceSpec& spec() const { return spec_; }

  /// Asks for a thread slot; `on_granted` fires (as a simulation event) once
  /// one is available. FIFO among waiters.
  void AcquireSlot(std::function<void()> on_granted);

  /// Releases a slot previously granted; wakes the next waiter if any.
  void ReleaseSlot();

  /// Runs a CPU burst of `demand`; `done` fires when the burst completes.
  /// Bursts are served FCFS by `cores()` parallel cores. A demand of zero
  /// completes immediately (still via an event, for deterministic ordering).
  void RunCpu(SimDuration demand, std::function<void()> done);

  // --- scaling (used by the autoscaler) ---
  void AddReplica();
  /// Removes one replica; capacity shrinks immediately but in-flight work is
  /// never aborted. Returns false when already at one replica.
  bool RemoveReplica();
  std::int32_t replicas() const { return replicas_; }
  std::int32_t threads() const { return replicas_ * spec_.threads_per_replica; }
  std::int32_t cores() const { return replicas_ * spec_.cores_per_replica; }

  // --- instantaneous metrics ---
  std::int32_t slots_in_use() const { return slots_in_use_; }
  std::int32_t slots_waiting() const {
    return static_cast<std::int32_t>(slot_waiters_.size());
  }
  /// Total live demand pressure: in-service plus waiting for a slot.
  std::int32_t queue_length() const { return slots_in_use() + slots_waiting(); }
  std::int32_t cpu_busy() const { return cpu_busy_; }
  std::int32_t cpu_queue_length() const {
    return static_cast<std::int32_t>(cpu_queue_.size());
  }

  /// Cumulative busy core-microseconds up to Now(). Monitors diff this
  /// between samples: utilization = delta / (cores * window).
  std::int64_t CumBusyCoreTime();

  std::int64_t completed_bursts() const { return completed_bursts_; }

 private:
  struct CpuBurst {
    SimDuration demand;
    std::function<void()> done;
  };

  void AccumulateBusy();
  void MaybeStartCpu();
  void StartBurst(CpuBurst burst);

  sim::Simulation& sim_;
  ServiceSpec spec_;
  ServiceId id_;
  std::int32_t replicas_;

  std::int32_t slots_in_use_ = 0;
  std::deque<std::function<void()>> slot_waiters_;

  std::int32_t cpu_busy_ = 0;
  std::deque<CpuBurst> cpu_queue_;
  std::int64_t busy_integral_ = 0;  ///< core-microseconds
  SimTime busy_last_update_ = 0;
  std::int64_t completed_bursts_ = 0;
};

}  // namespace grunt::microsvc
