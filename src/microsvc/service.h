#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "microsvc/types.h"
#include "sim/ring_buffer.h"
#include "sim/simulation.h"
#include "telemetry/bus.h"

namespace grunt::microsvc {

/// Runtime state of one microservice (all replicas aggregated).
///
/// Two coupled resources:
///  * **Thread slots** — bounded concurrency. A request holds a slot from
///    admission until it replies upstream, *including* the whole time it is
///    blocked on downstream calls (synchronous RPC). When all slots are in
///    use, incoming calls wait in an arrival queue while their caller's
///    thread stays blocked upstream — this is what propagates saturation
///    upstream (cross-tier queue overflow, [58]).
///  * **CPU cores** — FCFS multi-server for CPU bursts. Utilization here is
///    what CloudWatch-style monitors and the autoscaler observe.
///
/// Fault-tolerance extensions (all dormant under the default spec):
///  * **Admission control** — when `max_queue_per_replica` is set, arrivals
///    beyond the bounded waiting queue are rejected (load shedding).
///  * **Per-caller circuit breaker** — consecutive failed calls from one
///    caller open the breaker; calls fast-fail until the cooldown passes.
///  * **Crash / restart** — a crash removes one replica (possibly the last)
///    and kills that replica's share of running and queued CPU bursts; a
///    restart restores capacity and re-admits waiting work.
///
/// Graceful-degradation extensions (also dormant by default):
///  * **Per-downstream bulkhead + adaptive limiter** — this service, as a
///    *caller*, gates each outgoing RPC edge on a per-downstream in-flight
///    quota (bulkhead) and an RTT-driven AIMD limit, so a slow dependency
///    can only pin a bounded share of this pool's threads.
///  * **Deadline-aware shedding** — the Cluster consults this service's
///    DeadlineShedSpec on arrival and counts sheds here.
class Service {
 public:
  /// `bus` (may be null: standalone unit-test construction) receives
  /// queue-depth and breaker-transition events; the Cluster passes its own.
  Service(sim::Simulation& sim, ServiceSpec spec, ServiceId id,
          telemetry::TelemetryBus* bus = nullptr);

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  ServiceId id() const { return id_; }
  const ServiceSpec& spec() const { return spec_; }

  /// Asks for a thread slot; `on_granted` fires (as a simulation event) once
  /// one is available. FIFO among waiters. Returns false — and does NOT
  /// enqueue the callback — when admission control rejects the arrival
  /// (bounded queue full). Always true with an unbounded queue.
  /// Templated so the granted-now fast path hands the raw callable to the
  /// engine's zero-copy After(0) overload (no InplaceFunction round trip).
  template <class F>
  bool AcquireSlot(F&& on_granted) {
    if (slots_in_use_ < threads()) {
      ++slots_in_use_;
      // Fire via an event to flatten recursion and keep ordering
      // deterministic.
      sim_.After(0, std::forward<F>(on_granted));
      return true;
    }
    if (spec_.max_queue_per_replica > 0 &&
        slots_waiting() >= spec_.max_queue_per_replica * replicas_) {
      ++rejected_arrivals_;
      PublishQueueEvent(telemetry::QueueEvent::Kind::kRejected);
      return false;
    }
    slot_waiters_.push_back(sim::InplaceFunction(std::forward<F>(on_granted)));
    PublishQueueEvent(telemetry::QueueEvent::Kind::kEnqueued);
    return true;
  }

  /// Releases a slot previously granted; wakes the next waiter if any.
  void ReleaseSlot();

  /// Runs a CPU burst of `demand`; `done` fires when the burst completes.
  /// Bursts are served FCFS by `cores()` parallel cores. A demand of zero
  /// completes immediately (still via an event, for deterministic ordering).
  /// `on_killed` (optional) fires instead of `done` if a replica crash kills
  /// the burst while it is running or queued. Templated so the start-now
  /// fast path constructs both closures directly in the running_ entry —
  /// the by-value signature relocated two 56-byte InplaceFunctions per hop.
  template <class F, class G = std::nullptr_t>
  void RunCpu(SimDuration demand, F&& done, G&& on_killed = G{}) {
    if (demand_factor_ != 1.0) {
      demand = static_cast<SimDuration>(
          std::llround(static_cast<double>(demand) * demand_factor_));
    }
    if (cpu_busy_ < cores()) {
      StartBurst(demand, std::forward<F>(done), std::forward<G>(on_killed));
    } else {
      cpu_queue_.push_back(
          CpuBurst{demand, sim::InplaceFunction(std::forward<F>(done)),
                   sim::InplaceFunction(std::forward<G>(on_killed))});
    }
  }

  // --- scaling (used by the autoscaler) ---
  void AddReplica();
  /// Removes one replica; capacity shrinks immediately but in-flight work is
  /// never aborted. Returns false when already at one replica.
  bool RemoveReplica();
  std::int32_t replicas() const { return replicas_; }
  std::int32_t threads() const { return replicas_ * spec_.threads_per_replica; }
  std::int32_t cores() const { return replicas_ * spec_.cores_per_replica; }

  // --- faults (used by fault::FaultInjector) ---
  /// Crashes one replica (replicas may reach 0, unlike RemoveReplica): kills
  /// the dead replica's proportional share (oldest first) of running and
  /// queued CPU bursts, firing their `on_killed` callbacks. Requests merely
  /// holding a slot here while blocked downstream are treated as surviving
  /// (their connection drains). Returns false when already at 0 replicas.
  bool Crash();
  /// Restores one crashed replica and re-admits waiting work.
  void Restart();
  /// Multiplies every subsequent CPU demand (slow-replica fault; restore by
  /// multiplying with the inverse).
  void MultiplyDemandFactor(double factor);
  double demand_factor() const { return demand_factor_; }
  std::int64_t killed_bursts() const { return killed_bursts_; }
  std::int64_t crash_count() const { return crash_count_; }
  std::int64_t rejected_arrivals() const { return rejected_arrivals_; }

  // --- circuit breaker (caller side of the RPC edge into this service) ---
  /// False while the breaker for `caller` is open (callers fast-fail).
  bool BreakerAllows(ServiceId caller) const;
  /// Reports the outcome of a call from `caller` that was actually issued
  /// (fast-fails are not reported, or an open breaker could never close).
  void ReportCallerOutcome(ServiceId caller, bool ok);

  // --- degradation gate (this service as the CALLER of an RPC edge) ---
  enum class DownstreamGate : std::uint8_t {
    kAdmitted = 0,      ///< charged; pair with EndDownstreamCall
    kBulkheadFull = 1,  ///< per-downstream quota exhausted
    kLimitClamped = 2,  ///< adaptive limit reached
  };
  /// True when any caller-side gate is configured; the Cluster skips the
  /// gate entirely otherwise, keeping the default hot path untouched.
  bool degradation_enabled() const {
    return spec_.bulkhead_per_downstream > 0 || spec_.adaptive_limit.enabled;
  }
  /// Admission decision for a call this service is about to issue into
  /// `downstream`. kAdmitted charges the edge's in-flight count.
  DownstreamGate AdmitDownstreamCall(ServiceId downstream);
  /// Resolves a previously admitted call: uncharges the edge and feeds the
  /// AIMD limiter one (rtt, ok) sample. A nonzero `nominal_rtt` (from the
  /// edge's RpcPolicy) overrides the learned no-load floor.
  void EndDownstreamCall(ServiceId downstream, SimDuration rtt, bool ok,
                         SimDuration nominal_rtt);
  std::int32_t downstream_in_flight(ServiceId downstream) const;
  /// Current adaptive limit on the edge (max_limit when never exercised).
  double adaptive_limit_now(ServiceId downstream) const;
  std::int64_t bulkhead_rejections() const { return bulkhead_rejections_; }
  std::int64_t limiter_rejections() const { return limiter_rejections_; }
  // --- deadline shedding (this service as the CALLEE; gate lives in
  //     Cluster::CallArrives, which owns the residual-cost estimate) ---
  void NoteDeadlineShed() { ++deadline_sheds_; }
  std::int64_t deadline_sheds() const { return deadline_sheds_; }

  /// Drain-time quiescence check: once the simulation has no pending events
  /// and every request completed, nothing may still hold a slot, CPU burst,
  /// or downstream-gate charge here. Empty string = healthy; otherwise one
  /// "name: violation" line per problem.
  std::string IdleInvariantsBroken() const;

  // --- instantaneous metrics ---
  std::int32_t slots_in_use() const { return slots_in_use_; }
  std::int32_t slots_waiting() const {
    return static_cast<std::int32_t>(slot_waiters_.size());
  }
  /// Total live demand pressure: in-service plus waiting for a slot.
  std::int32_t queue_length() const { return slots_in_use() + slots_waiting(); }
  std::int32_t cpu_busy() const { return cpu_busy_; }
  std::int32_t cpu_queue_length() const {
    return static_cast<std::int32_t>(cpu_queue_.size());
  }

  /// Cumulative busy core-microseconds up to Now(). Monitors diff this
  /// between samples: utilization = delta / (cores * window).
  std::int64_t CumBusyCoreTime();

  std::int64_t completed_bursts() const { return completed_bursts_; }

 private:
  struct CpuBurst {
    SimDuration demand = 0;
    sim::InplaceFunction done;
    sim::InplaceFunction on_killed;
  };
  struct RunningBurst {
    std::uint64_t id;
    sim::EventHandle event;
    sim::InplaceFunction done;
    sim::InplaceFunction on_killed;
  };
  struct BreakerState {
    std::int32_t consecutive_failures = 0;
    SimTime open_until = 0;
  };
  /// Caller-side state of one outgoing RPC edge (this service → downstream).
  struct DownstreamState {
    std::int32_t in_flight = 0;
    double limit = 0;          ///< adaptive limit; 0 = starts at max_limit
    SimDuration rtt_floor = 0; ///< fastest successful RTT seen; 0 = none yet
  };

  void AccumulateBusy();
  void MaybeStartCpu();

  /// Claims a core and schedules the burst-completion event. The closures
  /// are forwarded into the new running_ entry, constructed in place.
  template <class F, class G>
  void StartBurst(SimDuration demand, F&& done, G&& on_killed) {
    AccumulateBusy();
    ++cpu_busy_;
    const std::uint64_t bid = next_burst_id_++;
    // The completion callbacks stay in the running_ entry so the event
    // closure is two words — small enough for the engine's inline buffer.
    auto event = sim_.After(demand, [this, bid] { FinishBurst(bid); });
    running_.emplace_back(bid, event, std::forward<F>(done),
                          std::forward<G>(on_killed));
  }

  void FinishBurst(std::uint64_t bid);
  void AdmitWaiters();

  void PublishQueueEvent(telemetry::QueueEvent::Kind kind);

  sim::Simulation& sim_;
  ServiceSpec spec_;
  ServiceId id_;
  telemetry::TelemetryBus* bus_;
  std::int32_t replicas_;
  double demand_factor_ = 1.0;

  std::int32_t slots_in_use_ = 0;
  sim::RingBuffer<sim::InplaceFunction> slot_waiters_;

  std::int32_t cpu_busy_ = 0;
  sim::RingBuffer<CpuBurst> cpu_queue_;
  std::vector<RunningBurst> running_;
  std::uint64_t next_burst_id_ = 0;
  std::int64_t busy_integral_ = 0;  ///< core-microseconds
  SimTime busy_last_update_ = 0;
  std::int64_t completed_bursts_ = 0;
  std::int64_t killed_bursts_ = 0;
  std::int64_t crash_count_ = 0;
  std::int64_t rejected_arrivals_ = 0;
  /// Per-caller breaker state, indexed by caller + 1 (0 = external client,
  /// kInvalidService). Grown on first failure report from a caller; absent
  /// entries mean "closed". Flat storage replaces the old std::map: callers
  /// are dense small service ids and the breaker check sits on the per-call
  /// hot path.
  std::vector<BreakerState> breakers_;
  /// Per-downstream gate state, indexed by downstream ServiceId (same dense
  /// flat-storage idiom as breakers_). Grown on first call into an edge.
  std::vector<DownstreamState> downstream_;
  std::int64_t bulkhead_rejections_ = 0;
  std::int64_t limiter_rejections_ = 0;
  std::int64_t deadline_sheds_ = 0;
};

}  // namespace grunt::microsvc
