#include "microsvc/application.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace grunt::microsvc {

const char* ToString(RequestClass c) {
  switch (c) {
    case RequestClass::kLegit: return "legit";
    case RequestClass::kAttack: return "attack";
    case RequestClass::kProbe: return "probe";
  }
  return "?";
}

const char* ToString(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kRejected: return "rejected";
    case Outcome::kDeadlineExceeded: return "deadline";
    case Outcome::kFailed: return "failed";
  }
  return "?";
}

namespace {

void ValidatePolicy(const RpcPolicy& p, const std::string& where) {
  if (p.timeout < 0) throw std::invalid_argument("negative timeout: " + where);
  if (p.max_retries < 0) {
    throw std::invalid_argument("negative max_retries: " + where);
  }
  if (p.backoff_base < 0) {
    throw std::invalid_argument("negative backoff_base: " + where);
  }
  if (p.backoff_multiplier < 1.0) {
    throw std::invalid_argument("backoff_multiplier < 1: " + where);
  }
  if (p.jitter < 0.0 || p.jitter >= 1.0) {
    throw std::invalid_argument("jitter outside [0,1): " + where);
  }
  if (p.nominal_rtt < 0) {
    throw std::invalid_argument("negative nominal_rtt: " + where);
  }
}

void ValidateDegradation(const ServiceSpec& s) {
  if (s.bulkhead_per_downstream < 0) {
    throw std::invalid_argument("negative bulkhead_per_downstream: " + s.name);
  }
  const AdaptiveLimitSpec& al = s.adaptive_limit;
  if (al.min_limit < 1) {
    throw std::invalid_argument("adaptive_limit min_limit < 1: " + s.name);
  }
  if (al.max_limit < al.min_limit) {
    throw std::invalid_argument("adaptive_limit max_limit < min_limit: " +
                                s.name);
  }
  if (al.rtt_tolerance < 1.0) {
    throw std::invalid_argument("adaptive_limit rtt_tolerance < 1: " + s.name);
  }
  if (al.decrease_factor <= 0.0 || al.decrease_factor > 1.0) {
    throw std::invalid_argument(
        "adaptive_limit decrease_factor outside (0,1]: " + s.name);
  }
  const DeadlineShedSpec& ds = s.deadline_shed;
  if (ds.margin <= 0.0) {
    throw std::invalid_argument("deadline_shed margin <= 0: " + s.name);
  }
  if (ds.depth_weight < 0.0) {
    throw std::invalid_argument("deadline_shed depth_weight < 0: " + s.name);
  }
}

}  // namespace

ServiceId Application::Builder::AddService(ServiceSpec spec) {
  app_.services_.push_back(std::move(spec));
  return static_cast<ServiceId>(app_.services_.size() - 1);
}

RequestTypeId Application::Builder::AddRequestType(RequestTypeSpec spec) {
  app_.types_.push_back(std::move(spec));
  return static_cast<RequestTypeId>(app_.types_.size() - 1);
}

Application::Builder& Application::Builder::SetName(std::string name) {
  app_.name_ = std::move(name);
  return *this;
}

Application::Builder& Application::Builder::SetNetLatency(SimDuration lat) {
  if (lat < 0) throw std::invalid_argument("net latency < 0");
  app_.net_latency_ = lat;
  return *this;
}

Application::Builder& Application::Builder::SetServiceTimeDist(
    ServiceTimeDist dist) {
  app_.dist_ = dist;
  return *this;
}

Application::Builder& Application::Builder::SetDefaultRpcPolicy(
    RpcPolicy policy) {
  app_.default_rpc_ = policy;
  return *this;
}

Application Application::Builder::Build() && {
  std::unordered_set<std::string> svc_names;
  for (const auto& s : app_.services_) {
    if (s.name.empty()) throw std::invalid_argument("service with empty name");
    if (!svc_names.insert(s.name).second) {
      throw std::invalid_argument("duplicate service name: " + s.name);
    }
    if (s.threads_per_replica <= 0 || s.cores_per_replica <= 0 ||
        s.initial_replicas <= 0 || s.max_replicas < s.initial_replicas) {
      throw std::invalid_argument("invalid service sizing: " + s.name);
    }
    if (s.max_queue_per_replica < 0 || s.breaker_threshold < 0 ||
        s.breaker_cooldown < 0) {
      throw std::invalid_argument("invalid admission config: " + s.name);
    }
    ValidateDegradation(s);
  }
  ValidatePolicy(app_.default_rpc_, "default_rpc");
  std::unordered_set<std::string> type_names;
  for (const auto& t : app_.types_) {
    if (t.name.empty()) throw std::invalid_argument("type with empty name");
    if (!type_names.insert(t.name).second) {
      throw std::invalid_argument("duplicate request type name: " + t.name);
    }
    if (!t.is_static && t.hops.empty()) {
      throw std::invalid_argument("dynamic type with empty path: " + t.name);
    }
    std::unordered_set<ServiceId> seen;
    for (const auto& h : t.hops) {
      if (h.service < 0 ||
          static_cast<std::size_t>(h.service) >= app_.services_.size()) {
        throw std::invalid_argument("dangling service ref in type: " + t.name);
      }
      if (h.cpu_demand < 0 || h.post_demand < 0) {
        throw std::invalid_argument("negative demand in type: " + t.name);
      }
      if (!seen.insert(h.service).second) {
        throw std::invalid_argument("path visits a service twice: " + t.name);
      }
      if (h.rpc) ValidatePolicy(*h.rpc, t.name);
    }
    if (t.deadline < 0) {
      throw std::invalid_argument("negative deadline in type: " + t.name);
    }
    if (t.heavy_multiplier < 1.0) {
      throw std::invalid_argument("heavy_multiplier < 1 in type: " + t.name);
    }
  }
  for (std::size_t i = 0; i < app_.services_.size(); ++i) {
    app_.service_index_.emplace(app_.services_[i].name,
                                static_cast<ServiceId>(i));
  }
  for (std::size_t i = 0; i < app_.types_.size(); ++i) {
    app_.type_index_.emplace(app_.types_[i].name,
                             static_cast<RequestTypeId>(i));
  }
  return std::move(app_);
}

std::optional<ServiceId> Application::FindService(std::string_view name) const {
  const auto it = service_index_.find(name);
  if (it == service_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<RequestTypeId> Application::FindRequestType(
    std::string_view name) const {
  const auto it = type_index_.find(name);
  if (it == type_index_.end()) return std::nullopt;
  return it->second;
}

bool StructurallyEqual(const Application& a, const Application& b) {
  return a.name() == b.name() && a.net_latency() == b.net_latency() &&
         a.service_time_dist() == b.service_time_dist() &&
         a.default_rpc() == b.default_rpc() &&
         a.services() == b.services() &&
         a.request_types() == b.request_types();
}

std::vector<RequestTypeId> Application::PublicDynamicTypes() const {
  std::vector<RequestTypeId> out;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (!types_[i].is_static) out.push_back(static_cast<RequestTypeId>(i));
  }
  return out;
}

std::vector<ServiceId> Application::PathServices(RequestTypeId t) const {
  std::vector<ServiceId> out;
  for (const auto& h : request_type(t).hops) out.push_back(h.service);
  return out;
}

std::vector<ServiceId> Application::SharedServices(RequestTypeId a,
                                                   RequestTypeId b) const {
  std::vector<ServiceId> out;
  const auto pb = PathServices(b);
  for (ServiceId s : PathServices(a)) {
    if (std::find(pb.begin(), pb.end(), s) != pb.end()) out.push_back(s);
  }
  return out;
}

std::optional<std::size_t> Application::HopIndexOf(RequestTypeId t,
                                                   ServiceId s) const {
  const auto& hops = request_type(t).hops;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (hops[i].service == s) return i;
  }
  return std::nullopt;
}

bool Application::IsUpstreamOn(RequestTypeId t, ServiceId up,
                               ServiceId down) const {
  const auto iu = HopIndexOf(t, up);
  const auto id = HopIndexOf(t, down);
  return iu && id && *iu < *id;
}

std::vector<RequestTypeId> Application::TypesThrough(ServiceId s) const {
  std::vector<RequestTypeId> out;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (HopIndexOf(static_cast<RequestTypeId>(i), s)) {
      out.push_back(static_cast<RequestTypeId>(i));
    }
  }
  return out;
}

}  // namespace grunt::microsvc
