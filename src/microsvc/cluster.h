#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "microsvc/application.h"
#include "microsvc/service.h"
#include "microsvc/types.h"
#include "sim/simulation.h"
#include "sim/slab_pool.h"
#include "telemetry/bus.h"
#include "util/rng.h"

namespace grunt::microsvc {

/// Canonical observation records live in the telemetry plane; these aliases
/// keep the historical microsvc:: spellings working.
using CompletionRecord = telemetry::CompletionRecord;
using SpanEvent = telemetry::SpanEvent;

/// Instantiates an Application into a running simulation and drives the
/// request lifecycle across services.
///
/// Lifecycle of one request along its critical-path chain s0 → … → sn:
///  1. hop i's call arrives at s_i (after per-message network latency) and
///     waits for a thread slot;
///  2. once granted, s_i runs the hop's pre-call CPU burst, then issues the
///     synchronous call to s_{i+1} **while keeping its slot**;
///  3. when the reply from s_{i+1} comes back, s_i runs the hop's post-reply
///     CPU burst, releases its slot and replies to s_{i-1};
///  4. hop 0's reply returns to the client and the CompletionRecord is
///     logged.
/// Both of the paper's blocking effects (execution blocking, cross-tier
/// queue overflow) are emergent consequences of steps 2–3.
///
/// Fault tolerance (per-hop RpcPolicy, all dormant by default): each RPC
/// edge can carry a client timeout and bounded retries with exponential
/// backoff + jitter; a timed-out attempt keeps executing downstream as
/// orphan work (its late reply is discarded), while the retry re-injects a
/// fresh arrival — the mechanism behind retry storms. An end-to-end
/// deadline on the request type truncates every downstream attempt's
/// budget. Failures (timeout, load-shed rejection, replica-crash kill)
/// propagate upstream as error replies: each upstream hop skips its
/// post-reply burst, releases its slot, and may itself retry.
///
/// The lifecycle is an explicit state machine over three slab-pooled record
/// kinds addressed by generation-checked handles (sim::PoolHandle, the
/// sim::EventHandle idiom): ActiveRequest (one per request), CallState (one
/// per RPC attempt, caller side) and HopCtx (one per attempt's hop
/// execution, callee side). Event closures carry `this` plus a handle — a
/// few words, always inside the engine's inline buffer — so the steady-state
/// request path schedules, fires and completes without touching the
/// allocator. A CallState's slot is released the instant the attempt
/// resolves; the late reply of an orphaned attempt carries a stale handle
/// and is discarded by the generation check, which replaces the old
/// `resolved` flag + shared_ptr keep-alive.
class Cluster {
 public:
  using CompletionCallback = std::function<void(const CompletionRecord&)>;

  Cluster(sim::Simulation& sim, const Application& app, std::uint64_t seed);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Submits a request of `type` now. `heavy` requests use the type's
  /// heavy_multiplier on every CPU demand. Returns the request id.
  std::uint64_t Submit(RequestTypeId type, RequestClass cls, bool heavy,
                       std::uint64_t client_id,
                       CompletionCallback on_complete = nullptr);

  const Application& app() const { return app_; }
  sim::Simulation& simulation() { return sim_; }

  Service& service(ServiceId id) { return *services_.at(static_cast<std::size_t>(id)); }
  const Service& service(ServiceId id) const {
    return *services_.at(static_cast<std::size_t>(id));
  }
  std::size_t service_count() const { return services_.size(); }

  /// Cumulative request+response bytes seen at the gateway. Failed requests
  /// count only their request bytes (the error reply is negligible).
  std::int64_t gateway_bytes() const { return gateway_bytes_; }

  /// Every completed request, in completion order. In bounded mode (see
  /// SetCompletionLogBound) only a suffix of the stream is retained — still
  /// contiguous and in completion order.
  const std::vector<CompletionRecord>& completions() const {
    return completions_;
  }
  /// Frees the completion log (long-running benches call this periodically
  /// after draining what they need).
  void ClearCompletions() { completions_.clear(); }

  /// Opt-in bounded completion log for long-running simulations: retains at
  /// least the most recent `n` records and compacts (amortized O(1)) when
  /// the log reaches 2n, so memory stays O(n) even when the caller never
  /// calls ClearCompletions(). 0 (the default) = unbounded. Listeners and
  /// per-request callbacks always see every record either way.
  void SetCompletionLogBound(std::size_t n) {
    completion_bound_ = n;
    if (n > 0) completions_.reserve(2 * n);
  }
  std::size_t completion_log_bound() const { return completion_bound_; }
  /// Completion records dropped by the bound so far.
  std::uint64_t completions_dropped() const { return completions_dropped_; }

  std::uint64_t submitted_count() const { return next_request_id_; }
  /// Requests that reached a terminal outcome (any Outcome value).
  std::uint64_t completed_count() const { return completed_count_; }
  /// Client-view in-flight count. Orphan work from timed-out attempts may
  /// still be draining inside the cluster after this reaches zero.
  std::uint64_t in_flight() const { return next_request_id_ - completed_count_; }
  /// Terminal outcomes by kind; sums to completed_count().
  std::uint64_t outcome_count(Outcome o) const {
    return outcome_counts_[static_cast<std::size_t>(o)];
  }
  std::uint64_t ok_count() const { return outcome_count(Outcome::kOk); }

  /// Extra per-message network latency (fault injection: network spikes).
  void AddExtraNetLatency(SimDuration delta) { extra_net_latency_ += delta; }
  SimDuration extra_net_latency() const { return extra_net_latency_; }

  /// The cluster's observation plane. Everything that used to be a bolt-on
  /// listener (span sink, submit/completion listeners, monitor polling) is a
  /// subscription on these channels or a gauge in the registry. Dispatch is
  /// synchronous in registration order; completion subscribers fire before
  /// the per-request on_complete callback.
  telemetry::TelemetryBus& telemetry() { return bus_; }
  const telemetry::TelemetryBus& telemetry() const { return bus_; }

  /// Pool occupancy of the request state machine (bench/diagnostic surface).
  struct LifecycleStats {
    sim::SlabPoolStats requests;
    sim::SlabPoolStats calls;
    sim::SlabPoolStats hops;
  };
  LifecycleStats lifecycle_stats() const;

  /// End-of-run conservation check, meaningful once the simulation has fully
  /// drained (no pending events): every submitted request reached exactly
  /// one terminal outcome (admitted == sum over outcome kinds), the three
  /// lifecycle slab pools leaked no handles, and every service is quiescent
  /// (no held slots, stranded waiters, live CPU work, or charged
  /// downstream gates). Returns "" when healthy, else one violation per
  /// line. Tier-1 tests assert this at drain.
  std::string DrainInvariantsBroken() const;

  /// Requests refused by deadline-aware shedding across all services.
  std::int64_t deadline_sheds() const;

 private:
  /// Per-hop trace timestamps (a retried hop records its last attempt).
  struct HopTrace {
    SimTime arrived = 0;
    SimTime slot_granted = 0;
    SimTime finished = 0;
  };

  /// Per-request record. Pooled: `refs` counts the live CallState/HopCtx
  /// records and scheduled retry/static-complete closures pointing at it;
  /// the slot is recycled when the request is terminal and the last
  /// reference (e.g. a draining orphan subtree) lets go. `traces` keeps its
  /// capacity across recycling, so steady-state submits allocate nothing.
  struct ActiveRequest {
    std::uint64_t id = 0;
    RequestTypeId type = kInvalidRequestType;
    RequestClass cls = RequestClass::kLegit;
    bool heavy = false;
    bool terminal = false;  ///< guards the exactly-one-outcome invariant
    std::int32_t refs = 0;
    std::uint64_t client_id = 0;
    SimTime start = 0;
    SimTime deadline = 0;  ///< absolute; 0 = none
    std::int32_t retries = 0;
    CompletionCallback on_complete;
    std::vector<HopTrace> traces;
  };

  /// Caller-side state of one RPC attempt into `hop`. The timeout timer,
  /// the reply and the rejection message all race to ResolveCall; the first
  /// wins and releases the slot, so later arrivals (e.g. an orphan
  /// attempt's late reply) carry a stale handle and are discarded. The
  /// continuation is not a closure but data: a null `parent_hop` means
  /// "this is hop 0 — complete the request", anything else names the
  /// upstream HopCtx waiting on this edge.
  struct CallState {
    sim::PoolHandle req;
    sim::PoolHandle parent_hop;  ///< null: edge 0, outcome completes the request
    std::uint32_t hop = 0;
    std::int32_t attempt = 0;
    ServiceId caller = kInvalidService;
    bool sent = false;  ///< actually issued (false: breaker/deadline fast-fail)
    bool deadline_limited = false;  ///< timeout truncated by the deadline
    /// Charged the caller's per-downstream gate (bulkhead/adaptive limit);
    /// ResolveCall must uncharge and feed the limiter an RTT sample.
    bool gated = false;
    SimTime issued_at = 0;  ///< gate-admission time, start of the RTT sample
    sim::EventHandle timeout;
  };

  /// Callee-side state of one attempt's hop execution. Terminal transitions
  /// (FinishHop/AbortHop) send the reply upstream — it pays the reply's
  /// network latency and then races against the caller's timeout inside
  /// ResolveCall via the (possibly stale) `call` handle.
  struct HopCtx {
    sim::PoolHandle req;
    sim::PoolHandle call;  ///< caller-side state this hop replies to
    std::uint32_t hop = 0;
  };

  /// Issues attempt `attempt` of the RPC edge into `hop`; the edge's final
  /// outcome (after retries) reaches `parent_hop` — or completes the
  /// request when `parent_hop` is null — exactly once.
  void IssueCall(sim::PoolHandle req_h, std::uint32_t hop, ServiceId caller,
                 std::int32_t attempt, sim::PoolHandle parent_hop);
  void ResolveCall(sim::PoolHandle call_h, Outcome o);
  /// Feeds a resolved edge's outcome to its continuation.
  void ContinueAfterCall(sim::PoolHandle req_h, sim::PoolHandle parent_hop,
                         Outcome o);
  void CallArrives(sim::PoolHandle hop_h);
  void OnSlotGranted(sim::PoolHandle hop_h);
  void AfterPreCpu(sim::PoolHandle hop_h);
  void FinishHop(sim::PoolHandle hop_h);
  void AbortHop(sim::PoolHandle hop_h, Outcome o);
  void EmitSpan(const HopCtx& ctx, const ActiveRequest& req);
  void CompleteWith(sim::PoolHandle req_h, Outcome o);
  void Ref(ActiveRequest& req) { ++req.refs; }
  void Unref(sim::PoolHandle req_h);
  SimDuration BackoffDelay(const RpcPolicy& policy, std::int32_t attempt);
  SimDuration DrawDemand(SimDuration mean, double multiplier);
  /// True when the request's remaining deadline budget cannot cover the
  /// expected residual path cost from `hop` onward under `shed`'s margin.
  bool ShouldShedForDeadline(const ActiveRequest& req, std::uint32_t hop,
                             const DeadlineShedSpec& shed) const;
  SimDuration NetLatency() const {
    return app_.net_latency() + extra_net_latency_;
  }

  /// Expected residual cost of a request type from hop h (inclusive) to the
  /// client's reply, precomputed per (type, hop) for the deadline shedder:
  /// mean CPU microseconds still to burn (pre+post of every remaining hop,
  /// before the heavy multiplier) and network messages still to pay.
  struct ResidualCost {
    double cpu_mean = 0;
    double messages = 0;
  };

  /// Registers the per-service, gateway and engine gauges (ctor helper).
  void RegisterGauges();

  sim::Simulation& sim_;
  const Application& app_;
  RngStream demand_rng_;
  RngStream retry_rng_;
  /// Declared before services_: each Service holds a pointer to the bus.
  telemetry::TelemetryBus bus_;
  std::vector<std::unique_ptr<Service>> services_;
  std::vector<std::vector<ResidualCost>> residual_costs_;  ///< [type][hop]
  sim::SlabPool<ActiveRequest> requests_;
  sim::SlabPool<CallState> calls_;
  sim::SlabPool<HopCtx> hops_;
  std::vector<CompletionRecord> completions_;
  std::size_t completion_bound_ = 0;
  std::uint64_t completions_dropped_ = 0;
  std::int64_t gateway_bytes_ = 0;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t completed_count_ = 0;
  std::array<std::uint64_t, kOutcomeCount> outcome_counts_{};
  SimDuration extra_net_latency_ = 0;
};

}  // namespace grunt::microsvc
