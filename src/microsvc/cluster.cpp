#include "microsvc/cluster.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "telemetry/engine_metrics.h"

namespace grunt::microsvc {

// The lifecycle below is the pooled rewrite of the original shared_ptr +
// std::function implementation. Observable behaviour is bit-identical: every
// sim_.After() call, RNG draw and Service interaction happens at the same
// point in the same order as before (pinned by the golden completion-stream
// hash tests), only the storage of the in-flight state changed. Three
// invariants carry the memory safety:
//  * a CallState slot is released the moment the attempt resolves — any
//    later reply/timeout carries a stale handle and is dropped by the pool's
//    generation check (this replaces the old `resolved` flag);
//  * a HopCtx slot is released at its terminal transition (FinishHop,
//    AbortHop, or load-shed rejection on arrival);
//  * an ActiveRequest slot is released when it is terminal AND the last
//    referencing record/closure (including draining orphan subtrees) lets
//    go — `refs` counts CallStates, HopCtxs and scheduled retry/static
//    closures.

Cluster::Cluster(sim::Simulation& sim, const Application& app,
                 std::uint64_t seed)
    : sim_(sim), app_(app), demand_rng_(seed, "cluster.demand." + app.name()),
      retry_rng_(seed, "cluster.retry." + app.name()) {
  services_.reserve(app.service_count());
  for (std::size_t i = 0; i < app.service_count(); ++i) {
    services_.push_back(std::make_unique<Service>(
        sim_, app.service(static_cast<ServiceId>(i)),
        static_cast<ServiceId>(i), &bus_));
  }
  RegisterGauges();
  // Residual-cost table for the deadline shedder: suffix sums of the mean
  // hop demands, plus the messages still to travel — from hop h's arrival, a
  // chain of n hops has (n-1-h) calls down, (n-h) replies up (incl. the
  // client's), i.e. 2n-h-1 messages left of the full request's 2n.
  residual_costs_.resize(app.request_type_count());
  for (std::size_t t = 0; t < app.request_type_count(); ++t) {
    const auto& hops = app.request_type(static_cast<RequestTypeId>(t)).hops;
    auto& per_hop = residual_costs_[t];
    per_hop.resize(hops.size());
    double cpu = 0;
    for (std::size_t h = hops.size(); h-- > 0;) {
      cpu += static_cast<double>(hops[h].cpu_demand + hops[h].post_demand);
      per_hop[h].cpu_mean = cpu;
      per_hop[h].messages =
          static_cast<double>(2 * hops.size() - h - 1);
    }
  }
}

void Cluster::RegisterGauges() {
  // Callback gauges cost the instrumented code nothing: the registry reads
  // them only when a monitor samples or a tool snapshots. These are the
  // values the polling observers (CloudWatch monitor, IDS saturation rule)
  // used to pull out of Cluster/Service directly.
  auto& m = bus_.metrics();
  m.Gauge("gateway.bytes",
          [this] { return static_cast<double>(gateway_bytes_); });
  m.Gauge("cluster.submitted",
          [this] { return static_cast<double>(next_request_id_); });
  m.Gauge("cluster.completed",
          [this] { return static_cast<double>(completed_count_); });
  for (std::size_t o = 0; o < kOutcomeCount; ++o) {
    m.Gauge(std::string("cluster.outcome.") +
                ToString(static_cast<Outcome>(o)),
            [this, o] { return static_cast<double>(outcome_counts_[o]); });
  }
  for (std::size_t i = 0; i < services_.size(); ++i) {
    Service* svc = services_[i].get();
    const std::string prefix = "svc." + std::to_string(i) + ".";
    m.Gauge(prefix + "busy_core_us",
            [svc] { return static_cast<double>(svc->CumBusyCoreTime()); });
    m.Gauge(prefix + "queue_len",
            [svc] { return static_cast<double>(svc->queue_length()); });
    m.Gauge(prefix + "replicas",
            [svc] { return static_cast<double>(svc->replicas()); });
    m.Gauge(prefix + "cores",
            [svc] { return static_cast<double>(svc->cores()); });
    m.Gauge(prefix + "rejected_arrivals",
            [svc] { return static_cast<double>(svc->rejected_arrivals()); });
    m.Gauge(prefix + "deadline_sheds",
            [svc] { return static_cast<double>(svc->deadline_sheds()); });
  }
  telemetry::RegisterEngineGauges(m, sim_);
}

Cluster::LifecycleStats Cluster::lifecycle_stats() const {
  return LifecycleStats{requests_.stats(), calls_.stats(), hops_.stats()};
}

SimDuration Cluster::DrawDemand(SimDuration mean, double multiplier) {
  const auto scaled = static_cast<SimDuration>(
      static_cast<double>(mean) * multiplier);
  if (scaled <= 0) return 0;
  switch (app_.service_time_dist()) {
    case ServiceTimeDist::kDeterministic:
      return scaled;
    case ServiceTimeDist::kExponential:
      return std::max<SimDuration>(1, demand_rng_.NextExpDuration(scaled));
  }
  return scaled;
}

SimDuration Cluster::BackoffDelay(const RpcPolicy& policy,
                                  std::int32_t attempt) {
  double delay = static_cast<double>(policy.backoff_base) *
                 std::pow(policy.backoff_multiplier,
                          static_cast<double>(attempt));
  if (policy.jitter > 0.0) {
    delay *= 1.0 + policy.jitter * (2.0 * retry_rng_.NextDouble() - 1.0);
  }
  return std::max<SimDuration>(0, static_cast<SimDuration>(std::llround(delay)));
}

void Cluster::Unref(sim::PoolHandle req_h) {
  ActiveRequest& req = requests_[req_h];
  if (--req.refs > 0) return;
  assert(req.terminal && "request record dropped before completing");
  // Drop caller-captured state now instead of at the slot's next reuse.
  req.on_complete = nullptr;
  requests_.Release(req_h);
}

std::uint64_t Cluster::Submit(RequestTypeId type, RequestClass cls, bool heavy,
                              std::uint64_t client_id,
                              CompletionCallback on_complete) {
  const auto& spec = app_.request_type(type);
  const sim::PoolHandle req_h = requests_.Acquire();
  ActiveRequest& req = requests_[req_h];
  req.id = next_request_id_++;
  req.type = type;
  req.cls = cls;
  req.heavy = heavy;
  req.terminal = false;
  req.refs = 0;
  req.client_id = client_id;
  req.start = sim_.Now();
  req.deadline = spec.deadline > 0 ? sim_.Now() + spec.deadline : 0;
  req.retries = 0;
  req.on_complete = std::move(on_complete);
  // assign (not resize): the recycled vector may hold stale entries.
  req.traces.assign(spec.hops.size(), HopTrace{});

  gateway_bytes_ += spec.request_bytes;
  if (bus_.submit().has_subscribers()) {
    bus_.submit().Publish(
        telemetry::RequestSubmit{type, cls, client_id, sim_.Now()});
  }

  const std::uint64_t rid = req.id;
  if (spec.is_static || spec.hops.empty()) {
    // Served by the gateway/CDN without touching the backend: constant small
    // latency, no backend load. (Sec VI "Limitations": static requests
    // escape the attack entirely.)
    Ref(req);
    sim_.After(NetLatency() * 2, [this, req_h] {
      CompleteWith(req_h, Outcome::kOk);
      Unref(req_h);
    });
    return rid;
  }

  IssueCall(req_h, 0, kInvalidService, 0, sim::PoolHandle{});
  return rid;
}

void Cluster::IssueCall(sim::PoolHandle req_h, std::uint32_t hop,
                        ServiceId caller, std::int32_t attempt,
                        sim::PoolHandle parent_hop) {
  ActiveRequest& req = requests_[req_h];
  const sim::PoolHandle call_h = calls_.Acquire();
  CallState& call = calls_[call_h];
  call.req = req_h;
  call.parent_hop = parent_hop;
  call.hop = hop;
  call.attempt = attempt;
  call.caller = caller;
  call.sent = false;
  call.deadline_limited = false;
  call.gated = false;
  call.issued_at = sim_.Now();
  call.timeout = sim::EventHandle{};
  Ref(req);

  // End-to-end deadline gate: no budget left, fail without sending.
  if (req.deadline > 0 && sim_.Now() >= req.deadline) {
    sim_.After(0, [this, call_h] {
      ResolveCall(call_h, Outcome::kDeadlineExceeded);
    });
    return;
  }

  const Hop& h = app_.request_type(req.type).hops[hop];
  Service& callee = service(h.service);

  // Circuit breaker fast-fail: no network round trip, no load on the callee.
  if (!callee.BreakerAllows(caller)) {
    sim_.After(0, [this, call_h] { ResolveCall(call_h, Outcome::kRejected); });
    return;
  }

  // Caller-side degradation gate: the bulkhead quota and adaptive limit on
  // this (caller → callee) edge. Like the breaker, rejection is local — no
  // network round trip, no load on the callee — and retryable per policy.
  if (caller != kInvalidService && service(caller).degradation_enabled()) {
    if (service(caller).AdmitDownstreamCall(h.service) !=
        Service::DownstreamGate::kAdmitted) {
      sim_.After(0,
                 [this, call_h] { ResolveCall(call_h, Outcome::kRejected); });
      return;
    }
    call.gated = true;
  }

  call.sent = true;
  // Per-attempt timeout, truncated to the remaining deadline budget
  // (deadline propagation: downstream hops inherit the shrinking budget).
  const RpcPolicy& policy = app_.rpc_policy(req.type, hop);
  SimDuration timeout = policy.timeout;
  if (req.deadline > 0) {
    const SimDuration remaining = req.deadline - sim_.Now();
    if (timeout == 0 || remaining < timeout) {
      timeout = remaining;
      call.deadline_limited = true;
    }
  }
  if (timeout > 0) {
    // Timeout guards are the engine's churn profile: almost every attempt
    // completes in time and cancels this. kTimer files it in the timing
    // wheel, where that cancel is O(1) instead of a dead heap entry.
    call.timeout =
        sim_.After(timeout, sim::EventClass::kTimer, [this, call_h] {
          const CallState* c = calls_.Get(call_h);
          if (c == nullptr) return;  // already resolved
          ResolveCall(call_h, c->deadline_limited ? Outcome::kDeadlineExceeded
                                                  : Outcome::kTimeout);
        });
  }

  const sim::PoolHandle hop_h = hops_.Acquire();
  HopCtx& ctx = hops_[hop_h];
  ctx.req = req_h;
  ctx.call = call_h;
  ctx.hop = hop;
  Ref(req);
  sim_.After(NetLatency(), [this, hop_h] { CallArrives(hop_h); });
}

void Cluster::ResolveCall(sim::PoolHandle call_h, Outcome o) {
  CallState* call = calls_.Get(call_h);
  if (call == nullptr) return;  // late reply of a timed-out (orphan) attempt
  call->timeout.Cancel();
  const sim::PoolHandle req_h = call->req;
  const sim::PoolHandle parent_hop = call->parent_hop;
  const std::uint32_t hop = call->hop;
  const std::int32_t attempt = call->attempt;
  const ServiceId caller = call->caller;
  const bool sent = call->sent;
  const bool gated = call->gated;
  const SimTime issued_at = call->issued_at;
  // Releasing the slot is what marks the attempt resolved: the timeout, the
  // reply and the rejection race here, and every racer after the first now
  // holds a stale handle.
  calls_.Release(call_h);

  ActiveRequest& req = requests_[req_h];
  const Hop& h = app_.request_type(req.type).hops[hop];
  const RpcPolicy& policy = app_.rpc_policy(req.type, hop);
  if (sent) {
    service(h.service).ReportCallerOutcome(caller, o == Outcome::kOk);
  }
  if (gated) {
    // Uncharge the caller's per-downstream gate before any retry re-charges
    // it, and feed the limiter this attempt's RTT sample.
    service(caller).EndDownstreamCall(h.service, sim_.Now() - issued_at,
                                      o == Outcome::kOk, policy.nominal_rtt);
  }
  if (o == Outcome::kOk) {
    ContinueAfterCall(req_h, parent_hop, Outcome::kOk);
    Unref(req_h);
    return;
  }
  // Retry decision. A spent deadline can never be retried into.
  if (o != Outcome::kDeadlineExceeded && attempt < policy.max_retries) {
    ++req.retries;
    const SimDuration delay = BackoffDelay(policy, attempt);
    Ref(req);  // kept alive by the scheduled retry
    // Backoff delays are long on the event-time scale, so kTimer parks them
    // in the wheel until their level expires instead of sifting the heap.
    sim_.After(delay, sim::EventClass::kTimer,
               [this, req_h, hop, caller, next = attempt + 1, parent_hop] {
                 IssueCall(req_h, hop, caller, next, parent_hop);
                 Unref(req_h);
               });
    Unref(req_h);
    return;
  }
  ContinueAfterCall(req_h, parent_hop, o);
  Unref(req_h);
}

void Cluster::ContinueAfterCall(sim::PoolHandle req_h,
                                sim::PoolHandle parent_hop, Outcome o) {
  if (!parent_hop) {
    // Hop-0 edge: the outcome reaches the client.
    CompleteWith(req_h, o);
    return;
  }
  if (o != Outcome::kOk) {
    // Downstream gave up: skip the post-reply burst, release the slot and
    // propagate the error upstream.
    AbortHop(parent_hop, o);
    return;
  }
  HopCtx& ctx = hops_[parent_hop];
  ActiveRequest& req = requests_[req_h];
  const auto& spec = app_.request_type(req.type);
  const Hop& h = spec.hops[ctx.hop];
  const double mult = req.heavy ? spec.heavy_multiplier : 1.0;
  service(h.service).RunCpu(
      DrawDemand(h.post_demand, mult),
      [this, parent_hop] { FinishHop(parent_hop); },
      [this, parent_hop] { AbortHop(parent_hop, Outcome::kFailed); });
}

void Cluster::CallArrives(sim::PoolHandle hop_h) {
  HopCtx& ctx = hops_[hop_h];
  const sim::PoolHandle req_h = ctx.req;
  ActiveRequest& req = requests_[req_h];
  req.traces[ctx.hop].arrived = sim_.Now();
  Service& svc = service(app_.request_type(req.type).hops[ctx.hop].service);
  // Deadline-aware shedding: refuse doomed work BEFORE it consumes a thread
  // slot. The error reply drains the upstream subtree instead of letting it
  // block on a request that cannot finish in time anyway.
  const DeadlineShedSpec& shed = svc.spec().deadline_shed;
  if (shed.enabled && req.deadline > 0 &&
      ShouldShedForDeadline(req, ctx.hop, shed)) {
    svc.NoteDeadlineShed();
    const sim::PoolHandle call_h = ctx.call;
    sim_.After(NetLatency(), [this, call_h] {
      ResolveCall(call_h, Outcome::kDeadlineExceeded);
    });
    hops_.Release(hop_h);
    Unref(req_h);
    return;
  }
  if (!svc.AcquireSlot([this, hop_h] { OnSlotGranted(hop_h); })) {
    // Load shed: bounded arrival queue is full; the rejection response
    // travels back to the caller immediately.
    const sim::PoolHandle call_h = ctx.call;
    sim_.After(NetLatency(), [this, call_h] {
      ResolveCall(call_h, Outcome::kRejected);
    });
    hops_.Release(hop_h);
    Unref(req_h);
  }
}

bool Cluster::ShouldShedForDeadline(const ActiveRequest& req,
                                    std::uint32_t hop,
                                    const DeadlineShedSpec& shed) const {
  const auto& spec = app_.request_type(req.type);
  const ResidualCost& rc =
      residual_costs_[static_cast<std::size_t>(req.type)][hop];
  const double mult = req.heavy ? spec.heavy_multiplier : 1.0;
  // Expected-value feasibility estimate: mean residual CPU (demand factors /
  // queueing excluded — margin is the knob that absorbs them) plus the
  // network messages still to pay at today's per-message latency.
  const double expected =
      mult * rc.cpu_mean +
      rc.messages * static_cast<double>(NetLatency());
  const double required =
      shed.margin * (1.0 + shed.depth_weight * static_cast<double>(hop)) *
      expected;
  return static_cast<double>(req.deadline - sim_.Now()) < required;
}

std::int64_t Cluster::deadline_sheds() const {
  std::int64_t total = 0;
  for (const auto& svc : services_) total += svc->deadline_sheds();
  return total;
}

std::string Cluster::DrainInvariantsBroken() const {
  std::string out;
  const auto fail = [&out](const std::string& msg) {
    out += msg;
    out += '\n';
  };
  if (completed_count_ != next_request_id_) {
    fail("requests not conserved: " + std::to_string(next_request_id_) +
         " admitted vs " + std::to_string(completed_count_) + " completed");
  }
  std::uint64_t by_outcome = 0;
  for (const auto c : outcome_counts_) by_outcome += c;
  if (by_outcome != completed_count_) {
    fail("outcome counts sum to " + std::to_string(by_outcome) + ", not " +
         std::to_string(completed_count_));
  }
  const LifecycleStats pools = lifecycle_stats();
  const auto pool_check = [&fail](const char* name,
                                  const sim::SlabPoolStats& s) {
    if (s.live != 0) {
      fail(std::string("leaked ") + name + " slots: " +
           std::to_string(s.live));
    }
  };
  pool_check("ActiveRequest", pools.requests);
  pool_check("CallState", pools.calls);
  pool_check("HopCtx", pools.hops);
  for (const auto& svc : services_) out += svc->IdleInvariantsBroken();
  return out;
}

void Cluster::OnSlotGranted(sim::PoolHandle hop_h) {
  HopCtx& ctx = hops_[hop_h];
  ActiveRequest& req = requests_[ctx.req];
  req.traces[ctx.hop].slot_granted = sim_.Now();
  const auto& spec = app_.request_type(req.type);
  const Hop& h = spec.hops[ctx.hop];
  const double mult = req.heavy ? spec.heavy_multiplier : 1.0;
  const bool last = (ctx.hop + 1 == spec.hops.size());
  // The last hop has no downstream call: fold pre+post into one burst.
  const SimDuration demand =
      last ? DrawDemand(h.cpu_demand + h.post_demand, mult)
           : DrawDemand(h.cpu_demand, mult);
  service(h.service).RunCpu(
      demand, [this, hop_h] { AfterPreCpu(hop_h); },
      [this, hop_h] { AbortHop(hop_h, Outcome::kFailed); });
}

void Cluster::AfterPreCpu(sim::PoolHandle hop_h) {
  HopCtx& ctx = hops_[hop_h];
  const sim::PoolHandle req_h = ctx.req;
  const auto& spec = app_.request_type(requests_[req_h].type);
  if (ctx.hop + 1 < spec.hops.size()) {
    // Synchronous downstream call; this hop's slot stays held. The edge's
    // outcome comes back through ContinueAfterCall with us as parent.
    IssueCall(req_h, ctx.hop + 1, spec.hops[ctx.hop].service, 0, hop_h);
  } else {
    FinishHop(hop_h);
  }
}

void Cluster::EmitSpan(const HopCtx& ctx, const ActiveRequest& req) {
  if (!bus_.span().has_subscribers()) return;
  const auto& spec = app_.request_type(req.type);
  SpanEvent span;
  span.request_id = req.id;
  span.type = req.type;
  span.cls = req.cls;
  span.service = spec.hops[ctx.hop].service;
  span.hop_index = ctx.hop;
  span.arrived = req.traces[ctx.hop].arrived;
  span.slot_granted = req.traces[ctx.hop].slot_granted;
  span.finished = req.traces[ctx.hop].finished;
  bus_.span().Publish(span);
}

void Cluster::FinishHop(sim::PoolHandle hop_h) {
  HopCtx& ctx = hops_[hop_h];
  const sim::PoolHandle req_h = ctx.req;
  ActiveRequest& req = requests_[req_h];
  req.traces[ctx.hop].finished = sim_.Now();
  const auto& spec = app_.request_type(req.type);
  service(spec.hops[ctx.hop].service).ReleaseSlot();
  EmitSpan(ctx, req);
  // The reply travels back over the network, then races the caller's
  // timeout inside ResolveCall.
  const sim::PoolHandle call_h = ctx.call;
  sim_.After(NetLatency(), [this, call_h] {
    ResolveCall(call_h, Outcome::kOk);
  });
  hops_.Release(hop_h);
  Unref(req_h);
}

void Cluster::AbortHop(sim::PoolHandle hop_h, Outcome o) {
  HopCtx& ctx = hops_[hop_h];
  const sim::PoolHandle req_h = ctx.req;
  ActiveRequest& req = requests_[req_h];
  req.traces[ctx.hop].finished = sim_.Now();
  const auto& spec = app_.request_type(req.type);
  service(spec.hops[ctx.hop].service).ReleaseSlot();
  EmitSpan(ctx, req);
  const sim::PoolHandle call_h = ctx.call;
  sim_.After(NetLatency(), [this, call_h, o] { ResolveCall(call_h, o); });
  hops_.Release(hop_h);
  Unref(req_h);
}

void Cluster::CompleteWith(sim::PoolHandle req_h, Outcome o) {
  ActiveRequest& req = requests_[req_h];
  // Exactly-one-terminal-outcome invariant: timeout, rejection and crash
  // paths all funnel here, and none may fire twice for one request.
  assert(!req.terminal && "request completed twice");
  if (req.terminal) return;
  req.terminal = true;
  const auto& spec = app_.request_type(req.type);
  if (o == Outcome::kOk) gateway_bytes_ += spec.response_bytes;
  ++completed_count_;
  ++outcome_counts_[static_cast<std::size_t>(o)];
  CompletionRecord rec;
  rec.request_id = req.id;
  rec.type = req.type;
  rec.cls = req.cls;
  rec.heavy = req.heavy;
  rec.client_id = req.client_id;
  rec.start = req.start;
  rec.end = sim_.Now();
  rec.outcome = o;
  rec.retries = req.retries;
  completions_.push_back(rec);
  if (completion_bound_ > 0 && completions_.size() >= 2 * completion_bound_) {
    // Bounded mode: compact down to the newest `completion_bound_` records.
    completions_dropped_ += completions_.size() - completion_bound_;
    completions_.erase(completions_.begin(),
                       completions_.end() -
                           static_cast<std::ptrdiff_t>(completion_bound_));
  }
  // Bus subscribers first (in registration order), the per-request callback
  // last — the ordering contract the old listener list established.
  bus_.completion().Publish(rec);
  if (req.on_complete) req.on_complete(rec);
}

}  // namespace grunt::microsvc
