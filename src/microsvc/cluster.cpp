#include "microsvc/cluster.h"

#include <stdexcept>
#include <utility>

namespace grunt::microsvc {

/// Per-request mutable state shared by the lifecycle closures.
struct Cluster::ActiveRequest {
  std::uint64_t id = 0;
  RequestTypeId type = kInvalidRequestType;
  RequestClass cls = RequestClass::kLegit;
  bool heavy = false;
  std::uint64_t client_id = 0;
  SimTime start = 0;
  CompletionCallback on_complete;
  /// Per-hop trace timestamps (filled as the request advances).
  struct HopTrace {
    SimTime arrived = 0;
    SimTime slot_granted = 0;
    SimTime finished = 0;
  };
  std::vector<HopTrace> traces;
};

Cluster::Cluster(sim::Simulation& sim, const Application& app,
                 std::uint64_t seed)
    : sim_(sim), app_(app), demand_rng_(seed, "cluster.demand." + app.name()) {
  services_.reserve(app.service_count());
  for (std::size_t i = 0; i < app.service_count(); ++i) {
    services_.push_back(std::make_unique<Service>(
        sim_, app.service(static_cast<ServiceId>(i)),
        static_cast<ServiceId>(i)));
  }
}

SimDuration Cluster::DrawDemand(SimDuration mean, double multiplier) {
  const auto scaled = static_cast<SimDuration>(
      static_cast<double>(mean) * multiplier);
  if (scaled <= 0) return 0;
  switch (app_.service_time_dist()) {
    case ServiceTimeDist::kDeterministic:
      return scaled;
    case ServiceTimeDist::kExponential:
      return std::max<SimDuration>(1, demand_rng_.NextExpDuration(scaled));
  }
  return scaled;
}

std::uint64_t Cluster::Submit(RequestTypeId type, RequestClass cls, bool heavy,
                              std::uint64_t client_id,
                              CompletionCallback on_complete) {
  const auto& spec = app_.request_type(type);
  auto req = std::make_shared<ActiveRequest>();
  req->id = next_request_id_++;
  req->type = type;
  req->cls = cls;
  req->heavy = heavy;
  req->client_id = client_id;
  req->start = sim_.Now();
  req->on_complete = std::move(on_complete);
  req->traces.resize(spec.hops.size());

  gateway_bytes_ += spec.request_bytes;
  for (const auto& listener : submit_listeners_) {
    listener(type, cls, client_id, sim_.Now());
  }

  if (spec.is_static || spec.hops.empty()) {
    // Served by the gateway/CDN without touching the backend: constant small
    // latency, no backend load. (Sec VI "Limitations": static requests
    // escape the attack entirely.)
    const std::uint64_t rid = req->id;
    sim_.After(app_.net_latency() * 2, [this, req, rid] {
      (void)rid;
      Complete(req);
    });
    return req->id;
  }

  const std::uint64_t rid = req->id;
  sim_.After(app_.net_latency(), [this, req] { ArriveAt(req, 0); });
  return rid;
}

void Cluster::ArriveAt(std::shared_ptr<ActiveRequest> req, std::size_t hop) {
  req->traces[hop].arrived = sim_.Now();
  Service& svc = service(app_.request_type(req->type).hops[hop].service);
  svc.AcquireSlot([this, req, hop] { OnSlotGranted(req, hop); });
}

void Cluster::OnSlotGranted(std::shared_ptr<ActiveRequest> req,
                            std::size_t hop) {
  req->traces[hop].slot_granted = sim_.Now();
  const auto& spec = app_.request_type(req->type);
  const Hop& h = spec.hops[hop];
  const double mult = req->heavy ? spec.heavy_multiplier : 1.0;
  const bool last = (hop + 1 == spec.hops.size());
  // The last hop has no downstream call: fold pre+post into one burst.
  const SimDuration demand =
      last ? DrawDemand(h.cpu_demand + h.post_demand, mult)
           : DrawDemand(h.cpu_demand, mult);
  service(h.service).RunCpu(demand,
                            [this, req, hop] { AfterPreCpu(req, hop); });
}

void Cluster::AfterPreCpu(std::shared_ptr<ActiveRequest> req,
                          std::size_t hop) {
  const auto& spec = app_.request_type(req->type);
  if (hop + 1 < spec.hops.size()) {
    // Synchronous downstream call; this hop's slot stays held.
    sim_.After(app_.net_latency(),
               [this, req, hop] { ArriveAt(req, hop + 1); });
  } else {
    FinishHop(req, hop);
  }
}

void Cluster::OnReplyArrived(std::shared_ptr<ActiveRequest> req,
                             std::size_t hop) {
  const auto& spec = app_.request_type(req->type);
  const Hop& h = spec.hops[hop];
  const double mult = req->heavy ? spec.heavy_multiplier : 1.0;
  service(h.service).RunCpu(DrawDemand(h.post_demand, mult),
                            [this, req, hop] { FinishHop(req, hop); });
}

void Cluster::FinishHop(std::shared_ptr<ActiveRequest> req, std::size_t hop) {
  req->traces[hop].finished = sim_.Now();
  const auto& spec = app_.request_type(req->type);
  const Hop& h = spec.hops[hop];
  service(h.service).ReleaseSlot();

  if (span_sink_ != nullptr) {
    SpanEvent span;
    span.request_id = req->id;
    span.type = req->type;
    span.cls = req->cls;
    span.service = h.service;
    span.hop_index = static_cast<std::uint32_t>(hop);
    span.arrived = req->traces[hop].arrived;
    span.slot_granted = req->traces[hop].slot_granted;
    span.finished = req->traces[hop].finished;
    span_sink_->OnSpan(span);
  }

  if (hop == 0) {
    sim_.After(app_.net_latency(), [this, req] { Complete(req); });
  } else {
    sim_.After(app_.net_latency(),
               [this, req, hop] { OnReplyArrived(req, hop - 1); });
  }
}

void Cluster::Complete(std::shared_ptr<ActiveRequest> req) {
  const auto& spec = app_.request_type(req->type);
  gateway_bytes_ += spec.response_bytes;
  ++completed_count_;
  CompletionRecord rec;
  rec.request_id = req->id;
  rec.type = req->type;
  rec.cls = req->cls;
  rec.heavy = req->heavy;
  rec.client_id = req->client_id;
  rec.start = req->start;
  rec.end = sim_.Now();
  completions_.push_back(rec);
  for (const auto& listener : completion_listeners_) listener(rec);
  if (req->on_complete) req->on_complete(rec);
}

}  // namespace grunt::microsvc
