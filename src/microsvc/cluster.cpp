#include "microsvc/cluster.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace grunt::microsvc {

/// Per-request mutable state shared by the lifecycle closures.
struct Cluster::ActiveRequest {
  std::uint64_t id = 0;
  RequestTypeId type = kInvalidRequestType;
  RequestClass cls = RequestClass::kLegit;
  bool heavy = false;
  std::uint64_t client_id = 0;
  SimTime start = 0;
  SimTime deadline = 0;  ///< absolute; 0 = none
  std::int32_t retries = 0;
  bool terminal = false;  ///< guards the exactly-one-outcome invariant
  CompletionCallback on_complete;
  /// Per-hop trace timestamps (filled as the request advances; a retried
  /// hop records its last attempt).
  struct HopTrace {
    SimTime arrived = 0;
    SimTime slot_granted = 0;
    SimTime finished = 0;
  };
  std::vector<HopTrace> traces;
};

/// Caller-side state of one RPC attempt into `hop`. The timeout timer, the
/// reply and the rejection message all race to ResolveCall; the first wins,
/// later arrivals (e.g. an orphan attempt's late reply) are discarded.
struct Cluster::CallState {
  std::shared_ptr<ActiveRequest> req;
  std::size_t hop = 0;
  std::int32_t attempt = 0;
  ServiceId caller = kInvalidService;
  bool resolved = false;
  bool sent = false;  ///< actually issued (false: breaker/deadline fast-fail)
  bool deadline_limited = false;  ///< timeout truncated by the deadline
  sim::EventHandle timeout;
  std::function<void(Outcome)> on_result;
};

/// Callee-side state of one attempt's hop execution. `resolve` sends the
/// reply (or error) upstream — it pays the reply's network latency and then
/// races against the caller's timeout inside ResolveCall.
struct Cluster::HopCtx {
  std::shared_ptr<ActiveRequest> req;
  std::size_t hop = 0;
  std::function<void(Outcome)> resolve;
};

Cluster::Cluster(sim::Simulation& sim, const Application& app,
                 std::uint64_t seed)
    : sim_(sim), app_(app), demand_rng_(seed, "cluster.demand." + app.name()),
      retry_rng_(seed, "cluster.retry." + app.name()) {
  services_.reserve(app.service_count());
  for (std::size_t i = 0; i < app.service_count(); ++i) {
    services_.push_back(std::make_unique<Service>(
        sim_, app.service(static_cast<ServiceId>(i)),
        static_cast<ServiceId>(i)));
  }
}

SimDuration Cluster::DrawDemand(SimDuration mean, double multiplier) {
  const auto scaled = static_cast<SimDuration>(
      static_cast<double>(mean) * multiplier);
  if (scaled <= 0) return 0;
  switch (app_.service_time_dist()) {
    case ServiceTimeDist::kDeterministic:
      return scaled;
    case ServiceTimeDist::kExponential:
      return std::max<SimDuration>(1, demand_rng_.NextExpDuration(scaled));
  }
  return scaled;
}

SimDuration Cluster::BackoffDelay(const RpcPolicy& policy,
                                  std::int32_t attempt) {
  double delay = static_cast<double>(policy.backoff_base) *
                 std::pow(policy.backoff_multiplier,
                          static_cast<double>(attempt));
  if (policy.jitter > 0.0) {
    delay *= 1.0 + policy.jitter * (2.0 * retry_rng_.NextDouble() - 1.0);
  }
  return std::max<SimDuration>(0, static_cast<SimDuration>(std::llround(delay)));
}

std::uint64_t Cluster::Submit(RequestTypeId type, RequestClass cls, bool heavy,
                              std::uint64_t client_id,
                              CompletionCallback on_complete) {
  const auto& spec = app_.request_type(type);
  auto req = std::make_shared<ActiveRequest>();
  req->id = next_request_id_++;
  req->type = type;
  req->cls = cls;
  req->heavy = heavy;
  req->client_id = client_id;
  req->start = sim_.Now();
  req->deadline = spec.deadline > 0 ? sim_.Now() + spec.deadline : 0;
  req->on_complete = std::move(on_complete);
  req->traces.resize(spec.hops.size());

  gateway_bytes_ += spec.request_bytes;
  for (const auto& listener : submit_listeners_) {
    listener(type, cls, client_id, sim_.Now());
  }

  if (spec.is_static || spec.hops.empty()) {
    // Served by the gateway/CDN without touching the backend: constant small
    // latency, no backend load. (Sec VI "Limitations": static requests
    // escape the attack entirely.)
    sim_.After(NetLatency() * 2,
               [this, req] { CompleteWith(req, Outcome::kOk); });
    return req->id;
  }

  const std::uint64_t rid = req->id;
  IssueCall(req, 0, kInvalidService, 0,
            [this, req](Outcome o) { CompleteWith(req, o); });
  return rid;
}

void Cluster::IssueCall(std::shared_ptr<ActiveRequest> req, std::size_t hop,
                        ServiceId caller, std::int32_t attempt,
                        std::function<void(Outcome)> on_result) {
  auto call = std::make_shared<CallState>();
  call->req = req;
  call->hop = hop;
  call->attempt = attempt;
  call->caller = caller;
  call->on_result = std::move(on_result);

  // End-to-end deadline gate: no budget left, fail without sending.
  if (req->deadline > 0 && sim_.Now() >= req->deadline) {
    sim_.After(0, [this, call] {
      ResolveCall(call, Outcome::kDeadlineExceeded);
    });
    return;
  }

  const Hop& h = app_.request_type(req->type).hops[hop];
  Service& callee = service(h.service);

  // Circuit breaker fast-fail: no network round trip, no load on the callee.
  if (!callee.BreakerAllows(caller)) {
    sim_.After(0, [this, call] { ResolveCall(call, Outcome::kRejected); });
    return;
  }

  call->sent = true;
  // Per-attempt timeout, truncated to the remaining deadline budget
  // (deadline propagation: downstream hops inherit the shrinking budget).
  const RpcPolicy& policy = app_.rpc_policy(req->type, hop);
  SimDuration timeout = policy.timeout;
  if (req->deadline > 0) {
    const SimDuration remaining = req->deadline - sim_.Now();
    if (timeout == 0 || remaining < timeout) {
      timeout = remaining;
      call->deadline_limited = true;
    }
  }
  if (timeout > 0) {
    call->timeout = sim_.After(timeout, [this, call] {
      ResolveCall(call, call->deadline_limited ? Outcome::kDeadlineExceeded
                                               : Outcome::kTimeout);
    });
  }

  auto ctx = std::make_shared<HopCtx>();
  ctx->req = req;
  ctx->hop = hop;
  ctx->resolve = [this, call](Outcome o) {
    // The reply (or error/rejection response) travels back over the network.
    sim_.After(NetLatency(), [this, call, o] { ResolveCall(call, o); });
  };
  sim_.After(NetLatency(), [this, ctx] { CallArrives(ctx); });
}

void Cluster::ResolveCall(const std::shared_ptr<CallState>& call, Outcome o) {
  if (call->resolved) return;  // late reply of a timed-out (orphan) attempt
  call->resolved = true;
  call->timeout.Cancel();
  const Hop& h = app_.request_type(call->req->type).hops[call->hop];
  if (call->sent) {
    service(h.service).ReportCallerOutcome(call->caller, o == Outcome::kOk);
  }
  if (o == Outcome::kOk) {
    call->on_result(Outcome::kOk);
    return;
  }
  // Retry decision. A spent deadline can never be retried into.
  const RpcPolicy& policy = app_.rpc_policy(call->req->type, call->hop);
  if (o != Outcome::kDeadlineExceeded && call->attempt < policy.max_retries) {
    ++call->req->retries;
    const SimDuration delay = BackoffDelay(policy, call->attempt);
    sim_.After(delay, [this, req = call->req, hop = call->hop,
                       caller = call->caller, next = call->attempt + 1,
                       on_result = std::move(call->on_result)]() mutable {
      IssueCall(req, hop, caller, next, std::move(on_result));
    });
    return;
  }
  call->on_result(o);
}

void Cluster::CallArrives(std::shared_ptr<HopCtx> ctx) {
  ctx->req->traces[ctx->hop].arrived = sim_.Now();
  Service& svc = service(app_.request_type(ctx->req->type).hops[ctx->hop].service);
  if (!svc.AcquireSlot([this, ctx] { OnSlotGranted(ctx); })) {
    // Load shed: bounded arrival queue is full; the rejection response
    // travels back to the caller immediately.
    ctx->resolve(Outcome::kRejected);
  }
}

void Cluster::OnSlotGranted(std::shared_ptr<HopCtx> ctx) {
  ctx->req->traces[ctx->hop].slot_granted = sim_.Now();
  const auto& spec = app_.request_type(ctx->req->type);
  const Hop& h = spec.hops[ctx->hop];
  const double mult = ctx->req->heavy ? spec.heavy_multiplier : 1.0;
  const bool last = (ctx->hop + 1 == spec.hops.size());
  // The last hop has no downstream call: fold pre+post into one burst.
  const SimDuration demand =
      last ? DrawDemand(h.cpu_demand + h.post_demand, mult)
           : DrawDemand(h.cpu_demand, mult);
  service(h.service).RunCpu(
      demand, [this, ctx] { AfterPreCpu(ctx); },
      [this, ctx] { AbortHop(ctx, Outcome::kFailed); });
}

void Cluster::AfterPreCpu(std::shared_ptr<HopCtx> ctx) {
  const auto& spec = app_.request_type(ctx->req->type);
  if (ctx->hop + 1 < spec.hops.size()) {
    // Synchronous downstream call; this hop's slot stays held.
    IssueCall(ctx->req, ctx->hop + 1, spec.hops[ctx->hop].service, 0,
              [this, ctx](Outcome o) {
                if (o != Outcome::kOk) {
                  // Downstream gave up: skip the post-reply burst, release
                  // the slot and propagate the error upstream.
                  AbortHop(ctx, o);
                  return;
                }
                const auto& s = app_.request_type(ctx->req->type);
                const Hop& h = s.hops[ctx->hop];
                const double mult =
                    ctx->req->heavy ? s.heavy_multiplier : 1.0;
                service(h.service).RunCpu(
                    DrawDemand(h.post_demand, mult),
                    [this, ctx] { FinishHop(ctx); },
                    [this, ctx] { AbortHop(ctx, Outcome::kFailed); });
              });
  } else {
    FinishHop(ctx);
  }
}

void Cluster::EmitSpan(const HopCtx& ctx) {
  if (span_sink_ == nullptr) return;
  const auto& spec = app_.request_type(ctx.req->type);
  SpanEvent span;
  span.request_id = ctx.req->id;
  span.type = ctx.req->type;
  span.cls = ctx.req->cls;
  span.service = spec.hops[ctx.hop].service;
  span.hop_index = static_cast<std::uint32_t>(ctx.hop);
  span.arrived = ctx.req->traces[ctx.hop].arrived;
  span.slot_granted = ctx.req->traces[ctx.hop].slot_granted;
  span.finished = ctx.req->traces[ctx.hop].finished;
  span_sink_->OnSpan(span);
}

void Cluster::FinishHop(std::shared_ptr<HopCtx> ctx) {
  ctx->req->traces[ctx->hop].finished = sim_.Now();
  const auto& spec = app_.request_type(ctx->req->type);
  service(spec.hops[ctx->hop].service).ReleaseSlot();
  EmitSpan(*ctx);
  ctx->resolve(Outcome::kOk);
}

void Cluster::AbortHop(std::shared_ptr<HopCtx> ctx, Outcome o) {
  ctx->req->traces[ctx->hop].finished = sim_.Now();
  const auto& spec = app_.request_type(ctx->req->type);
  service(spec.hops[ctx->hop].service).ReleaseSlot();
  EmitSpan(*ctx);
  ctx->resolve(o);
}

void Cluster::CompleteWith(std::shared_ptr<ActiveRequest> req, Outcome o) {
  // Exactly-one-terminal-outcome invariant: timeout, rejection and crash
  // paths all funnel here, and none may fire twice for one request.
  assert(!req->terminal && "request completed twice");
  if (req->terminal) return;
  req->terminal = true;
  const auto& spec = app_.request_type(req->type);
  if (o == Outcome::kOk) gateway_bytes_ += spec.response_bytes;
  ++completed_count_;
  ++outcome_counts_[static_cast<std::size_t>(o)];
  CompletionRecord rec;
  rec.request_id = req->id;
  rec.type = req->type;
  rec.cls = req->cls;
  rec.heavy = req->heavy;
  rec.client_id = req->client_id;
  rec.start = req->start;
  rec.end = sim_.Now();
  rec.outcome = o;
  rec.retries = req->retries;
  completions_.push_back(rec);
  for (const auto& listener : completion_listeners_) listener(rec);
  if (req->on_complete) req->on_complete(rec);
}

}  // namespace grunt::microsvc
