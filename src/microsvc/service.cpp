#include "microsvc/service.h"

#include <utility>

namespace grunt::microsvc {

Service::Service(sim::Simulation& sim, ServiceSpec spec, ServiceId id)
    : sim_(sim), spec_(std::move(spec)), id_(id),
      replicas_(spec_.initial_replicas) {}

void Service::AcquireSlot(std::function<void()> on_granted) {
  if (slots_in_use_ < threads()) {
    ++slots_in_use_;
    // Fire via an event to flatten recursion and keep ordering deterministic.
    sim_.After(0, std::move(on_granted));
  } else {
    slot_waiters_.push_back(std::move(on_granted));
  }
}

void Service::ReleaseSlot() {
  --slots_in_use_;
  if (!slot_waiters_.empty() && slots_in_use_ < threads()) {
    auto next = std::move(slot_waiters_.front());
    slot_waiters_.pop_front();
    ++slots_in_use_;
    sim_.After(0, std::move(next));
  }
}

void Service::AccumulateBusy() {
  const SimTime now = sim_.Now();
  busy_integral_ += static_cast<std::int64_t>(cpu_busy_) *
                    (now - busy_last_update_);
  busy_last_update_ = now;
}

std::int64_t Service::CumBusyCoreTime() {
  AccumulateBusy();
  return busy_integral_;
}

void Service::RunCpu(SimDuration demand, std::function<void()> done) {
  CpuBurst burst{demand, std::move(done)};
  if (cpu_busy_ < cores()) {
    StartBurst(std::move(burst));
  } else {
    cpu_queue_.push_back(std::move(burst));
  }
}

void Service::StartBurst(CpuBurst burst) {
  AccumulateBusy();
  ++cpu_busy_;
  sim_.After(burst.demand, [this, done = std::move(burst.done)]() mutable {
    AccumulateBusy();
    --cpu_busy_;
    ++completed_bursts_;
    done();
    MaybeStartCpu();
  });
}

void Service::MaybeStartCpu() {
  while (!cpu_queue_.empty() && cpu_busy_ < cores()) {
    CpuBurst next = std::move(cpu_queue_.front());
    cpu_queue_.pop_front();
    StartBurst(std::move(next));
  }
}

void Service::AddReplica() {
  ++replicas_;
  // New capacity can admit queued work immediately.
  MaybeStartCpu();
  while (!slot_waiters_.empty() && slots_in_use_ < threads()) {
    auto next = std::move(slot_waiters_.front());
    slot_waiters_.pop_front();
    ++slots_in_use_;
    sim_.After(0, std::move(next));
  }
}

bool Service::RemoveReplica() {
  if (replicas_ <= 1) return false;
  --replicas_;
  return true;
}

}  // namespace grunt::microsvc
