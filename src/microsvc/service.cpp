#include "microsvc/service.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace grunt::microsvc {

Service::Service(sim::Simulation& sim, ServiceSpec spec, ServiceId id,
                 telemetry::TelemetryBus* bus)
    : sim_(sim), spec_(std::move(spec)), id_(id), bus_(bus),
      replicas_(spec_.initial_replicas) {}

void Service::PublishQueueEvent(telemetry::QueueEvent::Kind kind) {
  if (bus_ == nullptr || !bus_->queue_depth().has_subscribers()) return;
  telemetry::QueueEvent e;
  e.service = id_;
  e.kind = kind;
  e.at = sim_.Now();
  e.slots_in_use = slots_in_use_;
  e.waiting = slots_waiting();
  bus_->queue_depth().Publish(e);
}

void Service::ReleaseSlot() {
  --slots_in_use_;
  if (!slot_waiters_.empty() && slots_in_use_ < threads()) {
    ++slots_in_use_;
    sim_.After(0, slot_waiters_.pop_front());
  }
}

void Service::AccumulateBusy() {
  const SimTime now = sim_.Now();
  busy_integral_ += static_cast<std::int64_t>(cpu_busy_) *
                    (now - busy_last_update_);
  busy_last_update_ = now;
}

std::int64_t Service::CumBusyCoreTime() {
  AccumulateBusy();
  return busy_integral_;
}

void Service::FinishBurst(std::uint64_t bid) {
  AccumulateBusy();
  --cpu_busy_;
  ++completed_bursts_;
  const auto it =
      std::find_if(running_.begin(), running_.end(),
                   [bid](const RunningBurst& r) { return r.id == bid; });
  sim::InplaceFunction done = std::move(it->done);
  running_.erase(it);
  done();
  MaybeStartCpu();
}

void Service::MaybeStartCpu() {
  while (!cpu_queue_.empty() && cpu_busy_ < cores()) {
    CpuBurst b = cpu_queue_.pop_front();
    StartBurst(b.demand, std::move(b.done), std::move(b.on_killed));
  }
}

void Service::AdmitWaiters() {
  while (!slot_waiters_.empty() && slots_in_use_ < threads()) {
    ++slots_in_use_;
    sim_.After(0, slot_waiters_.pop_front());
  }
}

void Service::AddReplica() {
  ++replicas_;
  // New capacity can admit queued work immediately.
  MaybeStartCpu();
  AdmitWaiters();
}

bool Service::RemoveReplica() {
  if (replicas_ <= 1) return false;
  --replicas_;
  return true;
}

bool Service::Crash() {
  if (replicas_ <= 0) return false;
  const std::int32_t before = replicas_;
  --replicas_;
  ++crash_count_;
  // The dead replica hosted ~1/before of the in-flight bursts; kill the
  // oldest share of running bursts and the front share of the CPU queue
  // (deterministic selection keeps runs reproducible).
  const auto share = [before](std::size_t n) {
    return (n + static_cast<std::size_t>(before) - 1) /
           static_cast<std::size_t>(before);
  };
  const std::size_t kill_running = share(running_.size());
  const std::size_t kill_queued = share(cpu_queue_.size());
  for (std::size_t i = 0; i < kill_running; ++i) {
    RunningBurst victim = std::move(running_.front());
    running_.erase(running_.begin());
    victim.event.Cancel();
    AccumulateBusy();
    --cpu_busy_;
    ++killed_bursts_;
    if (victim.on_killed) sim_.After(0, std::move(victim.on_killed));
  }
  for (std::size_t i = 0; i < kill_queued; ++i) {
    CpuBurst victim = cpu_queue_.pop_front();
    ++killed_bursts_;
    if (victim.on_killed) sim_.After(0, std::move(victim.on_killed));
  }
  return true;
}

void Service::Restart() {
  ++replicas_;
  MaybeStartCpu();
  AdmitWaiters();
}

void Service::MultiplyDemandFactor(double factor) {
  demand_factor_ *= factor;
}

bool Service::BreakerAllows(ServiceId caller) const {
  if (spec_.breaker_threshold <= 0) return true;
  const auto idx = static_cast<std::size_t>(caller + 1);
  if (idx >= breakers_.size()) return true;  // never reported: closed
  return sim_.Now() >= breakers_[idx].open_until;
}

void Service::ReportCallerOutcome(ServiceId caller, bool ok) {
  if (spec_.breaker_threshold <= 0) return;
  const auto idx = static_cast<std::size_t>(caller + 1);
  if (idx >= breakers_.size()) breakers_.resize(idx + 1);
  BreakerState& st = breakers_[idx];
  // "Open" as callers experience it: a passed cooldown already admits the
  // half-open trial, so a success then is a close and a failure a re-open.
  const bool was_open = sim_.Now() < st.open_until;
  if (ok) {
    st.consecutive_failures = 0;
    st.open_until = 0;
  } else {
    ++st.consecutive_failures;
    if (st.consecutive_failures >= spec_.breaker_threshold) {
      // Saturate so a failed half-open trial re-opens immediately.
      st.consecutive_failures = spec_.breaker_threshold;
      st.open_until = sim_.Now() + spec_.breaker_cooldown;
    }
  }
  const bool is_open = sim_.Now() < st.open_until;
  if (is_open != was_open && bus_ != nullptr &&
      bus_->breaker().has_subscribers()) {
    telemetry::BreakerTransition t;
    t.service = id_;
    t.caller = caller;
    t.at = sim_.Now();
    t.open = is_open;
    t.consecutive_failures = st.consecutive_failures;
    bus_->breaker().Publish(t);
  }
}

Service::DownstreamGate Service::AdmitDownstreamCall(ServiceId downstream) {
  const auto idx = static_cast<std::size_t>(downstream);
  if (idx >= downstream_.size()) downstream_.resize(idx + 1);
  DownstreamState& st = downstream_[idx];
  // Bulkhead first: a hard partition of the pool trumps the adaptive limit.
  if (spec_.bulkhead_per_downstream > 0 &&
      st.in_flight >= spec_.bulkhead_per_downstream * replicas_) {
    ++bulkhead_rejections_;
    return DownstreamGate::kBulkheadFull;
  }
  if (spec_.adaptive_limit.enabled) {
    if (st.limit == 0) st.limit = spec_.adaptive_limit.max_limit;
    if (st.in_flight >= static_cast<std::int32_t>(st.limit)) {
      ++limiter_rejections_;
      return DownstreamGate::kLimitClamped;
    }
  }
  ++st.in_flight;
  return DownstreamGate::kAdmitted;
}

void Service::EndDownstreamCall(ServiceId downstream, SimDuration rtt, bool ok,
                                SimDuration nominal_rtt) {
  DownstreamState& st = downstream_[static_cast<std::size_t>(downstream)];
  --st.in_flight;
  const AdaptiveLimitSpec& al = spec_.adaptive_limit;
  if (!al.enabled) return;
  if (st.limit == 0) st.limit = al.max_limit;
  if (ok && (st.rtt_floor == 0 || rtt < st.rtt_floor)) st.rtt_floor = rtt;
  const SimDuration floor = nominal_rtt > 0 ? nominal_rtt : st.rtt_floor;
  // Failures count as congestion: timeouts obviously, and a rejected /
  // crashed call means the edge is unhealthy — backing off is the safe read.
  const bool congested =
      !ok || (floor > 0 && static_cast<double>(rtt) >
                               al.rtt_tolerance * static_cast<double>(floor));
  if (congested) {
    st.limit = std::max<double>(al.min_limit, st.limit * al.decrease_factor);
  } else if (st.limit < al.max_limit) {
    st.limit = std::min<double>(al.max_limit, st.limit + 1.0 / st.limit);
  }
}

std::int32_t Service::downstream_in_flight(ServiceId downstream) const {
  const auto idx = static_cast<std::size_t>(downstream);
  return idx < downstream_.size() ? downstream_[idx].in_flight : 0;
}

double Service::adaptive_limit_now(ServiceId downstream) const {
  const auto idx = static_cast<std::size_t>(downstream);
  if (idx >= downstream_.size() || downstream_[idx].limit == 0) {
    return spec_.adaptive_limit.max_limit;
  }
  return downstream_[idx].limit;
}

std::string Service::IdleInvariantsBroken() const {
  std::string out;
  const auto fail = [&](const char* what, std::int64_t count) {
    out += spec_.name + ": " + what + " = " + std::to_string(count) + "\n";
  };
  if (slots_in_use_ != 0) fail("slots still held", slots_in_use_);
  if (!slot_waiters_.empty()) fail("slot waiters stranded", slots_waiting());
  if (cpu_busy_ != 0) fail("cpu bursts still running", cpu_busy_);
  if (!cpu_queue_.empty()) fail("cpu bursts still queued", cpu_queue_length());
  for (std::size_t d = 0; d < downstream_.size(); ++d) {
    if (downstream_[d].in_flight != 0) {
      fail("downstream-gate charges leaked", downstream_[d].in_flight);
    }
  }
  return out;
}

}  // namespace grunt::microsvc
