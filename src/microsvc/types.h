#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time_types.h"

namespace grunt::microsvc {

using ServiceId = std::int32_t;
using RequestTypeId = std::int32_t;

inline constexpr ServiceId kInvalidService = -1;
inline constexpr RequestTypeId kInvalidRequestType = -1;

/// Who issued a request. The simulator treats all classes identically (attack
/// requests ARE legitimate HTTP requests — that is the point of the paper);
/// the class is only used for metrics attribution and IDS bookkeeping.
enum class RequestClass : std::uint8_t {
  kLegit = 0,   ///< background users
  kAttack = 1,  ///< Grunt / baseline attack bursts
  kProbe = 2,   ///< profiler / commander measurement probes
};

const char* ToString(RequestClass c);

/// One hop of a request type's critical path (Fig 2(c)): the service visited,
/// the CPU demand before calling the next hop, and the CPU demand after the
/// downstream reply returns (before replying upstream).
struct Hop {
  ServiceId service = kInvalidService;
  SimDuration cpu_demand = 0;   ///< mean pre-call CPU burst
  SimDuration post_demand = 0;  ///< mean post-reply CPU burst
};

/// Static description of a supported user request (== execution path ==
/// critical path). Each public URL of the target maps to one of these.
struct RequestTypeSpec {
  std::string name;
  std::vector<Hop> hops;  ///< hop 0 is the entry (gateway-facing) service
  /// Demand multiplier applied when a request is flagged "heavy" (attackers
  /// pick the heaviest legal variant of an endpoint, e.g. max-size media).
  double heavy_multiplier = 1.0;
  std::int64_t request_bytes = 600;     ///< HTTP request size at the gateway
  std::int64_t response_bytes = 4000;   ///< HTTP response size at the gateway
  /// Static/cached endpoints are served by the gateway/CDN and never reach
  /// the backend; the profiler excludes them (Sec IV-C).
  bool is_static = false;
};

/// Static description of one microservice.
struct ServiceSpec {
  std::string name;
  /// Thread-pool size per replica == queue slots per replica (Sec VI: "the
  /// queue size of each microservice represents the number of server
  /// threads").
  std::int32_t threads_per_replica = 32;
  std::int32_t cores_per_replica = 1;  ///< 1 vCPU basic unit (Sec V-B)
  std::int32_t initial_replicas = 1;
  std::int32_t max_replicas = 8;
};

/// How per-request CPU demands are drawn around their mean.
enum class ServiceTimeDist : std::uint8_t {
  kDeterministic,  ///< exactly the mean (used for model-validation tests)
  kExponential,    ///< exponential with the given mean (default)
};

}  // namespace grunt::microsvc
