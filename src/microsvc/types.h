#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/time_types.h"

namespace grunt::microsvc {

using ServiceId = std::int32_t;
using RequestTypeId = std::int32_t;

inline constexpr ServiceId kInvalidService = -1;
inline constexpr RequestTypeId kInvalidRequestType = -1;

/// Who issued a request. The simulator treats all classes identically (attack
/// requests ARE legitimate HTTP requests — that is the point of the paper);
/// the class is only used for metrics attribution and IDS bookkeeping.
enum class RequestClass : std::uint8_t {
  kLegit = 0,   ///< background users
  kAttack = 1,  ///< Grunt / baseline attack bursts
  kProbe = 2,   ///< profiler / commander measurement probes
};

const char* ToString(RequestClass c);

/// Terminal outcome of a request (or of one RPC attempt inside its chain),
/// as the issuing client observes it. Every submitted request reaches
/// exactly one terminal outcome, even when timed out, load-shed, or caught
/// mid-flight by a replica crash.
enum class Outcome : std::uint8_t {
  kOk = 0,                ///< reply received
  kTimeout = 1,           ///< per-attempt RPC timeout fired, retries exhausted
  kRejected = 2,          ///< load-shed: bounded queue full or breaker open
  kDeadlineExceeded = 3,  ///< end-to-end deadline budget ran out
  kFailed = 4,            ///< connection reset: replica crashed mid-burst
};

inline constexpr std::size_t kOutcomeCount = 5;

const char* ToString(Outcome o);

/// Client-side policy of one RPC edge (the call INTO a hop): how long the
/// caller waits, and how it retries. Mirrors Thrift/gRPC client options.
/// The all-defaults policy is "wait forever, never retry" — identical to the
/// pre-fault-tolerance simulator, so existing figures reproduce unchanged.
struct RpcPolicy {
  /// Per-attempt timeout measured from the instant the caller issues the
  /// call (covers network, queueing, execution, downstream subtree, reply).
  /// 0 = wait forever.
  SimDuration timeout = 0;
  /// Retries after the first attempt. Retries re-inject the call as a fresh
  /// arrival (the abandoned attempt keeps executing as orphan work) — this
  /// is what makes retry storms amplify the Grunt attack.
  std::int32_t max_retries = 0;
  /// Exponential backoff before attempt k (1-based retry): base * mult^(k-1).
  SimDuration backoff_base = Ms(10);
  double backoff_multiplier = 2.0;
  /// Jitter fraction j: each backoff is scaled by 1 + U(-j, +j). 0 = exact.
  double jitter = 0.0;
  /// No-load RTT prior for this edge, seeding the caller's adaptive
  /// concurrency limiter (ServiceSpec::adaptive_limit). 0 = learn the floor
  /// from the fastest observed reply instead.
  SimDuration nominal_rtt = 0;

  friend bool operator==(const RpcPolicy&, const RpcPolicy&) = default;
};

/// Caller-side adaptive concurrency limiter, one instance per (service →
/// downstream) RPC edge: an AIMD limit on in-flight calls driven by observed
/// RTT against the edge's no-load RTT (gradient-style, after Netflix
/// concurrency-limits). When a millibottleneck forms downstream, RTTs grow
/// past `rtt_tolerance` × floor and the limit decays multiplicatively,
/// clamping how many of the caller's threads can pile onto the slow edge —
/// the execution-dependency coupling the Grunt attack exploits.
struct AdaptiveLimitSpec {
  bool enabled = false;
  std::int32_t min_limit = 2;   ///< decay floor (keeps probing the edge)
  std::int32_t max_limit = 64;  ///< growth ceiling, also the initial limit
  /// A sample is "congested" when rtt > rtt_tolerance * no-load floor.
  double rtt_tolerance = 2.0;
  /// Multiplicative decrease on a congested or failed sample; good samples
  /// add 1/limit (congestion-avoidance additive increase).
  double decrease_factor = 0.9;

  friend bool operator==(const AdaptiveLimitSpec&,
                         const AdaptiveLimitSpec&) = default;
};

/// Callee-side deadline-aware shedding: on arrival — before the call consumes
/// a thread slot — refuse the request when its remaining end-to-end budget
/// cannot cover the expected residual path cost (remaining CPU demand plus
/// remaining network messages). `depth_weight` inflates the required slack
/// with hop depth, so when budgets tighten the deepest pending work sheds
/// first and partially-executed subtrees drain instead of piling up.
struct DeadlineShedSpec {
  bool enabled = false;
  /// Required slack as a multiple of the expected residual cost (demands are
  /// means, so 1.0 is an expected-value feasibility check).
  double margin = 1.0;
  /// Extra margin per hop of depth: required = margin * (1 + depth_weight*h).
  double depth_weight = 0.0;

  friend bool operator==(const DeadlineShedSpec&,
                         const DeadlineShedSpec&) = default;
};

/// One hop of a request type's critical path (Fig 2(c)): the service visited,
/// the CPU demand before calling the next hop, and the CPU demand after the
/// downstream reply returns (before replying upstream).
struct Hop {
  ServiceId service = kInvalidService;
  SimDuration cpu_demand = 0;   ///< mean pre-call CPU burst
  SimDuration post_demand = 0;  ///< mean post-reply CPU burst
  /// Policy governing calls INTO this hop (for hop 0, the external client's
  /// own timeout/retry). Unset = the application-wide default policy.
  std::optional<RpcPolicy> rpc;

  friend bool operator==(const Hop&, const Hop&) = default;
};

/// Static description of a supported user request (== execution path ==
/// critical path). Each public URL of the target maps to one of these.
struct RequestTypeSpec {
  std::string name;
  std::vector<Hop> hops;  ///< hop 0 is the entry (gateway-facing) service
  /// Demand multiplier applied when a request is flagged "heavy" (attackers
  /// pick the heaviest legal variant of an endpoint, e.g. max-size media).
  double heavy_multiplier = 1.0;
  std::int64_t request_bytes = 600;     ///< HTTP request size at the gateway
  std::int64_t response_bytes = 4000;   ///< HTTP response size at the gateway
  /// Static/cached endpoints are served by the gateway/CDN and never reach
  /// the backend; the profiler excludes them (Sec IV-C).
  bool is_static = false;
  /// End-to-end deadline for the whole request, propagated down the call
  /// chain: every downstream attempt's timeout is truncated to the remaining
  /// budget. 0 = none.
  SimDuration deadline = 0;

  friend bool operator==(const RequestTypeSpec&,
                         const RequestTypeSpec&) = default;
};

/// Static description of one microservice.
struct ServiceSpec {
  std::string name;
  /// Thread-pool size per replica == queue slots per replica (Sec VI: "the
  /// queue size of each microservice represents the number of server
  /// threads").
  std::int32_t threads_per_replica = 32;
  std::int32_t cores_per_replica = 1;  ///< 1 vCPU basic unit (Sec V-B)
  std::int32_t initial_replicas = 1;
  std::int32_t max_replicas = 8;
  /// Admission control (load shedding): arrivals beyond
  /// `max_queue_per_replica * replicas` waiting calls are rejected
  /// immediately instead of queueing. 0 = unbounded queue (seed behaviour).
  std::int32_t max_queue_per_replica = 0;
  /// Per-caller circuit breaker: after this many consecutive failed calls
  /// from one caller, further calls from that caller fast-fail (kRejected)
  /// for `breaker_cooldown`. 0 = disabled.
  std::int32_t breaker_threshold = 0;
  SimDuration breaker_cooldown = Ms(500);
  /// Bulkhead: at most `bulkhead_per_downstream * replicas` of this service's
  /// calls may be in flight into any single downstream at once; excess calls
  /// fast-fail (kRejected) on the caller side. Partitioning the thread pool
  /// per dependency means one slow callee can no longer occupy every slot.
  /// 0 = disabled (seed behaviour).
  std::int32_t bulkhead_per_downstream = 0;
  /// Adaptive per-downstream concurrency limiter (caller side), off by
  /// default.
  AdaptiveLimitSpec adaptive_limit;
  /// Deadline-aware shedding at this service's admission (callee side), off
  /// by default.
  DeadlineShedSpec deadline_shed;

  friend bool operator==(const ServiceSpec&, const ServiceSpec&) = default;
};

/// How per-request CPU demands are drawn around their mean.
enum class ServiceTimeDist : std::uint8_t {
  kDeterministic,  ///< exactly the mean (used for model-validation tests)
  kExponential,    ///< exponential with the given mean (default)
};

}  // namespace grunt::microsvc
