#pragma once

#include <cstdint>

#include "microsvc/types.h"

namespace grunt::microsvc {

/// One completed hop of a request's execution, as a tracing system (Jaeger in
/// the paper) would record it. Emitted when the hop replies upstream.
struct SpanEvent {
  std::uint64_t request_id = 0;
  RequestTypeId type = kInvalidRequestType;
  RequestClass cls = RequestClass::kLegit;
  ServiceId service = kInvalidService;
  std::uint32_t hop_index = 0;
  SimTime arrived = 0;       ///< call reached the service (possibly queued)
  SimTime slot_granted = 0;  ///< thread slot acquired
  SimTime finished = 0;      ///< replied upstream, slot released
};

/// Receiver interface for span events. The trace substrate implements this;
/// the attack library never sees it (blackbox boundary, DESIGN §4.3).
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void OnSpan(const SpanEvent& span) = 0;
};

}  // namespace grunt::microsvc
