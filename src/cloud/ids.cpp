#include "cloud/ids.h"

#include <algorithm>

namespace grunt::cloud {

const char* ToString(AlertRule rule) {
  switch (rule) {
    case AlertRule::kInterRequestInterval: return "inter-request-interval";
    case AlertRule::kRateLimit: return "rate-limit";
    case AlertRule::kResourceSaturation: return "resource-saturation";
    case AlertRule::kServiceDegradation: return "service-degradation";
  }
  return "?";
}

Ids::Ids(microsvc::Cluster& cluster, const ResourceMonitor* monitor,
         const ResponseTimeMonitor* rt_monitor, Config cfg)
    : cluster_(cluster), monitor_(monitor), rt_monitor_(rt_monitor),
      cfg_(cfg) {
  if (monitor_ != nullptr) {
    next_util_sample_.assign(cluster_.service_count(), 0);
    saturated_ticks_.assign(cluster_.service_count(), 0);
  }
  cluster_.telemetry().submit().Subscribe(
      [this](const telemetry::RequestSubmit& e) {
        if (running_) OnSubmit(e.type, e.cls, e.client_id, e.at);
      });
}

void Ids::Start() {
  if (running_) return;
  running_ = true;
  timer_ = cluster_.simulation().Every(Sec(1), sim::EventClass::kTimer,
                                       [this] { Evaluate(); });
}

void Ids::Stop() {
  running_ = false;
  timer_.Cancel();
}

void Ids::Raise(AlertRule rule, std::uint64_t client_id, std::string detail,
                bool attack_attributed) {
  alerts_.push_back(
      {cluster_.simulation().Now(), rule, client_id, std::move(detail)});
  if (attack_attributed) ++attributed_attack_alerts_;
}

void Ids::OnSubmit(microsvc::RequestTypeId /*type*/,
                   microsvc::RequestClass cls, std::uint64_t client_id,
                   SimTime at) {
  SessionState& s = sessions_[client_id];
  const bool attack_session = (cls != microsvc::RequestClass::kLegit);
  s.is_attack = s.is_attack || attack_session;

  // Behavioral rule: consecutive requests too close together.
  if (s.total_requests >= cfg_.min_session_requests - 1 &&
      s.total_requests > 0 && at - s.last_request < cfg_.min_inter_request) {
    Raise(AlertRule::kInterRequestInterval, client_id,
          "interval " + std::to_string(ToMillis(at - s.last_request)) + "ms",
          s.is_attack);
  }
  s.last_request = at;
  ++s.total_requests;

  // Rate rule: sliding-window per-IP budget.
  s.window.push_back(at);
  while (!s.window.empty() && s.window.front() <= at - cfg_.rate_window) {
    s.window.pop_front();
  }
  if (static_cast<std::int64_t>(s.window.size()) > cfg_.rate_limit) {
    Raise(AlertRule::kRateLimit, client_id,
          std::to_string(s.window.size()) + " req in window", s.is_attack);
    s.window.clear();  // one alert per overflow, then reset the budget
  }
}

void Ids::Evaluate() {
  if (monitor_ != nullptr) {
    for (std::size_t i = 0; i < next_util_sample_.size(); ++i) {
      const auto sid = static_cast<microsvc::ServiceId>(i);
      const auto& series = monitor_->cpu_util(sid);
      for (; next_util_sample_[i] < series.size(); ++next_util_sample_[i]) {
        if (series.at(next_util_sample_[i]).value >=
            cfg_.saturation_threshold) {
          ++saturated_ticks_[i];
          if (saturated_ticks_[i] >= cfg_.saturation_samples) {
            Raise(AlertRule::kResourceSaturation, 0,
                  "service " + cluster_.app().service(sid).name,
                  /*attack_attributed=*/false);
            saturated_ticks_[i] = 0;
          }
        } else {
          saturated_ticks_[i] = 0;
        }
      }
    }
  }
  if (rt_monitor_ != nullptr) {
    const auto& series = rt_monitor_->legit_mean_ms();
    for (; next_rt_sample_ < series.size(); ++next_rt_sample_) {
      if (series.at(next_rt_sample_).value >= cfg_.degradation_rt_ms) {
        Raise(AlertRule::kServiceDegradation, 0,
              "mean RT " +
                  std::to_string(series.at(next_rt_sample_).value) + "ms",
              /*attack_attributed=*/false);
      }
    }
  }
}

std::size_t Ids::CountAlerts(AlertRule rule) const {
  return static_cast<std::size_t>(
      std::count_if(alerts_.begin(), alerts_.end(),
                    [rule](const Alert& a) { return a.rule == rule; }));
}

}  // namespace grunt::cloud
