#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cloud/monitor.h"
#include "microsvc/cluster.h"

namespace grunt::cloud {

/// The defense direction the paper sketches in Sec VI ("Detection of
/// millibottlenecks and suspicious requests"), made concrete:
///
///  1. the gateway log is bucketed per (request type, 100 ms); buckets where
///     one type arrives far above its Poisson background are "volleys" —
///     Grunt bursts are synchronized, legitimate arrivals are not;
///  2. volleys are confirmed against a FINE-grained (100 ms) resource
///     monitor: a genuine attack volley is followed by a millibottleneck
///     within a short window (this is what requires the expensive
///     fine-grained monitoring the paper discusses);
///  3. sessions whose requests predominantly arrive inside volleys are
///     flagged — normal users have no statistical correlation with the
///     bursts, Grunt bots (one request per burst each) have ~100%.
///
/// Detection only: enforcement (blocking flagged IPs) is an orthogonal
/// IPS concern.
class CorrelationDefense {
 public:
  struct Config {
    SimDuration bucket = Ms(100);
    /// Same-type arrivals within one bucket to call it a volley. Should sit
    /// well above the per-type Poisson rate per bucket.
    std::int32_t volley_threshold = 20;
    /// Flag sessions with at least this fraction of requests in volleys.
    double flag_fraction = 0.8;
    /// Sessions with fewer requests than this in the analysis window are
    /// not judged — one request proves nothing, and judging one-shot
    /// sessions floods the verdict with false positives. (Grunt's one-shot
    /// bots evade THIS statistic; bot reuse across bursts is what exposes
    /// them, and a high rate of fresh one-shot sessions inside volleys is a
    /// complementary signal an operator can rate-limit on.)
    std::int32_t min_requests = 3;
    /// A volley is "confirmed" when some service saturates within this
    /// window after it (requires a fine monitor).
    SimDuration confirm_window = Ms(600);
    double saturation_util = 0.97;
    /// Error-based confirmation (no fine monitor needed): a volley is also
    /// confirmed when at least this many legitimate requests fail (timeout /
    /// rejection / deadline) within confirm_window after it. Once the
    /// cluster deploys RPC timeouts and load shedding, a Grunt burst leaves
    /// this cheap fingerprint in the gateway's own error log.
    std::int32_t error_confirm_min = 3;
  };

  /// `fine_monitor` may be null: volley confirmation is then skipped and
  /// only the arrival-pattern statistic is available.
  CorrelationDefense(microsvc::Cluster& cluster,
                     const ResourceMonitor* fine_monitor, Config cfg);

  void Start();
  void Stop();

  /// One judged session.
  struct Verdict {
    std::uint64_t client_id = 0;
    std::size_t requests = 0;
    std::size_t in_volley = 0;
    double participation = 0;  ///< in_volley / requests
    bool flagged = false;
  };

  /// Offline analysis over [from, to): judges every session active in the
  /// window. Sorted by participation, highest first.
  std::vector<Verdict> Analyze(SimTime from, SimTime to) const;

  /// Flagged sessions only (participation > flag_fraction).
  std::vector<Verdict> FlaggedSessions(SimTime from, SimTime to) const;

  /// Volleys in [from, to): total, how many were confirmed by a subsequent
  /// millibottleneck (== total when no fine monitor is wired), and how many
  /// by a subsequent legit-error spike (0 unless fault-tolerance policies
  /// are deployed — with none, requests queue instead of failing).
  struct VolleyStats {
    std::size_t volleys = 0;
    std::size_t confirmed = 0;
    std::size_t error_confirmed = 0;
  };
  VolleyStats Volleys(SimTime from, SimTime to) const;

  const Config& config() const { return cfg_; }

 private:
  using BucketKey = std::pair<microsvc::RequestTypeId, std::int64_t>;
  bool InVolley(microsvc::RequestTypeId type, SimTime at) const;

  microsvc::Cluster& cluster_;
  const ResourceMonitor* fine_;
  Config cfg_;
  bool running_ = false;

  struct SubmissionLog {
    std::vector<std::pair<microsvc::RequestTypeId, SimTime>> requests;
  };
  std::map<BucketKey, std::int32_t> bucket_counts_;
  std::map<std::uint64_t, SubmissionLog> sessions_;
  std::vector<SimTime> legit_errors_;  ///< completion times of failed legits
};

}  // namespace grunt::cloud
