#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "microsvc/cluster.h"
#include "util/stats.h"
#include "util/timeseries.h"

namespace grunt::cloud {

/// Periodically samples per-service CPU utilization and queue length plus
/// gateway throughput — the role CloudWatch / Azure Monitor / docker-stats
/// play in the paper. The sampling granularity is the whole story of the
/// stealthiness argument: 1 s samplers cannot see <500 ms millibottlenecks,
/// a 100 ms sampler can (Fig 13 vs Fig 14).
class ResourceMonitor {
 public:
  struct Config {
    SimDuration granularity = Sec(1);
    std::string name = "cloudwatch";

    // Spec-visible (scenario files serialize the granularity).
    friend bool operator==(const Config&, const Config&) = default;
  };

  ResourceMonitor(microsvc::Cluster& cluster, Config cfg);

  void Start();
  void Stop();

  SimDuration granularity() const { return cfg_.granularity; }
  const std::string& name() const { return cfg_.name; }

  /// Utilization in [0,1] per sample window.
  const TimeSeries& cpu_util(microsvc::ServiceId s) const {
    return cpu_util_.at(static_cast<std::size_t>(s));
  }
  /// Instantaneous queue length (in-service + waiting) at sample times.
  const TimeSeries& queue_len(microsvc::ServiceId s) const {
    return queue_len_.at(static_cast<std::size_t>(s));
  }
  /// Gateway traffic in MB/s per sample window.
  const TimeSeries& gateway_mbps() const { return gateway_mbps_; }
  /// Replica count at sample times.
  const TimeSeries& replicas(microsvc::ServiceId s) const {
    return replicas_.at(static_cast<std::size_t>(s));
  }

  /// Service with the highest mean utilization over [from, to).
  microsvc::ServiceId HottestService(SimTime from, SimTime to) const;

 private:
  void Sample();

  microsvc::Cluster& cluster_;
  Config cfg_;
  sim::EventHandle timer_;
  bool running_ = false;
  /// Interned handles into the cluster's MetricsRegistry: the monitor reads
  /// the bus-fed gauges the Cluster registered, never Service internals.
  struct ServiceGauges {
    telemetry::MetricsRegistry::Id busy_core_us;
    telemetry::MetricsRegistry::Id queue_len;
    telemetry::MetricsRegistry::Id replicas;
    telemetry::MetricsRegistry::Id cores;
  };
  std::vector<ServiceGauges> gauges_;
  telemetry::MetricsRegistry::Id gateway_bytes_g_;
  std::vector<double> prev_busy_;
  double prev_gateway_bytes_ = 0;
  std::vector<TimeSeries> cpu_util_;
  std::vector<TimeSeries> queue_len_;
  std::vector<TimeSeries> replicas_;
  TimeSeries gateway_mbps_;
};

/// Windows end-to-end response times of completed requests into a mean /
/// p95 / count series per granularity tick. Separates legitimate traffic
/// from attack/probe traffic so benches can report "RT perceived by normal
/// users" exactly as the paper does.
///
/// Only successful (Outcome::kOk) completions enter the RT windows — a
/// timed-out request's "latency" is just its timeout, and mixing it in
/// would make aggressive timeouts look like a latency win. Failures are
/// accounted separately via error_rate() and goodput().
class ResponseTimeMonitor {
 public:
  struct Config {
    SimDuration granularity = Sec(1);
    std::string name = "rt";
  };

  ResponseTimeMonitor(microsvc::Cluster& cluster, Config cfg);

  void Start();
  void Stop();

  /// Mean RT (ms) of legitimate requests completed per window (0 if none).
  const TimeSeries& legit_mean_ms() const { return legit_mean_ms_; }
  /// p95 RT (ms) of legitimate requests per window.
  const TimeSeries& legit_p95_ms() const { return legit_p95_ms_; }
  /// Legitimate completions per second per window (any outcome).
  const TimeSeries& legit_throughput() const { return legit_throughput_; }
  /// Successful legitimate completions per second per window.
  const TimeSeries& goodput() const { return goodput_; }
  /// Fraction of legitimate completions per window that failed (timeout,
  /// rejection, deadline, crash); 0 when the window is empty.
  const TimeSeries& error_rate() const { return error_rate_; }

  /// Cumulative legitimate completions by terminal outcome since Start().
  std::uint64_t legit_outcome_count(microsvc::Outcome o) const {
    return legit_outcomes_[static_cast<std::size_t>(o)];
  }

  /// All legitimate (successful) RTs (ms) observed in [from, to) by
  /// completion time.
  Samples LegitWindow(SimTime from, SimTime to) const;

 private:
  void Flush();

  microsvc::Cluster& cluster_;
  Config cfg_;
  sim::EventHandle timer_;
  bool running_ = false;
  telemetry::SubscriptionId completion_sub_ = 0;
  /// Cumulative legit-RT histogram in the cluster's MetricsRegistry
  /// ("<name>.legit_ms"): every successful legit completion is Observe()d,
  /// so Snapshot() exports bucketed RTs with p95/p99 alongside the gauges.
  telemetry::MetricsRegistry::Id rt_hist_ =
      telemetry::MetricsRegistry::kInvalidId;
  Samples window_;  ///< successful legit RTs in the current window
  std::uint64_t window_errors_ = 0;  ///< failed legit completions in window
  std::array<std::uint64_t, microsvc::kOutcomeCount> legit_outcomes_{};
  std::vector<std::pair<SimTime, double>> legit_all_;  ///< (end, rt_ms), kOk
  TimeSeries legit_mean_ms_;
  TimeSeries legit_p95_ms_;
  TimeSeries legit_throughput_;
  TimeSeries goodput_;
  TimeSeries error_rate_;
};

}  // namespace grunt::cloud
