#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/monitor.h"
#include "microsvc/cluster.h"

namespace grunt::cloud {

/// One scaling decision, for post-run analysis (Fig 14 / Fig 15b).
struct ScaleAction {
  SimTime at = 0;
  microsvc::ServiceId service = microsvc::kInvalidService;
  std::int32_t delta = 0;  ///< +1 scale-out, -1 scale-in
  std::int32_t replicas_after = 0;
};

/// Threshold autoscaler mirroring the paper's policy (Sec V-B): scale up
/// when a service's CPU utilization exceeds `up_threshold` for `window`
/// straight, scale down below `down_threshold` for `window` straight.
/// Decisions are taken from a coarse (1 s) ResourceMonitor — which is why
/// sub-sampling-granularity millibottlenecks never trigger it.
class AutoScaler {
 public:
  struct Config {
    double up_threshold = 0.70;
    double down_threshold = 0.30;
    SimDuration window = Sec(30);
    /// Time from the scale-out decision until the replica serves traffic.
    SimDuration provision_delay = Sec(20);
    /// Minimum spacing between consecutive actions on one service.
    SimDuration cooldown = Sec(30);

    // Spec-visible (scenario files serialize this struct).
    friend bool operator==(const Config&, const Config&) = default;
  };

  /// `monitor` must sample CPU utilization; the autoscaler evaluates its
  /// policy every monitor granularity tick.
  AutoScaler(microsvc::Cluster& cluster, const ResourceMonitor& monitor,
             Config cfg);

  void Start();
  void Stop();

  const std::vector<ScaleAction>& actions() const { return actions_; }
  std::size_t scale_up_count() const;
  std::size_t scale_down_count() const;

 private:
  void Evaluate();

  microsvc::Cluster& cluster_;
  const ResourceMonitor& monitor_;
  Config cfg_;
  sim::EventHandle timer_;
  bool running_ = false;
  std::vector<SimTime> last_action_;
  std::vector<ScaleAction> actions_;
};

}  // namespace grunt::cloud
