#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/monitor.h"
#include "microsvc/cluster.h"

namespace grunt::cloud {

/// One scaling decision, for post-run analysis (Fig 14 / Fig 15b). The
/// canonical record lives on the telemetry scale channel; this alias keeps
/// the historical cloud:: spelling.
using ScaleAction = telemetry::ScaleEvent;

/// Threshold autoscaler mirroring the paper's policy (Sec V-B): scale up
/// when a service's CPU utilization exceeds `up_threshold` for `window`
/// straight, scale down below `down_threshold` for `window` straight.
/// Decisions are taken from a coarse (1 s) ResourceMonitor — which is why
/// sub-sampling-granularity millibottlenecks never trigger it.
class AutoScaler {
 public:
  struct Config {
    double up_threshold = 0.70;
    double down_threshold = 0.30;
    SimDuration window = Sec(30);
    /// Time from the scale-out decision until the replica serves traffic.
    SimDuration provision_delay = Sec(20);
    /// Minimum spacing between consecutive actions on one service.
    SimDuration cooldown = Sec(30);

    // Spec-visible (scenario files serialize this struct).
    friend bool operator==(const Config&, const Config&) = default;
  };

  /// `monitor` must sample CPU utilization; the autoscaler evaluates its
  /// policy every monitor granularity tick.
  AutoScaler(microsvc::Cluster& cluster, const ResourceMonitor& monitor,
             Config cfg);

  void Start();
  void Stop();

  /// Every action taken, in decision order; each is also published on the
  /// cluster's telemetry scale channel as it happens. In bounded mode (see
  /// SetActionLogBound) only a suffix is retained — still contiguous and in
  /// order.
  const std::vector<ScaleAction>& actions() const { return actions_; }
  /// Cumulative decision counts (unaffected by the log bound).
  std::size_t scale_up_count() const { return scale_ups_; }
  std::size_t scale_down_count() const { return scale_downs_; }

  /// Opt-in bounded action log for long cloudwatch runs (Fig 14/15): retains
  /// at least the most recent `n` actions and compacts (amortized O(1)) when
  /// the log reaches 2n, so memory stays flat. 0 (default) = unbounded.
  /// Same idiom as Cluster::SetCompletionLogBound.
  void SetActionLogBound(std::size_t n) {
    action_bound_ = n;
    if (n > 0) actions_.reserve(2 * n);
  }
  std::size_t action_log_bound() const { return action_bound_; }
  /// Actions dropped by the bound so far.
  std::uint64_t actions_dropped() const { return actions_dropped_; }

 private:
  void Evaluate();
  /// Appends to the (possibly bounded) log, bumps the cumulative counters
  /// and publishes on the scale channel.
  void Record(const ScaleAction& action);

  microsvc::Cluster& cluster_;
  const ResourceMonitor& monitor_;
  Config cfg_;
  sim::EventHandle timer_;
  bool running_ = false;
  std::vector<SimTime> last_action_;
  std::vector<ScaleAction> actions_;
  std::size_t action_bound_ = 0;
  std::uint64_t actions_dropped_ = 0;
  std::size_t scale_ups_ = 0;
  std::size_t scale_downs_ = 0;
};

}  // namespace grunt::cloud
