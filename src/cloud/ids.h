#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/monitor.h"
#include "microsvc/cluster.h"

namespace grunt::cloud {

/// Rule families of the gateway IDS/IPS in the paper's evaluation: a
/// Snort-style behavioral rule (inter-request interval), an AWS-Shield-style
/// per-IP rate window, and a resource-saturation rule fed by the coarse
/// monitor. Content/protocol rule families cannot fire on Grunt traffic
/// (structurally legitimate HTTP), which `content_checks_passed` records.
enum class AlertRule : std::uint8_t {
  kInterRequestInterval,  ///< two requests from one session < min interval
  kRateLimit,             ///< per-IP requests in window over limit
  kResourceSaturation,    ///< sustained saturation at monitor granularity
  kServiceDegradation,    ///< long RT observed (no client attribution)
};

const char* ToString(AlertRule rule);

struct Alert {
  SimTime at = 0;
  AlertRule rule{};
  std::uint64_t client_id = 0;  ///< 0 when the rule has no client attribution
  std::string detail;
};

/// Gateway intrusion detection/prevention, fed by every submitted request.
class Ids {
 public:
  struct Config {
    /// Sessions sending two consecutive requests closer than this are
    /// flagged (paper: 95% CI lower bound of legit inter-request times,
    /// rounded down to 3 s).
    SimDuration min_inter_request = Sec(3);
    /// Per-IP request budget per rate window (AWS Shield-style).
    std::int64_t rate_limit = 100;
    SimDuration rate_window = Sec(300);
    /// Resource rule: utilization >= this for >= consecutive samples.
    double saturation_threshold = 0.95;
    std::int32_t saturation_samples = 3;
    /// Degradation rule: windowed mean legit RT above this (ms).
    double degradation_rt_ms = 1000.0;
    /// Only sessions with at least this many requests are judged by the
    /// inter-request rule (one-shot clients are indistinguishable from new
    /// visitors).
    std::int32_t min_session_requests = 2;

    // Spec-visible (scenario files serialize this struct).
    friend bool operator==(const Config&, const Config&) = default;
  };

  /// `monitor`/`rt_monitor` may be null; the corresponding rules are then
  /// disabled.
  Ids(microsvc::Cluster& cluster, const ResourceMonitor* monitor,
      const ResponseTimeMonitor* rt_monitor, Config cfg);

  void Start();
  void Stop();

  const std::vector<Alert>& alerts() const { return alerts_; }
  std::size_t CountAlerts(AlertRule rule) const;

  /// Alerts whose client attribution points at an actual attack/probe
  /// session — i.e. detections that would let an operator block the attack.
  std::size_t attributed_attack_alerts() const {
    return attributed_attack_alerts_;
  }

  /// True: no content-based or protocol-based rule can fire on this traffic
  /// (requests are well-formed by construction). Recorded for reporting.
  bool content_checks_passed() const { return true; }

 private:
  void OnSubmit(microsvc::RequestTypeId type, microsvc::RequestClass cls,
                std::uint64_t client_id, SimTime at);
  void Evaluate();
  void Raise(AlertRule rule, std::uint64_t client_id, std::string detail,
             bool attack_attributed);

  microsvc::Cluster& cluster_;
  const ResourceMonitor* monitor_;
  const ResponseTimeMonitor* rt_monitor_;
  Config cfg_;
  sim::EventHandle timer_;
  bool running_ = false;

  struct SessionState {
    SimTime last_request = 0;
    std::int64_t total_requests = 0;
    bool is_attack = false;  ///< ground-truth tag, only for scoring
    std::deque<SimTime> window;  ///< request times within rate window
  };
  std::unordered_map<std::uint64_t, SessionState> sessions_;
  std::vector<std::size_t> next_util_sample_;
  std::vector<std::int32_t> saturated_ticks_;
  std::size_t next_rt_sample_ = 0;
  std::vector<Alert> alerts_;
  std::size_t attributed_attack_alerts_ = 0;
};

}  // namespace grunt::cloud
