#include "cloud/autoscaler.h"

#include <algorithm>
#include <limits>

namespace grunt::cloud {

AutoScaler::AutoScaler(microsvc::Cluster& cluster,
                       const ResourceMonitor& monitor, Config cfg)
    : cluster_(cluster), monitor_(monitor), cfg_(cfg) {
  const std::size_t n = cluster_.service_count();
  last_action_.assign(n, std::numeric_limits<SimTime>::min() / 2);
}

void AutoScaler::Start() {
  if (running_) return;
  running_ = true;
  timer_ = cluster_.simulation().Every(monitor_.granularity(),
                                       sim::EventClass::kTimer,
                                       [this] { Evaluate(); });
}

void AutoScaler::Stop() {
  running_ = false;
  timer_.Cancel();
}

void AutoScaler::Evaluate() {
  // CloudWatch-style alarm: the MEAN utilization over the evaluation window
  // must breach the threshold (a single quiet sample inside a hot window
  // does not reset the alarm, and — crucially for the paper's stealth
  // argument — sub-sampling millibottlenecks can never lift the windowed
  // mean over the threshold).
  const SimTime now = cluster_.simulation().Now();
  const auto window_ticks =
      static_cast<std::size_t>(cfg_.window / monitor_.granularity());
  for (std::size_t i = 0; i < cluster_.service_count(); ++i) {
    const auto sid = static_cast<microsvc::ServiceId>(i);
    const auto& series = monitor_.cpu_util(sid);
    const RunningStats window = series.WindowStats(now - cfg_.window, now);
    if (window.count() < window_ticks) continue;  // not enough data yet
    auto& svc = cluster_.service(sid);
    if (now - last_action_[i] < cfg_.cooldown) continue;
    if (window.mean() > cfg_.up_threshold &&
        svc.replicas() < svc.spec().max_replicas) {
      last_action_[i] = now;
      cluster_.simulation().After(cfg_.provision_delay,
                                  sim::EventClass::kTimer, [this, sid] {
        auto& s = cluster_.service(sid);
        s.AddReplica();
        Record({cluster_.simulation().Now(), sid, +1, s.replicas()});
      });
    } else if (window.mean() < cfg_.down_threshold && svc.replicas() > 1) {
      last_action_[i] = now;
      if (svc.RemoveReplica()) {
        Record({now, sid, -1, svc.replicas()});
      }
    }
  }
}

void AutoScaler::Record(const ScaleAction& action) {
  if (action.delta > 0) {
    ++scale_ups_;
  } else {
    ++scale_downs_;
  }
  actions_.push_back(action);
  if (action_bound_ > 0 && actions_.size() >= 2 * action_bound_) {
    // Bounded mode: compact down to the newest `action_bound_` actions.
    actions_dropped_ += actions_.size() - action_bound_;
    actions_.erase(actions_.begin(),
                   actions_.end() -
                       static_cast<std::ptrdiff_t>(action_bound_));
  }
  auto& channel = cluster_.telemetry().scale();
  if (channel.has_subscribers()) channel.Publish(action);
}

}  // namespace grunt::cloud
