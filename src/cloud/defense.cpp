#include "cloud/defense.h"

#include <algorithm>
#include <stdexcept>

namespace grunt::cloud {

CorrelationDefense::CorrelationDefense(microsvc::Cluster& cluster,
                                       const ResourceMonitor* fine_monitor,
                                       Config cfg)
    : cluster_(cluster), fine_(fine_monitor), cfg_(cfg) {
  if (cfg_.bucket <= 0 || cfg_.volley_threshold < 2 ||
      cfg_.flag_fraction <= 0 || cfg_.flag_fraction > 1) {
    throw std::invalid_argument("CorrelationDefense: bad config");
  }
  cluster_.telemetry().submit().Subscribe(
      [this](const telemetry::RequestSubmit& e) {
        if (!running_) return;
        ++bucket_counts_[{e.type, e.at / cfg_.bucket}];
        sessions_[e.client_id].requests.emplace_back(e.type, e.at);
      });
  cluster_.telemetry().completion().Subscribe(
      [this](const microsvc::CompletionRecord& r) {
    if (!running_) return;
    if (r.cls != microsvc::RequestClass::kLegit) return;
    if (r.outcome == microsvc::Outcome::kOk) return;
    legit_errors_.push_back(r.end);  // completion order => sorted
  });
}

void CorrelationDefense::Start() { running_ = true; }
void CorrelationDefense::Stop() { running_ = false; }

bool CorrelationDefense::InVolley(microsvc::RequestTypeId type,
                                  SimTime at) const {
  auto it = bucket_counts_.find({type, at / cfg_.bucket});
  return it != bucket_counts_.end() && it->second >= cfg_.volley_threshold;
}

std::vector<CorrelationDefense::Verdict> CorrelationDefense::Analyze(
    SimTime from, SimTime to) const {
  std::vector<Verdict> out;
  for (const auto& [client, log] : sessions_) {
    Verdict v;
    v.client_id = client;
    for (const auto& [type, at] : log.requests) {
      if (at < from || at >= to) continue;
      ++v.requests;
      v.in_volley += InVolley(type, at);
    }
    if (v.requests < static_cast<std::size_t>(cfg_.min_requests)) continue;
    v.participation =
        static_cast<double>(v.in_volley) / static_cast<double>(v.requests);
    v.flagged = v.participation > cfg_.flag_fraction;
    out.push_back(v);
  }
  std::sort(out.begin(), out.end(), [](const Verdict& a, const Verdict& b) {
    if (a.participation != b.participation) {
      return a.participation > b.participation;
    }
    return a.client_id < b.client_id;
  });
  return out;
}

std::vector<CorrelationDefense::Verdict> CorrelationDefense::FlaggedSessions(
    SimTime from, SimTime to) const {
  auto all = Analyze(from, to);
  all.erase(std::remove_if(all.begin(), all.end(),
                           [](const Verdict& v) { return !v.flagged; }),
            all.end());
  return all;
}

CorrelationDefense::VolleyStats CorrelationDefense::Volleys(
    SimTime from, SimTime to) const {
  VolleyStats stats;
  for (const auto& [key, count] : bucket_counts_) {
    const SimTime at = key.second * cfg_.bucket;
    if (count < cfg_.volley_threshold || at < from || at >= to) continue;
    ++stats.volleys;
    const auto lo = std::lower_bound(legit_errors_.begin(),
                                     legit_errors_.end(), at);
    const auto hi = std::lower_bound(legit_errors_.begin(),
                                     legit_errors_.end(),
                                     at + cfg_.confirm_window);
    if (hi - lo >= cfg_.error_confirm_min) ++stats.error_confirmed;
    if (fine_ == nullptr) {
      ++stats.confirmed;
      continue;
    }
    bool hot = false;
    for (std::size_t i = 0; i < cluster_.service_count() && !hot; ++i) {
      const auto sid = static_cast<microsvc::ServiceId>(i);
      hot = fine_->cpu_util(sid).WindowMax(at, at + cfg_.confirm_window) >=
            cfg_.saturation_util;
    }
    stats.confirmed += hot;
  }
  return stats;
}

}  // namespace grunt::cloud
