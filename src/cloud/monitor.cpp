#include "cloud/monitor.h"

#include <algorithm>

namespace grunt::cloud {

ResourceMonitor::ResourceMonitor(microsvc::Cluster& cluster, Config cfg)
    : cluster_(cluster), cfg_(std::move(cfg)) {
  const std::size_t n = cluster_.service_count();
  prev_busy_.assign(n, 0);
  cpu_util_.resize(n);
  queue_len_.resize(n);
  replicas_.resize(n);
  // Resolve the bus-fed gauges once; the Cluster registered them at
  // construction. Sampling reads exclusively through these handles.
  auto& reg = cluster_.telemetry().metrics();
  gauges_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string prefix = "svc." + std::to_string(i) + ".";
    gauges_.push_back(ServiceGauges{
        reg.Gauge(prefix + "busy_core_us"),
        reg.Gauge(prefix + "queue_len"),
        reg.Gauge(prefix + "replicas"),
        reg.Gauge(prefix + "cores"),
    });
  }
  gateway_bytes_g_ = reg.Gauge("gateway.bytes");
}

void ResourceMonitor::Start() {
  if (running_) return;
  running_ = true;
  // Initialize baselines so the first window is measured, not cumulative.
  const auto& reg = cluster_.telemetry().metrics();
  for (std::size_t i = 0; i < cluster_.service_count(); ++i) {
    prev_busy_[i] = reg.ReadGauge(gauges_[i].busy_core_us);
  }
  prev_gateway_bytes_ = reg.ReadGauge(gateway_bytes_g_);
  timer_ = cluster_.simulation().Every(cfg_.granularity,
                                       sim::EventClass::kTimer,
                                       [this] { Sample(); });
}

void ResourceMonitor::Stop() {
  running_ = false;
  timer_.Cancel();
}

void ResourceMonitor::Sample() {
  // Every value read here is a bus-fed gauge. The arithmetic is identical
  // to the old direct polling: the gauges expose exact integer counts, and
  // doubles subtract integers below 2^53 exactly.
  const SimTime now = cluster_.simulation().Now();
  const auto& reg = cluster_.telemetry().metrics();
  for (std::size_t i = 0; i < cluster_.service_count(); ++i) {
    const ServiceGauges& g = gauges_[i];
    const double busy = reg.ReadGauge(g.busy_core_us);
    const double window_core_us =
        reg.ReadGauge(g.cores) * static_cast<double>(cfg_.granularity);
    const double util =
        window_core_us <= 0
            ? 0.0
            : std::clamp((busy - prev_busy_[i]) / window_core_us, 0.0, 1.0);
    prev_busy_[i] = busy;
    cpu_util_[i].Add(now, util);
    queue_len_[i].Add(now, reg.ReadGauge(g.queue_len));
    replicas_[i].Add(now, reg.ReadGauge(g.replicas));
  }
  const double bytes = reg.ReadGauge(gateway_bytes_g_);
  const double mbps =
      (bytes - prev_gateway_bytes_) / (1e6 * ToSeconds(cfg_.granularity));
  prev_gateway_bytes_ = bytes;
  gateway_mbps_.Add(now, mbps);
}

microsvc::ServiceId ResourceMonitor::HottestService(SimTime from,
                                                    SimTime to) const {
  microsvc::ServiceId best = 0;
  double best_util = -1;
  for (std::size_t i = 0; i < cpu_util_.size(); ++i) {
    const double mean = cpu_util_[i].WindowMean(from, to);
    if (mean > best_util) {
      best_util = mean;
      best = static_cast<microsvc::ServiceId>(i);
    }
  }
  return best;
}

ResponseTimeMonitor::ResponseTimeMonitor(microsvc::Cluster& cluster,
                                         Config cfg)
    : cluster_(cluster), cfg_(std::move(cfg)) {
  // Log-spaced millisecond buckets covering sub-ms RPCs up to multi-second
  // tail stalls; intern-by-name makes a second monitor share the series.
  rt_hist_ = cluster_.telemetry().metrics().Histogram(
      cfg_.name + ".legit_ms",
      {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
  completion_sub_ = cluster_.telemetry().completion().Subscribe(
      [this](const microsvc::CompletionRecord& r) {
    if (!running_) return;
    if (r.cls != microsvc::RequestClass::kLegit) return;
    ++legit_outcomes_[static_cast<std::size_t>(r.outcome)];
    if (r.outcome != microsvc::Outcome::kOk) {
      ++window_errors_;
      return;
    }
    const double rt_ms = ToMillis(r.end - r.start);
    window_.Add(rt_ms);
    cluster_.telemetry().metrics().Observe(rt_hist_, rt_ms);
    legit_all_.emplace_back(r.end, rt_ms);
  });
}

void ResponseTimeMonitor::Start() {
  if (running_) return;
  running_ = true;
  timer_ = cluster_.simulation().Every(cfg_.granularity,
                                       sim::EventClass::kTimer,
                                       [this] { Flush(); });
}

void ResponseTimeMonitor::Stop() {
  running_ = false;
  timer_.Cancel();
}

void ResponseTimeMonitor::Flush() {
  const SimTime now = cluster_.simulation().Now();
  legit_mean_ms_.Add(now, window_.mean());
  legit_p95_ms_.Add(now, window_.Percentile(95));
  const double total =
      static_cast<double>(window_.count() + window_errors_);
  legit_throughput_.Add(now, total / ToSeconds(cfg_.granularity));
  goodput_.Add(now, static_cast<double>(window_.count()) /
                        ToSeconds(cfg_.granularity));
  error_rate_.Add(now, total <= 0
                           ? 0.0
                           : static_cast<double>(window_errors_) / total);
  window_.Clear();
  window_errors_ = 0;
}

Samples ResponseTimeMonitor::LegitWindow(SimTime from, SimTime to) const {
  Samples out;
  for (const auto& [end, rt] : legit_all_) {
    if (end >= from && end < to) out.Add(rt);
  }
  return out;
}

}  // namespace grunt::cloud
