#include "cloud/monitor.h"

#include <algorithm>

namespace grunt::cloud {

ResourceMonitor::ResourceMonitor(microsvc::Cluster& cluster, Config cfg)
    : cluster_(cluster), cfg_(std::move(cfg)) {
  const std::size_t n = cluster_.service_count();
  prev_busy_.assign(n, 0);
  cpu_util_.resize(n);
  queue_len_.resize(n);
  replicas_.resize(n);
}

void ResourceMonitor::Start() {
  if (running_) return;
  running_ = true;
  // Initialize baselines so the first window is measured, not cumulative.
  for (std::size_t i = 0; i < cluster_.service_count(); ++i) {
    prev_busy_[i] =
        cluster_.service(static_cast<microsvc::ServiceId>(i)).CumBusyCoreTime();
  }
  prev_gateway_bytes_ = cluster_.gateway_bytes();
  timer_ = cluster_.simulation().Every(cfg_.granularity,
                                       sim::EventClass::kTimer,
                                       [this] { Sample(); });
}

void ResourceMonitor::Stop() {
  running_ = false;
  timer_.Cancel();
}

void ResourceMonitor::Sample() {
  const SimTime now = cluster_.simulation().Now();
  for (std::size_t i = 0; i < cluster_.service_count(); ++i) {
    auto& svc = cluster_.service(static_cast<microsvc::ServiceId>(i));
    const std::int64_t busy = svc.CumBusyCoreTime();
    const double window_core_us =
        static_cast<double>(svc.cores()) *
        static_cast<double>(cfg_.granularity);
    const double util =
        window_core_us <= 0
            ? 0.0
            : std::clamp(static_cast<double>(busy - prev_busy_[i]) /
                             window_core_us,
                         0.0, 1.0);
    prev_busy_[i] = busy;
    cpu_util_[i].Add(now, util);
    queue_len_[i].Add(now, static_cast<double>(svc.queue_length()));
    replicas_[i].Add(now, static_cast<double>(svc.replicas()));
  }
  const std::int64_t bytes = cluster_.gateway_bytes();
  const double mbps = static_cast<double>(bytes - prev_gateway_bytes_) /
                      (1e6 * ToSeconds(cfg_.granularity));
  prev_gateway_bytes_ = bytes;
  gateway_mbps_.Add(now, mbps);
}

microsvc::ServiceId ResourceMonitor::HottestService(SimTime from,
                                                    SimTime to) const {
  microsvc::ServiceId best = 0;
  double best_util = -1;
  for (std::size_t i = 0; i < cpu_util_.size(); ++i) {
    const double mean = cpu_util_[i].WindowMean(from, to);
    if (mean > best_util) {
      best_util = mean;
      best = static_cast<microsvc::ServiceId>(i);
    }
  }
  return best;
}

ResponseTimeMonitor::ResponseTimeMonitor(microsvc::Cluster& cluster,
                                         Config cfg)
    : cluster_(cluster), cfg_(std::move(cfg)) {
  cluster_.AddCompletionListener([this](const microsvc::CompletionRecord& r) {
    if (!running_) return;
    if (r.cls != microsvc::RequestClass::kLegit) return;
    ++legit_outcomes_[static_cast<std::size_t>(r.outcome)];
    if (r.outcome != microsvc::Outcome::kOk) {
      ++window_errors_;
      return;
    }
    const double rt_ms = ToMillis(r.end - r.start);
    window_.Add(rt_ms);
    legit_all_.emplace_back(r.end, rt_ms);
  });
}

void ResponseTimeMonitor::Start() {
  if (running_) return;
  running_ = true;
  timer_ = cluster_.simulation().Every(cfg_.granularity,
                                       sim::EventClass::kTimer,
                                       [this] { Flush(); });
}

void ResponseTimeMonitor::Stop() {
  running_ = false;
  timer_.Cancel();
}

void ResponseTimeMonitor::Flush() {
  const SimTime now = cluster_.simulation().Now();
  legit_mean_ms_.Add(now, window_.mean());
  legit_p95_ms_.Add(now, window_.Percentile(95));
  const double total =
      static_cast<double>(window_.count() + window_errors_);
  legit_throughput_.Add(now, total / ToSeconds(cfg_.granularity));
  goodput_.Add(now, static_cast<double>(window_.count()) /
                        ToSeconds(cfg_.granularity));
  error_rate_.Add(now, total <= 0
                           ? 0.0
                           : static_cast<double>(window_errors_) / total);
  window_.Clear();
  window_errors_ = 0;
}

Samples ResponseTimeMonitor::LegitWindow(SimTime from, SimTime to) const {
  Samples out;
  for (const auto& [end, rt] : legit_all_) {
    if (end >= from && end < to) out.Add(rt);
  }
  return out;
}

}  // namespace grunt::cloud
