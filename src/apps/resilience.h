#pragma once

#include <optional>

#include "microsvc/types.h"

namespace grunt::apps {

/// Fault-tolerance deployment knobs shared by every app factory. The
/// defaults reproduce the paper's configuration exactly — no timeouts, no
/// retries, unbounded queues, no breakers — so every existing figure is
/// unchanged unless a bench opts in.
struct ResilienceOptions {
  /// Applied to every RPC edge when set (per-hop Hop::rpc overrides win).
  std::optional<microsvc::RpcPolicy> default_rpc;
  /// Bounds every backend service's arrival queue at
  /// `max_queue_per_replica * replicas` waiters (load shedding). The
  /// gateway keeps its unbounded queue (it is never the exploited one).
  /// 0 = unbounded everywhere.
  std::int32_t max_queue_per_replica = 0;
  /// Per-caller circuit breaker on every backend service: this many
  /// consecutive failures from one caller open it for `breaker_cooldown`.
  /// 0 = disabled.
  std::int32_t breaker_threshold = 0;
  SimDuration breaker_cooldown = Ms(500);

  bool any() const {
    return default_rpc.has_value() || max_queue_per_replica > 0 ||
           breaker_threshold > 0;
  }
};

}  // namespace grunt::apps
