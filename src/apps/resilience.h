#pragma once

#include <optional>

#include "microsvc/types.h"

namespace grunt::apps {

/// Fault-tolerance deployment knobs shared by every app factory. The
/// defaults reproduce the paper's configuration exactly — no timeouts, no
/// retries, unbounded queues, no breakers — so every existing figure is
/// unchanged unless a bench opts in.
struct ResilienceOptions {
  /// Applied to every RPC edge when set (per-hop Hop::rpc overrides win).
  std::optional<microsvc::RpcPolicy> default_rpc;
  /// Bounds every backend service's arrival queue at
  /// `max_queue_per_replica * replicas` waiters (load shedding). The
  /// gateway keeps its unbounded queue (it is never the exploited one).
  /// 0 = unbounded everywhere.
  std::int32_t max_queue_per_replica = 0;
  /// Per-caller circuit breaker on every backend service: this many
  /// consecutive failures from one caller open it for `breaker_cooldown`.
  /// 0 = disabled.
  std::int32_t breaker_threshold = 0;
  SimDuration breaker_cooldown = Ms(500);

  // Graceful-degradation deployment (the anti-Grunt countermeasures), all
  // stamped onto backend services only — the gateway is never the exploited
  // pool. Defaults off.
  /// Per-downstream bulkhead quota (× replicas) on every backend service.
  std::int32_t bulkhead_per_downstream = 0;
  /// Adaptive per-downstream concurrency limiter on every backend service.
  microsvc::AdaptiveLimitSpec adaptive_limit;
  /// Deadline-aware shedding at every backend service's admission.
  microsvc::DeadlineShedSpec deadline_shed;
  /// End-to-end deadline stamped onto every public dynamic endpoint (what
  /// deadline_shed budgets against). 0 = leave endpoint deadlines as-is.
  SimDuration endpoint_deadline = 0;

  bool any() const {
    return default_rpc.has_value() || max_queue_per_replica > 0 ||
           breaker_threshold > 0 || bulkhead_per_downstream > 0 ||
           adaptive_limit.enabled || deadline_shed.enabled ||
           endpoint_deadline > 0;
  }
};

}  // namespace grunt::apps
