#include "apps/socialnetwork.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace grunt::apps {

namespace {

using microsvc::Hop;
using microsvc::RequestTypeSpec;
using microsvc::ServiceId;
using microsvc::ServiceSpec;

/// Scales a mean demand by the cloud capacity factor (faster cloud ->
/// shorter demand).
SimDuration D(double ms, double capacity_scale) {
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(ms * 1000.0 / capacity_scale));
}

}  // namespace

microsvc::Application MakeSocialNetwork(const SocialNetworkOptions& opts) {
  if (opts.replica_scale < 1 || opts.capacity_scale <= 0 ||
      opts.queue_scale <= 0) {
    throw std::invalid_argument("MakeSocialNetwork: bad options");
  }
  microsvc::Application::Builder b;
  b.SetName("socialnetwork").SetServiceTimeDist(opts.dist).SetNetLatency(
      Us(400));

  const std::int32_t r = opts.replica_scale;
  auto svc = [&](const char* name, std::int32_t threads, std::int32_t cores,
                 std::int32_t replicas) {
    ServiceSpec spec;
    spec.name = name;
    // queue_scale applies to backend services; the gateway keeps its huge
    // pool (it is never the exploited queue).
    spec.threads_per_replica =
        threads >= 1024 ? threads
                        : std::max<std::int32_t>(
                              4, static_cast<std::int32_t>(
                                     threads * opts.queue_scale));
    spec.cores_per_replica = cores;
    spec.initial_replicas = replicas;
    spec.max_replicas = replicas * 8;
    if (threads < 1024) {  // backends only; the gateway never sheds
      spec.max_queue_per_replica = opts.resilience.max_queue_per_replica;
      spec.breaker_threshold = opts.resilience.breaker_threshold;
      spec.breaker_cooldown = opts.resilience.breaker_cooldown;
    }
    return b.AddService(spec);
  };
  if (opts.resilience.default_rpc) {
    b.SetDefaultRpcPolicy(*opts.resilience.default_rpc);
  }

  // --- gateway (well provisioned: overflow never reaches its slot pool) ---
  const ServiceId nginx = svc("nginx", 4096, 16, 1);

  // --- compose fan-in (dependency group A; shared UM: compose-post) ---
  const ServiceId compose_post = svc("compose-post", 20, 4, r);
  const ServiceId unique_id = svc("unique-id", 96, 2, r);
  const ServiceId text_service = svc("text-service", 64, 2, r);
  const ServiceId media_service = svc("media-service", 64, 2, r);
  const ServiceId url_shorten = svc("url-shorten", 64, 2, r);
  const ServiceId user_mention = svc("user-mention", 64, 2, r);
  const ServiceId post_storage = svc("post-storage", 128, 4, r);
  const ServiceId poll_service = svc("poll-service", 64, 2, r);

  // --- home-timeline read fan-in (group B; shared UM: home-timeline) ---
  const ServiceId home_timeline = svc("home-timeline", 20, 4, r);
  const ServiceId social_graph = svc("social-graph", 64, 2, r);
  const ServiceId media_frontend = svc("media-frontend", 64, 2, r);
  const ServiceId recommender = svc("recommender", 64, 2, r);

  // --- user-timeline read fan-in (group C; shared UM: user-timeline) ---
  const ServiceId user_timeline = svc("user-timeline", 20, 4, r);
  const ServiceId user_service = svc("user-service", 64, 2, r);
  const ServiceId follow_service = svc("follow-service", 64, 2, r);
  const ServiceId profile_service = svc("profile-service", 64, 2, r);

  // --- storage / auxiliary backends ---
  const ServiceId media_storage = svc("media-storage", 128, 2, r);
  const ServiceId user_db = svc("user-db", 128, 4, r);
  const ServiceId social_graph_db = svc("social-graph-db", 128, 2, r);
  const ServiceId auth_service = svc("auth-service", 64, 2, r);
  const ServiceId search_service = svc("search-service", 64, 2, r);
  const ServiceId post_cache = svc("post-cache", 128, 2, r);
  const ServiceId timeline_cache = svc("timeline-cache", 128, 2, r);
  const ServiceId user_cache = svc("user-cache", 128, 2, r);
  const ServiceId media_cache = svc("media-cache", 128, 2, r);

  const double cs = opts.capacity_scale;
  auto type = [&](const char* name, std::vector<Hop> hops, double heavy,
                  std::int64_t req_bytes, std::int64_t resp_bytes) {
    RequestTypeSpec spec;
    spec.name = name;
    spec.hops = std::move(hops);
    spec.heavy_multiplier = heavy;
    spec.request_bytes = req_bytes;
    spec.response_bytes = resp_bytes;
    return b.AddRequestType(spec);
  };

  // Group A: compose paths. compose-post is the shared upstream service;
  // each variant bottlenecks on a different downstream worker.
  type("compose/text",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(1.5, cs), D(0.7, cs)},
        {unique_id, D(0.4, cs), 0},
        {text_service, D(9.0, cs), D(1.0, cs)},
        {post_storage, D(1.2, cs), 0}},
       1.6, 900, 1500);
  type("compose/media",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(1.5, cs), D(0.7, cs)},
        {media_service, D(10.0, cs), D(1.0, cs)},
        {media_storage, D(1.5, cs), 0}},
       1.6, 4000, 1600);
  type("compose/url",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(1.4, cs), D(0.7, cs)},
        {url_shorten, D(9.0, cs), D(0.8, cs)},
        {post_storage, D(1.0, cs), 0}},
       1.6, 1000, 1400);
  type("compose/mention",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(1.5, cs), D(0.7, cs)},
        {user_mention, D(9.5, cs), D(0.8, cs)},
        {user_db, D(0.8, cs), 0}},
       1.6, 1100, 1400);
  // The "upstream" path of the group: its bottleneck is compose-post itself,
  // giving it a sequential dependency over the other compose paths (it can
  // trigger an execution blocking effect directly, Definition II).
  type("compose/poll",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(24.0, cs), D(1.5, cs)},
        {poll_service, D(1.0, cs), 0}},
       1.6, 1200, 1300);

  // Group B: home-timeline reads.
  type("home/read",
       {{nginx, D(0.3, cs), 0},
        {home_timeline, D(1.4, cs), D(0.6, cs)},
        {social_graph, D(9.0, cs), D(0.8, cs)},
        {post_cache, D(0.8, cs), 0}},
       1.6, 600, 9000);
  type("home/media",
       {{nginx, D(0.3, cs), 0},
        {home_timeline, D(1.4, cs), D(0.6, cs)},
        {media_frontend, D(10.0, cs), D(0.8, cs)},
        {media_cache, D(0.8, cs), 0}},
       1.6, 600, 14000);
  type("home/recommend",
       {{nginx, D(0.3, cs), 0},
        {home_timeline, D(1.4, cs), D(0.6, cs)},
        {recommender, D(11.0, cs), D(0.8, cs)},
        {user_cache, D(0.6, cs), 0}},
       1.6, 700, 7000);

  // Group C: user-timeline reads.
  type("user/read",
       {{nginx, D(0.3, cs), 0},
        {user_timeline, D(1.4, cs), D(0.6, cs)},
        {user_service, D(9.0, cs), D(0.8, cs)},
        {timeline_cache, D(0.8, cs), 0}},
       1.6, 600, 8000);
  type("user/follow",
       {{nginx, D(0.3, cs), 0},
        {user_timeline, D(1.4, cs), D(0.6, cs)},
        {follow_service, D(9.5, cs), D(0.8, cs)},
        {social_graph_db, D(0.8, cs), 0}},
       1.6, 700, 1200);
  type("user/profile",
       {{nginx, D(0.3, cs), 0},
        {user_timeline, D(1.4, cs), D(0.6, cs)},
        {profile_service, D(10.0, cs), D(0.8, cs)},
        {user_db, D(0.7, cs), 0}},
       1.6, 600, 6000);

  // Independent singleton paths: share only nginx / leaf storage with the
  // groups, and the gateway is too well provisioned to overflow.
  type("auth/login",
       {{nginx, D(0.3, cs), 0},
        {auth_service, D(6.0, cs), D(0.8, cs)},
        {user_cache, D(0.6, cs), 0}},
       1.5, 500, 900);
  type("search",
       {{nginx, D(0.3, cs), 0},
        {search_service, D(8.0, cs), D(0.8, cs)},
        {post_cache, D(0.7, cs), 0}},
       1.6, 600, 5000);

  // Static asset served at the edge; excluded by the profiler.
  {
    RequestTypeSpec spec;
    spec.name = "static/logo.png";
    spec.is_static = true;
    spec.request_bytes = 400;
    spec.response_bytes = 25000;
    b.AddRequestType(spec);
  }

  return std::move(b).Build();
}

workload::RequestMix SocialNetworkMix(const microsvc::Application& app) {
  workload::RequestMix mix;
  auto add = [&](const char* name, double weight) {
    auto id = app.FindRequestType(name);
    if (!id) throw std::logic_error("SocialNetworkMix: missing type");
    mix.types.push_back(*id);
    mix.weights.push_back(weight);
  };
  // Read-leaning social-media mix, balanced so that at the reference
  // workload (7000 users ~= 1000 req/s) every worker bottleneck sits at a
  // realistic 35-55% utilization (Sec V-B: clouds run below saturation).
  add("home/read", 10);
  add("home/media", 9);
  add("home/recommend", 8);
  add("user/read", 9);
  add("user/follow", 8);
  add("user/profile", 8);
  add("compose/text", 9);
  add("compose/media", 8);
  add("compose/url", 7);
  add("compose/mention", 7);
  add("compose/poll", 6);
  add("auth/login", 4);
  add("search", 3);
  add("static/logo.png", 1);
  return mix;
}

workload::MarkovNavigator SocialNetworkNavigator(
    const microsvc::Application& app) {
  const workload::RequestMix mix = SocialNetworkMix(app);
  workload::MarkovNavigator nav;
  nav.types = mix.types;
  // Memoryless chain whose stationary distribution equals the mix weights:
  // every row is the popularity vector.
  nav.transition.assign(mix.types.size(), mix.weights);
  return nav;
}

}  // namespace grunt::apps
