#include "apps/socialnetwork.h"

#include "scenario/builtin_apps.h"
#include "scenario/loader.h"

// The topology itself now lives in the declarative scenario layer
// (scenario::SocialNetworkScenario, shipped as specs/socialnetwork.json);
// these factories are thin wrappers kept for source compatibility.

namespace grunt::apps {

namespace {

scenario::DeploymentParams ToParams(const SocialNetworkOptions& opts) {
  scenario::DeploymentParams p;
  p.replica_scale = opts.replica_scale;
  p.capacity_scale = opts.capacity_scale;
  p.dist = opts.dist;
  p.queue_scale = opts.queue_scale;
  p.default_rpc = opts.resilience.default_rpc;
  p.max_queue_per_replica = opts.resilience.max_queue_per_replica;
  p.breaker_threshold = opts.resilience.breaker_threshold;
  p.breaker_cooldown = opts.resilience.breaker_cooldown;
  p.bulkhead_per_downstream = opts.resilience.bulkhead_per_downstream;
  p.adaptive_limit = opts.resilience.adaptive_limit;
  p.deadline_shed = opts.resilience.deadline_shed;
  p.endpoint_deadline = opts.resilience.endpoint_deadline;
  return p;
}

}  // namespace

microsvc::Application MakeSocialNetwork(const SocialNetworkOptions& opts) {
  return scenario::BuildApplication(
      scenario::SocialNetworkScenario(ToParams(opts)).topology);
}

workload::RequestMix SocialNetworkMix(const microsvc::Application& app) {
  return scenario::BuildRequestMix(app,
                                   scenario::SocialNetworkScenario().workload);
}

workload::MarkovNavigator SocialNetworkNavigator(
    const microsvc::Application& app) {
  return scenario::BuildNavigator(app,
                                  scenario::SocialNetworkScenario().workload);
}

}  // namespace grunt::apps
