#pragma once

#include "apps/resilience.h"
#include "microsvc/application.h"
#include "workload/workload.h"

namespace grunt::apps {

/// Knobs for instantiating the SocialNetwork benchmark topology.
struct SocialNetworkOptions {
  /// Scales the initial replica count of backend services (the paper's
  /// higher-workload settings run against proportionally larger clusters).
  std::int32_t replica_scale = 1;
  /// Relative capacity of the hosting cloud (EC2 = 1.0; used to model the
  /// slightly different vCPU throughput across providers).
  double capacity_scale = 1.0;
  microsvc::ServiceTimeDist dist = microsvc::ServiceTimeDist::kExponential;
  /// Multiplies every backend service's thread-pool (queue) size; the
  /// Sec VI "Impact of microservice's queue size" knob. 1.0 = reference.
  double queue_scale = 1.0;
  /// Fault-tolerance deployment (timeouts/retries/shedding/breakers);
  /// defaults off so the paper's figures reproduce unchanged.
  ResilienceOptions resilience;
};

/// Builds a SocialNetwork-style microservice application modeled on the
/// DeathStarBench SocialNetwork call graph the paper attacks (Fig 12a):
/// an nginx gateway, a compose-post fan-in, home-/user-timeline read fan-ins
/// and storage backends. Request types are the public URLs; by construction
/// (and verified by ground-truth analysis in tests) they form three
/// dependency groups — compose, read-home, read-user — plus independent
/// singleton paths and one static URL, mirroring Fig 12(c).
microsvc::Application MakeSocialNetwork(const SocialNetworkOptions& opts = {});

/// The legitimate-user page-navigation mix over the app's request types
/// (popularity-weighted, Markov-uniform variant available via
/// workload::MarkovNavigator).
workload::RequestMix SocialNetworkMix(const microsvc::Application& app);

/// Markov navigator with the same stationary popularity as
/// SocialNetworkMix (users browse timelines, occasionally compose).
workload::MarkovNavigator SocialNetworkNavigator(
    const microsvc::Application& app);

}  // namespace grunt::apps
