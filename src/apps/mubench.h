#pragma once

#include <cstdint>

#include "apps/resilience.h"
#include "microsvc/application.h"
#include "workload/workload.h"

namespace grunt::apps {

/// Options for the µBench-style application factory [21]: seeded random
/// microservice topologies of a target size, used for the paper's live
/// attack scenarios with unknown architectures (Sec V-C; apps with 62, 118
/// and 196 unique microservices).
struct MuBenchOptions {
  std::int32_t services = 62;  ///< unique microservices to generate
  std::int32_t groups = 3;     ///< dependency groups to embed
  /// Dependent paths per group (each bottlenecks on its own worker service
  /// behind the group's shared upstream service).
  std::int32_t paths_per_group = 3;
  /// Additionally, one "upstream" path per group whose bottleneck is the
  /// shared UM itself (sequential dependency source). Generated for the
  /// first `upstream_paths` groups.
  std::int32_t upstream_paths = 1;
  std::int32_t singleton_paths = 2;  ///< independent paths (own group each)
  std::uint64_t seed = 1;
  microsvc::ServiceTimeDist dist = microsvc::ServiceTimeDist::kExponential;
  /// Fault-tolerance deployment; defaults off (paper configuration).
  ResilienceOptions resilience;
};

/// Generates a deterministic random application with the requested shape.
/// Services not reachable from any public path pad the topology to
/// `services` (realistic: batch/ops services that public URLs never touch).
microsvc::Application MakeMuBench(const MuBenchOptions& opts);

/// Uniform navigation mix over the app's dynamic request types.
workload::RequestMix MuBenchMix(const microsvc::Application& app);

}  // namespace grunt::apps
