#include "apps/mubench.h"

#include "scenario/generate.h"
#include "scenario/loader.h"

// Generation itself now lives in the declarative scenario layer
// (scenario::GenerateMubench, which emits a dump-able ScenarioSpec with the
// same seeded draw order); this factory is a thin wrapper kept for source
// compatibility.

namespace grunt::apps {

microsvc::Application MakeMuBench(const MuBenchOptions& opts) {
  scenario::MubenchParams p;
  p.services = opts.services;
  p.groups = opts.groups;
  p.paths_per_group = opts.paths_per_group;
  p.upstream_paths = opts.upstream_paths;
  p.singleton_paths = opts.singleton_paths;
  p.dist = opts.dist;
  p.default_rpc = opts.resilience.default_rpc;
  p.max_queue_per_replica = opts.resilience.max_queue_per_replica;
  p.breaker_threshold = opts.resilience.breaker_threshold;
  p.breaker_cooldown = opts.resilience.breaker_cooldown;
  p.bulkhead_per_downstream = opts.resilience.bulkhead_per_downstream;
  p.adaptive_limit = opts.resilience.adaptive_limit;
  p.deadline_shed = opts.resilience.deadline_shed;
  p.endpoint_deadline = opts.resilience.endpoint_deadline;
  return scenario::BuildApplication(
      scenario::GenerateMubench(opts.seed, p).topology);
}

workload::RequestMix MuBenchMix(const microsvc::Application& app) {
  // Admin endpoints are heavyweight on their group frontend; real users hit
  // them far less often than the regular APIs (a uniform mix would saturate
  // the frontend at high workloads).
  workload::RequestMix mix;
  for (auto t : app.PublicDynamicTypes()) {
    mix.types.push_back(t);
    const auto& name = app.request_type(t).name;
    mix.weights.push_back(
        name.size() >= 6 && name.rfind("-admin") == name.size() - 6 ? 0.25
                                                                    : 1.0);
  }
  return mix;
}

}  // namespace grunt::apps
