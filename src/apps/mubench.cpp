#include "apps/mubench.h"

#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace grunt::apps {

namespace {

using microsvc::Hop;
using microsvc::RequestTypeSpec;
using microsvc::ServiceId;
using microsvc::ServiceSpec;

}  // namespace

microsvc::Application MakeMuBench(const MuBenchOptions& opts) {
  if (opts.services < 8 || opts.groups < 1 || opts.paths_per_group < 2) {
    throw std::invalid_argument("MakeMuBench: bad options");
  }
  // Upper bound on services the embedded structure can consume (gateway +
  // per-group UM/workers/stores/mids/audit + singletons).
  const std::int32_t structural =
      1 + opts.groups * (2 + 3 * opts.paths_per_group) +
      2 * opts.singleton_paths;
  if (opts.services < structural) {
    throw std::invalid_argument(
        "MakeMuBench: services too small for requested structure (need >= " +
        std::to_string(structural) + ")");
  }
  RngStream rng(opts.seed, "mubench.topology");
  microsvc::Application::Builder b;
  b.SetName("mubench-" + std::to_string(opts.services) + "-s" +
            std::to_string(opts.seed))
      .SetServiceTimeDist(opts.dist)
      .SetNetLatency(Us(400));

  std::int32_t remaining = opts.services;
  auto svc = [&](const std::string& name, std::int32_t threads,
                 std::int32_t cores) {
    ServiceSpec spec;
    spec.name = name;
    spec.threads_per_replica = threads;
    spec.cores_per_replica = cores;
    spec.initial_replicas = 1;
    spec.max_replicas = 8;
    if (threads < 1024) {  // backends only; the gateway never sheds
      spec.max_queue_per_replica = opts.resilience.max_queue_per_replica;
      spec.breaker_threshold = opts.resilience.breaker_threshold;
      spec.breaker_cooldown = opts.resilience.breaker_cooldown;
    }
    --remaining;
    return b.AddService(spec);
  };
  if (opts.resilience.default_rpc) {
    b.SetDefaultRpcPolicy(*opts.resilience.default_rpc);
  }

  const ServiceId gateway = svc("gateway", 4096, 16);

  auto light_demand = [&] { return Us(300 + rng.NextInt(0, 900)); };
  auto heavy_demand = [&] { return Us(8000 + rng.NextInt(0, 3500)); };

  std::int32_t type_count = 0;
  auto add_type = [&](const std::string& name, std::vector<Hop> hops) {
    RequestTypeSpec spec;
    spec.name = name;
    spec.hops = std::move(hops);
    spec.heavy_multiplier = 1.6;
    spec.request_bytes = 500 + rng.NextInt(0, 1500);
    spec.response_bytes = 1000 + rng.NextInt(0, 9000);
    ++type_count;
    return b.AddRequestType(spec);
  };

  for (std::int32_t g = 0; g < opts.groups; ++g) {
    const std::string gp = "g" + std::to_string(g);
    // Shared upstream service of the group: small slot pool so cross-tier
    // overflow can reach it within the stealth volume budget.
    const ServiceId um = svc(gp + "-frontend", 20, 4);
    for (std::int32_t p = 0; p < opts.paths_per_group; ++p) {
      const std::string pp = gp + "-p" + std::to_string(p);
      const ServiceId worker = svc(pp + "-worker", 64, 2);
      const ServiceId leaf = svc(pp + "-store", 128, 2);
      std::vector<Hop> hops;
      hops.push_back({gateway, Us(300), 0});
      hops.push_back({um, Us(1400), Us(600)});
      // 0-1 light intermediate services for topology variety.
      if (rng.NextBool(0.5) && remaining > opts.groups) {
        const ServiceId mid = svc(pp + "-mid", 96, 2);
        hops.push_back({mid, light_demand(), 0});
      }
      hops.push_back({worker, heavy_demand(), Us(800)});
      hops.push_back({leaf, light_demand(), 0});
      add_type("api/" + pp, std::move(hops));
    }
    if (g < opts.upstream_paths) {
      // Path bottlenecking on the shared UM itself: the group's sequential
      // "upstream" member.
      const ServiceId leaf = svc(gp + "-audit", 128, 2);
      add_type("api/" + gp + "-admin",
               {{gateway, Us(300), 0},
                {um, Us(24000), Us(1200)},
                {leaf, light_demand(), 0}});
    }
  }

  for (std::int32_t s = 0; s < opts.singleton_paths; ++s) {
    const std::string sp = "solo" + std::to_string(s);
    const ServiceId worker = svc(sp + "-worker", 64, 2);
    const ServiceId leaf = svc(sp + "-store", 128, 2);
    add_type("api/" + sp, {{gateway, Us(300), 0},
                           {worker, heavy_demand(), Us(800)},
                           {leaf, light_demand(), 0}});
  }

  // Pad to the requested service count with services public URLs never
  // reach (cron jobs, internal pipelines, replicated sidecars).
  std::int32_t pad = 0;
  while (remaining > 0) {
    svc("internal-" + std::to_string(pad++), 32, 1);
  }

  return std::move(b).Build();
}

workload::RequestMix MuBenchMix(const microsvc::Application& app) {
  // Admin endpoints are heavyweight on their group frontend; real users hit
  // them far less often than the regular APIs (a uniform mix would saturate
  // the frontend at high workloads).
  workload::RequestMix mix;
  for (auto t : app.PublicDynamicTypes()) {
    mix.types.push_back(t);
    const auto& name = app.request_type(t).name;
    mix.weights.push_back(
        name.size() >= 6 && name.rfind("-admin") == name.size() - 6 ? 0.25
                                                                    : 1.0);
  }
  return mix;
}

}  // namespace grunt::apps
