#include "apps/hotelreservation.h"

#include <algorithm>
#include <stdexcept>

namespace grunt::apps {

namespace {

using microsvc::Hop;
using microsvc::RequestTypeSpec;
using microsvc::ServiceId;
using microsvc::ServiceSpec;

SimDuration D(double ms, double capacity_scale) {
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(ms * 1000.0 / capacity_scale));
}

}  // namespace

microsvc::Application MakeHotelReservation(
    const HotelReservationOptions& opts) {
  if (opts.replica_scale < 1 || opts.capacity_scale <= 0) {
    throw std::invalid_argument("MakeHotelReservation: bad options");
  }
  microsvc::Application::Builder b;
  b.SetName("hotelreservation")
      .SetServiceTimeDist(opts.dist)
      .SetNetLatency(Us(400));

  const std::int32_t r = opts.replica_scale;
  auto svc = [&](const char* name, std::int32_t threads, std::int32_t cores,
                 std::int32_t replicas) {
    ServiceSpec spec;
    spec.name = name;
    spec.threads_per_replica = threads;
    spec.cores_per_replica = cores;
    spec.initial_replicas = replicas;
    spec.max_replicas = replicas * 8;
    if (threads < 1024) {  // backends only; the gateway never sheds
      spec.max_queue_per_replica = opts.resilience.max_queue_per_replica;
      spec.breaker_threshold = opts.resilience.breaker_threshold;
      spec.breaker_cooldown = opts.resilience.breaker_cooldown;
    }
    return b.AddService(spec);
  };
  if (opts.resilience.default_rpc) {
    b.SetDefaultRpcPolicy(*opts.resilience.default_rpc);
  }

  const ServiceId frontend = svc("frontend", 4096, 16, 1);

  // Search fan-in (group A; shared UM: search).
  const ServiceId search = svc("search", 20, 4, r);
  const ServiceId geo = svc("geo", 64, 2, r);
  const ServiceId rate = svc("rate", 64, 2, r);
  const ServiceId recommendation = svc("recommendation", 64, 2, r);
  const ServiceId hotel_db = svc("hotel-db", 128, 4, r);
  const ServiceId geo_cache = svc("geo-cache", 128, 2, r);
  const ServiceId rate_cache = svc("rate-cache", 128, 2, r);

  // Reservation fan-in (group B; shared UM: reservation).
  const ServiceId reservation = svc("reservation", 20, 4, r);
  const ServiceId availability = svc("availability", 64, 2, r);
  const ServiceId payment = svc("payment", 64, 2, r);
  const ServiceId booking_records = svc("booking-records", 64, 2, r);
  const ServiceId booking_db = svc("booking-db", 128, 4, r);
  const ServiceId payment_gateway = svc("payment-gateway", 128, 2, r);

  // Independent paths + backends.
  const ServiceId user = svc("user", 64, 2, r);
  const ServiceId profile = svc("profile", 64, 2, r);
  const ServiceId user_db = svc("user-db", 128, 2, r);
  const ServiceId profile_db = svc("profile-db", 128, 2, r);

  const double cs = opts.capacity_scale;
  auto type = [&](const char* name, std::vector<Hop> hops, double heavy,
                  std::int64_t req_bytes, std::int64_t resp_bytes) {
    RequestTypeSpec spec;
    spec.name = name;
    spec.hops = std::move(hops);
    spec.heavy_multiplier = heavy;
    spec.request_bytes = req_bytes;
    spec.response_bytes = resp_bytes;
    return b.AddRequestType(spec);
  };

  // Group A: searches (distinct worker bottlenecks behind `search`).
  type("search/nearby",
       {{frontend, D(0.3, cs), 0},
        {search, D(1.5, cs), D(0.6, cs)},
        {geo, D(9.0, cs), D(0.8, cs)},
        {geo_cache, D(0.8, cs), 0}},
       1.6, 700, 9000);
  type("search/rates",
       {{frontend, D(0.3, cs), 0},
        {search, D(1.5, cs), D(0.6, cs)},
        {rate, D(10.0, cs), D(0.8, cs)},
        {rate_cache, D(0.8, cs), 0}},
       1.6, 700, 7000);
  type("search/recommend",
       {{frontend, D(0.3, cs), 0},
        {search, D(1.5, cs), D(0.6, cs)},
        {recommendation, D(10.5, cs), D(0.8, cs)},
        {hotel_db, D(0.8, cs), 0}},
       1.6, 700, 8000);
  // The "upstream" member: a complex multi-criteria search that bottlenecks
  // on the search frontend itself (sequential dependency source).
  type("search/complex",
       {{frontend, D(0.3, cs), 0},
        {search, D(24.0, cs), D(1.5, cs)},
        {hotel_db, D(1.0, cs), 0}},
       1.6, 900, 11000);

  // Group B: reservations.
  type("reserve/availability",
       {{frontend, D(0.3, cs), 0},
        {reservation, D(1.5, cs), D(0.6, cs)},
        {availability, D(9.5, cs), D(0.8, cs)},
        {booking_db, D(0.8, cs), 0}},
       1.6, 800, 3000);
  type("reserve/book",
       {{frontend, D(0.3, cs), 0},
        {reservation, D(1.6, cs), D(0.7, cs)},
        {payment, D(10.0, cs), D(0.8, cs)},
        {payment_gateway, D(1.0, cs), 0}},
       1.6, 1200, 1500);
  type("reserve/history",
       {{frontend, D(0.3, cs), 0},
        {reservation, D(1.5, cs), D(0.6, cs)},
        {booking_records, D(9.0, cs), D(0.8, cs)},
        {booking_db, D(0.7, cs), 0}},
       1.6, 600, 5000);

  // Independent singleton paths.
  type("user/login",
       {{frontend, D(0.3, cs), 0},
        {user, D(7.0, cs), D(0.8, cs)},
        {user_db, D(0.6, cs), 0}},
       1.5, 500, 900);
  type("profile/view",
       {{frontend, D(0.3, cs), 0},
        {profile, D(8.0, cs), D(0.8, cs)},
        {profile_db, D(0.7, cs), 0}},
       1.6, 500, 6000);

  {
    RequestTypeSpec st;
    st.name = "static/map-tile.png";
    st.is_static = true;
    st.request_bytes = 400;
    st.response_bytes = 60000;
    b.AddRequestType(st);
  }

  return std::move(b).Build();
}

workload::RequestMix HotelReservationMix(const microsvc::Application& app) {
  workload::RequestMix mix;
  auto add = [&](const char* name, double weight) {
    auto id = app.FindRequestType(name);
    if (!id) throw std::logic_error("HotelReservationMix: missing type");
    mix.types.push_back(*id);
    mix.weights.push_back(weight);
  };
  // Travel sites are browse-heavy: many searches per booking.
  add("search/nearby", 16);
  add("search/rates", 14);
  add("search/recommend", 12);
  add("search/complex", 6);
  add("reserve/availability", 13);
  add("reserve/book", 8);
  add("reserve/history", 10);
  add("user/login", 6);
  add("profile/view", 8);
  add("static/map-tile.png", 3);
  return mix;
}

workload::MarkovNavigator HotelReservationNavigator(
    const microsvc::Application& app) {
  const workload::RequestMix mix = HotelReservationMix(app);
  workload::MarkovNavigator nav;
  nav.types = mix.types;
  nav.transition.assign(mix.types.size(), mix.weights);
  return nav;
}

}  // namespace grunt::apps
