#pragma once

#include "apps/resilience.h"
#include "microsvc/application.h"
#include "workload/workload.h"

namespace grunt::apps {

/// Knobs for the HotelReservation topology (same semantics as
/// SocialNetworkOptions).
struct HotelReservationOptions {
  std::int32_t replica_scale = 1;
  double capacity_scale = 1.0;
  microsvc::ServiceTimeDist dist = microsvc::ServiceTimeDist::kExponential;
  /// Fault-tolerance deployment; defaults off (paper configuration).
  ResilienceOptions resilience;
};

/// A second DeathStarBench-style target (extension beyond the paper's
/// evaluation, which used SocialNetwork + µBench): a travel-booking
/// application with a search fan-in (geo / rates / recommendation behind a
/// shared search frontend) and a reservation fan-in (availability / payment
/// / booking-records behind a shared reservation frontend), plus
/// independent login and profile paths and a static tile asset. By ground
/// truth it forms two multi-path dependency groups and two singletons —
/// a different group structure than SocialNetwork, exercising the same
/// attack pipeline.
microsvc::Application MakeHotelReservation(
    const HotelReservationOptions& opts = {});

/// Popularity-weighted navigation mix (search-heavy, bookings rarer).
workload::RequestMix HotelReservationMix(const microsvc::Application& app);

/// Markov navigator with the mix as its stationary distribution.
workload::MarkovNavigator HotelReservationNavigator(
    const microsvc::Application& app);

}  // namespace grunt::apps
