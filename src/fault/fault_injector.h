#pragma once

#include <cstdint>
#include <vector>

#include "microsvc/cluster.h"
#include "microsvc/types.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace grunt::fault {

/// What a scheduled fault did when it fired.
enum class FaultKind : std::uint8_t {
  kCrash = 0,       ///< one replica crashed (magnitude = replicas left)
  kRestart = 1,     ///< a crashed replica came back
  kSlowStart = 2,   ///< CPU demand multiplied by `magnitude`
  kSlowEnd = 3,     ///< demand factor restored
  kNetSpikeStart = 4,  ///< extra per-message latency of `magnitude` us added
  kNetSpikeEnd = 5,    ///< extra latency removed
};

const char* ToString(FaultKind k);

/// One entry of the injector's ground-truth fault log.
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kCrash;
  microsvc::ServiceId service = microsvc::kInvalidService;  ///< net faults: invalid
  double magnitude = 0.0;
  bool applied = true;  ///< false e.g. for a crash at 0 remaining replicas
};

/// Schedules infrastructure faults against a running Cluster.
///
/// Three fault families, mirroring the chaos toolkits the fault-tolerance
/// layer is meant to survive:
///  * **crash/restart** — Service::Crash() removes a replica and kills its
///    share of in-flight CPU bursts (requests observe Outcome::kFailed);
///    an optional downtime schedules the matching Restart().
///  * **slow replica** — multiplies every subsequent CPU demand of a service
///    for a window (gray failure: the service answers, just slowly — the
///    classic trigger for timeout/retry storms).
///  * **network spike** — adds flat extra latency to every message for a
///    window (Cluster::AddExtraNetLatency).
///
/// All scheduling is deterministic; random crash sequences draw from a
/// named RngStream so runs are reproducible and independent of other
/// randomness in the simulation.
class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, microsvc::Cluster& cluster,
                std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Crashes one replica of `svc` at `at`; when `downtime` > 0 the replica
  /// restarts at `at + downtime`. A crash that finds 0 replicas is logged
  /// with applied=false (and schedules no restart).
  void ScheduleCrash(microsvc::ServiceId svc, SimTime at,
                     SimDuration downtime = 0);

  /// Multiplies `svc`'s CPU demand by `factor` (> 0) during
  /// [at, at + duration); duration 0 leaves the slowdown in place forever.
  void ScheduleSlow(microsvc::ServiceId svc, SimTime at, double factor,
                    SimDuration duration = 0);

  /// Adds `extra` per-message network latency during [at, at + duration);
  /// duration 0 leaves the spike in place forever. Spikes stack.
  void ScheduleNetSpike(SimTime at, SimDuration extra, SimDuration duration = 0);

  /// Poisson process of crashes over [start, end): exponential inter-arrival
  /// with `mean_interval`, each crash hits a uniformly random service and
  /// restarts after `downtime`. Deterministic given the injector's seed.
  void ScheduleRandomCrashes(SimTime start, SimTime end,
                             SimDuration mean_interval, SimDuration downtime);

  /// Ground-truth log of every fault fired, in firing order.
  const std::vector<FaultEvent>& log() const { return log_; }

 private:
  void FireCrash(microsvc::ServiceId svc, SimDuration downtime);

  sim::Simulation& sim_;
  microsvc::Cluster& cluster_;
  RngStream rng_;
  std::vector<FaultEvent> log_;
};

}  // namespace grunt::fault
