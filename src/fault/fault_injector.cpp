#include "fault/fault_injector.h"

#include <algorithm>

#include "util/logging.h"

namespace grunt::fault {

const char* ToString(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kSlowStart: return "slow-start";
    case FaultKind::kSlowEnd: return "slow-end";
    case FaultKind::kNetSpikeStart: return "net-spike-start";
    case FaultKind::kNetSpikeEnd: return "net-spike-end";
  }
  return "?";
}

FaultInjector::FaultInjector(sim::Simulation& sim, microsvc::Cluster& cluster,
                             std::uint64_t seed)
    : sim_(sim), cluster_(cluster), rng_(seed, "fault.injector") {}

void FaultInjector::FireCrash(microsvc::ServiceId svc, SimDuration downtime) {
  const bool applied = cluster_.service(svc).Crash();
  log_.push_back({sim_.Now(), FaultKind::kCrash, svc,
                  static_cast<double>(cluster_.service(svc).replicas()),
                  applied});
  if (!applied) {
    LogWarn() << "fault: crash of service " << svc
              << " skipped (0 replicas left)";
    return;
  }
  if (downtime > 0) {
    sim_.After(downtime, sim::EventClass::kTimer, [this, svc] {
      cluster_.service(svc).Restart();
      log_.push_back({sim_.Now(), FaultKind::kRestart, svc,
                      static_cast<double>(cluster_.service(svc).replicas()),
                      true});
    });
  }
}

void FaultInjector::ScheduleCrash(microsvc::ServiceId svc, SimTime at,
                                  SimDuration downtime) {
  sim_.At(at, sim::EventClass::kTimer,
          [this, svc, downtime] { FireCrash(svc, downtime); });
}

void FaultInjector::ScheduleSlow(microsvc::ServiceId svc, SimTime at,
                                 double factor, SimDuration duration) {
  sim_.At(at, sim::EventClass::kTimer, [this, svc, factor, duration] {
    cluster_.service(svc).MultiplyDemandFactor(factor);
    log_.push_back({sim_.Now(), FaultKind::kSlowStart, svc, factor, true});
    if (duration > 0) {
      sim_.After(duration, sim::EventClass::kTimer, [this, svc, factor] {
        cluster_.service(svc).MultiplyDemandFactor(1.0 / factor);
        log_.push_back({sim_.Now(), FaultKind::kSlowEnd, svc,
                        cluster_.service(svc).demand_factor(), true});
      });
    }
  });
}

void FaultInjector::ScheduleNetSpike(SimTime at, SimDuration extra,
                                     SimDuration duration) {
  sim_.At(at, sim::EventClass::kTimer, [this, extra, duration] {
    cluster_.AddExtraNetLatency(extra);
    log_.push_back({sim_.Now(), FaultKind::kNetSpikeStart,
                    microsvc::kInvalidService, static_cast<double>(extra),
                    true});
    if (duration > 0) {
      sim_.After(duration, sim::EventClass::kTimer, [this, extra] {
        cluster_.AddExtraNetLatency(-extra);
        log_.push_back({sim_.Now(), FaultKind::kNetSpikeEnd,
                        microsvc::kInvalidService,
                        static_cast<double>(cluster_.extra_net_latency()),
                        true});
      });
    }
  });
}

void FaultInjector::ScheduleRandomCrashes(SimTime start, SimTime end,
                                          SimDuration mean_interval,
                                          SimDuration downtime) {
  // Draw the whole sequence up front so the stream's consumption does not
  // depend on simulation state at fire time.
  SimTime t = start;
  while (true) {
    t += std::max<SimDuration>(1, rng_.NextExpDuration(mean_interval));
    if (t >= end) break;
    const auto svc = static_cast<microsvc::ServiceId>(rng_.NextInt(
        0, static_cast<std::int64_t>(cluster_.service_count()) - 1));
    sim_.At(t, sim::EventClass::kTimer,
            [this, svc, downtime] { FireCrash(svc, downtime); });
  }
}

}  // namespace grunt::fault
