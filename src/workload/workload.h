#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "microsvc/cluster.h"
#include "util/rng.h"

namespace grunt::workload {

/// A probability mix over request types. Weights need not be normalized.
struct RequestMix {
  std::vector<microsvc::RequestTypeId> types;
  std::vector<double> weights;

  /// Uniform mix over the given types.
  static RequestMix Uniform(std::vector<microsvc::RequestTypeId> types);
  microsvc::RequestTypeId Draw(RngStream& rng) const;
  void Validate() const;  ///< throws on size mismatch / no positive weight
};

/// Optional Markov page-navigation model: row t = transition distribution
/// from type t to the next type. The paper's legitimate users "progress
/// through a Markov chain to navigate web pages" (Sec V-B).
struct MarkovNavigator {
  std::vector<microsvc::RequestTypeId> types;
  /// transition[i][j]: weight of moving from types[i] to types[j].
  std::vector<std::vector<double>> transition;

  /// Uniform-transition chain over the given types.
  static MarkovNavigator Uniform(std::vector<microsvc::RequestTypeId> types);
  std::size_t DrawNext(std::size_t current_index, RngStream& rng) const;
  void Validate() const;
};

/// Closed-loop user population: each user thinks (exponential, mean
/// `think_mean`), issues the next request of its Markov chain, waits for the
/// response, and thinks again. Population size is adjustable at runtime.
class ClosedLoopWorkload {
 public:
  struct Config {
    std::int32_t users = 100;
    SimDuration think_mean = Sec(7);  ///< paper: average 7 s thinking time
    MarkovNavigator navigator;
    std::uint64_t client_id_base = 1'000'000;
    std::string name = "closed";
  };

  ClosedLoopWorkload(microsvc::Cluster& cluster, Config cfg,
                     std::uint64_t seed);

  /// Begins the user loops (each user starts with one think time so arrivals
  /// are de-synchronized).
  void Start();

  /// Grows or shrinks the active population. Shrinking parks users after
  /// their in-flight request completes.
  void SetUserCount(std::int32_t users);
  std::int32_t user_count() const { return active_users_; }

  std::uint64_t requests_issued() const { return issued_; }

 private:
  struct User {
    std::size_t state_index = 0;
    bool live = false;
  };

  void UserThink(std::size_t user_index);
  void UserIssue(std::size_t user_index);

  microsvc::Cluster& cluster_;
  Config cfg_;
  RngStream rng_;
  std::vector<User> users_;
  std::int32_t active_users_ = 0;
  std::uint64_t issued_ = 0;
};

/// Open-loop Poisson source with a runtime-adjustable rate; used for
/// trace-driven workloads (Fig 15's "Large Variation" trace).
class OpenLoopSource {
 public:
  struct Config {
    double rate = 100.0;  ///< requests/second
    RequestMix mix;
    std::uint64_t client_id_base = 2'000'000;
    /// Number of distinct client ids to rotate through (sessions).
    std::uint64_t client_id_count = 10'000;
    std::string name = "open";
  };

  OpenLoopSource(microsvc::Cluster& cluster, Config cfg, std::uint64_t seed);

  void Start();
  void Stop();
  void SetRate(double rate);  ///< 0 pauses the source
  double rate() const { return rate_; }
  std::uint64_t requests_issued() const { return issued_; }

 private:
  void Arm();

  microsvc::Cluster& cluster_;
  Config cfg_;
  RngStream rng_;
  double rate_;
  bool running_ = false;
  std::uint64_t issued_ = 0;
  std::uint64_t arm_epoch_ = 0;  ///< invalidates stale timer closures
};

/// Piecewise-constant rate trace: breakpoints applied in time order.
struct RateTrace {
  struct Point {
    SimTime at;
    double rate;
  };
  std::vector<Point> points;

  /// Schedules SetRate calls on `source` for every breakpoint.
  void Apply(sim::Simulation& sim, OpenLoopSource& source) const;

  double RateAt(SimTime t) const;  ///< rate in effect at time t (0 before first)
  double MaxRate() const;
  double MinRate() const;
};

/// Generates a bursty trace in the spirit of the "Large Variation" trace of
/// Gandhi et al. [24] used in Fig 15: a slow sinusoidal swing between
/// min_rate and max_rate plus random per-step jitter and occasional spikes.
RateTrace MakeLargeVariationTrace(SimTime start, SimDuration duration,
                                  SimDuration step, double min_rate,
                                  double max_rate, std::uint64_t seed);

}  // namespace grunt::workload
