#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace grunt::workload {

RequestMix RequestMix::Uniform(std::vector<microsvc::RequestTypeId> types) {
  RequestMix mix;
  mix.weights.assign(types.size(), 1.0);
  mix.types = std::move(types);
  return mix;
}

void RequestMix::Validate() const {
  if (types.empty() || types.size() != weights.size()) {
    throw std::invalid_argument("RequestMix: size mismatch or empty");
  }
  double total = 0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0) throw std::invalid_argument("RequestMix: no positive weight");
}

microsvc::RequestTypeId RequestMix::Draw(RngStream& rng) const {
  return types[rng.NextWeighted(weights)];
}

MarkovNavigator MarkovNavigator::Uniform(
    std::vector<microsvc::RequestTypeId> types) {
  MarkovNavigator nav;
  nav.transition.assign(types.size(),
                        std::vector<double>(types.size(), 1.0));
  nav.types = std::move(types);
  return nav;
}

void MarkovNavigator::Validate() const {
  if (types.empty() || transition.size() != types.size()) {
    throw std::invalid_argument("MarkovNavigator: bad transition shape");
  }
  for (const auto& row : transition) {
    if (row.size() != types.size()) {
      throw std::invalid_argument("MarkovNavigator: ragged transition row");
    }
    double total = 0;
    for (double w : row) total += std::max(0.0, w);
    if (total <= 0) {
      throw std::invalid_argument("MarkovNavigator: absorbing zero row");
    }
  }
}

std::size_t MarkovNavigator::DrawNext(std::size_t current_index,
                                      RngStream& rng) const {
  return rng.NextWeighted(transition.at(current_index));
}

ClosedLoopWorkload::ClosedLoopWorkload(microsvc::Cluster& cluster, Config cfg,
                                       std::uint64_t seed)
    : cluster_(cluster), cfg_(std::move(cfg)),
      rng_(seed, "workload.closed." + cfg_.name) {
  cfg_.navigator.Validate();
  if (cfg_.users < 0) throw std::invalid_argument("negative user count");
}

void ClosedLoopWorkload::Start() {
  SetUserCount(cfg_.users);
}

void ClosedLoopWorkload::SetUserCount(std::int32_t users) {
  if (users < 0) throw std::invalid_argument("negative user count");
  active_users_ = users;
  const auto want = static_cast<std::size_t>(users);
  if (users_.size() < want) users_.resize(want);
  for (std::size_t i = 0; i < want; ++i) {
    if (!users_[i].live) {
      users_[i].live = true;
      users_[i].state_index = static_cast<std::size_t>(rng_.NextInt(
          0, static_cast<std::int64_t>(cfg_.navigator.types.size()) - 1));
      UserThink(i);
    }
  }
  // Users beyond `users` park themselves at their next loop iteration.
}

void ClosedLoopWorkload::UserThink(std::size_t user_index) {
  if (user_index >= static_cast<std::size_t>(active_users_)) {
    users_[user_index].live = false;
    return;
  }
  const SimDuration think = rng_.NextExpDuration(cfg_.think_mean);
  cluster_.simulation().After(think,
                              [this, user_index] { UserIssue(user_index); });
}

void ClosedLoopWorkload::UserIssue(std::size_t user_index) {
  if (user_index >= static_cast<std::size_t>(active_users_)) {
    users_[user_index].live = false;
    return;
  }
  User& u = users_[user_index];
  u.state_index = cfg_.navigator.DrawNext(u.state_index, rng_);
  const microsvc::RequestTypeId type = cfg_.navigator.types[u.state_index];
  ++issued_;
  cluster_.Submit(type, microsvc::RequestClass::kLegit, /*heavy=*/false,
                  cfg_.client_id_base + user_index,
                  [this, user_index](const microsvc::CompletionRecord&) {
                    UserThink(user_index);
                  });
}

OpenLoopSource::OpenLoopSource(microsvc::Cluster& cluster, Config cfg,
                               std::uint64_t seed)
    : cluster_(cluster), cfg_(std::move(cfg)),
      rng_(seed, "workload.open." + cfg_.name), rate_(cfg_.rate) {
  cfg_.mix.Validate();
  if (cfg_.client_id_count == 0) {
    throw std::invalid_argument("client_id_count == 0");
  }
}

void OpenLoopSource::Start() {
  if (running_) return;
  running_ = true;
  Arm();
}

void OpenLoopSource::Stop() {
  running_ = false;
  ++arm_epoch_;
}

void OpenLoopSource::SetRate(double rate) {
  if (rate < 0) throw std::invalid_argument("negative rate");
  const bool was_paused = (rate_ <= 0);
  rate_ = rate;
  if (running_ && was_paused && rate_ > 0) {
    ++arm_epoch_;  // drop any stale pause-poll timer
    Arm();
  }
}

void OpenLoopSource::Arm() {
  const std::uint64_t epoch = arm_epoch_;
  if (rate_ <= 0) return;  // paused; SetRate() re-arms
  const SimDuration gap = std::max<SimDuration>(
      1, rng_.NextExpDuration(static_cast<SimDuration>(
             1e6 / rate_)));
  cluster_.simulation().After(gap, [this, epoch] {
    if (!running_ || epoch != arm_epoch_ || rate_ <= 0) return;
    const microsvc::RequestTypeId type = cfg_.mix.Draw(rng_);
    const std::uint64_t client =
        cfg_.client_id_base +
        static_cast<std::uint64_t>(rng_.NextInt(
            0, static_cast<std::int64_t>(cfg_.client_id_count) - 1));
    ++issued_;
    cluster_.Submit(type, microsvc::RequestClass::kLegit, /*heavy=*/false,
                    client);
    Arm();
  });
}

void RateTrace::Apply(sim::Simulation& sim, OpenLoopSource& source) const {
  for (const Point& p : points) {
    // Phase changes sit minutes out; the wheel keeps them off the heap
    // until their level expires.
    sim.At(p.at, sim::EventClass::kTimer,
           [&source, rate = p.rate] { source.SetRate(rate); });
  }
}

double RateTrace::RateAt(SimTime t) const {
  double rate = 0;
  for (const Point& p : points) {
    if (p.at > t) break;
    rate = p.rate;
  }
  return rate;
}

double RateTrace::MaxRate() const {
  double m = 0;
  for (const Point& p : points) m = std::max(m, p.rate);
  return m;
}

double RateTrace::MinRate() const {
  if (points.empty()) return 0;
  double m = points.front().rate;
  for (const Point& p : points) m = std::min(m, p.rate);
  return m;
}

RateTrace MakeLargeVariationTrace(SimTime start, SimDuration duration,
                                  SimDuration step, double min_rate,
                                  double max_rate, std::uint64_t seed) {
  if (step <= 0 || duration <= 0 || max_rate < min_rate) {
    throw std::invalid_argument("MakeLargeVariationTrace: bad parameters");
  }
  RngStream rng(seed, "workload.large_variation");
  RateTrace trace;
  const double mid = (min_rate + max_rate) / 2.0;
  const double amp = (max_rate - min_rate) / 2.0;
  const double period_s = ToSeconds(duration) / 2.5;  // ~2.5 swings
  for (SimTime t = start; t < start + duration; t += step) {
    const double phase =
        2.0 * 3.14159265358979323846 * ToSeconds(t - start) / period_s;
    double rate = mid + amp * std::sin(phase);
    // Per-step jitter (+-15%) and occasional upward spikes (8% of steps).
    rate *= 1.0 + 0.15 * (2.0 * rng.NextDouble() - 1.0);
    if (rng.NextBool(0.08)) rate *= 1.3;
    trace.points.push_back({t, std::clamp(rate, min_rate, max_rate)});
  }
  return trace;
}

}  // namespace grunt::workload
