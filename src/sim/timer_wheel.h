#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/time_types.h"

namespace grunt::sim {

/// Hierarchical timing wheel (Varghese & Lauer) backing store for far-out,
/// cancel-likely timers: insertion and cancellation are O(1) bucket pushes
/// and generation bumps instead of O(log n) heap sifts, which is the right
/// trade for RPC-timeout churn where ~99% of entries never fire.
///
/// Four levels of 64 buckets each with a 64 us level-0 tick cover delays up
/// to ~17.9 minutes (64^4 * 64 us); anything further sits clamped in the top
/// level's last bucket and re-cascades a full top-level lap at a time until
/// it fits. Each level's window is the 64 buckets starting at the bucket
/// containing `base_`, the wheel's own monotone clock. `base_` advances only
/// to flushed-bucket boundaries (never past a pending entry), so a bucket's
/// absolute index — and with it a lower bound on every entry time inside —
/// can always be reconstructed from its 6-bit position plus the window
/// start. Entries carry their original (time, seq) key, so when a bucket is
/// cascaded into the caller's heap the global firing order is exactly what a
/// heap-only run would produce: the wheel is a placement optimization, not a
/// reordering.
///
/// The wheel never looks at slot metadata itself; the owner passes an
/// `alive` predicate at cascade time, so cancelled entries (dead
/// generations) are dropped lazily when their bucket is flushed.
class TimerWheel {
 public:
  /// Mirrors the owner's heap entry: the original (time, seq) priority key
  /// plus the (slot, gen) ticket used to drop dead entries at cascade.
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr int kTickBits = 6;    ///< level-0 bucket spans 64 us
  static constexpr int kBucketBits = 6;  ///< 64 buckets per level
  static constexpr int kLevels = 4;
  static constexpr int kBuckets = 1 << kBucketBits;

  static constexpr int Shift(int level) {
    return kTickBits + kBucketBits * level;
  }
  /// Span of one bucket at `level`, in simulated microseconds.
  static constexpr SimDuration BucketWidth(int level) {
    return SimDuration{1} << Shift(level);
  }
  /// Total span a level's 64 buckets can address.
  static constexpr SimDuration Horizon(int level) {
    return BucketWidth(level) << kBucketBits;
  }
  /// Delays below one level-0 bucket (BucketWidth(0)) gain nothing from the
  /// wheel — they would cascade almost immediately — so the owner keeps
  /// those on the heap path.
  static constexpr SimDuration kMinDelay = SimDuration{1} << kTickBits;

  bool empty() const { return entries_ == 0; }
  /// Raw entry count, including not-yet-flushed cancelled tombstones.
  std::size_t entries() const { return entries_; }

  /// Files `e` into the smallest level whose window can hold it. `ref` is
  /// the caller's current time; the wheel clock only moves forward
  /// (max(base_, ref)), which keeps every occupied bucket inside its
  /// level's reconstruction window. Requires e.time >= ref.
  void Insert(const Entry& e, SimTime ref) {
    if (ref > base_) base_ = ref;
    int level = 0;
    std::uint64_t idx = 0;
    for (;; ++level) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(base_) >> Shift(level);
      idx = static_cast<std::uint64_t>(e.time) >> Shift(level);
      if (idx < cur) idx = cur;  // defensive: never file behind the window
      if (idx - cur < kBuckets) break;
      if (level == kLevels - 1) {
        // Beyond the top horizon: clamp into the window's last bucket. Each
        // cascade of that bucket advances base_ by ~a full top-level lap, so
        // far-future entries make guaranteed progress toward fitting.
        idx = cur + kBuckets - 1;
        break;
      }
    }
    const auto b = static_cast<std::uint32_t>(idx & (kBuckets - 1));
    buckets_[level][b].push_back(e);
    occupied_[level] |= std::uint64_t{1} << b;
    ++entries_;
    const auto start = static_cast<SimTime>(idx) << Shift(level);
    if (start < next_bound_) next_bound_ = start;
  }

  /// Lower bound on every entry time in the wheel: at most the earliest
  /// occupied bucket's start. Safe direction only — an entry never fires
  /// before its bucket's bound, so cascading whenever bound <= the heap's
  /// top key keeps the merged order exact. Cached so the owner's per-event
  /// "does the wheel need attention?" check is one compare; the cache is
  /// refreshed exactly (by scanning the bitmaps) after every cascade, and
  /// inserts only lower it, so it never exceeds the true bound.
  SimTime EarliestBound() const { return next_bound_; }

  /// Flushes the earliest occupied bucket. Dead entries (per `alive`) are
  /// dropped; live level-0 entries go to `emit` (the owner's heap); live
  /// higher-level entries re-file into a strictly lower level because base_
  /// has advanced to the flushed bucket's start. Precondition: !empty().
  template <class AliveFn, class EmitFn>
  void CascadeEarliest(AliveFn&& alive, EmitFn&& emit) {
    int lvl = 0;
    std::uint64_t idx = 0;
    SimTime best = std::numeric_limits<SimTime>::max();
    for (int l = 0; l < kLevels; ++l) {
      if (occupied_[l] == 0) continue;
      const auto [i, bound] = FirstBucket(l);
      if (bound < best) {
        best = bound;
        lvl = l;
        idx = i;
      }
    }
    const auto b = static_cast<std::uint32_t>(idx & (kBuckets - 1));
    scratch_.clear();
    scratch_.swap(buckets_[lvl][b]);  // keeps both vectors' capacity warm
    occupied_[lvl] &= ~(std::uint64_t{1} << b);
    entries_ -= scratch_.size();
    if (best > base_) base_ = best;
    for (const Entry& e : scratch_) {
      if (!alive(e)) continue;
      if (lvl == 0) {
        emit(e);
      } else {
        Insert(e, base_);
      }
    }
    scratch_.clear();
    next_bound_ = std::numeric_limits<SimTime>::max();
    for (int l = 0; l < kLevels; ++l) {
      if (occupied_[l] == 0) continue;
      next_bound_ = std::min(next_bound_, FirstBucket(l).second);
    }
  }

 private:
  /// Reconstructs the first occupied bucket of `level` as (absolute index,
  /// start time). Rotating the bitmap so the window start sits at bit 0
  /// turns "first occupied at or after cur" into a countr_zero.
  /// Precondition: occupied_[level] != 0.
  std::pair<std::uint64_t, SimTime> FirstBucket(int level) const {
    const std::uint64_t cur =
        static_cast<std::uint64_t>(base_) >> Shift(level);
    const auto rot = static_cast<unsigned>(cur & (kBuckets - 1));
    const int r = std::countr_zero(std::rotr(occupied_[level], rot));
    const std::uint64_t idx = cur + static_cast<std::uint64_t>(r);
    return {idx, static_cast<SimTime>(idx) << Shift(level)};
  }

  SimTime base_ = 0;  ///< wheel clock; advances only to flushed-bucket starts
  /// Cached EarliestBound(); max() when the wheel is empty.
  SimTime next_bound_ = std::numeric_limits<SimTime>::max();
  std::size_t entries_ = 0;
  std::uint64_t occupied_[kLevels] = {};
  std::vector<Entry> buckets_[kLevels][kBuckets];
  std::vector<Entry> scratch_;  ///< bucket being flushed (capacity reused)
};

}  // namespace grunt::sim
