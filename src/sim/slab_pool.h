#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace grunt::sim {

/// Generation-checked 32-bit handle into a SlabPool<T> — the same
/// (slot, generation) ticket idiom as sim::EventHandle. A default-constructed
/// handle is null; a handle whose slot has been released (and possibly
/// recycled) no longer matches the slot's generation and dereferences to
/// nullptr instead of aliasing an unrelated newer record.
struct PoolHandle {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;  ///< 0 = null handle (live generations start at 1)

  explicit operator bool() const { return gen != 0; }
  friend bool operator==(const PoolHandle&, const PoolHandle&) = default;
};

/// Occupancy counters of one SlabPool (type-erased so callers can aggregate
/// stats across pools of different record types).
struct SlabPoolStats {
  std::size_t live = 0;        ///< currently acquired records
  std::size_t high_water = 0;  ///< peak live records
  std::size_t capacity = 0;    ///< constructed slots across all chunks
  std::uint64_t acquires = 0;  ///< total Acquire() calls
};

/// Free-list slab pool of reusable records.
///
/// Records live in fixed-size chunks (stable addresses: a pointer obtained
/// from Get() stays valid across later Acquire() calls) and are constructed
/// once per chunk, then *recycled* rather than destroyed: Release() returns
/// the slot to the free list without running ~T, so members like
/// std::vector keep their capacity and a steady-state Acquire/Release cycle
/// never touches the allocator. Callers re-initialize the fields they use.
template <class T>
class SlabPool {
 public:
  using Stats = SlabPoolStats;

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Takes a free slot (growing by one chunk when the free list is empty)
  /// and returns its handle. The record is in recycled state: whatever the
  /// previous user left behind, minus nothing — re-init before use.
  PoolHandle Acquire() {
    if (free_head_ == kNil) Grow();
    const std::uint32_t id = free_head_;
    free_head_ = meta_[id].next_free;
    assert(meta_[id].gen != 0);
    ++stats_.live;
    ++stats_.acquires;
    if (stats_.live > stats_.high_water) stats_.high_water = stats_.live;
    return PoolHandle{id, meta_[id].gen};
  }

  /// Returns the slot to the free list and invalidates every outstanding
  /// handle to it (generation bump). The record itself is NOT destroyed.
  void Release(PoolHandle h) {
    assert(Alive(h) && "releasing a stale or null pool handle");
    Meta& m = meta_[h.slot];
    if (++m.gen == 0) m.gen = 1;  // skip 0: it means "null handle"
    m.next_free = free_head_;
    free_head_ = h.slot;
    --stats_.live;
  }

  /// The record behind `h`, or nullptr if `h` is null or stale.
  T* Get(PoolHandle h) {
    return Alive(h) ? &slot(h.slot) : nullptr;
  }
  const T* Get(PoolHandle h) const {
    return Alive(h) ? &slot(h.slot) : nullptr;
  }

  /// Unchecked access: `h` must be alive.
  T& operator[](PoolHandle h) {
    assert(Alive(h));
    return slot(h.slot);
  }

  bool Alive(PoolHandle h) const {
    return h.gen != 0 && h.slot < meta_.size() && meta_[h.slot].gen == h.gen;
  }

  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kNil =
      std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint32_t kSlotsPerChunk = 256;

  struct Meta {
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNil;
  };

  T& slot(std::uint32_t id) {
    return chunks_[id / kSlotsPerChunk][id % kSlotsPerChunk];
  }
  const T& slot(std::uint32_t id) const {
    return chunks_[id / kSlotsPerChunk][id % kSlotsPerChunk];
  }

  void Grow() {
    const auto base = static_cast<std::uint32_t>(meta_.size());
    chunks_.push_back(std::make_unique<T[]>(kSlotsPerChunk));
    meta_.resize(meta_.size() + kSlotsPerChunk);
    // Thread the new chunk onto the free list front-to-back so fresh pools
    // hand out slots in index order (helps locality and debuggability).
    for (std::uint32_t i = kSlotsPerChunk; i-- > 0;) {
      meta_[base + i].next_free = free_head_;
      free_head_ = base + i;
    }
    stats_.capacity = meta_.size();
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<Meta> meta_;
  std::uint32_t free_head_ = kNil;
  Stats stats_;
};

}  // namespace grunt::sim
