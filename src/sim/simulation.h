#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time_types.h"

namespace grunt::sim {

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void Cancel();

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  bool pending() const;

 private:
  friend class Simulation;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Single-threaded discrete-event simulation core.
///
/// Events scheduled for the same time fire in scheduling order (a
/// monotonically increasing sequence number breaks ties), which makes runs
/// fully deterministic.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= Now()).
  EventHandle At(SimTime at, std::function<void()> fn);

  /// Schedules `fn` after `delay` (clamped to >= 0) from Now().
  EventHandle After(SimDuration delay, std::function<void()> fn);

  /// Schedules `fn` to run every `period`, first firing at Now() + `period`.
  /// Cancelling the returned handle stops the series.
  EventHandle Every(SimDuration period, std::function<void()> fn);

  /// Runs until the event queue drains or `until` is reached, whichever is
  /// first. The clock is advanced to `until` on return if the queue drained
  /// earlier. Returns the number of events fired.
  std::uint64_t RunUntil(SimTime until);

  /// Runs until the event queue is empty. Returns the number of events fired.
  std::uint64_t RunAll();

  /// Requests that the current Run* call return after the in-flight event.
  void Stop() { stop_requested_ = true; }

  std::uint64_t events_fired() const { return events_fired_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool FireNext();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace grunt::sim
