#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/inplace_function.h"
#include "sim/ring_buffer.h"
#include "sim/timer_wheel.h"
#include "util/time_types.h"

namespace grunt::sim {

class Simulation;

/// Scheduling-class hint for At/After/Every. Purely a placement hint: both
/// classes fire in exactly the same (time, seq) order, the engine just gets
/// to pick a cheaper backing store for timers that will almost never fire.
enum class EventClass : std::uint8_t {
  /// Near-term, likely-to-fire work (the default): straight to the heap.
  kSequence = 0,
  /// Far-out, cancel-likely timers (RPC timeouts, retry backoffs, deadline
  /// guards, periodic operators): eligible for the timing-wheel fast path,
  /// where cancellation is a generation bump that never touches the heap.
  kTimer = 1,
};

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same event. A handle is a (slot, generation) ticket into the
/// simulation's event arena: once the event fires (or its slot is recycled)
/// the generation no longer matches and the handle becomes inert, so stale
/// handles can never cancel an unrelated later event.
///
/// Handles must not outlive the Simulation they came from.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. For repeating events
  /// (Simulation::Every) this stops the whole series. Idempotent.
  void Cancel();

  /// True if the event is still pending (scheduled, not fired, not
  /// cancelled). A repeating event stays pending until cancelled.
  bool pending() const;

 private:
  friend class Simulation;
  EventHandle(Simulation* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulation* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Single-threaded discrete-event simulation core.
///
/// Events scheduled for the same time fire in scheduling order (a
/// monotonically increasing sequence number breaks ties), which makes runs
/// fully deterministic.
///
/// The hot path is allocation-free: event closures live in slab-allocated
/// chunks (small-buffer-optimized, see InplaceFunction), the priority queue
/// is a 4-ary heap of 24-byte POD entries over a dense 16-byte-per-slot
/// metadata array, and cancellation uses generation counters instead of
/// shared control blocks. Periodic events (Every) keep their callback in one
/// slot for the lifetime of the series and re-arm in place.
class Simulation {
 public:
  /// Allocation/cancellation counters for the engine micro-benchmarks.
  struct EngineStats {
    std::uint64_t events_scheduled = 0;
    std::uint64_t inline_callbacks = 0;  ///< closures stored in the slot SBO
    std::uint64_t heap_callbacks = 0;    ///< closures that spilled to heap
    std::uint64_t cancelled_popped = 0;  ///< cancelled entries dropped at pop
    std::uint64_t cancelled_purged = 0;  ///< removed by lazy compaction
    std::uint64_t compactions = 0;
    std::size_t slab_chunks = 0;
    std::uint64_t wheel_scheduled = 0;  ///< kTimer events filed in the wheel
    std::uint64_t wheel_cancelled = 0;  ///< cancelled in-bucket (no heap work)
    std::uint64_t wheel_cascades = 0;   ///< bucket flushes
    std::uint64_t wheel_to_heap = 0;    ///< entries that cascaded into the heap
    std::size_t wheel_occupancy = 0;    ///< live entries in the wheel now
    std::uint64_t immediate_scheduled = 0;  ///< zero-delay events in the lane
    std::uint64_t immediate_cancelled = 0;  ///< cancelled in-lane (no sift)
    std::size_t immediate_occupancy = 0;    ///< live entries in the lane now
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= Now()).
  EventHandle At(SimTime at, InplaceFunction fn);

  /// Schedules `fn` after `delay` (clamped to >= 0) from Now().
  EventHandle After(SimDuration delay, InplaceFunction fn);

  /// Schedules `fn` to run every `period`, first firing at Now() + `period`.
  /// The callback is stored once for the whole series (never copied per
  /// tick) and the event re-arms in place without allocating. Cancelling the
  /// returned handle stops the series.
  EventHandle Every(SimDuration period, InplaceFunction fn);

  /// Classed variants. EventClass::kTimer routes far-enough-out events to
  /// the timing wheel (O(1) insert/cancel); firing order is identical to the
  /// unclassed overloads, so the hint is always safe to add.
  EventHandle At(SimTime at, EventClass cls, InplaceFunction fn);
  EventHandle After(SimDuration delay, EventClass cls, InplaceFunction fn);
  EventHandle Every(SimDuration period, EventClass cls, InplaceFunction fn);

  /// Zero-copy overloads: a raw callable is constructed directly into its
  /// event slot (one placement-new; no InplaceFunction temporary, no
  /// relocation). This is the path every `sim.After(d, [..]{...})` call
  /// takes.
  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
  EventHandle At(SimTime at, F&& fn) {
    if (at < now_) {
      ThrowPastTime();
    }
    const std::uint32_t id = AllocSlot();
    const bool inl = fn_slot(id).Emplace(std::forward<F>(fn));
    return FinishSchedule(at, id, /*period=*/0, inl);
  }

  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
  EventHandle After(SimDuration delay, F&& fn) {
    return At(now_ + std::max<SimDuration>(0, delay), std::forward<F>(fn));
  }

  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
  EventHandle Every(SimDuration period, F&& fn) {
    if (period <= 0) ThrowBadPeriod();
    const std::uint32_t id = AllocSlot();
    const bool inl = fn_slot(id).Emplace(std::forward<F>(fn));
    return FinishSchedule(now_ + period, id, period, inl);
  }

  /// Classed zero-copy overloads (see the InplaceFunction variants above).
  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
  EventHandle At(SimTime at, EventClass cls, F&& fn) {
    if (at < now_) {
      ThrowPastTime();
    }
    const std::uint32_t id = AllocSlot();
    const bool inl = fn_slot(id).Emplace(std::forward<F>(fn));
    if (cls == EventClass::kTimer) metas_[id].aux |= kAuxTimerClass;
    return FinishSchedule(at, id, /*period=*/0, inl);
  }

  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
  EventHandle After(SimDuration delay, EventClass cls, F&& fn) {
    return At(now_ + std::max<SimDuration>(0, delay), cls,
              std::forward<F>(fn));
  }

  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
  EventHandle Every(SimDuration period, EventClass cls, F&& fn) {
    if (period <= 0) ThrowBadPeriod();
    const std::uint32_t id = AllocSlot();
    const bool inl = fn_slot(id).Emplace(std::forward<F>(fn));
    if (cls == EventClass::kTimer) metas_[id].aux |= kAuxTimerClass;
    return FinishSchedule(now_ + period, id, period, inl);
  }

  /// Runs until the event queue drains or `until` is reached, whichever is
  /// first. The clock is advanced to `until` on return if the queue drained
  /// earlier. Returns the number of events fired.
  std::uint64_t RunUntil(SimTime until);

  /// Runs until the event queue is empty. Returns the number of events fired.
  std::uint64_t RunAll();

  /// Requests that the current Run* call return after the in-flight event.
  void Stop() { stop_requested_ = true; }

  /// Enables/disables the timing-wheel fast path for EventClass::kTimer
  /// events (default on). Affects future schedules only; already-filed wheel
  /// entries drain normally. Off, every event takes the heap path — the
  /// baseline the wheel benchmarks and differential tests compare against.
  void SetTimerWheelEnabled(bool enabled) { wheel_enabled_ = enabled; }
  bool timer_wheel_enabled() const { return wheel_enabled_; }

  /// Enables/disables the immediate-lane fast path for zero-delay events
  /// (default on). Affects future schedules only; entries already in the lane
  /// drain normally. Off, same-time events take the heap path — the baseline
  /// the lane benchmarks and differential tests compare against.
  void SetImmediateLaneEnabled(bool enabled) { lane_enabled_ = enabled; }
  bool immediate_lane_enabled() const { return lane_enabled_; }

  /// Routing threshold between heap and wheel: any event at least one
  /// level-0 wheel horizon out is filed in the wheel regardless of class —
  /// it cannot fire soon, so keeping it out of the heap shrinks the sift
  /// height every near-term event pays (see EnqueueEntry).
  static constexpr SimDuration kFarDelay = TimerWheel::Horizon(0);

  std::uint64_t events_fired() const { return events_fired_; }
  /// Number of live (not cancelled) scheduled events, wherever they sit:
  /// heap, wheel, or the repeating slot whose callback is running right now
  /// (out of the heap mid-callback, but still pending per its handle).
  std::size_t pending_events() const {
    std::size_t n = heap_.size() - cancelled_in_heap_ + wheel_live_ + lane_live_;
    if (firing_slot_ != kNilSlot &&
        (metas_[firing_slot_].aux & kAuxCancelled) == 0) {
      ++n;
    }
    return n;
  }
  EngineStats stats() const;

 private:
  friend class EventHandle;

  /// Dense per-slot bookkeeping, separate from the (much larger) closure
  /// storage so the queue's gen checks and the free list stay cache-hot.
  /// `aux` is dual-use: flag bits while the slot is live, the next free
  /// slot index while it sits on the free list.
  struct SlotMeta {
    std::uint32_t gen = 1;
    std::uint32_t aux = 0;
    SimDuration period = 0;  ///< > 0: repeating event (Every)
  };
  static constexpr std::uint32_t kAuxCancelled = 1;
  static constexpr std::uint32_t kAuxTimerClass = 2;  ///< EventClass::kTimer
  static constexpr std::uint32_t kAuxInWheel = 4;  ///< entry lives in wheel_
  static constexpr std::uint32_t kAuxInLane = 8;   ///< entry lives in lane_

  /// Priority-queue entry: POD, cheap to sift. `gen` guards against slot
  /// recycling (an entry whose generation no longer matches is dead).
  struct QEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  // Composing the (time, seq) key into a single 128-bit compare keeps the
  // sift loops branch-predictable (one cmp/sbb pair instead of a nested
  // data-dependent branch on time equality).
  static unsigned __int128 Key(const QEntry& e) {
    return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(e.time))
            << 64) |
           e.seq;
  }
  static bool EarlierKey(const QEntry& a, const QEntry& b) {
    return Key(a) < Key(b);
  }

  static constexpr std::uint32_t kNilSlot =
      std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint32_t kSlotsPerChunk = 256;
  /// Compaction only kicks in for queues at least this large; below that the
  /// normal pop path drains cancelled entries quickly enough.
  static constexpr std::size_t kCompactMinHeap = 64;

  InplaceFunction& fn_slot(std::uint32_t id) {
    return fn_chunks_[id / kSlotsPerChunk][id % kSlotsPerChunk];
  }

  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t id);
  /// Common tail of At/Every once the closure sits in slot `id`: bumps the
  /// stats, records the period, queues the entry, returns the handle.
  /// `inline_cb` is the closure's is_inline() — compile-time-known at the
  /// zero-copy call sites, so the SBO-hit counter folds to a constant there.
  EventHandle FinishSchedule(SimTime time, std::uint32_t id,
                             SimDuration period, bool inline_cb);
  [[noreturn]] static void ThrowPastTime();
  [[noreturn]] static void ThrowBadPeriod();
  void PushEntry(SimTime time, std::uint32_t slot_id, std::uint32_t gen);
  /// Routes a ready-to-queue event to the immediate lane (one-shot, time ==
  /// Now(), lane enabled), the wheel (kTimer class, far enough out, wheel
  /// enabled), or the heap. Consumes one sequence number whichever store
  /// takes it, so firing order is independent of the backing store.
  void EnqueueEntry(SimTime time, std::uint32_t slot_id, std::uint32_t gen);
  /// Flushes wheel buckets into the heap while the wheel's earliest bound is
  /// <= min(limit, heap top). After it returns the heap top is the true
  /// global minimum among events at or before `limit`.
  void CascadeWheel(SimTime limit);
  // 4-ary min-heap over heap_ (shallower and more cache-friendly than a
  // binary heap; the sift loops are the engine's hottest code).
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  void PopTop();
  /// Drops cancelled/stale entries from the top of the heap.
  void PurgeTop();
  /// Drops cancelled (generation-mismatched) entries from the lane front.
  void PurgeLaneFront();
  /// Pops and fires the lane front (must be live): the O(1) dispatch path.
  void FireLaneFront();
  /// Removes all cancelled/stale entries when they outnumber live ones.
  void MaybeCompact();
  bool FireNext();

  void CancelSlot(std::uint32_t slot_id, std::uint32_t gen);
  bool SlotPending(std::uint32_t slot_id, std::uint32_t gen) const;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  bool stop_requested_ = false;

  std::vector<SlotMeta> metas_;
  std::vector<std::unique_ptr<InplaceFunction[]>> fn_chunks_;
  std::uint32_t free_head_ = kNilSlot;
  /// Repeating slot whose callback is on the stack right now (kNilSlot
  /// otherwise). A live slot is in the heap unless it is this one, which
  /// spares PushEntry/FireNext an in-heap flag update per event.
  std::uint32_t firing_slot_ = kNilSlot;

  std::vector<QEntry> heap_;  ///< 4-ary min-heap ordered by (time, seq)
  std::size_t cancelled_in_heap_ = 0;
  /// Lane counters live next to cancelled_in_heap_ so FireNext's per-event
  /// store checks share a cache line. After a front purge, lane_live_ != 0
  /// implies the lane front is live, so the hot paths branch on these and
  /// never touch the ring itself unless the lane has work.
  std::size_t lane_live_ = 0;  ///< live (not cancelled) entries in lane_
  std::size_t cancelled_in_lane_ = 0;  ///< tombstones awaiting front purge

  TimerWheel wheel_;  ///< far-out kTimer events until their level expires
  std::size_t wheel_live_ = 0;  ///< live (not cancelled) entries in wheel_
  bool wheel_enabled_ = true;

  /// Immediate lane: one-shot events scheduled for the current timestamp
  /// (After(0) and At(Now())). The clock cannot advance past a live lane
  /// entry — its (time == now_) key is the global minimum time — and both
  /// now_ and next_seq_ are monotone, so the ring is (time, seq)-sorted by
  /// construction: push/pop/cancel are O(1), no sift ever happens, and a
  /// single EarlierKey compare against the heap top merges the two stores.
  RingBuffer<QEntry> lane_;
  bool lane_enabled_ = true;

  EngineStats stats_;
};

}  // namespace grunt::sim
