#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace grunt::sim {

/// Move-only `void()` callable with small-buffer optimization.
///
/// Callables whose state fits `kInlineCapacity` bytes (and is nothrow
/// movable, so our own move stays noexcept) are stored in place; anything
/// larger falls back to a single heap allocation. This replaces
/// `std::function<void()>` in the event core: the common event closures
/// (a few pointers and a shared_ptr or two) schedule and fire without
/// touching the allocator.
class InplaceFunction {
 public:
  /// 48 bytes fits every closure on the simulator's request hot path
  /// (`this` + two shared_ptrs + a small POD, or a whole std::function).
  /// Pointer alignment keeps sizeof(InplaceFunction) at 56; over-aligned
  /// callables (rare) take the heap path via the alignment check below.
  static constexpr std::size_t kInlineCapacity = 48;
  static constexpr std::size_t kInlineAlign = alignof(void*);

  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                     std::is_invocable_r_v<void, D&>>>
  InplaceFunction(F&& f) {  // NOLINT(runtime/explicit)
    EmplaceImpl<F, D>(std::forward<F>(f));
  }

  /// True (at compile time) if a callable of type F takes the inline path.
  template <class F, class D = std::decay_t<F>>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineCapacity && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

  /// Constructs the callable directly in this (empty or engaged) wrapper,
  /// skipping the temporary + relocation of `*this = InplaceFunction(f)`.
  /// Returns is_inline() as a compile-time-known value so callers can count
  /// SBO hits without reloading the ops table.
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                     std::is_invocable_r_v<void, D&>>>
  bool Emplace(F&& f) {
    Reset();
    EmplaceImpl<F, D>(std::forward<F>(f));
    return kFitsInline<F>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept { MoveFrom(other); }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;
  ~InplaceFunction() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True if the wrapped callable lives in the inline buffer (no heap).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable at `dst` from `src` and destroys `src`.
    /// Null for trivially relocatable callables (plain memcpy suffices).
    void (*relocate)(void* dst, void* src);
    /// Null for trivially destructible inline callables.
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <class F, class D>
  void EmplaceImpl(F&& f) {
    if constexpr (kFitsInline<F>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  template <class D>
  static void InlineInvoke(void* p) {
    (*std::launder(reinterpret_cast<D*>(p)))();
  }
  template <class D>
  static void InlineRelocate(void* dst, void* src) {
    D* s = std::launder(reinterpret_cast<D*>(src));
    ::new (dst) D(std::move(*s));
    s->~D();
  }
  template <class D>
  static void InlineDestroy(void* p) {
    std::launder(reinterpret_cast<D*>(p))->~D();
  }

  template <class D>
  static D*& HeapPtr(void* p) {
    return *std::launder(reinterpret_cast<D**>(p));
  }
  template <class D>
  static void HeapInvoke(void* p) {
    (*HeapPtr<D>(p))();
  }
  template <class D>
  static void HeapRelocate(void* dst, void* src) {
    ::new (dst) D*(HeapPtr<D>(src));
  }
  template <class D>
  static void HeapDestroy(void* p) {
    delete HeapPtr<D>(p);
  }

  template <class D>
  static constexpr Ops kInlineOps{
      &InlineInvoke<D>,
      std::is_trivially_copyable_v<D> ? nullptr : &InlineRelocate<D>,
      std::is_trivially_destructible_v<D> ? nullptr : &InlineDestroy<D>, true};
  template <class D>
  static constexpr Ops kHeapOps{&HeapInvoke<D>, &HeapRelocate<D>,
                                &HeapDestroy<D>, false};

  void MoveFrom(InplaceFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(buf_, other.buf_);
      } else {
        __builtin_memcpy(buf_, other.buf_, kInlineCapacity);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace grunt::sim
