#include "sim/simulation.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace grunt::sim {

void EventHandle::Cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Simulation::At(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    throw std::invalid_argument("Simulation::At: time in the past");
  }
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Event{at, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

EventHandle Simulation::After(SimDuration delay, std::function<void()> fn) {
  return At(now_ + std::max<SimDuration>(0, delay), std::move(fn));
}

EventHandle Simulation::Every(SimDuration period, std::function<void()> fn) {
  if (period <= 0) throw std::invalid_argument("Simulation::Every: period<=0");
  auto state = std::make_shared<EventHandle::State>();
  // Self-rescheduling repeater; stops once the shared handle is cancelled.
  struct Repeater {
    Simulation* sim;
    SimDuration period;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
    void Arm() {
      auto self = *this;
      sim->At(sim->Now() + period, [self]() mutable {
        if (self.state->cancelled) return;
        self.fn();
        if (!self.state->cancelled) self.Arm();
      });
    }
  };
  Repeater{this, period, std::move(fn), state}.Arm();
  return EventHandle(std::move(state));
}

bool Simulation::FireNext() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.state->cancelled) continue;
    now_ = ev.time;
    ev.state->fired = true;
    ev.fn();
    ++events_fired_;
    return true;
  }
  return false;
}

std::uint64_t Simulation::RunUntil(SimTime until) {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  while (!stop_requested_ && !queue_.empty() && queue_.top().time <= until) {
    if (FireNext()) ++fired;
  }
  if (!stop_requested_) now_ = std::max(now_, until);
  return fired;
}

std::uint64_t Simulation::RunAll() {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  while (!stop_requested_ && FireNext()) ++fired;
  return fired;
}

}  // namespace grunt::sim
