#include "sim/simulation.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace grunt::sim {

void EventHandle::Cancel() {
  if (sim_ != nullptr) sim_->CancelSlot(slot_, gen_);
}

bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->SlotPending(slot_, gen_);
}

std::uint32_t Simulation::AllocSlot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t id = free_head_;
    SlotMeta& m = metas_[id];
    free_head_ = m.aux;  // aux holds the next free index while on the list
    m.aux = 0;
    return id;
  }
  const std::uint32_t id = static_cast<std::uint32_t>(metas_.size());
  if (id % kSlotsPerChunk == 0) {
    if (id == 0) {
      // One chunk's worth up front spares the first few hundred events the
      // doubling reallocations of metas_ and heap_.
      metas_.reserve(kSlotsPerChunk);
      heap_.reserve(kSlotsPerChunk);
    }
    fn_chunks_.push_back(std::make_unique<InplaceFunction[]>(kSlotsPerChunk));
  }
  metas_.emplace_back();
  return id;
}

void Simulation::FreeSlot(std::uint32_t id) {
  fn_slot(id).Reset();
  SlotMeta& m = metas_[id];
  m.period = 0;
  ++m.gen;  // invalidates every outstanding handle and queue entry
  m.aux = free_head_;
  free_head_ = id;
}

void Simulation::PushEntry(SimTime time, std::uint32_t slot_id,
                           std::uint32_t gen) {
  heap_.push_back(QEntry{time, next_seq_++, slot_id, gen});
  SiftUp(heap_.size() - 1);
}

void Simulation::EnqueueEntry(SimTime time, std::uint32_t slot_id,
                              std::uint32_t gen) {
  SlotMeta& m = metas_[slot_id];
  // Immediate lane: a one-shot event scheduled for the current timestamp
  // (After(0) / At(Now())). The clock cannot advance while a live lane entry
  // exists — its time is the global minimum — so every push happens at the
  // lane front's own timestamp or later, and the FIFO ring is (time, seq)-
  // sorted by construction. No sift on push, no tournament on pop. The
  // period check is defensive: Every re-arms always target now_ + period.
  if (lane_enabled_ && time == now_ && m.period == 0) {
    m.aux |= kAuxInLane;
    lane_.push_back(QEntry{time, next_seq_++, slot_id, gen});
    ++lane_live_;
    ++stats_.immediate_scheduled;
    return;
  }
  // Timing wheel: kTimer events (cancel-likely) whenever the wheel can hold
  // them, and — regardless of class — anything at least one level-0 horizon
  // out. A far-future event is pure ballast in the heap: it sits near the
  // bottom for thousands of pops, yet every near-term push must sift past
  // it. Filing it in a wheel bucket is O(1) now and it re-enters the heap
  // only when its due time is close, keeping the heap's height proportional
  // to the *near* event population. Order stays exact either way — wheel
  // entries keep their (time, seq) key and CascadeWheel's bound merge never
  // lets the heap or lane fire past an earlier bucket.
  if (wheel_enabled_ && time - now_ >= TimerWheel::kMinDelay &&
      ((m.aux & kAuxTimerClass) != 0 || time - now_ >= kFarDelay)) {
    m.aux |= kAuxInWheel;
    wheel_.Insert(TimerWheel::Entry{time, next_seq_++, slot_id, gen}, now_);
    ++wheel_live_;
    ++stats_.wheel_scheduled;
    return;
  }
  PushEntry(time, slot_id, gen);
}

void Simulation::CascadeWheel(SimTime limit) {
  // Cascade while a wheel bucket could hold an entry at or before the limit,
  // the heap's current top, and the lane's front. Bounds are lower bounds on
  // entry times, so "bound <= store minimum" also covers same-time/smaller-
  // seq ties — after the loop, min(heap top, lane front) by (time, seq) is
  // the true global minimum up to `limit`.
  for (;;) {
    if (wheel_.empty()) return;
    const SimTime bound = wheel_.EarliestBound();
    if (bound > limit) return;
    if (!heap_.empty() && bound > heap_.front().time) return;
    if (lane_live_ != 0 && bound > lane_.front().time) return;
    ++stats_.wheel_cascades;
    wheel_.CascadeEarliest(
        [this](const TimerWheel::Entry& e) {
          const SlotMeta& m = metas_[e.slot];
          return m.gen == e.gen && (m.aux & kAuxCancelled) == 0;
        },
        [this](const TimerWheel::Entry& e) {
          metas_[e.slot].aux &= ~kAuxInWheel;
          heap_.push_back(QEntry{e.time, e.seq, e.slot, e.gen});
          SiftUp(heap_.size() - 1);
          --wheel_live_;
          ++stats_.wheel_to_heap;
        });
  }
}

void Simulation::SiftUp(std::size_t i) {
  const QEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!EarlierKey(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulation::SiftDown(std::size_t i) {
  const QEntry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (EarlierKey(heap_[c], heap_[best])) best = c;
    }
    if (!EarlierKey(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulation::PopTop() {
  // Bottom-up pop: sink the hole to a leaf picking the min child at each
  // level (no compare against the displaced back element on the way down),
  // then drop the back element into the hole and bubble it up the rare
  // level or two it belongs higher. Fewer compares and better-predicted
  // branches than the textbook sift-down for pop-heavy workloads.
  const QEntry back = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  QEntry* const h = heap_.data();
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = hole * 4 + 1;
    if (first + 4 <= n) {
      // Full node: tournament min-of-4. The two first-round compares are
      // independent and the index selects compile to conditional moves, so
      // the descent has one data-dependent branch per level instead of
      // three.
      const std::size_t b01 = first + (EarlierKey(h[first + 1], h[first]));
      const std::size_t b23 =
          first + 2 + (EarlierKey(h[first + 3], h[first + 2]));
      const std::size_t best = EarlierKey(h[b23], h[b01]) ? b23 : b01;
      h[hole] = h[best];
      hole = best;
      continue;
    }
    if (first >= n) break;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < n; ++c) {
      if (EarlierKey(h[c], h[best])) best = c;
    }
    h[hole] = h[best];
    hole = best;
  }
  // Bubble `back` up from the leaf hole.
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (!EarlierKey(back, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = back;
}

void Simulation::ThrowPastTime() {
  throw std::invalid_argument("Simulation::At: time in the past");
}

void Simulation::ThrowBadPeriod() {
  throw std::invalid_argument("Simulation::Every: period<=0");
}

EventHandle Simulation::FinishSchedule(SimTime time, std::uint32_t id,
                                       SimDuration period, bool inline_cb) {
  SlotMeta& m = metas_[id];
  if (period > 0) m.period = period;  // freed slots already carry period 0
  ++stats_.events_scheduled;
  stats_.inline_callbacks += inline_cb ? 1 : 0;
  const std::uint32_t gen = m.gen;
  EnqueueEntry(time, id, gen);
  return EventHandle(this, id, gen);
}

EventHandle Simulation::At(SimTime at, InplaceFunction fn) {
  if (at < now_) ThrowPastTime();
  const std::uint32_t id = AllocSlot();
  fn_slot(id) = std::move(fn);
  return FinishSchedule(at, id, /*period=*/0, fn_slot(id).is_inline());
}

EventHandle Simulation::After(SimDuration delay, InplaceFunction fn) {
  return At(now_ + std::max<SimDuration>(0, delay), std::move(fn));
}

EventHandle Simulation::Every(SimDuration period, InplaceFunction fn) {
  if (period <= 0) ThrowBadPeriod();
  const std::uint32_t id = AllocSlot();
  fn_slot(id) = std::move(fn);
  return FinishSchedule(now_ + period, id, period, fn_slot(id).is_inline());
}

EventHandle Simulation::At(SimTime at, EventClass cls, InplaceFunction fn) {
  if (at < now_) ThrowPastTime();
  const std::uint32_t id = AllocSlot();
  fn_slot(id) = std::move(fn);
  if (cls == EventClass::kTimer) metas_[id].aux |= kAuxTimerClass;
  return FinishSchedule(at, id, /*period=*/0, fn_slot(id).is_inline());
}

EventHandle Simulation::After(SimDuration delay, EventClass cls,
                              InplaceFunction fn) {
  return At(now_ + std::max<SimDuration>(0, delay), cls, std::move(fn));
}

EventHandle Simulation::Every(SimDuration period, EventClass cls,
                              InplaceFunction fn) {
  if (period <= 0) ThrowBadPeriod();
  const std::uint32_t id = AllocSlot();
  fn_slot(id) = std::move(fn);
  if (cls == EventClass::kTimer) metas_[id].aux |= kAuxTimerClass;
  return FinishSchedule(now_ + period, id, period, fn_slot(id).is_inline());
}

void Simulation::PurgeLaneFront() {
  // Lane cancellation frees the slot immediately (lane events are one-shot,
  // so no Every series can still own it), which bumps the generation; the
  // ring entry left behind is a pure generation-mismatch tombstone.
  // immediate_cancelled was counted at cancel time, so dropping one here is
  // bookkeeping only.
  while (!lane_.empty()) {
    const QEntry& e = lane_.front();
    if (metas_[e.slot].gen == e.gen) return;
    lane_.pop_front();
    --cancelled_in_lane_;
  }
}

void Simulation::PurgeTop() {
  while (!heap_.empty()) {
    const QEntry e = heap_.front();
    const SlotMeta& m = metas_[e.slot];
    if (m.gen == e.gen && (m.aux & kAuxCancelled) == 0) return;
    PopTop();
    if (m.gen == e.gen) {
      --cancelled_in_heap_;
      ++stats_.cancelled_popped;
      FreeSlot(e.slot);
    }
  }
}

void Simulation::MaybeCompact() {
  if (heap_.size() < kCompactMinHeap ||
      cancelled_in_heap_ * 2 <= heap_.size()) {
    return;
  }
  auto keep = heap_.begin();
  for (auto it = heap_.begin(); it != heap_.end(); ++it) {
    const SlotMeta& m = metas_[it->slot];
    if (m.gen == it->gen && (m.aux & kAuxCancelled) == 0) {
      *keep++ = *it;
    } else {
      if (m.gen == it->gen) FreeSlot(it->slot);
      ++stats_.cancelled_purged;
    }
  }
  heap_.erase(keep, heap_.end());
  if (!heap_.empty()) {
    for (std::size_t i = (heap_.size() - 1) / 4 + 1; i-- > 0;) SiftDown(i);
  }
  cancelled_in_heap_ = 0;
  ++stats_.compactions;
}

void Simulation::FireLaneFront() {
  const QEntry e = lane_.front();
  lane_.pop_front();
  --lane_live_;
  now_ = e.time;
  // Lane entries are one-shot by construction (EnqueueEntry excludes
  // repeating slots), so this is the heap's one-shot path verbatim:
  // invalidate handles up front, invoke in place, recycle the slot.
  ++metas_[e.slot].gen;
  InplaceFunction& f = fn_slot(e.slot);
  f();
  ++events_fired_;
  f.Reset();
  SlotMeta& m = metas_[e.slot];
  m.aux = free_head_;
  free_head_ = e.slot;
}

bool Simulation::FireNext() {
  if (cancelled_in_heap_ != 0) PurgeTop();
  if (cancelled_in_lane_ != 0) PurgeLaneFront();
  if (!wheel_.empty()) {
    CascadeWheel(std::numeric_limits<SimTime>::max());
  }
  // One (time, seq) compare merges the lane and the heap; the wheel is
  // already folded in by the cascade bound above. Ties go to whichever
  // entry drew the smaller sequence number, exactly as in a single heap.
  if (lane_live_ != 0 &&
      (heap_.empty() || EarlierKey(lane_.front(), heap_.front()))) {
    FireLaneFront();
    return true;
  }
  if (heap_.empty()) return false;
  const QEntry e = heap_.front();
  PopTop();
  now_ = e.time;
  // metas_ can grow (and move) inside the callback; re-index after calling.
  // Closure storage is chunked and therefore address-stable throughout.
  const SimDuration period = metas_[e.slot].period;
  if (period > 0) {
    // Repeating event: the closure stays in its slot for the whole series
    // and is invoked in place — no copy, no allocation per tick.
    const std::uint32_t prev_firing = firing_slot_;  // tolerate re-entrant Run
    firing_slot_ = e.slot;
    fn_slot(e.slot)();
    firing_slot_ = prev_firing;
    ++events_fired_;
    SlotMeta& m = metas_[e.slot];
    if ((m.aux & kAuxCancelled) == 0) {
      // Re-arm after the callback so events it scheduled get earlier
      // sequence numbers (same ordering as a fire-then-reschedule chain).
      // A kTimer-classed series re-files into the wheel when the period is
      // long enough (the class bit persists on the slot across the series).
      EnqueueEntry(now_ + period, e.slot, m.gen);
    } else {
      FreeSlot(e.slot);
    }
  } else {
    // One-shot: invalidate the handles up front (pending() is false inside
    // the callback, as with the old fired flag), invoke in place, then
    // recycle the slot. The slot cannot be reused mid-callback because it
    // only joins the free list after the callback returns.
    ++metas_[e.slot].gen;
    InplaceFunction& f = fn_slot(e.slot);
    f();
    ++events_fired_;
    f.Reset();
    SlotMeta& m = metas_[e.slot];
    m.aux = free_head_;
    free_head_ = e.slot;
  }
  return true;
}

std::uint64_t Simulation::RunUntil(SimTime until) {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  for (;;) {
    if (stop_requested_) break;
    if (cancelled_in_heap_ != 0) PurgeTop();
    if (cancelled_in_lane_ != 0) PurgeLaneFront();
    if (!wheel_.empty()) CascadeWheel(until);
    const bool lane_ready = lane_live_ != 0 && lane_.front().time <= until;
    if (!lane_ready && (heap_.empty() || heap_.front().time > until)) break;
    if (FireNext()) ++fired;
  }
  if (!stop_requested_) now_ = std::max(now_, until);
  return fired;
}

std::uint64_t Simulation::RunAll() {
  stop_requested_ = false;
  std::uint64_t fired = 0;
  while (!stop_requested_ && FireNext()) ++fired;
  return fired;
}

void Simulation::CancelSlot(std::uint32_t slot_id, std::uint32_t gen) {
  if (slot_id >= metas_.size()) return;
  SlotMeta& m = metas_[slot_id];
  if (m.gen != gen || (m.aux & kAuxCancelled) != 0) return;
  // Wheel fast path: freeing the slot bumps its generation, which turns the
  // bucket entry into a tombstone dropped at cascade time. No heap sift, no
  // compaction bookkeeping — this is what makes cancel-heavy timer churn
  // cheap.
  // Lane fast path: same trick one store over — freeing the slot bumps its
  // generation, turning the ring entry into a tombstone dropped at the next
  // front purge. O(1), no sift, no compaction bookkeeping.
  if ((m.aux & kAuxInLane) != 0) {
    --lane_live_;
    ++cancelled_in_lane_;
    ++stats_.immediate_cancelled;
    FreeSlot(slot_id);
    return;
  }
  if ((m.aux & kAuxInWheel) != 0) {
    --wheel_live_;
    ++stats_.wheel_cancelled;
    FreeSlot(slot_id);
    return;
  }
  m.aux |= kAuxCancelled;
  // A live slot has a heap entry unless it is the repeating event whose
  // callback is currently running; that one is released by FireNext after
  // the callback returns.
  if (slot_id != firing_slot_) {
    ++cancelled_in_heap_;
    MaybeCompact();
  }
}

bool Simulation::SlotPending(std::uint32_t slot_id, std::uint32_t gen) const {
  if (slot_id >= metas_.size()) return false;
  const SlotMeta& m = metas_[slot_id];
  return m.gen == gen && (m.aux & kAuxCancelled) == 0;
}

Simulation::EngineStats Simulation::stats() const {
  EngineStats out = stats_;
  out.heap_callbacks = out.events_scheduled - out.inline_callbacks;
  out.slab_chunks = fn_chunks_.size();
  out.wheel_occupancy = wheel_live_;
  out.immediate_occupancy = lane_live_;
  return out;
}

}  // namespace grunt::sim
