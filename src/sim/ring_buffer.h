#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace grunt::sim {

/// Growable power-of-two FIFO ring buffer.
///
/// Replaces std::deque in the Service hot paths (slot waiters, CPU queue):
/// a deque allocates/frees a map node per ~512 bytes of churn, while this
/// ring reaches steady state after warm-up and then pushes/pops without
/// touching the allocator. Elements must be default-constructible and
/// movable; popped slots are overwritten with a default-constructed value so
/// resources held by queued callbacks (e.g. InplaceFunction closures) are
/// dropped as soon as they leave the queue (skipped for trivially
/// destructible element types, which hold no resources — their pop is a
/// plain copy + index bump).
template <class T>
class RingBuffer {
 public:
  RingBuffer() = default;
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return cap_; }

  void push_back(T value) {
    if (count_ == cap_) Grow();
    buf_[(head_ + count_) & (cap_ - 1)] = std::move(value);
    ++count_;
  }

  T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }

  /// Moves the front element out and releases its slot.
  T pop_front() {
    assert(count_ > 0);
    T out = std::move(buf_[head_]);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      buf_[head_] = T{};
    }
    head_ = (head_ + 1) & (cap_ - 1);
    --count_;
    return out;
  }

  /// i-th element counted from the front (0 = front).
  T& operator[](std::size_t i) {
    assert(i < count_);
    return buf_[(head_ + i) & (cap_ - 1)];
  }
  const T& operator[](std::size_t i) const {
    assert(i < count_);
    return buf_[(head_ + i) & (cap_ - 1)];
  }

  void clear() {
    while (count_ > 0) pop_front();
  }

 private:
  void Grow() {
    const std::size_t new_cap = cap_ == 0 ? kInitialCapacity : cap_ * 2;
    auto fresh = std::make_unique<T[]>(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      fresh[i] = std::move(buf_[(head_ + i) & (cap_ - 1)]);
    }
    buf_ = std::move(fresh);
    cap_ = new_cap;
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::unique_ptr<T[]> buf_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace grunt::sim
