#pragma once

namespace grunt::attack {

/// One-dimensional Kalman filter (constant-state model with process noise),
/// the feedback-control tool of the Commander module (Sec IV-D, [30]). Used
/// to smooth the attacker's noisy external estimates of millibottleneck
/// length and damage latency before they drive parameter adaptation.
class ScalarKalman {
 public:
  /// `process_var` (Q): how fast the true value drifts between bursts.
  /// `measurement_var` (R): noise of one external estimate.
  /// `initial` / `initial_var`: prior.
  ScalarKalman(double process_var, double measurement_var, double initial,
               double initial_var);

  /// Incorporates one measurement; returns the posterior estimate.
  double Update(double measurement);

  double value() const { return x_; }
  double variance() const { return p_; }
  /// Kalman gain of the most recent update (diagnostics; 0 before any).
  double last_gain() const { return last_gain_; }

 private:
  double q_;
  double r_;
  double x_;
  double p_;
  double last_gain_ = 0.0;
};

}  // namespace grunt::attack
