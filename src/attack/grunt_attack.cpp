#include "attack/grunt_attack.h"

#include <algorithm>

#include "util/logging.h"

namespace grunt::attack {

double GruntReport::MeanPmbMs() const {
  double total = 0;
  std::size_t n = 0;
  for (const auto& g : groups) {
    if (g.MeanPmbMs() > 0) {
      total += g.MeanPmbMs();
      ++n;
    }
  }
  return n == 0 ? 0 : total / static_cast<double>(n);
}

double GruntReport::MeanTminMs() const {
  double total = 0;
  std::size_t n = 0;
  for (const auto& g : groups) {
    if (!g.bursts.empty()) {
      total += g.MeanTminMs();
      ++n;
    }
  }
  return n == 0 ? 0 : total / static_cast<double>(n);
}

GruntAttack::GruntAttack(TargetClient& target, GruntConfig cfg)
    : target_(target), cfg_(std::move(cfg)), bots_(cfg_.botfarm) {}

void GruntAttack::Run(SimDuration attack_duration,
                      std::function<void(const GruntReport&)> done) {
  profiler_ = std::make_unique<Profiler>(target_, bots_, cfg_.profiler);
  profiler_->Run([this, attack_duration, done = std::move(done)](
                     ProfileResult profile) mutable {
    RunWithProfile(std::move(profile), attack_duration, std::move(done));
  });
}

void GruntAttack::RunWithProfile(
    ProfileResult profile, SimDuration attack_duration,
    std::function<void(const GruntReport&)> done) {
  report_ = GruntReport{};
  report_.profile = std::move(profile);

  // Target the largest groups first (they cover the most traffic).
  std::vector<std::vector<std::int32_t>> targets = report_.profile.groups;
  std::stable_sort(targets.begin(), targets.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() > b.size();
                   });
  commanders_.clear();
  for (const auto& group : targets) {
    if (group.size() < cfg_.min_group_size) continue;
    if (cfg_.max_groups > 0 && commanders_.size() >= cfg_.max_groups) break;
    commanders_.push_back(std::make_unique<GroupCommander>(
        target_, bots_, cfg_.commander, group, report_.profile));
  }
  if (commanders_.empty()) {
    report_.bots_used = bots_.bot_count();
    done(report_);
    return;
  }
  if (!cfg_.replay.empty()) {
    if (cfg_.replay.size() != commanders_.size()) {
      throw std::invalid_argument(
          "GruntConfig::replay: entry count does not match the attacked "
          "group count");
    }
    for (std::size_t i = 0; i < commanders_.size(); ++i) {
      commanders_[i]->SetReplay(cfg_.replay[i]);
    }
  }
  InitializeGroups(0, attack_duration, std::move(done));
}

void GruntAttack::InitializeGroups(
    std::size_t idx, SimDuration attack_duration,
    std::function<void(const GruntReport&)> done) {
  if (idx >= commanders_.size()) {
    LaunchAttacks(attack_duration, std::move(done));
    return;
  }
  commanders_[idx]->Initialize(
      [this, idx, attack_duration, done = std::move(done)]() mutable {
        InitializeGroups(idx + 1, attack_duration, std::move(done));
      });
}

void GruntAttack::LaunchAttacks(
    SimDuration attack_duration,
    std::function<void(const GruntReport&)> done) {
  const SimTime attack_until = target_.Now() + attack_duration;
  if (attack_start_cb_) attack_start_cb_(target_.Now());
  auto remaining = std::make_shared<std::size_t>(commanders_.size());
  auto done_shared =
      std::make_shared<std::function<void(const GruntReport&)>>(
          std::move(done));
  for (auto& commander : commanders_) {
    commander->Attack(attack_until, [this, remaining, done_shared] {
      if (--*remaining == 0) {
        for (const auto& c : commanders_) {
          report_.groups.push_back(c->stats());
          report_.attack_requests += c->stats().attack_requests;
        }
        report_.bots_used = bots_.bot_count();
        (*done_shared)(report_);
      }
    });
  }
}

}  // namespace grunt::attack
