#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "attack/botfarm.h"
#include "attack/target_client.h"

namespace grunt::attack {

/// Everything the attacker observes about one of its bursts: per-request
/// send/complete timestamps. The Monitor module's two blackbox estimators
/// (Sec IV-B) are derived views:
///  * millibottleneck length P_MB ~= end time of the last attack request
///    minus end time of the first one (Fig 8) — a conservative estimate;
///  * damage latency t_min ~= average end-to-end response time of the
///    burst's requests.
struct BurstObservation {
  std::int32_t url_id = -1;
  SimTime burst_start = 0;
  double rate = 0;      ///< B (requests/second)
  double length_s = 0;  ///< L (seconds)

  struct Response {
    SimTime sent = 0;
    SimTime completed = 0;
    bool ok = true;  ///< false: the target answered with an error
    /// True when the bot budget was exhausted and the request was never
    /// sent. Counts as an error in OkFraction() (the calibration loop's
    /// stop signal) but is excluded from the timing estimators.
    bool skipped = false;
  };
  std::vector<Response> responses;  ///< in send order

  double volume() const { return rate * length_s; }

  /// Responses that came back without an error. RT statistics below still
  /// include error responses — an error arriving after the target's timeout
  /// is a genuine (bounded) damage observation — but calibration logic uses
  /// OkFraction() to notice when a fault-tolerant target is clipping the
  /// signal.
  std::size_t OkCount() const;
  /// OkCount() / responses.size(); 1.0 for an empty observation.
  double OkFraction() const;

  /// Blackbox P_MB estimate in milliseconds (Fig 8); 0 with <2 responses.
  double EstimatePmbMs() const;

  /// Mean end-to-end RT of the burst's requests, in milliseconds.
  double MeanRtMs() const;
  /// Median RT (ms): robust against tail noise; the profiler's verdict
  /// statistic.
  double MedianRtMs() const;
  double MaxRtMs() const;
  SimTime LastCompletion() const;
};

/// Sends a fixed-rate burst of `count` requests for one URL, one request per
/// bot, and invokes `done` once every response has returned.
class BurstSender {
 public:
  using DoneCallback = std::function<void(BurstObservation)>;

  /// `rate` in requests/second (> 0), `count` >= 1. Requests are evenly
  /// spaced at 1/rate; the nominal burst length L = count/rate.
  static void Send(TargetClient& target, BotFarm& bots, std::int32_t url_id,
                   bool heavy, double rate, std::int32_t count,
                   bool attack_traffic, DoneCallback done);
};

/// Sends `count` isolated probe requests spaced by `gap` (wide enough not to
/// interfere with each other) and reports the observation; used to measure
/// baseline response times.
class ProbeSender {
 public:
  static void Send(TargetClient& target, BotFarm& bots, std::int32_t url_id,
                   std::int32_t count, SimDuration gap,
                   BurstSender::DoneCallback done);
};

/// Probes each URL in `urls` every `retry` until every response time is back
/// near its baseline (<= factor*baseline + 20 ms) or `tries` runs out, then
/// invokes `done`. Measurement phases use this between tests so residual
/// queues from one test can never contaminate the next — an external
/// attacker's only way to know the system "cooled down" (Sec II-B).
void SettleUntilQuiet(TargetClient& target, BotFarm& bots,
                      std::vector<std::int32_t> urls,
                      std::vector<double> baselines_ms, SimDuration retry,
                      std::int32_t tries, double factor,
                      std::function<void()> done);

}  // namespace grunt::attack
