#include "attack/burst.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace grunt::attack {

double BurstObservation::EstimatePmbMs() const {
  SimTime first_end = 0;
  SimTime last_end = 0;
  std::size_t seen = 0;
  for (const auto& r : responses) {
    if (r.skipped) continue;
    if (seen++ == 0) {
      first_end = last_end = r.completed;
    } else {
      first_end = std::min(first_end, r.completed);
      last_end = std::max(last_end, r.completed);
    }
  }
  if (seen < 2) return 0.0;
  return ToMillis(last_end - first_end);
}

std::size_t BurstObservation::OkCount() const {
  std::size_t n = 0;
  for (const auto& r : responses) n += r.ok;
  return n;
}

double BurstObservation::OkFraction() const {
  if (responses.empty()) return 1.0;
  return static_cast<double>(OkCount()) /
         static_cast<double>(responses.size());
}

double BurstObservation::MeanRtMs() const {
  double total = 0;
  std::size_t seen = 0;
  for (const auto& r : responses) {
    if (r.skipped) continue;
    total += ToMillis(r.completed - r.sent);
    ++seen;
  }
  return seen == 0 ? 0.0 : total / static_cast<double>(seen);
}

double BurstObservation::MedianRtMs() const {
  std::vector<double> rts;
  rts.reserve(responses.size());
  for (const auto& r : responses) {
    if (!r.skipped) rts.push_back(ToMillis(r.completed - r.sent));
  }
  if (rts.empty()) return 0.0;
  auto mid = rts.begin() + static_cast<std::ptrdiff_t>(rts.size() / 2);
  std::nth_element(rts.begin(), mid, rts.end());
  return *mid;
}

double BurstObservation::MaxRtMs() const {
  double best = 0;
  for (const auto& r : responses) {
    if (!r.skipped) best = std::max(best, ToMillis(r.completed - r.sent));
  }
  return best;
}

SimTime BurstObservation::LastCompletion() const {
  SimTime last = 0;
  for (const auto& r : responses) {
    if (!r.skipped) last = std::max(last, r.completed);
  }
  return last;
}

namespace {

/// Shared accumulator for one in-flight burst.
struct Pending {
  BurstObservation obs;
  std::int32_t outstanding = 0;
  BurstSender::DoneCallback done;
};

void SendSpaced(TargetClient& target, BotFarm& bots, std::int32_t url_id,
                bool heavy, std::int32_t count, SimDuration spacing,
                double rate, double length_s, bool attack_traffic,
                BurstSender::DoneCallback done) {
  if (count < 1) throw std::invalid_argument("burst count < 1");
  auto pending = std::make_shared<Pending>();
  pending->obs.url_id = url_id;
  pending->obs.burst_start = target.Now();
  pending->obs.rate = rate;
  pending->obs.length_s = length_s;
  pending->obs.responses.resize(static_cast<std::size_t>(count));
  pending->outstanding = count;
  pending->done = std::move(done);

  for (std::int32_t i = 0; i < count; ++i) {
    target.After(spacing * i, [&target, &bots, url_id, heavy, attack_traffic,
                               pending, i] {
      const SimTime now = target.Now();
      const auto bot = bots.Acquire(now);
      if (!bot) {
        // Bot budget exhausted: the request never leaves the farm. Record
        // it as an instant error so the observation still completes.
        auto& slot = pending->obs.responses[static_cast<std::size_t>(i)];
        slot.sent = now;
        slot.completed = now;
        slot.ok = false;
        slot.skipped = true;
        if (--pending->outstanding == 0 && pending->done) {
          pending->done(std::move(pending->obs));
        }
        return;
      }
      target.Send(url_id, heavy, *bot, attack_traffic,
                  [pending, i](SimTime sent, SimTime completed, bool ok) {
                    auto& slot =
                        pending->obs.responses[static_cast<std::size_t>(i)];
                    slot.sent = sent;
                    slot.completed = completed;
                    slot.ok = ok;
                    if (--pending->outstanding == 0 && pending->done) {
                      pending->done(std::move(pending->obs));
                    }
                  });
    });
  }
}

}  // namespace

void BurstSender::Send(TargetClient& target, BotFarm& bots,
                       std::int32_t url_id, bool heavy, double rate,
                       std::int32_t count, bool attack_traffic,
                       DoneCallback done) {
  if (rate <= 0) throw std::invalid_argument("burst rate <= 0");
  const auto spacing = static_cast<SimDuration>(1e6 / rate);
  SendSpaced(target, bots, url_id, heavy, count, spacing, rate,
             static_cast<double>(count) / rate, attack_traffic,
             std::move(done));
}

void ProbeSender::Send(TargetClient& target, BotFarm& bots,
                       std::int32_t url_id, std::int32_t count,
                       SimDuration gap, BurstSender::DoneCallback done) {
  if (gap <= 0) throw std::invalid_argument("probe gap <= 0");
  SendSpaced(target, bots, url_id, /*heavy=*/false, count, gap,
             /*rate=*/1e6 / static_cast<double>(gap),
             /*length_s=*/ToSeconds(gap) * count, /*attack_traffic=*/false,
             std::move(done));
}

void SettleUntilQuiet(TargetClient& target, BotFarm& bots,
                      std::vector<std::int32_t> urls,
                      std::vector<double> baselines_ms, SimDuration retry,
                      std::int32_t tries, double factor,
                      std::function<void()> done) {
  if (urls.size() != baselines_ms.size()) {
    throw std::invalid_argument("SettleUntilQuiet: size mismatch");
  }
  if (tries <= 0 || urls.empty()) {
    target.After(retry, std::move(done));
    return;
  }
  target.After(retry, [&target, &bots, urls = std::move(urls),
                       baselines_ms = std::move(baselines_ms), retry, tries,
                       factor, done = std::move(done)]() mutable {
    auto outstanding =
        std::make_shared<std::int32_t>(static_cast<std::int32_t>(urls.size()));
    auto all_quiet = std::make_shared<bool>(true);
    for (std::size_t i = 0; i < urls.size(); ++i) {
      const double baseline = baselines_ms[i];
      ProbeSender::Send(
          target, bots, urls[i], /*count=*/1, Ms(10),
          [&target, &bots, urls, baselines_ms, retry, tries, factor, done,
           outstanding, all_quiet, baseline](BurstObservation obs) mutable {
            if (obs.MedianRtMs() > factor * baseline + 20.0) {
              *all_quiet = false;
            }
            if (--*outstanding == 0) {
              if (*all_quiet) {
                done();
              } else {
                SettleUntilQuiet(target, bots, std::move(urls),
                                 std::move(baselines_ms), retry, tries - 1,
                                 factor, std::move(done));
              }
            }
          });
    }
  });
}

}  // namespace grunt::attack
