#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/time_types.h"

namespace grunt::attack {

/// Allocates bot identities (source IPs / sessions) so that no single bot
/// ever violates the rate-based IDS rules: each bot sends at most one
/// request per burst and keeps its personal inter-request spacing above the
/// behavioral threshold (paper Sec V-B: "each virtual bot only sends one
/// request in a burst, and we tune the interval of requests sent per bot").
///
/// The farm grows on demand; its peak size is the "Bot (#)" column of
/// Table III.
class BotFarm {
 public:
  struct Config {
    /// Minimum spacing between two requests from the same bot. Attackers
    /// estimate the IDS threshold beforehand and add a safety margin.
    SimDuration min_spacing = Ms(3500);
    std::uint64_t bot_id_base = 9'000'000;
    /// Attacker budget: recruitment stops at this farm size (0 = unlimited).
    /// With every bot cooling down at the cap, Acquire() fails and the
    /// request simply cannot be sent — the knob that makes "equal attacker
    /// cost" comparisons possible (Table III reports the footprint).
    std::size_t max_bots = 0;
  };

  explicit BotFarm(Config cfg);

  /// Returns a bot id usable at time `now` without tripping spacing rules,
  /// recruiting a new bot when every existing one is still cooling down.
  /// nullopt when the budget cap is reached and every bot is still cooling.
  std::optional<std::uint64_t> Acquire(SimTime now);

  /// Bots recruited so far (the attack's reported footprint).
  std::size_t bot_count() const { return last_used_.size(); }
  std::uint64_t requests_sent() const { return requests_sent_; }
  SimDuration min_spacing() const { return cfg_.min_spacing; }

 private:
  Config cfg_;
  std::vector<SimTime> last_used_;
  std::size_t cursor_ = 0;  ///< round-robin start position
  std::uint64_t requests_sent_ = 0;
};

}  // namespace grunt::attack
