#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "attack/botfarm.h"
#include "attack/burst.h"
#include "attack/kalman.h"
#include "attack/profiler.h"
#include "attack/target_client.h"
#include "model/queuing_model.h"
#include "util/timeseries.h"

namespace grunt::attack {

/// Tuning of the Commander module (Sec IV-D).
struct CommanderConfig {
  // --- attacking goals ---
  double target_tmin_ms = 1000.0;  ///< damage goal: avg RT >= 1 s
  double pmb_limit_ms = 500.0;     ///< stealth goal: P_MB <= 500 ms

  // --- initialisation (find min B, max L, min m) ---
  /// Geometric sweep for the minimum burst rate that triggers a
  /// millibottleneck (requests/second).
  double rate_sweep_lo = 200.0;
  double rate_sweep_hi = 6400.0;
  std::int32_t rate_probe_count = 16;  ///< requests per rate-test burst
  /// A burst whose mean RT exceeds `trigger_factor * baseline` (or baseline
  /// + trigger_floor_ms) indicates resource saturation (Sec IV-D step 1).
  double trigger_factor = 2.5;
  double trigger_floor_ms = 40.0;
  /// Baseline RT assumed for a path the profiler produced no measurement
  /// for (e.g. every baseline probe failed against a fault-tolerant
  /// target). A warning is logged the first time it is used.
  double fallback_baseline_ms = 100.0;
  /// A rate-sweep burst also counts as "triggered" when the target starts
  /// failing requests: a fault-tolerant deployment sheds or times out
  /// instead of letting RT grow, so errors ARE the saturation signal.
  double trigger_error_fraction = 0.10;
  /// Margin under the stealth cap targeted during L calibration.
  double pmb_target_fraction = 0.9;
  std::int32_t max_paths = 6;    ///< cap on m
  std::int32_t min_count = 4;    ///< smallest burst size ever used
  std::int32_t max_count = 4096; ///< safety cap on burst size

  // --- steady-state control loop ---
  SimDuration min_interval = Ms(100);
  SimDuration max_interval = Sec(5);
  /// Monitor-module probe cadence: light (legit-like) requests sent during
  /// the attack to estimate the damage a normal user experiences; this is
  /// the t_min feedback signal (burst requests are heavy and would
  /// overestimate it).
  SimDuration probe_period = Ms(250);
  /// Cool-down between calibration bursts: probe-until-quiet, same
  /// mechanism as the profiler's settle.
  SimDuration settle = Ms(500);
  std::int32_t settle_max_tries = 16;
  double settle_factor = 2.0;
  /// Kalman variances for the P_MB and t_min estimators.
  double kf_process_var = 400.0;       // (ms^2) drift between bursts
  double kf_measurement_var = 2500.0;  // (ms^2) noise of one estimate
  /// Stability guards on the periodic loop: never have more than
  /// `max_inflight_bursts` bursts without feedback, and pause firing while
  /// the damage estimate exceeds `overshoot_factor` * target (the feedback
  /// itself is delayed by the damage it reports, so unbounded firing would
  /// run away).
  std::int32_t max_inflight_bursts = 3;
  double overshoot_factor = 1.5;
  /// Per-service stealth: each bottleneck service may spend at most this
  /// fraction of wall time inside a millibottleneck, keeping its 1 s-mean
  /// CPU below the autoscaler/IDS thresholds. With m alternating paths the
  /// rotation provides the spacing; with m = 1 this forces cool gaps —
  /// which is exactly why single-path attacks cannot meet both goals.
  double max_duty_cycle = 0.30;
  /// Ablation switches (Sec V / DESIGN.md ablation benches).
  bool use_kalman = true;
  bool alternate_paths = true;  ///< false: hammer a single path (Tail-style)
};

/// One attack burst as fired and observed.
struct BurstRecord {
  SimTime at = 0;
  std::int32_t url = -1;
  double rate = 0;
  std::int32_t count = 0;
  double pmb_ms = 0;      ///< Monitor estimate for this burst
  double mean_rt_ms = 0;  ///< Monitor damage estimate for this burst
  double ok_fraction = 1.0;  ///< responses that were not errors
};

/// Per-path attack parameters discovered during initialisation.
struct PathPlan {
  std::int32_t url = -1;
  double baseline_ms = 0;
  double rate = 0;            ///< B_i
  std::int32_t count = 0;     ///< B_i * L_i in requests
  double measured_pmb_ms = 0; ///< P_MB at the calibrated volume
  model::BlockingKind kind = model::BlockingKind::kCrossTier;

  double length_s() const {
    return rate > 0 ? static_cast<double>(count) / rate : 0;
  }
  double volume() const { return static_cast<double>(count); }
};

/// Open-loop replay of a previously calibrated campaign: the per-path plans
/// plus the steady firing intervals observed in a reference run. Installed
/// with GroupCommander::SetReplay() before Initialize(); calibration is then
/// skipped entirely and the burst loop fires the fixed plans at the fixed
/// intervals with NO feedback adaptation of volume or cadence. This is how
/// the defense benches hold the attack constant while toggling the
/// deployment under it ("same campaign, defense toggled") — a re-optimizing
/// attacker is a different experiment.
struct GroupReplay {
  std::vector<PathPlan> plans;
  /// Aligned with `plans`; 0 (or missing) falls back to the default cadence.
  std::vector<SimDuration> intervals;
  std::int32_t paths_used = 0;  ///< m; 0 = all plans
};

/// Attack-time telemetry for one dependency group.
struct GroupStats {
  std::vector<PathPlan> plans;            ///< all calibrated paths, ranked
  std::int32_t paths_used = 0;            ///< m
  std::vector<BurstRecord> bursts;
  TimeSeries tmin_est_ms;                 ///< Kalman t_min after each burst
  TimeSeries pmb_est_ms;                  ///< Kalman P_MB after each burst
  TimeSeries burst_volume;                ///< requests per burst over time
  std::uint64_t attack_requests = 0;

  double MeanPmbMs() const;
  double MeanTminMs() const;
};

/// Drives the Grunt attack against ONE dependency group: calibrates each
/// member path (min B, max L), ranks candidates by blocking kind and volume
/// (Sec III-C), finds the minimum number of paths m that meets the damage
/// goal, then runs the alternating-burst loop with Kalman-filtered feedback
/// until told to stop.
class GroupCommander {
 public:
  /// `group` lists the member URL ids; `profile` supplies baselines and the
  /// pairwise evidence used for ranking.
  GroupCommander(TargetClient& target, BotFarm& bots, CommanderConfig cfg,
                 std::vector<std::int32_t> group, const ProfileResult& profile);

  /// Installs a pre-calibrated open-loop schedule; must be called before
  /// Initialize(). See GroupReplay.
  void SetReplay(GroupReplay replay) { replay_ = std::move(replay); }

  /// Phase 1+2: per-path calibration and m search; `done` fires when the
  /// group is ready to attack. With a replay installed, both phases are
  /// skipped and the group is ready immediately.
  void Initialize(std::function<void()> done);

  /// Phase 3: attack until `until` (target clock), then `done`.
  void Attack(SimTime until, std::function<void()> done);

  const GroupStats& stats() const { return stats_; }
  bool initialized() const { return initialized_; }

 private:
  struct PathRuntime {
    PathPlan plan;
    ScalarKalman pmb_kf;
    ScalarKalman tmin_kf;  ///< per-path damage estimate (diagnostics)
    SimDuration interval = Ms(450);
    bool inflight = false;  ///< a burst on this path is awaiting responses
  };

  // Initialisation state machine.
  void CalibratePath(std::size_t idx, std::function<void()> done);
  void FindMinRate(std::size_t idx, double rate, std::function<void()> done);
  void FindMaxCount(std::size_t idx, std::int32_t count,
                    std::int32_t last_good, double last_good_pmb,
                    std::function<void()> done);
  void RankAndTrim();
  void TrialRun(std::int32_t m, std::function<void()> done);

  // Periodic burst engine (Sec III-B: the next burst fires one interval
  // after the previous burst STARTS, overlapping its drain so the blocking
  // effect never lapses).
  struct LoopCtx {
    std::int32_t m = 1;          ///< paths in rotation
    SimTime until = 0;
    bool trial = false;          ///< record into trial_rts_, send as probes
    std::function<void()> done;
    std::size_t idx = 0;         ///< rotation position
  };
  void FireInitialMixedBurst();
  void FireLoop(std::shared_ptr<LoopCtx> ctx);
  /// Monitor-module probe loop: runs alongside FireLoop for the same ctx.
  void ProbeLoop(std::shared_ptr<LoopCtx> ctx, std::size_t probe_idx);
  void OnBurstDone(std::size_t path_idx, const BurstObservation& obs,
                   bool trial);

  double BaselineOf(std::int32_t url) const;
  /// Probe-until-quiet cool-down on one path.
  void SettleQuiet(std::int32_t url, std::function<void()> done);

  TargetClient& target_;
  BotFarm& bots_;
  CommanderConfig cfg_;
  std::vector<std::int32_t> group_;
  const ProfileResult& profile_;
  std::vector<PathRuntime> paths_;  ///< ranked after calibration
  std::optional<GroupReplay> replay_;
  GroupStats stats_;
  bool initialized_ = false;
  bool attacking_ = false;
  mutable bool warned_fallback_baseline_ = false;
  SimTime attack_until_ = 0;
  std::function<void()> attack_done_;
  std::vector<double> trial_rts_;  ///< burst mean RTs of the current trial
  double trial_tmin_ms_ = 0;  ///< damage seen during the last trial cycle
  std::int32_t outstanding_bursts_ = 0;
  double last_tmin_est_ms_ = 0;
  /// Group-level damage estimator fed by the light probes.
  ScalarKalman group_tmin_kf_{400.0, 2500.0, 0.0, 1e5};
};

}  // namespace grunt::attack
