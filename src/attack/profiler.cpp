#include "attack/profiler.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "util/logging.h"

namespace grunt::attack {

trace::DepType ProfileResult::InferredType(std::int32_t a,
                                           std::int32_t b) const {
  for (const auto& ev : evidence) {
    if (ev.a == a && ev.b == b) return ev.inferred;
    if (ev.a == b && ev.b == a) {
      // Swap direction of sequential verdicts.
      switch (ev.inferred) {
        case trace::DepType::kSequentialAUp:
          return trace::DepType::kSequentialBUp;
        case trace::DepType::kSequentialBUp:
          return trace::DepType::kSequentialAUp;
        default:
          return ev.inferred;
      }
    }
  }
  return trace::DepType::kNone;
}

Profiler::Profiler(TargetClient& target, BotFarm& bots, ProfilerConfig cfg)
    : target_(target), bots_(bots), cfg_(std::move(cfg)) {
  if (cfg_.volume_sweep.empty()) {
    throw std::invalid_argument("Profiler: empty volume sweep");
  }
  if (!std::is_sorted(cfg_.volume_sweep.begin(), cfg_.volume_sweep.end())) {
    throw std::invalid_argument("Profiler: volume sweep must ascend");
  }
}

void Profiler::Run(std::function<void(ProfileResult)> done) {
  if (running_) throw std::logic_error("Profiler: already running");
  running_ = true;
  done_ = std::move(done);

  result_ = ProfileResult{};
  result_.urls = target_.CrawlUrls();
  std::int32_t max_id = -1;
  for (const auto& url : result_.urls) {
    max_id = std::max(max_id, url.url_id);
    if (!url.looks_static) result_.candidates.push_back(url.url_id);
  }
  result_.baseline_rt_ms.assign(static_cast<std::size_t>(max_id + 1), 0.0);

  for (std::size_t i = 0; i < result_.candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < result_.candidates.size(); ++j) {
      pair_list_.emplace_back(result_.candidates[i], result_.candidates[j]);
    }
  }

  if (result_.candidates.empty()) {
    Finish();
    return;
  }
  MeasureBaseline(0);
}

void Profiler::MeasureBaseline(std::size_t candidate_idx) {
  if (candidate_idx >= result_.candidates.size()) {
    if (pair_list_.empty()) {
      Finish();
    } else {
      StartPair(0);
    }
    return;
  }
  const std::int32_t url = result_.candidates[candidate_idx];
  ProbeSender::Send(
      target_, bots_, url, cfg_.baseline_probes, cfg_.baseline_gap,
      [this, candidate_idx, url](BurstObservation obs) {
        result_.baseline_rt_ms[static_cast<std::size_t>(url)] =
            obs.MedianRtMs();
        target_.After(cfg_.settle,
                      [this, candidate_idx] {
                        MeasureBaseline(candidate_idx + 1);
                      });
      });
}

void Profiler::SettleQuiet(std::vector<std::int32_t> urls,
                           std::int32_t tries_left,
                           std::function<void()> done) {
  std::vector<double> baselines;
  baselines.reserve(urls.size());
  for (std::int32_t url : urls) {
    baselines.push_back(result_.baseline_rt_ms[static_cast<std::size_t>(url)]);
  }
  SettleUntilQuiet(target_, bots_, std::move(urls), std::move(baselines),
                   cfg_.settle, tries_left, cfg_.settle_factor,
                   std::move(done));
}

void Profiler::StartPair(std::size_t pair_idx) {
  if (pair_idx >= pair_list_.size()) {
    Finish();
    return;
  }
  PairEvidence ev;
  ev.a = pair_list_[pair_idx].first;
  ev.b = pair_list_[pair_idx].second;
  result_.evidence.push_back(std::move(ev));
  StartVolume(pair_idx, 0);
}

void Profiler::StartVolume(std::size_t pair_idx, std::size_t vol_idx) {
  PairEvidence& ev = result_.evidence.back();
  if (vol_idx >= cfg_.volume_sweep.size() || PairDecided(ev)) {
    FinishPair(pair_idx);
    return;
  }
  const std::int32_t volume = cfg_.volume_sweep[vol_idx];
  ev.volumes.push_back(volume);

  // Direction 1: burst `a`, probe `b`.
  const std::vector<std::int32_t> involved = {ev.a, ev.b};
  RunDirection(
      pair_idx, vol_idx, /*reversed=*/false,
      [this, pair_idx, vol_idx, involved](bool a_blocks_b, double pmb_a) {
        result_.evidence.back().a_blocks_b.push_back(a_blocks_b);
        SettleQuiet(involved, cfg_.settle_max_tries, [this, pair_idx, vol_idx,
                                                      involved, pmb_a] {
          // Direction 2: burst `b`, probe `a` (Fig 10's order swap).
          RunDirection(
              pair_idx, vol_idx, /*reversed=*/true,
              [this, pair_idx, vol_idx, involved, pmb_a](bool b_blocks_a,
                                                         double pmb_b) {
                result_.evidence.back().b_blocks_a.push_back(b_blocks_a);
                const bool stealth_capped =
                    pmb_a > cfg_.pmb_limit_ms || pmb_b > cfg_.pmb_limit_ms;
                SettleQuiet(involved, cfg_.settle_max_tries,
                            [this, pair_idx, vol_idx, stealth_capped] {
                              if (stealth_capped) {
                                FinishPair(pair_idx);
                              } else {
                                StartVolume(pair_idx, vol_idx + 1);
                              }
                            });
              });
        });
      });
}

void Profiler::RunDirection(
    std::size_t pair_idx, std::size_t vol_idx, bool reversed,
    std::function<void(bool interfered, double pmb_ms)> done) {
  RunDirectionOnce(
      pair_idx, vol_idx, reversed,
      [this, pair_idx, vol_idx, reversed, done = std::move(done)](
          bool interfered, double pmb_ms) mutable {
        if (!interfered || !cfg_.confirm_positives) {
          done(interfered, pmb_ms);
          return;
        }
        // Confirmation pass: cool down, repeat, and require the
        // interference to fire again.
        const PairEvidence& ev = result_.evidence.back();
        SettleQuiet({ev.a, ev.b}, cfg_.settle_max_tries,
                    [this, pair_idx, vol_idx, reversed,
                     done = std::move(done)]() mutable {
                      RunDirectionOnce(pair_idx, vol_idx, reversed,
                                       std::move(done));
                    });
      });
}

void Profiler::RunDirectionOnce(
    std::size_t pair_idx, std::size_t vol_idx, bool reversed,
    std::function<void(bool interfered, double pmb_ms)> done) {
  const PairEvidence& ev = result_.evidence.back();
  const Direction dir = reversed ? Direction{ev.b, ev.a}
                                 : Direction{ev.a, ev.b};
  const std::int32_t volume = cfg_.volume_sweep[vol_idx];
  const double length_s = static_cast<double>(volume) / cfg_.burst_rate;

  // Shared completion state: both the burst and the victim probes must
  // finish before we can render a verdict.
  struct Joint {
    bool burst_done = false;
    bool probes_done = false;
    double pmb_ms = 0;
    double victim_mean_ms = 0;
    std::function<void(bool, double)> done;
  };
  auto joint = std::make_shared<Joint>();
  joint->done = std::move(done);
  const double victim_baseline =
      result_.baseline_rt_ms[static_cast<std::size_t>(dir.victim_url)];
  auto maybe_finish = [this, joint, victim_baseline] {
    if (joint->burst_done && joint->probes_done) {
      joint->done(Interfered(joint->victim_mean_ms, victim_baseline),
                  joint->pmb_ms);
    }
  };
  (void)pair_idx;

  BurstSender::Send(target_, bots_, dir.burst_url, cfg_.heavy_bursts,
                    cfg_.burst_rate, volume, /*attack_traffic=*/false,
                    [joint, maybe_finish](BurstObservation obs) {
                      joint->pmb_ms = obs.EstimatePmbMs();
                      joint->burst_done = true;
                      maybe_finish();
                    });

  // Victim probes land inside the blocking window: from mid-burst to just
  // past the burst's end (the queue peaks at burst end).
  const auto first_probe = static_cast<SimDuration>(length_s * 0.5 * 1e6);
  target_.After(first_probe, [this, dir, joint, maybe_finish] {
    ProbeSender::Send(target_, bots_, dir.victim_url, cfg_.victim_probes,
                      Ms(30), [joint, maybe_finish](BurstObservation obs) {
                        joint->victim_mean_ms = obs.MedianRtMs();
                        joint->probes_done = true;
                        maybe_finish();
                      });
  });
}

bool Profiler::Interfered(double victim_mean_ms, double baseline_ms) const {
  const double threshold =
      std::max(cfg_.interference_factor * baseline_ms,
               baseline_ms + cfg_.interference_floor_ms);
  return victim_mean_ms > threshold;
}

bool Profiler::PairDecided(const PairEvidence& ev) const {
  if (ev.a_blocks_b.empty() || ev.b_blocks_a.empty()) return false;
  // Persistent interference is judged at the lowest volume: any combination
  // involving interference there (mutual or sequential) is already decided;
  // otherwise the first interference at a higher volume proves parallel.
  if (ev.a_blocks_b.front() || ev.b_blocks_a.front()) return true;
  return ev.a_blocks_b.back() || ev.b_blocks_a.back();
}

trace::DepType Profiler::ClassifyEvidence(const PairEvidence& ev) {
  const auto any = [](const std::vector<bool>& v) {
    return std::any_of(v.begin(), v.end(), [](bool x) { return x; });
  };
  const bool any_a = any(ev.a_blocks_b);
  const bool any_b = any(ev.b_blocks_a);
  if (!any_a && !any_b) return trace::DepType::kNone;
  const bool pers_a = !ev.a_blocks_b.empty() && ev.a_blocks_b.front();
  const bool pers_b = !ev.b_blocks_a.empty() && ev.b_blocks_a.front();
  if (pers_a && pers_b) return trace::DepType::kMutual;
  if (pers_a) return trace::DepType::kSequentialAUp;
  if (pers_b) return trace::DepType::kSequentialBUp;
  // Interference exists but only above some volume: cross-tier overflow in
  // at least one direction — parallel dependency.
  return trace::DepType::kParallel;
}

void Profiler::FinishPair(std::size_t pair_idx) {
  PairEvidence& ev = result_.evidence.back();
  ev.inferred = ClassifyEvidence(ev);
  if (trace::IsDependent(ev.inferred)) {
    trace::PairwiseDep dep;
    dep.a = ev.a;
    dep.b = ev.b;
    dep.type = ev.inferred;
    result_.pairs.push_back(dep);
  }
  StartPair(pair_idx + 1);
}

void Profiler::Finish() {
  // Union dependent pairs into groups over url-id space.
  std::int32_t max_id = -1;
  for (const auto& url : result_.urls) max_id = std::max(max_id, url.url_id);
  trace::DependencyGroups groups(static_cast<std::size_t>(max_id + 1));
  for (const auto& p : result_.pairs) groups.Union(p.a, p.b);
  result_.groups.clear();
  for (const auto& group : groups.Groups()) {
    // Report only groups over profiled candidates (skip static URLs).
    std::vector<std::int32_t> members;
    for (auto id : group) {
      if (std::find(result_.candidates.begin(), result_.candidates.end(),
                    id) != result_.candidates.end()) {
        members.push_back(id);
      }
    }
    if (!members.empty()) result_.groups.push_back(std::move(members));
  }
  running_ = false;
  if (done_) done_(result_);
}

}  // namespace grunt::attack
