#pragma once

#include <unordered_map>

#include "attack/target_client.h"
#include "microsvc/cluster.h"

namespace grunt::attack {

/// Binds the blackbox TargetClient interface to the simulated cluster. The
/// adapter exposes exactly what a real attacker would have: the URL catalog
/// (request-type names) and end-to-end response times. Responses arrive
/// through the cluster's telemetry completion channel — the same observation
/// path the monitors use — matched to in-flight sends by request id.
class SimTargetClient : public TargetClient {
 public:
  struct Options {
    /// Fraction of the target's dynamic URLs the crawler discovers. The
    /// paper's Limitation #3: requests needing input parameters the crawler
    /// cannot guess "may leave some critical paths undiscovered". 1.0 =
    /// perfect crawl. The subset is deterministic per seed.
    double crawl_coverage = 1.0;
    std::uint64_t crawl_seed = 1;
  };

  explicit SimTargetClient(microsvc::Cluster& cluster);
  SimTargetClient(microsvc::Cluster& cluster, Options opts);
  ~SimTargetClient() override;

  SimTargetClient(const SimTargetClient&) = delete;
  SimTargetClient& operator=(const SimTargetClient&) = delete;

  std::vector<PublicUrl> CrawlUrls() override;
  void Send(std::int32_t url_id, bool heavy, std::uint64_t bot_id,
            bool attack_traffic, ResponseCallback on_response) override;
  SimTime Now() const override;
  void After(SimDuration delay, std::function<void()> fn) override;

  std::uint64_t requests_sent() const { return requests_sent_; }

 private:
  microsvc::Cluster& cluster_;
  Options opts_;
  std::uint64_t requests_sent_ = 0;
  telemetry::SubscriptionId completion_sub_ = 0;
  /// In-flight sends awaiting their completion record, by request id.
  std::unordered_map<std::uint64_t, ResponseCallback> pending_;
};

}  // namespace grunt::attack
