#include "attack/kalman.h"

#include <stdexcept>

namespace grunt::attack {

ScalarKalman::ScalarKalman(double process_var, double measurement_var,
                           double initial, double initial_var)
    : q_(process_var), r_(measurement_var), x_(initial), p_(initial_var) {
  if (q_ < 0 || r_ <= 0 || p_ < 0) {
    throw std::invalid_argument("ScalarKalman: variances must be positive");
  }
}

double ScalarKalman::Update(double measurement) {
  // Predict: constant-state model, uncertainty grows by Q.
  p_ += q_;
  // Update.
  const double gain = p_ / (p_ + r_);
  x_ += gain * (measurement - x_);
  p_ *= (1.0 - gain);
  last_gain_ = gain;
  return x_;
}

}  // namespace grunt::attack
