#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/time_types.h"

namespace grunt::attack {

/// What crawling the target's public URLs reveals about one endpoint
/// (Sec IV-C "Extracting supported critical paths via public URLs").
struct PublicUrl {
  std::int32_t url_id = -1;
  std::string path;  ///< e.g. "/api/compose-post"
  /// Heuristic from crawling: static/cached assets are served at the edge
  /// and excluded from profiling.
  bool looks_static = false;
};

/// The only window the attack library has onto the target system: crawl the
/// public URL catalog, send legitimate HTTP requests, observe start/end
/// timestamps, and schedule its own future actions. No internal topology,
/// utilization, or queue state is reachable through this interface —
/// enforcing the paper's external-attacker threat model by construction.
class TargetClient {
 public:
  virtual ~TargetClient() = default;

  /// Outcome of one request as the sender observes it. `ok` is false when
  /// the target answered with an error (gateway timeout, 503 shed, …) —
  /// still a timed observation: the attacker sees WHEN the error arrived,
  /// never why.
  using ResponseCallback =
      std::function<void(SimTime sent_at, SimTime completed_at, bool ok)>;

  /// Crawls the target's public URLs (paper: PhantomJS-driven crawling).
  virtual std::vector<PublicUrl> CrawlUrls() = 0;

  /// Sends one request for `url_id` now, attributed to `bot_id` (its source
  /// IP / session). `heavy` picks the heaviest legal variant of the endpoint
  /// (e.g. maximum-size media upload). `attack_traffic` is measurement-only
  /// metadata used by the evaluation to attribute load; the target cannot
  /// observe it.
  virtual void Send(std::int32_t url_id, bool heavy, std::uint64_t bot_id,
                    bool attack_traffic, ResponseCallback on_response) = 0;

  /// Attacker's clock (wall clock from the attacker's vantage point).
  virtual SimTime Now() const = 0;

  /// Schedules attacker-side work (burst pacing, intervals).
  virtual void After(SimDuration delay, std::function<void()> fn) = 0;
};

}  // namespace grunt::attack
