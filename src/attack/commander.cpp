#include "attack/commander.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "util/logging.h"

namespace grunt::attack {

double GroupStats::MeanPmbMs() const {
  if (bursts.empty()) return 0;
  double total = 0;
  std::size_t n = 0;
  for (const auto& b : bursts) {
    if (b.pmb_ms > 0) {
      total += b.pmb_ms;
      ++n;
    }
  }
  return n == 0 ? 0 : total / static_cast<double>(n);
}

double GroupStats::MeanTminMs() const {
  if (bursts.empty()) return 0;
  double total = 0;
  for (const auto& b : bursts) total += b.mean_rt_ms;
  return total / static_cast<double>(bursts.size());
}

GroupCommander::GroupCommander(TargetClient& target, BotFarm& bots,
                               CommanderConfig cfg,
                               std::vector<std::int32_t> group,
                               const ProfileResult& profile)
    : target_(target), bots_(bots), cfg_(cfg), group_(std::move(group)),
      profile_(profile) {
  if (group_.empty()) {
    throw std::invalid_argument("GroupCommander: empty group");
  }
}

double GroupCommander::BaselineOf(std::int32_t url) const {
  const auto idx = static_cast<std::size_t>(url);
  if (idx < profile_.baseline_rt_ms.size() &&
      profile_.baseline_rt_ms[idx] > 0) {
    return profile_.baseline_rt_ms[idx];
  }
  if (!warned_fallback_baseline_) {
    warned_fallback_baseline_ = true;
    LogWarn() << "commander: no measured baseline for url " << url
              << "; assuming " << cfg_.fallback_baseline_ms
              << " ms (cfg.fallback_baseline_ms) — settle/trigger "
              << "thresholds will be off if the real baseline differs";
  }
  return cfg_.fallback_baseline_ms;
}

void GroupCommander::SettleQuiet(std::int32_t url,
                                 std::function<void()> done) {
  SettleUntilQuiet(target_, bots_, {url}, {BaselineOf(url)}, cfg_.settle,
                   cfg_.settle_max_tries, cfg_.settle_factor, std::move(done));
}

void GroupCommander::Initialize(std::function<void()> done) {
  if (replay_) {
    // Open-loop replay: install the reference campaign's plans verbatim —
    // no calibration traffic, no m search.
    paths_.clear();
    const GroupReplay& r = *replay_;
    for (std::size_t i = 0; i < r.plans.size(); ++i) {
      const SimDuration interval =
          i < r.intervals.size() && r.intervals[i] > 0 ? r.intervals[i]
                                                       : Ms(450);
      PathRuntime rt{
          r.plans[i],
          ScalarKalman(cfg_.kf_process_var, cfg_.kf_measurement_var,
                       cfg_.pmb_limit_ms * cfg_.pmb_target_fraction, 1e4),
          ScalarKalman(cfg_.kf_process_var, cfg_.kf_measurement_var,
                       cfg_.target_tmin_ms, 1e5),
          interval};
      paths_.push_back(std::move(rt));
    }
    if (paths_.empty()) {
      throw std::invalid_argument("GroupCommander: empty replay");
    }
    stats_.paths_used =
        r.paths_used > 0
            ? std::min<std::int32_t>(
                  r.paths_used, static_cast<std::int32_t>(paths_.size()))
            : static_cast<std::int32_t>(paths_.size());
    for (const auto& p : paths_) stats_.plans.push_back(p.plan);
    initialized_ = true;
    done();
    return;
  }
  paths_.clear();
  for (std::int32_t url : group_) {
    PathRuntime rt{
        PathPlan{url, BaselineOf(url), 0, 0, 0,
                 model::KindFromDependencies(url, profile_.pairs)},
        ScalarKalman(cfg_.kf_process_var, cfg_.kf_measurement_var,
                     cfg_.pmb_limit_ms * cfg_.pmb_target_fraction, 1e4),
        ScalarKalman(cfg_.kf_process_var, cfg_.kf_measurement_var,
                     cfg_.target_tmin_ms, 1e5),
        Ms(450)};
    paths_.push_back(std::move(rt));
  }
  CalibratePath(0, [this, done = std::move(done)]() mutable {
    RankAndTrim();
    TrialRun(1, [this, done = std::move(done)] {
      initialized_ = true;
      for (const auto& p : paths_) stats_.plans.push_back(p.plan);
      done();
    });
  });
}

void GroupCommander::CalibratePath(std::size_t idx,
                                   std::function<void()> done) {
  if (idx >= paths_.size()) {
    done();
    return;
  }
  FindMinRate(idx, cfg_.rate_sweep_lo,
              [this, idx, done = std::move(done)]() mutable {
                FindMaxCount(idx, cfg_.rate_probe_count, /*last_good=*/0,
                             /*last_good_pmb=*/0,
                             [this, idx, done = std::move(done)]() mutable {
                               SettleQuiet(paths_[idx].plan.url,
                                           [this, idx,
                                            done = std::move(done)] {
                                             CalibratePath(idx + 1, done);
                                           });
                             });
              });
}

void GroupCommander::FindMinRate(std::size_t idx, double rate,
                                 std::function<void()> done) {
  PathRuntime& p = paths_[idx];
  if (rate > cfg_.rate_sweep_hi) {
    // Never saturated within the sweep: use the top rate; the path will
    // contribute little and ranking will push it last.
    p.plan.rate = cfg_.rate_sweep_hi;
    done();
    return;
  }
  BurstSender::Send(
      target_, bots_, p.plan.url, /*heavy=*/true, rate, cfg_.rate_probe_count,
      /*attack_traffic=*/false,
      [this, idx, rate, done = std::move(done)](BurstObservation obs) mutable {
        PathRuntime& path = paths_[idx];
        const double threshold =
            std::max(cfg_.trigger_factor * path.plan.baseline_ms,
                     path.plan.baseline_ms + cfg_.trigger_floor_ms);
        // Saturation shows either as inflated RT or, against a target with
        // timeouts/shedding deployed, as an error spike at bounded RT.
        const bool triggered =
            obs.MeanRtMs() > threshold ||
            1.0 - obs.OkFraction() > cfg_.trigger_error_fraction;
        SettleQuiet(path.plan.url,
                    [this, idx, rate, triggered,
                     done = std::move(done)]() mutable {
          if (triggered) {
            paths_[idx].plan.rate = rate;
            done();
          } else {
            FindMinRate(idx, rate * 2.0, std::move(done));
          }
        });
      });
}

void GroupCommander::FindMaxCount(std::size_t idx, std::int32_t count,
                                  std::int32_t last_good,
                                  double last_good_pmb,
                                  std::function<void()> done) {
  PathRuntime& p = paths_[idx];
  if (count > cfg_.max_count) {
    p.plan.count = std::max(cfg_.min_count, last_good);
    p.plan.measured_pmb_ms = last_good_pmb;
    done();
    return;
  }
  BurstSender::Send(
      target_, bots_, p.plan.url, /*heavy=*/true, p.plan.rate, count,
      /*attack_traffic=*/false,
      [this, idx, count, last_good, last_good_pmb,
       done = std::move(done)](BurstObservation obs) mutable {
        const double pmb = obs.EstimatePmbMs();
        const double cap = cfg_.pmb_limit_ms * cfg_.pmb_target_fraction;
        SettleQuiet(paths_[idx].plan.url,
                    [this, idx, count, last_good, last_good_pmb, pmb, cap,
                     done = std::move(done)]() mutable {
          PathRuntime& path = paths_[idx];
          if (pmb > cap) {
            // Overshot the stealth cap: keep the previous volume.
            path.plan.count = std::max(cfg_.min_count,
                                       last_good > 0 ? last_good : count / 2);
            path.plan.measured_pmb_ms =
                last_good_pmb > 0 ? last_good_pmb : pmb;
            done();
          } else {
            FindMaxCount(idx, count * 2, count, pmb, std::move(done));
          }
        });
      });
}

void GroupCommander::RankAndTrim() {
  std::vector<model::Candidate> cands;
  for (const auto& p : paths_) {
    model::Candidate c;
    c.type = p.plan.url;
    c.kind = p.plan.kind;
    // Volume that produced (close to) the reference millibottleneck; paths
    // that never reached it sort naturally to the back via huge volume.
    c.volume_for_pmb = p.plan.measured_pmb_ms > 0
                           ? p.plan.volume() * cfg_.pmb_limit_ms /
                                 p.plan.measured_pmb_ms
                           : 1e18;
    cands.push_back(c);
  }
  cands = model::RankCandidates(std::move(cands));
  std::vector<PathRuntime> ranked;
  ranked.reserve(paths_.size());
  for (const auto& c : cands) {
    auto it = std::find_if(paths_.begin(), paths_.end(),
                           [&c](const PathRuntime& p) {
                             return p.plan.url == c.type;
                           });
    ranked.push_back(std::move(*it));
    paths_.erase(it);
  }
  paths_ = std::move(ranked);
  if (static_cast<std::int32_t>(paths_.size()) > cfg_.max_paths) {
    paths_.erase(paths_.begin() + cfg_.max_paths, paths_.end());
  }
}

void GroupCommander::TrialRun(std::int32_t m, std::function<void()> done) {
  m = std::min<std::int32_t>(m, static_cast<std::int32_t>(paths_.size()));
  stats_.paths_used = m;
  trial_rts_.clear();
  // Run the periodic engine for a couple of full rotations and judge the
  // sustained damage (Sec IV-D step 3: grow m until the goal is met).
  auto ctx = std::make_shared<LoopCtx>();
  ctx->m = m;
  ctx->until = target_.Now() + Ms(1500) + Ms(900) * m;
  ctx->trial = true;
  ctx->done = [this, m, done = std::move(done)]() mutable {
    // Skip the ramp-up third of the probe samples when judging.
    double mean = 0;
    std::size_t counted = 0;
    for (std::size_t i = trial_rts_.size() / 3; i < trial_rts_.size(); ++i) {
      mean += trial_rts_[i];
      ++counted;
    }
    if (counted > 0) mean /= static_cast<double>(counted);
    trial_tmin_ms_ = mean;
    const bool enough = mean >= cfg_.target_tmin_ms;
    const bool exhausted = m >= static_cast<std::int32_t>(paths_.size()) ||
                           m >= cfg_.max_paths;
    if (enough || exhausted) {
      stats_.paths_used = m;
      SettleQuiet(paths_.front().plan.url, std::move(done));
    } else {
      SettleQuiet(paths_.front().plan.url,
                  [this, m, done = std::move(done)] {
                    TrialRun(m + 1, std::move(done));
                  });
    }
  };
  FireLoop(ctx);
  ProbeLoop(ctx, 0);
}

void GroupCommander::Attack(SimTime until, std::function<void()> done) {
  if (!initialized_) throw std::logic_error("GroupCommander: not initialized");
  if (attacking_) throw std::logic_error("GroupCommander: already attacking");
  attacking_ = true;
  attack_until_ = until;
  attack_done_ = std::move(done);
  FireInitialMixedBurst();
}

void GroupCommander::FireInitialMixedBurst() {
  // Sec III-B: "We first use a mixed burst targeting all m critical paths to
  // create multiple blocking effects and quickly build up queues."
  const auto m = static_cast<std::size_t>(std::max(1, stats_.paths_used));
  for (std::size_t i = 0; i < m && i < paths_.size(); ++i) {
    PathRuntime& p = paths_[i];
    stats_.attack_requests += static_cast<std::uint64_t>(p.plan.count);
    BurstSender::Send(target_, bots_, p.plan.url, /*heavy=*/true, p.plan.rate,
                      p.plan.count, /*attack_traffic=*/true,
                      [this, i](BurstObservation obs) {
                        OnBurstDone(i, obs, /*trial=*/false);
                      });
  }
  auto ctx = std::make_shared<LoopCtx>();
  ctx->m = stats_.paths_used;
  ctx->until = attack_until_;
  ctx->trial = false;
  ctx->done = [this] {
    attacking_ = false;
    if (attack_done_) attack_done_();
  };
  // Begin the rotation one interval after the mixed volley.
  target_.After(paths_.front().interval, [this, ctx] { FireLoop(ctx); });
  ProbeLoop(ctx, 0);
}

void GroupCommander::ProbeLoop(std::shared_ptr<LoopCtx> ctx,
                               std::size_t probe_idx) {
  if (target_.Now() >= ctx->until) return;
  const std::size_t m = std::max<std::size_t>(
      1, std::min(paths_.size(), static_cast<std::size_t>(ctx->m)));
  const std::int32_t url = paths_[probe_idx % m].plan.url;
  const bool trial = ctx->trial;
  ProbeSender::Send(target_, bots_, url, /*count=*/1, Ms(10),
                    [this, trial](BurstObservation obs) {
                      const double rt = obs.MedianRtMs();
                      const double est = cfg_.use_kalman
                                             ? group_tmin_kf_.Update(rt)
                                             : rt;
                      last_tmin_est_ms_ = est;
                      if (trial) {
                        trial_rts_.push_back(rt);
                      } else {
                        stats_.tmin_est_ms.Add(target_.Now(), est);
                      }
                    });
  target_.After(cfg_.probe_period,
                [this, ctx, probe_idx] { ProbeLoop(ctx, probe_idx + 1); });
}

void GroupCommander::FireLoop(std::shared_ptr<LoopCtx> ctx) {
  if (target_.Now() >= ctx->until) {
    if (ctx->done) ctx->done();
    return;
  }
  // Stability guards: bounded in-flight feedback, back off on overshoot
  // (the feedback is delayed by the very damage it reports; unbounded
  // firing would run away).
  if (outstanding_bursts_ >= cfg_.max_inflight_bursts ||
      last_tmin_est_ms_ > cfg_.overshoot_factor * cfg_.target_tmin_ms) {
    target_.After(Ms(150), [this, ctx] { FireLoop(ctx); });
    return;
  }
  const auto m = static_cast<std::size_t>(std::max(1, ctx->m));
  // Pick the next path in rotation whose previous burst has drained (a
  // fresh burst on a still-bottlenecked service would stretch P_MB past the
  // stealth cap instead of adding damage).
  std::size_t path_idx = m;  // invalid
  for (std::size_t probe = 0; probe < m; ++probe) {
    const std::size_t cand =
        cfg_.alternate_paths ? (ctx->idx + probe) % m : 0;
    if (!paths_[cand].inflight) {
      path_idx = cand;
      ctx->idx = cfg_.alternate_paths ? cand + 1 : 0;
      break;
    }
    if (!cfg_.alternate_paths) break;
  }
  if (path_idx >= m) {
    target_.After(Ms(150), [this, ctx] { FireLoop(ctx); });
    return;
  }
  PathRuntime& p = paths_[path_idx];
  if (!ctx->trial) {
    stats_.attack_requests += static_cast<std::uint64_t>(p.plan.count);
  }
  const bool trial = ctx->trial;
  ++outstanding_bursts_;
  p.inflight = true;
  BurstSender::Send(target_, bots_, p.plan.url, /*heavy=*/true, p.plan.rate,
                    p.plan.count, /*attack_traffic=*/!trial,
                    [this, path_idx, trial](BurstObservation obs) {
                      --outstanding_bursts_;
                      paths_[path_idx].inflight = false;
                      OnBurstDone(path_idx, obs, trial);
                    });
  // Eq (9): the next burst fires one (feedback-adapted) damage interval
  // after this one STARTS, so blocking effects overlap and accumulate.
  target_.After(p.interval, [this, ctx] { FireLoop(ctx); });
}

void GroupCommander::OnBurstDone(std::size_t path_idx,
                                 const BurstObservation& obs, bool trial) {
  PathRuntime& p = paths_[path_idx];
  const double pmb_raw = obs.EstimatePmbMs();
  const double tmin_raw = obs.MeanRtMs();
  const double pmb_est = cfg_.use_kalman ? p.pmb_kf.Update(pmb_raw) : pmb_raw;
  p.tmin_kf.Update(tmin_raw);

  if (!trial) {
    const SimTime now = target_.Now();
    stats_.bursts.push_back({obs.burst_start, p.plan.url, p.plan.rate,
                             p.plan.count, pmb_raw, tmin_raw,
                             obs.OkFraction()});
    stats_.pmb_est_ms.Add(now, pmb_est);
    stats_.burst_volume.Add(now, static_cast<double>(p.plan.count));
  }

  // Open-loop replay: the schedule is frozen — keep the telemetry above but
  // never touch volume or cadence.
  if (replay_) return;

  // Adapt L (via count) so the created millibottleneck tracks the stealth
  // cap: linear P_MB-vs-L relation (Sec III summary).
  if (pmb_est > 1.0) {
    const double scale = std::clamp(
        cfg_.pmb_limit_ms * cfg_.pmb_target_fraction / pmb_est, 0.6, 1.6);
    p.plan.count = std::clamp<std::int32_t>(
        static_cast<std::int32_t>(std::lround(p.plan.count * scale)),
        cfg_.min_count, cfg_.max_count);
  }
  // Adapt the interval so the maintained damage tracks the goal: too much
  // damage -> widen (stealthier), too little -> tighten (Eq 8/9 feedback).
  // The damage signal is the probe-based estimate (legit-user view).
  const double ratio = last_tmin_est_ms_ / cfg_.target_tmin_ms;
  const double adj = std::clamp(ratio, 0.7, 1.4);
  // Per-service duty-cycle floor: this path's bottleneck gets hit once per
  // m rotation steps, so its busy fraction is pmb / (m * interval).
  const double m = static_cast<double>(std::max(1, stats_.paths_used));
  const auto duty_floor = static_cast<SimDuration>(
      pmb_est * 1000.0 / (cfg_.max_duty_cycle * m));
  const SimDuration lo = std::min(
      std::max(cfg_.min_interval, duty_floor), cfg_.max_interval);
  p.interval = std::clamp<SimDuration>(
      static_cast<SimDuration>(static_cast<double>(p.interval) * adj), lo,
      cfg_.max_interval);
}

}  // namespace grunt::attack
