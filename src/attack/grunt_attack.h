#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "attack/botfarm.h"
#include "attack/commander.h"
#include "attack/profiler.h"
#include "attack/target_client.h"

namespace grunt::attack {

/// End-to-end configuration of a Grunt attack campaign.
struct GruntConfig {
  ProfilerConfig profiler;
  CommanderConfig commander;
  BotFarm::Config botfarm;
  /// Attack the largest `max_groups` dependency groups (0 = all). Large
  /// systems let attackers hit only a subset of groups (Sec VI).
  std::size_t max_groups = 0;
  /// Skip groups smaller than this (a single isolated path yields little
  /// group-wide damage).
  std::size_t min_group_size = 1;
  /// Open-loop replay: one entry per attacked group, index-matched to the
  /// commanders a previous campaign with the SAME profile and group config
  /// created (group targeting is deterministic given the profile). When
  /// non-empty, calibration is skipped and the fixed schedules are fired
  /// with no feedback adaptation. See GroupReplay.
  std::vector<GroupReplay> replay;
};

/// Final campaign report.
struct GruntReport {
  ProfileResult profile;
  std::vector<GroupStats> groups;
  std::size_t bots_used = 0;
  std::uint64_t attack_requests = 0;

  double MeanPmbMs() const;
  double MeanTminMs() const;
};

/// Top-level orchestrator: Profile -> Initialize every group commander ->
/// attack all targeted groups concurrently until the deadline -> report.
/// Everything flows through the blackbox TargetClient.
class GruntAttack {
 public:
  GruntAttack(TargetClient& target, GruntConfig cfg);

  /// Full campaign (profiling included). `attack_duration` is how long the
  /// burst phase runs once profiling and calibration have finished.
  void Run(SimDuration attack_duration,
           std::function<void(const GruntReport&)> done);

  /// Campaign with a pre-computed profile (reused across runs, or supplied
  /// by ground truth in white-box ablations).
  void RunWithProfile(ProfileResult profile, SimDuration attack_duration,
                      std::function<void(const GruntReport&)> done);

  /// Fires when calibration completes and the burst phase begins (benches
  /// use this to bracket their measurement window).
  void OnAttackPhaseStart(std::function<void(SimTime)> cb) {
    attack_start_cb_ = std::move(cb);
  }

  const BotFarm& bots() const { return bots_; }
  const GruntReport& report() const { return report_; }

 private:
  void InitializeGroups(std::size_t idx, SimDuration attack_duration,
                        std::function<void(const GruntReport&)> done);
  void LaunchAttacks(SimDuration attack_duration,
                     std::function<void(const GruntReport&)> done);

  TargetClient& target_;
  GruntConfig cfg_;
  BotFarm bots_;
  std::unique_ptr<Profiler> profiler_;
  std::vector<std::unique_ptr<GroupCommander>> commanders_;
  GruntReport report_;
  std::function<void(SimTime)> attack_start_cb_;
};

}  // namespace grunt::attack
