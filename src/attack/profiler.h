#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "attack/botfarm.h"
#include "attack/burst.h"
#include "attack/target_client.h"
#include "trace/dependency.h"

namespace grunt::attack {

/// Tuning of the blackbox profiling procedure (Sec IV-C).
struct ProfilerConfig {
  /// Burst rate B used by profiling bursts (requests/second).
  double burst_rate = 800.0;
  /// Volume sweep, in requests per burst, low to high. The sweep for a pair
  /// stops early once a burst's estimated P_MB exceeds `pmb_limit_ms`
  /// (stealth requirement) or the pair is already classified.
  std::vector<std::int32_t> volume_sweep = {12, 24, 48, 96};
  double pmb_limit_ms = 500.0;

  /// Interference verdict: the victim probes' MEDIAN RT must exceed
  /// max(factor * baseline, baseline + floor_ms). Median over several
  /// probes keeps tail noise from fabricating dependencies.
  double interference_factor = 3.0;
  double interference_floor_ms = 60.0;

  std::int32_t baseline_probes = 10;  ///< per-URL baseline measurement
  SimDuration baseline_gap = Ms(300);
  std::int32_t victim_probes = 5;  ///< probes of the other path per test
  /// Cool-down between tests: after each test the profiler probes the
  /// involved URLs every `settle` until their RT is back near baseline (or
  /// `settle_max_tries` is hit), so residual queues from one test can never
  /// masquerade as interference in the next.
  SimDuration settle = Ms(500);
  std::int32_t settle_max_tries = 16;
  double settle_factor = 1.8;  ///< quiet when RT <= factor*baseline + 20ms
  /// Profiling bursts use the heaviest legal variant of each endpoint, like
  /// the attack itself will.
  bool heavy_bursts = true;
  /// Re-test every positive interference verdict once and require both
  /// tests to fire (squares the false-positive rate of tail noise; genuine
  /// blocking effects are deterministic and re-fire).
  bool confirm_positives = true;
};

/// Raw evidence gathered for one unordered pair of URLs.
struct PairEvidence {
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::vector<std::int32_t> volumes;   ///< volumes actually tested
  std::vector<bool> a_blocks_b;        ///< per volume
  std::vector<bool> b_blocks_a;        ///< per volume
  trace::DepType inferred = trace::DepType::kNone;
};

/// Everything the profiler learned, expressed over URL ids (== request type
/// ids in the simulated target). `groups` is what the Commander attacks.
struct ProfileResult {
  std::vector<PublicUrl> urls;              ///< full crawl
  std::vector<std::int32_t> candidates;     ///< dynamic URLs profiled
  std::vector<double> baseline_rt_ms;       ///< indexed by url_id (0 if n/a)
  std::vector<PairEvidence> evidence;
  std::vector<trace::PairwiseDep> pairs;    ///< inferred dependencies
  std::vector<std::vector<std::int32_t>> groups;  ///< dependency groups

  /// Inferred dependency type for an unordered pair (kNone when unprofiled).
  trace::DepType InferredType(std::int32_t a, std::int32_t b) const;
};

/// Blackbox Profiler module (Sec IV-C): crawls the URL catalog, measures
/// per-URL baselines, tests pairwise performance interference across a
/// volume sweep in both burst orders, classifies each pair as
/// none/parallel/sequential/mutual, and unions dependent pairs into
/// dependency groups. Runs entirely through the TargetClient interface.
class Profiler {
 public:
  Profiler(TargetClient& target, BotFarm& bots, ProfilerConfig cfg);

  /// Starts profiling; `done` fires (as a target-clock event) with the
  /// finished result. One Run per Profiler instance.
  void Run(std::function<void(ProfileResult)> done);

 private:
  struct Direction {
    std::int32_t burst_url;
    std::int32_t victim_url;
  };

  void MeasureBaseline(std::size_t candidate_idx);
  /// Probes `urls` every cfg_.settle until all are back near baseline, then
  /// calls `done`.
  void SettleQuiet(std::vector<std::int32_t> urls, std::int32_t tries_left,
                   std::function<void()> done);
  void StartPair(std::size_t pair_idx);
  void StartVolume(std::size_t pair_idx, std::size_t vol_idx);
  void RunDirection(std::size_t pair_idx, std::size_t vol_idx, bool reversed,
                    std::function<void(bool interfered, double pmb_ms)> done);
  void RunDirectionOnce(
      std::size_t pair_idx, std::size_t vol_idx, bool reversed,
      std::function<void(bool interfered, double pmb_ms)> done);
  void FinishPair(std::size_t pair_idx);
  void Finish();
  bool Interfered(double victim_mean_ms, double baseline_ms) const;
  /// True once the evidence so far pins the pair's class down (sweep can
  /// stop early).
  bool PairDecided(const PairEvidence& ev) const;
  static trace::DepType ClassifyEvidence(const PairEvidence& ev);

  TargetClient& target_;
  BotFarm& bots_;
  ProfilerConfig cfg_;
  ProfileResult result_;
  std::vector<std::pair<std::int32_t, std::int32_t>> pair_list_;
  std::function<void(ProfileResult)> done_;
  bool running_ = false;
};

}  // namespace grunt::attack
