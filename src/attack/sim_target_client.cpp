#include "attack/sim_target_client.h"

#include <stdexcept>

#include "util/rng.h"

namespace grunt::attack {

SimTargetClient::SimTargetClient(microsvc::Cluster& cluster)
    : SimTargetClient(cluster, Options{}) {}

SimTargetClient::SimTargetClient(microsvc::Cluster& cluster, Options opts)
    : cluster_(cluster), opts_(opts) {
  if (opts_.crawl_coverage <= 0.0 || opts_.crawl_coverage > 1.0) {
    throw std::invalid_argument("SimTargetClient: coverage must be in (0,1]");
  }
  // Responses come off the completion channel like any other observer's;
  // records for requests this client never sent miss the map and are
  // ignored. Construct the client after the cloud-side observers so its
  // callbacks keep firing after theirs (subscribers run in registration
  // order).
  completion_sub_ = cluster_.telemetry().completion().Subscribe(
      [this](const microsvc::CompletionRecord& rec) {
        const auto it = pending_.find(rec.request_id);
        if (it == pending_.end()) return;
        ResponseCallback cb = std::move(it->second);
        pending_.erase(it);
        if (cb) cb(rec.start, rec.end, rec.outcome == microsvc::Outcome::kOk);
      });
}

SimTargetClient::~SimTargetClient() {
  cluster_.telemetry().completion().Unsubscribe(completion_sub_);
}

std::vector<PublicUrl> SimTargetClient::CrawlUrls() {
  std::vector<PublicUrl> urls;
  const auto& app = cluster_.app();
  RngStream rng(opts_.crawl_seed, "crawler." + app.name());
  for (std::size_t i = 0; i < app.request_type_count(); ++i) {
    const auto& spec = app.request_type(static_cast<std::int32_t>(i));
    // Imperfect crawling (paper Limitation #3): some dynamic endpoints need
    // input parameters the crawler cannot synthesize. The draw is consumed
    // for every URL so the discovered subset is stable per seed.
    const bool discovered = rng.NextBool(opts_.crawl_coverage);
    if (!spec.is_static && !discovered && opts_.crawl_coverage < 1.0) {
      continue;
    }
    PublicUrl url;
    url.url_id = static_cast<std::int32_t>(i);
    url.path = "/" + spec.name;
    url.looks_static = spec.is_static;
    urls.push_back(std::move(url));
  }
  // A crawl that found nothing dynamic retries with the trivial entry page
  // (never realistic to find zero URLs on a public site).
  if (urls.empty() && app.request_type_count() > 0) {
    PublicUrl url;
    url.url_id = 0;
    url.path = "/" + app.request_type(0).name;
    url.looks_static = app.request_type(0).is_static;
    urls.push_back(std::move(url));
  }
  return urls;
}

void SimTargetClient::Send(std::int32_t url_id, bool heavy,
                           std::uint64_t bot_id, bool attack_traffic,
                           ResponseCallback on_response) {
  ++requests_sent_;
  const auto cls = attack_traffic ? microsvc::RequestClass::kAttack
                                  : microsvc::RequestClass::kProbe;
  // Completion can only fire from a later simulation event, so registering
  // the callback after Submit returns the id is race-free.
  const std::uint64_t rid = cluster_.Submit(url_id, cls, heavy, bot_id);
  pending_.emplace(rid, std::move(on_response));
}

SimTime SimTargetClient::Now() const {
  return cluster_.simulation().Now();
}

void SimTargetClient::After(SimDuration delay, std::function<void()> fn) {
  cluster_.simulation().After(delay, std::move(fn));
}

}  // namespace grunt::attack
