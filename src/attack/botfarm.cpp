#include "attack/botfarm.h"

#include <limits>

namespace grunt::attack {

BotFarm::BotFarm(Config cfg) : cfg_(cfg) {}

std::optional<std::uint64_t> BotFarm::Acquire(SimTime now) {
  // Round-robin scan from the cursor so reuse spreads evenly across bots.
  const std::size_t n = last_used_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t idx = (cursor_ + probe) % n;
    if (now - last_used_[idx] >= cfg_.min_spacing) {
      last_used_[idx] = now;
      cursor_ = (idx + 1) % n;
      ++requests_sent_;
      return cfg_.bot_id_base + idx;
    }
  }
  // Everyone is cooling down: recruit a new bot, unless the budget is spent.
  if (cfg_.max_bots > 0 && last_used_.size() >= cfg_.max_bots) {
    return std::nullopt;
  }
  last_used_.push_back(now);
  ++requests_sent_;
  return cfg_.bot_id_base + (last_used_.size() - 1);
}

}  // namespace grunt::attack
