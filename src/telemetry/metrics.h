#pragma once

// Interned metrics handles + a byte-stable JSON snapshot exporter.
//
// Names are interned at registration: re-registering a name (same kind)
// returns the same handle, so emitters and readers resolve independently.
// Handle operations are array indexing — no string hashing on the hot path.
// Callback gauges make instrumentation zero-cost for the instrumented code:
// the source is evaluated only when somebody snapshots or reads the gauge.
//
// Snapshot() nests dotted names ("svc.0.queue_len") into JSON objects in
// registration order and serializes through util/json, whose deterministic
// number formatting makes the dump byte-stable for a given registry state.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace grunt::telemetry {

class MetricsRegistry {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalidId = static_cast<Id>(-1);

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Monotonic counter. Re-registering an existing counter name returns the
  /// same id; registering it as another kind throws json::Error.
  Id Counter(std::string_view name);
  void Add(Id id, std::uint64_t delta = 1) { metrics_[id].counter += delta; }
  std::uint64_t counter_value(Id id) const { return metrics_[id].counter; }

  /// Stored gauge (Set/ReadGauge) or callback gauge (evaluated at read
  /// time). Registering a source on an existing sourceless gauge installs
  /// it; an existing source is kept.
  Id Gauge(std::string_view name);
  Id Gauge(std::string_view name, std::function<double()> source);
  void Set(Id id, double value) { metrics_[id].gauge = value; }
  double ReadGauge(Id id) const {
    const Metric& m = metrics_[id];
    return m.source ? m.source() : m.gauge;
  }

  /// Fixed-bound histogram: `bounds` are the inclusive upper edges of the
  /// finite buckets (must be strictly increasing); one overflow bucket is
  /// implicit. Re-registering ignores the new bounds.
  Id Histogram(std::string_view name, std::vector<double> bounds);
  void Observe(Id id, double value);
  std::uint64_t histogram_count(Id id) const { return metrics_[id].count; }
  double histogram_sum(Id id) const { return metrics_[id].sum; }
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing bucket (Prometheus histogram_quantile convention: the first
  /// bucket interpolates from 0, a quantile in the overflow bucket clamps to
  /// the highest finite bound). 0 when the histogram is empty.
  double histogram_quantile(Id id, double q) const {
    return Quantile(metrics_[id], q);
  }

  /// kInvalidId when the name was never registered.
  Id Find(std::string_view name) const;

  std::size_t size() const { return metrics_.size(); }

  /// All metrics as one nested JSON object: dotted name segments become
  /// object levels, in registration order. A name that is both a leaf and a
  /// prefix of another name ("a.b" and "a.b.c") throws json::Error.
  json::Value Snapshot() const;
  std::string SnapshotJson(int indent = 2) const {
    return Snapshot().Dump(indent);
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0;
    std::function<double()> source;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow)
    std::uint64_t count = 0;
    double sum = 0;
  };

  Id Intern(std::string_view name, Kind kind);
  json::Value Export(const Metric& m) const;
  static double Quantile(const Metric& m, double q);

  std::vector<Metric> metrics_;
};

}  // namespace grunt::telemetry
