#pragma once

// The telemetry plane's spine: typed publish/subscribe channels with
// synchronous dispatch in subscriber-registration order.
//
// Determinism rules (DESIGN §8):
//  * Publish() invokes handlers inline, in the order they subscribed — no
//    events, no queues, no RNG. Two runs that register the same subscribers
//    in the same order observe byte-identical streams.
//  * A handler subscribed during a dispatch does not see the publish that
//    was in flight; it sees every later one.
//  * Unsubscribe tombstones the entry (registration order of the survivors
//    is preserved) and is safe mid-dispatch, including from inside the
//    handler being removed.
//  * A channel with no subscribers costs its emitter one integer compare;
//    emitters guard event construction behind has_subscribers().

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace grunt::telemetry {

/// Identifies one subscription on one channel. 0 is never issued.
using SubscriptionId = std::uint64_t;

template <class Event>
class Channel {
 public:
  using Handler = std::function<void(const Event&)>;

  SubscriptionId Subscribe(Handler handler) {
    const SubscriptionId id = next_id_++;
    entries_.push_back(Entry{id, std::move(handler)});
    ++live_;
    return id;
  }

  /// Removes a subscription; false when `id` is unknown (or already gone).
  bool Unsubscribe(SubscriptionId id) {
    for (auto& e : entries_) {
      if (e.id == id && e.handler) {
        e.handler = nullptr;  // tombstone: survivors keep their order
        --live_;
        if (dispatch_depth_ == 0) Compact();
        return true;
      }
    }
    return false;
  }

  bool has_subscribers() const { return live_ > 0; }
  std::size_t subscriber_count() const { return live_; }

  void Publish(const Event& event) {
    if (live_ == 0) return;
    ++dispatch_depth_;
    // Snapshot the length: handlers subscribed during this dispatch wait
    // for the next publish.
    const std::size_t n = entries_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (entries_[i].handler) entries_[i].handler(event);
    }
    if (--dispatch_depth_ == 0 && live_ < entries_.size()) Compact();
  }

 private:
  struct Entry {
    SubscriptionId id = 0;
    Handler handler;
  };

  void Compact() {
    std::erase_if(entries_, [](const Entry& e) { return !e.handler; });
  }

  std::vector<Entry> entries_;
  std::size_t live_ = 0;
  std::uint32_t dispatch_depth_ = 0;
  SubscriptionId next_id_ = 1;
};

/// One bus per Cluster: the typed channels every observer subscribes to,
/// plus the metrics registry the same observers read gauges from. The
/// channel set is the catalog in DESIGN §8.
class TelemetryBus {
 public:
  TelemetryBus() = default;
  TelemetryBus(const TelemetryBus&) = delete;
  TelemetryBus& operator=(const TelemetryBus&) = delete;

  Channel<RequestSubmit>& submit() { return submit_; }
  Channel<CompletionRecord>& completion() { return completion_; }
  Channel<SpanEvent>& span() { return span_; }
  Channel<QueueEvent>& queue_depth() { return queue_depth_; }
  Channel<BreakerTransition>& breaker() { return breaker_; }
  Channel<ScaleEvent>& scale() { return scale_; }
  Channel<EngineStatsEvent>& engine_stats() { return engine_stats_; }
  Channel<CampaignJobEvent>& campaign_job() { return campaign_job_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  Channel<RequestSubmit> submit_;
  Channel<CompletionRecord> completion_;
  Channel<SpanEvent> span_;
  Channel<QueueEvent> queue_depth_;
  Channel<BreakerTransition> breaker_;
  Channel<ScaleEvent> scale_;
  Channel<EngineStatsEvent> engine_stats_;
  Channel<CampaignJobEvent> campaign_job_;
  MetricsRegistry metrics_;
};

}  // namespace grunt::telemetry
