#include "telemetry/metrics.h"

#include <utility>

namespace grunt::telemetry {

namespace {

const char* KindName(int k) {
  switch (k) {
    case 0: return "counter";
    case 1: return "gauge";
    case 2: return "histogram";
  }
  return "?";
}

}  // namespace

MetricsRegistry::Id MetricsRegistry::Find(std::string_view name) const {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) return static_cast<Id>(i);
  }
  return kInvalidId;
}

MetricsRegistry::Id MetricsRegistry::Intern(std::string_view name, Kind kind) {
  const Id existing = Find(name);
  if (existing != kInvalidId) {
    const Metric& m = metrics_[existing];
    if (m.kind != kind) {
      throw json::Error("metric '" + std::string(name) + "' registered as " +
                        KindName(static_cast<int>(m.kind)) + ", requested as " +
                        KindName(static_cast<int>(kind)));
    }
    return existing;
  }
  Metric m;
  m.name = std::string(name);
  m.kind = kind;
  metrics_.push_back(std::move(m));
  return static_cast<Id>(metrics_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::Counter(std::string_view name) {
  return Intern(name, Kind::kCounter);
}

MetricsRegistry::Id MetricsRegistry::Gauge(std::string_view name) {
  return Intern(name, Kind::kGauge);
}

MetricsRegistry::Id MetricsRegistry::Gauge(std::string_view name,
                                           std::function<double()> source) {
  const Id id = Intern(name, Kind::kGauge);
  if (!metrics_[id].source) metrics_[id].source = std::move(source);
  return id;
}

MetricsRegistry::Id MetricsRegistry::Histogram(std::string_view name,
                                               std::vector<double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw json::Error("histogram '" + std::string(name) +
                        "': bounds must be strictly increasing");
    }
  }
  const Id id = Intern(name, Kind::kHistogram);
  Metric& m = metrics_[id];
  if (m.buckets.empty()) {
    m.bounds = std::move(bounds);
    m.buckets.assign(m.bounds.size() + 1, 0);
  }
  return id;
}

void MetricsRegistry::Observe(Id id, double value) {
  Metric& m = metrics_[id];
  ++m.count;
  m.sum += value;
  std::size_t b = 0;
  while (b < m.bounds.size() && value > m.bounds[b]) ++b;
  ++m.buckets[b];
}

double MetricsRegistry::Quantile(const Metric& m, double q) {
  if (m.count == 0 || m.bounds.empty()) return 0.0;
  const double target = q * static_cast<double>(m.count);
  double cum = 0;
  for (std::size_t b = 0; b < m.bounds.size(); ++b) {
    const double in_bucket = static_cast<double>(m.buckets[b]);
    if (cum + in_bucket >= target && in_bucket > 0) {
      const double lower = b == 0 ? 0.0 : m.bounds[b - 1];
      const double upper = m.bounds[b];
      return lower + (upper - lower) * (target - cum) / in_bucket;
    }
    cum += in_bucket;
  }
  // The quantile falls in the overflow bucket: no upper edge to interpolate
  // toward, so clamp to the highest finite bound (Prometheus convention).
  return m.bounds.back();
}

json::Value MetricsRegistry::Export(const Metric& m) const {
  switch (m.kind) {
    case Kind::kCounter:
      return json::Value(static_cast<std::int64_t>(m.counter));
    case Kind::kGauge:
      return json::Value(m.source ? m.source() : m.gauge);
    case Kind::kHistogram: {
      json::Object buckets;
      for (std::size_t i = 0; i < m.bounds.size(); ++i) {
        buckets.emplace_back(
            "le_" + json::Value(m.bounds[i]).Dump(0),
            json::Value(static_cast<std::int64_t>(m.buckets[i])));
      }
      buckets.emplace_back(
          "le_inf", json::Value(static_cast<std::int64_t>(
                        m.buckets.empty() ? 0 : m.buckets.back())));
      json::Object h;
      h.emplace_back("count",
                     json::Value(static_cast<std::int64_t>(m.count)));
      h.emplace_back("sum", json::Value(m.sum));
      h.emplace_back("p95", json::Value(Quantile(m, 0.95)));
      h.emplace_back("p99", json::Value(Quantile(m, 0.99)));
      h.emplace_back("buckets", json::Value(std::move(buckets)));
      return json::Value(std::move(h));
    }
  }
  return json::Value();
}

json::Value MetricsRegistry::Snapshot() const {
  json::Value root{json::Object{}};
  for (const Metric& m : metrics_) {
    // Walk the dotted path, creating intermediate objects as needed.
    json::Value* node = &root;
    std::string_view rest = m.name;
    for (;;) {
      const std::size_t dot = rest.find('.');
      const std::string_view seg = rest.substr(0, dot);
      const bool leaf = (dot == std::string_view::npos);
      json::Object& obj = node->MutableObject();
      json::Value* child = nullptr;
      for (auto& [key, val] : obj) {
        if (key == seg) {
          child = &val;
          break;
        }
      }
      if (leaf) {
        if (child != nullptr) {
          throw json::Error("metric name '" + m.name +
                            "' collides with an earlier metric's path");
        }
        obj.emplace_back(std::string(seg), Export(m));
        break;
      }
      if (child == nullptr) {
        obj.emplace_back(std::string(seg), json::Value(json::Object{}));
        child = &obj.back().second;
      } else if (!child->is_object()) {
        throw json::Error("metric name '" + m.name +
                          "' collides with an earlier metric's path");
      }
      node = child;
      rest = rest.substr(dot + 1);
    }
  }
  return root;
}

}  // namespace grunt::telemetry
