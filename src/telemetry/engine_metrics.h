#pragma once

// Bridges the engine's EngineStats counters into the metrics plane: live
// callback gauges for a running simulation, and a one-shot registry-backed
// JSON export for bench emitters (the single JSON path for engine counters —
// bench_micro_engine and bench_micro_cluster both route through it).

#include <string>

#include "sim/simulation.h"
#include "telemetry/bus.h"
#include "telemetry/metrics.h"

namespace grunt::telemetry {

/// Periodically publishes a point-in-time EngineStats snapshot on the bus's
/// engine_stats channel, turning the engine's cumulative counters into an
/// observable stream (bench rigs enable it via GRUNT_ENGINE_STATS_TICK_MS).
/// The tick is a kTimer-class event so it routes through the timing wheel
/// and stays out of the heap the workload under test is exercising; when the
/// channel has no subscribers the tick costs one integer compare.
class EngineStatsTicker {
 public:
  EngineStatsTicker(sim::Simulation& sim, TelemetryBus& bus)
      : sim_(sim), bus_(bus) {}
  ~EngineStatsTicker() { Stop(); }
  EngineStatsTicker(const EngineStatsTicker&) = delete;
  EngineStatsTicker& operator=(const EngineStatsTicker&) = delete;

  void Start(SimDuration period);
  void Stop();
  bool running() const { return running_; }

 private:
  sim::Simulation& sim_;
  TelemetryBus& bus_;
  sim::EventHandle timer_;
  bool running_ = false;
};

/// Registers one callback gauge per EngineStats field under `prefix`
/// ("<prefix>.events_scheduled", …, "<prefix>.wheel.occupancy"), reading
/// `sim.stats()` at snapshot time. `sim` must outlive the registry's reads.
void RegisterEngineGauges(MetricsRegistry& registry,
                          const sim::Simulation& sim,
                          const std::string& prefix = "engine");

/// A point-in-time EngineStats as a nested JSON object (same field layout as
/// RegisterEngineGauges, without the prefix), exported through a
/// MetricsRegistry snapshot so formatting matches every other metrics dump.
json::Value EngineStatsJson(const sim::Simulation::EngineStats& stats);

/// The wheel-only subobject of EngineStatsJson (bench_micro_cluster's
/// timer_heavy section reports just the wheel counters).
json::Value WheelStatsJson(const sim::Simulation::EngineStats& stats);

/// The immediate-lane subobject of EngineStatsJson (bench_micro_cluster's
/// lane-on/off workloads report just the lane counters).
json::Value ImmediateStatsJson(const sim::Simulation::EngineStats& stats);

}  // namespace grunt::telemetry
