#pragma once

// Bridges the engine's EngineStats counters into the metrics plane: live
// callback gauges for a running simulation, and a one-shot registry-backed
// JSON export for bench emitters (the single JSON path for engine counters —
// bench_micro_engine and bench_micro_cluster both route through it).

#include <string>

#include "sim/simulation.h"
#include "telemetry/metrics.h"

namespace grunt::telemetry {

/// Registers one callback gauge per EngineStats field under `prefix`
/// ("<prefix>.events_scheduled", …, "<prefix>.wheel.occupancy"), reading
/// `sim.stats()` at snapshot time. `sim` must outlive the registry's reads.
void RegisterEngineGauges(MetricsRegistry& registry,
                          const sim::Simulation& sim,
                          const std::string& prefix = "engine");

/// A point-in-time EngineStats as a nested JSON object (same field layout as
/// RegisterEngineGauges, without the prefix), exported through a
/// MetricsRegistry snapshot so formatting matches every other metrics dump.
json::Value EngineStatsJson(const sim::Simulation::EngineStats& stats);

/// The wheel-only subobject of EngineStatsJson (bench_micro_cluster's
/// timer_heavy section reports just the wheel counters).
json::Value WheelStatsJson(const sim::Simulation::EngineStats& stats);

}  // namespace grunt::telemetry
