#include "telemetry/engine_metrics.h"

namespace grunt::telemetry {

namespace {

using Stats = sim::Simulation::EngineStats;

/// Field catalog shared by the gauge and JSON exporters so the two layouts
/// can never drift apart.
struct Field {
  const char* name;
  double (*read)(const Stats&);
};

constexpr Field kFields[] = {
    {"events_scheduled",
     [](const Stats& s) { return static_cast<double>(s.events_scheduled); }},
    {"inline_callbacks",
     [](const Stats& s) { return static_cast<double>(s.inline_callbacks); }},
    {"heap_callbacks",
     [](const Stats& s) { return static_cast<double>(s.heap_callbacks); }},
    {"cancelled_popped",
     [](const Stats& s) { return static_cast<double>(s.cancelled_popped); }},
    {"cancelled_purged",
     [](const Stats& s) { return static_cast<double>(s.cancelled_purged); }},
    {"compactions",
     [](const Stats& s) { return static_cast<double>(s.compactions); }},
    {"slab_chunks",
     [](const Stats& s) { return static_cast<double>(s.slab_chunks); }},
    {"wheel.scheduled",
     [](const Stats& s) { return static_cast<double>(s.wheel_scheduled); }},
    {"wheel.cancelled_in_bucket",
     [](const Stats& s) { return static_cast<double>(s.wheel_cancelled); }},
    {"wheel.cascades",
     [](const Stats& s) { return static_cast<double>(s.wheel_cascades); }},
    {"wheel.to_heap",
     [](const Stats& s) { return static_cast<double>(s.wheel_to_heap); }},
    {"wheel.occupancy",
     [](const Stats& s) { return static_cast<double>(s.wheel_occupancy); }},
    {"immediate.scheduled",
     [](const Stats& s) {
       return static_cast<double>(s.immediate_scheduled);
     }},
    {"immediate.cancelled_in_lane",
     [](const Stats& s) {
       return static_cast<double>(s.immediate_cancelled);
     }},
    {"immediate.occupancy",
     [](const Stats& s) {
       return static_cast<double>(s.immediate_occupancy);
     }},
};

}  // namespace

void EngineStatsTicker::Start(SimDuration period) {
  if (running_) return;
  running_ = true;
  timer_ = sim_.Every(period, sim::EventClass::kTimer, [this] {
    if (!bus_.engine_stats().has_subscribers()) return;
    bus_.engine_stats().Publish(EngineStatsEvent{sim_.Now(), sim_.stats()});
  });
}

void EngineStatsTicker::Stop() {
  running_ = false;
  timer_.Cancel();
}

void RegisterEngineGauges(MetricsRegistry& registry,
                          const sim::Simulation& sim,
                          const std::string& prefix) {
  for (const Field& f : kFields) {
    registry.Gauge(prefix + "." + f.name,
                   [&sim, read = f.read] { return read(sim.stats()); });
  }
}

json::Value EngineStatsJson(const Stats& stats) {
  MetricsRegistry reg;
  for (const Field& f : kFields) {
    reg.Set(reg.Gauge(f.name), f.read(stats));
  }
  return reg.Snapshot();
}

json::Value WheelStatsJson(const Stats& stats) {
  json::Value full = EngineStatsJson(stats);
  return full.At("wheel");
}

json::Value ImmediateStatsJson(const Stats& stats) {
  json::Value full = EngineStatsJson(stats);
  return full.At("immediate");
}

}  // namespace grunt::telemetry
