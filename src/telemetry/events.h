#pragma once

// Event types carried by the TelemetryBus (bus.h). Everything an observer of
// the cluster can see — monitors, IDS, autoscaler, defenses, tracers, attack
// adapters — is one of these records, published synchronously at the point
// where the observed thing happens. The structs are plain data: emitters pay
// nothing to construct them unless a channel has subscribers.

#include <cstdint>

#include "microsvc/types.h"
#include "sim/simulation.h"

namespace grunt::telemetry {

/// A request entering the cluster at the gateway (one per Cluster::Submit).
/// The IDS and the correlation defense key their session state off this.
struct RequestSubmit {
  microsvc::RequestTypeId type = microsvc::kInvalidRequestType;
  microsvc::RequestClass cls = microsvc::RequestClass::kLegit;
  std::uint64_t client_id = 0;
  SimTime at = 0;
};

/// A finished end-to-end request as observed at the gateway. Every submitted
/// request produces exactly one record, whatever its outcome.
struct CompletionRecord {
  std::uint64_t request_id = 0;
  microsvc::RequestTypeId type = microsvc::kInvalidRequestType;
  microsvc::RequestClass cls = microsvc::RequestClass::kLegit;
  bool heavy = false;
  std::uint64_t client_id = 0;
  SimTime start = 0;  ///< submitted by the client
  SimTime end = 0;    ///< response (or failure) received by the client
  microsvc::Outcome outcome = microsvc::Outcome::kOk;
  /// Total retry attempts spent across every hop of the chain.
  std::int32_t retries = 0;
};

/// One completed hop of a request's execution, as a tracing system (Jaeger in
/// the paper) would record it. Emitted when the hop replies upstream.
/// Admin-side ground truth; the attack library never sees it (blackbox
/// boundary, DESIGN §4.3).
struct SpanEvent {
  std::uint64_t request_id = 0;
  microsvc::RequestTypeId type = microsvc::kInvalidRequestType;
  microsvc::RequestClass cls = microsvc::RequestClass::kLegit;
  microsvc::ServiceId service = microsvc::kInvalidService;
  std::uint32_t hop_index = 0;
  SimTime arrived = 0;       ///< call reached the service (possibly queued)
  SimTime slot_granted = 0;  ///< thread slot acquired
  SimTime finished = 0;      ///< replied upstream, slot released
};

/// A change in a service's slot waiting line: an arrival parked behind a
/// full thread pool, or one rejected outright by the bounded queue.
struct QueueEvent {
  enum class Kind : std::uint8_t {
    kEnqueued = 0,  ///< arrival is waiting for a slot
    kRejected = 1,  ///< bounded arrival queue full, load shed
  };
  microsvc::ServiceId service = microsvc::kInvalidService;
  Kind kind = Kind::kEnqueued;
  SimTime at = 0;
  std::int32_t slots_in_use = 0;
  std::int32_t waiting = 0;  ///< queue depth after the event
};

/// A per-caller circuit breaker changing state on the edge into `service`.
/// "open" follows the breaker's effective behaviour: a successful half-open
/// trial closes it, a failed one re-opens it.
struct BreakerTransition {
  microsvc::ServiceId service = microsvc::kInvalidService;  ///< callee
  microsvc::ServiceId caller = microsvc::kInvalidService;
  SimTime at = 0;
  bool open = false;
  std::int32_t consecutive_failures = 0;
};

/// One autoscaler decision taking effect (Fig 14 / Fig 15b analysis).
struct ScaleEvent {
  SimTime at = 0;
  microsvc::ServiceId service = microsvc::kInvalidService;
  std::int32_t delta = 0;  ///< +1 scale-out, -1 scale-in
  std::int32_t replicas_after = 0;
};

/// A point-in-time copy of the engine's counters (scheduling, cancel churn,
/// timer-wheel traffic). Published on demand by tools that snapshot the run.
struct EngineStatsEvent {
  SimTime at = 0;
  sim::Simulation::EngineStats stats;
};

/// One campaign job finishing on a CampaignExecutor backend (src/dist).
/// Unlike every other event this is wall-clock, not sim-time: the executor
/// fans whole simulations out across workers, so there is no shared sim
/// clock to stamp. Published on the dispatcher side as each result frame
/// (or crash) comes back, in completion order.
struct CampaignJobEvent {
  std::size_t job_index = 0;
  unsigned worker = 0;  ///< lane that ran it (thread backend: always 0)
  bool stolen = false;  ///< ran off its static-shard owner (job % workers)
  bool ok = false;
  double latency_ms = 0;  ///< dispatch-to-result wall time
};

}  // namespace grunt::telemetry
