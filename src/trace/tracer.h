#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "microsvc/types.h"
#include "telemetry/bus.h"

namespace grunt::trace {

/// One service visit inside a request's execution, as recorded by the
/// tracing backend (the paper uses Jaeger for ground truth, Sec V-C).
struct HopSpan {
  microsvc::ServiceId service = microsvc::kInvalidService;
  std::uint32_t hop_index = 0;
  SimTime arrived = 0;
  SimTime slot_granted = 0;
  SimTime finished = 0;

  SimDuration queue_wait() const { return slot_granted - arrived; }
  SimDuration total() const { return finished - arrived; }
};

/// The recorded execution of one request (its execution-history graph,
/// Fig 2(a); for critical-path chains the spans are totally ordered).
struct RequestTrace {
  std::uint64_t request_id = 0;
  microsvc::RequestTypeId type = microsvc::kInvalidRequestType;
  microsvc::RequestClass cls = microsvc::RequestClass::kLegit;
  std::vector<HopSpan> hops;  ///< indexed by hop position

  bool complete() const {
    if (hops.empty()) return false;
    for (const auto& h : hops) {
      if (h.service == microsvc::kInvalidService) return false;
    }
    return true;
  }
};

/// Collects spans from the cluster's telemetry span channel and groups them
/// per request. Admin-side only: the attack library never touches this
/// (blackbox boundary).
class Tracer {
 public:
  /// Subscribes to `bus`'s span channel (usually cluster.telemetry()).
  /// Call at most once per bus; the bus must not outlive this Tracer
  /// unless Detach() is called first.
  void Attach(telemetry::TelemetryBus& bus);
  /// Undoes Attach (no-op when not attached).
  void Detach();

  void OnSpan(const telemetry::SpanEvent& span);

  std::size_t span_count() const { return span_count_; }

  const RequestTrace* Find(std::uint64_t request_id) const;

  /// All traces whose spans have all been received.
  std::vector<const RequestTrace*> CompletedTraces() const;

  /// Spans that arrived at `service` within [from, to), per second.
  double ArrivalRate(microsvc::ServiceId service, SimTime from,
                     SimTime to) const;

  /// Drops all recorded traces (long benches trim periodically).
  void Clear();

 private:
  telemetry::TelemetryBus* bus_ = nullptr;
  telemetry::SubscriptionId sub_ = 0;
  std::unordered_map<std::uint64_t, RequestTrace> traces_;
  std::size_t span_count_ = 0;
};

/// A generic execution DAG with weighted nodes, for critical-path extraction
/// (Fig 2(b)→(c)). Our request types are already critical-path chains; this
/// utility exists so tooling (and tests) can reduce richer execution graphs
/// the same way the paper does.
struct ExecutionDag {
  struct Node {
    microsvc::ServiceId service = microsvc::kInvalidService;
    SimDuration duration = 0;
  };
  std::vector<Node> nodes;
  /// edges[i] lists children of node i (i must run before its children).
  std::vector<std::vector<std::size_t>> edges;
};

/// Longest (duration-weighted) chain of dependent nodes; ties broken toward
/// smaller node indices. Throws std::invalid_argument on cycles.
std::vector<std::size_t> CriticalPath(const ExecutionDag& dag);

}  // namespace grunt::trace
