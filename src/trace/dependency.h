#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "microsvc/application.h"

namespace grunt::trace {

/// Pairwise execution dependency between two critical paths (Sec III-C,
/// Definitions I & II, plus the degenerate same-bottleneck case).
enum class DepType : std::uint8_t {
  kNone = 0,
  /// Different bottlenecks, shared upstream microservice: either path can
  /// block the other only via cross-tier queue overflow (Definition I).
  kParallel,
  /// a's bottleneck is upstream of b's bottleneck on b's path: a triggers an
  /// execution blocking effect over b directly (Definition II).
  kSequentialAUp,
  /// Mirror of kSequentialAUp with b upstream.
  kSequentialBUp,
  /// Both paths bottleneck on the same microservice: each blocks the other
  /// directly (mutual execution blocking).
  kMutual,
};

const char* ToString(DepType t);
bool IsDependent(DepType t);
/// Collapses direction: kSequentialAUp/BUp compare equal.
bool SameKind(DepType x, DepType y);

struct PairwiseDep {
  microsvc::RequestTypeId a = microsvc::kInvalidRequestType;
  microsvc::RequestTypeId b = microsvc::kInvalidRequestType;
  DepType type = DepType::kNone;
  microsvc::ServiceId bottleneck_a = microsvc::kInvalidService;
  microsvc::ServiceId bottleneck_b = microsvc::kInvalidService;
};

/// Analytic (white-box) dependency model: given the application spec and the
/// per-type legitimate request rates, computes each service's background
/// utilization, each path's bottleneck microservice (the one an additional
/// burst saturates first), and the paper's pairwise dependency types. This
/// is the evaluation-side ground truth the paper obtains from Jaeger +
/// Collectl; the blackbox Profiler is scored against it (Fig 16).
class GroundTruth {
 public:
  /// `type_rates[t]` = legitimate requests/second of type t. `pmb_limit_s`
  /// is the attacker's stealth cap on millibottleneck length; it bounds the
  /// backlog an attack burst can build and therefore which upstream slot
  /// pools cross-tier overflow can actually reach (a parallel dependency
  /// through a 4096-thread gateway is not exploitable and is not counted).
  GroundTruth(const microsvc::Application& app, std::vector<double> type_rates,
              double pmb_limit_s = 0.5);

  /// Mean CPU demand (pre + post) of type `t` at service `s`, in seconds;
  /// 0 when s is not on t's path.
  double DemandSeconds(microsvc::RequestTypeId t, microsvc::ServiceId s) const;

  /// Background CPU utilization of `s` under the given rates.
  double ServiceUtil(microsvc::ServiceId s) const;

  /// Additional requests/second of type `t` needed to saturate service `s`
  /// (infinity when s is not on t's path).
  double SaturationHeadroom(microsvc::RequestTypeId t,
                            microsvc::ServiceId s) const;

  /// The bottleneck microservice of path `t`: the hop that saturates first
  /// as the rate of `t` grows.
  microsvc::ServiceId BottleneckOf(microsvc::RequestTypeId t) const;

  /// Service rate of `s` for ATTACK requests of type `t` (heavy variant),
  /// requests/second; +inf when s is not on t's path or has zero demand.
  double AttackCapacity(microsvc::RequestTypeId t, microsvc::ServiceId s) const;

  /// Largest backlog (requests) an attack burst on `t` can pile up at its
  /// bottleneck while keeping P_MB under the stealth cap (from Eq 5).
  double StealthBacklog(microsvc::RequestTypeId t) const;

  /// Mean number of busy thread slots at `u` under background load alone
  /// (M/G/inf-style estimate from per-type residence times).
  double BackgroundOccupancy(microsvc::ServiceId u) const;

  /// True if a stealth-bounded burst on `t` can overflow upstream service
  /// `u`'s slot pool (cross-tier queue overflow reaching u).
  bool CanOverflow(microsvc::RequestTypeId t, microsvc::ServiceId u) const;

  DepType Classify(microsvc::RequestTypeId a, microsvc::RequestTypeId b) const;

  /// All unordered pairs over the app's public dynamic types.
  std::vector<PairwiseDep> AllPairs() const;

  const microsvc::Application& app() const { return app_; }

 private:
  const microsvc::Application& app_;
  std::vector<double> type_rates_;
  double pmb_limit_s_;
  std::vector<double> service_util_;
};

/// Union-find partition of request types into dependency groups: paths with
/// any (direct or transitive) pairwise dependency share a group (Sec II-B).
class DependencyGroups {
 public:
  explicit DependencyGroups(std::size_t type_count);

  void Union(microsvc::RequestTypeId a, microsvc::RequestTypeId b);
  std::int32_t GroupOf(microsvc::RequestTypeId t) const;
  bool SameGroup(microsvc::RequestTypeId a, microsvc::RequestTypeId b) const;

  /// Groups as sorted member lists, largest first; singletons included.
  std::vector<std::vector<microsvc::RequestTypeId>> Groups() const;

  static DependencyGroups FromPairs(std::size_t type_count,
                                    const std::vector<PairwiseDep>& pairs);

 private:
  std::int32_t FindRoot(std::int32_t x) const;
  mutable std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> rank_;
};

}  // namespace grunt::trace
