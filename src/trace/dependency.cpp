#include "trace/dependency.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace grunt::trace {

const char* ToString(DepType t) {
  switch (t) {
    case DepType::kNone: return "none";
    case DepType::kParallel: return "parallel";
    case DepType::kSequentialAUp: return "sequential(a-up)";
    case DepType::kSequentialBUp: return "sequential(b-up)";
    case DepType::kMutual: return "mutual";
  }
  return "?";
}

bool IsDependent(DepType t) { return t != DepType::kNone; }

bool SameKind(DepType x, DepType y) {
  auto canon = [](DepType t) {
    return t == DepType::kSequentialBUp ? DepType::kSequentialAUp : t;
  };
  return canon(x) == canon(y);
}

GroundTruth::GroundTruth(const microsvc::Application& app,
                         std::vector<double> type_rates, double pmb_limit_s)
    : app_(app), type_rates_(std::move(type_rates)),
      pmb_limit_s_(pmb_limit_s) {
  if (type_rates_.size() != app_.request_type_count()) {
    throw std::invalid_argument("GroundTruth: rate per request type required");
  }
  service_util_.assign(app_.service_count(), 0.0);
  for (std::size_t t = 0; t < type_rates_.size(); ++t) {
    const auto tid = static_cast<microsvc::RequestTypeId>(t);
    for (const auto& hop : app_.request_type(tid).hops) {
      const auto& spec = app_.service(hop.service);
      const double cores = static_cast<double>(spec.initial_replicas) *
                           static_cast<double>(spec.cores_per_replica);
      service_util_[static_cast<std::size_t>(hop.service)] +=
          type_rates_[t] * ToSeconds(hop.cpu_demand + hop.post_demand) / cores;
    }
  }
}

double GroundTruth::DemandSeconds(microsvc::RequestTypeId t,
                                  microsvc::ServiceId s) const {
  for (const auto& hop : app_.request_type(t).hops) {
    if (hop.service == s) return ToSeconds(hop.cpu_demand + hop.post_demand);
  }
  return 0.0;
}

double GroundTruth::ServiceUtil(microsvc::ServiceId s) const {
  return service_util_.at(static_cast<std::size_t>(s));
}

double GroundTruth::SaturationHeadroom(microsvc::RequestTypeId t,
                                       microsvc::ServiceId s) const {
  const double demand = DemandSeconds(t, s);
  if (demand <= 0) return std::numeric_limits<double>::infinity();
  const auto& spec = app_.service(s);
  const double cores = static_cast<double>(spec.initial_replicas) *
                       static_cast<double>(spec.cores_per_replica);
  const double spare = std::max(0.0, 1.0 - ServiceUtil(s));
  return spare * cores / demand;
}

microsvc::ServiceId GroundTruth::BottleneckOf(microsvc::RequestTypeId t) const {
  const auto& hops = app_.request_type(t).hops;
  if (hops.empty()) return microsvc::kInvalidService;
  microsvc::ServiceId best = hops.front().service;
  double best_headroom = SaturationHeadroom(t, best);
  for (const auto& hop : hops) {
    const double h = SaturationHeadroom(t, hop.service);
    if (h < best_headroom) {
      best_headroom = h;
      best = hop.service;
    }
  }
  return best;
}

double GroundTruth::AttackCapacity(microsvc::RequestTypeId t,
                                   microsvc::ServiceId s) const {
  const double demand =
      DemandSeconds(t, s) * app_.request_type(t).heavy_multiplier;
  if (demand <= 0) return std::numeric_limits<double>::infinity();
  const auto& spec = app_.service(s);
  const double cores = static_cast<double>(spec.initial_replicas) *
                       static_cast<double>(spec.cores_per_replica);
  return cores / demand;
}

double GroundTruth::StealthBacklog(microsvc::RequestTypeId t) const {
  const microsvc::ServiceId b = BottleneckOf(t);
  if (b == microsvc::kInvalidService) return 0;
  const double cap = AttackCapacity(t, b);
  if (!std::isfinite(cap)) return 0;
  // Inverse of Eq (5): the backlog whose drain time equals the stealth cap.
  const double spare = std::max(0.0, 1.0 - ServiceUtil(b));
  return pmb_limit_s_ * cap * spare;
}

double GroundTruth::BackgroundOccupancy(microsvc::ServiceId u) const {
  // Little's law estimate: occupancy = sum over types through u of
  // rate * residence, residence ~= demands from u to the end of the path
  // plus per-message network latency (queueing excluded: a lower bound).
  double occupancy = 0;
  for (std::size_t t = 0; t < app_.request_type_count(); ++t) {
    const auto tid = static_cast<microsvc::RequestTypeId>(t);
    const auto idx = app_.HopIndexOf(tid, u);
    if (!idx) continue;
    const auto& hops = app_.request_type(tid).hops;
    double residence = 0;
    for (std::size_t h = *idx; h < hops.size(); ++h) {
      residence += ToSeconds(hops[h].cpu_demand + hops[h].post_demand);
    }
    residence += 2.0 * ToSeconds(app_.net_latency()) *
                 static_cast<double>(hops.size() - *idx);
    occupancy += type_rates_[t] * residence;
  }
  return occupancy;
}

bool GroundTruth::CanOverflow(microsvc::RequestTypeId t,
                              microsvc::ServiceId u) const {
  const auto& spec = app_.service(u);
  const double threads = static_cast<double>(spec.initial_replicas) *
                         static_cast<double>(spec.threads_per_replica);
  return StealthBacklog(t) + BackgroundOccupancy(u) >= threads;
}

DepType GroundTruth::Classify(microsvc::RequestTypeId a,
                              microsvc::RequestTypeId b) const {
  const auto shared = app_.SharedServices(a, b);
  if (shared.empty()) return DepType::kNone;

  const microsvc::ServiceId ba = BottleneckOf(a);
  const microsvc::ServiceId bb = BottleneckOf(b);
  if (ba == bb) return DepType::kMutual;

  // x upstream of y on any path that contains both.
  auto upstream = [&](microsvc::ServiceId x, microsvc::ServiceId y) {
    return app_.IsUpstreamOn(a, x, y) || app_.IsUpstreamOn(b, x, y);
  };
  if (upstream(ba, bb)) return DepType::kSequentialAUp;
  if (upstream(bb, ba)) return DepType::kSequentialBUp;

  // Parallel: a shared microservice sits upstream of both bottlenecks AND a
  // stealth-bounded burst on at least one of the paths can actually overflow
  // that service's slot pool (cross-tier overflow must be able to reach it).
  for (microsvc::ServiceId u : shared) {
    if (app_.IsUpstreamOn(a, u, ba) && app_.IsUpstreamOn(b, u, bb) &&
        (CanOverflow(a, u) || CanOverflow(b, u))) {
      return DepType::kParallel;
    }
  }
  return DepType::kNone;
}

std::vector<PairwiseDep> GroundTruth::AllPairs() const {
  std::vector<PairwiseDep> out;
  const auto types = app_.PublicDynamicTypes();
  for (std::size_t i = 0; i < types.size(); ++i) {
    for (std::size_t j = i + 1; j < types.size(); ++j) {
      PairwiseDep dep;
      dep.a = types[i];
      dep.b = types[j];
      dep.type = Classify(dep.a, dep.b);
      dep.bottleneck_a = BottleneckOf(dep.a);
      dep.bottleneck_b = BottleneckOf(dep.b);
      out.push_back(dep);
    }
  }
  return out;
}

DependencyGroups::DependencyGroups(std::size_t type_count)
    : parent_(type_count), rank_(type_count, 0) {
  for (std::size_t i = 0; i < type_count; ++i) {
    parent_[i] = static_cast<std::int32_t>(i);
  }
}

std::int32_t DependencyGroups::FindRoot(std::int32_t x) const {
  while (parent_[static_cast<std::size_t>(x)] != x) {
    // Path halving.
    parent_[static_cast<std::size_t>(x)] =
        parent_[static_cast<std::size_t>(
            parent_[static_cast<std::size_t>(x)])];
    x = parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

void DependencyGroups::Union(microsvc::RequestTypeId a,
                             microsvc::RequestTypeId b) {
  std::int32_t ra = FindRoot(a);
  std::int32_t rb = FindRoot(b);
  if (ra == rb) return;
  if (rank_[static_cast<std::size_t>(ra)] <
      rank_[static_cast<std::size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<std::size_t>(rb)] = ra;
  if (rank_[static_cast<std::size_t>(ra)] ==
      rank_[static_cast<std::size_t>(rb)]) {
    ++rank_[static_cast<std::size_t>(ra)];
  }
}

std::int32_t DependencyGroups::GroupOf(microsvc::RequestTypeId t) const {
  return FindRoot(t);
}

bool DependencyGroups::SameGroup(microsvc::RequestTypeId a,
                                 microsvc::RequestTypeId b) const {
  return FindRoot(a) == FindRoot(b);
}

std::vector<std::vector<microsvc::RequestTypeId>> DependencyGroups::Groups()
    const {
  std::vector<std::vector<microsvc::RequestTypeId>> by_root(parent_.size());
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    by_root[static_cast<std::size_t>(
        FindRoot(static_cast<std::int32_t>(i)))]
        .push_back(static_cast<microsvc::RequestTypeId>(i));
  }
  std::vector<std::vector<microsvc::RequestTypeId>> groups;
  for (auto& g : by_root) {
    if (!g.empty()) groups.push_back(std::move(g));
  }
  std::stable_sort(groups.begin(), groups.end(),
                   [](const auto& x, const auto& y) {
                     return x.size() > y.size();
                   });
  return groups;
}

DependencyGroups DependencyGroups::FromPairs(
    std::size_t type_count, const std::vector<PairwiseDep>& pairs) {
  DependencyGroups groups(type_count);
  for (const auto& p : pairs) {
    if (IsDependent(p.type)) groups.Union(p.a, p.b);
  }
  return groups;
}

}  // namespace grunt::trace
