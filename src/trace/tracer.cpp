#include "trace/tracer.h"

#include <algorithm>
#include <stdexcept>

namespace grunt::trace {

void Tracer::Attach(telemetry::TelemetryBus& bus) {
  if (bus_ != nullptr) {
    throw std::logic_error("Tracer::Attach: already attached");
  }
  bus_ = &bus;
  sub_ = bus.span().Subscribe(
      [this](const telemetry::SpanEvent& span) { OnSpan(span); });
}

void Tracer::Detach() {
  if (bus_ == nullptr) return;
  bus_->span().Unsubscribe(sub_);
  bus_ = nullptr;
  sub_ = 0;
}

void Tracer::OnSpan(const telemetry::SpanEvent& span) {
  RequestTrace& t = traces_[span.request_id];
  if (t.hops.empty()) {
    t.request_id = span.request_id;
    t.type = span.type;
    t.cls = span.cls;
  }
  if (t.hops.size() <= span.hop_index) t.hops.resize(span.hop_index + 1);
  HopSpan& h = t.hops[span.hop_index];
  h.service = span.service;
  h.hop_index = span.hop_index;
  h.arrived = span.arrived;
  h.slot_granted = span.slot_granted;
  h.finished = span.finished;
  ++span_count_;
}

const RequestTrace* Tracer::Find(std::uint64_t request_id) const {
  auto it = traces_.find(request_id);
  return it == traces_.end() ? nullptr : &it->second;
}

std::vector<const RequestTrace*> Tracer::CompletedTraces() const {
  std::vector<const RequestTrace*> out;
  for (const auto& [id, t] : traces_) {
    if (t.complete()) out.push_back(&t);
  }
  std::sort(out.begin(), out.end(),
            [](const RequestTrace* a, const RequestTrace* b) {
              return a->request_id < b->request_id;
            });
  return out;
}

double Tracer::ArrivalRate(microsvc::ServiceId service, SimTime from,
                           SimTime to) const {
  if (to <= from) return 0;
  std::int64_t count = 0;
  for (const auto& [id, t] : traces_) {
    for (const auto& h : t.hops) {
      if (h.service == service && h.arrived >= from && h.arrived < to) {
        ++count;
      }
    }
  }
  return static_cast<double>(count) / ToSeconds(to - from);
}

void Tracer::Clear() { traces_.clear(); }

std::vector<std::size_t> CriticalPath(const ExecutionDag& dag) {
  const std::size_t n = dag.nodes.size();
  if (n == 0) return {};
  // Kahn topological order with cycle detection.
  std::vector<std::size_t> indeg(n, 0);
  for (const auto& children : dag.edges) {
    for (std::size_t c : children) {
      if (c >= n) throw std::invalid_argument("CriticalPath: bad edge");
      ++indeg[c];
    }
  }
  std::vector<std::size_t> order;
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  // Process smallest-index-first for deterministic tie-breaking.
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), std::greater<>());
    const std::size_t u = ready.back();
    ready.pop_back();
    order.push_back(u);
    if (u < dag.edges.size()) {
      for (std::size_t c : dag.edges[u]) {
        if (--indeg[c] == 0) ready.push_back(c);
      }
    }
  }
  if (order.size() != n) throw std::invalid_argument("CriticalPath: cycle");

  std::vector<SimDuration> best(n);
  std::vector<std::ptrdiff_t> pred(n, -1);
  for (std::size_t i = 0; i < n; ++i) best[i] = dag.nodes[i].duration;
  for (std::size_t u : order) {
    if (u >= dag.edges.size()) continue;
    for (std::size_t c : dag.edges[u]) {
      const SimDuration cand = best[u] + dag.nodes[c].duration;
      if (cand > best[c] ||
          (cand == best[c] &&
           (pred[c] == -1 || static_cast<std::size_t>(pred[c]) > u))) {
        best[c] = cand;
        pred[c] = static_cast<std::ptrdiff_t>(u);
      }
    }
  }
  std::size_t end = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (best[i] > best[end]) end = i;
  }
  std::vector<std::size_t> path;
  for (std::ptrdiff_t v = static_cast<std::ptrdiff_t>(end); v != -1;
       v = pred[static_cast<std::size_t>(v)]) {
    path.push_back(static_cast<std::size_t>(v));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace grunt::trace
