#include "model/queuing_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace grunt::model {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double QueueFromExecutionBlocking(const Burst& burst, const Stage& s) {
  const double buildup = s.legit_rate + burst.rate - s.cap_attack;
  return buildup <= 0 ? 0.0 : burst.length_s * buildup;
}

double FillTime(const Burst& burst, const Stage& s) {
  const double fill_rate = s.legit_rate + burst.rate - s.cap_attack;
  if (fill_rate <= 0) return kInf;
  return s.queue_size / fill_rate;
}

double QueueFromCrossTierBlocking(const Burst& burst,
                                  std::span<const Stage> stages) {
  if (stages.empty()) {
    throw std::invalid_argument("QueueFromCrossTierBlocking: no stages");
  }
  const Stage& bottleneck = stages.back();
  // Time to fill the queues of every downstream stage (s+1..n).
  double fill_total = 0;
  for (std::size_t i = 1; i < stages.size(); ++i) {
    const double l_i = FillTime(burst, stages[i]);
    if (!std::isfinite(l_i)) return 0.0;  // never overflows downstream
    fill_total += l_i;
  }
  const double effective_length = burst.length_s - fill_total;
  if (effective_length <= 0) return 0.0;
  double lambda_sum = 0;
  for (const Stage& s : stages) lambda_sum += s.legit_rate;
  const double buildup = lambda_sum + burst.rate - bottleneck.cap_attack;
  return buildup <= 0 ? 0.0 : effective_length * buildup;
}

double DamageLatency(double queue, const Stage& bottleneck) {
  if (bottleneck.cap_attack <= 0) {
    throw std::invalid_argument("DamageLatency: non-positive capacity");
  }
  return std::max(0.0, queue) / bottleneck.cap_attack;
}

double MillibottleneckLength(const Burst& burst, const Stage& bottleneck) {
  if (bottleneck.cap_attack <= 0 || bottleneck.cap_legit <= 0) {
    throw std::invalid_argument("MillibottleneckLength: non-positive capacity");
  }
  const double legit_util = bottleneck.legit_rate / bottleneck.cap_legit;
  if (legit_util >= 1.0) return kInf;
  return burst.volume() / bottleneck.cap_attack / (1.0 - legit_util);
}

double TotalDamage(std::span<const double> per_path_damage) {
  double total = 0;
  for (double d : per_path_damage) total += std::max(0.0, d);
  return total;
}

double RemainingDamage(double total_damage, double interval_s) {
  return total_damage - interval_s;
}

std::vector<double> RequiredIntervals(
    std::span<const double> per_path_damage) {
  return {per_path_damage.begin(), per_path_damage.end()};
}

double BurstLengthForMillibottleneck(double target_pmb_s, double rate_b,
                                     const Stage& bottleneck) {
  if (rate_b <= 0) {
    throw std::invalid_argument("BurstLengthForMillibottleneck: rate <= 0");
  }
  const double volume = VolumeForMillibottleneck(target_pmb_s, bottleneck);
  return volume / rate_b;
}

double VolumeForMillibottleneck(double target_pmb_s,
                                const Stage& bottleneck) {
  if (bottleneck.cap_attack <= 0 || bottleneck.cap_legit <= 0) {
    throw std::invalid_argument("VolumeForMillibottleneck: bad capacity");
  }
  const double legit_util = bottleneck.legit_rate / bottleneck.cap_legit;
  if (legit_util >= 1.0) return 0.0;  // already saturated: any volume works
  return target_pmb_s * bottleneck.cap_attack * (1.0 - legit_util);
}

std::vector<Candidate> RankCandidates(std::vector<Candidate> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.kind != y.kind) {
                return x.kind == BlockingKind::kExecution;
              }
              if (x.volume_for_pmb != y.volume_for_pmb) {
                return x.volume_for_pmb < y.volume_for_pmb;
              }
              return x.type < y.type;
            });
  return candidates;
}

BlockingKind KindFromDependencies(
    microsvc::RequestTypeId type,
    std::span<const trace::PairwiseDep> group_pairs) {
  for (const auto& p : group_pairs) {
    if (p.type == trace::DepType::kMutual && (p.a == type || p.b == type)) {
      return BlockingKind::kExecution;
    }
    if (p.type == trace::DepType::kSequentialAUp && p.a == type) {
      return BlockingKind::kExecution;
    }
    if (p.type == trace::DepType::kSequentialBUp && p.b == type) {
      return BlockingKind::kExecution;
    }
  }
  return BlockingKind::kCrossTier;
}

}  // namespace grunt::model
