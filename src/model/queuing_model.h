#pragma once

#include <span>
#include <vector>

#include "microsvc/types.h"
#include "trace/dependency.h"

namespace grunt::model {

/// Per-microservice parameters of the Section III queuing network model
/// (Table II). Rates are requests/second, queue sizes in requests.
struct Stage {
  double queue_size = 0;    ///< Q_i: thread slots
  double cap_attack = 0;    ///< C_{i,A}: service rate for attack requests
  double cap_legit = 0;     ///< C_{i,L}: service rate for legitimate requests
  double legit_rate = 0;    ///< lambda_i: background arrival rate
};

/// Parameters of one attack burst.
struct Burst {
  double rate = 0;      ///< B: attack requests/second during the burst
  double length_s = 0;  ///< L: burst length in seconds

  double volume() const { return rate * length_s; }  ///< V = B * L
};

// --- Blocking effects of a single burst (Sec III-A) ---

/// Eq (1): queue built by a burst when the millibottleneck sits on a shared
/// upstream microservice (execution blocking). Returns 0 when the burst does
/// not exceed capacity.
double QueueFromExecutionBlocking(const Burst& burst, const Stage& s);

/// Eq (2): time (seconds) to fill up stage `s`'s queue at burst rate B.
/// Returns +inf when the stage is not overloaded by the burst.
double FillTime(const Burst& burst, const Stage& s);

/// Eq (3): queue built by a burst whose millibottleneck is the *last* stage
/// of `stages` (stages s..n along the path, upstream first). The burst must
/// first fill every downstream queue (stages s+1..n) before queueing at the
/// shared upstream stage. Returns 0 when the burst is too short to overflow.
double QueueFromCrossTierBlocking(const Burst& burst,
                                  std::span<const Stage> stages);

/// Eq (4): damage latency t_damage = Q_B / C_{n,A}.
double DamageLatency(double queue, const Stage& bottleneck);

/// Eq (5): millibottleneck length P_MB created by the burst on the
/// bottleneck stage (adapted from Tail Attack [51]). Returns +inf when the
/// background load alone saturates the stage.
double MillibottleneckLength(const Burst& burst, const Stage& bottleneck);

// --- Persistent blocking effects in a dependency group (Sec III-B) ---

/// Eq (6): total damage from the initial mixed burst over m paths.
double TotalDamage(std::span<const double> per_path_damage);

/// Eq (7): remaining damage latency after the first interval I_0.
double RemainingDamage(double total_damage, double interval_s);

/// Eq (8) steady state / Eq (9): the interval after burst i that keeps
/// t_min constant equals that burst's damage latency.
std::vector<double> RequiredIntervals(std::span<const double> per_path_damage);

// --- Inverse relations used by the Commander's initialisation ---

/// Burst length achieving a target millibottleneck length at fixed rate B
/// (inverse of Eq (5)). Returns 0 when the stage is already saturated.
double BurstLengthForMillibottleneck(double target_pmb_s, double rate_b,
                                     const Stage& bottleneck);

/// Attack volume V = B*L that triggers a millibottleneck of target length —
/// independent of the B/L split (Sec III-C ranks paths by this volume).
double VolumeForMillibottleneck(double target_pmb_s, const Stage& bottleneck);

// --- Candidate-path ranking (Sec III-C) ---

/// How a path blocks the rest of its dependency group.
enum class BlockingKind : std::uint8_t {
  kExecution,  ///< bottleneck on a shared UM: blocks others directly
  kCrossTier,  ///< must fill downstream queues first
};

struct Candidate {
  microsvc::RequestTypeId type = microsvc::kInvalidRequestType;
  BlockingKind kind = BlockingKind::kCrossTier;
  /// Volume needed to trigger the reference millibottleneck (P_MB = 500 ms).
  double volume_for_pmb = 0;
};

/// Priority order for attacking a dependency group: execution-blocking paths
/// first (they block others without filling downstream queues), then
/// cross-tier paths; ties broken by ascending volume (stealthier), then by
/// type id for determinism.
std::vector<Candidate> RankCandidates(std::vector<Candidate> candidates);

/// Derives each member's BlockingKind from the group's pairwise
/// dependencies: a path that is the upstream side of any sequential
/// dependency, or party to a mutual dependency, can trigger execution
/// blocking; everything else needs cross-tier overflow.
BlockingKind KindFromDependencies(
    microsvc::RequestTypeId type,
    std::span<const trace::PairwiseDep> group_pairs);

}  // namespace grunt::model
