#include "baseline/tail_attack.h"

#include <stdexcept>

namespace grunt::baseline {

TailAttack::TailAttack(attack::TargetClient& target, attack::BotFarm& bots,
                       Config cfg)
    : target_(target), bots_(bots), cfg_(cfg) {
  if (cfg_.rate <= 0 || cfg_.count < 1) {
    throw std::invalid_argument("TailAttack: bad burst shape");
  }
}

void TailAttack::Run(SimTime until, std::function<void()> done) {
  until_ = until;
  done_ = std::move(done);
  FireNext();
}

void TailAttack::FireNext() {
  if (target_.Now() >= until_) {
    if (done_) done_();
    return;
  }
  attack_requests_ += static_cast<std::uint64_t>(cfg_.count);
  attack::BurstSender::Send(
      target_, bots_, cfg_.url, /*heavy=*/true, cfg_.rate, cfg_.count,
      /*attack_traffic=*/true, [this](attack::BurstObservation obs) {
        bursts_.push_back(std::move(obs));
        target_.After(cfg_.interval, [this] { FireNext(); });
      });
}

FloodAttack::FloodAttack(attack::TargetClient& target, attack::BotFarm& bots,
                         Config cfg)
    : target_(target), bots_(bots), cfg_(std::move(cfg)) {
  if (cfg_.urls.empty() || cfg_.rate <= 0) {
    throw std::invalid_argument("FloodAttack: bad config");
  }
}

void FloodAttack::Run(SimTime until, std::function<void()> done) {
  until_ = until;
  done_ = std::move(done);
  FireNext(0);
}

void FloodAttack::FireNext(std::size_t url_idx) {
  if (target_.Now() >= until_) {
    if (done_) done_();
    return;
  }
  const SimTime now = target_.Now();
  if (const auto bot = bots_.Acquire(now)) {
    ++attack_requests_;
    target_.Send(cfg_.urls[url_idx % cfg_.urls.size()], /*heavy=*/true, *bot,
                 /*attack_traffic=*/true, nullptr);
  }
  const auto gap = static_cast<SimDuration>(1e6 / cfg_.rate);
  target_.After(std::max<SimDuration>(1, gap),
                [this, url_idx] { FireNext(url_idx + 1); });
}

}  // namespace grunt::baseline
