#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "attack/botfarm.h"
#include "attack/burst.h"
#include "attack/target_client.h"

namespace grunt::baseline {

/// Re-implementation of the Tail attack (Shan et al., CCS'17 [51]) as the
/// paper's closest prior art: periodic ON/OFF bursts against a SINGLE
/// execution path of a (monolithic-style) target. On microservice targets
/// this only damages the few paths that depend on the attacked one — the
/// comparison Grunt's related-work section makes (Sec VII).
class TailAttack {
 public:
  struct Config {
    std::int32_t url = 0;
    double rate = 800.0;       ///< burst rate B (requests/second)
    std::int32_t count = 100;  ///< requests per burst
    SimDuration interval = Ms(500);  ///< OFF period between bursts
  };

  TailAttack(attack::TargetClient& target, attack::BotFarm& bots, Config cfg);

  void Run(SimTime until, std::function<void()> done);

  const std::vector<attack::BurstObservation>& bursts() const {
    return bursts_;
  }
  std::uint64_t attack_requests() const { return attack_requests_; }

 private:
  void FireNext();

  attack::TargetClient& target_;
  attack::BotFarm& bots_;
  Config cfg_;
  SimTime until_ = 0;
  std::function<void()> done_;
  std::vector<attack::BurstObservation> bursts_;
  std::uint64_t attack_requests_ = 0;
};

/// Brute-force volumetric flood: constant high-rate request stream over the
/// given URLs. Trivially effective and trivially detectable — the reference
/// point for Grunt's volume/stealth comparisons.
class FloodAttack {
 public:
  struct Config {
    std::vector<std::int32_t> urls;
    double rate = 5000.0;  ///< total requests/second across all URLs
  };

  FloodAttack(attack::TargetClient& target, attack::BotFarm& bots, Config cfg);

  void Run(SimTime until, std::function<void()> done);
  std::uint64_t attack_requests() const { return attack_requests_; }

 private:
  void FireNext(std::size_t url_idx);

  attack::TargetClient& target_;
  attack::BotFarm& bots_;
  Config cfg_;
  SimTime until_ = 0;
  std::function<void()> done_;
  std::uint64_t attack_requests_ = 0;
};

}  // namespace grunt::baseline
