#pragma once

// Named, serializable campaign jobs. A job kind is a pure function from
// (JSON args, seed) to a JSON result; because the description is data, the
// same job runs identically on the in-process thread pool, in a pre-forked
// worker process, or on a remote machine that linked the same registrations
// (tools/grunt_campaign_worker). Determinism rule: a kind must derive all
// randomness from `seed` and all configuration from `args`, so every
// backend and worker count produces byte-identical results.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/json.h"

namespace grunt::dist {

using JobFn =
    std::function<json::Value(const json::Value& args, std::uint64_t seed)>;

class JobRegistry {
 public:
  /// The process-wide registry the worker loops execute against. Benches
  /// and the worker CLI populate it at startup (RegisterCampaignJobs).
  static JobRegistry& Global();

  /// Registers `kind`; re-registering an existing kind throws
  /// json::Error (two different functions behind one name on different
  /// machines would silently break the determinism contract).
  void Register(const std::string& kind, JobFn fn);

  /// nullptr when unknown.
  const JobFn* Find(const std::string& kind) const;

  /// Registration-order kind names (grunt_campaign_worker --list-kinds).
  std::vector<std::string> Kinds() const;

 private:
  std::vector<std::pair<std::string, JobFn>> entries_;
};

/// Executes `kind` from the global registry; throws json::Error naming the
/// kind when it was never registered.
json::Value RunRegisteredJob(const std::string& kind,
                             const json::Value& args, std::uint64_t seed);

}  // namespace grunt::dist
