#include "dist/frame.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace grunt::dist {

namespace {

/// read() until `n` bytes or EOF. Returns bytes actually read (< n only on
/// EOF); throws FrameError on a hard error.
std::size_t ReadFully(int fd, void* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r =
        ::read(fd, static_cast<char*>(buf) + got, n - got);
    if (r == 0) break;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      throw FrameError(std::string("frame read failed: ") +
                       std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

void WriteFrame(int fd, const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw FrameError("frame payload of " +
                     std::to_string(frame.payload.size()) +
                     " bytes exceeds the " +
                     std::to_string(kMaxFramePayload) + "-byte cap");
  }
  const std::uint32_t length =
      static_cast<std::uint32_t>(frame.payload.size()) + 1;
  char header[5];
  header[0] = static_cast<char>(length & 0xff);
  header[1] = static_cast<char>((length >> 8) & 0xff);
  header[2] = static_cast<char>((length >> 16) & 0xff);
  header[3] = static_cast<char>((length >> 24) & 0xff);
  header[4] = static_cast<char>(frame.type);
  // One buffered write for the common small frame would be nicer, but the
  // header + payload split keeps the payload zero-copy; both writes loop.
  const auto write_all = [fd](const char* data, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::write(fd, data + sent, n - sent);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw FrameError(std::string("frame write failed: ") +
                         std::strerror(errno));
      }
      sent += static_cast<std::size_t>(w);
    }
  };
  write_all(header, sizeof(header));
  write_all(frame.payload.data(), frame.payload.size());
}

bool ReadFrame(int fd, Frame* out) {
  char header[5];
  const std::size_t got = ReadFully(fd, header, sizeof(header));
  if (got == 0) return false;  // clean EOF on a frame boundary
  if (got < sizeof(header)) {
    throw FrameError("truncated frame: EOF after " + std::to_string(got) +
                     " of 5 header bytes");
  }
  const std::uint32_t length =
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]))
       << 24);
  if (length == 0) throw FrameError("corrupt frame: zero length");
  if (length - 1 > kMaxFramePayload) {
    throw FrameError("corrupt frame: " + std::to_string(length - 1) +
                     "-byte payload exceeds the " +
                     std::to_string(kMaxFramePayload) + "-byte cap");
  }
  const auto raw_type = static_cast<unsigned char>(header[4]);
  if (raw_type < static_cast<unsigned char>(FrameType::kHello) ||
      raw_type > static_cast<unsigned char>(FrameType::kShutdown)) {
    throw FrameError("corrupt frame: unknown type " +
                     std::to_string(raw_type));
  }
  out->type = static_cast<FrameType>(raw_type);
  out->payload.resize(length - 1);
  if (length > 1) {
    const std::size_t body = ReadFully(fd, out->payload.data(), length - 1);
    if (body < length - 1) {
      throw FrameError("truncated frame: EOF after " + std::to_string(body) +
                       " of " + std::to_string(length - 1) +
                       " payload bytes");
    }
  }
  return true;
}

}  // namespace grunt::dist
