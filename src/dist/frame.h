#pragma once

// Length-prefixed framing for the out-of-process campaign backends.
//
// Wire format (identical over pre-forked worker pipes and TCP sockets, so
// the protocol is tested once and shared by both):
//
//   u32 little-endian  length   (= 1 + payload size; never 0)
//   u8                 type     (FrameType below)
//   length-1 bytes     payload  (UTF-8 JSON via util/json, or empty)
//
// Reads distinguish three endings: a clean EOF exactly on a frame boundary
// (ReadFrame returns false — the peer closed after a complete exchange), a
// truncated stream (EOF mid-frame) and a corrupt prefix (zero or oversized
// length, unknown type) — both throw FrameError, because a half frame is a
// protocol violation, not a soft end-of-stream.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace grunt::dist {

enum class FrameType : std::uint8_t {
  kHello = 1,     ///< worker -> dispatcher: {"proto":1,"name":...}
  kJob = 2,       ///< dispatcher -> worker: {"job","kind","seed","args"}
  kResult = 3,    ///< worker -> dispatcher: {"job","ok","result"|"error"}
  kShutdown = 4,  ///< dispatcher -> worker: empty payload, drain and exit
};

/// Largest accepted payload. Campaign results carry full response-time
/// sample vectors (~1 MB for a 7K-user window); 256 MB is far above any
/// real frame and small enough to reject a desynced/corrupt length prefix
/// before it turns into an allocation bomb.
inline constexpr std::uint32_t kMaxFramePayload = 256u << 20;

class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

struct Frame {
  FrameType type = FrameType::kShutdown;
  std::string payload;
};

/// Writes the whole frame to `fd` (loops over short writes, retries EINTR).
/// Throws FrameError on I/O failure — including EPIPE when the peer died,
/// which callers turn into crash-containment handling.
void WriteFrame(int fd, const Frame& frame);

/// Reads one frame. Returns false on clean EOF at a frame boundary; throws
/// FrameError on truncated (EOF mid-frame) or corrupt (bad length / type)
/// input. Blocks until the frame is complete.
bool ReadFrame(int fd, Frame* out);

}  // namespace grunt::dist
