#include "dist/job_registry.h"

namespace grunt::dist {

JobRegistry& JobRegistry::Global() {
  static JobRegistry registry;
  return registry;
}

void JobRegistry::Register(const std::string& kind, JobFn fn) {
  if (Find(kind) != nullptr) {
    throw json::Error("job kind \"" + kind + "\" registered twice");
  }
  entries_.emplace_back(kind, std::move(fn));
}

const JobFn* JobRegistry::Find(const std::string& kind) const {
  for (const auto& [name, fn] : entries_) {
    if (name == kind) return &fn;
  }
  return nullptr;
}

std::vector<std::string> JobRegistry::Kinds() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, fn] : entries_) out.push_back(name);
  return out;
}

json::Value RunRegisteredJob(const std::string& kind,
                             const json::Value& args, std::uint64_t seed) {
  const JobFn* fn = JobRegistry::Global().Find(kind);
  if (fn == nullptr) {
    throw json::Error("unknown job kind \"" + kind +
                      "\" (worker built without its registration?)");
  }
  return (*fn)(args, seed);
}

}  // namespace grunt::dist
