#include "dist/worker_loop.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <exception>

#include "dist/frame.h"
#include "dist/job_registry.h"
#include "util/json.h"

namespace grunt::dist {

int RunWorkerLoop(int in_fd, int out_fd) {
  Frame frame;
  for (;;) {
    try {
      if (!ReadFrame(in_fd, &frame)) return 0;  // dispatcher closed cleanly
    } catch (const FrameError& e) {
      std::fprintf(stderr, "grunt worker: %s\n", e.what());
      return 2;
    }
    if (frame.type == FrameType::kShutdown) return 0;
    if (frame.type != FrameType::kJob) {
      std::fprintf(stderr, "grunt worker: unexpected frame type %d\n",
                   static_cast<int>(frame.type));
      return 2;
    }

    json::Object reply;
    try {
      const json::Value job = json::Parse(frame.payload);
      const std::int64_t index = job.At("job").AsInt64();
      const std::string& kind = job.At("kind").AsString();
      const auto seed = static_cast<std::uint64_t>(job.At("seed").AsInt64());
      reply.emplace_back("job", index);
      json::Value result = RunRegisteredJob(kind, job.At("args"), seed);
      reply.emplace_back("ok", true);
      reply.emplace_back("result", std::move(result));
    } catch (const std::exception& e) {
      // Keep whatever "job" field made it in; a parse failure before the
      // index was read reports job -1 and the dispatcher matches it to the
      // in-flight index on its side.
      if (reply.empty()) reply.emplace_back("job", std::int64_t{-1});
      reply.resize(1);  // drop any half-built ok/result fields
      reply.emplace_back("ok", false);
      reply.emplace_back("error", std::string(e.what()));
    }
    try {
      WriteFrame(out_fd, Frame{FrameType::kResult,
                               json::Value(std::move(reply)).Dump(0)});
    } catch (const FrameError& e) {
      std::fprintf(stderr, "grunt worker: %s\n", e.what());
      return 2;
    }
  }
}

int RunSocketWorker(const std::string& host, std::uint16_t port,
                    const std::string& name) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints,
                                &res);
  if (gai != 0) {
    std::fprintf(stderr, "grunt worker: resolve %s: %s\n", host.c_str(),
                 ::gai_strerror(gai));
    return 3;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    std::fprintf(stderr, "grunt worker: connect %s:%u: %s\n", host.c_str(),
                 port, std::strerror(errno));
    return 3;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  json::Object hello;
  hello.emplace_back("proto", std::int64_t{1});
  hello.emplace_back("name", name);
  int rc;
  try {
    WriteFrame(fd, Frame{FrameType::kHello,
                         json::Value(std::move(hello)).Dump(0)});
    rc = RunWorkerLoop(fd, fd);
  } catch (const FrameError& e) {
    std::fprintf(stderr, "grunt worker: %s\n", e.what());
    rc = 2;
  }
  ::close(fd);
  return rc;
}

}  // namespace grunt::dist
