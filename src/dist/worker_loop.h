#pragma once

// The worker half of the campaign protocol: read kJob frames, execute the
// named registry kind, write kResult frames, exit on kShutdown or EOF.
// Shared verbatim by the pre-forked process-pool children and by
// tools/grunt_campaign_worker joining over TCP, so the two backends cannot
// drift apart.

#include <cstdint>
#include <string>

namespace grunt::dist {

/// Serves jobs from `in_fd`, answering on `out_fd` (the two may be the same
/// fd for a socket). A job whose kind is unknown or whose function throws
/// answers with an error result — the worker itself stays alive; only a
/// crash (abort/_exit inside a job) takes it down, and the dispatcher then
/// fails just the in-flight job. Returns 0 on kShutdown or clean EOF, 2 on
/// a protocol violation (truncated/corrupt frame).
int RunWorkerLoop(int in_fd, int out_fd);

/// Connects to a dispatcher listening on host:port, sends the kHello frame
/// carrying `name`, then runs the worker loop over the socket. Returns the
/// worker loop's exit code, or 3 when the connection fails (stderr says
/// why).
int RunSocketWorker(const std::string& host, std::uint16_t port,
                    const std::string& name);

}  // namespace grunt::dist
