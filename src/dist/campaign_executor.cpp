#include "dist/campaign_executor.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "dist/frame.h"
#include "dist/job_registry.h"
#include "dist/worker_loop.h"
#include "util/env.h"
#include "util/parallel_runner.h"

namespace grunt::dist {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Ignores SIGPIPE for the guard's lifetime: a write to a crashed worker
/// must surface as EPIPE (crash containment), not kill the dispatcher.
class SigPipeGuard {
 public:
  SigPipeGuard() {
    struct sigaction ign {};
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, &old_);
  }
  ~SigPipeGuard() { ::sigaction(SIGPIPE, &old_, nullptr); }

 private:
  struct sigaction old_ {};
};

std::string DescribeExit(pid_t pid, int status) {
  char buf[128];
  if (WIFSIGNALED(status)) {
    std::snprintf(buf, sizeof(buf), "pid %d killed by signal %d (%s)",
                  static_cast<int>(pid), WTERMSIG(status),
                  ::strsignal(WTERMSIG(status)));
  } else if (WIFEXITED(status)) {
    std::snprintf(buf, sizeof(buf), "pid %d exited with status %d",
                  static_cast<int>(pid), WEXITSTATUS(status));
  } else {
    std::snprintf(buf, sizeof(buf), "pid %d ended (status 0x%x)",
                  static_cast<int>(pid), status);
  }
  return buf;
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kThread: return "thread";
    case Backend::kProcess: return "process";
    case Backend::kSocket: return "socket";
  }
  return "?";
}

Backend ParseBackend(const std::string& text) {
  if (text == "thread") return Backend::kThread;
  if (text == "process") return Backend::kProcess;
  if (text == "socket") return Backend::kSocket;
  throw util::EnvError("GRUNT_BENCH_BACKEND=\"" + text +
                       "\": expected one of thread|process|socket");
}

ExecutorConfig ConfigFromEnv() {
  ExecutorConfig cfg;
  if (const char* env = std::getenv("GRUNT_BENCH_BACKEND")) {
    if (env[0] != '\0') cfg.backend = ParseBackend(env);
  }
  cfg.workers = static_cast<unsigned>(util::PositiveEnvOr(
      "GRUNT_BENCH_WORKERS", 0, util::ParallelRunner::kMaxThreads));
  cfg.listen_port = static_cast<std::uint16_t>(
      util::PositiveEnvOr("GRUNT_BENCH_LISTEN_PORT", 0, 65535));
  if (const char* env = std::getenv("GRUNT_BENCH_LISTEN_HOST")) {
    if (env[0] != '\0') cfg.listen_host = env;
  }
  return cfg;
}

/// One worker attachment: the fd pair it is fed over, the process behind
/// it (fork lanes), and what it is currently running.
struct CampaignExecutor::Lane {
  unsigned id = 0;
  int to_fd = -1;    ///< dispatcher -> worker
  int from_fd = -1;  ///< worker -> dispatcher
  pid_t pid = -1;    ///< fork lanes only
  std::ptrdiff_t inflight = -1;  ///< job index, -1 when idle
  Clock::time_point dispatched_at;
  bool down = false;

  bool alive() const { return !down && from_fd >= 0; }

  void CloseFds() {
    if (to_fd >= 0 && to_fd != from_fd) ::close(to_fd);
    if (from_fd >= 0) ::close(from_fd);
    to_fd = from_fd = -1;
  }
};

/// Interned ids for the per-worker counters in cfg_.bus->metrics().
struct CampaignExecutor::Metrics {
  telemetry::MetricsRegistry::Id jobs_ok, jobs_failed, restarts, job_ms;
  struct PerWorker {
    telemetry::MetricsRegistry::Id jobs, steals, busy_ms;
  };
  std::vector<PerWorker> worker;
};

CampaignExecutor::CampaignExecutor(ExecutorConfig cfg)
    : cfg_(std::move(cfg)) {
  workers_ = cfg_.workers > 0 ? cfg_.workers
                              : util::ParallelRunner::DefaultThreads();
  if (cfg_.bus != nullptr) {
    metrics_ = std::make_unique<Metrics>();
    auto& reg = cfg_.bus->metrics();
    metrics_->jobs_ok = reg.Counter("campaign.jobs_ok");
    metrics_->jobs_failed = reg.Counter("campaign.jobs_failed");
    metrics_->restarts = reg.Counter("campaign.worker_restarts");
    metrics_->job_ms = reg.Histogram(
        "campaign.job_ms",
        {1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000});
  }
}

CampaignExecutor::~CampaignExecutor() {
  ShutdownLanes();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void CampaignExecutor::ShutdownLanes() {
  SigPipeGuard guard;
  for (auto& lane : lanes_) {
    if (lane->from_fd < 0 && lane->to_fd < 0) continue;
    if (!lane->down && lane->to_fd >= 0) {
      try {
        WriteFrame(lane->to_fd, Frame{FrameType::kShutdown, ""});
      } catch (const FrameError&) {
        // already dead; reaped below
      }
    }
    lane->CloseFds();
    if (lane->pid > 0) {
      int status = 0;
      ::waitpid(lane->pid, &status, 0);
      lane->pid = -1;
    }
  }
  lanes_.clear();
}

void CampaignExecutor::RecordResult(Lane& lane, std::size_t index, bool ok,
                                    double latency_ms) {
  WorkerStats& st = stats_[lane.id];
  st.jobs += 1;
  const bool stolen = !lanes_.empty() && index % lanes_.size() != lane.id;
  if (stolen) st.steals += 1;
  if (!ok) st.failures += 1;
  st.busy_ms += latency_ms;
  if (cfg_.bus != nullptr) {
    auto& reg = cfg_.bus->metrics();
    auto& per = metrics_->worker[lane.id];
    reg.Add(per.jobs);
    if (stolen) reg.Add(per.steals);
    reg.Set(per.busy_ms, st.busy_ms);
    reg.Add(ok ? metrics_->jobs_ok : metrics_->jobs_failed);
    reg.Observe(metrics_->job_ms, latency_ms);
    telemetry::CampaignJobEvent ev;
    ev.job_index = index;
    ev.worker = lane.id;
    ev.stolen = stolen;
    ev.ok = ok;
    ev.latency_ms = latency_ms;
    cfg_.bus->campaign_job().Publish(ev);
  }
}

std::unique_ptr<CampaignExecutor::Lane> CampaignExecutor::SpawnForkLane(
    unsigned id) {
  int to_child[2];    // dispatcher writes jobs
  int from_child[2];  // worker writes results
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    throw CampaignError(std::string("process backend: pipe() failed: ") +
                            std::strerror(errno),
                        0, "", Backend::kProcess);
  }
  // Children inherit the parent's stdio buffers: flush before forking so a
  // bench's already-printed (but still buffered) output is not replayed by
  // every worker — table1 stdout must stay byte-identical.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    throw CampaignError(std::string("process backend: fork() failed: ") +
                            std::strerror(errno),
                        0, "", Backend::kProcess);
  }
  if (pid == 0) {
    // Worker child. Drop every fd that belongs to the dispatcher or to a
    // sibling lane: a sibling holding a dead worker's pipe write-end alive
    // would mask that worker's EOF and break crash detection.
    ::close(to_child[1]);
    ::close(from_child[0]);
    for (const auto& other : lanes_) {
      if (other->to_fd >= 0) ::close(other->to_fd);
      if (other->from_fd >= 0 && other->from_fd != other->to_fd) {
        ::close(other->from_fd);
      }
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    const int rc = RunWorkerLoop(to_child[0], from_child[1]);
    // _exit: never run the parent's atexit handlers / flush its inherited
    // stdio from a forked image.
    ::_exit(rc);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  auto lane = std::make_unique<Lane>();
  lane->id = id;
  lane->to_fd = to_child[1];
  lane->from_fd = from_child[0];
  lane->pid = pid;
  return lane;
}

std::uint16_t CampaignExecutor::BindListener() {
  if (listen_fd_ >= 0) return bound_port_;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw CampaignError(std::string("socket backend: socket() failed: ") +
                            std::strerror(errno),
                        0, "", Backend::kSocket);
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.listen_port);
  if (::inet_pton(AF_INET, cfg_.listen_host.c_str(), &addr.sin_addr) != 1) {
    throw CampaignError("socket backend: bad listen host \"" +
                            cfg_.listen_host + "\"",
                        0, "", Backend::kSocket);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    throw CampaignError(std::string("socket backend: bind/listen on ") +
                            cfg_.listen_host + ":" +
                            std::to_string(cfg_.listen_port) +
                            " failed: " + std::strerror(errno),
                        0, "", Backend::kSocket);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);
  return bound_port_;
}

void CampaignExecutor::AcceptSocketLanes(std::size_t want) {
  BindListener();
  if (lanes_.size() >= want) return;
  std::fprintf(stderr,
               "campaign executor: waiting for %zu worker(s) on %s:%u "
               "(tools/grunt_campaign_worker --connect <host>:%u)\n",
               want - lanes_.size(), cfg_.listen_host.c_str(), bound_port_,
               bound_port_);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             cfg_.accept_timeout_sec));
  while (lanes_.size() < want) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      throw CampaignError(
          "socket backend: only " + std::to_string(lanes_.size()) + " of " +
              std::to_string(want) + " workers joined within " +
              std::to_string(cfg_.accept_timeout_sec) + "s",
          0, "", Backend::kSocket);
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (rc < 0 && errno != EINTR) {
      throw CampaignError(std::string("socket backend: poll() failed: ") +
                              std::strerror(errno),
                          0, "", Backend::kSocket);
    }
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Frame hello;
    std::string name = "worker";
    try {
      if (!ReadFrame(fd, &hello) || hello.type != FrameType::kHello) {
        ::close(fd);
        continue;
      }
      const json::Value v = json::Parse(hello.payload);
      if (const json::Value* n = v.Find("name")) name = n->AsString();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "campaign executor: rejected connection: %s\n",
                   e.what());
      ::close(fd);
      continue;
    }
    auto lane = std::make_unique<Lane>();
    lane->id = static_cast<unsigned>(lanes_.size());
    lane->to_fd = fd;
    lane->from_fd = fd;
    if (stats_.size() <= lane->id) {
      WorkerStats st;
      st.worker = lane->id;
      st.name = name;
      stats_.push_back(st);
      if (metrics_ != nullptr) {
        auto& reg = cfg_.bus->metrics();
        const std::string prefix =
            "campaign.worker." + std::to_string(lane->id) + ".";
        metrics_->worker.push_back(
            {reg.Counter(prefix + "jobs"), reg.Counter(prefix + "steals"),
             reg.Gauge(prefix + "busy_ms")});
      }
    }
    std::fprintf(stderr, "campaign executor: worker %u (\"%s\") joined\n",
                 lane->id, name.c_str());
    lanes_.push_back(std::move(lane));
  }
}

void CampaignExecutor::EnsureLanes(std::size_t jobs_hint) {
  // Never spin up more lanes than the largest batch can feed; a persistent
  // pool keeps whatever size its first Run established.
  const std::size_t want =
      std::max<std::size_t>(1, std::min<std::size_t>(workers_, jobs_hint));
  if (cfg_.backend == Backend::kSocket) {
    AcceptSocketLanes(std::max<std::size_t>(want, lanes_.size()));
    return;
  }
  while (lanes_.size() < want) {
    const auto id = static_cast<unsigned>(lanes_.size());
    if (stats_.size() <= id) {
      WorkerStats st;
      st.worker = id;
      st.name = "fork";
      stats_.push_back(st);
      if (metrics_ != nullptr) {
        auto& reg = cfg_.bus->metrics();
        const std::string prefix =
            "campaign.worker." + std::to_string(id) + ".";
        metrics_->worker.push_back(
            {reg.Counter(prefix + "jobs"), reg.Counter(prefix + "steals"),
             reg.Gauge(prefix + "busy_ms")});
      }
    }
    auto lane = SpawnForkLane(id);
    stats_[id].pid = lane->pid;
    lanes_.push_back(std::move(lane));
  }
}

bool CampaignExecutor::SendJobTo(Lane& lane, const std::string& kind,
                                 const std::vector<JobSpec>& jobs,
                                 std::size_t index) {
  json::Object job;
  job.emplace_back("job", static_cast<std::int64_t>(index));
  job.emplace_back("kind", kind);
  job.emplace_back("seed", static_cast<std::int64_t>(jobs[index].seed));
  job.emplace_back("args", jobs[index].args);
  try {
    WriteFrame(lane.to_fd,
               Frame{FrameType::kJob, json::Value(std::move(job)).Dump(0)});
  } catch (const FrameError&) {
    // The job never reached the worker; it is safe to run elsewhere.
    requeue_.push_back(index);
    return false;
  }
  lane.inflight = static_cast<std::ptrdiff_t>(index);
  lane.dispatched_at = Clock::now();
  return true;
}

void CampaignExecutor::HandleLaneDeath(Lane& lane, const std::string& why,
                                       const std::string& kind,
                                       std::vector<JobOutcome>* outcomes) {
  std::string diag = why;
  if (lane.pid > 0) {
    int status = 0;
    if (::waitpid(lane.pid, &status, 0) == lane.pid) {
      diag += " (" + DescribeExit(lane.pid, status) + ")";
    }
    lane.pid = -1;
  }
  lane.CloseFds();
  lane.down = true;
  if (lane.inflight >= 0) {
    const auto index = static_cast<std::size_t>(lane.inflight);
    JobOutcome& out = (*outcomes)[index];
    out.ok = false;
    out.error = "worker " + std::to_string(lane.id) + " " + diag +
                " while running job " + std::to_string(index) +
                " of kind \"" + kind + "\" on the " +
                BackendName(cfg_.backend) + " backend";
    RecordResult(lane, index, /*ok=*/false,
                 MsSince(lane.dispatched_at));
    lane.inflight = -1;
  }
}

void CampaignExecutor::DispatchLoop(const std::string& kind,
                                    const std::vector<JobSpec>& jobs,
                                    std::vector<JobOutcome>* outcomes) {
  const std::size_t n = jobs.size();
  std::size_t next = 0;
  std::size_t decided = 0;

  const auto take_next = [&]() -> std::ptrdiff_t {
    if (!requeue_.empty()) {
      const std::size_t j = requeue_.back();
      requeue_.pop_back();
      return static_cast<std::ptrdiff_t>(j);
    }
    if (next < n) return static_cast<std::ptrdiff_t>(next++);
    return -1;
  };

  // Count already-decided outcomes (requeue bookkeeping keeps this 0 in
  // practice; defensive for repeated failures).
  const auto count_decided = [&] {
    std::size_t c = 0;
    for (const auto& o : *outcomes) {
      if (o.ok || !o.error.empty()) ++c;
    }
    return c;
  };

  // Feed an initial job to every idle lane, in lane order, so job i seeds
  // worker i and the steal counter has a stable baseline.
  const auto feed = [&](Lane& lane) {
    while (lane.alive() && lane.inflight < 0) {
      const std::ptrdiff_t j = take_next();
      if (j < 0) return;
      if (!SendJobTo(lane, kind, jobs, static_cast<std::size_t>(j))) {
        HandleLaneDeath(lane, "disconnected at dispatch", kind, outcomes);
        if (cfg_.backend == Backend::kProcess) {
          auto fresh = SpawnForkLane(lane.id);
          stats_[lane.id].restarts += 1;
          stats_[lane.id].pid = fresh->pid;
          if (metrics_ != nullptr) cfg_.bus->metrics().Add(metrics_->restarts);
          // Replace in place; keep polling order stable.
          fresh->down = false;
          lanes_[lane.id].swap(fresh);
          return;  // the fresh lane is fed on the next loop turn
        }
        return;
      }
    }
  };
  for (auto& lane : lanes_) feed(*lane);

  std::vector<pollfd> pfds;
  while (decided < n) {
    bool any_alive = false;
    bool any_inflight = false;
    pfds.clear();
    for (const auto& lane : lanes_) {
      if (!lane->alive()) continue;
      any_alive = true;
      if (lane->inflight >= 0) any_inflight = true;
      pfds.push_back(pollfd{lane->from_fd, POLLIN, 0});
    }
    if (!any_alive) {
      // Process backend respawns in feed(); landing here means forks are
      // failing or this is the socket backend with every worker gone.
      for (std::size_t j = 0; j < n; ++j) {
        JobOutcome& out = (*outcomes)[j];
        if (!out.ok && out.error.empty()) {
          out.error = "job " + std::to_string(j) + " of kind \"" + kind +
                      "\" never ran: no workers remain on the " +
                      BackendName(cfg_.backend) + " backend";
        }
      }
      return;
    }
    if (!any_inflight) {
      // Lanes are idle yet jobs are undecided: feed them (covers the
      // respawn-in-feed path) and re-check.
      for (auto& lane : lanes_) feed(*lane);
      decided = count_decided();
      if (decided >= n) return;
      bool fed = false;
      for (const auto& lane : lanes_) fed |= lane->inflight >= 0;
      if (!fed) continue;  // will hit !any_alive next turn if all died
      continue;
    }

    int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw CampaignError(std::string("dispatcher poll() failed: ") +
                              std::strerror(errno),
                          0, kind, cfg_.backend);
    }
    std::size_t pi = 0;
    for (auto& lane : lanes_) {
      if (!lane->alive()) continue;
      const pollfd& pfd = pfds[pi++];
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Frame frame;
      bool got = false;
      try {
        got = ReadFrame(lane->from_fd, &frame);
      } catch (const FrameError& e) {
        HandleLaneDeath(*lane, std::string("broke the protocol: ") +
                                   e.what(),
                        kind, outcomes);
        decided = count_decided();
        feed(*lane);
        continue;
      }
      if (!got) {
        HandleLaneDeath(*lane, "died", kind, outcomes);
        decided = count_decided();
        if (cfg_.backend == Backend::kProcess &&
            (lane->inflight < 0) && decided < n) {
          // Respawn so the remaining jobs keep a full pool.
          auto fresh = SpawnForkLane(lane->id);
          stats_[lane->id].restarts += 1;
          stats_[lane->id].pid = fresh->pid;
          if (metrics_ != nullptr) {
            cfg_.bus->metrics().Add(metrics_->restarts);
          }
          lanes_[lane->id].swap(fresh);
          feed(*lanes_[lane->id]);
        }
        continue;
      }
      if (frame.type != FrameType::kResult) {
        HandleLaneDeath(*lane,
                        "broke the protocol: unexpected frame type " +
                            std::to_string(static_cast<int>(frame.type)),
                        kind, outcomes);
        decided = count_decided();
        continue;
      }
      std::size_t index;
      JobOutcome out;
      try {
        const json::Value v = json::Parse(frame.payload);
        const std::int64_t reported = v.At("job").AsInt64();
        index = reported >= 0 ? static_cast<std::size_t>(reported)
                              : static_cast<std::size_t>(lane->inflight);
        out.ok = v.At("ok").AsBool();
        if (out.ok) {
          out.result = v.At("result");
        } else {
          out.error = v.At("error").AsString();
        }
      } catch (const std::exception& e) {
        HandleLaneDeath(*lane, std::string("sent an unparseable result: ") +
                                   e.what(),
                        kind, outcomes);
        decided = count_decided();
        continue;
      }
      if (lane->inflight < 0 ||
          index != static_cast<std::size_t>(lane->inflight) || index >= n) {
        HandleLaneDeath(*lane,
                        "answered for job " + std::to_string(index) +
                            " it was never sent",
                        kind, outcomes);
        decided = count_decided();
        continue;
      }
      if (!out.ok) {
        // Keep the campaign-cell context on worker-side failures too.
        out.error = "job " + std::to_string(index) + " of kind \"" + kind +
                    "\" failed on worker " + std::to_string(lane->id) +
                    " (" + BackendName(cfg_.backend) +
                    " backend): " + out.error;
      }
      (*outcomes)[index] = std::move(out);
      ++decided;
      RecordResult(*lane, index, (*outcomes)[index].ok,
                   MsSince(lane->dispatched_at));
      lane->inflight = -1;
      feed(*lane);
    }
  }
}

std::vector<JobOutcome> CampaignExecutor::RunThreadBackend(
    const std::string& kind, const std::vector<JobSpec>& jobs) {
  const std::size_t n = jobs.size();
  std::vector<JobOutcome> outcomes(n);
  std::vector<double> latency_ms(n, 0.0);
  util::ParallelRunner pool(workers_);
  pool.ForEachIndex(n, [&](std::size_t i) {
    const auto t0 = Clock::now();
    try {
      outcomes[i].result = RunRegisteredJob(kind, jobs[i].args,
                                            jobs[i].seed);
      outcomes[i].ok = true;
    } catch (const std::exception& e) {
      outcomes[i].error = "job " + std::to_string(i) + " of kind \"" +
                          kind + "\" failed on the thread backend: " +
                          e.what();
    } catch (...) {
      outcomes[i].error = "job " + std::to_string(i) + " of kind \"" +
                          kind +
                          "\" failed on the thread backend: non-exception "
                          "throw";
    }
    latency_ms[i] = MsSince(t0);
  });
  // The bus channels are not thread-safe, so the thread backend publishes
  // after the barrier, in job-index order (one lane: worker 0).
  if (stats_.empty()) {
    WorkerStats st;
    st.worker = 0;
    st.name = "thread";
    stats_.push_back(st);
    if (metrics_ != nullptr) {
      auto& reg = cfg_.bus->metrics();
      metrics_->worker.push_back({reg.Counter("campaign.worker.0.jobs"),
                                  reg.Counter("campaign.worker.0.steals"),
                                  reg.Gauge("campaign.worker.0.busy_ms")});
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    WorkerStats& st = stats_[0];
    st.jobs += 1;
    if (!outcomes[i].ok) st.failures += 1;
    st.busy_ms += latency_ms[i];
    if (cfg_.bus != nullptr) {
      auto& reg = cfg_.bus->metrics();
      auto& per = metrics_->worker[0];
      reg.Add(per.jobs);
      reg.Set(per.busy_ms, st.busy_ms);
      reg.Add(outcomes[i].ok ? metrics_->jobs_ok : metrics_->jobs_failed);
      reg.Observe(metrics_->job_ms, latency_ms[i]);
      telemetry::CampaignJobEvent ev;
      ev.job_index = i;
      ev.worker = 0;
      ev.stolen = false;
      ev.ok = outcomes[i].ok;
      ev.latency_ms = latency_ms[i];
      cfg_.bus->campaign_job().Publish(ev);
    }
  }
  return outcomes;
}

std::vector<JobOutcome> CampaignExecutor::RunAll(
    const std::string& kind, const std::vector<JobSpec>& jobs) {
  if (jobs.empty()) return {};
  if (cfg_.backend == Backend::kThread) {
    return RunThreadBackend(kind, jobs);
  }
  SigPipeGuard guard;
  EnsureLanes(jobs.size());
  std::vector<JobOutcome> outcomes(jobs.size());
  requeue_.clear();
  DispatchLoop(kind, jobs, &outcomes);
  return outcomes;
}

std::vector<json::Value> CampaignExecutor::Run(
    const std::string& kind, const std::vector<JobSpec>& jobs) {
  std::vector<JobOutcome> outcomes = RunAll(kind, jobs);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) {
      throw CampaignError(outcomes[i].error, i, kind, cfg_.backend);
    }
  }
  std::vector<json::Value> results;
  results.reserve(outcomes.size());
  for (auto& o : outcomes) results.push_back(std::move(o.result));
  return results;
}

json::Value CampaignExecutor::StatsJson() const {
  json::Object root;
  root.emplace_back("backend", BackendName(cfg_.backend));
  root.emplace_back("workers", static_cast<std::int64_t>(workers_));
  json::Array per;
  for (const auto& st : stats_) {
    json::Object o;
    o.emplace_back("worker", static_cast<std::int64_t>(st.worker));
    o.emplace_back("name", st.name);
    if (st.pid > 0) {
      o.emplace_back("pid", static_cast<std::int64_t>(st.pid));
    }
    o.emplace_back("jobs", static_cast<std::int64_t>(st.jobs));
    o.emplace_back("steals", static_cast<std::int64_t>(st.steals));
    o.emplace_back("failures", static_cast<std::int64_t>(st.failures));
    o.emplace_back("restarts", static_cast<std::int64_t>(st.restarts));
    o.emplace_back("busy_ms",
                   std::round(st.busy_ms * 1000.0) / 1000.0);
    per.push_back(json::Value(std::move(o)));
  }
  root.emplace_back("per_worker", json::Value(std::move(per)));
  return json::Value(std::move(root));
}

}  // namespace grunt::dist
