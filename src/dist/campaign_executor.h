#pragma once

// Out-of-process campaign execution (DESIGN §9).
//
// A campaign — the Table-1 damage sweep, a Fig-11 pairwise grid, an
// ablation — is hundreds of independent simulations. CampaignExecutor runs
// a batch of registered jobs (job_registry.h) on one of three
// interchangeable backends behind the same index-ordered contract the
// in-process ParallelRunner established:
//
//   kThread   the existing thread pool — jobs run in this process.
//   kProcess  pre-forked worker processes fed length-prefixed frames over
//             pipes: allocator isolation, crash containment (a worker
//             abort fails one job, not the campaign), and better scaling
//             on high-core boxes.
//   kSocket   the same framed protocol over TCP, so
//             tools/grunt_campaign_worker can join from other machines.
//
// Dispatch is work-stealing in the self-scheduling sense: job i is seeded
// to lane i, and every later job goes to whichever worker frees up first
// (a job landing off its static shard counts as a steal in WorkerStats).
// Results are merged in job-index order, and job descriptions/results
// serialize through byte-stable util/json — so campaign output is
// bit-identical across backends and worker counts. Worker pools persist
// across Run() calls (pre-forked once, shut down in the destructor).

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/bus.h"
#include "util/json.h"

namespace grunt::dist {

enum class Backend : std::uint8_t { kThread, kProcess, kSocket };

const char* BackendName(Backend b);
/// "thread" | "process" | "socket"; anything else throws util::EnvError.
Backend ParseBackend(const std::string& text);

struct ExecutorConfig {
  Backend backend = Backend::kThread;
  /// 0 resolves to ParallelRunner::DefaultThreads().
  unsigned workers = 0;
  /// Socket backend: port to listen on (0 = kernel-assigned; BindListener
  /// returns the actual port) and the address to bind — loopback by
  /// default, "0.0.0.0" to let workers join from other machines.
  std::uint16_t listen_port = 0;
  std::string listen_host = "127.0.0.1";
  /// Socket backend: how long Run() waits for all workers to join.
  double accept_timeout_sec = 60.0;
  /// Optional observability: per-job CampaignJobEvents on the campaign_job
  /// channel plus per-worker job/steal/latency counters in the bus's
  /// metrics registry. The bus must outlive the executor.
  telemetry::TelemetryBus* bus = nullptr;
};

/// GRUNT_BENCH_BACKEND (thread|process|socket), GRUNT_BENCH_WORKERS,
/// GRUNT_BENCH_LISTEN_PORT, GRUNT_BENCH_LISTEN_HOST. Set-but-invalid
/// values throw util::EnvError (same contract as GRUNT_BENCH_THREADS).
ExecutorConfig ConfigFromEnv();

/// One job: the registered kind's JSON arguments plus the seed carried in
/// the job frame (per-job RNG plumbing — a kind must derive all randomness
/// from it).
struct JobSpec {
  json::Value args;
  std::uint64_t seed = 0;
};

/// Per-job terminal state, in job-index order.
struct JobOutcome {
  bool ok = false;
  json::Value result;  ///< kind's return value when ok
  std::string error;   ///< diagnosis when !ok (includes crash context)
};

struct WorkerStats {
  unsigned worker = 0;
  std::string name;        ///< socket hello name; "fork" / "thread" else
  pid_t pid = -1;          ///< process backend
  std::uint64_t jobs = 0;
  std::uint64_t steals = 0;    ///< jobs run off their static shard
  std::uint64_t failures = 0;  ///< error outcomes (incl. crashes)
  unsigned restarts = 0;       ///< times the lane's process was respawned
  double busy_ms = 0;          ///< summed dispatch-to-result wall time
};

/// What Run() throws for the lowest-indexed failed job: the message carries
/// the job index, kind, backend, and the underlying error, so a failed
/// campaign cell is diagnosable without re-running the sweep.
class CampaignError : public std::runtime_error {
 public:
  CampaignError(const std::string& what, std::size_t job_index,
                std::string kind, Backend backend)
      : std::runtime_error(what),
        job_index_(job_index),
        kind_(std::move(kind)),
        backend_(backend) {}

  std::size_t job_index() const { return job_index_; }
  const std::string& kind() const { return kind_; }
  Backend backend() const { return backend_; }

 private:
  std::size_t job_index_;
  std::string kind_;
  Backend backend_;
};

class CampaignExecutor {
 public:
  explicit CampaignExecutor(ExecutorConfig cfg = ConfigFromEnv());
  ~CampaignExecutor();
  CampaignExecutor(const CampaignExecutor&) = delete;
  CampaignExecutor& operator=(const CampaignExecutor&) = delete;

  Backend backend() const { return cfg_.backend; }
  unsigned workers() const { return workers_; }

  /// Socket backend: bind + listen now and return the actual port (useful
  /// before Run() blocks waiting for workers). Idempotent.
  std::uint16_t BindListener();

  /// Runs registry[kind](jobs[i].args, jobs[i].seed) for every i and
  /// returns the outcomes in job-index order. Individual failures (thrown
  /// jobs, crashed workers) land in their JobOutcome; RunAll itself throws
  /// only for setup-level faults (unparseable config, no workers joined).
  std::vector<JobOutcome> RunAll(const std::string& kind,
                                 const std::vector<JobSpec>& jobs);

  /// RunAll, then throws CampaignError for the lowest-indexed failed job
  /// (mirroring ParallelRunner's lowest-index rethrow); on success returns
  /// just the results, in job-index order.
  std::vector<json::Value> Run(const std::string& kind,
                               const std::vector<JobSpec>& jobs);

  /// Cumulative per-lane counters across every Run() so far.
  const std::vector<WorkerStats>& worker_stats() const { return stats_; }

  /// Cumulative stats as one JSON object (the per-worker metrics artifact
  /// benches write when GRUNT_CAMPAIGN_METRICS_JSON is set).
  json::Value StatsJson() const;

 private:
  struct Lane;
  struct Metrics;

  void EnsureLanes(std::size_t jobs_hint);
  std::unique_ptr<Lane> SpawnForkLane(unsigned id);
  void AcceptSocketLanes(std::size_t want);
  void DispatchLoop(const std::string& kind,
                    const std::vector<JobSpec>& jobs,
                    std::vector<JobOutcome>* outcomes);
  bool SendJobTo(Lane& lane, const std::string& kind,
                 const std::vector<JobSpec>& jobs, std::size_t index);
  void HandleLaneDeath(Lane& lane, const std::string& why,
                       const std::string& kind,
                       std::vector<JobOutcome>* outcomes);
  void RecordResult(Lane& lane, std::size_t index, bool ok,
                    double latency_ms);
  void ShutdownLanes();

  std::vector<JobOutcome> RunThreadBackend(const std::string& kind,
                                           const std::vector<JobSpec>& jobs);

  ExecutorConfig cfg_;
  unsigned workers_ = 1;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<WorkerStats> stats_;
  std::vector<std::size_t> requeue_;  ///< jobs whose dispatch write failed
  std::unique_ptr<Metrics> metrics_;  ///< interned ids into cfg_.bus
};

}  // namespace grunt::dist
