#include "util/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "util/env.h"

namespace grunt::util {

unsigned ParallelRunner::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  // A garbage GRUNT_BENCH_THREADS (negative, non-numeric, overflowing)
  // throws EnvError instead of silently running on hardware_concurrency:
  // a typo'd knob must not quietly invalidate a perf comparison.
  return static_cast<unsigned>(PositiveEnvOr(
      "GRUNT_BENCH_THREADS", hw > 0 ? hw : 1, kMaxThreads));
}

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(threads > 0 ? threads : DefaultThreads()) {}

void ParallelRunner::ForEachIndex(
    std::size_t n, const std::function<void(std::size_t)>& job) {
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    // Serial fast path: no pool, same index order and exception behavior
    // (the lowest failing index throws first by construction).
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        job(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread pulls its weight
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace grunt::util
