#pragma once

#include <cstdint>
#include <string>

namespace grunt {

/// Simulated time. All simulation logic uses integer microseconds so that
/// event ordering is exact and runs are bit-for-bit reproducible.
using SimTime = std::int64_t;

/// Duration in simulated microseconds (same representation as SimTime).
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1000 * 1000;

constexpr SimDuration Us(std::int64_t v) { return v; }
constexpr SimDuration Ms(std::int64_t v) { return v * kMillisecond; }
constexpr SimDuration Sec(std::int64_t v) { return v * kSecond; }

/// Converts a floating-point second count to SimDuration (rounds toward zero).
constexpr SimDuration SecF(double v) {
  return static_cast<SimDuration>(v * static_cast<double>(kSecond));
}

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Formats a SimTime as "12.345s" for logs and tables.
std::string FormatTime(SimTime t);

}  // namespace grunt
