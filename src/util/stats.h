#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grunt {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1); 0 if count < 2
  double stddev() const;
  double min() const;  ///< +inf if empty
  double max() const;  ///< -inf if empty
  double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_;
  double max_;
};

/// Stores every sample; supports exact percentiles. Intended for
/// response-time populations in benches and tests (bounded experiment sizes).
class Samples {
 public:
  void Add(double x);
  void Clear();

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact percentile via nearest-rank on the sorted samples. p in [0,100].
  /// Returns 0 if empty.
  double Percentile(double p) const;
  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket. Used for latency distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double BucketLow(std::size_t i) const;
  double BucketHigh(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace grunt
