#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace grunt::util {

unsigned long ParsePositiveEnv(const char* name, const char* text,
                               unsigned long max) {
  const std::string value = text == nullptr ? "" : text;
  const auto fail = [&](const char* why) {
    throw EnvError(std::string(name) + "=\"" + value + "\": " + why +
                   " (expected an integer in [1, " + std::to_string(max) +
                   "])");
  };
  if (value.empty()) fail("empty value");
  // std::strtoul accepts leading whitespace, signs, and hex prefixes; a
  // count knob should be plain digits and nothing else.
  for (const char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) fail("not a number");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
  if (errno == ERANGE) fail("overflows");
  if (end != value.c_str() + value.size()) fail("trailing garbage");
  if (parsed == 0) fail("must be positive");
  if (parsed > max) fail("out of range");
  return parsed;
}

unsigned long PositiveEnvOr(const char* name, unsigned long fallback,
                            unsigned long max) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return fallback;
  return ParsePositiveEnv(name, text, max);
}

}  // namespace grunt::util
