#include "util/logging.h"

namespace grunt {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogLine::LogLine(LogLevel level, const char* tag)
    : enabled_(level >= g_level && g_level != LogLevel::kOff) {
  if (enabled_) stream_ << "[" << tag << "] ";
}

LogLine::~LogLine() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace internal

std::string FormatTime(SimTime t) {
  std::ostringstream os;
  os << (static_cast<double>(t) / static_cast<double>(kSecond)) << "s";
  return os.str();
}

}  // namespace grunt
