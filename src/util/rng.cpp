#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace grunt {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t HashName(std::uint64_t master_seed, std::string_view name) {
  // FNV-1a over the name, then SplitMix64 finalize together with the seed.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return SplitMix64(h ^ SplitMix64(master_seed));
}

RngStream::RngStream(std::uint64_t master_seed, std::string_view name)
    : name_(name), seed_(HashName(master_seed, name)), engine_(seed_) {}

double RngStream::NextDouble() {
  // 53-bit mantissa in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

std::int64_t RngStream::NextInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("RngStream::NextInt: lo > hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double RngStream::NextExp(double mean) {
  if (mean <= 0) throw std::invalid_argument("RngStream::NextExp: mean <= 0");
  double u = NextDouble();
  // Guard against log(0).
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -mean * std::log1p(-u);
}

SimDuration RngStream::NextExpDuration(SimDuration mean) {
  if (mean <= 0) return 0;
  return static_cast<SimDuration>(NextExp(static_cast<double>(mean)));
}

double RngStream::NextNormal(double mean, double stddev, double floor) {
  std::normal_distribution<double> dist(mean, stddev);
  return std::max(floor, dist(engine_));
}

std::int64_t RngStream::NextPoisson(double mean) {
  if (mean <= 0) return 0;
  std::poisson_distribution<std::int64_t> dist(mean);
  return dist(engine_);
}

bool RngStream::NextBool(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

std::size_t RngStream::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0) {
    throw std::invalid_argument("RngStream::NextWeighted: no positive weight");
  }
  double r = NextDouble() * total;
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(0.0, weights[i]);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace grunt
