#pragma once

#include <cstddef>
#include <vector>

#include "util/stats.h"
#include "util/time_types.h"

namespace grunt {

/// A (time, value) point emitted by a sampler or metric.
struct TimePoint {
  SimTime time;
  double value;
};

/// Append-only time series with windowed queries. Points must be appended in
/// non-decreasing time order (enforced).
class TimeSeries {
 public:
  void Add(SimTime t, double value);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<TimePoint>& points() const { return points_; }
  const TimePoint& at(std::size_t i) const { return points_.at(i); }
  const TimePoint& back() const { return points_.back(); }

  /// Statistics over points with time in [from, to).
  RunningStats WindowStats(SimTime from, SimTime to) const;

  /// Max value over [from, to); 0 if no points in window.
  double WindowMax(SimTime from, SimTime to) const;

  /// Mean value over [from, to); 0 if no points in window.
  double WindowMean(SimTime from, SimTime to) const;

  /// Longest run (duration) of consecutive points with value >= threshold
  /// inside [from, to). The run length counts time between the first and the
  /// point after the last qualifying sample (i.e. sample spacing matters).
  SimDuration LongestRunAbove(double threshold, SimTime from, SimTime to) const;

  /// Re-buckets the series into fixed-width windows of `width` covering
  /// [from, to), taking the mean of each window (empty windows -> 0).
  std::vector<TimePoint> Resample(SimTime from, SimTime to,
                                  SimDuration width) const;

 private:
  std::size_t LowerBound(SimTime t) const;

  std::vector<TimePoint> points_;
};

}  // namespace grunt
