#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace grunt::json {

const char* ToString(Kind k) {
  switch (k) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void KindMismatch(Kind want, Kind got) {
  throw Error(std::string("expected ") + ToString(want) + ", got " +
              ToString(got));
}

}  // namespace

bool Value::AsBool() const {
  if (kind_ != Kind::kBool) KindMismatch(Kind::kBool, kind_);
  return bool_;
}

double Value::AsDouble() const {
  if (kind_ != Kind::kNumber) KindMismatch(Kind::kNumber, kind_);
  return num_;
}

std::int64_t Value::AsInt64() const {
  if (kind_ != Kind::kNumber) KindMismatch(Kind::kNumber, kind_);
  const double rounded = std::nearbyint(num_);
  if (rounded != num_ || std::abs(num_) > 9.007199254740992e15) {
    throw Error("number is not an exact integer: " + Dump(0));
  }
  return static_cast<std::int64_t>(rounded);
}

const std::string& Value::AsString() const {
  if (kind_ != Kind::kString) KindMismatch(Kind::kString, kind_);
  return str_;
}

const Array& Value::AsArray() const {
  if (kind_ != Kind::kArray) KindMismatch(Kind::kArray, kind_);
  return arr_;
}

const Object& Value::AsObject() const {
  if (kind_ != Kind::kObject) KindMismatch(Kind::kObject, kind_);
  return obj_;
}

Array& Value::MutableArray() {
  if (kind_ != Kind::kArray) KindMismatch(Kind::kArray, kind_);
  return arr_;
}

Object& Value::MutableObject() {
  if (kind_ != Kind::kObject) KindMismatch(Kind::kObject, kind_);
  return obj_;
}

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::At(std::string_view key) const {
  if (kind_ != Kind::kObject) KindMismatch(Kind::kObject, kind_);
  if (const Value* v = Find(key)) return *v;
  throw Error("missing key: \"" + std::string(key) + "\"");
}

void Value::Set(std::string_view key, Value v) {
  if (kind_ == Kind::kNull) {
    kind_ = Kind::kObject;
  } else if (kind_ != Kind::kObject) {
    KindMismatch(Kind::kObject, kind_);
  }
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return a.bool_ == b.bool_;
    case Kind::kNumber: return a.num_ == b.num_;
    case Kind::kString: return a.str_ == b.str_;
    case Kind::kArray: return a.arr_ == b.arr_;
    case Kind::kObject: return a.obj_ == b.obj_;
  }
  return false;
}

// ---------------------------------------------------------------- writer ---

namespace {

void DumpString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

void DumpNumber(std::string& out, double d) {
  if (!std::isfinite(d)) throw Error("cannot serialize non-finite number");
  // Integers (the overwhelmingly common case in specs) print without a
  // fractional part; everything else uses shortest-round-trip %.17g trimmed
  // via a re-parse check at %.15g/%.16g.
  if (d == std::nearbyint(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::llrint(d)));
    out += buf;
    return;
  }
  char buf[40];
  for (int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out += buf;
}

void Newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::DumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      DumpNumber(out, num_);
      return;
    case Kind::kString:
      DumpString(out, str_);
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        Newline(out, indent, depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        Newline(out, indent, depth + 1);
        DumpString(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------- parser ---

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value ParseDocument() {
    Value v = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw Error("JSON parse error at " + std::to_string(line) + ":" +
                std::to_string(col) + ": " + why);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return Value(ParseString());
      case 't':
        if (Consume("true")) return Value(true);
        Fail("invalid literal");
      case 'f':
        if (Consume("false")) return Value(false);
        Fail("invalid literal");
      case 'n':
        if (Consume("null")) return Value(nullptr);
        Fail("invalid literal");
      default: return ParseNumber();
    }
  }

  Value ParseObject() {
    Expect('{');
    Object obj;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      for (const auto& [k, v] : obj) {
        if (k == key) Fail("duplicate object key: \"" + key + "\"");
      }
      SkipWhitespace();
      Expect(':');
      obj.emplace_back(std::move(key), ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return Value(std::move(obj));
    }
  }

  Value ParseArray() {
    Expect('[');
    Array arr;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return Value(std::move(arr));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("invalid \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (specs are ASCII in
          // practice; surrogate pairs are rejected rather than decoded).
          if (code >= 0xD800 && code <= 0xDFFF) {
            Fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: Fail("invalid escape character");
      }
    }
  }

  Value ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) Fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      pos_ = start;
      Fail("invalid number: \"" + token + "\"");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Parse(std::string_view text) { return Parser(text).ParseDocument(); }

Value ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return Parse(ss.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

void WriteFile(const std::string& path, const Value& v, int indent) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open file for writing: " + path);
  out << v.Dump(indent) << '\n';
  if (!out) throw Error("write failed: " + path);
}

}  // namespace grunt::json
