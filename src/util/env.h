#pragma once

// Strict environment-variable parsing for the knobs that pick thread /
// worker / port counts. A typo'd GRUNT_BENCH_THREADS silently falling back
// to hardware_concurrency once cost a whole perf-comparison run; these
// helpers reject garbage loudly instead.

#include <stdexcept>
#include <string>

namespace grunt::util {

/// Thrown when an environment variable holds something other than what its
/// consumer documented. The message names the variable, the offending text,
/// and the accepted range.
class EnvError : public std::runtime_error {
 public:
  explicit EnvError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses `text` (the value of environment variable `name`, used only for
/// error messages) as a strictly positive decimal integer in [1, max].
/// Leading/trailing whitespace, empty strings, signs, hex/octal prefixes,
/// trailing garbage, zero, negatives, and values above `max` all throw
/// EnvError — no silent fallback.
unsigned long ParsePositiveEnv(const char* name, const char* text,
                               unsigned long max);

/// getenv(name): unset or empty returns `fallback`; anything else goes
/// through ParsePositiveEnv.
unsigned long PositiveEnvOr(const char* name, unsigned long fallback,
                            unsigned long max);

}  // namespace grunt::util
