#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "util/time_types.h"

namespace grunt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; benches raise it to keep output clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

inline internal::LogLine LogDebug() {
  return internal::LogLine(LogLevel::kDebug, "DEBUG");
}
inline internal::LogLine LogInfo() {
  return internal::LogLine(LogLevel::kInfo, "INFO ");
}
inline internal::LogLine LogWarn() {
  return internal::LogLine(LogLevel::kWarn, "WARN ");
}
inline internal::LogLine LogError() {
  return internal::LogLine(LogLevel::kError, "ERROR");
}

}  // namespace grunt
