#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "util/time_types.h"

namespace grunt {

/// A named, independently-seeded random stream.
///
/// Every source of randomness in the simulator (each client, each service,
/// each profiling probe) owns its own RngStream derived from a master seed
/// and a stable name, so adding or removing one consumer never perturbs the
/// draws seen by another. This is what makes whole-simulation runs
/// reproducible and diffable across code changes.
class RngStream {
 public:
  /// Derives the stream seed by hashing `name` into `master_seed`
  /// (SplitMix64 finalizer over a FNV-1a digest of the name).
  RngStream(std::uint64_t master_seed, std::string_view name);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExp(double mean);

  /// Exponentially distributed duration with the given mean duration.
  SimDuration NextExpDuration(SimDuration mean);

  /// Normal draw; result clamped to be >= `floor` (useful for service times).
  double NextNormal(double mean, double stddev, double floor = 0.0);

  /// Poisson draw with the given mean.
  std::int64_t NextPoisson(double mean);

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t NextWeighted(const std::vector<double>& weights);

  std::uint64_t seed() const { return seed_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// Stateless mixing helpers, exposed for tests and for deriving child seeds.
std::uint64_t SplitMix64(std::uint64_t x);
std::uint64_t HashName(std::uint64_t master_seed, std::string_view name);

}  // namespace grunt
