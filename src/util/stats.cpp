#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace grunt {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return count_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStats::max() const {
  return count_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

void Samples::Add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Samples::Clear() {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

void Samples::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-indexed.
  const auto n = static_cast<double>(sorted_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  return sorted_[rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::Add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::BucketLow(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::BucketHigh(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace grunt
