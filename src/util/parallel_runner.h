#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace grunt::util {

/// Fans independent jobs across worker threads and hands results back in
/// job-index order, so output assembled from them is byte-identical at any
/// thread count. Jobs must not share mutable state; each bench campaign
/// builds its own Simulation/rig, which makes it a natural job.
class ParallelRunner {
 public:
  /// threads == 0 resolves to DefaultThreads().
  explicit ParallelRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Runs job(0), ..., job(n-1), each exactly once, with up to threads()
  /// jobs in flight (the calling thread participates). Blocks until every
  /// job finished. If jobs throw, the remaining claimed jobs still run and
  /// the exception from the lowest-indexed failed job is rethrown — again
  /// independent of thread count.
  void ForEachIndex(std::size_t n,
                    const std::function<void(std::size_t)>& job);

  /// ForEachIndex that collects each job's return value, in index order.
  /// R must be default-constructible and movable.
  template <class R, class F>
  std::vector<R> Map(std::size_t n, F&& job) {
    std::vector<R> out(n);
    ForEachIndex(n, [&out, &job](std::size_t i) { out[i] = job(i); });
    return out;
  }

  /// GRUNT_BENCH_THREADS if set, else std::thread::hardware_concurrency(),
  /// else 1. A set-but-invalid GRUNT_BENCH_THREADS (garbage, negative,
  /// zero, overflow, > kMaxThreads) throws util::EnvError rather than
  /// silently falling back.
  static unsigned DefaultThreads();

  /// Upper bound accepted from GRUNT_BENCH_THREADS / GRUNT_BENCH_WORKERS.
  static constexpr unsigned kMaxThreads = 4096;

 private:
  unsigned threads_;
};

}  // namespace grunt::util
