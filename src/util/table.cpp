#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace grunt {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::AddRow: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::Int(std::int64_t v) { return std::to_string(v); }

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

void Table::PrintCsv(std::ostream& os) const {
  auto csv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  csv_row(headers_);
  for (const auto& row : rows_) csv_row(row);
}

}  // namespace grunt
