#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace grunt {

/// Renders paper-style ASCII tables to a stream. Benches use this to print
/// the same rows the paper's tables report.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Num(double v, int precision = 1);
  static std::string Int(std::int64_t v);

  void Print(std::ostream& os) const;
  std::string ToString() const;

  /// Writes the table as CSV (no padding) for downstream plotting.
  void PrintCsv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace grunt
