#include "util/timeseries.h"

#include <algorithm>
#include <stdexcept>

namespace grunt {

void TimeSeries::Add(SimTime t, double value) {
  if (!points_.empty() && t < points_.back().time) {
    throw std::invalid_argument("TimeSeries::Add: time went backwards");
  }
  points_.push_back({t, value});
}

std::size_t TimeSeries::LowerBound(SimTime t) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const TimePoint& p, SimTime v) { return p.time < v; });
  return static_cast<std::size_t>(it - points_.begin());
}

RunningStats TimeSeries::WindowStats(SimTime from, SimTime to) const {
  RunningStats s;
  for (std::size_t i = LowerBound(from); i < points_.size(); ++i) {
    if (points_[i].time >= to) break;
    s.Add(points_[i].value);
  }
  return s;
}

double TimeSeries::WindowMax(SimTime from, SimTime to) const {
  const RunningStats s = WindowStats(from, to);
  return s.count() == 0 ? 0.0 : s.max();
}

double TimeSeries::WindowMean(SimTime from, SimTime to) const {
  return WindowStats(from, to).mean();
}

SimDuration TimeSeries::LongestRunAbove(double threshold, SimTime from,
                                        SimTime to) const {
  SimDuration best = 0;
  bool in_run = false;
  SimTime run_start = 0;
  SimTime last_time = 0;
  for (std::size_t i = LowerBound(from); i < points_.size(); ++i) {
    const TimePoint& p = points_[i];
    if (p.time >= to) break;
    if (p.value >= threshold) {
      if (!in_run) {
        in_run = true;
        run_start = p.time;
      }
      last_time = p.time;
      best = std::max(best, last_time - run_start);
    } else {
      in_run = false;
    }
  }
  return best;
}

std::vector<TimePoint> TimeSeries::Resample(SimTime from, SimTime to,
                                            SimDuration width) const {
  if (width <= 0) throw std::invalid_argument("Resample: width <= 0");
  std::vector<TimePoint> out;
  for (SimTime w = from; w < to; w += width) {
    out.push_back({w, WindowMean(w, std::min<SimTime>(w + width, to))});
  }
  return out;
}

}  // namespace grunt
