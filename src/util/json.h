#pragma once

// Minimal dependency-free JSON reader/writer for the scenario layer.
//
// Design goals, in order: (1) no third-party dependency, (2) deterministic
// output — objects preserve insertion order so a dump → parse → dump cycle
// is byte-stable, (3) precise error messages with line/column for hand-
// edited spec files. Not goals: streaming, comments, or speed on multi-MB
// documents (specs are a few hundred KB at most).

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace grunt::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-order-preserving object (spec files are small; linear key
/// lookup is fine and keeps dumps deterministic).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind : std::uint8_t {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

const char* ToString(Kind k);

/// Thrown by the parser (with 1-based line/column) and by typed accessors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// One JSON value. Numbers are stored as double (specs never need 64-bit
/// integers beyond 2^53); `AsInt64` round-trips integral doubles exactly.
class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(runtime/explicit)
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(double d) : kind_(Kind::kNumber), num_(d) {}  // NOLINT
  Value(std::int64_t i)  // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}  // NOLINT
  Value(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}  // NOLINT
  Value(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}  // NOLINT

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw Error (naming the actual kind) on mismatch.
  bool AsBool() const;
  double AsDouble() const;
  std::int64_t AsInt64() const;  ///< throws if not integral or out of range
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;
  Array& MutableArray();
  Object& MutableObject();

  /// Object field lookup; nullptr when absent (or not an object).
  const Value* Find(std::string_view key) const;
  /// Object field lookup; throws Error naming the key when absent.
  const Value& At(std::string_view key) const;
  /// Sets (or replaces) an object field, preserving first-insertion order.
  void Set(std::string_view key, Value v);

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits the compact single-line form.
  std::string Dump(int indent = 2) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses a complete JSON document (trailing garbage is an error). Throws
/// json::Error with 1-based line:column on malformed input.
Value Parse(std::string_view text);

/// Reads and parses a file; throws json::Error (with the path) on I/O or
/// parse failure.
Value ParseFile(const std::string& path);

/// Writes `v.Dump(indent)` plus a trailing newline; throws on I/O failure.
void WriteFile(const std::string& path, const Value& v, int indent = 2);

}  // namespace grunt::json
