#include "attack/sim_target_client.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "microsvc/cluster.h"

namespace grunt::attack {
namespace {

struct Rig {
  sim::Simulation sim;
  microsvc::Application app = grunt::testing::SingleChainApp();
  microsvc::Cluster cluster{sim, app, 1};
  SimTargetClient client{cluster};
};

TEST(SimTargetClient, CrawlExposesEveryUrlWithStaticFlag) {
  sim::Simulation sim;
  microsvc::Application::Builder b;
  const auto s = b.AddService(grunt::testing::Svc("s", 4, 1));
  b.AddRequestType(grunt::testing::Type("dyn", {{s, Us(100), 0}}));
  microsvc::RequestTypeSpec st;
  st.name = "logo.png";
  st.is_static = true;
  b.AddRequestType(st);
  const auto app = std::move(b).Build();
  microsvc::Cluster cluster(sim, app, 1);
  SimTargetClient client(cluster);
  const auto urls = client.CrawlUrls();
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0].path, "/dyn");
  EXPECT_FALSE(urls[0].looks_static);
  EXPECT_EQ(urls[1].path, "/logo.png");
  EXPECT_TRUE(urls[1].looks_static);
}

TEST(SimTargetClient, SendAttributesClassAndReportsTimestamps) {
  Rig rig;
  SimTime sent = -1, completed = -1;
  bool ok = false;
  rig.client.Send(0, /*heavy=*/false, /*bot_id=*/777, /*attack_traffic=*/true,
                  [&](SimTime s, SimTime e, bool o) {
                    sent = s;
                    completed = e;
                    ok = o;
                  });
  rig.sim.RunAll();
  EXPECT_EQ(sent, 0);
  EXPECT_EQ(completed, Ms(9) + Us(1200));
  EXPECT_TRUE(ok);
  ASSERT_EQ(rig.cluster.completions().size(), 1u);
  EXPECT_EQ(rig.cluster.completions()[0].cls, microsvc::RequestClass::kAttack);
  EXPECT_EQ(rig.cluster.completions()[0].client_id, 777u);
  EXPECT_EQ(rig.client.requests_sent(), 1u);
}

TEST(SimTargetClient, ProbeTrafficTaggedAsProbe) {
  Rig rig;
  rig.client.Send(0, false, 1, /*attack_traffic=*/false, nullptr);
  rig.sim.RunAll();
  EXPECT_EQ(rig.cluster.completions()[0].cls, microsvc::RequestClass::kProbe);
}

TEST(SimTargetClient, ClockAndSchedulingMirrorSimulation) {
  Rig rig;
  EXPECT_EQ(rig.client.Now(), 0);
  bool fired = false;
  rig.client.After(Ms(250), [&] {
    fired = true;
    EXPECT_EQ(rig.client.Now(), Ms(250));
  });
  rig.sim.RunAll();
  EXPECT_TRUE(fired);
}

TEST(SimTargetClient, PartialCrawlCoverageIsDeterministicSubset) {
  sim::Simulation sim;
  microsvc::Application::Builder b;
  const auto s0 = b.AddService(grunt::testing::Svc("s", 16, 2));
  for (int i = 0; i < 20; ++i) {
    b.AddRequestType(grunt::testing::Type("t" + std::to_string(i),
                                          {{s0, Us(500), 0}}));
  }
  const auto app = std::move(b).Build();
  microsvc::Cluster cluster(sim, app, 1);
  SimTargetClient half(cluster, {0.5, 7});
  const auto once = half.CrawlUrls();
  const auto twice = half.CrawlUrls();
  ASSERT_EQ(once.size(), twice.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].url_id, twice[i].url_id);
  }
  // Roughly half discovered, never zero, never all (with 20 URLs and p=.5).
  EXPECT_GE(once.size(), 4u);
  EXPECT_LE(once.size(), 16u);
  // Different seed -> different subset.
  SimTargetClient other(cluster, {0.5, 8});
  const auto other_urls = other.CrawlUrls();
  bool differs = other_urls.size() != once.size();
  for (std::size_t i = 0; !differs && i < once.size(); ++i) {
    differs = once[i].url_id != other_urls[i].url_id;
  }
  EXPECT_TRUE(differs);
  // Full coverage finds everything; invalid coverage throws.
  SimTargetClient full(cluster);
  EXPECT_EQ(full.CrawlUrls().size(), 20u);
  EXPECT_THROW(SimTargetClient(cluster, {0.0, 1}), std::invalid_argument);
  EXPECT_THROW(SimTargetClient(cluster, {1.5, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace grunt::attack
