#include "attack/profiler.h"

#include <gtest/gtest.h>

#include "attack/sim_target_client.h"
#include "fixtures.h"
#include "microsvc/cluster.h"
#include "workload/workload.h"

namespace grunt::attack {
namespace {

/// Profiles `app` under a light uniform background load and returns the
/// result. Uses exponential service times: the profiler must work on the
/// noisy system, not an idealized one.
ProfileResult ProfileApp(const microsvc::Application& app,
                         double per_type_rate, ProfilerConfig cfg = {}) {
  sim::Simulation sim;
  microsvc::Cluster cluster(sim, app, 5);
  workload::OpenLoopSource::Config wl;
  wl.rate = per_type_rate * static_cast<double>(app.PublicDynamicTypes().size());
  wl.mix = workload::RequestMix::Uniform(app.PublicDynamicTypes());
  workload::OpenLoopSource src(cluster, wl, 5);
  src.Start();
  sim.RunUntil(Sec(5));

  SimTargetClient client(cluster);
  BotFarm bots({});
  Profiler profiler(client, bots, cfg);
  bool done = false;
  ProfileResult result;
  profiler.Run([&](ProfileResult r) {
    result = std::move(r);
    done = true;
  });
  while (!done && sim.Now() < Sec(3000)) sim.RunUntil(sim.Now() + Sec(5));
  EXPECT_TRUE(done) << "profiling did not terminate";
  return result;
}

TEST(Profiler, DetectsParallelDependency) {
  const auto app = grunt::testing::TwoPathParallelApp(
      microsvc::ServiceTimeDist::kExponential);
  const auto result = ProfileApp(app, 60.0);
  EXPECT_EQ(result.InferredType(0, 1), trace::DepType::kParallel);
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_EQ(result.groups[0].size(), 2u);
}

TEST(Profiler, DetectsSequentialDependencyWithDirection) {
  const auto app = grunt::testing::SequentialApp(
      microsvc::ServiceTimeDist::kExponential);
  const auto result = ProfileApp(app, 40.0);
  const auto inferred = result.InferredType(0, 1);
  // "up" (type 0) must come out as the upstream side.
  EXPECT_EQ(inferred, trace::DepType::kSequentialAUp);
  EXPECT_EQ(result.InferredType(1, 0), trace::DepType::kSequentialBUp);
}

TEST(Profiler, ReportsNoDependencyForDisjointPaths) {
  const auto app = grunt::testing::DisjointApp(
      microsvc::ServiceTimeDist::kExponential);
  const auto result = ProfileApp(app, 60.0);
  EXPECT_EQ(result.InferredType(0, 1), trace::DepType::kNone);
  EXPECT_EQ(result.groups.size(), 2u);  // two singletons
}

TEST(Profiler, ExcludesStaticUrlsFromCandidates) {
  microsvc::Application::Builder b;
  b.SetNetLatency(Us(200));
  const auto gw = b.AddService(grunt::testing::Svc("gw", 512, 8));
  const auto w = b.AddService(grunt::testing::Svc("w", 32, 2));
  b.AddRequestType(
      grunt::testing::Type("dyn", {{gw, Us(200), 0}, {w, Us(5000), 0}}));
  microsvc::RequestTypeSpec st;
  st.name = "asset";
  st.is_static = true;
  b.AddRequestType(st);
  const auto app = std::move(b).Build();
  const auto result = ProfileApp(app, 20.0);
  ASSERT_EQ(result.urls.size(), 2u);
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_EQ(result.candidates[0], 0);
  // A single candidate has no pairs and forms its own group.
  EXPECT_TRUE(result.pairs.empty());
  ASSERT_EQ(result.groups.size(), 1u);
}

TEST(Profiler, BaselinesMeasuredForEveryCandidate) {
  const auto app = grunt::testing::TwoPathParallelApp(
      microsvc::ServiceTimeDist::kExponential);
  const auto result = ProfileApp(app, 40.0);
  for (std::int32_t url : result.candidates) {
    EXPECT_GT(result.baseline_rt_ms[static_cast<std::size_t>(url)], 1.0);
    EXPECT_LT(result.baseline_rt_ms[static_cast<std::size_t>(url)], 200.0);
  }
}

TEST(Profiler, EvidenceRecordsSweepAndVerdicts) {
  const auto app = grunt::testing::TwoPathParallelApp(
      microsvc::ServiceTimeDist::kExponential);
  const auto result = ProfileApp(app, 60.0);
  ASSERT_EQ(result.evidence.size(), 1u);
  const auto& ev = result.evidence[0];
  EXPECT_FALSE(ev.volumes.empty());
  EXPECT_EQ(ev.volumes.size(), ev.a_blocks_b.size());
  // Parallel: no interference at the lowest volume, interference later.
  EXPECT_FALSE(ev.a_blocks_b.front());
  EXPECT_TRUE(ev.a_blocks_b.back() || ev.b_blocks_a.back());
}

TEST(Profiler, ConfigValidation) {
  sim::Simulation sim;
  const auto app = grunt::testing::DisjointApp();
  microsvc::Cluster cluster(sim, app, 1);
  SimTargetClient client(cluster);
  BotFarm bots({});
  ProfilerConfig empty;
  empty.volume_sweep = {};
  EXPECT_THROW(Profiler(client, bots, empty), std::invalid_argument);
  ProfilerConfig unsorted;
  unsorted.volume_sweep = {32, 16};
  EXPECT_THROW(Profiler(client, bots, unsorted), std::invalid_argument);
}

TEST(Profiler, SecondRunOnSameInstanceThrows) {
  sim::Simulation sim;
  const auto app = grunt::testing::DisjointApp();
  microsvc::Cluster cluster(sim, app, 1);
  SimTargetClient client(cluster);
  BotFarm bots({});
  Profiler profiler(client, bots, {});
  profiler.Run([](ProfileResult) {});
  EXPECT_THROW(profiler.Run([](ProfileResult) {}), std::logic_error);
}

}  // namespace
}  // namespace grunt::attack
