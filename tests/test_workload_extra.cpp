// Additional workload-generator properties: Markov stationarity, closed-loop
// self-throttling under overload, and trace edge cases.

#include <gtest/gtest.h>

#include <map>

#include "fixtures.h"
#include "microsvc/cluster.h"
#include "workload/workload.h"

namespace grunt::workload {
namespace {

TEST(MarkovNavigator, PopularityRowsGiveStationaryMix) {
  // When every row equals the popularity vector (the construction used by
  // the app navigators), the long-run visit frequencies match the weights.
  MarkovNavigator nav;
  nav.types = {0, 1, 2};
  nav.transition = {{6, 3, 1}, {6, 3, 1}, {6, 3, 1}};
  RngStream rng(5, "stationary");
  std::map<std::size_t, int> counts;
  std::size_t state = 0;
  const int n = 60'000;
  for (int i = 0; i < n; ++i) {
    state = nav.DrawNext(state, rng);
    ++counts[state];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.6, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.02);
}

TEST(ClosedLoopWorkload, SelfThrottlesUnderOverload) {
  // Closed-loop users waiting on slow responses stop generating load: the
  // offered rate drops as RT grows (why the paper's damage doesn't explode
  // into an open-loop death spiral).
  sim::Simulation sim;
  const auto app =
      grunt::testing::SingleChainApp(microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 12);
  ClosedLoopWorkload::Config cfg;
  cfg.users = 400;
  cfg.think_mean = Ms(500);
  cfg.navigator = MarkovNavigator::Uniform({0});
  ClosedLoopWorkload load(cluster, cfg, 12);
  load.Start();
  // Unthrottled demand would be 400/0.5s = 800/s; s1's capacity is ~333/s
  // (2 cores / 6 ms). In-flight population can never exceed the user count.
  sim.RunUntil(Sec(30));
  EXPECT_LE(cluster.in_flight(), 400u);
  const double rate = static_cast<double>(cluster.completed_count()) / 30.0;
  EXPECT_LT(rate, 420.0);  // bounded by service capacity, not demand
  EXPECT_GT(rate, 150.0);
}

TEST(ClosedLoopWorkload, GrowShrinkGrowReusesParkedUsers) {
  sim::Simulation sim;
  const auto app =
      grunt::testing::SingleChainApp(microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 13);
  ClosedLoopWorkload::Config cfg;
  cfg.users = 20;
  cfg.think_mean = Ms(200);
  cfg.navigator = MarkovNavigator::Uniform({0});
  ClosedLoopWorkload load(cluster, cfg, 13);
  load.Start();
  sim.RunUntil(Sec(5));
  load.SetUserCount(5);
  sim.RunUntil(Sec(10));
  load.SetUserCount(40);
  sim.RunUntil(Sec(20));
  EXPECT_EQ(load.user_count(), 40);
  // The grown population generates roughly proportional load.
  const auto before = cluster.completed_count();
  sim.RunUntil(Sec(30));
  const double rate = static_cast<double>(cluster.completed_count() - before) / 10.0;
  EXPECT_NEAR(rate, 40.0 / 0.21, 60.0);
}

TEST(RateTrace, EmptyTraceIsInert) {
  RateTrace trace;
  EXPECT_DOUBLE_EQ(trace.RateAt(Sec(5)), 0.0);
  EXPECT_DOUBLE_EQ(trace.MaxRate(), 0.0);
  EXPECT_DOUBLE_EQ(trace.MinRate(), 0.0);
}

TEST(LargeVariationTrace, DifferentSeedsDiffer) {
  const auto a = MakeLargeVariationTrace(0, Sec(100), Sec(5), 100, 1000, 1);
  const auto b = MakeLargeVariationTrace(0, Sec(100), Sec(5), 100, 1000, 2);
  ASSERT_EQ(a.points.size(), b.points.size());
  bool differ = false;
  for (std::size_t i = 0; i < a.points.size() && !differ; ++i) {
    differ = a.points[i].rate != b.points[i].rate;
  }
  EXPECT_TRUE(differ);
}

TEST(OpenLoopSource, ClientIdsRotateThroughConfiguredPool) {
  sim::Simulation sim;
  const auto app =
      grunt::testing::SingleChainApp(microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 14);
  OpenLoopSource::Config cfg;
  cfg.rate = 200;
  cfg.mix = RequestMix::Uniform({0});
  cfg.client_id_base = 5'000;
  cfg.client_id_count = 10;
  std::map<std::uint64_t, int> seen;
  cluster.telemetry().submit().Subscribe(
      [&](const telemetry::RequestSubmit& e) { ++seen[e.client_id]; });
  OpenLoopSource src(cluster, cfg, 14);
  src.Start();
  sim.RunUntil(Sec(5));
  EXPECT_EQ(seen.size(), 10u);
  for (const auto& [id, count] : seen) {
    EXPECT_GE(id, 5'000u);
    EXPECT_LT(id, 5'010u);
    EXPECT_GT(count, 20);  // ~100 each
  }
}

}  // namespace
}  // namespace grunt::workload
