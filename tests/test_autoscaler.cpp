#include "cloud/autoscaler.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "workload/workload.h"

namespace grunt::cloud {
namespace {

using grunt::testing::SingleChainApp;

struct Rig {
  sim::Simulation sim;
  microsvc::Application app = SingleChainApp();
  microsvc::Cluster cluster{sim, app, 1};
  ResourceMonitor monitor{cluster, {Sec(1), "m"}};
};

/// Keeps service s1 at a given utilization via direct CPU bursts.
void DriveUtilization(Rig& rig, double util, SimTime until) {
  const auto s1 = *rig.app.FindService("s1");
  // Every 100 ms, inject util * cores * 100 ms of work.
  const SimDuration burst = static_cast<SimDuration>(
      util * 2 /*cores*/ * 100'000 / 2 /*two bursts*/);
  for (SimTime t = 0; t < until; t += Ms(100)) {
    rig.sim.At(t, [&rig, s1, burst] {
      rig.cluster.service(s1).RunCpu(burst, [] {});
      rig.cluster.service(s1).RunCpu(burst, [] {});
    });
  }
}

TEST(AutoScaler, ScalesUpAfterSustainedHighUtil) {
  Rig rig;
  AutoScaler::Config cfg;
  cfg.window = Sec(5);
  cfg.provision_delay = Sec(3);
  cfg.cooldown = Sec(5);
  AutoScaler scaler(rig.cluster, rig.monitor, cfg);
  rig.monitor.Start();
  scaler.Start();
  DriveUtilization(rig, 0.9, Sec(20));
  rig.sim.RunUntil(Sec(20));
  const auto s1 = *rig.app.FindService("s1");
  EXPECT_GE(scaler.scale_up_count(), 1u);
  EXPECT_GE(rig.cluster.service(s1).replicas(), 2);
  // First action: >= window (5 samples) + provision delay.
  ASSERT_FALSE(scaler.actions().empty());
  EXPECT_GE(scaler.actions().front().at, Sec(8));
  EXPECT_EQ(scaler.actions().front().service, s1);
  EXPECT_EQ(scaler.actions().front().delta, 1);
}

TEST(AutoScaler, NoActionBelowThreshold) {
  Rig rig;
  AutoScaler::Config cfg;
  cfg.window = Sec(5);
  AutoScaler scaler(rig.cluster, rig.monitor, cfg);
  rig.monitor.Start();
  scaler.Start();
  DriveUtilization(rig, 0.6, Sec(30));  // between down (0.3) and up (0.7)
  rig.sim.RunUntil(Sec(30));
  EXPECT_TRUE(scaler.actions().empty());
}

TEST(AutoScaler, SubSecondMillibottlenecksInvisibleAtOneSecondGranularity) {
  // The paper's central stealth claim: alternating <500 ms saturation
  // pulses with cool gaps never push any 1 s sample over the threshold.
  Rig rig;
  AutoScaler::Config cfg;
  cfg.window = Sec(5);
  AutoScaler scaler(rig.cluster, rig.monitor, cfg);
  rig.monitor.Start();
  scaler.Start();
  const auto s1 = *rig.app.FindService("s1");
  // 400 ms of full 2-core saturation every 1.5 s.
  for (SimTime t = 0; t < Sec(40); t += Ms(1500)) {
    rig.sim.At(t, [&rig, s1] {
      for (int c = 0; c < 2; ++c) {
        rig.cluster.service(s1).RunCpu(Ms(400), [] {});
      }
    });
  }
  rig.sim.RunUntil(Sec(40));
  EXPECT_TRUE(scaler.actions().empty());
  EXPECT_LT(rig.monitor.cpu_util(s1).WindowMax(0, Sec(40)), 0.70);
}

TEST(AutoScaler, ScalesDownWhenIdleAndRespectsFloor) {
  Rig rig;
  const auto s1 = *rig.app.FindService("s1");
  rig.cluster.service(s1).AddReplica();
  AutoScaler::Config cfg;
  cfg.window = Sec(5);
  cfg.cooldown = Sec(5);
  AutoScaler scaler(rig.cluster, rig.monitor, cfg);
  rig.monitor.Start();
  scaler.Start();
  rig.sim.RunUntil(Sec(60));  // fully idle
  EXPECT_GE(scaler.scale_down_count(), 1u);
  // Every service is back at 1 replica and never below.
  for (std::size_t i = 0; i < rig.cluster.service_count(); ++i) {
    EXPECT_EQ(rig.cluster.service(static_cast<std::int32_t>(i)).replicas(), 1);
  }
}

TEST(AutoScaler, RespectsMaxReplicas) {
  Rig rig;
  AutoScaler::Config cfg;
  cfg.window = Sec(3);
  cfg.provision_delay = Sec(1);
  cfg.cooldown = Sec(3);
  AutoScaler scaler(rig.cluster, rig.monitor, cfg);
  rig.monitor.Start();
  scaler.Start();
  DriveUtilization(rig, 0.99, Sec(300));
  rig.sim.RunUntil(Sec(300));
  const auto s1 = *rig.app.FindService("s1");
  EXPECT_LE(rig.cluster.service(s1).replicas(),
            rig.app.service(s1).max_replicas);
}

TEST(AutoScaler, CooldownSpacesActions) {
  Rig rig;
  AutoScaler::Config cfg;
  cfg.window = Sec(2);
  cfg.provision_delay = 0;
  cfg.cooldown = Sec(10);
  AutoScaler scaler(rig.cluster, rig.monitor, cfg);
  rig.monitor.Start();
  scaler.Start();
  DriveUtilization(rig, 0.95, Sec(25));
  rig.sim.RunUntil(Sec(25));
  const auto& actions = scaler.actions();
  for (std::size_t i = 1; i < actions.size(); ++i) {
    if (actions[i].service == actions[i - 1].service) {
      EXPECT_GE(actions[i].at - actions[i - 1].at, Sec(10));
    }
  }
}

}  // namespace
}  // namespace grunt::cloud
