#include "apps/mubench.h"
#include "apps/socialnetwork.h"

#include <gtest/gtest.h>

#include "microsvc/cluster.h"
#include "sim/simulation.h"
#include "util/stats.h"
#include "workload/workload.h"

using grunt::Samples;

namespace grunt::apps {
namespace {

TEST(SocialNetwork, TopologyShape) {
  const auto app = MakeSocialNetwork({});
  EXPECT_EQ(app.name(), "socialnetwork");
  EXPECT_GE(app.service_count(), 25u);
  EXPECT_EQ(app.request_type_count(), 14u);  // 13 dynamic + 1 static
  EXPECT_EQ(app.PublicDynamicTypes().size(), 13u);
  // Key shared upstream services exist with small slot pools.
  for (const char* name : {"compose-post", "home-timeline", "user-timeline"}) {
    auto id = app.FindService(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_LE(app.service(*id).threads_per_replica, 32) << name;
  }
  // The gateway is effectively un-overflowable.
  EXPECT_GE(app.service(*app.FindService("nginx")).threads_per_replica, 1024);
}

TEST(SocialNetwork, OptionsValidation) {
  EXPECT_THROW(MakeSocialNetwork({0, 1.0,
                                  microsvc::ServiceTimeDist::kExponential}),
               std::invalid_argument);
  EXPECT_THROW(MakeSocialNetwork({1, 0.0,
                                  microsvc::ServiceTimeDist::kExponential}),
               std::invalid_argument);
}

TEST(SocialNetwork, ReplicaScaleGrowsBackendOnly) {
  const auto base = MakeSocialNetwork({});
  SocialNetworkOptions opts;
  opts.replica_scale = 2;
  const auto big = MakeSocialNetwork(opts);
  const auto cp = *big.FindService("compose-post");
  EXPECT_EQ(big.service(cp).initial_replicas,
            2 * base.service(cp).initial_replicas);
  const auto gw = *big.FindService("nginx");
  EXPECT_EQ(big.service(gw).initial_replicas, 1);
}

TEST(SocialNetwork, CapacityScaleShortensDemands) {
  const auto slow = MakeSocialNetwork({});
  SocialNetworkOptions opts;
  opts.capacity_scale = 2.0;
  const auto fast = MakeSocialNetwork(opts);
  const auto t = *slow.FindRequestType("compose/text");
  EXPECT_EQ(fast.request_type(t).hops[3].cpu_demand * 2,
            slow.request_type(t).hops[3].cpu_demand);
}

TEST(SocialNetwork, MixCoversAllTypesAndValidates) {
  const auto app = MakeSocialNetwork({});
  const auto mix = SocialNetworkMix(app);
  EXPECT_NO_THROW(mix.Validate());
  EXPECT_EQ(mix.types.size(), app.request_type_count());
  const auto nav = SocialNetworkNavigator(app);
  EXPECT_NO_THROW(nav.Validate());
}

TEST(SocialNetwork, BaselineIsHealthyAtReferenceLoad) {
  // 7000 users / 7 s think ~= 1000 req/s must be stable: bounded RT and no
  // runaway queues.
  sim::Simulation sim;
  const auto app = MakeSocialNetwork({});
  microsvc::Cluster cluster(sim, app, 3);
  workload::ClosedLoopWorkload::Config wl;
  wl.users = 7000;
  wl.navigator = SocialNetworkNavigator(app);
  workload::ClosedLoopWorkload load(cluster, wl, 3);
  load.Start();
  sim.RunUntil(Sec(30));
  Samples rt;
  for (const auto& rec : cluster.completions()) {
    if (rec.start >= Sec(10)) rt.Add(ToMillis(rec.end - rec.start));
  }
  ASSERT_GT(rt.count(), 10'000u);
  EXPECT_LT(rt.mean(), 60.0);
  EXPECT_LT(rt.Percentile(95), 200.0);
  EXPECT_LT(cluster.in_flight(), 600u);
}

TEST(MuBench, DeterministicPerSeed) {
  MuBenchOptions opts;
  const auto a = MakeMuBench(opts);
  const auto b = MakeMuBench(opts);
  ASSERT_EQ(a.service_count(), b.service_count());
  ASSERT_EQ(a.request_type_count(), b.request_type_count());
  for (std::size_t i = 0; i < a.request_type_count(); ++i) {
    const auto& ta = a.request_type(static_cast<std::int32_t>(i));
    const auto& tb = b.request_type(static_cast<std::int32_t>(i));
    ASSERT_EQ(ta.hops.size(), tb.hops.size());
    for (std::size_t h = 0; h < ta.hops.size(); ++h) {
      EXPECT_EQ(ta.hops[h].cpu_demand, tb.hops[h].cpu_demand);
    }
  }
  MuBenchOptions other = opts;
  other.seed = 999;
  const auto c = MakeMuBench(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.request_type_count() && !any_diff; ++i) {
    const auto& ta = a.request_type(static_cast<std::int32_t>(i));
    const auto& tc = c.request_type(static_cast<std::int32_t>(i));
    any_diff = ta.hops.size() != tc.hops.size();
    for (std::size_t h = 0; !any_diff && h < ta.hops.size(); ++h) {
      any_diff = ta.hops[h].cpu_demand != tc.hops[h].cpu_demand;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(MuBench, ExactServiceCountsAtPaperScales) {
  for (std::int32_t services : {62, 118, 196}) {
    MuBenchOptions opts;
    opts.services = services;
    opts.groups = 3;
    opts.paths_per_group = 3;
    const auto app = MakeMuBench(opts);
    EXPECT_EQ(app.service_count(), static_cast<std::size_t>(services));
    EXPECT_EQ(app.PublicDynamicTypes().size(),
              3u * 3u + 1u /*upstream*/ + 2u /*singletons*/);
  }
}

TEST(MuBench, RejectsImpossibleShapes) {
  MuBenchOptions tiny;
  tiny.services = 10;
  tiny.groups = 3;
  tiny.paths_per_group = 3;
  EXPECT_THROW(MakeMuBench(tiny), std::invalid_argument);
  MuBenchOptions bad;
  bad.paths_per_group = 1;
  EXPECT_THROW(MakeMuBench(bad), std::invalid_argument);
}

TEST(MuBench, MixIsUniformOverDynamicTypes) {
  const auto app = MakeMuBench({});
  const auto mix = MuBenchMix(app);
  EXPECT_NO_THROW(mix.Validate());
  EXPECT_EQ(mix.types.size(), app.PublicDynamicTypes().size());
}

}  // namespace
}  // namespace grunt::apps
