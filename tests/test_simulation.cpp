#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fixtures.h"
#include "microsvc/cluster.h"
#include "util/rng.h"

namespace grunt::sim {
namespace {

TEST(Simulation, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.At(Ms(30), [&] { order.push_back(3); });
  sim.At(Ms(10), [&] { order.push_back(1); });
  sim.At(Ms(20), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Ms(30));
}

TEST(Simulation, TiesBreakInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(Ms(5), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, RejectsPastScheduling) {
  Simulation sim;
  sim.At(Ms(10), [] {});
  sim.RunAll();
  EXPECT_THROW(sim.At(Ms(5), [] {}), std::invalid_argument);
}

TEST(Simulation, AfterClampsNegativeDelay) {
  Simulation sim;
  bool fired = false;
  sim.At(Ms(10), [&] {
    sim.After(-100, [&] { fired = true; });
  });
  sim.RunAll();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), Ms(10));
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  EventHandle h = sim.At(Ms(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.Cancel();
  EXPECT_FALSE(h.pending());
  sim.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.At(Ms(10), [&] { ++fired; });
  sim.At(Ms(20), [&] { ++fired; });
  sim.At(Ms(21), [&] { ++fired; });
  const auto n = sim.RunUntil(Ms(20));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Ms(20));
  sim.RunUntil(Ms(30));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), Ms(30));  // clock advances even after queue drains
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.After(Ms(1), recurse);
  };
  sim.After(Ms(1), recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Ms(5));
}

TEST(Simulation, EveryRepeatsUntilCancelled) {
  Simulation sim;
  int count = 0;
  EventHandle h = sim.Every(Ms(10), [&] { ++count; });
  sim.RunUntil(Ms(55));
  EXPECT_EQ(count, 5);
  h.Cancel();
  sim.RunUntil(Ms(200));
  EXPECT_EQ(count, 5);
}

TEST(Simulation, EveryRejectsNonPositivePeriod) {
  Simulation sim;
  EXPECT_THROW(sim.Every(0, [] {}), std::invalid_argument);
}

TEST(Simulation, StopInterruptsRun) {
  Simulation sim;
  int fired = 0;
  sim.At(Ms(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.At(Ms(2), [&] { ++fired; });
  sim.RunUntil(Ms(100));
  EXPECT_EQ(fired, 1);
  // A subsequent run resumes.
  sim.RunUntil(Ms(100));
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, PendingEventCountTracksQueue) {
  Simulation sim;
  sim.At(Ms(1), [] {});
  sim.At(Ms(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.RunAll();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_fired(), 2u);
}

TEST(Simulation, PendingEventCountAgreesWithHandleDuringEveryCallback) {
  // While an Every callback executes its slot is out of the heap
  // (firing_slot_), but the series is still pending per its handle;
  // pending_events() must count it instead of transiently under-reporting.
  Simulation sim;
  EventHandle h;
  std::vector<std::size_t> observed;
  std::vector<bool> handle_pending;
  h = sim.Every(Ms(10), [&] {
    observed.push_back(sim.pending_events());
    handle_pending.push_back(h.pending());
    if (observed.size() == 2) {
      h.Cancel();
      // Once cancelled mid-callback the series is no longer pending and
      // the count must agree immediately.
      observed.push_back(sim.pending_events());
      handle_pending.push_back(h.pending());
    }
  });
  sim.RunUntil(Ms(25));
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_EQ(observed, (std::vector<std::size_t>{1, 1, 0}));
  EXPECT_EQ(handle_pending, (std::vector<bool>{true, true, false}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, RunUntilDoesNotOvershootPastCancelledHead) {
  // A cancelled head entry must not let RunUntil fire events beyond the
  // boundary (the pre-arena engine had exactly this quirk: the <= until
  // check looked at the cancelled top, then the pop skipped it and fired
  // whatever came next, however late).
  Simulation sim;
  bool late_fired = false;
  EventHandle head = sim.At(Ms(10), [] {});
  sim.At(Ms(30), [&] { late_fired = true; });
  head.Cancel();
  sim.RunUntil(Ms(20));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.Now(), Ms(20));
  sim.RunUntil(Ms(30));
  EXPECT_TRUE(late_fired);
}

TEST(Simulation, StaleHandleCannotCancelRecycledSlot) {
  // After an event fires, its arena slot is recycled for later events. A
  // handle to the fired event must go inert (generation mismatch), not
  // cancel whichever unrelated event inherited the slot.
  Simulation sim;
  bool second_fired = false;
  EventHandle first = sim.At(Ms(1), [] {});
  sim.RunAll();
  EXPECT_FALSE(first.pending());
  // With a single-slot arena the next event reuses the same slot index.
  EventHandle second = sim.At(Ms(2), [&] { second_fired = true; });
  first.Cancel();  // stale: must be a no-op
  EXPECT_TRUE(second.pending());
  sim.RunAll();
  EXPECT_TRUE(second_fired);
}

TEST(Simulation, CancelInsideOwnCallbackOfOneShotIsInert) {
  Simulation sim;
  EventHandle h;
  int fired = 0;
  h = sim.At(Ms(1), [&] {
    ++fired;
    EXPECT_FALSE(h.pending());  // already firing: no longer pending
    h.Cancel();                 // must not corrupt the slot being recycled
  });
  sim.At(Ms(2), [&] { ++fired; });
  sim.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EveryStoresCallbackOnceAndRearmsInPlace) {
  // The repeating callback must be constructed/moved into the engine exactly
  // once for the whole series, not copied or re-moved per tick.
  static int live = 0;
  static int constructed = 0;
  struct Tick {
    int* count;
    Tick(int* c) : count(c) {  // NOLINT(runtime/explicit)
      ++live;
      ++constructed;
    }
    Tick(const Tick& o) : count(o.count) {
      ++live;
      ++constructed;
    }
    Tick(Tick&& o) noexcept : count(o.count) {
      ++live;
      ++constructed;
    }
    ~Tick() { --live; }
    void operator()() { ++*count; }
  };
  live = 0;
  constructed = 0;
  int ticks = 0;
  {
    Simulation sim;
    sim.Every(Ms(1), Tick(&ticks));
    const int constructed_after_arming = constructed;
    sim.RunUntil(Ms(100));
    EXPECT_EQ(ticks, 100);
    EXPECT_EQ(constructed, constructed_after_arming)
        << "repeating callback was copied/moved while ticking";
  }
  EXPECT_EQ(live, 0) << "callback leaked or double-destroyed";
}

TEST(Simulation, EveryCancelFromInsideOwnCallbackStopsSeries) {
  Simulation sim;
  int count = 0;
  EventHandle h;
  h = sim.Every(Ms(10), [&] {
    if (++count == 3) h.Cancel();
  });
  sim.RunUntil(Sec(1));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(h.pending());
}

TEST(Simulation, StatsCountCancellationsAndCompaction) {
  Simulation sim;
  std::vector<EventHandle> handles;
  // Times stay inside the near band (under one level-0 wheel horizon) so
  // every entry lands in the heap — this test exercises heap compaction.
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.At(Us(100 + 35 * i), [] {}));
  }
  // Cancelling more than half of a >=64-entry queue must trigger the lazy
  // compaction instead of leaving the dead entries to the pop path.
  for (int i = 0; i < 80; ++i) handles[static_cast<std::size_t>(i)].Cancel();
  const auto st = sim.stats();
  EXPECT_GE(st.compactions, 1u);
  EXPECT_GE(st.cancelled_purged, 50u);
  EXPECT_EQ(sim.pending_events(), 20u);
  sim.RunAll();
  EXPECT_EQ(sim.events_fired(), 20u);
  EXPECT_EQ(sim.stats().events_scheduled, 100u);
}

TEST(Simulation, StatsCountCancelledPoppedWithoutCompaction) {
  Simulation sim;
  EventHandle h = sim.At(Ms(1), [] {});
  sim.At(Ms(2), [] {});
  h.Cancel();  // queue too small for compaction: purged at pop time
  sim.RunAll();
  const auto st = sim.stats();
  EXPECT_EQ(st.cancelled_popped, 1u);
  EXPECT_EQ(st.compactions, 0u);
  EXPECT_EQ(sim.events_fired(), 1u);
}

TEST(Simulation, StatsTrackInlineVersusHeapCallbacks) {
  Simulation sim;
  sim.At(Ms(1), [] {});  // captureless: inline
  struct Big {
    char payload[InplaceFunction::kInlineCapacity + 8] = {};
  };
  Big big;
  sim.At(Ms(2), [big] { (void)big; });  // exceeds the SBO: heap
  sim.RunAll();
  const auto st = sim.stats();
  EXPECT_EQ(st.events_scheduled, 2u);
  EXPECT_EQ(st.inline_callbacks, 1u);
  EXPECT_EQ(st.heap_callbacks, 1u);
}

// --- Determinism regression across the event-core rewrite ---------------
//
// Full-stack scenario (SocialNetwork-style two-path app, closed completion
// records, a cancelled periodic monitor) whose completion stream is hashed.
// The hash is pinned: any engine change that reorders same-time events,
// changes tie-breaking, or perturbs RNG consumption shows up here.
//
// The constants were captured on the pre-arena engine (std::priority_queue +
// std::function + shared_ptr control blocks) and reproduced bit-for-bit by
// the arena engine. One deliberate difference: the old engine counted 8051
// fired events because a cancelled Every series still fired its final
// already-queued wrapper event as a no-op; the arena engine purges it before
// firing, so the count is one lower while the completion stream is
// unchanged.

std::uint64_t HashMix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ull;  // FNV-1a prime
  return h;
}

struct GoldenRun {
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
  std::uint64_t retried = 0;  ///< completions that spent >= 1 retry
  std::array<std::uint64_t, microsvc::kOutcomeCount> outcomes{};
};

GoldenRun RunGoldenScenario() {
  Simulation sim;
  const auto app = grunt::testing::TwoPathParallelApp();
  microsvc::Cluster cluster(sim, app, /*seed=*/42);
  RngStream arrivals(42, "determinism.arrivals");
  SimTime t = 0;
  for (int i = 0; i < 400; ++i) {
    t += arrivals.NextInt(Us(100), Ms(4));
    const auto type = static_cast<microsvc::RequestTypeId>(i % 2);
    const bool heavy = (i % 7 == 0);
    sim.At(t, [&cluster, type, heavy, i] {
      cluster.Submit(type, microsvc::RequestClass::kLegit, heavy,
                     static_cast<std::uint64_t>(i));
    });
  }
  int ticks = 0;
  EventHandle mon = sim.Every(Ms(10), [&ticks] { ++ticks; });
  sim.At(Ms(500), [&mon] { mon.Cancel(); });
  sim.RunAll();
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");

  GoldenRun out;
  out.events = sim.events_fired();
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const auto& rec : cluster.completions()) {
    h = HashMix(h, rec.request_id);
    h = HashMix(h, static_cast<std::uint64_t>(rec.type));
    h = HashMix(h, static_cast<std::uint64_t>(rec.start));
    h = HashMix(h, static_cast<std::uint64_t>(rec.end));
    h = HashMix(h, static_cast<std::uint64_t>(rec.outcome));
    h = HashMix(h, static_cast<std::uint64_t>(rec.retries));
  }
  h = HashMix(h, static_cast<std::uint64_t>(ticks));
  out.hash = h;
  return out;
}

TEST(SimulationDeterminism, GoldenCompletionStreamHash) {
  const GoldenRun run = RunGoldenScenario();
  EXPECT_EQ(run.events, 8050u);
  EXPECT_EQ(run.hash, 0xdefc67395863a7c4ull);
}

TEST(SimulationDeterminism, RepeatRunsAreBitIdentical) {
  const GoldenRun a = RunGoldenScenario();
  const GoldenRun b = RunGoldenScenario();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.hash, b.hash);
}

// Multi-hop retry/fault golden scenario: per-hop timeouts + retries with
// jittered backoff, a deadline-carrying type, load shedding, a circuit
// breaker, and mid-run Crash/Restart (including a crash to zero replicas
// with waiters pending). Every failure path of the request lifecycle —
// timeout, rejection, breaker fast-fail, deadline, crash-kill — feeds the
// hash, so any lifecycle rewrite that perturbs ordering, RNG consumption or
// outcome accounting shows up here. Constants captured on the shared_ptr +
// std::function lifecycle and reproduced bit-for-bit by the pooled one.
GoldenRun RunRetryFaultGoldenScenario() {
  Simulation sim;
  microsvc::Application::Builder b;
  b.SetName("golden-faults")
      .SetServiceTimeDist(microsvc::ServiceTimeDist::kExponential)
      .SetNetLatency(Us(200));
  auto gw = grunt::testing::Svc("gw", 256, 4);
  auto um = grunt::testing::Svc("um", 6, 2);
  auto wa = grunt::testing::Svc("worker-a", 4, 1);
  wa.max_queue_per_replica = 3;  // load shedding
  auto wb = grunt::testing::Svc("worker-b", 4, 1);
  wb.breaker_threshold = 3;
  wb.breaker_cooldown = Ms(80);
  auto leaf = grunt::testing::Svc("leaf", 2, 1);
  const microsvc::ServiceId gw_id = b.AddService(gw);
  const microsvc::ServiceId um_id = b.AddService(um);
  const microsvc::ServiceId wa_id = b.AddService(wa);
  const microsvc::ServiceId wb_id = b.AddService(wb);
  const microsvc::ServiceId leaf_id = b.AddService(leaf);

  microsvc::RpcPolicy retrying;
  retrying.timeout = Ms(25);
  retrying.max_retries = 2;
  retrying.backoff_base = Ms(2);
  retrying.backoff_multiplier = 2.0;
  retrying.jitter = 0.3;

  microsvc::RequestTypeSpec ta;
  ta.name = "a";
  // The wa hop carries no policy, so wa's crash-killed bursts (wa runs
  // near-saturated) surface upstream as terminal kFailed completions.
  ta.hops = {{gw_id, Us(200), 0, std::nullopt},
             {um_id, Us(800), Us(300), std::nullopt},
             {wa_id, Us(6000), Us(400), std::nullopt},
             {leaf_id, Us(500), 0, retrying}};
  b.AddRequestType(ta);
  microsvc::RequestTypeSpec tb;
  tb.name = "b";
  tb.deadline = Ms(90);
  tb.hops = {{gw_id, Us(200), 0, std::nullopt},
             {um_id, Us(800), Us(300), std::nullopt},
             {wb_id, Us(6000), Us(400), retrying},
             {leaf_id, Us(500), 0, std::nullopt}};
  b.AddRequestType(tb);
  const auto app = std::move(b).Build();

  microsvc::Cluster cluster(sim, app, /*seed=*/7);
  RngStream arrivals(7, "determinism.fault.arrivals");
  SimTime t = 0;
  for (int i = 0; i < 300; ++i) {
    t += arrivals.NextInt(Us(100), Ms(3));
    const auto type = static_cast<microsvc::RequestTypeId>(i % 2);
    const bool heavy = (i % 5 == 0);
    sim.At(t, [&cluster, type, heavy, i] {
      cluster.Submit(type, microsvc::RequestClass::kLegit, heavy,
                     static_cast<std::uint64_t>(i));
    });
  }
  // Faults: crash worker-a mid-run (killing queued + running bursts), crash
  // the single-replica leaf to zero (stranding slot waiters), then restart
  // both while arrivals are still flowing.
  sim.At(Ms(120), [&cluster, wa_id] { cluster.service(wa_id).Crash(); });
  sim.At(Ms(150), [&cluster, leaf_id] { cluster.service(leaf_id).Crash(); });
  // um's hop carries no retry policy, so its killed bursts surface as
  // terminal kFailed completions.
  sim.At(Ms(180), [&cluster, um_id] { cluster.service(um_id).Crash(); });
  sim.At(Ms(210), [&cluster, um_id] { cluster.service(um_id).Restart(); });
  sim.At(Ms(230), [&cluster, leaf_id] { cluster.service(leaf_id).Restart(); });
  sim.At(Ms(260), [&cluster, wa_id] { cluster.service(wa_id).Restart(); });
  sim.RunAll();
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");

  GoldenRun out;
  out.events = sim.events_fired();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& rec : cluster.completions()) {
    h = HashMix(h, rec.request_id);
    h = HashMix(h, static_cast<std::uint64_t>(rec.type));
    h = HashMix(h, static_cast<std::uint64_t>(rec.start));
    h = HashMix(h, static_cast<std::uint64_t>(rec.end));
    h = HashMix(h, static_cast<std::uint64_t>(rec.outcome));
    h = HashMix(h, static_cast<std::uint64_t>(rec.retries));
    out.retried += rec.retries > 0;
  }
  for (std::size_t o = 0; o < microsvc::kOutcomeCount; ++o) {
    out.outcomes[o] = cluster.outcome_count(static_cast<microsvc::Outcome>(o));
    h = HashMix(h, out.outcomes[o]);
  }
  out.hash = h;
  return out;
}

TEST(SimulationDeterminism, GoldenRetryFaultStreamHash) {
  const GoldenRun run = RunRetryFaultGoldenScenario();
  // Every outcome kind must actually occur or the scenario lost coverage.
  for (std::size_t o = 0; o < microsvc::kOutcomeCount; ++o) {
    EXPECT_GT(run.outcomes[o], 0u)
        << "outcome " << microsvc::ToString(static_cast<microsvc::Outcome>(o))
        << " never produced";
  }
  EXPECT_GT(run.retried, 0u) << "no completion ever retried";
  EXPECT_EQ(run.events, 4736u) << "events=" << run.events;
  EXPECT_EQ(run.hash, 0xabadb062c4ab398cull) << "hash=0x" << std::hex
                                             << run.hash;
}

}  // namespace
}  // namespace grunt::sim
