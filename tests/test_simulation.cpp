#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace grunt::sim {
namespace {

TEST(Simulation, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.At(Ms(30), [&] { order.push_back(3); });
  sim.At(Ms(10), [&] { order.push_back(1); });
  sim.At(Ms(20), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Ms(30));
}

TEST(Simulation, TiesBreakInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(Ms(5), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, RejectsPastScheduling) {
  Simulation sim;
  sim.At(Ms(10), [] {});
  sim.RunAll();
  EXPECT_THROW(sim.At(Ms(5), [] {}), std::invalid_argument);
}

TEST(Simulation, AfterClampsNegativeDelay) {
  Simulation sim;
  bool fired = false;
  sim.At(Ms(10), [&] {
    sim.After(-100, [&] { fired = true; });
  });
  sim.RunAll();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), Ms(10));
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  EventHandle h = sim.At(Ms(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.Cancel();
  EXPECT_FALSE(h.pending());
  sim.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.At(Ms(10), [&] { ++fired; });
  sim.At(Ms(20), [&] { ++fired; });
  sim.At(Ms(21), [&] { ++fired; });
  const auto n = sim.RunUntil(Ms(20));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Ms(20));
  sim.RunUntil(Ms(30));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), Ms(30));  // clock advances even after queue drains
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.After(Ms(1), recurse);
  };
  sim.After(Ms(1), recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Ms(5));
}

TEST(Simulation, EveryRepeatsUntilCancelled) {
  Simulation sim;
  int count = 0;
  EventHandle h = sim.Every(Ms(10), [&] { ++count; });
  sim.RunUntil(Ms(55));
  EXPECT_EQ(count, 5);
  h.Cancel();
  sim.RunUntil(Ms(200));
  EXPECT_EQ(count, 5);
}

TEST(Simulation, EveryRejectsNonPositivePeriod) {
  Simulation sim;
  EXPECT_THROW(sim.Every(0, [] {}), std::invalid_argument);
}

TEST(Simulation, StopInterruptsRun) {
  Simulation sim;
  int fired = 0;
  sim.At(Ms(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.At(Ms(2), [&] { ++fired; });
  sim.RunUntil(Ms(100));
  EXPECT_EQ(fired, 1);
  // A subsequent run resumes.
  sim.RunUntil(Ms(100));
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, PendingEventCountTracksQueue) {
  Simulation sim;
  sim.At(Ms(1), [] {});
  sim.At(Ms(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.RunAll();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_fired(), 2u);
}

}  // namespace
}  // namespace grunt::sim
