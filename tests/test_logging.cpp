#include "util/logging.h"

#include <gtest/gtest.h>

namespace grunt {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(Logging, StreamingCompilesForCommonTypes) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);  // keep test output clean
  LogInfo() << "string " << 42 << " " << 3.14 << " " << true;
  LogDebug() << "suppressed";
  LogWarn() << "suppressed";
  LogError() << "suppressed";
  SUCCEED();
}

TEST(Logging, FormatTimeRendersSeconds) {
  EXPECT_EQ(FormatTime(Sec(12)), "12s");
  EXPECT_EQ(FormatTime(Ms(1500)), "1.5s");
}

}  // namespace
}  // namespace grunt
