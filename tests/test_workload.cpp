#include "workload/workload.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "microsvc/cluster.h"

namespace grunt::workload {
namespace {

using grunt::testing::SingleChainApp;

TEST(RequestMix, ValidationAndDraw) {
  RequestMix mix = RequestMix::Uniform({0, 1, 2});
  EXPECT_NO_THROW(mix.Validate());
  RngStream rng(1, "mix");
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30'000; ++i) ++counts[static_cast<std::size_t>(mix.Draw(rng))];
  for (int c : counts) EXPECT_NEAR(c, 10'000, 600);

  RequestMix bad;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  bad.types = {0};
  bad.weights = {0.0};
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
}

TEST(MarkovNavigator, ValidationRejectsRaggedAndAbsorbing) {
  MarkovNavigator nav = MarkovNavigator::Uniform({0, 1});
  EXPECT_NO_THROW(nav.Validate());
  nav.transition[0] = {1.0};  // ragged
  EXPECT_THROW(nav.Validate(), std::invalid_argument);
  nav = MarkovNavigator::Uniform({0, 1});
  nav.transition[1] = {0.0, 0.0};  // absorbing
  EXPECT_THROW(nav.Validate(), std::invalid_argument);
}

TEST(MarkovNavigator, FollowsTransitionWeights) {
  MarkovNavigator nav;
  nav.types = {0, 1};
  nav.transition = {{0.0, 1.0}, {1.0, 0.0}};  // strict alternation
  RngStream rng(1, "nav");
  std::size_t state = 0;
  for (int i = 0; i < 10; ++i) {
    const std::size_t next = nav.DrawNext(state, rng);
    EXPECT_NE(next, state);
    state = next;
  }
}

TEST(ClosedLoopWorkload, ThroughputMatchesLittlesLaw) {
  sim::Simulation sim;
  const auto app = SingleChainApp(microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 2);
  ClosedLoopWorkload::Config cfg;
  cfg.users = 200;
  cfg.think_mean = Sec(2);
  cfg.navigator = MarkovNavigator::Uniform({0});
  ClosedLoopWorkload load(cluster, cfg, 2);
  load.Start();
  sim.RunUntil(Sec(60));
  // Expected rate ~= users / (think + RT) ~= 200 / 2.01s ~= 99.5/s.
  const double rate =
      static_cast<double>(cluster.completed_count()) / 60.0;
  EXPECT_NEAR(rate, 99.5, 8.0);
}

TEST(ClosedLoopWorkload, SetUserCountGrowsAndParks) {
  sim::Simulation sim;
  const auto app = SingleChainApp(microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 3);
  ClosedLoopWorkload::Config cfg;
  cfg.users = 50;
  cfg.think_mean = Ms(500);
  cfg.navigator = MarkovNavigator::Uniform({0});
  ClosedLoopWorkload load(cluster, cfg, 3);
  load.Start();
  sim.RunUntil(Sec(20));
  const auto at_50 = cluster.completed_count();
  load.SetUserCount(200);
  sim.RunUntil(Sec(40));
  const auto at_200 = cluster.completed_count() - at_50;
  load.SetUserCount(10);
  sim.RunUntil(Sec(45));  // drain transition
  const auto before = cluster.completed_count();
  sim.RunUntil(Sec(65));
  const auto at_10 = cluster.completed_count() - before;
  // Rates should scale roughly with the population.
  EXPECT_GT(at_200, at_50 * 3);
  EXPECT_LT(at_10, at_50);
  EXPECT_THROW(load.SetUserCount(-1), std::invalid_argument);
}

TEST(OpenLoopSource, RateIsRespected) {
  sim::Simulation sim;
  const auto app = SingleChainApp(microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 4);
  OpenLoopSource::Config cfg;
  cfg.rate = 150;
  cfg.mix = RequestMix::Uniform({0});
  OpenLoopSource src(cluster, cfg, 4);
  src.Start();
  sim.RunUntil(Sec(40));
  EXPECT_NEAR(static_cast<double>(src.requests_issued()) / 40.0, 150, 12);
}

TEST(OpenLoopSource, SetRateAndPauseResume) {
  sim::Simulation sim;
  const auto app = SingleChainApp(microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 5);
  OpenLoopSource::Config cfg;
  cfg.rate = 100;
  cfg.mix = RequestMix::Uniform({0});
  OpenLoopSource src(cluster, cfg, 5);
  src.Start();
  sim.RunUntil(Sec(10));
  const auto phase1 = src.requests_issued();
  src.SetRate(0);  // pause
  sim.RunUntil(Sec(20));
  EXPECT_EQ(src.requests_issued(), phase1);
  src.SetRate(400);  // resume at higher rate
  sim.RunUntil(Sec(30));
  const auto phase3 = src.requests_issued() - phase1;
  EXPECT_NEAR(static_cast<double>(phase3) / 10.0, 400, 40);
  src.Stop();
  const auto stopped = src.requests_issued();
  sim.RunUntil(Sec(40));
  EXPECT_EQ(src.requests_issued(), stopped);
  EXPECT_THROW(src.SetRate(-1), std::invalid_argument);
}

TEST(RateTrace, ApplySchedulesBreakpoints) {
  sim::Simulation sim;
  const auto app = SingleChainApp(microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 6);
  OpenLoopSource::Config cfg;
  cfg.rate = 50;
  cfg.mix = RequestMix::Uniform({0});
  OpenLoopSource src(cluster, cfg, 6);
  RateTrace trace;
  trace.points = {{Sec(5), 300.0}, {Sec(10), 20.0}};
  trace.Apply(sim, src);
  src.Start();
  sim.RunUntil(Sec(7));
  EXPECT_DOUBLE_EQ(src.rate(), 300.0);
  sim.RunUntil(Sec(12));
  EXPECT_DOUBLE_EQ(src.rate(), 20.0);
  EXPECT_DOUBLE_EQ(trace.RateAt(Sec(1)), 0.0);
  EXPECT_DOUBLE_EQ(trace.RateAt(Sec(6)), 300.0);
  EXPECT_DOUBLE_EQ(trace.RateAt(Sec(100)), 20.0);
  EXPECT_DOUBLE_EQ(trace.MaxRate(), 300.0);
  EXPECT_DOUBLE_EQ(trace.MinRate(), 20.0);
}

TEST(LargeVariationTrace, StaysWithinBoundsAndVaries) {
  const RateTrace trace =
      MakeLargeVariationTrace(0, Sec(300), Sec(5), 1000, 6000, 42);
  ASSERT_EQ(trace.points.size(), 60u);
  for (const auto& p : trace.points) {
    EXPECT_GE(p.rate, 1000.0);
    EXPECT_LE(p.rate, 6000.0);
  }
  // It should actually swing across a wide range.
  EXPECT_GT(trace.MaxRate(), 4500.0);
  EXPECT_LT(trace.MinRate(), 2000.0);
  // Deterministic per seed.
  const RateTrace again =
      MakeLargeVariationTrace(0, Sec(300), Sec(5), 1000, 6000, 42);
  EXPECT_EQ(trace.points.size(), again.points.size());
  for (std::size_t i = 0; i < trace.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace.points[i].rate, again.points[i].rate);
  }
  EXPECT_THROW(MakeLargeVariationTrace(0, Sec(10), 0, 1, 2, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace grunt::workload
