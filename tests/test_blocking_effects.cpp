// The paper's two blocking effects (Sec II-A / Fig 5) must EMERGE from the
// slot-holding RPC semantics — nothing in the simulator encodes them
// directly. These tests drive bursts and probes exactly like the attacker
// does and assert the blocking behaviour from the outside.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "fixtures.h"
#include "microsvc/cluster.h"

namespace grunt::microsvc {
namespace {

/// Submits `n` heavy requests of `type` at `at`, then one light probe of
/// `probe_type` at `probe_at`; returns the probe's response time.
SimDuration ProbeUnderBurst(const Application& app, RequestTypeId burst_type,
                            int n, SimTime at, RequestTypeId probe_type,
                            SimTime probe_at) {
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  sim.At(at, [&] {
    for (int i = 0; i < n; ++i) {
      cluster.Submit(burst_type, RequestClass::kAttack, /*heavy=*/true, 7);
    }
  });
  SimDuration probe_rt = -1;
  sim.At(probe_at, [&] {
    cluster.Submit(probe_type, RequestClass::kProbe, false, 8,
                   [&](const CompletionRecord& r) { probe_rt = r.end - r.start; });
  });
  sim.RunAll();
  EXPECT_GE(probe_rt, 0);
  return probe_rt;
}

SimDuration BaselineRt(const Application& app, RequestTypeId type) {
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  SimDuration rt = -1;
  cluster.Submit(type, RequestClass::kProbe, false, 8,
                 [&](const CompletionRecord& r) { rt = r.end - r.start; });
  sim.RunAll();
  return rt;
}

TEST(BlockingEffects, CrossTierOverflowBlocksSiblingPath) {
  const Application app = grunt::testing::TwoPathParallelApp();
  const SimDuration base = BaselineRt(app, 1);
  // 60 heavy type-a requests >> um's 12 slots: overflow reaches the shared
  // upstream service and type-b probes stall there.
  const SimDuration blocked = ProbeUnderBurst(app, 0, 60, 0, 1, Ms(50));
  EXPECT_GT(blocked, 5 * base);
}

TEST(BlockingEffects, SmallBurstDoesNotOverflowSharedUpstream) {
  const Application app = grunt::testing::TwoPathParallelApp();
  const SimDuration base = BaselineRt(app, 1);
  // 6 requests < 12 slots: no overflow, sibling path unaffected.
  const SimDuration probe = ProbeUnderBurst(app, 0, 6, 0, 1, Ms(10));
  EXPECT_LT(probe, 2 * base);
}

TEST(BlockingEffects, ExecutionBlockingNeedsNoSlotExhaustion) {
  const Application app = grunt::testing::SequentialApp();
  const SimDuration base = BaselineRt(app, 1);
  // 8 heavy "up" requests fit inside um's 12 slots but saturate its CPU
  // (8 x 32 ms over 4 cores): the "down" probe queues on the shared UM's
  // CPU directly — execution blocking (Definition II, Fig 5a).
  const SimDuration blocked = ProbeUnderBurst(app, 0, 8, 0, 1, Ms(5));
  EXPECT_GT(blocked, 3 * base);
}

TEST(BlockingEffects, DisjointPathsDoNotInterfere) {
  const Application app = grunt::testing::DisjointApp();
  const SimDuration base = BaselineRt(app, 1);
  const SimDuration probe = ProbeUnderBurst(app, 0, 60, 0, 1, Ms(50));
  EXPECT_LT(probe, 2 * base);
}

TEST(BlockingEffects, OverflowVisibleInUpstreamQueueMetrics) {
  const Application app = grunt::testing::TwoPathParallelApp();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  for (int i = 0; i < 60; ++i) {
    cluster.Submit(0, RequestClass::kAttack, true, 7);
  }
  sim.RunUntil(Ms(60));
  const auto um = *app.FindService("um");
  const auto gw = *app.FindService("gw");
  auto& um_svc = cluster.service(um);
  EXPECT_EQ(um_svc.slots_in_use(), 12);  // slot pool exhausted
  EXPECT_GT(um_svc.slots_waiting(), 0);  // cross-tier queue at the UM
  EXPECT_LT(cluster.service(gw).slots_in_use(), 100);  // gateway unaffected
  sim.RunAll();
  EXPECT_EQ(um_svc.slots_in_use(), 0);
  EXPECT_EQ(cluster.completed_count(), 60u);
}

/// Property: the burst size needed to block the sibling path tracks the
/// shared UM's slot-pool size.
class OverflowThresholdTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(OverflowThresholdTest, ThresholdTracksUmThreads) {
  const std::int32_t threads = GetParam();
  const Application app =
      grunt::testing::TwoPathParallelApp(ServiceTimeDist::kDeterministic,
                                         threads);
  const SimDuration base = BaselineRt(app, 1);
  const SimDuration below =
      ProbeUnderBurst(app, 0, threads / 2, 0, 1, Ms(10));
  const SimDuration above =
      ProbeUnderBurst(app, 0, threads + 30, 0, 1, Ms(50));
  EXPECT_LT(below, 2 * base) << "threads=" << threads;
  EXPECT_GT(above, 4 * base) << "threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(SlotPools, OverflowThresholdTest,
                         ::testing::Values(8, 16, 24, 40));

/// Property: with everything deterministic, blocked probe RT grows
/// monotonically (within tolerance) with burst size once over the slot pool.
class BurstSizeDamageTest : public ::testing::TestWithParam<int> {};

TEST_P(BurstSizeDamageTest, MoreVolumeMoreDamage) {
  const Application app = grunt::testing::TwoPathParallelApp();
  const int n = GetParam();
  const SimDuration smaller = ProbeUnderBurst(app, 0, n, 0, 1, Ms(50));
  const SimDuration larger = ProbeUnderBurst(app, 0, n * 2, 0, 1, Ms(50));
  EXPECT_GT(larger, smaller);
}

INSTANTIATE_TEST_SUITE_P(Volumes, BurstSizeDamageTest,
                         ::testing::Values(20, 40, 80));

// --- fault-tolerance interactions -----------------------------------------
// The RPC policy layer changes the SHAPE of the damage, not the existence of
// the blocking effects: client retries multiply the attack volume hitting
// the bottleneck (retry storm), while load shedding trades unbounded
// queueing delay for explicit rejections.

TEST(BlockingEffects, RetryStormAmplifiesBurstDamage) {
  // Same burst, same probe; the only difference is a 100 ms timeout with
  // 2 retries on the um -> worker-a edge. Timed-out attempts keep running
  // as orphans while each retry injects a fresh arrival, so the bottleneck
  // executes a multiple of the attacker's nominal volume and a late legit
  // request on the same path degrades further.
  auto build = [](bool retries) {
    Application::Builder b;
    b.SetName("retrystorm").SetServiceTimeDist(
        ServiceTimeDist::kDeterministic).SetNetLatency(Us(200));
    const ServiceId gw = b.AddService(grunt::testing::Svc("gw", 2048, 8));
    const ServiceId um = b.AddService(grunt::testing::Svc("um", 12, 4));
    const ServiceId wa = b.AddService(grunt::testing::Svc("worker-a", 64, 2));
    const ServiceId leaf = b.AddService(grunt::testing::Svc("leaf", 128, 2));
    auto t = grunt::testing::Type("a", {{gw, Us(200), 0},
                                        {um, Us(1000), Us(400)},
                                        {wa, Us(9000), Us(500)},
                                        {leaf, Us(400), 0}});
    if (retries) {
      // Tighter than worker-a's worst-case queueing under the burst, so
      // attack attempts time out and re-inject while their orphans keep
      // burning worker-a CPU.
      RpcPolicy p;
      p.timeout = Ms(40);
      p.max_retries = 2;
      p.backoff_base = Ms(10);
      t.hops[2].rpc = p;
    }
    b.AddRequestType(t);
    // The probe client has no fault-tolerance config: it measures the pure
    // queueing delay the storm creates on the shared path.
    b.AddRequestType(grunt::testing::Type("probe", {{gw, Us(200), 0},
                                                    {um, Us(1000), Us(400)},
                                                    {wa, Us(9000), Us(500)},
                                                    {leaf, Us(400), 0}}));
    return std::move(b).Build();
  };
  auto run = [&](bool retries) {
    const Application app = build(retries);
    sim::Simulation sim;
    Cluster cluster(sim, app, 1);
    sim.At(0, [&] {
      for (int i = 0; i < 60; ++i) {
        cluster.Submit(0, RequestClass::kAttack, /*heavy=*/true, 7);
      }
    });
    SimDuration probe_rt = -1;
    sim.At(Ms(300), [&] {
      cluster.Submit(1, RequestClass::kProbe, false, 8,
                     [&](const CompletionRecord& r) {
                       probe_rt = r.end - r.start;
                     });
    });
    sim.RunAll();
    const auto wa = *app.FindService("worker-a");
    return std::pair<SimDuration, std::int64_t>(
        probe_rt, cluster.service(wa).completed_bursts());
  };
  const auto [plain_rt, plain_bursts] = run(false);
  const auto [storm_rt, storm_bursts] = run(true);
  // Orphans + retries: the bottleneck executed well over the nominal burst.
  EXPECT_GT(storm_bursts, plain_bursts + plain_bursts / 2);
  // And the late legit request on the path is worse off than without any
  // fault tolerance at all.
  EXPECT_GT(storm_rt, plain_rt);
}

TEST(BlockingEffects, LoadSheddingCapsLatencyAtRejectionCost) {
  // 40 simultaneous arrivals on a 10 ms / 2-core service. Unbounded: all
  // admitted, worst RT ~200 ms. Bounded queue (8 slots + 4 waiters): 28 are
  // rejected instantly and every ADMITTED request finishes fast — shedding
  // converts tail latency into an explicit, observable rejection rate.
  auto run = [](std::int32_t max_queue) {
    Application::Builder b;
    b.SetName("shed").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
        .SetNetLatency(Us(200));
    auto spec = grunt::testing::Svc("s", 8, 2);
    spec.max_queue_per_replica = max_queue;
    const ServiceId s = b.AddService(spec);
    b.AddRequestType(grunt::testing::Type("t", {{s, Ms(10), 0}}));
    const Application app = std::move(b).Build();
    sim::Simulation sim;
    Cluster cluster(sim, app, 1);
    SimDuration worst_ok = 0;
    sim.At(0, [&] {
      for (int i = 0; i < 40; ++i) {
        cluster.Submit(0, RequestClass::kLegit, false, 1,
                       [&](const CompletionRecord& r) {
                         if (r.outcome == Outcome::kOk) {
                           worst_ok = std::max(worst_ok, r.end - r.start);
                         }
                       });
      }
    });
    sim.RunAll();
    return std::pair<SimDuration, std::uint64_t>(
        worst_ok, cluster.outcome_count(Outcome::kRejected));
  };
  const auto [unbounded_worst, unbounded_rejected] = run(0);
  const auto [shed_worst, shed_rejected] = run(4);
  EXPECT_EQ(unbounded_rejected, 0u);
  EXPECT_EQ(unbounded_worst, 40 / 2 * Ms(10) + Us(400));  // FIFO tail
  EXPECT_EQ(shed_rejected, 28u);  // 40 - 8 slots - 4 waiters
  EXPECT_EQ(shed_worst, 12 / 2 * Ms(10) + Us(400));
  EXPECT_LT(shed_worst, unbounded_worst / 3);
}

}  // namespace
}  // namespace grunt::microsvc
