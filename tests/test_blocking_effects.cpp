// The paper's two blocking effects (Sec II-A / Fig 5) must EMERGE from the
// slot-holding RPC semantics — nothing in the simulator encodes them
// directly. These tests drive bursts and probes exactly like the attacker
// does and assert the blocking behaviour from the outside.

#include <gtest/gtest.h>

#include "fixtures.h"
#include "microsvc/cluster.h"

namespace grunt::microsvc {
namespace {

/// Submits `n` heavy requests of `type` at `at`, then one light probe of
/// `probe_type` at `probe_at`; returns the probe's response time.
SimDuration ProbeUnderBurst(const Application& app, RequestTypeId burst_type,
                            int n, SimTime at, RequestTypeId probe_type,
                            SimTime probe_at) {
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  sim.At(at, [&] {
    for (int i = 0; i < n; ++i) {
      cluster.Submit(burst_type, RequestClass::kAttack, /*heavy=*/true, 7);
    }
  });
  SimDuration probe_rt = -1;
  sim.At(probe_at, [&] {
    cluster.Submit(probe_type, RequestClass::kProbe, false, 8,
                   [&](const CompletionRecord& r) { probe_rt = r.end - r.start; });
  });
  sim.RunAll();
  EXPECT_GE(probe_rt, 0);
  return probe_rt;
}

SimDuration BaselineRt(const Application& app, RequestTypeId type) {
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  SimDuration rt = -1;
  cluster.Submit(type, RequestClass::kProbe, false, 8,
                 [&](const CompletionRecord& r) { rt = r.end - r.start; });
  sim.RunAll();
  return rt;
}

TEST(BlockingEffects, CrossTierOverflowBlocksSiblingPath) {
  const Application app = grunt::testing::TwoPathParallelApp();
  const SimDuration base = BaselineRt(app, 1);
  // 60 heavy type-a requests >> um's 12 slots: overflow reaches the shared
  // upstream service and type-b probes stall there.
  const SimDuration blocked = ProbeUnderBurst(app, 0, 60, 0, 1, Ms(50));
  EXPECT_GT(blocked, 5 * base);
}

TEST(BlockingEffects, SmallBurstDoesNotOverflowSharedUpstream) {
  const Application app = grunt::testing::TwoPathParallelApp();
  const SimDuration base = BaselineRt(app, 1);
  // 6 requests < 12 slots: no overflow, sibling path unaffected.
  const SimDuration probe = ProbeUnderBurst(app, 0, 6, 0, 1, Ms(10));
  EXPECT_LT(probe, 2 * base);
}

TEST(BlockingEffects, ExecutionBlockingNeedsNoSlotExhaustion) {
  const Application app = grunt::testing::SequentialApp();
  const SimDuration base = BaselineRt(app, 1);
  // 8 heavy "up" requests fit inside um's 12 slots but saturate its CPU
  // (8 x 32 ms over 4 cores): the "down" probe queues on the shared UM's
  // CPU directly — execution blocking (Definition II, Fig 5a).
  const SimDuration blocked = ProbeUnderBurst(app, 0, 8, 0, 1, Ms(5));
  EXPECT_GT(blocked, 3 * base);
}

TEST(BlockingEffects, DisjointPathsDoNotInterfere) {
  const Application app = grunt::testing::DisjointApp();
  const SimDuration base = BaselineRt(app, 1);
  const SimDuration probe = ProbeUnderBurst(app, 0, 60, 0, 1, Ms(50));
  EXPECT_LT(probe, 2 * base);
}

TEST(BlockingEffects, OverflowVisibleInUpstreamQueueMetrics) {
  const Application app = grunt::testing::TwoPathParallelApp();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  for (int i = 0; i < 60; ++i) {
    cluster.Submit(0, RequestClass::kAttack, true, 7);
  }
  sim.RunUntil(Ms(60));
  const auto um = *app.FindService("um");
  const auto gw = *app.FindService("gw");
  auto& um_svc = cluster.service(um);
  EXPECT_EQ(um_svc.slots_in_use(), 12);  // slot pool exhausted
  EXPECT_GT(um_svc.slots_waiting(), 0);  // cross-tier queue at the UM
  EXPECT_LT(cluster.service(gw).slots_in_use(), 100);  // gateway unaffected
  sim.RunAll();
  EXPECT_EQ(um_svc.slots_in_use(), 0);
  EXPECT_EQ(cluster.completed_count(), 60u);
}

/// Property: the burst size needed to block the sibling path tracks the
/// shared UM's slot-pool size.
class OverflowThresholdTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(OverflowThresholdTest, ThresholdTracksUmThreads) {
  const std::int32_t threads = GetParam();
  const Application app =
      grunt::testing::TwoPathParallelApp(ServiceTimeDist::kDeterministic,
                                         threads);
  const SimDuration base = BaselineRt(app, 1);
  const SimDuration below =
      ProbeUnderBurst(app, 0, threads / 2, 0, 1, Ms(10));
  const SimDuration above =
      ProbeUnderBurst(app, 0, threads + 30, 0, 1, Ms(50));
  EXPECT_LT(below, 2 * base) << "threads=" << threads;
  EXPECT_GT(above, 4 * base) << "threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(SlotPools, OverflowThresholdTest,
                         ::testing::Values(8, 16, 24, 40));

/// Property: with everything deterministic, blocked probe RT grows
/// monotonically (within tolerance) with burst size once over the slot pool.
class BurstSizeDamageTest : public ::testing::TestWithParam<int> {};

TEST_P(BurstSizeDamageTest, MoreVolumeMoreDamage) {
  const Application app = grunt::testing::TwoPathParallelApp();
  const int n = GetParam();
  const SimDuration smaller = ProbeUnderBurst(app, 0, n, 0, 1, Ms(50));
  const SimDuration larger = ProbeUnderBurst(app, 0, n * 2, 0, 1, Ms(50));
  EXPECT_GT(larger, smaller);
}

INSTANTIATE_TEST_SUITE_P(Volumes, BurstSizeDamageTest,
                         ::testing::Values(20, 40, 80));

}  // namespace
}  // namespace grunt::microsvc
