#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace grunt::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Parse("null").is_null());
  EXPECT_EQ(Parse("true").AsBool(), true);
  EXPECT_EQ(Parse("false").AsBool(), false);
  EXPECT_DOUBLE_EQ(Parse("3.25").AsDouble(), 3.25);
  EXPECT_EQ(Parse("-17").AsInt64(), -17);
  EXPECT_EQ(Parse("1e3").AsInt64(), 1000);
  EXPECT_EQ(Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonParse, Containers) {
  const Value v = Parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.At("a").AsArray().size(), 3u);
  EXPECT_EQ(v.At("a").AsArray()[2].AsInt64(), 3);
  EXPECT_EQ(v.At("b").At("c").AsBool(), true);
  EXPECT_EQ(v.Find("nope"), nullptr);
  EXPECT_THROW(v.At("nope"), Error);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Parse(R"("a\"b\\c\/d\n\t")").AsString(), "a\"b\\c/d\n\t");
  EXPECT_EQ(Parse(R"("Aé")").AsString(), "A\xc3\xa9");
  EXPECT_THROW(Parse(R"("\ud800")"), Error);  // lone surrogate
  EXPECT_THROW(Parse(R"("\q")"), Error);
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    Parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "expected duplicate-key error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key"),
              std::string::npos);
  }
  try {
    Parse("{\n  \"a\": tru\n}");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParse, RejectsTrailingGarbageAndBadDocs) {
  EXPECT_THROW(Parse("1 2"), Error);
  EXPECT_THROW(Parse(""), Error);
  EXPECT_THROW(Parse("{"), Error);
  EXPECT_THROW(Parse("[1,]"), Error);
  EXPECT_THROW(Parse("{\"a\" 1}"), Error);
  EXPECT_THROW(Parse("nul"), Error);
}

TEST(JsonValue, TypedAccessorMismatchThrows) {
  const Value v = Parse("[1]");
  EXPECT_THROW(v.AsBool(), Error);
  EXPECT_THROW(v.AsString(), Error);
  EXPECT_THROW(v.AsObject(), Error);
  EXPECT_THROW(Parse("1.5").AsInt64(), Error);  // not integral
}

TEST(JsonValue, SetPreservesInsertionOrder) {
  Value v{Object{}};
  v.Set("z", 1);
  v.Set("a", 2);
  v.Set("z", 3);  // replace keeps position
  EXPECT_EQ(v.Dump(0), R"({"z":3,"a":2})");
}

TEST(JsonDump, IntegersPrintWithoutFraction) {
  Value v{Object{}};
  v.Set("i", std::int64_t{42});
  v.Set("big", std::int64_t{1'000'000'000'000});
  v.Set("d", 0.5);
  EXPECT_EQ(v.Dump(0), R"({"i":42,"big":1000000000000,"d":0.5})");
}

TEST(JsonDump, RoundTripIsByteStable) {
  const std::string text =
      R"({"name":"x","arr":[1,2.5,"s",true,null],"nested":{"k":-3}})";
  const Value once = Parse(text);
  const std::string dump1 = once.Dump(2);
  const std::string dump2 = Parse(dump1).Dump(2);
  EXPECT_EQ(dump1, dump2);
  EXPECT_EQ(once, Parse(dump2));
}

TEST(JsonDump, EscapesControlCharacters) {
  const Value v{std::string("a\"b\\c\n\x01")};
  const std::string dumped = v.Dump(0);
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\n\\u0001\"");
  EXPECT_EQ(Parse(dumped).AsString(), v.AsString());
}

TEST(JsonDump, DoubleRoundTripsExactly) {
  const double vals[] = {0.1, 1.0 / 3.0, 1e-9, 123456.789,
                         std::numeric_limits<double>::max()};
  for (double d : vals) {
    EXPECT_EQ(Parse(Value{d}.Dump(0)).AsDouble(), d);
  }
}

TEST(JsonFile, ParseFileErrorsNamePath) {
  try {
    ParseFile("/nonexistent/spec.json");
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/spec.json"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace grunt::json
