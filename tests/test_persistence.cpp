// Tests of the paper's CENTRAL mechanism (Sec III-B, Eqs 6-9): persistent
// blocking effects. A single burst's damage decays once its backlog drains;
// alternating bursts across the group's paths at intervals ~ t_damage keep
// a standing queue at the shared upstream service, so every legitimate
// request in the group sees at least t_min of delay for the whole attack.

#include <gtest/gtest.h>

#include "fixtures.h"
#include "microsvc/cluster.h"
#include "util/stats.h"
#include "workload/workload.h"

namespace grunt {
namespace {

using grunt::testing::TwoPathParallelApp;

struct Rig {
  Rig() : app(TwoPathParallelApp(microsvc::ServiceTimeDist::kExponential)),
          cluster(sim, app, 11) {
    workload::OpenLoopSource::Config wl;
    wl.rate = 120;
    wl.mix = workload::RequestMix::Uniform({0, 1});
    source = std::make_unique<workload::OpenLoopSource>(cluster, wl, 11);
    source->Start();
  }

  /// Mean legit RT (ms) of completions inside [from, to).
  double LegitRt(SimTime from, SimTime to) const {
    Samples rt;
    for (const auto& rec : cluster.completions()) {
      if (rec.cls != microsvc::RequestClass::kLegit) continue;
      if (rec.end < from || rec.end >= to) continue;
      rt.Add(ToMillis(rec.end - rec.start));
    }
    return rt.mean();
  }

  void Volley(microsvc::RequestTypeId type, int n) {
    for (int i = 0; i < n; ++i) {
      cluster.Submit(type, microsvc::RequestClass::kAttack, true,
                     900'000 + static_cast<std::uint64_t>(i));
    }
  }

  sim::Simulation sim;
  microsvc::Application app;
  microsvc::Cluster cluster;
  std::unique_ptr<workload::OpenLoopSource> source;
};

TEST(PersistentBlocking, SingleBurstDamageDecays) {
  Rig rig;
  rig.sim.At(Sec(5), [&] { rig.Volley(0, 40); });
  rig.sim.RunUntil(Sec(12));
  const double during = rig.LegitRt(Sec(5), SecF(5.8));
  const double after = rig.LegitRt(Sec(8), Sec(12));
  const double baseline = rig.LegitRt(Sec(1), Sec(5));
  EXPECT_GT(during, 3 * baseline);   // the blocking effect was real...
  EXPECT_LT(after, 2 * baseline);    // ...and fully decayed (Sec III-B)
}

TEST(PersistentBlocking, AlternatingBurstsSustainDamage) {
  // Eq (9): fire the next burst (on the OTHER path) one damage-interval
  // after the previous one; the group's RT should stay elevated the whole
  // time, not sawtooth back to baseline.
  Rig rig;
  int path = 0;
  for (SimTime t = Sec(5); t < Sec(25); t += Ms(300)) {
    rig.sim.At(t, [&rig, &path] {
      rig.Volley(static_cast<microsvc::RequestTypeId>(path % 2), 35);
      ++path;
    });
  }
  rig.sim.RunUntil(Sec(30));
  const double baseline = rig.LegitRt(Sec(1), Sec(5));
  // Every 2-second slice of the attack window stays degraded.
  for (SimTime t = Sec(7); t < Sec(24); t += Sec(2)) {
    EXPECT_GT(rig.LegitRt(t, t + Sec(2)), 4 * baseline)
        << "window at " << ToSeconds(t) << "s";
  }
}

TEST(PersistentBlocking, GapsLetTheQueueDrain) {
  // Same volume, but with intervals much longer than t_damage: damage
  // windows separate and the average stays far below the sustained case.
  auto run = [&](SimDuration interval) {
    Rig rig;
    int path = 0;
    for (SimTime t = Sec(5); t < Sec(25); t += interval) {
      rig.sim.At(t, [&rig, &path] {
        rig.Volley(static_cast<microsvc::RequestTypeId>(path % 2), 35);
        ++path;
      });
    }
    rig.sim.RunUntil(Sec(30));
    return rig.LegitRt(Sec(6), Sec(25));
  };
  const double tight = run(Ms(300));
  const double sparse = run(Sec(3));
  EXPECT_GT(tight, 2.5 * sparse);
}

TEST(PersistentBlocking, AlternationOutperformsSamePathAtEqualVolume) {
  // Hammering one path with the same total volume keeps the OTHER path's
  // users mostly unharmed between that path's own millibottlenecks, and
  // stretches the per-service millibottleneck (stealth loss). Alternation
  // spreads the saturation while keeping the shared-UM queue standing.
  auto run = [&](bool alternate) {
    Rig rig;
    int path = 0;
    for (SimTime t = Sec(5); t < Sec(25); t += Ms(300)) {
      rig.sim.At(t, [&rig, &path, alternate] {
        rig.Volley(alternate
                       ? static_cast<microsvc::RequestTypeId>(path % 2)
                       : 0,
                   35);
        ++path;
      });
    }
    rig.sim.RunUntil(Sec(30));
    // RT of the path-1 users only (the "other" path under same-path mode).
    Samples rt;
    for (const auto& rec : rig.cluster.completions()) {
      if (rec.cls != microsvc::RequestClass::kLegit || rec.type != 1) {
        continue;
      }
      if (rec.end < Sec(6) || rec.end >= Sec(25)) continue;
      rt.Add(ToMillis(rec.end - rec.start));
    }
    return rt.mean();
  };
  const double alternating = run(true);
  const double fixed = run(false);
  // Alternation hurts the sibling path at least as much; the margin comes
  // from the standing queue being refreshed from both sides.
  EXPECT_GT(alternating, fixed * 0.8);

  // And the per-service duty is halved under alternation: measure worker-a
  // saturation fraction.
  auto busy_fraction = [&](bool alternate) {
    Rig rig;
    const auto wa = *rig.app.FindService("worker-a");
    int path = 0;
    for (SimTime t = Sec(5); t < Sec(25); t += Ms(300)) {
      rig.sim.At(t, [&rig, &path, alternate] {
        rig.Volley(alternate
                       ? static_cast<microsvc::RequestTypeId>(path % 2)
                       : 0,
                   35);
        ++path;
      });
    }
    rig.sim.RunUntil(Sec(25));
    const auto busy = rig.cluster.service(wa).CumBusyCoreTime();
    return static_cast<double>(busy) /
           static_cast<double>(rig.cluster.service(wa).cores() * Sec(20));
  };
  EXPECT_LT(busy_fraction(true), busy_fraction(false) * 0.75);
}

}  // namespace
}  // namespace grunt
