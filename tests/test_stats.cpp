#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace grunt {
namespace {

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, MatchesNaiveComputation) {
  RunningStats s;
  const std::vector<double> xs = {3.0, -1.5, 7.25, 0.0, 2.5, 2.5};
  double sum = 0;
  for (double x : xs) {
    s.Add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -1.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RngStream rng(3, "merge");
  RunningStats all, left, right;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.NextNormal(5, 2, -100);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  b.Add(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Samples, PercentileNearestRank) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);   // rank clamps to 1
  EXPECT_DOUBLE_EQ(s.Percentile(1), 1.0);
}

TEST(Samples, PercentileSmallPopulations) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);  // empty
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 42.0);
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(75), 42.0);
}

TEST(Samples, StatsAndInterleavedAdds) {
  Samples s;
  s.Add(5);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5);
  s.Add(1);  // invalidates cached sort
  EXPECT_DOUBLE_EQ(s.Percentile(50), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.Clear();
  EXPECT_TRUE(s.empty());
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0, 10, 5);
  h.Add(-100);  // clamps to first bucket
  h.Add(0.5);
  h.Add(3.0);
  h.Add(9.99);
  h.Add(50);  // clamps to last bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(1), 4.0);
}

TEST(Histogram, RejectsDegenerateRanges) {
  EXPECT_THROW(Histogram(0, 0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace grunt
