// FaultInjector: crash/restart, slow-replica and network-spike faults, the
// determinism of the random crash schedule, and the no-leak guarantees of
// the crash path (slots and cores all return to zero).

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.h"
#include "fixtures.h"
#include "microsvc/cluster.h"

namespace grunt::fault {
namespace {

using grunt::testing::Svc;
using grunt::testing::Type;
using microsvc::Application;
using microsvc::Cluster;
using microsvc::CompletionRecord;
using microsvc::Outcome;
using microsvc::RequestClass;
using microsvc::ServiceId;

/// One service, one hop, deterministic 10 ms demand, net 200 us.
Application OneSvcApp(std::int32_t threads = 4, std::int32_t cores = 4) {
  Application::Builder b;
  b.SetName("one").SetServiceTimeDist(microsvc::ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId s = b.AddService(Svc("s", threads, cores));
  b.AddRequestType(Type("t", {{s, Ms(10), 0}}));
  return std::move(b).Build();
}

TEST(FaultInjector, CrashKillsRunningBurstsAndFailsTheirRequests) {
  const Application app = OneSvcApp();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  FaultInjector inj(sim, cluster, 1);
  std::vector<CompletionRecord> recs;
  for (int i = 0; i < 2; ++i) {
    cluster.Submit(0, RequestClass::kLegit, false, 1,
                   [&](const CompletionRecord& r) { recs.push_back(r); });
  }
  inj.ScheduleCrash(0, Ms(5));  // single replica: kills everything in flight
  sim.RunAll();
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& r : recs) {
    EXPECT_EQ(r.outcome, Outcome::kFailed);
    EXPECT_EQ(r.end, Ms(5) + Us(200));  // killed at 5 ms + error reply net
  }
  auto& svc = cluster.service(0);
  EXPECT_EQ(svc.replicas(), 0);
  EXPECT_EQ(svc.crash_count(), 1);
  EXPECT_EQ(svc.killed_bursts(), 2);
  EXPECT_EQ(svc.completed_bursts(), 0);
  EXPECT_EQ(svc.slots_in_use(), 0);
  EXPECT_EQ(svc.cpu_busy(), 0);
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(inj.log()[0].at, Ms(5));
  EXPECT_TRUE(inj.log()[0].applied);
}

TEST(FaultInjector, RestartRestoresCapacityAndService) {
  const Application app = OneSvcApp();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  FaultInjector inj(sim, cluster, 1);
  inj.ScheduleCrash(0, Ms(5), /*downtime=*/Ms(10));
  CompletionRecord rec;
  sim.At(Ms(20), [&] {
    cluster.Submit(0, RequestClass::kLegit, false, 1,
                   [&](const CompletionRecord& r) { rec = r; });
  });
  sim.RunAll();
  EXPECT_EQ(cluster.service(0).replicas(), 1);
  EXPECT_EQ(rec.outcome, Outcome::kOk);
  EXPECT_EQ(rec.end, Ms(30) + Us(400));  // 20 + net .2 + 10 cpu + net .2
  ASSERT_EQ(inj.log().size(), 2u);
  EXPECT_EQ(inj.log()[1].kind, FaultKind::kRestart);
  EXPECT_EQ(inj.log()[1].at, Ms(15));
}

TEST(FaultInjector, CrashAtZeroReplicasIsLoggedAsNotApplied) {
  const Application app = OneSvcApp();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  FaultInjector inj(sim, cluster, 1);
  inj.ScheduleCrash(0, Ms(1));
  inj.ScheduleCrash(0, Ms(2));  // already at 0 replicas
  sim.RunAll();
  ASSERT_EQ(inj.log().size(), 2u);
  EXPECT_TRUE(inj.log()[0].applied);
  EXPECT_FALSE(inj.log()[1].applied);
  EXPECT_EQ(cluster.service(0).crash_count(), 1);
}

TEST(FaultInjector, CrashOnMultiReplicaServiceKillsProportionalShare) {
  // 3 replicas, 6 running bursts: one crash kills ceil(6/3) = 2 (oldest
  // first) and leaves the other 4 running.
  Application::Builder b;
  b.SetName("multi")
      .SetServiceTimeDist(microsvc::ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  auto spec = Svc("s", 2, 2);
  spec.initial_replicas = 3;
  spec.max_replicas = 8;
  const ServiceId s = b.AddService(spec);
  b.AddRequestType(Type("t", {{s, Ms(10), 0}}));
  const Application app = std::move(b).Build();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  FaultInjector inj(sim, cluster, 1);
  std::vector<Outcome> outcomes;
  for (int i = 0; i < 6; ++i) {
    cluster.Submit(0, RequestClass::kLegit, false, 1,
                   [&](const CompletionRecord& r) {
                     outcomes.push_back(r.outcome);
                   });
  }
  inj.ScheduleCrash(0, Ms(5));
  sim.RunAll();
  EXPECT_EQ(cluster.service(0).replicas(), 2);
  EXPECT_EQ(cluster.service(0).killed_bursts(), 2);
  EXPECT_EQ(cluster.outcome_count(Outcome::kFailed), 2u);
  EXPECT_EQ(cluster.ok_count(), 4u);
  ASSERT_EQ(outcomes.size(), 6u);
}

TEST(FaultInjector, CrashMidChainReleasesUpstreamSlots) {
  // Two-hop chain; the downstream service crashes while the upstream hop
  // is blocked on it holding a slot. The failure propagates up, both slots
  // come back, and the request fails exactly once.
  Application::Builder b;
  b.SetName("chain")
      .SetServiceTimeDist(microsvc::ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId s0 = b.AddService(Svc("s0", 8, 2));
  const ServiceId s1 = b.AddService(Svc("s1", 8, 2));
  b.AddRequestType(Type("t", {{s0, Ms(1), Ms(1)}, {s1, Ms(50), 0}}));
  const Application app = std::move(b).Build();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  FaultInjector inj(sim, cluster, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  inj.ScheduleCrash(1, Ms(10));
  sim.RunAll();
  EXPECT_EQ(rec.outcome, Outcome::kFailed);
  // Killed at 10 ms; error reply to s0 (0.2), slot released, skip post-CPU,
  // error reply to the client (0.2).
  EXPECT_EQ(rec.end, Ms(10) + Us(400));
  EXPECT_EQ(cluster.service(s0).slots_in_use(), 0);
  EXPECT_EQ(cluster.service(s1).slots_in_use(), 0);
  EXPECT_EQ(cluster.in_flight(), 0u);
}

TEST(FaultInjector, SlowFaultScalesDemandForItsWindowOnly) {
  const Application app = OneSvcApp();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  FaultInjector inj(sim, cluster, 1);
  inj.ScheduleSlow(0, Ms(1), /*factor=*/3.0, /*duration=*/Ms(50));
  std::vector<CompletionRecord> recs;
  auto submit_at = [&](SimTime at) {
    sim.At(at, [&] {
      cluster.Submit(0, RequestClass::kLegit, false, 1,
                     [&](const CompletionRecord& r) { recs.push_back(r); });
    });
  };
  submit_at(Ms(2));    // inside the window: 30 ms burst
  submit_at(Ms(100));  // after the window: 10 ms again
  sim.RunAll();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].end - recs[0].start, Ms(30) + Us(400));
  EXPECT_EQ(recs[1].end - recs[1].start, Ms(10) + Us(400));
  EXPECT_DOUBLE_EQ(cluster.service(0).demand_factor(), 1.0);
  ASSERT_EQ(inj.log().size(), 2u);
  EXPECT_EQ(inj.log()[0].kind, FaultKind::kSlowStart);
  EXPECT_EQ(inj.log()[1].kind, FaultKind::kSlowEnd);
}

TEST(FaultInjector, NetSpikeAddsLatencyForItsWindowOnly) {
  const Application app = OneSvcApp();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  FaultInjector inj(sim, cluster, 1);
  inj.ScheduleNetSpike(Ms(1), Us(800), Ms(50));
  std::vector<CompletionRecord> recs;
  auto submit_at = [&](SimTime at) {
    sim.At(at, [&] {
      cluster.Submit(0, RequestClass::kLegit, false, 1,
                     [&](const CompletionRecord& r) { recs.push_back(r); });
    });
  };
  submit_at(Ms(2));    // both messages pay 1 ms instead of 0.2 ms
  submit_at(Ms(100));  // spike over
  sim.RunAll();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].end - recs[0].start, Ms(10) + Us(2000));
  EXPECT_EQ(recs[1].end - recs[1].start, Ms(10) + Us(400));
  EXPECT_EQ(cluster.extra_net_latency(), 0);
}

TEST(FaultInjector, RandomCrashScheduleIsDeterministicPerSeed) {
  const Application app = grunt::testing::TwoPathParallelApp();
  auto run = [&](std::uint64_t seed) {
    sim::Simulation sim;
    Cluster cluster(sim, app, 1);
    FaultInjector inj(sim, cluster, seed);
    inj.ScheduleRandomCrashes(0, Sec(10), Ms(400), Ms(100));
    sim.RunAll();
    std::vector<std::pair<SimTime, microsvc::ServiceId>> crashes;
    for (const auto& e : inj.log()) {
      if (e.kind == FaultKind::kCrash) crashes.emplace_back(e.at, e.service);
    }
    return crashes;
  };
  const auto a1 = run(7);
  const auto a2 = run(7);
  const auto b1 = run(8);
  EXPECT_FALSE(a1.empty());
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b1);
}

TEST(FaultInjector, CrashRestartChurnLeaksNothing) {
  // Sustained load through a service that crashes and restarts repeatedly:
  // every request terminates exactly once and all resources return to zero.
  const Application app = OneSvcApp(/*threads=*/2, /*cores=*/2);
  sim::Simulation sim;
  Cluster cluster(sim, app, 5);
  FaultInjector inj(sim, cluster, 5);
  for (int i = 0; i < 100; ++i) {
    sim.At(Ms(2) * i, [&] {
      cluster.Submit(0, RequestClass::kLegit, false, 1);
    });
  }
  for (int k = 0; k < 4; ++k) {
    inj.ScheduleCrash(0, Ms(15) + Ms(40) * k, /*downtime=*/Ms(20));
  }
  sim.RunAll();
  EXPECT_EQ(cluster.completed_count(), 100u);
  EXPECT_EQ(cluster.in_flight(), 0u);
  EXPECT_GT(cluster.outcome_count(Outcome::kFailed), 0u);
  auto& svc = cluster.service(0);
  EXPECT_EQ(svc.replicas(), 1);
  EXPECT_EQ(svc.slots_in_use(), 0);
  EXPECT_EQ(svc.slots_waiting(), 0);
  EXPECT_EQ(svc.cpu_busy(), 0);
  EXPECT_EQ(svc.cpu_queue_length(), 0);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

}  // namespace
}  // namespace grunt::fault
