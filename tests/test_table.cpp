#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace grunt {
namespace {

TEST(Table, RejectsEmptyHeaderAndMismatchedRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
  EXPECT_NO_THROW(t.AddRow({"1", "2"}));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, FormattersRenderNumbers) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.14159, 0), "3");
  EXPECT_EQ(Table::Int(-42), "-42");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.AddRow({"long-name-here", "1"});
  t.AddRow({"x", "22"});
  const std::string out = t.ToString();
  // Every data line has the same width (padded to the widest cell).
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_NE(out.find("long-name-here"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(Table, CsvHasNoPadding) {
  Table t({"a", "b"});
  t.AddRow({"1", "two"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,two\n");
}

}  // namespace
}  // namespace grunt
