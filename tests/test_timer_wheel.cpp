#include "sim/timer_wheel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <sstream>
#include <string>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "util/time_types.h"

namespace grunt::sim {
namespace {

// ---------------------------------------------------------------------------
// Differential ordering harness: one randomized schedule script, executed
// three ways — wheel-enabled Simulation, wheel-disabled Simulation, and a
// naive std::priority_queue reference — must produce byte-identical firing
// sequences. The script mixes At/After/Every, in-callback scheduling and
// cancellation, same-time ties, sub-kMinDelay delays (heap path),
// cascade-boundary times and beyond-horizon delays (top-level clamp).
// ---------------------------------------------------------------------------

struct ChildOp {
  SimDuration delay;
  bool timer_class;
  int action;
};

struct Action {
  SimDuration period = 0;  ///< > 0: scheduled via Every
  int max_fires = 1;       ///< periodic actions self-cancel after this many
  std::vector<ChildOp> children;
  std::vector<int> cancels;  ///< cancelled when this action fires
};

struct Root {
  SimTime at;
  bool timer_class;
  int action;
};

struct Script {
  std::vector<Action> actions;
  std::vector<Root> roots;
};

using FireLog = std::vector<std::pair<SimTime, int>>;

/// Runs the script on the real engine. `use_wheel` toggles the timing-wheel
/// fast path; both settings must observe identical behavior.
FireLog RunOnSimulation(const Script& script, bool use_wheel) {
  Simulation sim;
  sim.SetTimerWheelEnabled(use_wheel);
  std::vector<EventHandle> handles(script.actions.size());
  std::vector<int> fires(script.actions.size(), 0);
  FireLog log;

  std::function<void(int)> fire = [&](int a) {
    log.emplace_back(sim.Now(), a);
    const Action& act = script.actions[a];
    const int n = ++fires[a];
    for (int c : act.cancels) handles[static_cast<std::size_t>(c)].Cancel();
    if (n == 1) {  // children are single-schedule; only the first tick spawns
      for (const ChildOp& ch : act.children) {
        const auto cls =
            ch.timer_class ? EventClass::kTimer : EventClass::kSequence;
        const Action& child = script.actions[static_cast<std::size_t>(
            ch.action)];
        handles[static_cast<std::size_t>(ch.action)] =
            child.period > 0
                ? sim.Every(child.period, cls, [&fire, a = ch.action] {
                    fire(a);
                  })
                : sim.After(ch.delay, cls, [&fire, a = ch.action] {
                    fire(a);
                  });
      }
    }
    if (act.period > 0 && n >= act.max_fires) {
      handles[static_cast<std::size_t>(a)].Cancel();
    }
  };

  for (const Root& r : script.roots) {
    const Action& act = script.actions[static_cast<std::size_t>(r.action)];
    const auto cls = r.timer_class ? EventClass::kTimer : EventClass::kSequence;
    if (act.period > 0) {
      handles[static_cast<std::size_t>(r.action)] =
          sim.Every(act.period, cls, [&fire, a = r.action] { fire(a); });
    } else {
      handles[static_cast<std::size_t>(r.action)] =
          sim.At(r.at, cls, [&fire, a = r.action] { fire(a); });
    }
  }
  sim.RunAll();
  return log;
}

/// The reference: a plain (time, seq) priority queue with the same observable
/// semantics — ties fire in scheduling order, Every re-arms after its
/// callback (so in-callback children get earlier sequence numbers), one-shot
/// handles go stale before their callback runs, cancels are idempotent.
FireLog RunOnReference(const Script& script) {
  struct Ev {
    SimTime time;
    std::uint64_t seq;
    int action;
  };
  auto later = [](const Ev& a, const Ev& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  };
  std::priority_queue<Ev, std::vector<Ev>, decltype(later)> queue(later);

  enum class State { kIdle, kPending, kDone };
  std::vector<State> state(script.actions.size(), State::kIdle);
  std::vector<int> fires(script.actions.size(), 0);
  SimTime now = 0;
  std::uint64_t next_seq = 0;
  FireLog log;

  auto schedule = [&](SimTime t, int a) {
    queue.push(Ev{t, next_seq++, a});
    state[static_cast<std::size_t>(a)] = State::kPending;
  };
  auto cancel = [&](int a) {
    if (state[static_cast<std::size_t>(a)] == State::kPending) {
      state[static_cast<std::size_t>(a)] = State::kDone;
    }
  };

  for (const Root& r : script.roots) {
    const Action& act = script.actions[static_cast<std::size_t>(r.action)];
    schedule(act.period > 0 ? act.period : r.at, r.action);
  }
  while (!queue.empty()) {
    const Ev e = queue.top();
    queue.pop();
    const auto a = static_cast<std::size_t>(e.action);
    if (state[a] != State::kPending) continue;
    now = e.time;
    const Action& act = script.actions[a];
    if (act.period == 0) state[a] = State::kDone;  // handle stale pre-callback
    log.emplace_back(now, e.action);
    const int n = ++fires[a];
    for (int c : act.cancels) cancel(c);
    if (n == 1) {
      for (const ChildOp& ch : act.children) {
        const Action& child =
            script.actions[static_cast<std::size_t>(ch.action)];
        schedule(child.period > 0
                     ? now + child.period
                     : now + std::max<SimDuration>(0, ch.delay),
                 ch.action);
      }
    }
    if (act.period > 0 && state[a] == State::kPending) {
      // Cancelled mid-callback means no re-arm (and no sequence number),
      // mirroring the engine's kAuxCancelled check after the callback.
      if (n >= act.max_fires) {
        state[a] = State::kDone;
      } else {
        queue.push(Ev{now + act.period, next_seq++, e.action});
      }
    }
  }
  return log;
}

/// Times that stress the wheel's bucket math: level boundaries +/- 1, exact
/// bucket widths, the sub-kMinDelay heap cutoff, and beyond-horizon values.
SimDuration InterestingDelay(std::mt19937_64& rng) {
  switch (rng() % 8) {
    case 0:
      return static_cast<SimDuration>(rng() % 64);  // below kMinDelay: heap
    case 1:
      return TimerWheel::BucketWidth(1) + static_cast<SimDuration>(rng() % 3) -
             1;
    case 2:
      return TimerWheel::BucketWidth(2) + static_cast<SimDuration>(rng() % 3) -
             1;
    case 3:
      return TimerWheel::Horizon(TimerWheel::kLevels - 1) +
             static_cast<SimDuration>(rng() % Sec(100));  // top-level clamp
    case 4:
      return static_cast<SimDuration>(rng() % 4096);
    default:
      return static_cast<SimDuration>(rng() % Sec(2));
  }
}

Script MakeScript(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  constexpr int kActions = 160;
  constexpr int kRoots = 24;
  Script s;
  s.actions.resize(kActions);

  // Periodic actions: ~1 in 8, with periods spanning wheel levels (some
  // below kMinDelay to keep the Every heap path covered too).
  for (Action& a : s.actions) {
    if (rng() % 8 == 0) {
      static constexpr SimDuration kPeriods[] = {Us(40),   Us(64),  Us(700),
                                                 Ms(5),    Ms(50),  Ms(400),
                                                 Sec(3)};
      a.period = kPeriods[rng() % (sizeof(kPeriods) / sizeof(kPeriods[0]))];
      a.max_fires = 1 + static_cast<int>(rng() % 5);
    }
  }

  // A forest: roots take the first ids, every other action is the child of
  // exactly one earlier action, so nothing is double-scheduled.
  for (int i = 0; i < kRoots; ++i) {
    s.roots.push_back(Root{static_cast<SimTime>(rng() % Ms(40)),
                           rng() % 2 == 0, i});
    if (rng() % 4 == 0 && i > 0) s.roots.back().at = s.roots[i - 1].at;  // tie
  }
  for (int i = kRoots; i < kActions; ++i) {
    const int parent = static_cast<int>(rng() % static_cast<std::uint64_t>(i));
    s.actions[static_cast<std::size_t>(parent)].children.push_back(
        ChildOp{InterestingDelay(rng), rng() % 2 == 0, i});
  }
  // Cancels: any action may cancel any other (stale/idle targets are
  // deliberate no-ops on both engines).
  for (int i = 0; i < kActions; ++i) {
    if (rng() % 3 == 0) {
      s.actions[static_cast<std::size_t>(i)].cancels.push_back(
          static_cast<int>(rng() % kActions));
    }
  }
  return s;
}

std::string FirstDivergence(const FireLog& a, const FireLog& b) {
  std::ostringstream os;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      os << "first divergence at fire " << i << ": (" << a[i].first << ", a"
         << a[i].second << ") vs (" << b[i].first << ", a" << b[i].second
         << ")";
      return os.str();
    }
  }
  os << "common prefix of " << n << " fires; sizes " << a.size() << " vs "
     << b.size();
  return os.str();
}

TEST(TimerWheelDifferential, MatchesHeapAndReferenceOnRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Script script = MakeScript(seed);
    const FireLog wheel = RunOnSimulation(script, /*use_wheel=*/true);
    const FireLog heap = RunOnSimulation(script, /*use_wheel=*/false);
    const FireLog ref = RunOnReference(script);
    EXPECT_EQ(wheel, heap) << "wheel vs heap diverged, seed " << seed << "; "
                           << FirstDivergence(wheel, heap);
    EXPECT_EQ(wheel, ref) << "wheel vs reference diverged, seed " << seed
                          << "; " << FirstDivergence(wheel, ref);
    EXPECT_FALSE(wheel.empty()) << "degenerate script, seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Wheel-specific units.
// ---------------------------------------------------------------------------

TEST(TimerWheel, RoutesByClassAndDelay) {
  Simulation sim;
  int fired = 0;
  sim.After(Ms(1), [&] { ++fired; });   // unclassed, near: heap
  sim.After(Ms(10), [&] { ++fired; });  // unclassed, >= far horizon: wheel
  sim.After(TimerWheel::kMinDelay - 1, EventClass::kTimer,
            [&] { ++fired; });  // too near even for kTimer: heap
  sim.After(TimerWheel::kMinDelay, EventClass::kTimer, [&] { ++fired; });
  sim.After(Ms(10), EventClass::kTimer, [&] { ++fired; });
  EXPECT_EQ(sim.stats().wheel_scheduled, 3u);
  EXPECT_EQ(sim.stats().wheel_occupancy, 3u);
  EXPECT_EQ(sim.pending_events(), 5u);
  sim.RunAll();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.stats().wheel_occupancy, 0u);
  EXPECT_EQ(sim.stats().wheel_to_heap, 3u);
}

TEST(TimerWheel, DisabledEngineNeverUsesWheel) {
  Simulation sim;
  sim.SetTimerWheelEnabled(false);
  int fired = 0;
  sim.After(Ms(10), EventClass::kTimer, [&] { ++fired; });
  EXPECT_EQ(sim.stats().wheel_scheduled, 0u);
  sim.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CancelInBucketNeverTouchesHeap) {
  Simulation sim;
  bool fired = false;
  EventHandle h = sim.After(Ms(100), EventClass::kTimer, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_EQ(sim.pending_events(), 1u);
  h.Cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(sim.pending_events(), 0u);
  const auto st = sim.stats();
  EXPECT_EQ(st.wheel_cancelled, 1u);
  EXPECT_EQ(st.cancelled_popped + st.cancelled_purged, 0u);
  sim.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(TimerWheel, CancelAfterCascadeTakesHeapPath) {
  Simulation sim;
  bool fired = false;
  // Ms(100) lands in level 1 (bucket start 98304 us). Running to 99970 us
  // first cascades that bucket into level 0 (bucket start 99968 us), then
  // flushes the level-0 bucket into the heap — without firing the timer.
  EventHandle h = sim.After(Ms(100), EventClass::kTimer, [&] { fired = true; });
  sim.RunUntil(Us(99970));
  EXPECT_GE(sim.stats().wheel_cascades, 2u);
  EXPECT_EQ(sim.stats().wheel_to_heap, 1u);
  EXPECT_EQ(sim.stats().wheel_occupancy, 0u);
  EXPECT_TRUE(h.pending());
  h.Cancel();  // entry now lives in the heap: the normal lazy-cancel path
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(sim.stats().wheel_cancelled, 0u);
  sim.RunAll();
  EXPECT_FALSE(fired);
}

TEST(TimerWheel, CancelledBucketTombstoneCannotKillRecycledSlot) {
  Simulation sim;
  bool a_fired = false;
  bool b_fired = false;
  EventHandle a = sim.After(Ms(50), EventClass::kTimer, [&] { a_fired = true; });
  a.Cancel();  // frees the slot while the bucket entry still exists
  // Reuses the freed slot with a fresh generation; the stale bucket entry
  // must be dropped at cascade without affecting this event.
  EventHandle b = sim.After(Ms(60), EventClass::kTimer, [&] { b_fired = true; });
  sim.RunAll();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
  EXPECT_EQ(sim.events_fired(), 1u);
  EXPECT_FALSE(b.pending());
}

TEST(TimerWheel, EveryReArmsAcrossWheelLevels) {
  Simulation sim;
  std::vector<SimTime> at;
  // Sec(3) sits in level 2; each re-arm re-files through the wheel.
  EventHandle h = sim.Every(Sec(3), EventClass::kTimer,
                            [&] { at.push_back(sim.Now()); });
  sim.RunUntil(Sec(10));
  EXPECT_EQ(at, (std::vector<SimTime>{Sec(3), Sec(6), Sec(9)}));
  EXPECT_TRUE(h.pending());
  EXPECT_GE(sim.stats().wheel_scheduled, 3u);
  h.Cancel();
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunUntil(Sec(20));
  EXPECT_EQ(at.size(), 3u);
}

TEST(TimerWheel, BeyondHorizonTimersFireAtExactTimes) {
  Simulation sim;
  std::vector<int> order;
  const SimTime far = TimerWheel::Horizon(TimerWheel::kLevels - 1) * 3 + 17;
  sim.At(far + Us(1), EventClass::kTimer, [&] { order.push_back(2); });
  sim.At(far, EventClass::kTimer, [&] { order.push_back(1); });
  sim.At(far + Us(1), EventClass::kTimer, [&] { order.push_back(3); });  // tie
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), far + Us(1));
  EXPECT_GE(sim.stats().wheel_cascades, 3u);  // clamp re-cascades make progress
}

TEST(TimerWheel, StandaloneInsertCascadeRoundTrip) {
  TimerWheel wheel;
  std::vector<TimerWheel::Entry> out;
  // One entry per level plus an overflow entry, inserted out of order.
  const SimTime times[] = {Us(100), Ms(5), Sec(1), Sec(600), Sec(5000)};
  std::uint64_t seq = 0;
  for (int i = 4; i >= 0; --i) {
    wheel.Insert(TimerWheel::Entry{times[i], seq++, static_cast<uint32_t>(i),
                                   1},
                 /*ref=*/0);
  }
  EXPECT_EQ(wheel.entries(), 5u);
  EXPECT_LE(wheel.EarliestBound(), times[0]);
  while (!wheel.empty()) {
    wheel.CascadeEarliest([](const TimerWheel::Entry&) { return true; },
                          [&](const TimerWheel::Entry& e) {
                            out.push_back(e);
                          });
  }
  ASSERT_EQ(out.size(), 5u);
  // Emission happens bucket-by-bucket in bound order, so times arrive
  // non-decreasing; each entry keeps its original payload.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].time, times[i]);
    EXPECT_EQ(out[i].slot, static_cast<std::uint32_t>(i));
  }
}

}  // namespace
}  // namespace grunt::sim
