#include "microsvc/application.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace grunt::microsvc {
namespace {

using testing::Svc;
using testing::Type;

TEST(ApplicationBuilder, BuildsValidTopology) {
  const Application app = grunt::testing::TwoPathParallelApp();
  EXPECT_EQ(app.service_count(), 5u);
  EXPECT_EQ(app.request_type_count(), 2u);
  EXPECT_EQ(app.name(), "two-path-parallel");
  EXPECT_TRUE(app.FindService("um").has_value());
  EXPECT_FALSE(app.FindService("nope").has_value());
  EXPECT_TRUE(app.FindRequestType("a").has_value());
  EXPECT_FALSE(app.FindRequestType("zzz").has_value());
}

TEST(ApplicationBuilder, RejectsDuplicateServiceNames) {
  Application::Builder b;
  b.AddService(Svc("dup", 4, 1));
  b.AddService(Svc("dup", 4, 1));
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, RejectsDanglingServiceReference) {
  Application::Builder b;
  b.AddService(Svc("only", 4, 1));
  b.AddRequestType(Type("t", {{5, Us(100), 0}}));
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, RejectsEmptyDynamicPath) {
  Application::Builder b;
  b.AddService(Svc("s", 4, 1));
  b.AddRequestType(Type("empty", {}));
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, RejectsRepeatedServiceOnPath) {
  Application::Builder b;
  const ServiceId s = b.AddService(Svc("s", 4, 1));
  b.AddRequestType(Type("loop", {{s, Us(100), 0}, {s, Us(100), 0}}));
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, RejectsNegativeDemandAndBadHeavy) {
  {
    Application::Builder b;
    const ServiceId s = b.AddService(Svc("s", 4, 1));
    b.AddRequestType(Type("neg", {{s, -5, 0}}));
    EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
  }
  {
    Application::Builder b;
    const ServiceId s = b.AddService(Svc("s", 4, 1));
    b.AddRequestType(Type("light", {{s, Us(10), 0}}, /*heavy=*/0.5));
    EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
  }
}

TEST(ApplicationBuilder, RejectsInvalidSizing) {
  Application::Builder b;
  ServiceSpec bad = Svc("bad", 0, 1);
  b.AddService(bad);
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, AllowsStaticTypeWithoutHops) {
  Application::Builder b;
  b.AddService(Svc("gw", 4, 1));
  RequestTypeSpec st;
  st.name = "static";
  st.is_static = true;
  b.AddRequestType(st);
  const Application app = std::move(b).Build();
  EXPECT_TRUE(app.PublicDynamicTypes().empty());
}

TEST(ApplicationTopology, PathAndSharedServiceQueries) {
  const Application app = grunt::testing::TwoPathParallelApp();
  const auto a = *app.FindRequestType("a");
  const auto b = *app.FindRequestType("b");
  const auto gw = *app.FindService("gw");
  const auto um = *app.FindService("um");
  const auto wa = *app.FindService("worker-a");
  const auto leaf = *app.FindService("leaf");

  EXPECT_EQ(app.PathServices(a).size(), 4u);
  const auto shared = app.SharedServices(a, b);
  EXPECT_EQ(shared, (std::vector<ServiceId>{gw, um, leaf}));

  EXPECT_EQ(app.HopIndexOf(a, um), 1u);
  EXPECT_FALSE(app.HopIndexOf(b, wa).has_value());

  EXPECT_TRUE(app.IsUpstreamOn(a, gw, wa));
  EXPECT_TRUE(app.IsUpstreamOn(a, um, leaf));
  EXPECT_FALSE(app.IsUpstreamOn(a, leaf, um));
  EXPECT_FALSE(app.IsUpstreamOn(b, wa, leaf));  // wa not on path b

  EXPECT_EQ(app.TypesThrough(um).size(), 2u);
  EXPECT_EQ(app.TypesThrough(wa).size(), 1u);
}

TEST(ApplicationTopology, DisjointPathsShareNothing) {
  Application::Builder b;
  const ServiceId s1 = b.AddService(Svc("s1", 4, 1));
  const ServiceId s2 = b.AddService(Svc("s2", 4, 1));
  const auto ta = b.AddRequestType(Type("a", {{s1, Us(10), 0}}));
  const auto tb = b.AddRequestType(Type("b", {{s2, Us(10), 0}}));
  const Application app = std::move(b).Build();
  EXPECT_TRUE(app.SharedServices(ta, tb).empty());
  EXPECT_EQ(app.PathServices(ta), (std::vector<ServiceId>{s1}));
  EXPECT_EQ(app.PathServices(tb), (std::vector<ServiceId>{s2}));
  // A type always fully shares with itself.
  EXPECT_EQ(app.SharedServices(ta, ta), app.PathServices(ta));
}

TEST(ApplicationTopology, StaticTypeHasEmptyPath) {
  Application::Builder b;
  const ServiceId s = b.AddService(Svc("s", 4, 1));
  const auto dyn = b.AddRequestType(Type("dyn", {{s, Us(10), 0}}));
  RequestTypeSpec st;
  st.name = "static/a.png";
  st.is_static = true;
  const auto stat = b.AddRequestType(st);
  const Application app = std::move(b).Build();
  EXPECT_TRUE(app.PathServices(stat).empty());
  EXPECT_TRUE(app.SharedServices(dyn, stat).empty());
  EXPECT_FALSE(app.HopIndexOf(stat, s).has_value());
}

TEST(ApplicationLookup, IndexedNameLookupsCoverAllEntries) {
  // FindService/FindRequestType are hash-indexed; every registered name must
  // resolve to its own id, and lookups are exact (case-sensitive, no
  // prefixes).
  Application::Builder b;
  std::vector<ServiceId> svcs;
  for (int i = 0; i < 64; ++i) {
    svcs.push_back(b.AddService(Svc("svc-" + std::to_string(i), 4, 1)));
  }
  for (int i = 0; i < 64; ++i) {
    b.AddRequestType(Type("api/t" + std::to_string(i),
                          {{svcs[static_cast<std::size_t>(i)], Us(10), 0}}));
  }
  const Application app = std::move(b).Build();
  for (int i = 0; i < 64; ++i) {
    const auto sid = app.FindService("svc-" + std::to_string(i));
    ASSERT_TRUE(sid.has_value()) << i;
    EXPECT_EQ(app.service(*sid).name, "svc-" + std::to_string(i));
    const auto tid = app.FindRequestType("api/t" + std::to_string(i));
    ASSERT_TRUE(tid.has_value()) << i;
    EXPECT_EQ(app.request_type(*tid).name, "api/t" + std::to_string(i));
  }
  EXPECT_FALSE(app.FindService("svc-64").has_value());
  EXPECT_FALSE(app.FindService("SVC-0").has_value());
  EXPECT_FALSE(app.FindService("svc").has_value());
  EXPECT_FALSE(app.FindRequestType("api/t64").has_value());
  EXPECT_FALSE(app.FindRequestType("").has_value());
}

TEST(ApplicationTopology, PublicDynamicTypesExcludesStatic) {
  Application::Builder b;
  const ServiceId s = b.AddService(Svc("s", 4, 1));
  b.AddRequestType(Type("dyn", {{s, Us(10), 0}}));
  RequestTypeSpec st;
  st.name = "static";
  st.is_static = true;
  b.AddRequestType(st);
  const Application app = std::move(b).Build();
  const auto types = app.PublicDynamicTypes();
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(app.request_type(types[0]).name, "dyn");
}

TEST(ApplicationBuilder, NetLatencyValidation) {
  Application::Builder b;
  EXPECT_THROW(b.SetNetLatency(-1), std::invalid_argument);
}

}  // namespace
}  // namespace grunt::microsvc
