#include "microsvc/application.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace grunt::microsvc {
namespace {

using testing::Svc;
using testing::Type;

TEST(ApplicationBuilder, BuildsValidTopology) {
  const Application app = grunt::testing::TwoPathParallelApp();
  EXPECT_EQ(app.service_count(), 5u);
  EXPECT_EQ(app.request_type_count(), 2u);
  EXPECT_EQ(app.name(), "two-path-parallel");
  EXPECT_TRUE(app.FindService("um").has_value());
  EXPECT_FALSE(app.FindService("nope").has_value());
  EXPECT_TRUE(app.FindRequestType("a").has_value());
  EXPECT_FALSE(app.FindRequestType("zzz").has_value());
}

TEST(ApplicationBuilder, RejectsDuplicateServiceNames) {
  Application::Builder b;
  b.AddService(Svc("dup", 4, 1));
  b.AddService(Svc("dup", 4, 1));
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, RejectsDanglingServiceReference) {
  Application::Builder b;
  b.AddService(Svc("only", 4, 1));
  b.AddRequestType(Type("t", {{5, Us(100), 0}}));
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, RejectsEmptyDynamicPath) {
  Application::Builder b;
  b.AddService(Svc("s", 4, 1));
  b.AddRequestType(Type("empty", {}));
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, RejectsRepeatedServiceOnPath) {
  Application::Builder b;
  const ServiceId s = b.AddService(Svc("s", 4, 1));
  b.AddRequestType(Type("loop", {{s, Us(100), 0}, {s, Us(100), 0}}));
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, RejectsNegativeDemandAndBadHeavy) {
  {
    Application::Builder b;
    const ServiceId s = b.AddService(Svc("s", 4, 1));
    b.AddRequestType(Type("neg", {{s, -5, 0}}));
    EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
  }
  {
    Application::Builder b;
    const ServiceId s = b.AddService(Svc("s", 4, 1));
    b.AddRequestType(Type("light", {{s, Us(10), 0}}, /*heavy=*/0.5));
    EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
  }
}

TEST(ApplicationBuilder, RejectsInvalidSizing) {
  Application::Builder b;
  ServiceSpec bad = Svc("bad", 0, 1);
  b.AddService(bad);
  EXPECT_THROW(std::move(b).Build(), std::invalid_argument);
}

TEST(ApplicationBuilder, AllowsStaticTypeWithoutHops) {
  Application::Builder b;
  b.AddService(Svc("gw", 4, 1));
  RequestTypeSpec st;
  st.name = "static";
  st.is_static = true;
  b.AddRequestType(st);
  const Application app = std::move(b).Build();
  EXPECT_TRUE(app.PublicDynamicTypes().empty());
}

TEST(ApplicationTopology, PathAndSharedServiceQueries) {
  const Application app = grunt::testing::TwoPathParallelApp();
  const auto a = *app.FindRequestType("a");
  const auto b = *app.FindRequestType("b");
  const auto gw = *app.FindService("gw");
  const auto um = *app.FindService("um");
  const auto wa = *app.FindService("worker-a");
  const auto leaf = *app.FindService("leaf");

  EXPECT_EQ(app.PathServices(a).size(), 4u);
  const auto shared = app.SharedServices(a, b);
  EXPECT_EQ(shared, (std::vector<ServiceId>{gw, um, leaf}));

  EXPECT_EQ(app.HopIndexOf(a, um), 1u);
  EXPECT_FALSE(app.HopIndexOf(b, wa).has_value());

  EXPECT_TRUE(app.IsUpstreamOn(a, gw, wa));
  EXPECT_TRUE(app.IsUpstreamOn(a, um, leaf));
  EXPECT_FALSE(app.IsUpstreamOn(a, leaf, um));
  EXPECT_FALSE(app.IsUpstreamOn(b, wa, leaf));  // wa not on path b

  EXPECT_EQ(app.TypesThrough(um).size(), 2u);
  EXPECT_EQ(app.TypesThrough(wa).size(), 1u);
}

TEST(ApplicationTopology, PublicDynamicTypesExcludesStatic) {
  Application::Builder b;
  const ServiceId s = b.AddService(Svc("s", 4, 1));
  b.AddRequestType(Type("dyn", {{s, Us(10), 0}}));
  RequestTypeSpec st;
  st.name = "static";
  st.is_static = true;
  b.AddRequestType(st);
  const Application app = std::move(b).Build();
  const auto types = app.PublicDynamicTypes();
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(app.request_type(types[0]).name, "dyn");
}

TEST(ApplicationBuilder, NetLatencyValidation) {
  Application::Builder b;
  EXPECT_THROW(b.SetNetLatency(-1), std::invalid_argument);
}

}  // namespace
}  // namespace grunt::microsvc
