#include "attack/grunt_attack.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "attack/sim_target_client.h"
#include "cloud/monitor.h"
#include "fixtures.h"
#include "microsvc/cluster.h"
#include "workload/workload.h"

namespace grunt::attack {
namespace {

struct Rig {
  explicit Rig(microsvc::Application application, double total_rate)
      : app(std::move(application)), cluster(sim, app, 13), client(cluster),
        rt(cluster, {Sec(1), "rt"}) {
    workload::OpenLoopSource::Config wl;
    wl.rate = total_rate;
    wl.mix = workload::RequestMix::Uniform(app.PublicDynamicTypes());
    source = std::make_unique<workload::OpenLoopSource>(cluster, wl, 13);
    source->Start();
    rt.Start();
    sim.RunUntil(Sec(10));
  }

  sim::Simulation sim;
  microsvc::Application app;
  microsvc::Cluster cluster;
  SimTargetClient client;
  cloud::ResponseTimeMonitor rt;
  std::unique_ptr<workload::OpenLoopSource> source;
};

TEST(GruntAttack, FullCampaignDamagesParallelGroup) {
  Rig rig(grunt::testing::TwoPathParallelApp(
              microsvc::ServiceTimeDist::kExponential),
          120.0);
  const Samples baseline = rig.rt.LegitWindow(Sec(2), Sec(10));
  ASSERT_GT(baseline.count(), 100u);

  GruntConfig cfg;
  cfg.commander.target_tmin_ms = 400.0;
  GruntAttack grunt(rig.client, cfg);
  bool done = false;
  SimTime attack_start = 0;
  grunt.OnAttackPhaseStart([&](SimTime at) { attack_start = at; });
  grunt.Run(Sec(40), [&](const GruntReport&) { done = true; });
  while (!done && rig.sim.Now() < Sec(2000)) {
    rig.sim.RunUntil(rig.sim.Now() + Sec(5));
  }
  ASSERT_TRUE(done);
  ASSERT_GT(attack_start, 0);

  const GruntReport& report = grunt.report();
  ASSERT_EQ(report.profile.groups.size(), 1u);  // {a, b}
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_GT(report.attack_requests, 100u);
  EXPECT_GT(report.bots_used, 10u);
  EXPECT_EQ(report.bots_used, grunt.bots().bot_count());

  const Samples attacked =
      rig.rt.LegitWindow(attack_start + Sec(5), attack_start + Sec(40));
  ASSERT_GT(attacked.count(), 100u);
  EXPECT_GT(attacked.mean(), 4.0 * baseline.mean());
}

TEST(GruntAttack, RunWithProfileSkipsProfiling) {
  Rig rig(grunt::testing::TwoPathParallelApp(
              microsvc::ServiceTimeDist::kExponential),
          120.0);
  ProfileResult profile;
  profile.urls = rig.client.CrawlUrls();
  profile.candidates = {0, 1};
  profile.baseline_rt_ms = {15.0, 15.0};
  trace::PairwiseDep dep;
  dep.a = 0;
  dep.b = 1;
  dep.type = trace::DepType::kParallel;
  profile.pairs = {dep};
  profile.groups = {{0, 1}};

  GruntConfig cfg;
  cfg.commander.target_tmin_ms = 400.0;
  GruntAttack grunt(rig.client, cfg);
  bool done = false;
  SimTime start = 0;
  grunt.OnAttackPhaseStart([&](SimTime at) { start = at; });
  grunt.RunWithProfile(profile, Sec(20), [&](const GruntReport&) {
    done = true;
  });
  while (!done && rig.sim.Now() < Sec(1000)) {
    rig.sim.RunUntil(rig.sim.Now() + Sec(5));
  }
  ASSERT_TRUE(done);
  // Calibration alone is far faster than a profile sweep.
  EXPECT_LT(start, Sec(120));
  EXPECT_FALSE(grunt.report().groups.empty());
}

TEST(GruntAttack, ReplayFiresFixedScheduleWithoutCalibration) {
  Rig rig(grunt::testing::TwoPathParallelApp(
              microsvc::ServiceTimeDist::kExponential),
          120.0);
  ProfileResult profile;
  profile.urls = rig.client.CrawlUrls();
  profile.candidates = {0, 1};
  profile.baseline_rt_ms = {15.0, 15.0};
  profile.groups = {{0, 1}};

  GroupReplay schedule;
  for (const std::int32_t url : {0, 1}) {
    PathPlan plan;
    plan.url = url;
    plan.baseline_ms = 15.0;
    plan.rate = 2000.0;
    plan.count = 40;
    schedule.plans.push_back(plan);
    schedule.intervals.push_back(Ms(400));
  }
  schedule.paths_used = 2;

  GruntConfig cfg;
  cfg.replay = {schedule};
  GruntAttack grunt(rig.client, cfg);
  bool done = false;
  SimTime start = 0;
  grunt.OnAttackPhaseStart([&](SimTime at) { start = at; });
  const SimTime launched = rig.sim.Now();
  grunt.RunWithProfile(profile, Sec(20), [&](const GruntReport&) {
    done = true;
  });
  while (!done && rig.sim.Now() < Sec(1000)) {
    rig.sim.RunUntil(rig.sim.Now() + Sec(5));
  }
  ASSERT_TRUE(done);
  // No rate sweep, no L-doubling, no m trial: the burst phase starts
  // immediately instead of after a calibration phase.
  EXPECT_LT(start - launched, Ms(1));

  const GruntReport& report = grunt.report();
  ASSERT_EQ(report.groups.size(), 1u);
  const GroupStats& g = report.groups[0];
  EXPECT_EQ(g.paths_used, 2);
  ASSERT_GT(g.bursts.size(), 4u);
  // Feedback adaptation is frozen: every burst fires the installed plan
  // verbatim, however the target responds.
  for (const auto& b : g.bursts) {
    EXPECT_EQ(b.count, 40);
    EXPECT_DOUBLE_EQ(b.rate, 2000.0);
  }
}

TEST(GruntAttack, ReplayEntryCountMustMatchGroups) {
  Rig rig(grunt::testing::TwoPathParallelApp(
              microsvc::ServiceTimeDist::kExponential),
          120.0);
  ProfileResult profile;
  profile.urls = rig.client.CrawlUrls();
  profile.candidates = {0, 1};
  profile.baseline_rt_ms = {15.0, 15.0};
  profile.groups = {{0, 1}};

  GruntConfig cfg;
  cfg.replay = {GroupReplay{}, GroupReplay{}};  // two entries, one group
  GruntAttack grunt(rig.client, cfg);
  EXPECT_THROW(
      grunt.RunWithProfile(profile, Sec(5), [](const GruntReport&) {}),
      std::invalid_argument);
}

TEST(GruntAttack, MinGroupSizeSkipsSingletons) {
  Rig rig(grunt::testing::DisjointApp(
              microsvc::ServiceTimeDist::kExponential),
          80.0);
  ProfileResult profile;
  profile.urls = rig.client.CrawlUrls();
  profile.candidates = {0, 1};
  profile.baseline_rt_ms = {15.0, 15.0};
  profile.groups = {{0}, {1}};  // two singletons, no dependency

  GruntConfig cfg;
  cfg.min_group_size = 2;
  GruntAttack grunt(rig.client, cfg);
  bool done = false;
  grunt.RunWithProfile(profile, Sec(10), [&](const GruntReport& r) {
    done = true;
    EXPECT_TRUE(r.groups.empty());
    EXPECT_EQ(r.attack_requests, 0u);
  });
  rig.sim.RunUntil(rig.sim.Now() + Sec(5));
  EXPECT_TRUE(done);
}

TEST(GruntAttack, MaxGroupsLimitsTargets) {
  Rig rig(grunt::testing::DisjointApp(
              microsvc::ServiceTimeDist::kExponential),
          80.0);
  ProfileResult profile;
  profile.urls = rig.client.CrawlUrls();
  profile.candidates = {0, 1};
  profile.baseline_rt_ms = {15.0, 15.0};
  profile.groups = {{0}, {1}};

  GruntConfig cfg;
  cfg.max_groups = 1;
  cfg.commander.target_tmin_ms = 300.0;
  GruntAttack grunt(rig.client, cfg);
  bool done = false;
  grunt.RunWithProfile(profile, Sec(15), [&](const GruntReport& r) {
    done = true;
    EXPECT_EQ(r.groups.size(), 1u);
  });
  while (!done && rig.sim.Now() < Sec(1000)) {
    rig.sim.RunUntil(rig.sim.Now() + Sec(5));
  }
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace grunt::attack
