#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace grunt {
namespace {

TEST(SplitMix64, KnownNonTrivialOutputs) {
  // Self-consistency + avalanche sanity: adjacent inputs decorrelate.
  EXPECT_NE(SplitMix64(0), 0u);
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  EXPECT_NE(SplitMix64(1) >> 32, SplitMix64(2) >> 32);
}

TEST(HashName, StableAcrossCalls) {
  EXPECT_EQ(HashName(42, "alpha"), HashName(42, "alpha"));
  EXPECT_NE(HashName(42, "alpha"), HashName(42, "beta"));
  EXPECT_NE(HashName(42, "alpha"), HashName(43, "alpha"));
}

TEST(RngStream, SameSeedSameNameSameSequence) {
  RngStream a(7, "stream");
  RngStream b(7, "stream");
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
  }
}

TEST(RngStream, DifferentNamesIndependent) {
  RngStream a(7, "one");
  RngStream b(7, "two");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.NextInt(0, 1'000'000) == b.NextInt(0, 1'000'000));
  }
  EXPECT_LE(equal, 1);
}

TEST(RngStream, NextDoubleInUnitInterval) {
  RngStream rng(1, "u");
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngStream, NextIntBoundsInclusive) {
  RngStream rng(1, "int");
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const auto v = rng.NextInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
  EXPECT_THROW(rng.NextInt(5, 4), std::invalid_argument);
}

TEST(RngStream, ExponentialMeanCloseToRequested) {
  RngStream rng(1, "exp");
  double total = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) total += rng.NextExp(25.0);
  EXPECT_NEAR(total / n, 25.0, 0.5);
}

TEST(RngStream, ExponentialThrowsOnBadMean) {
  RngStream rng(1, "exp2");
  EXPECT_THROW(rng.NextExp(0.0), std::invalid_argument);
  EXPECT_THROW(rng.NextExp(-1.0), std::invalid_argument);
}

TEST(RngStream, ExpDurationZeroMeanIsZero) {
  RngStream rng(1, "expd");
  EXPECT_EQ(rng.NextExpDuration(0), 0);
  EXPECT_EQ(rng.NextExpDuration(-5), 0);
}

TEST(RngStream, NormalRespectsFloor) {
  RngStream rng(1, "norm");
  for (int i = 0; i < 5'000; ++i) {
    ASSERT_GE(rng.NextNormal(1.0, 10.0, 0.5), 0.5);
  }
}

TEST(RngStream, PoissonMean) {
  RngStream rng(1, "poisson");
  double total = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.NextPoisson(4.0));
  EXPECT_NEAR(total / n, 4.0, 0.1);
}

TEST(RngStream, BoolProbability) {
  RngStream rng(1, "bool");
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(RngStream(1, "b0").NextBool(0.0));
  EXPECT_TRUE(RngStream(1, "b1").NextBool(1.0));
}

TEST(RngStream, WeightedRespectsWeights) {
  RngStream rng(1, "weighted");
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40'000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngStream, WeightedThrowsWithoutPositiveWeight) {
  RngStream rng(1, "weighted2");
  EXPECT_THROW(rng.NextWeighted({0.0, -1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace grunt
