#include "microsvc/cluster.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace grunt::microsvc {
namespace {

using grunt::testing::SingleChainApp;

TEST(Cluster, SingleRequestLatencyIsExactlyDemandsPlusNetwork) {
  sim::Simulation sim;
  const Application app = SingleChainApp();
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 99,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  // CPU: 1 + 5 + (2 folded with post 0) + post(s1) 1 = 9 ms.
  // Network: 6 messages x 200 us = 1.2 ms.
  EXPECT_EQ(rec.end - rec.start, Ms(9) + Us(1200));
  EXPECT_EQ(rec.client_id, 99u);
  EXPECT_EQ(cluster.completed_count(), 1u);
  EXPECT_EQ(cluster.in_flight(), 0u);
}

TEST(Cluster, HeavyRequestScalesEveryCpuDemand) {
  sim::Simulation sim;
  const Application app = SingleChainApp();  // heavy_multiplier = 2.0
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kAttack, /*heavy=*/true, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.end - rec.start, Ms(18) + Us(1200));
  EXPECT_TRUE(rec.heavy);
  EXPECT_EQ(rec.cls, RequestClass::kAttack);
}

TEST(Cluster, UpstreamSlotsHeldDuringDownstreamWork) {
  sim::Simulation sim;
  const Application app = SingleChainApp();
  Cluster cluster(sim, app, 1);
  for (int i = 0; i < 4; ++i) {
    cluster.Submit(0, RequestClass::kLegit, false, 1);
  }
  sim.RunUntil(Ms(4));
  const auto s0 = *app.FindService("s0");
  const auto s1 = *app.FindService("s1");
  // All four requests are at s1 (2 on CPU, 2 queued for CPU) but every one
  // still holds its s0 thread slot: that is the RPC blocking semantics.
  EXPECT_EQ(cluster.service(s0).slots_in_use(), 4);
  EXPECT_EQ(cluster.service(s1).slots_in_use(), 4);
  EXPECT_EQ(cluster.service(s1).cpu_busy(), 2);
  sim.RunAll();
  EXPECT_EQ(cluster.service(s0).slots_in_use(), 0);
  EXPECT_EQ(cluster.service(s1).slots_in_use(), 0);
  EXPECT_EQ(cluster.completed_count(), 4u);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

TEST(Cluster, StaticTypeServedAtEdgeWithoutBackendLoad) {
  sim::Simulation sim;
  Application::Builder b;
  b.SetNetLatency(Us(300));
  const ServiceId s = b.AddService(grunt::testing::Svc("backend", 4, 1));
  RequestTypeSpec st;
  st.name = "asset";
  st.is_static = true;
  st.request_bytes = 100;
  st.response_bytes = 1000;
  b.AddRequestType(st);
  const Application app = std::move(b).Build();
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.end - rec.start, Us(600));  // pure edge round-trip
  EXPECT_EQ(cluster.service(s).completed_bursts(), 0);
  EXPECT_EQ(cluster.gateway_bytes(), 1100);
}

TEST(Cluster, GatewayBytesCountRequestAndResponse) {
  sim::Simulation sim;
  const Application app = SingleChainApp();
  Cluster cluster(sim, app, 1);
  const auto& spec = app.request_type(0);
  cluster.Submit(0, RequestClass::kLegit, false, 1);
  EXPECT_EQ(cluster.gateway_bytes(), spec.request_bytes);
  sim.RunAll();
  EXPECT_EQ(cluster.gateway_bytes(), spec.request_bytes + spec.response_bytes);
}

TEST(Cluster, BusObservesSubmitAndCompletion) {
  sim::Simulation sim;
  const Application app = SingleChainApp();
  Cluster cluster(sim, app, 1);
  int submits = 0, completions = 0;
  cluster.telemetry().submit().Subscribe(
      [&](const telemetry::RequestSubmit& e) {
        ++submits;
        EXPECT_EQ(e.type, 0);
        EXPECT_EQ(e.cls, RequestClass::kProbe);
        EXPECT_EQ(e.client_id, 5u);
      });
  cluster.telemetry().completion().Subscribe(
      [&](const CompletionRecord&) { ++completions; });
  cluster.Submit(0, RequestClass::kProbe, false, 5);
  sim.RunAll();
  EXPECT_EQ(submits, 1);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(cluster.completions().size(), 1u);
}

TEST(Cluster, ExponentialDistStillCompletesAndIsDeterministicPerSeed) {
  const Application app = SingleChainApp(ServiceTimeDist::kExponential);
  auto run = [&](std::uint64_t seed) {
    sim::Simulation sim;
    Cluster cluster(sim, app, seed);
    std::vector<SimDuration> rts;
    for (int i = 0; i < 50; ++i) {
      cluster.Submit(0, RequestClass::kLegit, false, 1,
                     [&](const CompletionRecord& r) {
                       rts.push_back(r.end - r.start);
                     });
    }
    sim.RunAll();
    return rts;
  };
  const auto r1 = run(11);
  const auto r2 = run(11);
  const auto r3 = run(12);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, r3);
  EXPECT_EQ(r1.size(), 50u);
}

TEST(Cluster, ClearCompletionsFreesLog) {
  sim::Simulation sim;
  const Application app = SingleChainApp();
  Cluster cluster(sim, app, 1);
  cluster.Submit(0, RequestClass::kLegit, false, 1);
  sim.RunAll();
  EXPECT_EQ(cluster.completions().size(), 1u);
  cluster.ClearCompletions();
  EXPECT_TRUE(cluster.completions().empty());
  EXPECT_EQ(cluster.completed_count(), 1u);  // counters unaffected
}

}  // namespace
}  // namespace grunt::microsvc
