#include "attack/botfarm.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.h"

namespace grunt::attack {
namespace {

TEST(BotFarm, RecruitsWhenAllBotsAreCooling) {
  BotFarm farm({Ms(3500), 100});
  const auto b1 = farm.Acquire(0);
  const auto b2 = farm.Acquire(Ms(10));
  EXPECT_NE(b1, b2);
  EXPECT_EQ(farm.bot_count(), 2u);
}

TEST(BotFarm, ReusesBotAfterSpacingElapses) {
  BotFarm farm({Ms(3500), 100});
  const auto b1 = farm.Acquire(0);
  const auto b2 = farm.Acquire(Ms(3500));
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(farm.bot_count(), 1u);
}

TEST(BotFarm, BotIdsDerivedFromBase) {
  BotFarm::Config cfg;
  cfg.bot_id_base = 5000;
  BotFarm farm(cfg);
  EXPECT_EQ(farm.Acquire(0), 5000u);
  EXPECT_EQ(farm.Acquire(0), 5001u);
}

/// Property: under any acquisition pattern, no bot is ever used twice
/// within the configured spacing — the invariant that defeats the IDS
/// inter-request rule.
class BotSpacingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BotSpacingProperty, SpacingNeverViolated) {
  BotFarm farm({Ms(3000), 0});
  RngStream rng(GetParam(), "botfarm");
  std::map<std::uint64_t, SimTime> last_use;
  SimTime now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += rng.NextExpDuration(Ms(20));
    const std::uint64_t bot = farm.Acquire(now).value();
    auto it = last_use.find(bot);
    if (it != last_use.end()) {
      ASSERT_GE(now - it->second, Ms(3000))
          << "bot " << bot << " reused too soon at " << now;
    }
    last_use[bot] = now;
  }
  EXPECT_EQ(farm.requests_sent(), 5000u);
  // Roughly rate * spacing bots needed: 50/s * 3 s = 150.
  EXPECT_NEAR(static_cast<double>(farm.bot_count()), 150.0, 60.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BotSpacingProperty,
                         ::testing::Values(1, 7, 42));

TEST(BotFarm, RoundRobinSpreadsReuse) {
  BotFarm farm({Ms(100), 0});
  // Create 3 bots.
  const auto a = *farm.Acquire(0);
  const auto b = *farm.Acquire(0);
  const auto c = *farm.Acquire(0);
  // All eligible again: reuse should cycle, not hammer one bot.
  const auto r1 = *farm.Acquire(Ms(200));
  const auto r2 = *farm.Acquire(Ms(200));
  const auto r3 = *farm.Acquire(Ms(200));
  EXPECT_EQ((std::set<std::uint64_t>{r1, r2, r3}),
            (std::set<std::uint64_t>{a, b, c}));
}

TEST(BotFarm, BudgetCapStopsRecruitmentAndFailsAcquire) {
  BotFarm::Config cfg;
  cfg.min_spacing = Ms(1000);
  cfg.max_bots = 2;
  BotFarm farm(cfg);
  EXPECT_TRUE(farm.Acquire(0).has_value());
  EXPECT_TRUE(farm.Acquire(0).has_value());
  // Budget spent, both bots cooling: no request can be sent...
  EXPECT_FALSE(farm.Acquire(Ms(10)).has_value());
  EXPECT_EQ(farm.bot_count(), 2u);
  EXPECT_EQ(farm.requests_sent(), 2u);  // failed acquires are not sends
  // ...until the spacing elapses, when existing bots become usable again.
  EXPECT_TRUE(farm.Acquire(Ms(1000)).has_value());
  EXPECT_EQ(farm.bot_count(), 2u);
}

}  // namespace
}  // namespace grunt::attack
