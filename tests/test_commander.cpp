#include "attack/commander.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "attack/sim_target_client.h"
#include "fixtures.h"
#include "microsvc/cluster.h"
#include "trace/dependency.h"
#include "workload/workload.h"

namespace grunt::attack {
namespace {

/// White-box profile for a fixture app: baselines probed analytically,
/// pairwise dependencies from ground truth. Lets commander tests skip the
/// (separately tested) profiling phase.
ProfileResult TruthProfile(const microsvc::Application& app,
                           double per_type_rate) {
  ProfileResult profile;
  const auto types = app.PublicDynamicTypes();
  std::int32_t max_id = 0;
  for (auto t : types) max_id = std::max(max_id, t);
  profile.baseline_rt_ms.assign(static_cast<std::size_t>(max_id + 1), 15.0);
  for (auto t : types) {
    profile.candidates.push_back(t);
    PublicUrl url;
    url.url_id = t;
    url.path = "/" + app.request_type(t).name;
    profile.urls.push_back(url);
  }
  trace::GroundTruth truth(
      app, std::vector<double>(app.request_type_count(), per_type_rate));
  auto groups = trace::DependencyGroups(app.request_type_count());
  for (const auto& dep : truth.AllPairs()) {
    if (trace::IsDependent(dep.type)) {
      profile.pairs.push_back(dep);
      groups.Union(dep.a, dep.b);
    }
  }
  for (const auto& g : groups.Groups()) profile.groups.push_back(g);
  return profile;
}

struct Rig {
  explicit Rig(microsvc::Application application, double per_type_rate)
      : app(std::move(application)),
        cluster(sim, app, 7),
        client(cluster),
        bots({}),
        profile(TruthProfile(app, per_type_rate)) {
    workload::OpenLoopSource::Config wl;
    wl.rate = per_type_rate * static_cast<double>(app.PublicDynamicTypes().size());
    wl.mix = workload::RequestMix::Uniform(app.PublicDynamicTypes());
    source = std::make_unique<workload::OpenLoopSource>(cluster, wl, 7);
    source->Start();
    sim.RunUntil(Sec(5));
  }

  void RunUntilFlag(bool& flag, SimTime cap = Sec(2000)) {
    while (!flag && sim.Now() < cap) sim.RunUntil(sim.Now() + Sec(5));
    ASSERT_TRUE(flag);
  }

  sim::Simulation sim;
  microsvc::Application app;
  microsvc::Cluster cluster;
  SimTargetClient client;
  BotFarm bots;
  ProfileResult profile;
  std::unique_ptr<workload::OpenLoopSource> source;
};

TEST(GroupCommander, CalibrationFindsSaneBurstShape) {
  Rig rig(grunt::testing::TwoPathParallelApp(
              microsvc::ServiceTimeDist::kExponential),
          60.0);
  GroupCommander cmd(rig.client, rig.bots, {}, {0, 1}, rig.profile);
  bool done = false;
  cmd.Initialize([&] { done = true; });
  rig.RunUntilFlag(done);
  ASSERT_TRUE(cmd.initialized());
  ASSERT_EQ(cmd.stats().plans.size(), 2u);
  for (const auto& plan : cmd.stats().plans) {
    EXPECT_GE(plan.rate, 200.0);
    EXPECT_LE(plan.rate, 6400.0);
    EXPECT_GE(plan.count, 4);
    EXPECT_LE(plan.count, 4096);
    // Calibrated volume keeps the millibottleneck under the stealth cap.
    EXPECT_GT(plan.measured_pmb_ms, 0.0);
    EXPECT_LE(plan.measured_pmb_ms, 500.0);
  }
}

TEST(GroupCommander, SequentialUpstreamPathRankedFirst) {
  Rig rig(grunt::testing::SequentialApp(
              microsvc::ServiceTimeDist::kExponential),
          40.0);
  GroupCommander cmd(rig.client, rig.bots, {}, {0, 1}, rig.profile);
  bool done = false;
  cmd.Initialize([&] { done = true; });
  rig.RunUntilFlag(done);
  // Type 0 ("up") triggers execution blocking: highest priority (Sec III-C).
  ASSERT_GE(cmd.stats().plans.size(), 1u);
  EXPECT_EQ(cmd.stats().plans[0].url, 0);
  EXPECT_EQ(cmd.stats().plans[0].kind, model::BlockingKind::kExecution);
}

TEST(GroupCommander, AttackMaintainsDamageAndStealth) {
  Rig rig(grunt::testing::TwoPathParallelApp(
              microsvc::ServiceTimeDist::kExponential),
          60.0);
  CommanderConfig cfg;
  cfg.target_tmin_ms = 400.0;  // modest goal for a 2-path group
  GroupCommander cmd(rig.client, rig.bots, cfg, {0, 1}, rig.profile);
  bool init_done = false;
  cmd.Initialize([&] { init_done = true; });
  rig.RunUntilFlag(init_done);

  bool attack_done = false;
  cmd.Attack(rig.sim.Now() + Sec(30), [&] { attack_done = true; });
  rig.RunUntilFlag(attack_done);
  const GroupStats& stats = cmd.stats();
  EXPECT_GT(stats.bursts.size(), 10u);
  EXPECT_GT(stats.attack_requests, 100u);
  // Damage estimate reached a meaningful multiple of the ~15ms baseline
  // over the attack (mean of the probe-based t_min series)...
  const RunningStats tmin =
      stats.tmin_est_ms.WindowStats(0, stats.tmin_est_ms.back().time + 1);
  EXPECT_GT(tmin.mean(), 80.0);
  // ...while the average created millibottleneck respects the cap (with
  // control slack).
  EXPECT_LT(stats.MeanPmbMs(), 600.0);
}

TEST(GroupCommander, AlternatesAcrossPathsUnlessDisabled) {
  auto run = [&](bool alternate) {
    Rig rig(grunt::testing::TwoPathParallelApp(
                microsvc::ServiceTimeDist::kExponential),
            60.0);
    CommanderConfig cfg;
    cfg.alternate_paths = alternate;
    cfg.target_tmin_ms = 400.0;
    GroupCommander cmd(rig.client, rig.bots, cfg, {0, 1}, rig.profile);
    bool done = false;
    cmd.Initialize([&] { done = true; });
    rig.RunUntilFlag(done);
    bool attack_done = false;
    cmd.Attack(rig.sim.Now() + Sec(20), [&] { attack_done = true; });
    rig.RunUntilFlag(attack_done);
    // The initial mixed volley always covers every path (Sec III-B); what
    // the ablation changes is the steady-state rotation.
    std::map<std::int32_t, std::size_t> counts;
    for (const auto& b : cmd.stats().bursts) ++counts[b.url];
    return counts;
  };
  EXPECT_GE(run(true).size(), 2u);
  // All but the one mixed-volley burst land on a single path.
  const auto fixed = run(false);
  std::size_t max_count = 0, total = 0;
  for (const auto& [url, n] : fixed) {
    max_count = std::max(max_count, n);
    total += n;
  }
  EXPECT_GE(max_count + 1, total);
}

TEST(GroupCommander, LifecycleGuards) {
  Rig rig(grunt::testing::DisjointApp(
              microsvc::ServiceTimeDist::kExponential),
          40.0);
  GroupCommander cmd(rig.client, rig.bots, {}, {0}, rig.profile);
  EXPECT_THROW(cmd.Attack(Sec(100), [] {}), std::logic_error);
  EXPECT_THROW(GroupCommander(rig.client, rig.bots, {}, {}, rig.profile),
               std::invalid_argument);
}

TEST(GroupCommander, KalmanAblationStillFunctions) {
  Rig rig(grunt::testing::TwoPathParallelApp(
              microsvc::ServiceTimeDist::kExponential),
          60.0);
  CommanderConfig cfg;
  cfg.use_kalman = false;
  cfg.target_tmin_ms = 400.0;
  GroupCommander cmd(rig.client, rig.bots, cfg, {0, 1}, rig.profile);
  bool done = false;
  cmd.Initialize([&] { done = true; });
  rig.RunUntilFlag(done);
  bool attack_done = false;
  cmd.Attack(rig.sim.Now() + Sec(15), [&] { attack_done = true; });
  rig.RunUntilFlag(attack_done);
  EXPECT_GT(cmd.stats().bursts.size(), 5u);
}

}  // namespace
}  // namespace grunt::attack
