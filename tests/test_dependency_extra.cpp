// Additional ground-truth classification scenarios beyond the basic
// fixtures: shared mid-path services, bottlenecks at leaves, longer chains,
// and the interaction of utilization with bottleneck selection.

#include <gtest/gtest.h>

#include "fixtures.h"
#include "trace/dependency.h"

namespace grunt::trace {
namespace {

using grunt::testing::Svc;
using grunt::testing::Type;
using microsvc::Application;
using microsvc::ServiceId;

std::vector<double> Rates(const Application& app, double r) {
  return std::vector<double>(app.request_type_count(), r);
}

TEST(GroundTruthExtra, BottleneckMovesWithBackgroundLoad) {
  // Two hops with close capacities: which one is the bottleneck depends on
  // the background utilization each carries.
  Application::Builder b;
  b.SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 2048, 8));
  const ServiceId s1 = b.AddService(Svc("s1", 64, 2));  // 10ms -> 200/s
  const ServiceId s2 = b.AddService(Svc("s2", 64, 2));  // 9ms  -> 222/s
  b.AddRequestType(Type("p", {{gw, Us(200), 0},
                              {s1, Us(10000), 0},
                              {s2, Us(9000), 0}}));
  // A second type loads ONLY s2.
  b.AddRequestType(Type("q", {{gw, Us(200), 0}, {s2, Us(9000), 0}}));
  const auto app = std::move(b).Build();

  // With no q traffic, s1 (lower capacity) is p's bottleneck.
  GroundTruth idle(app, {10.0, 0.0});
  EXPECT_EQ(idle.BottleneckOf(0), s1);
  // Heavy q traffic burns s2's headroom: the bottleneck shifts to s2.
  GroundTruth loaded(app, {10.0, 150.0});
  EXPECT_EQ(loaded.BottleneckOf(0), s2);
}

TEST(GroundTruthExtra, SharedLeafBelowBothBottlenecksIsNoDependency) {
  Application::Builder b;
  b.SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 2048, 8));
  const ServiceId wa = b.AddService(Svc("wa", 64, 2));
  const ServiceId wb = b.AddService(Svc("wb", 64, 2));
  const ServiceId leaf = b.AddService(Svc("shared-db", 128, 4));
  b.AddRequestType(Type("a", {{gw, Us(200), 0},
                              {wa, Us(9000), Us(500)},
                              {leaf, Us(500), 0}}));
  b.AddRequestType(Type("b", {{gw, Us(200), 0},
                              {wb, Us(9000), Us(500)},
                              {leaf, Us(500), 0}}));
  const auto app = std::move(b).Build();
  GroundTruth truth(app, Rates(app, 40.0));
  // The shared db sits downstream of both bottlenecks: queueing there never
  // blocks the other path's entry.
  EXPECT_EQ(truth.Classify(0, 1), DepType::kNone);
}

TEST(GroundTruthExtra, SmallSharedMidServiceCreatesParallelDependency) {
  // Like the previous case but the shared service sits BETWEEN the entry
  // and the bottlenecks and has a small slot pool: overflow can reach it.
  Application::Builder b;
  b.SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 2048, 8));
  const ServiceId mid = b.AddService(Svc("mid", 10, 4));
  const ServiceId wa = b.AddService(Svc("wa", 64, 2));
  const ServiceId wb = b.AddService(Svc("wb", 64, 2));
  b.AddRequestType(Type("a", {{gw, Us(200), 0},
                              {mid, Us(800), Us(300)},
                              {wa, Us(9000), Us(500)}}));
  b.AddRequestType(Type("b", {{gw, Us(200), 0},
                              {mid, Us(800), Us(300)},
                              {wb, Us(9000), Us(500)}}));
  const auto app = std::move(b).Build();
  GroundTruth truth(app, Rates(app, 40.0));
  EXPECT_EQ(truth.Classify(0, 1), DepType::kParallel);
}

TEST(GroundTruthExtra, LongChainSequentialDirection) {
  // Five-hop chains where one path's bottleneck is an early hop shared with
  // the other path, whose own bottleneck is deeper.
  Application::Builder b;
  b.SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 2048, 8));
  const ServiceId fe = b.AddService(Svc("fe", 16, 2));
  const ServiceId m1 = b.AddService(Svc("m1", 96, 4));
  const ServiceId deep = b.AddService(Svc("deep", 64, 2));
  const ServiceId l1 = b.AddService(Svc("l1", 128, 2));
  // Path "heavy-front": burns CPU at fe (its bottleneck).
  b.AddRequestType(Type("heavy-front", {{gw, Us(200), 0},
                                        {fe, Us(12000), Us(500)},
                                        {l1, Us(300), 0}}));
  // Path "deep-path": cheap at fe, expensive at `deep`.
  b.AddRequestType(Type("deep-path", {{gw, Us(200), 0},
                                      {fe, Us(800), Us(300)},
                                      {m1, Us(500), 0},
                                      {deep, Us(9000), Us(500)},
                                      {l1, Us(300), 0}}));
  const auto app = std::move(b).Build();
  GroundTruth truth(app, Rates(app, 25.0));
  EXPECT_EQ(truth.BottleneckOf(0), fe);
  EXPECT_EQ(truth.BottleneckOf(1), deep);
  EXPECT_EQ(truth.Classify(0, 1), DepType::kSequentialAUp);
  EXPECT_EQ(truth.Classify(1, 0), DepType::kSequentialBUp);
}

TEST(GroundTruthExtra, SaturatedBackgroundKillsStealthBacklog) {
  const auto app = grunt::testing::TwoPathParallelApp();
  // Background beyond worker capacity: no stealth-bounded burst can add a
  // millibottleneck that still drains within the cap.
  GroundTruth truth(app, {250.0, 10.0});  // worker-a C_L ~210/s
  EXPECT_NEAR(truth.StealthBacklog(0), 0.0, 1e-9);
}

TEST(GroundTruthExtra, BackgroundOccupancyGrowsWithDownstreamWork) {
  const auto app = grunt::testing::TwoPathParallelApp();
  GroundTruth truth(app, {50.0, 50.0});
  const auto gw = *app.FindService("gw");
  const auto um = *app.FindService("um");
  const auto leaf = *app.FindService("leaf");
  // Residence at the gateway covers the whole chain; at the leaf only its
  // own service time: occupancy must be ordered accordingly.
  EXPECT_GT(truth.BackgroundOccupancy(gw), truth.BackgroundOccupancy(um) * 0.9);
  EXPECT_GT(truth.BackgroundOccupancy(um), truth.BackgroundOccupancy(leaf));
}

TEST(GroundTruthExtra, PairsAreSymmetricUpToDirection) {
  const auto app = grunt::testing::SequentialApp();
  GroundTruth truth(app, Rates(app, 30.0));
  const DepType ab = truth.Classify(0, 1);
  const DepType ba = truth.Classify(1, 0);
  EXPECT_TRUE(SameKind(ab, ba));
  EXPECT_NE(ab, ba);  // direction flips
}

}  // namespace
}  // namespace grunt::trace
