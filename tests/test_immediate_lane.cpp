#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "sim/timer_wheel.h"
#include "util/time_types.h"

namespace grunt::sim {
namespace {

// ---------------------------------------------------------------------------
// Differential ordering harness for the immediate lane: one randomized
// schedule script, executed five ways — every (lane, wheel) enable
// combination of the real engine plus a naive std::priority_queue reference
// — must produce byte-identical firing sequences. Unlike the timer-wheel
// harness, delays are biased hard toward zero so most events ride the lane:
// in-callback After(0) chains, same-timestamp cancellation of lane entries,
// and lane/heap/wheel ties at one timestamp are the cases under test.
// ---------------------------------------------------------------------------

struct ChildOp {
  SimDuration delay;
  bool timer_class;
  int action;
};

struct Action {
  SimDuration period = 0;  ///< > 0: scheduled via Every
  int max_fires = 1;       ///< periodic actions self-cancel after this many
  std::vector<ChildOp> children;
  std::vector<int> cancels;  ///< cancelled when this action fires
};

struct Root {
  SimTime at;
  bool timer_class;
  int action;
};

struct Script {
  std::vector<Action> actions;
  std::vector<Root> roots;
};

using FireLog = std::vector<std::pair<SimTime, int>>;

FireLog RunOnSimulation(const Script& script, bool use_lane, bool use_wheel) {
  Simulation sim;
  sim.SetImmediateLaneEnabled(use_lane);
  sim.SetTimerWheelEnabled(use_wheel);
  std::vector<EventHandle> handles(script.actions.size());
  std::vector<int> fires(script.actions.size(), 0);
  FireLog log;

  std::function<void(int)> fire = [&](int a) {
    log.emplace_back(sim.Now(), a);
    const Action& act = script.actions[static_cast<std::size_t>(a)];
    const int n = ++fires[static_cast<std::size_t>(a)];
    for (int c : act.cancels) handles[static_cast<std::size_t>(c)].Cancel();
    if (n == 1) {  // children are single-schedule; only the first tick spawns
      for (const ChildOp& ch : act.children) {
        const auto cls =
            ch.timer_class ? EventClass::kTimer : EventClass::kSequence;
        const Action& child =
            script.actions[static_cast<std::size_t>(ch.action)];
        handles[static_cast<std::size_t>(ch.action)] =
            child.period > 0
                ? sim.Every(child.period, cls, [&fire, a = ch.action] {
                    fire(a);
                  })
                : sim.After(ch.delay, cls, [&fire, a = ch.action] {
                    fire(a);
                  });
      }
    }
    if (act.period > 0 && n >= act.max_fires) {
      handles[static_cast<std::size_t>(a)].Cancel();
    }
  };

  for (const Root& r : script.roots) {
    const Action& act = script.actions[static_cast<std::size_t>(r.action)];
    const auto cls =
        r.timer_class ? EventClass::kTimer : EventClass::kSequence;
    if (act.period > 0) {
      handles[static_cast<std::size_t>(r.action)] =
          sim.Every(act.period, cls, [&fire, a = r.action] { fire(a); });
    } else {
      handles[static_cast<std::size_t>(r.action)] =
          sim.At(r.at, cls, [&fire, a = r.action] { fire(a); });
    }
  }
  sim.RunAll();
  return log;
}

/// The reference: a plain (time, seq) priority queue with the engine's
/// observable semantics — ties fire in scheduling order (zero-delay events
/// included), Every re-arms after its callback, one-shot handles go stale
/// before their callback runs, cancels are idempotent.
FireLog RunOnReference(const Script& script) {
  struct Ev {
    SimTime time;
    std::uint64_t seq;
    int action;
  };
  auto later = [](const Ev& a, const Ev& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  };
  std::priority_queue<Ev, std::vector<Ev>, decltype(later)> queue(later);

  enum class State { kIdle, kPending, kDone };
  std::vector<State> state(script.actions.size(), State::kIdle);
  std::vector<int> fires(script.actions.size(), 0);
  SimTime now = 0;
  std::uint64_t next_seq = 0;
  FireLog log;

  auto schedule = [&](SimTime t, int a) {
    queue.push(Ev{t, next_seq++, a});
    state[static_cast<std::size_t>(a)] = State::kPending;
  };
  auto cancel = [&](int a) {
    if (state[static_cast<std::size_t>(a)] == State::kPending) {
      state[static_cast<std::size_t>(a)] = State::kDone;
    }
  };

  for (const Root& r : script.roots) {
    const Action& act = script.actions[static_cast<std::size_t>(r.action)];
    schedule(act.period > 0 ? act.period : r.at, r.action);
  }
  while (!queue.empty()) {
    const Ev e = queue.top();
    queue.pop();
    const auto a = static_cast<std::size_t>(e.action);
    if (state[a] != State::kPending) continue;
    now = e.time;
    const Action& act = script.actions[a];
    if (act.period == 0) state[a] = State::kDone;  // handle stale pre-callback
    log.emplace_back(now, e.action);
    const int n = ++fires[a];
    for (int c : act.cancels) cancel(c);
    if (n == 1) {
      for (const ChildOp& ch : act.children) {
        const Action& child =
            script.actions[static_cast<std::size_t>(ch.action)];
        schedule(child.period > 0
                     ? now + child.period
                     : now + std::max<SimDuration>(0, ch.delay),
                 ch.action);
      }
    }
    if (act.period > 0 && state[a] == State::kPending) {
      if (n >= act.max_fires) {
        state[a] = State::kDone;
      } else {
        queue.push(Ev{now + act.period, next_seq++, e.action});
      }
    }
  }
  return log;
}

/// Half the delays are exactly zero (the lane); the rest cover the near heap
/// band, the far wheel band, and the sub-kMinDelay edge so one timestamp can
/// hold entries from all three backing stores at once.
SimDuration LaneBiasedDelay(std::mt19937_64& rng) {
  switch (rng() % 8) {
    case 0:
    case 1:
    case 2:
    case 3:
      return 0;  // the lane
    case 4:
      return static_cast<SimDuration>(rng() % TimerWheel::kMinDelay);
    case 5:
      return static_cast<SimDuration>(rng() % Simulation::kFarDelay);
    case 6:
      return Simulation::kFarDelay +
             static_cast<SimDuration>(rng() % Ms(20));  // far: wheel
    default:
      return static_cast<SimDuration>(rng() % Ms(1));
  }
}

Script MakeScript(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  constexpr int kActions = 160;
  constexpr int kRoots = 24;
  Script s;
  s.actions.resize(kActions);

  // Periodic actions: ~1 in 8. Short periods keep the Every path colliding
  // with lane timestamps; long ones exercise the wheel alongside the lane.
  for (Action& a : s.actions) {
    if (rng() % 8 == 0) {
      static constexpr SimDuration kPeriods[] = {Us(1),  Us(40), Us(64),
                                                 Us(700), Ms(5), Ms(50)};
      a.period = kPeriods[rng() % (sizeof(kPeriods) / sizeof(kPeriods[0]))];
      a.max_fires = 1 + static_cast<int>(rng() % 5);
    }
  }

  // A forest: roots take the first ids, every other action is the child of
  // exactly one earlier action, so nothing is double-scheduled. Frequent
  // root ties put several zero-delay chains at the same timestamp.
  for (int i = 0; i < kRoots; ++i) {
    s.roots.push_back(
        Root{static_cast<SimTime>(rng() % Ms(5)), rng() % 2 == 0, i});
    if (rng() % 3 == 0 && i > 0) s.roots.back().at = s.roots[i - 1].at;  // tie
  }
  for (int i = kRoots; i < kActions; ++i) {
    const int parent = static_cast<int>(rng() % static_cast<std::uint64_t>(i));
    s.actions[static_cast<std::size_t>(parent)].children.push_back(
        ChildOp{LaneBiasedDelay(rng), rng() % 2 == 0, i});
  }
  // Cancels: any action may cancel any other. With half the delays at zero,
  // many of these hit a lane entry from a callback running at the entry's
  // own timestamp — the lane's trickiest cancel case.
  for (int i = 0; i < kActions; ++i) {
    if (rng() % 3 == 0) {
      s.actions[static_cast<std::size_t>(i)].cancels.push_back(
          static_cast<int>(rng() % kActions));
    }
  }
  return s;
}

std::string FirstDivergence(const FireLog& a, const FireLog& b) {
  std::ostringstream os;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      os << "first divergence at fire " << i << ": (" << a[i].first << ", a"
         << a[i].second << ") vs (" << b[i].first << ", a" << b[i].second
         << ")";
      return os.str();
    }
  }
  os << "common prefix of " << n << " fires; sizes " << a.size() << " vs "
     << b.size();
  return os.str();
}

TEST(ImmediateLaneDifferential, MatchesHeapWheelAndReference) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Script script = MakeScript(seed);
    const FireLog ref = RunOnReference(script);
    for (const bool lane : {true, false}) {
      for (const bool wheel : {true, false}) {
        const FireLog log = RunOnSimulation(script, lane, wheel);
        EXPECT_EQ(log, ref)
            << "engine (lane=" << lane << ", wheel=" << wheel
            << ") diverged from reference, seed " << seed << "; "
            << FirstDivergence(log, ref);
      }
    }
    EXPECT_FALSE(ref.empty()) << "degenerate script, seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Lane-specific units.
// ---------------------------------------------------------------------------

TEST(ImmediateLane, RoutesOnZeroDelay) {
  Simulation sim;
  std::vector<int> order;
  sim.After(0, [&] { order.push_back(1); });
  sim.At(sim.Now(), [&] { order.push_back(2); });  // same thing, absolute
  sim.After(Us(1), [&] { order.push_back(3); });   // near future: heap
  const auto st = sim.stats();
  EXPECT_EQ(st.immediate_scheduled, 2u);
  EXPECT_EQ(st.immediate_occupancy, 2u);
  EXPECT_EQ(sim.pending_events(), 3u);
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.stats().immediate_occupancy, 0u);
}

TEST(ImmediateLane, DisabledLaneUsesHeap) {
  Simulation sim;
  sim.SetImmediateLaneEnabled(false);
  EXPECT_FALSE(sim.immediate_lane_enabled());
  int fired = 0;
  sim.After(0, [&] { ++fired; });
  EXPECT_EQ(sim.stats().immediate_scheduled, 0u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(ImmediateLane, CancelInLaneNeverTouchesHeap) {
  Simulation sim;
  bool fired = false;
  EventHandle h = sim.After(0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_EQ(sim.pending_events(), 1u);
  h.Cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(sim.pending_events(), 0u);
  const auto st = sim.stats();
  EXPECT_EQ(st.immediate_cancelled, 1u);
  EXPECT_EQ(st.immediate_occupancy, 0u);
  EXPECT_EQ(st.cancelled_popped + st.cancelled_purged, 0u);
  sim.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(ImmediateLane, CancelledRingTombstoneCannotKillRecycledSlot) {
  Simulation sim;
  bool a_fired = false;
  bool b_fired = false;
  EventHandle a = sim.After(0, [&] { a_fired = true; });
  a.Cancel();  // frees the slot while the ring entry still exists
  // Reuses the freed slot with a fresh generation; the stale ring entry must
  // be dropped at the lane front without affecting this event.
  EventHandle b = sim.After(0, [&] { b_fired = true; });
  sim.RunAll();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
  EXPECT_EQ(sim.events_fired(), 1u);
  EXPECT_FALSE(b.pending());
}

TEST(ImmediateLane, CallbackCanCancelLaterLaneEntryAtSameTimestamp) {
  Simulation sim;
  bool b_fired = false;
  EventHandle b;
  sim.After(0, [&] { b.Cancel(); });  // runs first, kills b while in-lane
  b = sim.After(0, [&] { b_fired = true; });
  sim.RunAll();
  EXPECT_FALSE(b_fired);
  EXPECT_EQ(sim.events_fired(), 1u);
  EXPECT_EQ(sim.stats().immediate_cancelled, 1u);
}

TEST(ImmediateLane, ZeroDelayChainsDoNotAdvanceTime) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 1000) sim.After(0, chain);
  };
  sim.At(Us(5), chain);
  sim.RunAll();
  EXPECT_EQ(depth, 1000);
  EXPECT_EQ(sim.Now(), Us(5));
  EXPECT_GE(sim.stats().immediate_scheduled, 999u);
}

TEST(ImmediateLane, TiesWithHeapAndWheelFollowScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  const SimTime t = Ms(10);
  sim.At(t, EventClass::kTimer, [&] { order.push_back(1); });  // wheel
  sim.At(t, [&] {                                              // heap later
    order.push_back(2);
    sim.After(0, [&] { order.push_back(4); });  // lane, newest seq: last
  });
  sim.At(t, [&] { order.push_back(3); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.Now(), t);
}

TEST(ImmediateLane, EveryNeverEntersLane) {
  Simulation sim;
  int fires = 0;
  EventHandle h = sim.Every(Us(1), [&] { ++fires; });
  sim.RunUntil(Us(10));
  EXPECT_EQ(fires, 10);  // fired at 1..10 us (RunUntil is inclusive)
  EXPECT_EQ(sim.stats().immediate_scheduled, 0u);
  h.Cancel();
}

TEST(ImmediateLane, StatsSurviveHeavyChurn) {
  Simulation sim;
  std::uint64_t fired = 0;
  for (int round = 0; round < 100; ++round) {
    EventHandle victims[4];
    for (int i = 0; i < 16; ++i) {
      EventHandle h = sim.After(0, [&] { ++fired; });
      if (i % 4 == 0) victims[i / 4] = h;
    }
    for (EventHandle& v : victims) v.Cancel();
    sim.RunAll();
  }
  const auto st = sim.stats();
  EXPECT_EQ(st.immediate_scheduled, 1600u);
  EXPECT_EQ(st.immediate_cancelled, 400u);
  EXPECT_EQ(st.immediate_occupancy, 0u);
  EXPECT_EQ(fired, 1200u);
  EXPECT_EQ(sim.events_fired(), 1200u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace grunt::sim
