#include "cloud/defense.h"

#include <gtest/gtest.h>

#include "attack/grunt_attack.h"
#include "attack/sim_target_client.h"
#include "fixtures.h"
#include "microsvc/cluster.h"
#include "trace/dependency.h"
#include "workload/workload.h"

namespace grunt::cloud {
namespace {

TEST(CorrelationDefense, RejectsBadConfig) {
  sim::Simulation sim;
  const auto app = grunt::testing::DisjointApp();
  microsvc::Cluster cluster(sim, app, 1);
  CorrelationDefense::Config bad;
  bad.bucket = 0;
  EXPECT_THROW(CorrelationDefense(cluster, nullptr, bad),
               std::invalid_argument);
  bad = {};
  bad.flag_fraction = 0;
  EXPECT_THROW(CorrelationDefense(cluster, nullptr, bad),
               std::invalid_argument);
}

TEST(CorrelationDefense, PoissonTrafficProducesNoVolleys) {
  sim::Simulation sim;
  const auto app = grunt::testing::DisjointApp(
      microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 2);
  CorrelationDefense defense(cluster, nullptr, {});
  defense.Start();
  workload::OpenLoopSource::Config wl;
  wl.rate = 100;  // 10 per type-bucket on average — far below threshold 20
  wl.mix = workload::RequestMix::Uniform({0, 1});
  workload::OpenLoopSource src(cluster, wl, 2);
  src.Start();
  sim.RunUntil(Sec(60));
  EXPECT_EQ(defense.Volleys(0, Sec(60)).volleys, 0u);
  EXPECT_TRUE(defense.FlaggedSessions(0, Sec(60)).empty());
}

TEST(CorrelationDefense, SynchronizedVolleyIsDetectedAndConfirmed) {
  sim::Simulation sim;
  const auto app = grunt::testing::DisjointApp();
  microsvc::Cluster cluster(sim, app, 3);
  ResourceMonitor fine(cluster, {Ms(100), "fine"});
  fine.Start();
  CorrelationDefense defense(cluster, &fine, {});
  defense.Start();
  // 30 synchronized heavy requests of type 0 at t=1s (distinct bots).
  sim.At(Sec(1), [&] {
    for (int i = 0; i < 30; ++i) {
      cluster.Submit(0, microsvc::RequestClass::kAttack, true,
                     9000 + static_cast<std::uint64_t>(i));
    }
  });
  sim.RunUntil(Sec(5));
  const auto stats = defense.Volleys(0, Sec(5));
  EXPECT_EQ(stats.volleys, 1u);
  EXPECT_EQ(stats.confirmed, 1u);  // the volley saturates worker-x
}

TEST(CorrelationDefense, FlagsBurstBotsNotUsers) {
  sim::Simulation sim;
  const auto app = grunt::testing::TwoPathParallelApp(
      microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 4);
  ResourceMonitor fine(cluster, {Ms(100), "fine"});
  fine.Start();
  CorrelationDefense defense(cluster, &fine, {});
  defense.Start();

  // Background users (Poisson, session ids 2'000'000+).
  workload::OpenLoopSource::Config wl;
  wl.rate = 120;
  wl.mix = workload::RequestMix::Uniform({0, 1});
  workload::OpenLoopSource users(cluster, wl, 4);
  users.Start();

  // Attacker volleys every 800 ms, 25 bots each from a reused pool of 60
  // (the real farm reuses bots once their IDS spacing elapses).
  std::uint64_t next_bot = 0;
  for (SimTime t = Sec(5); t < Sec(25); t += Ms(800)) {
    sim.At(t, [&cluster, &next_bot] {
      for (int i = 0; i < 25; ++i) {
        cluster.Submit(0, microsvc::RequestClass::kAttack, true,
                       9'000'000 + (next_bot++ % 60));
      }
    });
  }
  sim.RunUntil(Sec(30));

  std::size_t flagged_bots = 0, flagged_users = 0;
  for (const auto& v : defense.FlaggedSessions(0, Sec(30))) {
    (v.client_id >= 9'000'000 ? flagged_bots : flagged_users) += 1;
  }
  EXPECT_GT(flagged_bots, 50u);   // most of the 60-bot pool
  EXPECT_EQ(flagged_users, 0u);   // no legitimate session flagged
  const auto stats = defense.Volleys(0, Sec(30));
  EXPECT_GE(stats.volleys, 20u);
  EXPECT_EQ(stats.confirmed, stats.volleys);
}

TEST(CorrelationDefense, AnalyzeSortsByParticipation) {
  sim::Simulation sim;
  const auto app = grunt::testing::DisjointApp();
  microsvc::Cluster cluster(sim, app, 5);
  CorrelationDefense defense(cluster, nullptr, {});
  defense.Start();
  // Client 1: three requests, all inside the volley. Client 2: mixed
  // (1 volley + 3 spread out). One-shot filler bots pad the volley.
  sim.At(Sec(1), [&] {
    for (int i = 0; i < 24; ++i) {
      cluster.Submit(0, microsvc::RequestClass::kAttack, true,
                     500 + static_cast<std::uint64_t>(i));
    }
    for (int i = 0; i < 3; ++i) {
      cluster.Submit(0, microsvc::RequestClass::kAttack, true, 1);
    }
    cluster.Submit(0, microsvc::RequestClass::kAttack, true, 2);
  });
  for (int k = 0; k < 3; ++k) {
    sim.At(Sec(5 + 4 * k), [&] {
      cluster.Submit(1, microsvc::RequestClass::kLegit, false, 2);
    });
  }
  sim.RunUntil(Sec(20));
  const auto verdicts = defense.Analyze(0, Sec(20));
  // Only clients 1 and 2 have >= min_requests; one-shot fillers are not
  // judged (exactly the policy that keeps single-request sessions out).
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts.front().client_id, 1u);
  EXPECT_DOUBLE_EQ(verdicts.front().participation, 1.0);
  EXPECT_TRUE(verdicts.front().flagged);
  EXPECT_EQ(verdicts.back().client_id, 2u);
  EXPECT_EQ(verdicts.back().requests, 4u);
  EXPECT_EQ(verdicts.back().in_volley, 1u);
  EXPECT_FALSE(verdicts.back().flagged);
}

TEST(CorrelationDefense, StoppedDefenseRecordsNothing) {
  sim::Simulation sim;
  const auto app = grunt::testing::DisjointApp();
  microsvc::Cluster cluster(sim, app, 6);
  CorrelationDefense defense(cluster, nullptr, {});
  // never started
  sim.At(Sec(1), [&] {
    for (int i = 0; i < 30; ++i) {
      cluster.Submit(0, microsvc::RequestClass::kAttack, true, 7);
    }
  });
  sim.RunUntil(Sec(3));
  EXPECT_EQ(defense.Volleys(0, Sec(3)).volleys, 0u);
  EXPECT_TRUE(defense.Analyze(0, Sec(3)).empty());
}

TEST(CorrelationDefense, EndToEndAgainstRealGruntCampaign) {
  // The detector against the actual attack implementation (not a synthetic
  // volley): bots should dominate the flagged set.
  sim::Simulation sim;
  const auto app = grunt::testing::TwoPathParallelApp(
      microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 7);
  ResourceMonitor fine(cluster, {Ms(100), "fine"});
  fine.Start();
  CorrelationDefense defense(cluster, &fine, {});
  defense.Start();
  workload::OpenLoopSource::Config wl;
  wl.rate = 120;
  wl.mix = workload::RequestMix::Uniform({0, 1});
  workload::OpenLoopSource users(cluster, wl, 7);
  users.Start();
  sim.RunUntil(Sec(5));

  attack::SimTargetClient client(cluster);
  attack::ProfileResult profile;
  profile.urls = client.CrawlUrls();
  profile.candidates = {0, 1};
  profile.baseline_rt_ms = {15.0, 15.0};
  trace::PairwiseDep dep;
  dep.a = 0;
  dep.b = 1;
  dep.type = trace::DepType::kParallel;
  profile.pairs = {dep};
  profile.groups = {{0, 1}};
  attack::GruntConfig cfg;
  cfg.commander.target_tmin_ms = 400.0;
  attack::GruntAttack grunt(client, cfg);
  bool done = false;
  SimTime attack_start = 0;
  grunt.OnAttackPhaseStart([&](SimTime at) { attack_start = at; });
  grunt.RunWithProfile(profile, Sec(30),
                       [&](const attack::GruntReport&) { done = true; });
  while (!done && sim.Now() < Sec(1000)) sim.RunUntil(sim.Now() + Sec(5));
  ASSERT_TRUE(done);

  std::size_t flagged_bots = 0, flagged_users = 0;
  for (const auto& v :
       defense.FlaggedSessions(attack_start, attack_start + Sec(30))) {
    // BotFarm ids start at 9'000'000 (its default id base).
    (v.client_id >= 9'000'000 ? flagged_bots : flagged_users) += 1;
  }
  EXPECT_GT(flagged_bots, 20u);
  EXPECT_LT(flagged_users, 5u);
}

}  // namespace
}  // namespace grunt::cloud
