#include "trace/tracer.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "microsvc/cluster.h"

namespace grunt::trace {
namespace {

using grunt::testing::SingleChainApp;

TEST(Tracer, AssemblesSpansIntoCompleteTraces) {
  sim::Simulation sim;
  const auto app = SingleChainApp();
  microsvc::Cluster cluster(sim, app, 1);
  Tracer tracer;
  tracer.Attach(cluster.telemetry());
  std::uint64_t rid = cluster.Submit(0, microsvc::RequestClass::kLegit,
                                     false, 1);
  sim.RunAll();
  EXPECT_EQ(tracer.span_count(), 3u);
  const RequestTrace* t = tracer.Find(rid);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->complete());
  ASSERT_EQ(t->hops.size(), 3u);
  // Hops arrive in path order with sane timestamps.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t->hops[i].hop_index, i);
    EXPECT_LE(t->hops[i].arrived, t->hops[i].slot_granted);
    EXPECT_LT(t->hops[i].slot_granted, t->hops[i].finished);
  }
  EXPECT_LT(t->hops[0].arrived, t->hops[1].arrived);
  // Hop 0's span closes last (it replies to the client).
  EXPECT_GT(t->hops[0].finished, t->hops[2].finished);
  EXPECT_EQ(tracer.CompletedTraces().size(), 1u);
}

TEST(Tracer, ArrivalRateCountsWindowedSpans) {
  sim::Simulation sim;
  const auto app = SingleChainApp();
  microsvc::Cluster cluster(sim, app, 1);
  Tracer tracer;
  tracer.Attach(cluster.telemetry());
  for (int i = 0; i < 10; ++i) {
    sim.At(Sec(i), [&] {
      cluster.Submit(0, microsvc::RequestClass::kLegit, false, 1);
    });
  }
  sim.RunAll();
  const auto s1 = *app.FindService("s1");
  EXPECT_NEAR(tracer.ArrivalRate(s1, 0, Sec(10)), 1.0, 0.01);
  EXPECT_DOUBLE_EQ(tracer.ArrivalRate(s1, Sec(100), Sec(110)), 0.0);
  EXPECT_DOUBLE_EQ(tracer.ArrivalRate(s1, Sec(10), Sec(10)), 0.0);
  tracer.Clear();
  EXPECT_EQ(tracer.CompletedTraces().size(), 0u);
}

TEST(CriticalPath, ChainIsItsOwnCriticalPath) {
  ExecutionDag dag;
  dag.nodes = {{0, Ms(1)}, {1, Ms(5)}, {2, Ms(2)}};
  dag.edges = {{1}, {2}, {}};
  EXPECT_EQ(CriticalPath(dag), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(CriticalPath, PicksLongestBranch) {
  // Fig 2(b): A -> {B, D}; B -> C. Durations make A-B-C dominate.
  ExecutionDag dag;
  dag.nodes = {{0, Ms(2)}, {1, Ms(4)}, {2, Ms(5)}, {3, Ms(3)}};
  dag.edges = {{1, 3}, {2}, {}, {}};
  EXPECT_EQ(CriticalPath(dag), (std::vector<std::size_t>{0, 1, 2}));
  // Make branch D dominate instead.
  dag.nodes[3].duration = Ms(20);
  EXPECT_EQ(CriticalPath(dag), (std::vector<std::size_t>{0, 3}));
}

TEST(CriticalPath, TieBreaksDeterministically) {
  ExecutionDag dag;
  dag.nodes = {{0, Ms(1)}, {1, Ms(2)}, {2, Ms(2)}, {3, Ms(1)}};
  dag.edges = {{1, 2}, {3}, {3}, {}};
  // Both 0-1-3 and 0-2-3 have length 4; smaller predecessor index wins.
  EXPECT_EQ(CriticalPath(dag), (std::vector<std::size_t>{0, 1, 3}));
}

TEST(CriticalPath, EmptyAndSingleNode) {
  EXPECT_TRUE(CriticalPath({}).empty());
  ExecutionDag one;
  one.nodes = {{0, Ms(3)}};
  one.edges = {{}};
  EXPECT_EQ(CriticalPath(one), (std::vector<std::size_t>{0}));
}

TEST(CriticalPath, DetectsCycles) {
  ExecutionDag dag;
  dag.nodes = {{0, Ms(1)}, {1, Ms(1)}};
  dag.edges = {{1}, {0}};
  EXPECT_THROW(CriticalPath(dag), std::invalid_argument);
}

TEST(CriticalPath, RejectsDanglingEdges) {
  ExecutionDag dag;
  dag.nodes = {{0, Ms(1)}};
  dag.edges = {{5}};
  EXPECT_THROW(CriticalPath(dag), std::invalid_argument);
}

TEST(Tracer, QueueWaitVisibleInSpansUnderContention) {
  sim::Simulation sim;
  const auto app = SingleChainApp();
  microsvc::Cluster cluster(sim, app, 1);
  Tracer tracer;
  tracer.Attach(cluster.telemetry());
  // 12 simultaneous requests vs s0's 8 slots: the last ones wait for slots.
  std::vector<std::uint64_t> rids;
  for (int i = 0; i < 12; ++i) {
    rids.push_back(cluster.Submit(0, microsvc::RequestClass::kLegit, false, 1));
  }
  sim.RunAll();
  SimDuration max_wait = 0;
  for (auto rid : rids) {
    const RequestTrace* t = tracer.Find(rid);
    ASSERT_NE(t, nullptr);
    max_wait = std::max(max_wait, t->hops[0].queue_wait());
  }
  EXPECT_GT(max_wait, 0);
}

}  // namespace
}  // namespace grunt::trace
