// End-to-end integration: the full operator stack (workload, monitors,
// autoscaler, IDS) against the full attacker stack (profile-informed
// campaign), asserting the paper's headline properties on a scaled-down
// SocialNetwork deployment:
//   * damage: legit mean RT degrades by a large factor;
//   * stealth: no autoscaling actions, no attributable IDS alerts,
//     coarse-monitor utilization stays moderate.

#include <gtest/gtest.h>

#include "apps/socialnetwork.h"
#include "attack/grunt_attack.h"
#include "attack/sim_target_client.h"
#include "cloud/autoscaler.h"
#include "cloud/ids.h"
#include "cloud/monitor.h"
#include "microsvc/cluster.h"
#include "trace/dependency.h"
#include "workload/workload.h"

namespace grunt {
namespace {

attack::ProfileResult TruthProfile(const microsvc::Application& app,
                                   const workload::RequestMix& mix,
                                   double total_rate) {
  attack::ProfileResult profile;
  std::vector<double> rates(app.request_type_count(), 0.0);
  double total_w = 0;
  for (double w : mix.weights) total_w += w;
  for (std::size_t i = 0; i < mix.types.size(); ++i) {
    rates[static_cast<std::size_t>(mix.types[i])] =
        total_rate * mix.weights[i] / total_w;
  }
  profile.baseline_rt_ms.assign(app.request_type_count(), 20.0);
  for (auto t : app.PublicDynamicTypes()) {
    profile.candidates.push_back(t);
    attack::PublicUrl url;
    url.url_id = t;
    url.path = "/" + app.request_type(t).name;
    profile.urls.push_back(url);
  }
  trace::GroundTruth truth(app, rates);
  trace::DependencyGroups groups(app.request_type_count());
  for (const auto& dep : truth.AllPairs()) {
    if (trace::IsDependent(dep.type)) {
      profile.pairs.push_back(dep);
      groups.Union(dep.a, dep.b);
    }
  }
  for (const auto& g : groups.Groups()) {
    if (!app.request_type(g.front()).is_static || g.size() > 1) {
      profile.groups.push_back(g);
    }
  }
  return profile;
}

TEST(Integration, GruntCampaignIsDamagingYetStealthy) {
  sim::Simulation sim;
  const auto app = apps::MakeSocialNetwork({});
  microsvc::Cluster cluster(sim, app, 33);

  workload::ClosedLoopWorkload::Config wl;
  wl.users = 7000;
  wl.navigator = apps::SocialNetworkNavigator(app);
  workload::ClosedLoopWorkload users(cluster, wl, 33);
  users.Start();

  cloud::ResourceMonitor cloudwatch(cluster, {Sec(1), "cloudwatch"});
  cloud::ResponseTimeMonitor rt(cluster, {Sec(1), "rt"});
  cloud::AutoScaler scaler(cluster, cloudwatch, {});
  cloud::Ids ids(cluster, &cloudwatch, nullptr, {});
  cloudwatch.Start();
  rt.Start();
  scaler.Start();
  ids.Start();

  sim.RunUntil(Sec(40));
  const Samples baseline = rt.LegitWindow(Sec(15), Sec(40));
  ASSERT_GT(baseline.count(), 10'000u);
  ASSERT_LT(baseline.mean(), 60.0);

  attack::SimTargetClient client(cluster);
  attack::GruntConfig cfg;
  attack::GruntAttack grunt(client, cfg);
  const auto profile =
      TruthProfile(app, apps::SocialNetworkMix(app), 1000.0);

  bool done = false;
  SimTime attack_start = 0;
  grunt.OnAttackPhaseStart([&](SimTime at) { attack_start = at; });
  grunt.RunWithProfile(profile, Sec(60),
                       [&](const attack::GruntReport&) { done = true; });
  while (!done && sim.Now() < Sec(2000)) sim.RunUntil(sim.Now() + Sec(10));
  ASSERT_TRUE(done);

  // --- damage ---
  const Samples attacked =
      rt.LegitWindow(attack_start + Sec(5), attack_start + Sec(60));
  ASSERT_GT(attacked.count(), 1'000u);
  EXPECT_GT(attacked.mean(), 8.0 * baseline.mean());
  EXPECT_GT(attacked.Percentile(95), 1000.0);

  // --- stealth ---
  // No scale action fired during the attack window.
  for (const auto& action : scaler.actions()) {
    EXPECT_LT(action.at, attack_start)
        << "autoscaler reacted to the attack: service "
        << app.service(action.service).name;
  }
  // No IDS alert attributable to attacker sessions.
  EXPECT_EQ(ids.attributed_attack_alerts(), 0u);
  EXPECT_EQ(ids.CountAlerts(cloud::AlertRule::kResourceSaturation), 0u);
  // Coarse 1 s monitor never shows sustained saturation on any service.
  for (std::size_t i = 0; i < cluster.service_count(); ++i) {
    const auto sid = static_cast<microsvc::ServiceId>(i);
    EXPECT_LT(cloudwatch.cpu_util(sid).WindowMean(attack_start + Sec(5),
                                                  attack_start + Sec(60)),
              0.85)
        << app.service(sid).name;
  }

  // --- footprint ---
  const auto& report = grunt.report();
  EXPECT_GE(report.groups.size(), 3u);
  EXPECT_GT(report.bots_used, 50u);
  // The attack's mean created millibottleneck respects the stealth cap
  // (with feedback slack).
  for (const auto& g : report.groups) {
    if (g.bursts.size() > 5) {
      EXPECT_LT(g.MeanPmbMs(), 650.0);
    }
  }
}

TEST(Integration, AutoscalerDefeatsNaiveSustainedOverload) {
  // Contrast case: a sustained brute-force overload IS seen by the coarse
  // monitor and triggers scaling (and the saturation alert) — showing the
  // defenses work and Grunt's evasion is the interesting part.
  sim::Simulation sim;
  const auto app = apps::MakeSocialNetwork({});
  microsvc::Cluster cluster(sim, app, 34);
  cloud::ResourceMonitor cloudwatch(cluster, {Sec(1), "cw"});
  cloud::AutoScaler::Config scfg;
  scfg.provision_delay = Sec(5);
  cloud::AutoScaler scaler(cluster, cloudwatch, scfg);
  cloud::Ids ids(cluster, &cloudwatch, nullptr, {});
  cloudwatch.Start();
  scaler.Start();
  ids.Start();

  // Saturating open-loop flood on one path.
  workload::OpenLoopSource::Config wl;
  wl.rate = 400;  // text-service capacity is ~222/s
  wl.mix = workload::RequestMix::Uniform(
      {*app.FindRequestType("compose/text")});
  workload::OpenLoopSource flood(cluster, wl, 34);
  flood.Start();
  sim.RunUntil(Sec(90));

  EXPECT_GE(scaler.scale_up_count(), 1u);
  EXPECT_GE(ids.CountAlerts(cloud::AlertRule::kResourceSaturation), 1u);
}

}  // namespace
}  // namespace grunt
