#include "telemetry/bus.h"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "cloud/autoscaler.h"
#include "cloud/monitor.h"
#include "fixtures.h"
#include "telemetry/metrics.h"
#include "util/json.h"

namespace grunt::telemetry {
namespace {

using grunt::testing::SingleChainApp;
using grunt::testing::Svc;
using grunt::testing::Type;
using microsvc::Application;
using microsvc::RequestClass;
using microsvc::ServiceId;

RequestSubmit AnySubmit() { return RequestSubmit{0, RequestClass::kLegit, 1, 0}; }

// ---------------------------------------------------------------------------
// TelemetryBus channel semantics.

TEST(TelemetryBus, FanOutInRegistrationOrder) {
  TelemetryBus bus;
  EXPECT_FALSE(bus.submit().has_subscribers());
  std::vector<int> order;
  bus.submit().Subscribe([&](const RequestSubmit&) { order.push_back(1); });
  bus.submit().Subscribe([&](const RequestSubmit&) { order.push_back(2); });
  bus.submit().Subscribe([&](const RequestSubmit&) { order.push_back(3); });
  EXPECT_TRUE(bus.submit().has_subscribers());
  bus.submit().Publish(AnySubmit());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TelemetryBus, UnsubscribeStopsDeliveryAndIsIdempotent) {
  TelemetryBus bus;
  std::vector<int> order;
  const auto a =
      bus.submit().Subscribe([&](const RequestSubmit&) { order.push_back(1); });
  bus.submit().Subscribe([&](const RequestSubmit&) { order.push_back(2); });
  EXPECT_TRUE(bus.submit().Unsubscribe(a));
  EXPECT_FALSE(bus.submit().Unsubscribe(a));  // already gone
  EXPECT_TRUE(bus.submit().has_subscribers());
  bus.submit().Publish(AnySubmit());
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(TelemetryBus, MidDispatchChangesApplyToTheNextPublish) {
  // A subscriber that unsubscribes a later entry and adds a new one while a
  // publish is in flight: the tombstoned entry must be skipped in THIS
  // dispatch, the new entry must only fire from the NEXT one.
  TelemetryBus bus;
  std::vector<std::string> order;
  SubscriptionId b_id = 0;
  bus.submit().Subscribe([&](const RequestSubmit&) {
    order.push_back("a");
    if (b_id != 0) {
      EXPECT_TRUE(bus.submit().Unsubscribe(b_id));
      b_id = 0;
      bus.submit().Subscribe([&](const RequestSubmit&) {
        order.push_back("c");
      });
    }
  });
  b_id = bus.submit().Subscribe([&](const RequestSubmit&) {
    order.push_back("b");
  });
  bus.submit().Publish(AnySubmit());
  EXPECT_EQ(order, (std::vector<std::string>{"a"}));
  bus.submit().Publish(AnySubmit());
  EXPECT_EQ(order, (std::vector<std::string>{"a", "a", "c"}));
}

TEST(TelemetryBus, PublishWithoutSubscribersIsANoop) {
  TelemetryBus bus;
  EXPECT_FALSE(bus.completion().has_subscribers());
  bus.completion().Publish(CompletionRecord{});
  const auto id = bus.completion().Subscribe([](const CompletionRecord&) {});
  EXPECT_TRUE(bus.completion().Unsubscribe(id));
  EXPECT_FALSE(bus.completion().has_subscribers());
  bus.completion().Publish(CompletionRecord{});
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

TEST(MetricsRegistry, InternsHandlesAndCountsExactly) {
  MetricsRegistry reg;
  const auto c = reg.Counter("requests.total");
  EXPECT_EQ(reg.Counter("requests.total"), c);  // same name, same handle
  reg.Add(c);
  reg.Add(c, 41);
  EXPECT_EQ(reg.counter_value(c), 42u);

  const auto g = reg.Gauge("depth");
  reg.Set(g, 7.5);
  EXPECT_EQ(reg.ReadGauge(g), 7.5);

  double source_value = 3.0;
  const auto cb = reg.Gauge("live", [&source_value] { return source_value; });
  source_value = 9.0;
  EXPECT_EQ(reg.ReadGauge(cb), 9.0);  // evaluated at read time

  EXPECT_EQ(reg.Find("requests.total"), c);
  EXPECT_EQ(reg.Find("missing"), MetricsRegistry::kInvalidId);
}

TEST(MetricsRegistry, KindMismatchOnInternThrows) {
  MetricsRegistry reg;
  reg.Counter("x");
  EXPECT_THROW(reg.Gauge("x"), json::Error);
  EXPECT_THROW(reg.Histogram("x", {1.0}), json::Error);
}

TEST(MetricsRegistry, HistogramBucketsAndSnapshotAreByteStable) {
  MetricsRegistry reg;
  reg.Add(reg.Counter("a.b"), 3);
  reg.Set(reg.Gauge("a.g"), 2.5);
  const auto h = reg.Histogram("rt_ms", {1.0, 10.0});
  reg.Observe(h, 0.5);
  reg.Observe(h, 5.0);
  reg.Observe(h, 100.0);  // overflow bucket
  EXPECT_EQ(reg.histogram_count(h), 3u);
  EXPECT_EQ(reg.histogram_sum(h), 105.5);

  const std::string expected =
      "{\n"
      "  \"a\": {\n"
      "    \"b\": 3,\n"
      "    \"g\": 2.5\n"
      "  },\n"
      "  \"rt_ms\": {\n"
      "    \"count\": 3,\n"
      "    \"sum\": 105.5,\n"
      "    \"p95\": 10,\n"
      "    \"p99\": 10,\n"
      "    \"buckets\": {\n"
      "      \"le_1\": 1,\n"
      "      \"le_10\": 1,\n"
      "      \"le_inf\": 1\n"
      "    }\n"
      "  }\n"
      "}";
  EXPECT_EQ(reg.SnapshotJson(), expected);
  EXPECT_EQ(reg.SnapshotJson(), reg.SnapshotJson());  // byte-stable
}

TEST(MetricsRegistry, HistogramQuantileInterpolatesWithinBucket) {
  MetricsRegistry reg;
  const auto h = reg.Histogram("lat", {10.0, 20.0, 30.0});
  for (int i = 0; i < 50; ++i) reg.Observe(h, 5.0);    // le_10
  for (int i = 0; i < 30; ++i) reg.Observe(h, 15.0);   // le_20
  for (int i = 0; i < 20; ++i) reg.Observe(h, 25.0);   // le_30
  // target rank 50 exhausts the first bucket exactly: its upper edge.
  EXPECT_DOUBLE_EQ(reg.histogram_quantile(h, 0.5), 10.0);
  // rank 95 sits 15/20 into the (20, 30] bucket.
  EXPECT_DOUBLE_EQ(reg.histogram_quantile(h, 0.95), 27.5);
  EXPECT_DOUBLE_EQ(reg.histogram_quantile(h, 0.99), 29.5);
  // Overflow clamps to the highest finite bound; empty histograms read 0.
  reg.Observe(h, 1000.0);
  EXPECT_DOUBLE_EQ(reg.histogram_quantile(h, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(
      reg.histogram_quantile(reg.Histogram("empty", {1.0}), 0.95), 0.0);
}

TEST(MetricsRegistry, DottedPathCollisionThrowsOnSnapshot) {
  MetricsRegistry reg;
  reg.Counter("x");
  reg.Counter("x.y");  // "x" is both a leaf and an interior node
  EXPECT_THROW(reg.Snapshot(), json::Error);
}

// ---------------------------------------------------------------------------
// Cluster/service emission through the bus.

TEST(TelemetryPlane, QueueChannelReportsEnqueuesAndRejections) {
  // One worker thread, queue bound 1: of three simultaneous arrivals, the
  // first runs, the second waits (kEnqueued), the third sheds (kRejected).
  Application::Builder b;
  b.SetName("q").SetServiceTimeDist(microsvc::ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 64, 8));
  auto wspec = Svc("w", 1, 1);
  wspec.max_queue_per_replica = 1;
  const ServiceId w = b.AddService(wspec);
  b.AddRequestType(Type("t", {{gw, Us(100), 0}, {w, Ms(5), 0}}));
  const Application app = std::move(b).Build();

  sim::Simulation sim;
  microsvc::Cluster cluster(sim, app, 1);
  std::vector<QueueEvent> events;
  cluster.telemetry().queue_depth().Subscribe(
      [&](const QueueEvent& e) { events.push_back(e); });
  for (int i = 0; i < 3; ++i) {
    cluster.Submit(0, RequestClass::kLegit, false, 1);
  }
  sim.RunAll();

  std::size_t enqueued = 0, rejected = 0;
  for (const auto& e : events) {
    if (e.service != w) continue;
    if (e.kind == QueueEvent::Kind::kEnqueued) {
      ++enqueued;
      EXPECT_EQ(e.slots_in_use, 1);
      EXPECT_GE(e.waiting, 1);
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(enqueued, 1u);
  EXPECT_EQ(rejected, 1u);
  EXPECT_EQ(cluster.service(w).rejected_arrivals(), 1);
}

TEST(TelemetryPlane, BreakerChannelReportsTransitions) {
  // Same schedule as the RpcPolicy breaker test: two timeouts open the
  // per-caller breaker; the half-open trial's failure re-opens it.
  Application::Builder b;
  b.SetName("breaker")
      .SetServiceTimeDist(microsvc::ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 64, 8));
  auto wspec = Svc("w", 1, 1);
  wspec.breaker_threshold = 2;
  wspec.breaker_cooldown = Ms(100);
  const ServiceId w = b.AddService(wspec);
  microsvc::RpcPolicy p;
  p.timeout = Ms(10);
  auto t = Type("t", {{gw, Us(100), 0}, {w, Ms(50), 0}});
  t.hops[1].rpc = p;
  b.AddRequestType(t);
  const Application app = std::move(b).Build();

  sim::Simulation sim;
  microsvc::Cluster cluster(sim, app, 1);
  std::vector<BreakerTransition> transitions;
  cluster.telemetry().breaker().Subscribe(
      [&](const BreakerTransition& e) { transitions.push_back(e); });
  for (const SimTime at : {SimTime{0}, Ms(30), Ms(60), Ms(200), Ms(220)}) {
    sim.At(at, [&cluster] {
      cluster.Submit(0, RequestClass::kLegit, false, 1);
    });
  }
  sim.RunAll();

  ASSERT_GE(transitions.size(), 2u);
  for (const auto& tr : transitions) {
    EXPECT_EQ(tr.service, w);
    EXPECT_EQ(tr.caller, gw);
    EXPECT_TRUE(tr.open);  // this schedule only opens/re-opens, never closes
  }
  // First transition: the second timeout (submitted at 30 ms, ~10 ms
  // timeout) trips the threshold.
  EXPECT_GE(transitions[0].at, Ms(40));
  EXPECT_LT(transitions[0].at, Ms(45));
  EXPECT_EQ(transitions[0].consecutive_failures, 2);
}

// ---------------------------------------------------------------------------
// Monitor parity: the bus-fed gauges must reproduce direct polling exactly.

TEST(TelemetryPlane, ResourceMonitorMatchesDirectServiceSampling) {
  sim::Simulation sim;
  const Application app = SingleChainApp();
  microsvc::Cluster cluster(sim, app, 1);
  cloud::ResourceMonitor monitor(cluster, {Sec(1), "m"});
  monitor.Start();

  // Activity confined to [k+100ms, k+200ms] so nothing races the samples
  // taken at exact second boundaries.
  for (int k = 0; k < 5; ++k) {
    for (int i = 0; i < 20; ++i) {
      sim.At(Sec(k) + Ms(100) + i * Ms(1), [&cluster] {
        cluster.Submit(0, RequestClass::kLegit, false, 1);
      });
    }
  }

  const std::size_t n = cluster.service_count();
  std::vector<double> prev_busy(n, 0.0);
  std::vector<std::vector<double>> manual_util(n);
  for (int k = 1; k <= 5; ++k) {
    sim.RunUntil(Sec(k) + Us(1));
    for (std::size_t s = 0; s < n; ++s) {
      auto& svc = cluster.service(static_cast<ServiceId>(s));
      const double busy = static_cast<double>(svc.CumBusyCoreTime());
      const double window_core_us =
          static_cast<double>(svc.cores()) * static_cast<double>(Sec(1));
      double util = (busy - prev_busy[s]) / window_core_us;
      util = util < 0 ? 0 : (util > 1 ? 1 : util);
      prev_busy[s] = busy;
      manual_util[s].push_back(util);
    }
  }

  for (std::size_t s = 0; s < n; ++s) {
    const auto& series = monitor.cpu_util(static_cast<ServiceId>(s)).points();
    ASSERT_EQ(series.size(), manual_util[s].size());
    bool any_nonzero = false;
    for (std::size_t k = 0; k < series.size(); ++k) {
      EXPECT_EQ(series[k].time, Sec(static_cast<long long>(k) + 1));
      EXPECT_EQ(series[k].value, manual_util[s][k]);  // bit-identical
      any_nonzero = any_nonzero || series[k].value > 0;
    }
    EXPECT_TRUE(any_nonzero);  // the parity check must not be vacuous
  }
}

// ---------------------------------------------------------------------------
// AutoScaler: bounded action log + scale channel.

TEST(TelemetryPlane, AutoScalerBoundsActionLogAndPublishesScaleEvents) {
  sim::Simulation sim;
  const Application app = SingleChainApp();
  microsvc::Cluster cluster(sim, app, 1);
  cloud::ResourceMonitor monitor(cluster, {Sec(1), "m"});
  cloud::AutoScaler::Config cfg;
  cfg.window = Sec(3);
  cfg.provision_delay = Sec(1);
  cfg.cooldown = Sec(2);
  cloud::AutoScaler scaler(cluster, monitor, cfg);
  scaler.SetActionLogBound(1);
  EXPECT_EQ(scaler.action_log_bound(), 1u);
  std::vector<ScaleEvent> published;
  cluster.telemetry().scale().Subscribe(
      [&](const ScaleEvent& e) { published.push_back(e); });
  monitor.Start();
  scaler.Start();

  // Saturate s1 long enough for several scale-ups.
  const auto s1 = *app.FindService("s1");
  for (SimTime t = 0; t < Sec(40); t += Ms(100)) {
    sim.At(t, [&cluster, s1] {
      auto& svc = cluster.service(s1);
      const SimDuration burst = svc.cores() * Ms(100) / 2;
      svc.RunCpu(burst, [] {});
      svc.RunCpu(burst, [] {});
    });
  }
  sim.RunUntil(Sec(40));

  const std::size_t total = scaler.scale_up_count() + scaler.scale_down_count();
  ASSERT_GE(total, 3u);
  EXPECT_EQ(published.size(), total);  // every action hit the bus
  // The log is bounded: at most 2*bound retained, the rest counted.
  EXPECT_LE(scaler.actions().size(), 2u);
  EXPECT_EQ(scaler.actions_dropped() + scaler.actions().size(), total);
  // The retained entries are the most recent ones, in order.
  const auto& kept = scaler.actions();
  ASSERT_FALSE(kept.empty());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const auto& want = published[published.size() - kept.size() + i];
    EXPECT_EQ(kept[i].at, want.at);
    EXPECT_EQ(kept[i].delta, want.delta);
    EXPECT_EQ(kept[i].replicas_after, want.replicas_after);
  }
}

}  // namespace
}  // namespace grunt::telemetry
