#include "apps/hotelreservation.h"

#include <gtest/gtest.h>

#include "microsvc/cluster.h"
#include "sim/simulation.h"
#include "trace/dependency.h"
#include "util/stats.h"
#include "workload/workload.h"

namespace grunt::apps {
namespace {

std::vector<double> MixRates(const microsvc::Application& app,
                             std::int32_t users) {
  const auto mix = HotelReservationMix(app);
  std::vector<double> rates(app.request_type_count(), 0.0);
  double total_w = 0;
  for (double w : mix.weights) total_w += w;
  for (std::size_t i = 0; i < mix.types.size(); ++i) {
    rates[static_cast<std::size_t>(mix.types[i])] =
        static_cast<double>(users) / 7.0 * mix.weights[i] / total_w;
  }
  return rates;
}

TEST(HotelReservation, TopologyShape) {
  const auto app = MakeHotelReservation({});
  EXPECT_EQ(app.name(), "hotelreservation");
  EXPECT_GE(app.service_count(), 18u);
  EXPECT_EQ(app.PublicDynamicTypes().size(), 9u);
  for (const char* name : {"search", "reservation"}) {
    auto id = app.FindService(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_LE(app.service(*id).threads_per_replica, 32) << name;
  }
  EXPECT_THROW(MakeHotelReservation({0, 1.0,
                                     microsvc::ServiceTimeDist::kExponential}),
               std::invalid_argument);
}

TEST(HotelReservation, GroundTruthFormsTwoGroupsPlusSingletons) {
  const auto app = MakeHotelReservation({});
  trace::GroundTruth truth(app, MixRates(app, 5000));
  auto groups = trace::DependencyGroups::FromPairs(app.request_type_count(),
                                                   truth.AllPairs());
  std::size_t multi = 0, singleton = 0, largest = 0;
  for (const auto& g : groups.Groups()) {
    if (app.request_type(g.front()).is_static && g.size() == 1) continue;
    (g.size() > 1 ? multi : singleton) += 1;
    largest = std::max(largest, g.size());
  }
  EXPECT_EQ(multi, 2u);      // search + reservation fan-ins
  EXPECT_EQ(singleton, 2u);  // login, profile
  EXPECT_EQ(largest, 4u);    // search group carries the complex-search path

  // The complex search is the sequential upstream member of its group.
  const auto complex_search = *app.FindRequestType("search/complex");
  const auto nearby = *app.FindRequestType("search/nearby");
  EXPECT_EQ(truth.Classify(complex_search, nearby),
            trace::DepType::kSequentialAUp);
  // Across groups: no dependency.
  const auto book = *app.FindRequestType("reserve/book");
  EXPECT_EQ(truth.Classify(nearby, book), trace::DepType::kNone);
}

TEST(HotelReservation, BaselineHealthyAtReferenceLoad) {
  sim::Simulation sim;
  const auto app = MakeHotelReservation({});
  microsvc::Cluster cluster(sim, app, 8);
  workload::ClosedLoopWorkload::Config wl;
  wl.users = 5000;
  wl.navigator = HotelReservationNavigator(app);
  workload::ClosedLoopWorkload load(cluster, wl, 8);
  load.Start();
  sim.RunUntil(Sec(30));
  Samples rt;
  for (const auto& rec : cluster.completions()) {
    if (rec.start >= Sec(10) && rec.cls == microsvc::RequestClass::kLegit) {
      rt.Add(ToMillis(rec.end - rec.start));
    }
  }
  ASSERT_GT(rt.count(), 5'000u);
  EXPECT_LT(rt.mean(), 60.0);
  EXPECT_LT(cluster.in_flight(), 500u);
}

TEST(HotelReservation, MixAndNavigatorValidate) {
  const auto app = MakeHotelReservation({});
  EXPECT_NO_THROW(HotelReservationMix(app).Validate());
  EXPECT_NO_THROW(HotelReservationNavigator(app).Validate());
  EXPECT_EQ(HotelReservationMix(app).types.size(), 10u);  // incl. static
}

}  // namespace
}  // namespace grunt::apps
