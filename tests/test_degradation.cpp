// Graceful-degradation layer: per-downstream bulkheads, the adaptive
// concurrency limiter's AIMD dynamics, deadline-aware shedding (including
// its deepest-first preference), and the end-of-run drain invariants every
// mechanism must preserve. All topologies use deterministic service times so
// admission decisions and shed instants can be asserted exactly.

#include <gtest/gtest.h>

#include "fixtures.h"
#include "microsvc/cluster.h"
#include "microsvc/service.h"

namespace grunt::microsvc {
namespace {

using grunt::testing::Svc;
using grunt::testing::Type;

/// caller(hop 0) -> worker(hop 1) with a configurable caller-side gate.
Application GatedTwoHopApp(const ServiceSpec& caller_gate,
                           SimDuration worker_demand = Ms(50),
                           SimDuration deadline = 0,
                           RpcPolicy edge_policy = {}) {
  Application::Builder b;
  b.SetName("gated").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  ServiceSpec um = caller_gate;
  um.name = "um";
  um.threads_per_replica = 32;
  um.cores_per_replica = 8;
  const ServiceId caller = b.AddService(um);
  const ServiceId worker = b.AddService(Svc("worker", 32, 8));
  auto t = Type("t", {{caller, Us(100), 0}, {worker, worker_demand, 0}});
  t.deadline = deadline;
  t.hops[1].rpc = edge_policy;
  b.AddRequestType(t);
  return std::move(b).Build();
}

TEST(Degradation, BulkheadCapsInFlightCallsPerDownstream) {
  ServiceSpec gate;
  gate.bulkhead_per_downstream = 2;
  const Application app = GatedTwoHopApp(gate);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  for (int i = 0; i < 5; ++i) {
    cluster.Submit(0, RequestClass::kLegit, false, 1);
  }
  sim.RunAll();
  // Two calls fit the quota and complete; the other three fast-fail at the
  // caller without ever loading the worker.
  EXPECT_EQ(cluster.ok_count(), 2u);
  EXPECT_EQ(cluster.outcome_count(Outcome::kRejected), 3u);
  EXPECT_EQ(cluster.service(0).bulkhead_rejections(), 3);
  EXPECT_EQ(cluster.service(1).completed_bursts(), 2);
  EXPECT_EQ(cluster.service(0).downstream_in_flight(1), 0);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

TEST(Degradation, BulkheadRejectionIsRetryableAndUnchargesTheGate) {
  // Quota 1; the second request's first attempt is bulkhead-rejected, but
  // one retry (backoff 60ms > the 50ms occupancy) finds the gate free.
  ServiceSpec gate;
  gate.bulkhead_per_downstream = 1;
  RpcPolicy p;
  p.max_retries = 1;
  p.backoff_base = Ms(60);
  p.backoff_multiplier = 1.0;
  const Application app = GatedTwoHopApp(gate, Ms(50), 0, p);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord second;
  cluster.Submit(0, RequestClass::kLegit, false, 1);
  cluster.Submit(0, RequestClass::kLegit, false, 2,
                 [&](const CompletionRecord& r) { second = r; });
  sim.RunAll();
  EXPECT_EQ(cluster.ok_count(), 2u);
  EXPECT_EQ(second.outcome, Outcome::kOk);
  EXPECT_EQ(second.retries, 1);
  EXPECT_EQ(cluster.service(0).bulkhead_rejections(), 1);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

TEST(Degradation, BulkheadQuotaScalesWithLiveReplicas) {
  ServiceSpec gate;
  gate.bulkhead_per_downstream = 2;
  gate.initial_replicas = 2;
  gate.max_replicas = 16;
  const Application app = GatedTwoHopApp(gate);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  for (int i = 0; i < 6; ++i) {
    cluster.Submit(0, RequestClass::kLegit, false, 1);
  }
  sim.RunAll();
  // 2 replicas x quota 2 = 4 concurrent calls into the worker.
  EXPECT_EQ(cluster.ok_count(), 4u);
  EXPECT_EQ(cluster.outcome_count(Outcome::kRejected), 2u);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

TEST(Degradation, AdaptiveLimiterAimdDynamics) {
  sim::Simulation sim;
  ServiceSpec spec;
  spec.name = "caller";
  spec.adaptive_limit.enabled = true;
  spec.adaptive_limit.min_limit = 2;
  spec.adaptive_limit.max_limit = 8;
  spec.adaptive_limit.rtt_tolerance = 2.0;
  spec.adaptive_limit.decrease_factor = 0.5;
  Service svc(sim, spec, 0);
  const ServiceId down = 3;
  EXPECT_TRUE(svc.degradation_enabled());
  EXPECT_DOUBLE_EQ(svc.adaptive_limit_now(down), 8.0);

  // Teach the no-load floor with one good sample (rtt 100us).
  ASSERT_EQ(svc.AdmitDownstreamCall(down), Service::DownstreamGate::kAdmitted);
  svc.EndDownstreamCall(down, Us(100), true, 0);
  EXPECT_DOUBLE_EQ(svc.adaptive_limit_now(down), 8.0);  // capped at max

  // Congested samples (rtt > 2 x floor) halve the limit down to min_limit.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(svc.AdmitDownstreamCall(down),
              Service::DownstreamGate::kAdmitted);
    svc.EndDownstreamCall(down, Us(500), true, 0);
  }
  EXPECT_DOUBLE_EQ(svc.adaptive_limit_now(down), 2.0);  // 8 -> 4 -> 2 -> 2

  // The clamp binds: only 2 calls may be in flight now.
  ASSERT_EQ(svc.AdmitDownstreamCall(down), Service::DownstreamGate::kAdmitted);
  ASSERT_EQ(svc.AdmitDownstreamCall(down), Service::DownstreamGate::kAdmitted);
  EXPECT_EQ(svc.AdmitDownstreamCall(down),
            Service::DownstreamGate::kLimitClamped);
  EXPECT_EQ(svc.limiter_rejections(), 1);
  svc.EndDownstreamCall(down, Us(150), true, 0);  // good: +1/limit
  svc.EndDownstreamCall(down, Us(150), true, 0);
  EXPECT_GT(svc.adaptive_limit_now(down), 2.0);  // additive recovery
  EXPECT_EQ(svc.downstream_in_flight(down), 0);

  // A failed call is congestion regardless of its RTT.
  ASSERT_EQ(svc.AdmitDownstreamCall(down), Service::DownstreamGate::kAdmitted);
  const double before = svc.adaptive_limit_now(down);
  svc.EndDownstreamCall(down, Us(100), false, 0);
  EXPECT_LT(svc.adaptive_limit_now(down), before);
}

TEST(Degradation, NominalRttOverridesLearnedFloor) {
  sim::Simulation sim;
  ServiceSpec spec;
  spec.name = "caller";
  spec.adaptive_limit.enabled = true;
  spec.adaptive_limit.min_limit = 1;
  spec.adaptive_limit.max_limit = 4;
  spec.adaptive_limit.rtt_tolerance = 2.0;
  Service svc(sim, spec, 0);
  // Learned floor would be 100us, making 500us congested — but the policy's
  // nominal RTT of 1ms says 500us is healthy.
  ASSERT_EQ(svc.AdmitDownstreamCall(1), Service::DownstreamGate::kAdmitted);
  svc.EndDownstreamCall(1, Us(100), true, Ms(1));
  ASSERT_EQ(svc.AdmitDownstreamCall(1), Service::DownstreamGate::kAdmitted);
  svc.EndDownstreamCall(1, Us(500), true, Ms(1));
  EXPECT_DOUBLE_EQ(svc.adaptive_limit_now(1), 4.0);  // never decreased
}

TEST(Degradation, DeadlineShedDropsDoomedWorkBeforeItConsumesASlot) {
  // Budget 10ms; by the time the 20ms worker hop arrives (~8.4ms) the
  // residual cost can't fit. With shedding the worker never burns a burst;
  // without it the doomed attempt runs to completion as orphan work.
  ServiceSpec shedding;
  shedding.deadline_shed.enabled = true;
  shedding.deadline_shed.margin = 1.0;
  Application::Builder b;
  b.SetName("shed").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId s0 = b.AddService(Svc("s0", 8, 2));
  ServiceSpec w = Svc("w", 8, 2);
  w.deadline_shed = shedding.deadline_shed;
  const ServiceId s1 = b.AddService(w);
  auto t = Type("t", {{s0, Ms(8), 0}, {s1, Ms(20), 0}});
  t.deadline = Ms(10);
  b.AddRequestType(t);
  const Application app = std::move(b).Build();

  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.outcome, Outcome::kDeadlineExceeded);
  EXPECT_LT(rec.end, Ms(10));  // shed resolves BEFORE the deadline timer
  EXPECT_EQ(cluster.service(s1).deadline_sheds(), 1);
  EXPECT_EQ(cluster.service(s1).completed_bursts(), 0);  // no orphan work
  EXPECT_EQ(cluster.deadline_sheds(), 1);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

TEST(Degradation, WithoutShedDoomedWorkDrainsAsOrphan) {
  // Control for the test above: same topology, shedding off. The request
  // still dies at its deadline, but the worker burns the full 20ms burst.
  Application::Builder b;
  b.SetName("noshed").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId s0 = b.AddService(Svc("s0", 8, 2));
  const ServiceId s1 = b.AddService(Svc("w", 8, 2));
  auto t = Type("t", {{s0, Ms(8), 0}, {s1, Ms(20), 0}});
  t.deadline = Ms(10);
  b.AddRequestType(t);
  const Application app = std::move(b).Build();

  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.outcome, Outcome::kDeadlineExceeded);
  EXPECT_EQ(rec.end, Ms(10));
  EXPECT_EQ(cluster.service(s1).completed_bursts(), 1);  // orphan drained
  EXPECT_EQ(cluster.deadline_sheds(), 0);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

TEST(Degradation, DepthWeightShedsDeepestWorkFirst) {
  // Same chain, same budget: with depth_weight 0 every hop is feasible and
  // the request completes. depth_weight 1.6 inflates required slack with
  // depth — hop 1 still clears (2.6 x 10.8ms < 28.6ms remaining) but hop 2
  // does not (4.2 x 5.6ms > 23.4ms remaining), so the DEEPEST hop sheds.
  const auto build = [](double depth_weight) {
    Application::Builder b;
    b.SetName("depth").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
        .SetNetLatency(Us(200));
    ServiceSpec spec0 = Svc("s0", 8, 2);
    ServiceSpec spec1 = Svc("s1", 8, 2);
    ServiceSpec spec2 = Svc("s2", 8, 2);
    for (ServiceSpec* s : {&spec0, &spec1, &spec2}) {
      s->deadline_shed.enabled = true;
      s->deadline_shed.margin = 1.0;
      s->deadline_shed.depth_weight = depth_weight;
    }
    b.AddService(spec0);
    b.AddService(spec1);
    b.AddService(spec2);
    auto t = Type("t", {{0, Ms(1), 0}, {1, Ms(5), 0}, {2, Ms(5), 0}});
    t.deadline = Ms(30);
    b.AddRequestType(t);
    return std::move(b).Build();
  };

  for (const double dw : {0.0, 1.6}) {
    sim::Simulation sim;
    const Application app = build(dw);
    Cluster cluster(sim, app, 1);
    CompletionRecord rec;
    cluster.Submit(0, RequestClass::kLegit, false, 1,
                   [&](const CompletionRecord& r) { rec = r; });
    sim.RunAll();
    if (dw == 0.0) {
      EXPECT_EQ(rec.outcome, Outcome::kOk);
      EXPECT_EQ(cluster.deadline_sheds(), 0);
    } else {
      EXPECT_EQ(rec.outcome, Outcome::kDeadlineExceeded);
      EXPECT_EQ(cluster.service(1).deadline_sheds(), 0);
      EXPECT_EQ(cluster.service(2).deadline_sheds(), 1);  // deepest hop
    }
    EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
  }
}

TEST(Degradation, AdaptiveLimiterClampsPileUpOnASlowedEdge) {
  // End-to-end: a caller fans many concurrent requests onto one edge whose
  // worker suddenly slows. The limiter learns the no-load RTT during the
  // warm-up, then clamps the pile-up once RTTs blow past tolerance.
  ServiceSpec gate;
  gate.adaptive_limit.enabled = true;
  gate.adaptive_limit.min_limit = 2;
  gate.adaptive_limit.max_limit = 64;
  gate.adaptive_limit.rtt_tolerance = 3.0;
  gate.adaptive_limit.decrease_factor = 0.5;
  const Application app = GatedTwoHopApp(gate, Ms(2));
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  // Warm-up at no load: sequential requests teach the ~2.8ms floor.
  for (int i = 0; i < 5; ++i) {
    sim.At(Ms(10 * i), [&] { cluster.Submit(0, RequestClass::kLegit, false, 1); });
  }
  // Slow the worker 50x, then slam the edge with a concurrent burst. The
  // burst itself is admitted (limit starts at max), but its congested RTTs
  // collapse the limit, so a second wave bounces off the clamp.
  sim.At(Ms(60), [&] { cluster.service(1).MultiplyDemandFactor(50.0); });
  for (int i = 0; i < 40; ++i) {
    sim.At(Ms(61), [&] { cluster.Submit(0, RequestClass::kLegit, false, 2); });
  }
  for (int i = 0; i < 10; ++i) {
    sim.At(Ms(200), [&] { cluster.Submit(0, RequestClass::kLegit, false, 3); });
  }
  sim.RunAll();
  // The second wave was clamped off instead of piling onto the edge.
  EXPECT_GT(cluster.service(0).limiter_rejections(), 0);
  EXPECT_LT(cluster.service(0).adaptive_limit_now(1), 64.0);
  EXPECT_EQ(cluster.outcome_count(Outcome::kRejected),
            static_cast<std::uint64_t>(cluster.service(0).limiter_rejections()));
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

TEST(Degradation, DrainInvariantCheckerReportsLeaks) {
  // Sanity-check the checker itself: mid-flight, invariants ARE broken
  // (live pool handles, held slots) — the report must say so.
  const Application app = GatedTwoHopApp(ServiceSpec{});
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  cluster.Submit(0, RequestClass::kLegit, false, 1);
  sim.RunUntil(Ms(10));  // worker burst (50ms) still running
  EXPECT_NE(cluster.DrainInvariantsBroken(), "");
  sim.RunAll();
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

}  // namespace
}  // namespace grunt::microsvc
