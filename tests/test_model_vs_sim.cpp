// Validates the Section III queuing model AGAINST the simulator: the
// equations' predictions (queue build-up, damage latency, millibottleneck
// length, slot-pool fill time) must match what the discrete-event substrate
// actually produces. This is the link that justifies using the model inside
// the Commander's feedback loop.

#include <gtest/gtest.h>

#include "attack/burst.h"
#include "attack/sim_target_client.h"
#include "cloud/monitor.h"
#include "fixtures.h"
#include "microsvc/cluster.h"
#include "model/queuing_model.h"

namespace grunt::model {
namespace {

// Fixture app facts (see tests/fixtures.h, deterministic service times):
// worker-a: 2 cores, 9 ms pre + 0.5 ms post demand, heavy x1.6.
constexpr double kWorkerDemand = 0.0095;                      // seconds
constexpr double kWorkerCapLegit = 2.0 / kWorkerDemand;       // ~210.5/s
constexpr double kWorkerCapAttack = kWorkerCapLegit / 1.6;    // ~131.6/s

Stage WorkerStage(double legit_rate) {
  return Stage{64, kWorkerCapAttack, kWorkerCapLegit, legit_rate};
}

/// Result of firing one heavy burst on path 0 of the parallel fixture:
/// the blackbox observation plus the TRUE millibottleneck length (longest
/// >99% CPU run on the bottleneck, sampled every 10 ms).
struct BurstOutcome {
  attack::BurstObservation obs;
  double true_pmb_ms = 0;
};

BurstOutcome FireBurst(double rate, std::int32_t count,
                       double legit_rate = 0) {
  const auto app = grunt::testing::TwoPathParallelApp();
  sim::Simulation sim;
  microsvc::Cluster cluster(sim, app, 3);
  cloud::ResourceMonitor fine(cluster, {Ms(10), "fine"});
  fine.Start();
  if (legit_rate > 0) {
    const auto gap = static_cast<SimDuration>(1e6 / legit_rate);
    for (SimTime t = 0; t < Sec(20); t += gap) {
      sim.At(t, [&cluster] {
        cluster.Submit(0, microsvc::RequestClass::kLegit, false, 1);
      });
    }
  }
  attack::SimTargetClient client(cluster);
  attack::BotFarm bots({});
  BurstOutcome out;
  sim.At(Sec(2), [&] {
    attack::BurstSender::Send(client, bots, 0, /*heavy=*/true, rate, count,
                              true,
                              [&](attack::BurstObservation obs) {
                                out.obs = std::move(obs);
                              });
  });
  sim.RunUntil(Sec(20));
  const auto worker = *app.FindService("worker-a");
  out.true_pmb_ms =
      ToMillis(fine.cpu_util(worker).LongestRunAbove(0.99, 0, Sec(20)));
  return out;
}

/// Property: Eq (5)'s millibottleneck length matches the blackbox estimate
/// within tolerance across burst shapes (idle background: P_MB = V / C_A).
class PmbPredictionTest
    : public ::testing::TestWithParam<std::pair<double, std::int32_t>> {};

TEST_P(PmbPredictionTest, Eq5MatchesSimulatedSaturationRun) {
  const auto [rate, count] = GetParam();
  const Burst burst{rate, static_cast<double>(count) / rate};
  const double predicted_ms =
      MillibottleneckLength(burst, WorkerStage(0)) * 1000.0;
  const BurstOutcome outcome = FireBurst(rate, count);
  // Eq (5) predicts the TRUE saturation run on the bottleneck.
  EXPECT_NEAR(outcome.true_pmb_ms, predicted_ms,
              0.20 * predicted_ms + 25.0)
      << "rate=" << rate << " count=" << count;
  // The attacker's blackbox estimate is conservative: never much above the
  // true length (paper Sec IV-B: "the real P_MB could be shorter than the
  // estimation" — i.e. the estimate may undercount, not overcount).
  EXPECT_LE(outcome.obs.EstimatePmbMs(), outcome.true_pmb_ms + 25.0);
}

INSTANTIATE_TEST_SUITE_P(
    BurstShapes, PmbPredictionTest,
    ::testing::Values(std::make_pair(800.0, 30), std::make_pair(800.0, 60),
                      std::make_pair(400.0, 40), std::make_pair(1600.0, 50),
                      std::make_pair(1600.0, 100)));

/// Property: Eq (1)+(4): the damage latency (time for the backlog to clear)
/// predicts the response time of a probe arriving right at burst end.
class DamagePredictionTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(DamagePredictionTest, Eq4MatchesProbeDelay) {
  const std::int32_t count = GetParam();
  const double rate = 1200.0;
  const auto app = grunt::testing::TwoPathParallelApp();
  sim::Simulation sim;
  microsvc::Cluster cluster(sim, app, 4);
  attack::SimTargetClient client(cluster);
  attack::BotFarm bots({});
  attack::BurstSender::Send(client, bots, 0, true, rate, count, true,
                            nullptr);
  // Probe of the same path at burst end: sees the whole backlog.
  const auto burst_len =
      static_cast<SimDuration>(1e6 * count / rate);
  SimDuration probe_rt = 0;
  sim.At(burst_len, [&] {
    cluster.Submit(0, microsvc::RequestClass::kProbe, false, 9,
                   [&](const microsvc::CompletionRecord& r) {
                     probe_rt = r.end - r.start;
                   });
  });
  sim.RunAll();

  const Burst burst{rate, static_cast<double>(count) / rate};
  const Stage s = WorkerStage(0);
  const double q = QueueFromExecutionBlocking(burst, s);
  // The probe is light (legit capacity) but drains behind heavy requests:
  // t_damage = Q_B / C_A (Eq 4).
  const double predicted_ms = DamageLatency(q, s) * 1000.0;
  EXPECT_GT(probe_rt, 0);
  EXPECT_NEAR(ToMillis(probe_rt), predicted_ms,
              0.25 * predicted_ms + 25.0)
      << "count=" << count;
}

INSTANTIATE_TEST_SUITE_P(Volumes, DamagePredictionTest,
                         ::testing::Values(40, 80, 160));

TEST(ModelVsSim, Eq2FillTimePredictsSlotExhaustion) {
  // Burst on path 0; the UM (12 slots) is exhausted once the worker backlog
  // holds 12 slots. Fill rate at the worker = B - C_A (no background).
  const auto app = grunt::testing::TwoPathParallelApp();
  sim::Simulation sim;
  microsvc::Cluster cluster(sim, app, 5);
  attack::SimTargetClient client(cluster);
  attack::BotFarm bots({});
  const double rate = 1200.0;
  attack::BurstSender::Send(client, bots, 0, true, rate, 80, true, nullptr);
  const auto um = *app.FindService("um");
  SimTime exhausted_at = -1;
  sim.Every(Ms(1), [&] {
    if (exhausted_at < 0 && cluster.service(um).slots_in_use() >= 12) {
      exhausted_at = sim.Now();
      sim.Stop();
    }
  });
  sim.RunUntil(Sec(30));

  Stage s = WorkerStage(0);
  s.queue_size = 12;  // the upstream pool being filled
  const double predicted_s = FillTime({rate, 80.0 / rate}, s);
  ASSERT_GT(exhausted_at, 0);
  EXPECT_NEAR(ToSeconds(exhausted_at), predicted_s,
              0.5 * predicted_s + 0.01);
}

TEST(ModelVsSim, BackgroundLoadLengthensMillibottleneckPerEq5) {
  // Eq (5): P_MB scales with 1/(1 - lambda/C_L). Compare the true
  // saturation runs idle vs loaded.
  const double idle = FireBurst(800, 40, /*legit_rate=*/0).true_pmb_ms;
  const double loaded = FireBurst(800, 40, /*legit_rate=*/100).true_pmb_ms;
  const double predicted_ratio = 1.0 / (1.0 - 100.0 / kWorkerCapLegit);
  ASSERT_GT(idle, 0);
  EXPECT_NEAR(loaded / idle, predicted_ratio, 0.40);
}

TEST(ModelVsSim, VolumeNotSplitDeterminesPmb) {
  // Eq (5) says P_MB depends on V = B*L, not on the B/L split.
  const double v1 = FireBurst(500, 50).true_pmb_ms;
  const double v2 = FireBurst(2000, 50).true_pmb_ms;
  EXPECT_NEAR(v1, v2, 0.25 * v1 + 15.0);
}

}  // namespace
}  // namespace grunt::model
