#include "microsvc/service.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace grunt::microsvc {
namespace {

TEST(Service, GrantsSlotsUpToThreadCount) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 2, 1), 0);
  int granted = 0;
  for (int i = 0; i < 3; ++i) {
    svc.AcquireSlot([&] { ++granted; });
  }
  sim.RunAll();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(svc.slots_in_use(), 2);
  EXPECT_EQ(svc.slots_waiting(), 1);
  EXPECT_EQ(svc.queue_length(), 3);
}

TEST(Service, ReleaseWakesWaitersInFifoOrder) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 1, 1), 0);
  std::vector<int> order;
  svc.AcquireSlot([&] { order.push_back(0); });
  svc.AcquireSlot([&] { order.push_back(1); });
  svc.AcquireSlot([&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0}));
  svc.ReleaseSlot();
  sim.RunAll();
  svc.ReleaseSlot();
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Service, CpuRunsFcfsOnLimitedCores) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 8, 2), 0);
  std::vector<std::pair<int, SimTime>> done;
  for (int i = 0; i < 4; ++i) {
    svc.RunCpu(Ms(10), [&, i] { done.emplace_back(i, sim.Now()); });
  }
  sim.RunAll();
  ASSERT_EQ(done.size(), 4u);
  // Two cores: bursts 0,1 finish at 10ms; 2,3 at 20ms.
  EXPECT_EQ(done[0].second, Ms(10));
  EXPECT_EQ(done[1].second, Ms(10));
  EXPECT_EQ(done[2].second, Ms(20));
  EXPECT_EQ(done[3].second, Ms(20));
  EXPECT_EQ(svc.completed_bursts(), 4);
}

TEST(Service, ZeroDemandBurstCompletesImmediately) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 8, 1), 0);
  bool done = false;
  svc.RunCpu(0, [&] { done = true; });
  sim.RunAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.Now(), 0);
}

TEST(Service, BusyIntegralMatchesWork) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 8, 2), 0);
  svc.RunCpu(Ms(10), [] {});
  svc.RunCpu(Ms(5), [] {});
  sim.RunAll();
  // Total core-time = 15ms regardless of parallelism.
  EXPECT_EQ(svc.CumBusyCoreTime(), Ms(15));
}

TEST(Service, BusyIntegralPartialAccrual) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 8, 1), 0);
  svc.RunCpu(Ms(10), [] {});
  sim.RunUntil(Ms(4));
  EXPECT_EQ(svc.CumBusyCoreTime(), Ms(4));
  EXPECT_EQ(svc.cpu_busy(), 1);
  sim.RunAll();
  EXPECT_EQ(svc.CumBusyCoreTime(), Ms(10));
}

TEST(Service, AddReplicaExpandsBothResources) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 2, 1), 0);
  EXPECT_EQ(svc.threads(), 2);
  EXPECT_EQ(svc.cores(), 1);
  int granted = 0;
  for (int i = 0; i < 4; ++i) svc.AcquireSlot([&] { ++granted; });
  sim.RunAll();
  EXPECT_EQ(granted, 2);
  svc.AddReplica();
  sim.RunAll();
  EXPECT_EQ(svc.threads(), 4);
  EXPECT_EQ(svc.cores(), 2);
  EXPECT_EQ(granted, 4);  // waiting calls admitted by the new capacity
}

TEST(Service, AddReplicaStartsQueuedCpu) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 8, 1), 0);
  std::vector<SimTime> done;
  svc.RunCpu(Ms(10), [&] { done.push_back(sim.Now()); });
  svc.RunCpu(Ms(10), [&] { done.push_back(sim.Now()); });
  sim.At(Ms(1), [&] { svc.AddReplica(); });
  sim.RunAll();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], Ms(10));
  EXPECT_EQ(done[1], Ms(11));  // started at 1ms on the new core
}

TEST(Service, RemoveReplicaRefusesBelowOne) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 2, 1), 0);
  EXPECT_FALSE(svc.RemoveReplica());
  svc.AddReplica();
  EXPECT_TRUE(svc.RemoveReplica());
  EXPECT_EQ(svc.replicas(), 1);
}

TEST(Service, ShrinkDoesNotAbortInFlightWork) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 1, 1), 0);
  svc.AddReplica();
  int done = 0;
  svc.RunCpu(Ms(10), [&] { ++done; });
  svc.RunCpu(Ms(10), [&] { ++done; });
  sim.At(Ms(1), [&] { svc.RemoveReplica(); });
  sim.RunAll();
  EXPECT_EQ(done, 2);  // both bursts complete despite the shrink
}

TEST(Service, ShrunkCpuDelaysNewBursts) {
  sim::Simulation sim;
  Service svc(sim, grunt::testing::Svc("s", 4, 1), 0);
  svc.AddReplica();  // 2 cores
  std::vector<SimTime> done;
  svc.RunCpu(Ms(10), [&] { done.push_back(sim.Now()); });
  svc.RunCpu(Ms(10), [&] { done.push_back(sim.Now()); });
  sim.At(Ms(1), [&] {
    svc.RemoveReplica();                      // back to 1 core
    svc.RunCpu(Ms(5), [&] { done.push_back(sim.Now()); });
  });
  sim.RunAll();
  ASSERT_EQ(done.size(), 3u);
  // The third burst must wait until one of the in-flight bursts finishes.
  EXPECT_EQ(done[2], Ms(15));
}

}  // namespace
}  // namespace grunt::microsvc
