#include "trace/dependency.h"

#include <gtest/gtest.h>

#include "apps/mubench.h"
#include "apps/socialnetwork.h"
#include "fixtures.h"

namespace grunt::trace {
namespace {

std::vector<double> FlatRates(const microsvc::Application& app, double rate) {
  return std::vector<double>(app.request_type_count(), rate);
}

TEST(GroundTruth, ServiceUtilMatchesHandComputation) {
  const auto app = grunt::testing::TwoPathParallelApp();
  GroundTruth truth(app, {50.0, 25.0});
  const auto um = *app.FindService("um");
  const auto wa = *app.FindService("worker-a");
  // um: (50+25) * 1.4ms / 4 cores.
  EXPECT_NEAR(truth.ServiceUtil(um), 75 * 0.0014 / 4, 1e-9);
  // worker-a: 50 * 9.5ms / 2 cores.
  EXPECT_NEAR(truth.ServiceUtil(wa), 50 * 0.0095 / 2, 1e-9);
}

TEST(GroundTruth, BottleneckIsTheTightestHop) {
  const auto app = grunt::testing::TwoPathParallelApp();
  GroundTruth truth(app, FlatRates(app, 40.0));
  EXPECT_EQ(truth.BottleneckOf(0), *app.FindService("worker-a"));
  EXPECT_EQ(truth.BottleneckOf(1), *app.FindService("worker-b"));
}

TEST(GroundTruth, ClassifiesParallelDependency) {
  const auto app = grunt::testing::TwoPathParallelApp();
  GroundTruth truth(app, FlatRates(app, 40.0));
  EXPECT_EQ(truth.Classify(0, 1), DepType::kParallel);
}

TEST(GroundTruth, ClassifiesSequentialDependencyWithDirection) {
  const auto app = grunt::testing::SequentialApp();
  GroundTruth truth(app, FlatRates(app, 30.0));
  EXPECT_EQ(truth.BottleneckOf(0), *app.FindService("um"));
  EXPECT_EQ(truth.BottleneckOf(1), *app.FindService("worker"));
  EXPECT_EQ(truth.Classify(0, 1), DepType::kSequentialAUp);
  EXPECT_EQ(truth.Classify(1, 0), DepType::kSequentialBUp);
}

TEST(GroundTruth, ClassifiesNoneForDisjointPaths) {
  const auto app = grunt::testing::DisjointApp();
  GroundTruth truth(app, FlatRates(app, 40.0));
  EXPECT_EQ(truth.Classify(0, 1), DepType::kNone);
}

TEST(GroundTruth, MutualWhenPathsShareTheirBottleneck) {
  using namespace grunt::testing;
  microsvc::Application::Builder b;
  b.SetNetLatency(Us(200));
  const auto gw = b.AddService(Svc("gw", 2048, 8));
  const auto hot = b.AddService(Svc("hot", 16, 2));
  const auto l1 = b.AddService(Svc("l1", 64, 2));
  const auto l2 = b.AddService(Svc("l2", 64, 2));
  b.AddRequestType(Type("p", {{gw, Us(200), 0},
                              {hot, Us(9000), Us(500)},
                              {l1, Us(300), 0}}));
  b.AddRequestType(Type("q", {{gw, Us(200), 0},
                              {hot, Us(9000), Us(500)},
                              {l2, Us(300), 0}}));
  const auto app = std::move(b).Build();
  GroundTruth truth(app, FlatRates(app, 30.0));
  EXPECT_EQ(truth.Classify(0, 1), DepType::kMutual);
}

TEST(GroundTruth, HugeGatewayPoolIsNotAnExploitableSharedUpstream) {
  // Both paths pass the 2048-slot gateway, but a stealth-bounded burst can
  // never overflow it, so sharing only the gateway means no dependency.
  const auto app = grunt::testing::DisjointApp();
  GroundTruth truth(app, FlatRates(app, 40.0));
  const auto gw = *app.FindService("gw");
  EXPECT_FALSE(truth.CanOverflow(0, gw));
  // But the small UM of the parallel app IS overflowable.
  const auto papp = grunt::testing::TwoPathParallelApp();
  GroundTruth ptruth(papp, FlatRates(papp, 40.0));
  EXPECT_TRUE(ptruth.CanOverflow(0, *papp.FindService("um")));
}

TEST(GroundTruth, StealthBacklogShrinksWithBackgroundLoad) {
  const auto app = grunt::testing::TwoPathParallelApp();
  GroundTruth idle(app, FlatRates(app, 5.0));
  GroundTruth busy(app, FlatRates(app, 90.0));
  EXPECT_GT(idle.StealthBacklog(0), busy.StealthBacklog(0));
}

TEST(GroundTruth, PmbLimitGatesParallelDetection) {
  // With an absurdly tight stealth cap, no backlog can reach the UM: the
  // parallel dependency disappears from the exploitable set.
  const auto app = grunt::testing::TwoPathParallelApp();
  GroundTruth tight(app, FlatRates(app, 40.0), /*pmb_limit_s=*/0.01);
  EXPECT_EQ(tight.Classify(0, 1), DepType::kNone);
}

TEST(GroundTruth, RejectsWrongRateVectorSize) {
  const auto app = grunt::testing::DisjointApp();
  EXPECT_THROW(GroundTruth(app, {1.0}), std::invalid_argument);
}

TEST(GroundTruth, AllPairsCoversEveryUnorderedPair) {
  const auto app = apps::MakeSocialNetwork({});
  GroundTruth truth(app, FlatRates(app, 70.0));
  const auto pairs = truth.AllPairs();
  const std::size_t n = app.PublicDynamicTypes().size();
  EXPECT_EQ(pairs.size(), n * (n - 1) / 2);
}

TEST(GroundTruth, SocialNetworkFormsThreeGroupsPlusSingletons) {
  const auto app = apps::MakeSocialNetwork({});
  // Roughly the reference mix at ~1000 req/s.
  const auto mix = apps::SocialNetworkMix(app);
  std::vector<double> rates(app.request_type_count(), 0.0);
  double total_w = 0;
  for (double w : mix.weights) total_w += w;
  for (std::size_t i = 0; i < mix.types.size(); ++i) {
    rates[static_cast<std::size_t>(mix.types[i])] =
        1000.0 * mix.weights[i] / total_w;
  }
  GroundTruth truth(app, rates);
  auto groups = DependencyGroups::FromPairs(app.request_type_count(),
                                            truth.AllPairs());
  // Count groups over dynamic types only.
  std::size_t multi = 0, singleton = 0;
  for (const auto& g : groups.Groups()) {
    bool dynamic = !app.request_type(g.front()).is_static;
    if (!dynamic) continue;
    (g.size() > 1 ? multi : singleton) += 1;
  }
  EXPECT_EQ(multi, 3u);       // compose, home, user (Fig 12c)
  EXPECT_EQ(singleton, 2u);   // login, search
  // The compose group's sequential member is compose/poll (upstream).
  const auto poll = *app.FindRequestType("compose/poll");
  const auto text = *app.FindRequestType("compose/text");
  EXPECT_EQ(truth.Classify(poll, text), DepType::kSequentialAUp);
}

TEST(DependencyGroups, UnionFindBasics) {
  DependencyGroups g(5);
  EXPECT_FALSE(g.SameGroup(0, 1));
  g.Union(0, 1);
  g.Union(3, 4);
  EXPECT_TRUE(g.SameGroup(0, 1));
  EXPECT_TRUE(g.SameGroup(3, 4));
  EXPECT_FALSE(g.SameGroup(1, 3));
  g.Union(1, 3);
  EXPECT_TRUE(g.SameGroup(0, 4));
  const auto groups = g.Groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 4u);  // largest first
  EXPECT_EQ(groups[1].size(), 1u);
}

/// Property: the µBench factory must embed exactly the advertised group
/// structure for any seed.
class MuBenchStructureTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MuBenchStructureTest, EmbeddedGroupsMatchGroundTruth) {
  apps::MuBenchOptions opts;
  opts.services = 62;
  opts.groups = 3;
  opts.paths_per_group = 3;
  opts.upstream_paths = 1;
  opts.singleton_paths = 2;
  opts.seed = GetParam();
  const auto app = apps::MakeMuBench(opts);
  EXPECT_EQ(app.service_count(), 62u);

  GroundTruth truth(app, FlatRates(app, 60.0));
  auto groups = DependencyGroups::FromPairs(app.request_type_count(),
                                            truth.AllPairs());
  std::size_t multi = 0, singleton = 0;
  std::size_t largest = 0;
  for (const auto& g : groups.Groups()) {
    (g.size() > 1 ? multi : singleton) += 1;
    largest = std::max(largest, g.size());
  }
  EXPECT_EQ(multi, 3u);
  EXPECT_EQ(singleton, 2u);
  // The first group carries the extra upstream path.
  EXPECT_EQ(largest, 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuBenchStructureTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace grunt::trace
