#pragma once

// Shared miniature topologies used across the test suite. All are built with
// deterministic service times unless a test opts into exponential draws, so
// expected latencies can be asserted exactly.

#include "microsvc/application.h"
#include "microsvc/cluster.h"
#include "sim/simulation.h"

namespace grunt::testing {

using microsvc::Application;
using microsvc::Hop;
using microsvc::RequestTypeSpec;
using microsvc::ServiceId;
using microsvc::ServiceSpec;

inline ServiceSpec Svc(std::string name, std::int32_t threads,
                       std::int32_t cores) {
  ServiceSpec s;
  s.name = std::move(name);
  s.threads_per_replica = threads;
  s.cores_per_replica = cores;
  s.initial_replicas = 1;
  s.max_replicas = 8;
  return s;
}

inline RequestTypeSpec Type(std::string name, std::vector<Hop> hops,
                            double heavy = 1.6) {
  RequestTypeSpec t;
  t.name = std::move(name);
  t.hops = std::move(hops);
  t.heavy_multiplier = heavy;
  return t;
}

/// Two paths with distinct worker bottlenecks behind one small shared
/// upstream service (parallel dependency), plus a well-provisioned gateway.
/// Type ids: 0 = "a", 1 = "b".
inline Application TwoPathParallelApp(
    microsvc::ServiceTimeDist dist = microsvc::ServiceTimeDist::kDeterministic,
    std::int32_t um_threads = 12) {
  Application::Builder b;
  b.SetName("two-path-parallel").SetServiceTimeDist(dist).SetNetLatency(
      Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 2048, 8));
  const ServiceId um = b.AddService(Svc("um", um_threads, 4));
  const ServiceId wa = b.AddService(Svc("worker-a", 64, 2));
  const ServiceId wb = b.AddService(Svc("worker-b", 64, 2));
  const ServiceId leaf = b.AddService(Svc("leaf", 128, 2));
  b.AddRequestType(Type("a", {{gw, Us(200), 0},
                              {um, Us(1000), Us(400)},
                              {wa, Us(9000), Us(500)},
                              {leaf, Us(400), 0}}));
  b.AddRequestType(Type("b", {{gw, Us(200), 0},
                              {um, Us(1000), Us(400)},
                              {wb, Us(9000), Us(500)},
                              {leaf, Us(400), 0}}));
  return std::move(b).Build();
}

/// Sequential dependency: path "up" bottlenecks on the shared upstream
/// service itself; path "down" bottlenecks on a worker below it.
/// Type ids: 0 = "up", 1 = "down".
inline Application SequentialApp(
    microsvc::ServiceTimeDist dist =
        microsvc::ServiceTimeDist::kDeterministic) {
  Application::Builder b;
  b.SetName("sequential").SetServiceTimeDist(dist).SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 2048, 8));
  const ServiceId um = b.AddService(Svc("um", 12, 4));
  const ServiceId w = b.AddService(Svc("worker", 64, 2));
  const ServiceId leaf = b.AddService(Svc("leaf", 128, 2));
  b.AddRequestType(Type("up", {{gw, Us(200), 0},
                               {um, Us(30000), Us(1000)},
                               {leaf, Us(400), 0}}));
  b.AddRequestType(Type("down", {{gw, Us(200), 0},
                                 {um, Us(1000), Us(400)},
                                 {w, Us(9000), Us(500)},
                                 {leaf, Us(400), 0}}));
  return std::move(b).Build();
}

/// Two fully independent paths (share only the huge gateway): no dependency.
/// Type ids: 0 = "x", 1 = "y".
inline Application DisjointApp(
    microsvc::ServiceTimeDist dist =
        microsvc::ServiceTimeDist::kDeterministic) {
  Application::Builder b;
  b.SetName("disjoint").SetServiceTimeDist(dist).SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 2048, 8));
  const ServiceId wx = b.AddService(Svc("worker-x", 64, 2));
  const ServiceId wy = b.AddService(Svc("worker-y", 64, 2));
  const ServiceId lx = b.AddService(Svc("leaf-x", 128, 2));
  const ServiceId ly = b.AddService(Svc("leaf-y", 128, 2));
  b.AddRequestType(Type("x", {{gw, Us(200), 0},
                              {wx, Us(9000), Us(500)},
                              {lx, Us(400), 0}}));
  b.AddRequestType(Type("y", {{gw, Us(200), 0},
                              {wy, Us(9000), Us(500)},
                              {ly, Us(400), 0}}));
  return std::move(b).Build();
}

/// Single three-hop chain for request-lifecycle arithmetic.
/// Type id 0 = "chain". Demands: 1ms, 5ms(+1ms post), 2ms; net 200us/msg.
inline Application SingleChainApp(
    microsvc::ServiceTimeDist dist =
        microsvc::ServiceTimeDist::kDeterministic) {
  Application::Builder b;
  b.SetName("chain").SetServiceTimeDist(dist).SetNetLatency(Us(200));
  const ServiceId s0 = b.AddService(Svc("s0", 8, 2));
  const ServiceId s1 = b.AddService(Svc("s1", 8, 2));
  const ServiceId s2 = b.AddService(Svc("s2", 8, 2));
  b.AddRequestType(Type("chain", {{s0, Us(1000), 0},
                                  {s1, Us(5000), Us(1000)},
                                  {s2, Us(2000), 0}},
                        2.0));
  return std::move(b).Build();
}

}  // namespace grunt::testing
