#include "sim/inplace_function.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace grunt::sim {
namespace {

TEST(InplaceFunction, DefaultAndNullptrAreEmpty) {
  InplaceFunction empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  InplaceFunction null = nullptr;
  EXPECT_FALSE(static_cast<bool>(null));
}

TEST(InplaceFunction, InvokesStoredCallable) {
  int hits = 0;
  InplaceFunction f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, SboBoundaryAtInlineCapacity) {
  // Exactly kInlineCapacity bytes of capture state stays inline; one byte
  // more spills to the heap. The engine's stats and allocation behavior
  // depend on this boundary, so pin it.
  std::array<char, InplaceFunction::kInlineCapacity - sizeof(void*)> pad{};
  int sink = 0;
  InplaceFunction at_boundary = [pad, psink = &sink] {
    *psink += pad[0];
  };
  EXPECT_TRUE(at_boundary.is_inline());

  std::array<char, InplaceFunction::kInlineCapacity + 1> big{};
  InplaceFunction over_boundary = [big, psink = &sink] { *psink += big[0]; };
  ASSERT_TRUE(static_cast<bool>(over_boundary));
  EXPECT_FALSE(over_boundary.is_inline());
  over_boundary();  // heap path must still invoke correctly
  EXPECT_EQ(sink, 0);
}

TEST(InplaceFunction, OverAlignedCallableTakesHeapPath) {
  struct alignas(4 * alignof(void*)) OverAligned {
    double v = 1.0;
    void operator()() { v += 1.0; }
  };
  static_assert(alignof(OverAligned) > InplaceFunction::kInlineAlign);
  InplaceFunction f = OverAligned{};
  EXPECT_FALSE(f.is_inline());
  f();
}

TEST(InplaceFunction, ThrowingMoveCallableTakesHeapPath) {
  // A callable whose move can throw would make our noexcept move lie, so it
  // must live on the heap (where moving the wrapper only moves a pointer).
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    void operator()() {}
  };
  InplaceFunction f = ThrowingMove{};
  EXPECT_FALSE(f.is_inline());
}

TEST(InplaceFunction, MoveTransfersStateAndEmptiesSource) {
  int hits = 0;
  InplaceFunction a = [&hits] { ++hits; };
  InplaceFunction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InplaceFunction c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, SupportsMoveOnlyCallables) {
  auto owned = std::make_unique<int>(41);
  InplaceFunction f = [p = std::move(owned)] { ++*p; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
}

TEST(InplaceFunction, DestroysCallableExactlyOnce) {
  static int live = 0;
  struct Tracked {
    bool owner = true;
    Tracked() { ++live; }
    Tracked(Tracked&& o) noexcept {
      ++live;
      o.owner = false;
    }
    Tracked(const Tracked& o) = delete;
    ~Tracked() { --live; }
    void operator()() {}
  };
  live = 0;
  {
    InplaceFunction f = Tracked{};
    EXPECT_EQ(live, 1);
    InplaceFunction g = std::move(f);
    EXPECT_EQ(live, 1);
    g.Reset();
    EXPECT_EQ(live, 0);
    g.Reset();  // idempotent
    EXPECT_EQ(live, 0);
  }
  EXPECT_EQ(live, 0);

  // Heap-path variant.
  struct BigTracked : Tracked {
    char pad[InplaceFunction::kInlineCapacity] = {};
    void operator()() {}
  };
  live = 0;
  {
    InplaceFunction f = BigTracked{};
    EXPECT_FALSE(f.is_inline());
    EXPECT_EQ(live, 1);
    InplaceFunction g = std::move(f);
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(InplaceFunction, EmplaceReplacesExistingCallable) {
  int first = 0, second = 0;
  InplaceFunction f = [&first] { ++first; };
  f.Emplace([&second] { ++second; });
  f();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(InplaceFunction, MoveAssignDestroysPreviousTarget) {
  static int live = 0;
  struct Tracked {
    Tracked() { ++live; }
    Tracked(Tracked&&) noexcept { ++live; }
    ~Tracked() { --live; }
    void operator()() {}
  };
  live = 0;
  InplaceFunction a = Tracked{};
  InplaceFunction b = Tracked{};
  EXPECT_EQ(live, 2);
  a = std::move(b);
  EXPECT_EQ(live, 1);
  a.Reset();
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace grunt::sim
