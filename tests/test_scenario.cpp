#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "scenario/builder.h"
#include "scenario/builtin_apps.h"
#include "scenario/generate.h"
#include "scenario/loader.h"
#include "scenario/registry.h"
#include "scenario/spec.h"

namespace grunt::scenario {
namespace {

TEST(ScenarioRoundTrip, BuiltinsSurviveDumpParse) {
  for (const auto& builtin : BuiltinScenarios()) {
    const ScenarioSpec spec = builtin.make();
    const std::string text = DumpScenario(spec);
    const ScenarioSpec back = ParseScenario(text);
    EXPECT_EQ(spec, back) << builtin.name;
    // Byte-stable: dump(parse(dump)) == dump.
    EXPECT_EQ(DumpScenario(back), text) << builtin.name;
  }
}

TEST(ScenarioRoundTrip, ApplicationToSpecToApplication) {
  // Application -> spec dump -> parse -> build must be structurally
  // identical to the original (the PR's golden-equivalence contract).
  for (const auto& builtin : BuiltinScenarios()) {
    const ScenarioSpec spec = builtin.make();
    const auto app = BuildApplication(spec.topology);
    const TopologySpec re_spec = TopologyFromApplication(app);
    const auto app2 =
        BuildApplication(ParseTopology(DumpTopology(re_spec)));
    EXPECT_TRUE(microsvc::StructurallyEqual(app, app2)) << builtin.name;
  }
}

TEST(ScenarioRoundTrip, FanOutStageAndPerCallRpcSurvive) {
  TopologySpec t;
  t.name = "fanout";
  SpecBuilder b("fanout");
  const auto gw = b.AddService("gw", 2048, 8, 1);
  const auto l = b.AddService("left", 16, 2, 1);
  const auto r = b.AddService("right", 16, 2, 1);
  microsvc::RpcPolicy rpc;
  rpc.timeout = Ms(50);
  rpc.max_retries = 2;
  b.AddStagedEndpoint(
      "api/fan",
      {StageSpec{{CallSpec{gw, Us(100), 0}}},
       StageSpec{{CallSpec{l, Us(500), 0, rpc}, CallSpec{r, Us(700), 0}}}},
      1.4, 700, 2000);
  t = std::move(b).Build();
  const TopologySpec back = ParseTopology(DumpTopology(t));
  EXPECT_EQ(t, back);
  ASSERT_EQ(back.endpoints[0].stages.size(), 2u);
  EXPECT_EQ(back.endpoints[0].stages[1].calls.size(), 2u);
  ASSERT_TRUE(back.endpoints[0].stages[1].calls[0].rpc.has_value());
  EXPECT_EQ(back.endpoints[0].stages[1].calls[0].rpc->timeout, Ms(50));
  // The loader flattens the fan-out in declaration order.
  const auto app = BuildApplication(back);
  const auto path = app.PathServices(*app.FindRequestType("api/fan"));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(app.service(path[1]).name, "left");
  EXPECT_EQ(app.service(path[2]).name, "right");
}

TEST(ScenarioParse, RejectsUnknownKeysAndBadValues) {
  ScenarioSpec spec = SocialNetworkScenario();
  std::string text = DumpScenario(spec);
  EXPECT_NO_THROW(ParseScenario(text));

  // A typo'd key anywhere must fail loudly, naming the context.
  const std::string bad = R"({
    "grunt_scenario": 1,
    "topology": {
      "name": "x",
      "services": [{"name": "s", "threds_per_replica": 4}],
      "endpoints": []
    }
  })";
  try {
    ParseScenario(bad);
    FAIL() << "expected unknown-key rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("threds_per_replica"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("service \"s\""), std::string::npos);
  }

  EXPECT_THROW(ParseScenario(R"({"grunt_scenario": 2, "topology":
      {"services": [], "endpoints": []}})"),
               std::invalid_argument);
  EXPECT_THROW(ParseScenario(R"({"topology": {"services": [],
      "endpoints": [], "service_time_dist": "gaussian"}})"),
               std::invalid_argument);
}

TEST(ScenarioLoader, UnknownServiceReferenceNamesTheEndpoint) {
  SpecBuilder b("broken");
  b.AddService("real", 8, 1, 1);
  b.AddChainEndpoint("api/x", {CallSpec{"ghost", Us(100), 0}}, 1.2, 500,
                     1000);
  const TopologySpec t = std::move(b).Build();
  try {
    BuildApplication(t);
    FAIL() << "expected unknown-service error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("api/x"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

TEST(ScenarioLoader, MixValidationAndNavigators) {
  const ScenarioSpec spec = SocialNetworkScenario();
  const auto app = BuildApplication(spec.topology);

  const auto mix = BuildRequestMix(app, spec.workload);
  EXPECT_EQ(mix.types.size(), spec.workload.mix.size());

  WorkloadSpec bad = spec.workload;
  bad.mix.push_back({"no/such/endpoint", 1.0});
  EXPECT_THROW(BuildRequestMix(app, bad), std::invalid_argument);

  // Empty mix = uniform over the public dynamic endpoints.
  WorkloadSpec empty;
  const auto uniform = BuildRequestMix(app, empty);
  EXPECT_EQ(uniform.types.size(), app.PublicDynamicTypes().size());

  const auto stationary = BuildNavigator(app, spec.workload);
  ASSERT_EQ(stationary.transition.size(), stationary.types.size());
  EXPECT_EQ(stationary.transition[0], mix.weights);

  WorkloadSpec uni = spec.workload;
  uni.navigator = WorkloadSpec::Navigator::kUniform;
  const auto nav = BuildNavigator(app, uni);
  EXPECT_EQ(nav.types.size(), mix.types.size());
}

TEST(ScenarioRegistry, BuiltinsResolveAndUnknownsThrow) {
  EXPECT_GE(BuiltinScenarios().size(), 5u);
  EXPECT_TRUE(MakeBuiltin("socialnetwork").has_value());
  EXPECT_TRUE(MakeBuiltin("mubench-196").has_value());
  EXPECT_FALSE(MakeBuiltin("nope").has_value());
  EXPECT_EQ(ResolveScenario("hotelreservation").topology.services.size(),
            18u);
  EXPECT_THROW(ResolveScenario("not-a-scenario"), std::invalid_argument);
  EXPECT_FALSE(ListScenariosText().empty());
}

TEST(ScenarioRegistry, ResolvesSpecFilesByPath) {
  const std::string path = ::testing::TempDir() + "roundtrip_scenario.json";
  const ScenarioSpec spec = HotelReservationScenario();
  SaveScenarioFile(path, spec);
  const ScenarioSpec loaded = ResolveScenario(path);
  EXPECT_EQ(spec, loaded);
  std::remove(path.c_str());

  // Path-looking arguments that don't exist mention the path.
  try {
    ResolveScenario("/no/such/dir/spec.json");
    FAIL() << "expected load error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/dir/spec.json"),
              std::string::npos);
  }
}

TEST(ScenarioGenerator, DeterministicAndSeedSensitive) {
  const ScenarioSpec a = GenerateMubench(7);
  const ScenarioSpec b = GenerateMubench(7);
  EXPECT_EQ(a, b);
  const ScenarioSpec c = GenerateMubench(8);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.topology.services.size(), 62u);
}

TEST(ScenarioGenerator, HonorsShapeParams) {
  MubenchParams p;
  p.services = 40;
  p.groups = 2;
  p.paths_per_group = 2;
  p.upstream_paths = 2;
  p.singleton_paths = 1;
  const ScenarioSpec spec = GenerateMubench(3, p);
  EXPECT_EQ(spec.topology.services.size(), 40u);
  // 2 groups * 2 paths + 2 admin + 1 singleton endpoints.
  EXPECT_EQ(spec.topology.endpoints.size(), 7u);
  // Admin endpoints are down-weighted in the generated mix.
  int admins = 0;
  for (const auto& m : spec.workload.mix) {
    if (m.endpoint.find("-admin") != std::string::npos) {
      ++admins;
      EXPECT_DOUBLE_EQ(m.weight, 0.25);
    } else {
      EXPECT_DOUBLE_EQ(m.weight, 1.0);
    }
  }
  EXPECT_EQ(admins, 2);

  MubenchParams tiny;
  tiny.services = 4;
  EXPECT_THROW(GenerateMubench(1, tiny), std::invalid_argument);
  MubenchParams impossible;
  impossible.services = 10;
  impossible.groups = 4;
  EXPECT_THROW(GenerateMubench(1, impossible), std::invalid_argument);
}

TEST(ScenarioBuilder, GatewayRuleAndAdmissionStamping) {
  SpecBuilder b("adm");
  b.SetBackendAdmission(64, 5, Ms(250));
  b.AddService("gw", kGatewayThreads, 8, 1);
  b.AddService("backend", 16, 2, 2);
  const TopologySpec t = std::move(b).Build();
  EXPECT_EQ(t.services[0].max_queue_per_replica, 0);  // gateways never shed
  EXPECT_EQ(t.services[1].max_queue_per_replica, 64);
  EXPECT_EQ(t.services[1].breaker_threshold, 5);
  EXPECT_EQ(t.services[1].breaker_cooldown, Ms(250));
  EXPECT_EQ(t.services[1].max_replicas, 16);  // replicas * 8 default
}

TEST(ScenarioBuilder, ScaledDemandMatchesLegacyArithmetic) {
  EXPECT_EQ(ScaledDemand(9.0, 1.0), Us(9000));
  EXPECT_EQ(ScaledDemand(9.0, 0.95),
            static_cast<SimDuration>(9.0 * 1000.0 / 0.95));
  EXPECT_EQ(ScaledDemand(0.0001, 10.0), 1);  // floors at one tick
}

TEST(ScenarioBuiltins, ParamsValidation) {
  DeploymentParams bad;
  bad.replica_scale = 0;
  EXPECT_THROW(SocialNetworkScenario(bad), std::invalid_argument);
  EXPECT_THROW(HotelReservationScenario(bad), std::invalid_argument);
  DeploymentParams neg;
  neg.capacity_scale = -1;
  EXPECT_THROW(SocialNetworkScenario(neg), std::invalid_argument);
  DeploymentParams q;
  q.queue_scale = 0;
  EXPECT_THROW(SocialNetworkScenario(q), std::invalid_argument);
}

}  // namespace
}  // namespace grunt::scenario
