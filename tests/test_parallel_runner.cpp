#include "util/parallel_runner.h"

#include <gtest/gtest.h>

#include "util/env.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace grunt::util {
namespace {

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  ParallelRunner pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ForEachIndex(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, MapReturnsResultsInIndexOrder) {
  ParallelRunner pool(8);
  const auto out =
      pool.Map<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, ResultsIdenticalAcrossThreadCounts) {
  // The whole point of the runner: campaign fan-out must not change the
  // collected results, whatever the pool size.
  const auto job = [](std::size_t i) {
    // Deterministic per-index pseudo-work (splitmix64 step).
    std::uint64_t x = static_cast<std::uint64_t>(i) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  const auto t1 = ParallelRunner(1).Map<std::uint64_t>(64, job);
  const auto t2 = ParallelRunner(2).Map<std::uint64_t>(64, job);
  const auto t8 = ParallelRunner(8).Map<std::uint64_t>(64, job);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ParallelRunner, HandlesZeroAndFewerJobsThanThreads) {
  ParallelRunner pool(8);
  pool.ForEachIndex(0, [](std::size_t) { FAIL() << "no jobs to run"; });
  const auto out = pool.Map<int>(3, [](std::size_t i) {
    return static_cast<int>(i) + 1;
  });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelRunner, RethrowsLowestIndexException) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ParallelRunner pool(threads);
    std::atomic<int> completed{0};
    try {
      pool.ForEachIndex(32, [&](std::size_t i) {
        if (i == 7 || i == 21) {
          throw std::runtime_error("job " + std::to_string(i));
        }
        ++completed;
      });
      FAIL() << "expected an exception at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 7") << "at " << threads << " threads";
    }
    if (threads > 1) {
      // Remaining jobs still ran despite the failures.
      EXPECT_EQ(completed.load(), 30) << "at " << threads << " threads";
    }
  }
}

TEST(ParallelRunner, DefaultThreadsHonorsEnvOverride) {
  ::setenv("GRUNT_BENCH_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ParallelRunner::DefaultThreads(), 3u);
  EXPECT_EQ(ParallelRunner(0).threads(), 3u);
  ::unsetenv("GRUNT_BENCH_THREADS");
  EXPECT_GE(ParallelRunner::DefaultThreads(), 1u);
}

TEST(ParallelRunner, DefaultThreadsRejectsInvalidEnv) {
  // A set-but-broken override is a configuration error, not something to
  // paper over with a fallback: it must throw, and the message must name
  // the variable and the offending value.
  for (const char* bad : {"garbage", "-4", "0", "3x", " 7", "0x10",
                          "99999999999999999999", "4097"}) {
    ::setenv("GRUNT_BENCH_THREADS", bad, 1);
    try {
      ParallelRunner::DefaultThreads();
      FAIL() << "expected EnvError for \"" << bad << "\"";
    } catch (const EnvError& e) {
      EXPECT_NE(std::string(e.what()).find("GRUNT_BENCH_THREADS"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(bad), std::string::npos)
          << e.what();
    }
  }
  // Unset and empty both mean "no override".
  ::setenv("GRUNT_BENCH_THREADS", "", 1);
  EXPECT_GE(ParallelRunner::DefaultThreads(), 1u);
  ::unsetenv("GRUNT_BENCH_THREADS");
  EXPECT_GE(ParallelRunner::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace grunt::util
