// Client-side RPC fault tolerance: timeouts fire at the configured instant,
// the retry backoff sequence is exact, end-to-end deadlines truncate every
// downstream attempt's budget, and whatever happens, every submitted request
// reaches exactly one terminal outcome.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fixtures.h"
#include "microsvc/cluster.h"

namespace grunt::microsvc {
namespace {

using grunt::testing::Svc;
using grunt::testing::Type;

/// One service, one hop, deterministic `demand`, optional policy/deadline.
Application OneHopApp(SimDuration demand, RpcPolicy policy,
                      SimDuration deadline = 0, std::int32_t threads = 8,
                      std::int32_t max_queue = 0) {
  Application::Builder b;
  b.SetName("one-hop").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  auto spec = Svc("s", threads, threads);
  spec.max_queue_per_replica = max_queue;
  const ServiceId s = b.AddService(spec);
  auto t = Type("t", {{s, demand, 0}});
  t.hops[0].rpc = policy;
  t.deadline = deadline;
  b.AddRequestType(t);
  return std::move(b).Build();
}

TEST(RpcPolicy, TimeoutFiresAtExactlyTheConfiguredInstant) {
  // Demand far beyond the timeout: the client gives up at t0 + timeout.
  RpcPolicy p;
  p.timeout = Ms(50);
  const Application app = OneHopApp(Sec(1), p);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.outcome, Outcome::kTimeout);
  EXPECT_EQ(rec.end, Ms(50));  // armed at submit; no network grace
  EXPECT_EQ(rec.retries, 0);
  EXPECT_EQ(cluster.outcome_count(Outcome::kTimeout), 1u);
  // The orphan attempt still drained its CPU burst and released its slot.
  EXPECT_EQ(cluster.service(0).completed_bursts(), 1);
  EXPECT_EQ(cluster.service(0).slots_in_use(), 0);
}

TEST(RpcPolicy, BackoffSequenceIsExact) {
  // timeout 50ms, 3 retries, base 10ms, x2, no jitter:
  // attempts at 0 / 60 / 130 / 220 ms; terminal timeout at 220 + 50 = 270.
  RpcPolicy p;
  p.timeout = Ms(50);
  p.max_retries = 3;
  p.backoff_base = Ms(10);
  p.backoff_multiplier = 2.0;
  p.jitter = 0.0;
  const Application app = OneHopApp(Sec(10), p);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunUntil(Sec(1));
  EXPECT_EQ(rec.outcome, Outcome::kTimeout);
  EXPECT_EQ(rec.retries, 3);
  EXPECT_EQ(rec.end, Ms(270));
}

TEST(RpcPolicy, RetryAfterTransientBlockingSucceeds) {
  // A 100 ms blocker holds the single slot; the 1 ms request times out
  // twice while queued and succeeds on the third attempt — but the two
  // timed-out attempts stay in the queue as orphans and burn CPU first
  // (retry amplification, measured at the burst counter).
  Application::Builder b;
  b.SetName("flaky").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId s = b.AddService(Svc("s", 1, 1));
  b.AddRequestType(Type("block", {{s, Ms(100), 0}}));
  RpcPolicy p;
  p.timeout = Ms(30);
  p.max_retries = 5;
  p.backoff_base = Ms(10);
  p.backoff_multiplier = 2.0;
  auto fast = Type("fast", {{s, Ms(1), 0}});
  fast.hops[0].rpc = p;
  b.AddRequestType(fast);
  const Application app = std::move(b).Build();

  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  cluster.Submit(0, RequestClass::kAttack, false, 7);
  CompletionRecord rec;
  cluster.Submit(1, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.outcome, Outcome::kOk);
  EXPECT_EQ(rec.retries, 2);
  // Attempts arrive at 0.2 / 40.2 / 90.2 ms and queue FIFO behind the
  // blocker (done at 100.2). Orphans run first: 101.2, 102.2; the live
  // attempt finishes at 103.2, reply lands 103.4.
  EXPECT_EQ(rec.end, Ms(103) + Us(400));
  EXPECT_EQ(cluster.service(0).completed_bursts(), 4);  // 1 blocker + 3 tries
  EXPECT_EQ(cluster.service(0).slots_in_use(), 0);
}

TEST(RpcPolicy, DeadlineTruncatesPerAttemptTimeoutAndForbidsRetry) {
  RpcPolicy p;
  p.timeout = Ms(50);
  p.max_retries = 4;
  const Application app = OneHopApp(Sec(1), p, /*deadline=*/Ms(30));
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.outcome, Outcome::kDeadlineExceeded);
  EXPECT_EQ(rec.end, Ms(30));  // 30 < 50: the deadline wins
  EXPECT_EQ(rec.retries, 0);   // a spent deadline is never retried into
}

TEST(RpcPolicy, DeadlinePropagatesToDownstreamHops) {
  // Hop 0 issues the downstream call at 1.2 ms (net 0.2 + pre 1.0); the
  // 10 ms deadline leaves the downstream attempt only 8.8 ms of budget, so
  // the whole request dies at exactly 10 ms however long hop 1 would take.
  Application::Builder b;
  b.SetName("deadline-chain")
      .SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId s0 = b.AddService(Svc("s0", 8, 2));
  const ServiceId s1 = b.AddService(Svc("s1", 8, 2));
  auto t = Type("t", {{s0, Ms(1), 0}, {s1, Sec(1), 0}});
  t.deadline = Ms(10);
  b.AddRequestType(t);
  const Application app = std::move(b).Build();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.outcome, Outcome::kDeadlineExceeded);
  EXPECT_EQ(rec.end, Ms(10));
  // Both hops released their slots even though hop 1's orphan kept running.
  EXPECT_EQ(cluster.service(s0).slots_in_use(), 0);
  EXPECT_EQ(cluster.service(s1).slots_in_use(), 0);
}

TEST(RpcPolicy, BoundedQueueShedsExcessArrivals) {
  // 1 thread, queue bound 1: of three simultaneous arrivals one runs, one
  // waits, one is rejected at arrival and pays only the network round trip.
  const Application app =
      OneHopApp(Ms(1), RpcPolicy{}, 0, /*threads=*/1, /*max_queue=*/1);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  std::vector<CompletionRecord> recs;
  for (int i = 0; i < 3; ++i) {
    cluster.Submit(0, RequestClass::kLegit, false, 1,
                   [&](const CompletionRecord& r) { recs.push_back(r); });
  }
  sim.RunAll();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].outcome, Outcome::kRejected);
  EXPECT_EQ(recs[0].end, Us(400));  // 0.2 ms there + 0.2 ms error back
  EXPECT_EQ(recs[1].outcome, Outcome::kOk);
  EXPECT_EQ(recs[2].outcome, Outcome::kOk);
  EXPECT_EQ(cluster.service(0).rejected_arrivals(), 1);
  EXPECT_EQ(cluster.outcome_count(Outcome::kRejected), 1u);
  EXPECT_EQ(cluster.outcome_count(Outcome::kOk), 2u);
}

TEST(RpcPolicy, CircuitBreakerOpensFastFailsAndReopensFromHalfOpen) {
  // Worker takes 50 ms but the edge times out at 10 ms: two consecutive
  // failures open the per-caller breaker, the next call fast-fails without
  // touching the worker, and the first half-open trial re-opens it.
  Application::Builder b;
  b.SetName("breaker").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 64, 8));
  auto wspec = Svc("w", 1, 1);
  wspec.breaker_threshold = 2;
  wspec.breaker_cooldown = Ms(100);
  const ServiceId w = b.AddService(wspec);
  RpcPolicy p;
  p.timeout = Ms(10);
  auto t = Type("t", {{gw, Us(100), 0}, {w, Ms(50), 0}});
  t.hops[1].rpc = p;
  b.AddRequestType(t);
  const Application app = std::move(b).Build();

  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  std::vector<Outcome> outcomes;
  auto submit_at = [&](SimTime at) {
    sim.At(at, [&] {
      cluster.Submit(0, RequestClass::kLegit, false, 1,
                     [&](const CompletionRecord& r) {
                       outcomes.push_back(r.outcome);
                     });
    });
  };
  submit_at(0);        // timeout -> failure #1
  submit_at(Ms(30));   // timeout -> failure #2, breaker opens ~40.3 ms
  submit_at(Ms(60));   // breaker open -> fast-fail kRejected
  submit_at(Ms(200));  // cooldown over: half-open trial, times out, reopens
  submit_at(Ms(220));  // reopened -> fast-fail again
  sim.RunAll();
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_EQ(outcomes[0], Outcome::kTimeout);
  EXPECT_EQ(outcomes[1], Outcome::kTimeout);
  EXPECT_EQ(outcomes[2], Outcome::kRejected);
  EXPECT_EQ(outcomes[3], Outcome::kTimeout);
  EXPECT_EQ(outcomes[4], Outcome::kRejected);
  // Fast-failed calls never reached the worker: only the three timed-out
  // attempts' orphans ran there.
  EXPECT_EQ(cluster.service(w).completed_bursts(), 3);
}

TEST(RpcPolicy, BreakerHalfOpenSurvivesCrashAndRestart) {
  // Half-open probes interleaved with a replica crash/restart: the crash
  // kills the in-flight probe (kFailed), which must re-open the breaker;
  // restarting the replica must NOT reset breaker state (calls during the
  // new cooldown still fast-fail); the next probe against the healthy
  // replica closes it again.
  Application::Builder b;
  b.SetName("breaker-crash")
      .SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 64, 8));
  auto wspec = Svc("w", 1, 1);
  wspec.breaker_threshold = 2;
  wspec.breaker_cooldown = Ms(100);
  const ServiceId w = b.AddService(wspec);
  RpcPolicy p;
  p.timeout = Ms(10);
  auto t = Type("t", {{gw, Us(100), 0}, {w, Ms(50), 0}});
  t.hops[1].rpc = p;
  b.AddRequestType(t);
  const Application app = std::move(b).Build();

  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  std::vector<Outcome> outcomes;
  auto submit_at = [&](SimTime at) {
    sim.At(at, [&] {
      cluster.Submit(0, RequestClass::kLegit, false, 1,
                     [&](const CompletionRecord& r) {
                       outcomes.push_back(r.outcome);
                     });
    });
  };
  submit_at(0);        // timeout -> failure #1 at 10.3 ms
  submit_at(Ms(30));   // timeout -> failure #2, breaker opens until 140.3
  submit_at(Ms(60));   // open -> fast-fail (not reported: no cooldown bump)
  submit_at(Ms(150));  // half-open probe, burst starts at 150.5...
  sim.At(Ms(152), [&] { cluster.service(w).Crash(); });  // ...killed mid-run
  sim.At(Ms(160), [&] { cluster.service(w).Restart(); });
  submit_at(Ms(200));  // reopened by the crashed probe: still fast-fails
  // Heal the worker so the next probe beats the 10 ms timeout.
  sim.At(Ms(210), [&] { cluster.service(w).MultiplyDemandFactor(0.02); });
  submit_at(Ms(260));  // cooldown over: probe succeeds, breaker closes
  submit_at(Ms(270));  // closed: normal service resumes
  sim.RunAll();

  ASSERT_EQ(outcomes.size(), 7u);
  EXPECT_EQ(outcomes[0], Outcome::kTimeout);
  EXPECT_EQ(outcomes[1], Outcome::kTimeout);
  EXPECT_EQ(outcomes[2], Outcome::kRejected);  // open
  EXPECT_EQ(outcomes[3], Outcome::kFailed);    // probe died with the replica
  EXPECT_EQ(outcomes[4], Outcome::kRejected);  // restart kept the breaker open
  EXPECT_EQ(outcomes[5], Outcome::kOk);        // successful half-open probe
  EXPECT_EQ(outcomes[6], Outcome::kOk);
  EXPECT_GE(cluster.service(w).killed_bursts(), 1);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

TEST(RpcPolicy, JitterStaysWithinConfiguredBand) {
  // jitter 0.5 on base 10ms: every observed retry gap after the 50ms
  // timeout must lie in [50+5, 50+15] ms. Terminal end time is the sum.
  RpcPolicy p;
  p.timeout = Ms(50);
  p.max_retries = 3;
  p.backoff_base = Ms(10);
  p.backoff_multiplier = 1.0;
  p.jitter = 0.5;
  const Application app = OneHopApp(Sec(10), p);
  sim::Simulation sim;
  Cluster cluster(sim, app, 3);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunUntil(Sec(1));
  EXPECT_EQ(rec.outcome, Outcome::kTimeout);
  EXPECT_EQ(rec.retries, 3);
  // 4 attempts x 50ms timeout + 3 jittered backoffs in [5,15] ms each.
  EXPECT_GE(rec.end, Ms(200) + 3 * Ms(5));
  EXPECT_LE(rec.end, Ms(200) + 3 * Ms(15));
}

TEST(RpcPolicy, DefaultPolicyAppliesToEveryHopAndPerHopOverrideWins) {
  Application::Builder b;
  b.SetName("defaults").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId s0 = b.AddService(Svc("s0", 8, 2));
  const ServiceId s1 = b.AddService(Svc("s1", 8, 2));
  RpcPolicy dflt;
  dflt.timeout = Ms(80);
  b.SetDefaultRpcPolicy(dflt);
  RpcPolicy hop1;
  hop1.timeout = Ms(20);
  auto t = Type("t", {{s0, Ms(1), 0}, {s1, Sec(1), 0}});
  t.hops[1].rpc = hop1;
  b.AddRequestType(t);
  const Application app = std::move(b).Build();
  EXPECT_EQ(app.rpc_policy(0, 0).timeout, Ms(80));  // default
  EXPECT_EQ(app.rpc_policy(0, 1).timeout, Ms(20));  // override

  // Hop 1 times out at 20ms (issued at 1.2ms); the error reply reaches
  // hop 0 and the request fails well before hop 0's own 80ms timer.
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.outcome, Outcome::kTimeout);
  // issue hop1 at 1.2ms + 20ms timeout + 0.2ms error reply to the client
  // side of hop 0... hop 0's slot releases and the reply travels back.
  EXPECT_EQ(rec.end, Ms(21) + Us(400));
}

TEST(RpcPolicy, EveryRequestReachesExactlyOneTerminalOutcome) {
  // Chaos mix: shedding + tight timeouts + retries + a mid-run crash and
  // restart. Whatever happens, submitted == completed, ids are unique, the
  // outcome counters sum up, and no slot or core leaks.
  Application::Builder b;
  b.SetName("chaos").SetServiceTimeDist(ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  auto gspec = Svc("gw", 256, 8);
  const ServiceId gw = b.AddService(gspec);
  auto wspec = Svc("w", 4, 2);
  wspec.max_queue_per_replica = 8;
  wspec.breaker_threshold = 10;
  const ServiceId w = b.AddService(wspec);
  RpcPolicy p;
  p.timeout = Ms(8);
  p.max_retries = 2;
  p.backoff_base = Ms(2);
  auto t = Type("t", {{gw, Us(200), 0}, {w, Ms(3), Us(200)}});
  t.hops[1].rpc = p;
  b.AddRequestType(t);
  const Application app = std::move(b).Build();

  sim::Simulation sim;
  Cluster cluster(sim, app, 42);
  std::vector<std::uint64_t> completed_ids;
  cluster.telemetry().completion().Subscribe([&](const CompletionRecord& r) {
    completed_ids.push_back(r.request_id);
  });
  for (int i = 0; i < 200; ++i) {
    sim.At(Us(i * 137), [&] {
      cluster.Submit(0, RequestClass::kLegit, false, 1);
    });
  }
  sim.At(Ms(9), [&] { cluster.service(w).Crash(); });
  sim.At(Ms(14), [&] { cluster.service(w).Restart(); });
  sim.RunAll();

  EXPECT_EQ(cluster.submitted_count(), 200u);
  EXPECT_EQ(cluster.completed_count(), 200u);
  EXPECT_EQ(cluster.in_flight(), 0u);
  ASSERT_EQ(completed_ids.size(), 200u);
  std::sort(completed_ids.begin(), completed_ids.end());
  completed_ids.erase(
      std::unique(completed_ids.begin(), completed_ids.end()),
      completed_ids.end());
  EXPECT_EQ(completed_ids.size(), 200u);  // no double completion
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kOutcomeCount; ++i) {
    sum += cluster.outcome_count(static_cast<Outcome>(i));
  }
  EXPECT_EQ(sum, 200u);
  for (std::size_t i = 0; i < cluster.service_count(); ++i) {
    const auto& svc = cluster.service(static_cast<ServiceId>(i));
    EXPECT_EQ(svc.slots_in_use(), 0) << app.service(i).name;
    EXPECT_EQ(svc.slots_waiting(), 0) << app.service(i).name;
    EXPECT_EQ(svc.cpu_busy(), 0) << app.service(i).name;
    EXPECT_EQ(svc.cpu_queue_length(), 0) << app.service(i).name;
  }
  // The crash actually bit: some requests failed or were shed.
  EXPECT_GT(cluster.completed_count() - cluster.ok_count(), 0u);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

TEST(RpcPolicy, DormantDefaultsChangeNothing) {
  // The seed behaviour must be bit-identical with no policy configured:
  // same completion time, all-ok outcomes, zero retries.
  const Application app = grunt::testing::SingleChainApp();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();
  EXPECT_EQ(rec.outcome, Outcome::kOk);
  EXPECT_EQ(rec.retries, 0);
  EXPECT_EQ(rec.end, Ms(9) + Us(1200));
  EXPECT_EQ(cluster.ok_count(), 1u);
}

}  // namespace
}  // namespace grunt::microsvc
