#include "attack/burst.h"

#include <gtest/gtest.h>

#include "attack/sim_target_client.h"
#include "fixtures.h"
#include "microsvc/cluster.h"

namespace grunt::attack {
namespace {

struct Rig {
  sim::Simulation sim;
  microsvc::Application app = grunt::testing::SingleChainApp();
  microsvc::Cluster cluster{sim, app, 1};
  SimTargetClient client{cluster};
  BotFarm bots{{Ms(3500), 0}};
};

TEST(BurstObservation, EstimatorsOnSyntheticData) {
  BurstObservation obs;
  obs.rate = 100;
  obs.length_s = 0.1;
  obs.responses = {{Ms(0), Ms(50)}, {Ms(10), Ms(90)}, {Ms(20), Ms(70)}};
  EXPECT_DOUBLE_EQ(obs.EstimatePmbMs(), 40.0);  // last end 90 - first end 50
  EXPECT_DOUBLE_EQ(obs.MeanRtMs(), (50 + 80 + 50) / 3.0);
  EXPECT_DOUBLE_EQ(obs.MedianRtMs(), 50.0);
  EXPECT_DOUBLE_EQ(obs.MaxRtMs(), 80.0);
  EXPECT_EQ(obs.LastCompletion(), Ms(90));
  EXPECT_DOUBLE_EQ(obs.volume(), 10.0);

  BurstObservation empty;
  EXPECT_DOUBLE_EQ(empty.EstimatePmbMs(), 0.0);
  EXPECT_DOUBLE_EQ(empty.MeanRtMs(), 0.0);
  EXPECT_DOUBLE_EQ(empty.MedianRtMs(), 0.0);
}

TEST(BurstSender, SendsAtRequestedSpacingAndCollectsAll) {
  Rig rig;
  BurstObservation got;
  bool done = false;
  BurstSender::Send(rig.client, rig.bots, 0, /*heavy=*/false, /*rate=*/100,
                    /*count=*/10, /*attack_traffic=*/true,
                    [&](BurstObservation obs) {
                      got = std::move(obs);
                      done = true;
                    });
  rig.sim.RunAll();
  ASSERT_TRUE(done);
  ASSERT_EQ(got.responses.size(), 10u);
  // 100/s spacing = 10 ms between sends.
  for (std::size_t i = 1; i < got.responses.size(); ++i) {
    EXPECT_EQ(got.responses[i].sent - got.responses[i - 1].sent, Ms(10));
  }
  // One request per bot within a burst.
  EXPECT_EQ(rig.bots.bot_count(), 10u);
  EXPECT_DOUBLE_EQ(got.rate, 100);
  EXPECT_DOUBLE_EQ(got.length_s, 0.1);
}

TEST(BurstSender, RejectsBadShape) {
  Rig rig;
  EXPECT_THROW(BurstSender::Send(rig.client, rig.bots, 0, false, 0, 5, false,
                                 nullptr),
               std::invalid_argument);
  EXPECT_THROW(BurstSender::Send(rig.client, rig.bots, 0, false, 100, 0,
                                 false, nullptr),
               std::invalid_argument);
}

TEST(BurstSender, PmbEstimateReflectsQueueDrain) {
  // An uncongested chain completes requests at send spacing: the burst's
  // P_MB estimate stays near count * spacing. A saturating burst spreads
  // completions by the drain time instead.
  Rig rig;
  double relaxed_pmb = 0, saturated_pmb = 0;
  BurstSender::Send(rig.client, rig.bots, 0, false, 20, 5, false,
                    [&](BurstObservation obs) {
                      relaxed_pmb = obs.EstimatePmbMs();
                    });
  rig.sim.RunAll();
  BurstSender::Send(rig.client, rig.bots, 0, /*heavy=*/true, 2000, 60, false,
                    [&](BurstObservation obs) {
                      saturated_pmb = obs.EstimatePmbMs();
                    });
  rig.sim.RunAll();
  EXPECT_NEAR(relaxed_pmb, 200.0, 20.0);  // 4 gaps x 50 ms
  // 60 heavy requests = 60 * 10 ms on s1 (2 cores) ~ 300+ ms drain.
  EXPECT_GT(saturated_pmb, 250.0);
}

TEST(ProbeSender, ProbesAreLightAndSpaced) {
  Rig rig;
  BurstObservation got;
  ProbeSender::Send(rig.client, rig.bots, 0, 5, Ms(200),
                    [&](BurstObservation obs) { got = std::move(obs); });
  rig.sim.RunAll();
  ASSERT_EQ(got.responses.size(), 5u);
  // Probes on an idle system all see the deterministic baseline RT.
  for (const auto& r : got.responses) {
    EXPECT_EQ(r.completed - r.sent, Ms(9) + Us(1200));
  }
  EXPECT_THROW(ProbeSender::Send(rig.client, rig.bots, 0, 5, 0, nullptr),
               std::invalid_argument);
}

TEST(SettleUntilQuiet, ReturnsQuicklyOnQuietSystem) {
  Rig rig;
  bool done = false;
  SimTime done_at = 0;
  SettleUntilQuiet(rig.client, rig.bots, {0}, {10.2}, Ms(500), 10, 2.0,
                   [&] {
                     done = true;
                     done_at = rig.sim.Now();
                   });
  rig.sim.RunAll();
  EXPECT_TRUE(done);
  EXPECT_LT(done_at, Ms(600));  // one retry period + one probe RT
}

TEST(SettleUntilQuiet, WaitsOutCongestion) {
  Rig rig;
  // Pile ~1.5 s of work on s1 first.
  const auto s1 = *rig.app.FindService("s1");
  for (int i = 0; i < 300; ++i) {
    rig.cluster.service(s1).RunCpu(Ms(10), [] {});
  }
  bool done = false;
  SimTime done_at = 0;
  SettleUntilQuiet(rig.client, rig.bots, {0}, {10.2}, Ms(200), 50, 2.0,
                   [&] {
                     done = true;
                     done_at = rig.sim.Now();
                   });
  rig.sim.RunAll();
  EXPECT_TRUE(done);
  EXPECT_GT(done_at, Ms(1200));  // had to wait for the backlog to drain
}

TEST(SettleUntilQuiet, GivesUpAfterMaxTries) {
  Rig rig;
  // Saturate s1 far beyond the patience budget.
  const auto s1 = *rig.app.FindService("s1");
  rig.cluster.service(s1).RunCpu(Sec(60), [] {});
  rig.cluster.service(s1).RunCpu(Sec(60), [] {});
  bool done = false;
  SettleUntilQuiet(rig.client, rig.bots, {0}, {10.2}, Ms(100), 3, 2.0,
                   [&] { done = true; });
  rig.sim.RunUntil(Sec(70));
  EXPECT_TRUE(done);  // bounded: gave up rather than waiting forever
  EXPECT_THROW(SettleUntilQuiet(rig.client, rig.bots, {0, 1}, {10.0}, Ms(100),
                                3, 2.0, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace grunt::attack
