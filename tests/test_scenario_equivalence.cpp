// Golden-equivalence suite for the declarative scenario layer: the legacy
// hand-coded topology builders (copied verbatim below, before src/apps was
// ported to spec wrappers) must produce applications structurally identical
// to the spec-driven factories, across option combinations. Also pins the
// shipped specs/ files to the builtin factories.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "apps/hotelreservation.h"
#include "apps/mubench.h"
#include "apps/socialnetwork.h"
#include "microsvc/application.h"
#include "scenario/builtin_apps.h"
#include "scenario/loader.h"
#include "scenario/registry.h"
#include "util/rng.h"

namespace grunt {
namespace legacy {

// ---- verbatim copies of the pre-scenario-layer builders -------------------

using microsvc::Hop;
using microsvc::RequestTypeSpec;
using microsvc::ServiceId;
using microsvc::ServiceSpec;

SimDuration D(double ms, double capacity_scale) {
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(ms * 1000.0 / capacity_scale));
}

microsvc::Application MakeSocialNetwork(
    const apps::SocialNetworkOptions& opts) {
  microsvc::Application::Builder b;
  b.SetName("socialnetwork").SetServiceTimeDist(opts.dist).SetNetLatency(
      Us(400));

  const std::int32_t r = opts.replica_scale;
  auto svc = [&](const char* name, std::int32_t threads, std::int32_t cores,
                 std::int32_t replicas) {
    ServiceSpec spec;
    spec.name = name;
    spec.threads_per_replica =
        threads >= 1024 ? threads
                        : std::max<std::int32_t>(
                              4, static_cast<std::int32_t>(
                                     threads * opts.queue_scale));
    spec.cores_per_replica = cores;
    spec.initial_replicas = replicas;
    spec.max_replicas = replicas * 8;
    if (threads < 1024) {
      spec.max_queue_per_replica = opts.resilience.max_queue_per_replica;
      spec.breaker_threshold = opts.resilience.breaker_threshold;
      spec.breaker_cooldown = opts.resilience.breaker_cooldown;
    }
    return b.AddService(spec);
  };
  if (opts.resilience.default_rpc) {
    b.SetDefaultRpcPolicy(*opts.resilience.default_rpc);
  }

  const ServiceId nginx = svc("nginx", 4096, 16, 1);

  const ServiceId compose_post = svc("compose-post", 20, 4, r);
  const ServiceId unique_id = svc("unique-id", 96, 2, r);
  const ServiceId text_service = svc("text-service", 64, 2, r);
  const ServiceId media_service = svc("media-service", 64, 2, r);
  const ServiceId url_shorten = svc("url-shorten", 64, 2, r);
  const ServiceId user_mention = svc("user-mention", 64, 2, r);
  const ServiceId post_storage = svc("post-storage", 128, 4, r);
  const ServiceId poll_service = svc("poll-service", 64, 2, r);

  const ServiceId home_timeline = svc("home-timeline", 20, 4, r);
  const ServiceId social_graph = svc("social-graph", 64, 2, r);
  const ServiceId media_frontend = svc("media-frontend", 64, 2, r);
  const ServiceId recommender = svc("recommender", 64, 2, r);

  const ServiceId user_timeline = svc("user-timeline", 20, 4, r);
  const ServiceId user_service = svc("user-service", 64, 2, r);
  const ServiceId follow_service = svc("follow-service", 64, 2, r);
  const ServiceId profile_service = svc("profile-service", 64, 2, r);

  const ServiceId media_storage = svc("media-storage", 128, 2, r);
  const ServiceId user_db = svc("user-db", 128, 4, r);
  const ServiceId social_graph_db = svc("social-graph-db", 128, 2, r);
  const ServiceId auth_service = svc("auth-service", 64, 2, r);
  const ServiceId search_service = svc("search-service", 64, 2, r);
  const ServiceId post_cache = svc("post-cache", 128, 2, r);
  const ServiceId timeline_cache = svc("timeline-cache", 128, 2, r);
  const ServiceId user_cache = svc("user-cache", 128, 2, r);
  const ServiceId media_cache = svc("media-cache", 128, 2, r);

  const double cs = opts.capacity_scale;
  auto type = [&](const char* name, std::vector<Hop> hops, double heavy,
                  std::int64_t req_bytes, std::int64_t resp_bytes) {
    RequestTypeSpec spec;
    spec.name = name;
    spec.hops = std::move(hops);
    spec.heavy_multiplier = heavy;
    spec.request_bytes = req_bytes;
    spec.response_bytes = resp_bytes;
    return b.AddRequestType(spec);
  };

  type("compose/text",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(1.5, cs), D(0.7, cs)},
        {unique_id, D(0.4, cs), 0},
        {text_service, D(9.0, cs), D(1.0, cs)},
        {post_storage, D(1.2, cs), 0}},
       1.6, 900, 1500);
  type("compose/media",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(1.5, cs), D(0.7, cs)},
        {media_service, D(10.0, cs), D(1.0, cs)},
        {media_storage, D(1.5, cs), 0}},
       1.6, 4000, 1600);
  type("compose/url",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(1.4, cs), D(0.7, cs)},
        {url_shorten, D(9.0, cs), D(0.8, cs)},
        {post_storage, D(1.0, cs), 0}},
       1.6, 1000, 1400);
  type("compose/mention",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(1.5, cs), D(0.7, cs)},
        {user_mention, D(9.5, cs), D(0.8, cs)},
        {user_db, D(0.8, cs), 0}},
       1.6, 1100, 1400);
  type("compose/poll",
       {{nginx, D(0.3, cs), 0},
        {compose_post, D(24.0, cs), D(1.5, cs)},
        {poll_service, D(1.0, cs), 0}},
       1.6, 1200, 1300);

  type("home/read",
       {{nginx, D(0.3, cs), 0},
        {home_timeline, D(1.4, cs), D(0.6, cs)},
        {social_graph, D(9.0, cs), D(0.8, cs)},
        {post_cache, D(0.8, cs), 0}},
       1.6, 600, 9000);
  type("home/media",
       {{nginx, D(0.3, cs), 0},
        {home_timeline, D(1.4, cs), D(0.6, cs)},
        {media_frontend, D(10.0, cs), D(0.8, cs)},
        {media_cache, D(0.8, cs), 0}},
       1.6, 600, 14000);
  type("home/recommend",
       {{nginx, D(0.3, cs), 0},
        {home_timeline, D(1.4, cs), D(0.6, cs)},
        {recommender, D(11.0, cs), D(0.8, cs)},
        {user_cache, D(0.6, cs), 0}},
       1.6, 700, 7000);

  type("user/read",
       {{nginx, D(0.3, cs), 0},
        {user_timeline, D(1.4, cs), D(0.6, cs)},
        {user_service, D(9.0, cs), D(0.8, cs)},
        {timeline_cache, D(0.8, cs), 0}},
       1.6, 600, 8000);
  type("user/follow",
       {{nginx, D(0.3, cs), 0},
        {user_timeline, D(1.4, cs), D(0.6, cs)},
        {follow_service, D(9.5, cs), D(0.8, cs)},
        {social_graph_db, D(0.8, cs), 0}},
       1.6, 700, 1200);
  type("user/profile",
       {{nginx, D(0.3, cs), 0},
        {user_timeline, D(1.4, cs), D(0.6, cs)},
        {profile_service, D(10.0, cs), D(0.8, cs)},
        {user_db, D(0.7, cs), 0}},
       1.6, 600, 6000);

  type("auth/login",
       {{nginx, D(0.3, cs), 0},
        {auth_service, D(6.0, cs), D(0.8, cs)},
        {user_cache, D(0.6, cs), 0}},
       1.5, 500, 900);
  type("search",
       {{nginx, D(0.3, cs), 0},
        {search_service, D(8.0, cs), D(0.8, cs)},
        {post_cache, D(0.7, cs), 0}},
       1.6, 600, 5000);

  {
    RequestTypeSpec spec;
    spec.name = "static/logo.png";
    spec.is_static = true;
    spec.request_bytes = 400;
    spec.response_bytes = 25000;
    b.AddRequestType(spec);
  }

  return std::move(b).Build();
}

microsvc::Application MakeHotelReservation(
    const apps::HotelReservationOptions& opts) {
  microsvc::Application::Builder b;
  b.SetName("hotelreservation")
      .SetServiceTimeDist(opts.dist)
      .SetNetLatency(Us(400));

  const std::int32_t r = opts.replica_scale;
  auto svc = [&](const char* name, std::int32_t threads, std::int32_t cores,
                 std::int32_t replicas) {
    ServiceSpec spec;
    spec.name = name;
    spec.threads_per_replica = threads;
    spec.cores_per_replica = cores;
    spec.initial_replicas = replicas;
    spec.max_replicas = replicas * 8;
    if (threads < 1024) {
      spec.max_queue_per_replica = opts.resilience.max_queue_per_replica;
      spec.breaker_threshold = opts.resilience.breaker_threshold;
      spec.breaker_cooldown = opts.resilience.breaker_cooldown;
    }
    return b.AddService(spec);
  };
  if (opts.resilience.default_rpc) {
    b.SetDefaultRpcPolicy(*opts.resilience.default_rpc);
  }

  const ServiceId frontend = svc("frontend", 4096, 16, 1);

  const ServiceId search = svc("search", 20, 4, r);
  const ServiceId geo = svc("geo", 64, 2, r);
  const ServiceId rate = svc("rate", 64, 2, r);
  const ServiceId recommendation = svc("recommendation", 64, 2, r);
  const ServiceId hotel_db = svc("hotel-db", 128, 4, r);
  const ServiceId geo_cache = svc("geo-cache", 128, 2, r);
  const ServiceId rate_cache = svc("rate-cache", 128, 2, r);

  const ServiceId reservation = svc("reservation", 20, 4, r);
  const ServiceId availability = svc("availability", 64, 2, r);
  const ServiceId payment = svc("payment", 64, 2, r);
  const ServiceId booking_records = svc("booking-records", 64, 2, r);
  const ServiceId booking_db = svc("booking-db", 128, 4, r);
  const ServiceId payment_gateway = svc("payment-gateway", 128, 2, r);

  const ServiceId user = svc("user", 64, 2, r);
  const ServiceId profile = svc("profile", 64, 2, r);
  const ServiceId user_db = svc("user-db", 128, 2, r);
  const ServiceId profile_db = svc("profile-db", 128, 2, r);

  const double cs = opts.capacity_scale;
  auto type = [&](const char* name, std::vector<Hop> hops, double heavy,
                  std::int64_t req_bytes, std::int64_t resp_bytes) {
    RequestTypeSpec spec;
    spec.name = name;
    spec.hops = std::move(hops);
    spec.heavy_multiplier = heavy;
    spec.request_bytes = req_bytes;
    spec.response_bytes = resp_bytes;
    return b.AddRequestType(spec);
  };

  type("search/nearby",
       {{frontend, D(0.3, cs), 0},
        {search, D(1.5, cs), D(0.6, cs)},
        {geo, D(9.0, cs), D(0.8, cs)},
        {geo_cache, D(0.8, cs), 0}},
       1.6, 700, 9000);
  type("search/rates",
       {{frontend, D(0.3, cs), 0},
        {search, D(1.5, cs), D(0.6, cs)},
        {rate, D(10.0, cs), D(0.8, cs)},
        {rate_cache, D(0.8, cs), 0}},
       1.6, 700, 7000);
  type("search/recommend",
       {{frontend, D(0.3, cs), 0},
        {search, D(1.5, cs), D(0.6, cs)},
        {recommendation, D(10.5, cs), D(0.8, cs)},
        {hotel_db, D(0.8, cs), 0}},
       1.6, 700, 8000);
  type("search/complex",
       {{frontend, D(0.3, cs), 0},
        {search, D(24.0, cs), D(1.5, cs)},
        {hotel_db, D(1.0, cs), 0}},
       1.6, 900, 11000);

  type("reserve/availability",
       {{frontend, D(0.3, cs), 0},
        {reservation, D(1.5, cs), D(0.6, cs)},
        {availability, D(9.5, cs), D(0.8, cs)},
        {booking_db, D(0.8, cs), 0}},
       1.6, 800, 3000);
  type("reserve/book",
       {{frontend, D(0.3, cs), 0},
        {reservation, D(1.6, cs), D(0.7, cs)},
        {payment, D(10.0, cs), D(0.8, cs)},
        {payment_gateway, D(1.0, cs), 0}},
       1.6, 1200, 1500);
  type("reserve/history",
       {{frontend, D(0.3, cs), 0},
        {reservation, D(1.5, cs), D(0.6, cs)},
        {booking_records, D(9.0, cs), D(0.8, cs)},
        {booking_db, D(0.7, cs), 0}},
       1.6, 600, 5000);

  type("user/login",
       {{frontend, D(0.3, cs), 0},
        {user, D(7.0, cs), D(0.8, cs)},
        {user_db, D(0.6, cs), 0}},
       1.5, 500, 900);
  type("profile/view",
       {{frontend, D(0.3, cs), 0},
        {profile, D(8.0, cs), D(0.8, cs)},
        {profile_db, D(0.7, cs), 0}},
       1.6, 500, 6000);

  {
    RequestTypeSpec st;
    st.name = "static/map-tile.png";
    st.is_static = true;
    st.request_bytes = 400;
    st.response_bytes = 60000;
    b.AddRequestType(st);
  }

  return std::move(b).Build();
}

microsvc::Application MakeMuBench(const apps::MuBenchOptions& opts) {
  RngStream rng(opts.seed, "mubench.topology");
  microsvc::Application::Builder b;
  b.SetName("mubench-" + std::to_string(opts.services) + "-s" +
            std::to_string(opts.seed))
      .SetServiceTimeDist(opts.dist)
      .SetNetLatency(Us(400));

  std::int32_t remaining = opts.services;
  auto svc = [&](const std::string& name, std::int32_t threads,
                 std::int32_t cores) {
    ServiceSpec spec;
    spec.name = name;
    spec.threads_per_replica = threads;
    spec.cores_per_replica = cores;
    spec.initial_replicas = 1;
    spec.max_replicas = 8;
    if (threads < 1024) {
      spec.max_queue_per_replica = opts.resilience.max_queue_per_replica;
      spec.breaker_threshold = opts.resilience.breaker_threshold;
      spec.breaker_cooldown = opts.resilience.breaker_cooldown;
    }
    --remaining;
    return b.AddService(spec);
  };
  if (opts.resilience.default_rpc) {
    b.SetDefaultRpcPolicy(*opts.resilience.default_rpc);
  }

  const ServiceId gateway = svc("gateway", 4096, 16);

  auto light_demand = [&] { return Us(300 + rng.NextInt(0, 900)); };
  auto heavy_demand = [&] { return Us(8000 + rng.NextInt(0, 3500)); };

  auto add_type = [&](const std::string& name, std::vector<Hop> hops) {
    RequestTypeSpec spec;
    spec.name = name;
    spec.hops = std::move(hops);
    spec.heavy_multiplier = 1.6;
    spec.request_bytes = 500 + rng.NextInt(0, 1500);
    spec.response_bytes = 1000 + rng.NextInt(0, 9000);
    return b.AddRequestType(spec);
  };

  for (std::int32_t g = 0; g < opts.groups; ++g) {
    const std::string gp = "g" + std::to_string(g);
    const ServiceId um = svc(gp + "-frontend", 20, 4);
    for (std::int32_t p = 0; p < opts.paths_per_group; ++p) {
      const std::string pp = gp + "-p" + std::to_string(p);
      const ServiceId worker = svc(pp + "-worker", 64, 2);
      const ServiceId leaf = svc(pp + "-store", 128, 2);
      std::vector<Hop> hops;
      hops.push_back({gateway, Us(300), 0});
      hops.push_back({um, Us(1400), Us(600)});
      if (rng.NextBool(0.5) && remaining > opts.groups) {
        const ServiceId mid = svc(pp + "-mid", 96, 2);
        hops.push_back({mid, light_demand(), 0});
      }
      hops.push_back({worker, heavy_demand(), Us(800)});
      hops.push_back({leaf, light_demand(), 0});
      add_type("api/" + pp, std::move(hops));
    }
    if (g < opts.upstream_paths) {
      const ServiceId leaf = svc(gp + "-audit", 128, 2);
      add_type("api/" + gp + "-admin",
               {{gateway, Us(300), 0},
                {um, Us(24000), Us(1200)},
                {leaf, light_demand(), 0}});
    }
  }

  for (std::int32_t s = 0; s < opts.singleton_paths; ++s) {
    const std::string sp = "solo" + std::to_string(s);
    const ServiceId worker = svc(sp + "-worker", 64, 2);
    const ServiceId leaf = svc(sp + "-store", 128, 2);
    add_type("api/" + sp, {{gateway, Us(300), 0},
                           {worker, heavy_demand(), Us(800)},
                           {leaf, light_demand(), 0}});
  }

  std::int32_t pad = 0;
  while (remaining > 0) {
    svc("internal-" + std::to_string(pad++), 32, 1);
  }

  return std::move(b).Build();
}

}  // namespace legacy

namespace {

TEST(ScenarioEquivalence, SocialNetworkDefaultAndScaledOptions) {
  const apps::SocialNetworkOptions combos[] = {
      {},
      {2, 1.0, microsvc::ServiceTimeDist::kExponential, 1.0, {}},
      {1, 0.95, microsvc::ServiceTimeDist::kExponential, 1.0, {}},
      {2, 1.05, microsvc::ServiceTimeDist::kDeterministic, 0.5, {}},
      {1, 1.0, microsvc::ServiceTimeDist::kExponential, 2.0, {}},
  };
  for (const auto& opts : combos) {
    EXPECT_TRUE(microsvc::StructurallyEqual(legacy::MakeSocialNetwork(opts),
                                            apps::MakeSocialNetwork(opts)))
        << "replica=" << opts.replica_scale << " cap=" << opts.capacity_scale
        << " queue=" << opts.queue_scale;
  }
}

TEST(ScenarioEquivalence, SocialNetworkWithResilienceDeployed) {
  apps::SocialNetworkOptions opts;
  opts.resilience.max_queue_per_replica = 48;
  opts.resilience.breaker_threshold = 4;
  opts.resilience.breaker_cooldown = Ms(750);
  microsvc::RpcPolicy rpc;
  rpc.timeout = Ms(200);
  rpc.max_retries = 1;
  opts.resilience.default_rpc = rpc;
  EXPECT_TRUE(microsvc::StructurallyEqual(legacy::MakeSocialNetwork(opts),
                                          apps::MakeSocialNetwork(opts)));
}

TEST(ScenarioEquivalence, HotelReservationAcrossOptions) {
  const apps::HotelReservationOptions combos[] = {
      {},
      {2, 1.0, microsvc::ServiceTimeDist::kExponential, {}},
      {1, 0.95, microsvc::ServiceTimeDist::kDeterministic, {}},
  };
  for (const auto& opts : combos) {
    EXPECT_TRUE(microsvc::StructurallyEqual(
        legacy::MakeHotelReservation(opts), apps::MakeHotelReservation(opts)))
        << "replica=" << opts.replica_scale << " cap=" << opts.capacity_scale;
  }
  apps::HotelReservationOptions res;
  res.resilience.max_queue_per_replica = 40;
  res.resilience.breaker_threshold = 3;
  EXPECT_TRUE(microsvc::StructurallyEqual(legacy::MakeHotelReservation(res),
                                          apps::MakeHotelReservation(res)));
}

TEST(ScenarioEquivalence, MuBenchAcrossSeedsAndShapes) {
  for (const std::uint64_t seed : {1ull, 7ull, 62ull, 118ull, 196ull}) {
    apps::MuBenchOptions opts;
    opts.seed = seed;
    EXPECT_TRUE(microsvc::StructurallyEqual(legacy::MakeMuBench(opts),
                                            apps::MakeMuBench(opts)))
        << "seed=" << seed;
  }
  // Paper scales (Table IV) + a resilience deployment.
  for (const std::int32_t services : {62, 118, 196}) {
    apps::MuBenchOptions opts;
    opts.services = services;
    opts.seed = static_cast<std::uint64_t>(services);
    opts.resilience.max_queue_per_replica = 32;
    EXPECT_TRUE(microsvc::StructurallyEqual(legacy::MakeMuBench(opts),
                                            apps::MakeMuBench(opts)))
        << "services=" << services;
  }
}

TEST(ScenarioEquivalence, ShippedSpecFilesMatchBuiltins) {
  const std::string dir = GRUNT_SPECS_DIR;
  const struct {
    const char* file;
    const char* builtin;
  } cases[] = {
      {"socialnetwork.json", "socialnetwork"},
      {"hotelreservation.json", "hotelreservation"},
      {"mubench-62.json", "mubench-62"},
      {"mubench-118.json", "mubench-118"},
      {"mubench-196.json", "mubench-196"},
      {"socialnetwork_defended.json", "socialnetwork_defended"},
  };
  for (const auto& c : cases) {
    const auto from_file = scenario::LoadScenarioFile(dir + "/" + c.file);
    const auto builtin = scenario::MakeBuiltin(c.builtin);
    ASSERT_TRUE(builtin.has_value()) << c.builtin;
    EXPECT_EQ(from_file, *builtin) << c.file;
    EXPECT_TRUE(microsvc::StructurallyEqual(
        scenario::BuildApplication(from_file.topology),
        scenario::BuildApplication(builtin->topology)))
        << c.file;
  }
}

TEST(ScenarioEquivalence, DefendedMechanismsRoundTripPerToggle) {
  // Each mechanism the defense bench toggles must survive the JSON dump ->
  // parse -> build path unchanged: spec equality AND structural equality of
  // the built application, so bench_defense_degradation's matrix and a
  // file-driven deployment of the same config cannot drift apart.
  const scenario::DeploymentParams ref = scenario::DefendedDeployment();
  scenario::DeploymentParams timeouts;
  timeouts.default_rpc = ref.default_rpc;
  timeouts.edge_rpc = ref.edge_rpc;
  timeouts.client_rpc = ref.client_rpc;
  timeouts.endpoint_deadline = ref.endpoint_deadline;
  scenario::DeploymentParams bulkhead = timeouts;
  bulkhead.bulkhead_per_downstream = ref.bulkhead_per_downstream;
  bulkhead.max_queue_per_replica = ref.max_queue_per_replica;
  scenario::DeploymentParams adaptive = timeouts;
  adaptive.adaptive_limit = ref.adaptive_limit;
  scenario::DeploymentParams shed = timeouts;
  shed.deadline_shed = ref.deadline_shed;

  const struct {
    const char* name;
    const scenario::DeploymentParams& params;
  } cases[] = {{"timeouts", timeouts},
               {"bulkhead", bulkhead},
               {"adaptive", adaptive},
               {"shed", shed},
               {"full", ref}};
  for (const auto& c : cases) {
    const auto spec = scenario::SocialNetworkScenario(c.params);
    const auto reparsed = scenario::ParseScenario(scenario::DumpScenario(spec));
    EXPECT_EQ(spec, reparsed) << c.name;
    EXPECT_TRUE(microsvc::StructurallyEqual(
        scenario::BuildApplication(spec.topology),
        scenario::BuildApplication(reparsed.topology)))
        << c.name;
  }
}

TEST(ScenarioEquivalence, ShippedSocialNetworkDrivesLegacyFactoryShape) {
  // The shipped file, loaded and built, is the same application the apps
  // factory returns at defaults — specs/ and code can't drift apart.
  const auto spec =
      scenario::LoadScenarioFile(std::string(GRUNT_SPECS_DIR) +
                                 "/socialnetwork.json");
  EXPECT_TRUE(microsvc::StructurallyEqual(
      scenario::BuildApplication(spec.topology), apps::MakeSocialNetwork({})));
}

}  // namespace
}  // namespace grunt
