// Cluster behaviour under runtime scaling: replicas added/removed while
// requests are in flight, capacity effects on latency, and conservation
// invariants (every submitted request completes exactly once).

#include <gtest/gtest.h>

#include "fixtures.h"
#include "microsvc/cluster.h"
#include "util/stats.h"
#include "workload/workload.h"

namespace grunt::microsvc {
namespace {

using grunt::testing::SingleChainApp;

TEST(ClusterScaling, ScaleOutCutsQueueingLatency) {
  sim::Simulation sim;
  const auto app = SingleChainApp(ServiceTimeDist::kExponential);
  Cluster cluster(sim, app, 21);
  // Overload s1 (capacity ~333/s at 6ms on 2 cores) with 420/s.
  workload::OpenLoopSource::Config wl;
  wl.rate = 420;
  wl.mix = workload::RequestMix::Uniform({0});
  workload::OpenLoopSource src(cluster, wl, 21);
  src.Start();
  const auto s1 = *app.FindService("s1");
  sim.At(Sec(20), [&] { cluster.service(s1).AddReplica(); });
  sim.RunUntil(Sec(45));

  Samples before, after;
  for (const auto& rec : cluster.completions()) {
    if (rec.end >= Sec(12) && rec.end < Sec(20)) {
      before.Add(ToMillis(rec.end - rec.start));
    } else if (rec.end >= Sec(30) && rec.end < Sec(45)) {
      after.Add(ToMillis(rec.end - rec.start));
    }
  }
  ASSERT_GT(before.count(), 500u);
  ASSERT_GT(after.count(), 500u);
  EXPECT_GT(before.mean(), 3 * after.mean());
  EXPECT_EQ(cluster.service(s1).replicas(), 2);
}

TEST(ClusterScaling, ScaleInRaisesLatencyButLosesNothing) {
  sim::Simulation sim;
  const auto app = SingleChainApp(ServiceTimeDist::kExponential);
  Cluster cluster(sim, app, 22);
  const auto s1 = *app.FindService("s1");
  cluster.service(s1).AddReplica();  // start at 2 replicas
  workload::OpenLoopSource::Config wl;
  wl.rate = 250;
  wl.mix = workload::RequestMix::Uniform({0});
  workload::OpenLoopSource src(cluster, wl, 22);
  src.Start();
  sim.At(Sec(20), [&] { cluster.service(s1).RemoveReplica(); });
  sim.RunUntil(Sec(40));
  src.Stop();
  sim.RunUntil(Sec(60));  // drain

  // Conservation: everything submitted completed exactly once.
  EXPECT_EQ(cluster.in_flight(), 0u);
  EXPECT_EQ(cluster.completed_count(), src.requests_issued());
  EXPECT_EQ(cluster.completions().size(), src.requests_issued());

  Samples before, after;
  for (const auto& rec : cluster.completions()) {
    if (rec.end >= Sec(10) && rec.end < Sec(20)) {
      before.Add(ToMillis(rec.end - rec.start));
    } else if (rec.end >= Sec(25) && rec.end < Sec(40)) {
      after.Add(ToMillis(rec.end - rec.start));
    }
  }
  // 250/s against 333/s on one replica: noticeably slower than on two.
  EXPECT_GT(after.mean(), before.mean() * 1.3);
}

TEST(ClusterScaling, RequestIdsAreUniqueAndMonotonic) {
  sim::Simulation sim;
  const auto app = SingleChainApp();
  Cluster cluster(sim, app, 23);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(cluster.Submit(0, RequestClass::kLegit, false, 1));
  }
  sim.RunAll();
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], ids[i - 1] + 1);
  }
  EXPECT_EQ(cluster.submitted_count(), 50u);
  EXPECT_EQ(cluster.completed_count(), 50u);
}

TEST(ClusterScaling, CompletionOrderRespectsCausalityUnderContention) {
  // With deterministic demands and FCFS resources, a request submitted
  // strictly later through an empty pipeline can never complete earlier.
  sim::Simulation sim;
  const auto app = SingleChainApp();
  Cluster cluster(sim, app, 24);
  std::vector<SimTime> ends(3, 0);
  for (int i = 0; i < 3; ++i) {
    sim.At(Sec(i), [&cluster, &ends, i] {
      cluster.Submit(0, RequestClass::kLegit, false, 1,
                     [&ends, i](const CompletionRecord& r) {
                       ends[static_cast<std::size_t>(i)] = r.end;
                     });
    });
  }
  sim.RunAll();
  EXPECT_LT(ends[0], ends[1]);
  EXPECT_LT(ends[1], ends[2]);
}

}  // namespace
}  // namespace grunt::microsvc
