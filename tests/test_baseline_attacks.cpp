#include "baseline/tail_attack.h"

#include <gtest/gtest.h>

#include "attack/sim_target_client.h"
#include "cloud/ids.h"
#include "cloud/monitor.h"
#include "fixtures.h"
#include "microsvc/cluster.h"
#include "workload/workload.h"

namespace grunt::baseline {
namespace {

struct Rig {
  explicit Rig(microsvc::Application application, double total_rate)
      : app(std::move(application)), cluster(sim, app, 21), client(cluster),
        rt(cluster, {Sec(1), "rt"}), bots({}) {
    workload::OpenLoopSource::Config wl;
    wl.rate = total_rate;
    wl.mix = workload::RequestMix::Uniform(app.PublicDynamicTypes());
    source = std::make_unique<workload::OpenLoopSource>(cluster, wl, 21);
    source->Start();
    rt.Start();
    sim.RunUntil(Sec(10));
  }

  sim::Simulation sim;
  microsvc::Application app;
  microsvc::Cluster cluster;
  attack::SimTargetClient client;
  cloud::ResponseTimeMonitor rt;
  attack::BotFarm bots;
  std::unique_ptr<workload::OpenLoopSource> source;
};

TEST(TailAttack, DamagesTheAttackedPathOnly) {
  // On a microservice target with independent paths, the single-path Tail
  // attack hurts its own path but leaves the other path intact — the
  // paper's core argument for why Grunt is needed (Sec VII).
  Rig rig(grunt::testing::DisjointApp(
              microsvc::ServiceTimeDist::kExponential),
          80.0);
  TailAttack::Config cfg;
  cfg.url = 0;
  cfg.rate = 1000;
  cfg.count = 80;
  cfg.interval = Ms(400);
  TailAttack tail(rig.client, rig.bots, cfg);
  bool done = false;
  tail.Run(rig.sim.Now() + Sec(30), [&] { done = true; });
  while (!done && rig.sim.Now() < Sec(300)) {
    rig.sim.RunUntil(rig.sim.Now() + Sec(5));
  }
  ASSERT_TRUE(done);
  EXPECT_GT(tail.bursts().size(), 10u);
  EXPECT_GT(tail.attack_requests(), 500u);

  // Per-type damage from the completion log.
  Samples rt_x, rt_y;
  for (const auto& rec : rig.cluster.completions()) {
    if (rec.cls != microsvc::RequestClass::kLegit) continue;
    if (rec.start < Sec(12)) continue;
    (rec.type == 0 ? rt_x : rt_y).Add(ToMillis(rec.end - rec.start));
  }
  ASSERT_GT(rt_x.count(), 50u);
  ASSERT_GT(rt_y.count(), 50u);
  EXPECT_GT(rt_x.mean(), 3.0 * rt_y.mean());
  EXPECT_LT(rt_y.mean(), 40.0);  // untouched path stays near baseline
}

TEST(TailAttack, RejectsBadConfig) {
  Rig rig(grunt::testing::DisjointApp(), 10.0);
  TailAttack::Config bad;
  bad.rate = 0;
  EXPECT_THROW(TailAttack(rig.client, rig.bots, bad), std::invalid_argument);
}

TEST(FloodAttack, SaturatesButTripsRateBasedIds) {
  Rig rig(grunt::testing::DisjointApp(
              microsvc::ServiceTimeDist::kExponential),
          80.0);
  cloud::Ids ids(rig.cluster, nullptr, nullptr, {});
  ids.Start();
  // A flood reuses a small bot pool at high rate: the per-IP rules fire.
  attack::BotFarm small_farm({Ms(100), 500'000});
  FloodAttack::Config cfg;
  cfg.urls = {0, 1};
  cfg.rate = 2000;
  FloodAttack flood(rig.client, small_farm, cfg);
  bool done = false;
  flood.Run(rig.sim.Now() + Sec(10), [&] { done = true; });
  while (!done && rig.sim.Now() < Sec(200)) {
    rig.sim.RunUntil(rig.sim.Now() + Sec(5));
  }
  ASSERT_TRUE(done);
  EXPECT_GT(flood.attack_requests(), 10'000u);
  EXPECT_GT(ids.CountAlerts(cloud::AlertRule::kInterRequestInterval), 0u);
  EXPECT_GT(ids.attributed_attack_alerts(), 0u);
}

TEST(FloodAttack, RejectsBadConfig) {
  Rig rig(grunt::testing::DisjointApp(), 10.0);
  EXPECT_THROW(FloodAttack(rig.client, rig.bots, {{}, 100.0}),
               std::invalid_argument);
  EXPECT_THROW(FloodAttack(rig.client, rig.bots, {{0}, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace grunt::baseline
