#include "model/queuing_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace grunt::model {
namespace {

Stage MakeStage(double q, double ca, double cl, double lambda) {
  return Stage{q, ca, cl, lambda};
}

TEST(QueuingModel, Eq1QueueFromExecutionBlocking) {
  // Q_B = L * (lambda + B - C_A): 0.5s * (100 + 500 - 200) = 200.
  const Stage s = MakeStage(32, 200, 300, 100);
  const Burst burst{500, 0.5};
  EXPECT_DOUBLE_EQ(QueueFromExecutionBlocking(burst, s), 200.0);
  // Under-capacity burst builds no queue.
  EXPECT_DOUBLE_EQ(QueueFromExecutionBlocking({50, 0.5}, s), 0.0);
}

TEST(QueuingModel, Eq2FillTime) {
  // l = Q / (lambda + B - C_A) = 40 / (100 + 500 - 200) = 0.1 s.
  const Stage s = MakeStage(40, 200, 300, 100);
  EXPECT_DOUBLE_EQ(FillTime({500, 1.0}, s), 0.1);
  EXPECT_TRUE(std::isinf(FillTime({50, 1.0}, s)));
}

TEST(QueuingModel, Eq3CrossTierQueue) {
  // Stages: shared UM s, then bottleneck n. Burst must fill n's queue
  // before queueing at s.
  const Stage um = MakeStage(32, 1000, 1500, 200);
  const Stage bn = MakeStage(40, 200, 300, 100);
  const Burst burst{500, 0.5};
  const Stage stages[] = {um, bn};
  // l_n = 0.1 s; effective L = 0.4 s; buildup = (200+100) + 500 - 200 = 600.
  EXPECT_DOUBLE_EQ(QueueFromCrossTierBlocking(burst, stages), 0.4 * 600);
  // A burst too short to fill the downstream queue builds nothing.
  EXPECT_DOUBLE_EQ(QueueFromCrossTierBlocking({500, 0.05}, stages), 0.0);
  // A burst that cannot overflow at all builds nothing.
  EXPECT_DOUBLE_EQ(QueueFromCrossTierBlocking({50, 10.0}, stages), 0.0);
  EXPECT_THROW(QueueFromCrossTierBlocking(burst, {}), std::invalid_argument);
}

TEST(QueuingModel, Eq4DamageLatency) {
  const Stage s = MakeStage(32, 200, 300, 100);
  EXPECT_DOUBLE_EQ(DamageLatency(100, s), 0.5);
  EXPECT_DOUBLE_EQ(DamageLatency(-5, s), 0.0);
  EXPECT_THROW(DamageLatency(10, MakeStage(1, 0, 1, 0)),
               std::invalid_argument);
}

TEST(QueuingModel, Eq5MillibottleneckLength) {
  // P_MB = B*L / C_A / (1 - lambda/C_L) = 250/200/0.5 = 2.5 s.
  const Stage s = MakeStage(32, 200, 300, 150);
  EXPECT_DOUBLE_EQ(MillibottleneckLength({500, 0.5}, s), 2.5);
  // Saturated background -> infinite millibottleneck.
  EXPECT_TRUE(std::isinf(MillibottleneckLength({500, 0.5},
                                               MakeStage(32, 200, 300, 300))));
  EXPECT_THROW(MillibottleneckLength({500, 0.5}, MakeStage(1, 0, 1, 0)),
               std::invalid_argument);
}

TEST(QueuingModel, Eq6to9PersistentDamage) {
  const std::vector<double> damages = {0.3, 0.25, 0.2};
  EXPECT_DOUBLE_EQ(TotalDamage(damages), 0.75);           // Eq 6
  EXPECT_DOUBLE_EQ(RemainingDamage(0.75, 0.3), 0.45);     // Eq 7
  const auto intervals = RequiredIntervals(damages);       // Eq 9
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_DOUBLE_EQ(intervals[1], 0.25);
  // Eq 8 steady state: t_min stays constant when I_i = t_damage_i.
  double tmin = RemainingDamage(TotalDamage(damages), 0.3);
  for (std::size_t i = 0; i < damages.size(); ++i) {
    tmin = tmin + damages[i] - intervals[i];
  }
  EXPECT_DOUBLE_EQ(tmin, 0.45);
}

TEST(QueuingModel, InverseRelationsRoundTrip) {
  const Stage s = MakeStage(32, 200, 300, 150);
  const double target = 0.5;
  const double volume = VolumeForMillibottleneck(target, s);
  // Any B/L split with that volume reproduces the target P_MB.
  EXPECT_NEAR(MillibottleneckLength({1000, volume / 1000}, s), target, 1e-12);
  EXPECT_NEAR(MillibottleneckLength({250, volume / 250}, s), target, 1e-12);
  const double len = BurstLengthForMillibottleneck(target, 500, s);
  EXPECT_NEAR(MillibottleneckLength({500, len}, s), target, 1e-12);
  EXPECT_THROW(BurstLengthForMillibottleneck(0.5, 0, s),
               std::invalid_argument);
  // Saturated stage: zero volume suffices.
  EXPECT_DOUBLE_EQ(
      VolumeForMillibottleneck(0.5, MakeStage(32, 200, 300, 300)), 0.0);
}

/// Property: damage and millibottleneck length are linear in L at fixed B
/// (the relation the Kalman-filter controller relies on, Sec III summary).
class LinearInLTest : public ::testing::TestWithParam<double> {};

TEST_P(LinearInLTest, DamageAndPmbScaleWithL) {
  const Stage s = MakeStage(32, 200, 300, 100);
  const double b = GetParam();
  const Burst one{b, 0.2};
  const Burst two{b, 0.4};
  if (QueueFromExecutionBlocking(one, s) > 0) {
    EXPECT_NEAR(QueueFromExecutionBlocking(two, s),
                2 * QueueFromExecutionBlocking(one, s), 1e-9);
  }
  EXPECT_NEAR(MillibottleneckLength(two, s),
              2 * MillibottleneckLength(one, s), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, LinearInLTest,
                         ::testing::Values(300.0, 500.0, 900.0, 2000.0));

/// Property: queue build-up is monotone in both B and L.
class MonotoneBurstTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(MonotoneBurstTest, QueueMonotoneInRateAndLength) {
  const Stage um = MakeStage(32, 1000, 1500, 200);
  const Stage bn = MakeStage(40, 200, 300, 100);
  const Stage stages[] = {um, bn};
  const auto [b, l] = GetParam();
  const double q0 = QueueFromCrossTierBlocking({b, l}, stages);
  EXPECT_LE(q0, QueueFromCrossTierBlocking({b * 1.5, l}, stages));
  EXPECT_LE(q0, QueueFromCrossTierBlocking({b, l * 1.5}, stages));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MonotoneBurstTest,
    ::testing::Values(std::make_pair(300.0, 0.2), std::make_pair(600.0, 0.5),
                      std::make_pair(1500.0, 0.1),
                      std::make_pair(150.0, 2.0)));

TEST(Ranking, ExecutionBlockingBeatsCrossTierThenVolume) {
  std::vector<Candidate> cands = {
      {2, BlockingKind::kCrossTier, 50.0},
      {0, BlockingKind::kExecution, 90.0},
      {1, BlockingKind::kCrossTier, 30.0},
      {3, BlockingKind::kExecution, 40.0},
      {4, BlockingKind::kCrossTier, 30.0},
  };
  const auto ranked = RankCandidates(std::move(cands));
  ASSERT_EQ(ranked.size(), 5u);
  EXPECT_EQ(ranked[0].type, 3);  // execution, lower volume
  EXPECT_EQ(ranked[1].type, 0);  // execution, higher volume
  EXPECT_EQ(ranked[2].type, 1);  // cross-tier, volume 30, lower id
  EXPECT_EQ(ranked[3].type, 4);  // cross-tier, volume 30, higher id
  EXPECT_EQ(ranked[4].type, 2);
}

TEST(Ranking, KindFromDependenciesReadsPairEvidence) {
  std::vector<trace::PairwiseDep> pairs(3);
  pairs[0].a = 0;
  pairs[0].b = 1;
  pairs[0].type = trace::DepType::kSequentialAUp;
  pairs[1].a = 2;
  pairs[1].b = 1;
  pairs[1].type = trace::DepType::kSequentialBUp;
  pairs[2].a = 3;
  pairs[2].b = 4;
  pairs[2].type = trace::DepType::kMutual;
  EXPECT_EQ(KindFromDependencies(0, pairs), BlockingKind::kExecution);
  EXPECT_EQ(KindFromDependencies(1, pairs), BlockingKind::kExecution);
  EXPECT_EQ(KindFromDependencies(2, pairs), BlockingKind::kCrossTier);
  EXPECT_EQ(KindFromDependencies(3, pairs), BlockingKind::kExecution);
  EXPECT_EQ(KindFromDependencies(5, pairs), BlockingKind::kCrossTier);
}

}  // namespace
}  // namespace grunt::model
