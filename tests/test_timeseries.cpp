#include "util/timeseries.h"

#include <gtest/gtest.h>

namespace grunt {
namespace {

TimeSeries Ramp() {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.Add(Sec(i), static_cast<double>(i));
  }
  return ts;
}

TEST(TimeSeries, RejectsTimeGoingBackwards) {
  TimeSeries ts;
  ts.Add(Sec(2), 1.0);
  ts.Add(Sec(2), 2.0);  // equal time is fine
  EXPECT_THROW(ts.Add(Sec(1), 3.0), std::invalid_argument);
}

TEST(TimeSeries, WindowStatsHalfOpenInterval) {
  const TimeSeries ts = Ramp();
  const RunningStats s = ts.WindowStats(Sec(2), Sec(5));
  EXPECT_EQ(s.count(), 3u);  // t = 2, 3, 4
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(ts.WindowMax(Sec(2), Sec(5)), 4.0);
  EXPECT_DOUBLE_EQ(ts.WindowMean(Sec(2), Sec(5)), 3.0);
}

TEST(TimeSeries, WindowOutsideDataIsEmpty) {
  const TimeSeries ts = Ramp();
  EXPECT_EQ(ts.WindowStats(Sec(100), Sec(200)).count(), 0u);
  EXPECT_DOUBLE_EQ(ts.WindowMax(Sec(100), Sec(200)), 0.0);
}

TEST(TimeSeries, LongestRunAboveThreshold) {
  TimeSeries ts;
  // 1s-spaced samples: below, above x3, below, above x2.
  const double vals[] = {0, 1, 1, 1, 0, 1, 1};
  for (int i = 0; i < 7; ++i) ts.Add(Sec(i), vals[i]);
  // Runs measured between first and last qualifying sample times.
  EXPECT_EQ(ts.LongestRunAbove(0.5, 0, Sec(10)), Sec(2));  // t=1..3
  EXPECT_EQ(ts.LongestRunAbove(2.0, 0, Sec(10)), 0);
}

TEST(TimeSeries, ResampleAveragesWindows) {
  const TimeSeries ts = Ramp();
  const auto out = ts.Resample(0, Sec(10), Sec(2));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0].value, 0.5);   // mean(0,1)
  EXPECT_DOUBLE_EQ(out[4].value, 8.5);   // mean(8,9)
  EXPECT_EQ(out[1].time, Sec(2));
  EXPECT_THROW(ts.Resample(0, Sec(10), 0), std::invalid_argument);
}

}  // namespace
}  // namespace grunt
