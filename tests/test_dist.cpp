// Tests for the out-of-process campaign layer (src/dist): frame codec,
// job registry, and the CampaignExecutor's three backends — including the
// determinism contract (bit-identical results on every backend at any
// worker count) and crash containment (a dying worker fails one job with a
// diagnosable error, not the campaign).

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/campaign_executor.h"
#include "dist/frame.h"
#include "dist/job_registry.h"
#include "dist/worker_loop.h"
#include "telemetry/bus.h"
#include "util/env.h"
#include "util/json.h"

namespace grunt::dist {
namespace {

// ---- test job kinds ------------------------------------------------------

void RegisterTestKinds() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = JobRegistry::Global();
    // Deterministic pure function of (args, seed).
    reg.Register("t_echo", [](const json::Value& args, std::uint64_t seed) {
      json::Object o;
      o.emplace_back("sum", args.At("x").AsInt64() +
                                static_cast<std::int64_t>(seed));
      o.emplace_back("tag", args.At("tag").AsString());
      return json::Value(std::move(o));
    });
    // Throws for odd seeds.
    reg.Register("t_flaky", [](const json::Value& args,
                               std::uint64_t seed) -> json::Value {
      if (seed % 2 == 1) {
        throw std::runtime_error("boom seed " + std::to_string(seed));
      }
      return args;
    });
    // Kills its worker process outright when args.crash is true.
    reg.Register("t_crash", [](const json::Value& args,
                               std::uint64_t /*seed*/) -> json::Value {
      if (const json::Value* c = args.Find("crash");
          c != nullptr && c->AsBool()) {
        ::_exit(42);
      }
      json::Object o;
      o.emplace_back("ok", true);
      return json::Value(std::move(o));
    });
  });
}

std::vector<JobSpec> EchoJobs(std::size_t n) {
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    json::Object o;
    o.emplace_back("x", static_cast<std::int64_t>(i * 10));
    o.emplace_back("tag", "job" + std::to_string(i));
    jobs.push_back(JobSpec{json::Value(std::move(o)), /*seed=*/i + 100});
  }
  return jobs;
}

std::vector<std::string> Dumps(const std::vector<json::Value>& vals) {
  std::vector<std::string> out;
  for (const auto& v : vals) out.push_back(v.Dump(0));
  return out;
}

std::vector<json::Value> RunEchoOn(Backend backend, unsigned workers,
                                   std::size_t n,
                                   telemetry::TelemetryBus* bus = nullptr) {
  ExecutorConfig cfg;
  cfg.backend = backend;
  cfg.workers = workers;
  cfg.bus = bus;
  CampaignExecutor exec(cfg);
  return exec.Run("t_echo", EchoJobs(n));
}

// ---- frame codec ---------------------------------------------------------

TEST(Frame, RoundTripsOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const Frame sent{FrameType::kJob, R"({"job":0,"kind":"k"})"};
  WriteFrame(fds[1], sent);
  Frame got;
  ASSERT_TRUE(ReadFrame(fds[0], &got));
  EXPECT_EQ(got.type, FrameType::kJob);
  EXPECT_EQ(got.payload, sent.payload);
  // Empty payload is legal (kShutdown has none).
  WriteFrame(fds[1], Frame{FrameType::kShutdown, ""});
  ASSERT_TRUE(ReadFrame(fds[0], &got));
  EXPECT_EQ(got.type, FrameType::kShutdown);
  EXPECT_TRUE(got.payload.empty());
  ::close(fds[1]);
  // Clean EOF at a frame boundary: false, not an error.
  EXPECT_FALSE(ReadFrame(fds[0], &got));
  ::close(fds[0]);
}

TEST(Frame, TruncatedFrameIsAProtocolError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Header promises 10 payload bytes; deliver the type byte and 3 of them.
  const std::uint32_t len = 1 + 10;
  ASSERT_EQ(::write(fds[1], &len, 4), 4);
  const unsigned char partial[4] = {2, 'a', 'b', 'c'};
  ASSERT_EQ(::write(fds[1], partial, 4), 4);
  ::close(fds[1]);
  Frame got;
  EXPECT_THROW(ReadFrame(fds[0], &got), FrameError);
  ::close(fds[0]);
}

TEST(Frame, RejectsCorruptHeaders) {
  {  // zero length (no room for the type byte)
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::uint32_t len = 0;
    ASSERT_EQ(::write(fds[1], &len, 4), 4);
    ::close(fds[1]);
    Frame got;
    EXPECT_THROW(ReadFrame(fds[0], &got), FrameError);
    ::close(fds[0]);
  }
  {  // absurd length
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::uint32_t len = 0xffffffffu;
    ASSERT_EQ(::write(fds[1], &len, 4), 4);
    ::close(fds[1]);
    Frame got;
    EXPECT_THROW(ReadFrame(fds[0], &got), FrameError);
    ::close(fds[0]);
  }
  {  // unknown frame type
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::uint32_t len = 1;
    ASSERT_EQ(::write(fds[1], &len, 4), 4);
    const unsigned char type = 99;
    ASSERT_EQ(::write(fds[1], &type, 1), 1);
    ::close(fds[1]);
    Frame got;
    EXPECT_THROW(ReadFrame(fds[0], &got), FrameError);
    ::close(fds[0]);
  }
}

// ---- job registry --------------------------------------------------------

TEST(JobRegistry, FindsRegisteredKindsAndRejectsDuplicates) {
  RegisterTestKinds();
  auto& reg = JobRegistry::Global();
  EXPECT_NE(reg.Find("t_echo"), nullptr);
  EXPECT_EQ(reg.Find("no_such_kind"), nullptr);
  EXPECT_THROW(reg.Register("t_echo", [](const json::Value& a,
                                         std::uint64_t) { return a; }),
               json::Error);
}

TEST(JobRegistry, RunRegisteredJobNamesUnknownKind) {
  try {
    RunRegisteredJob("definitely_missing", json::Value(json::Object{}), 1);
    FAIL() << "expected json::Error";
  } catch (const json::Error& e) {
    EXPECT_NE(std::string(e.what()).find("definitely_missing"),
              std::string::npos)
        << e.what();
  }
}

// ---- executor config -----------------------------------------------------

TEST(ExecutorConfig, ParsesBackendsAndRejectsGarbage) {
  EXPECT_EQ(ParseBackend("thread"), Backend::kThread);
  EXPECT_EQ(ParseBackend("process"), Backend::kProcess);
  EXPECT_EQ(ParseBackend("socket"), Backend::kSocket);
  EXPECT_THROW(ParseBackend("forkjoin"), util::EnvError);

  ::setenv("GRUNT_BENCH_BACKEND", "process", 1);
  ::setenv("GRUNT_BENCH_WORKERS", "3", 1);
  ExecutorConfig cfg = ConfigFromEnv();
  EXPECT_EQ(cfg.backend, Backend::kProcess);
  EXPECT_EQ(cfg.workers, 3u);

  ::setenv("GRUNT_BENCH_BACKEND", "bogus", 1);
  EXPECT_THROW(ConfigFromEnv(), util::EnvError);
  ::setenv("GRUNT_BENCH_BACKEND", "thread", 1);
  ::setenv("GRUNT_BENCH_WORKERS", "minus two", 1);
  EXPECT_THROW(ConfigFromEnv(), util::EnvError);

  ::unsetenv("GRUNT_BENCH_BACKEND");
  ::unsetenv("GRUNT_BENCH_WORKERS");
  cfg = ConfigFromEnv();
  EXPECT_EQ(cfg.backend, Backend::kThread);
  EXPECT_EQ(cfg.workers, 0u);  // resolves to DefaultThreads in the ctor
}

// ---- determinism across backends -----------------------------------------

TEST(CampaignExecutor, ResultsAreBitIdenticalAcrossBackends) {
  RegisterTestKinds();
  constexpr std::size_t kJobs = 9;
  const auto reference = Dumps(RunEchoOn(Backend::kThread, 1, kJobs));
  ASSERT_EQ(reference.size(), kJobs);
  EXPECT_EQ(Dumps(RunEchoOn(Backend::kThread, 4, kJobs)), reference);
  EXPECT_EQ(Dumps(RunEchoOn(Backend::kProcess, 1, kJobs)), reference);
  EXPECT_EQ(Dumps(RunEchoOn(Backend::kProcess, 4, kJobs)), reference);
}

TEST(CampaignExecutor, SocketBackendMatchesToo) {
  RegisterTestKinds();
  constexpr std::size_t kJobs = 5;
  const auto reference = Dumps(RunEchoOn(Backend::kThread, 1, kJobs));
  std::thread worker;
  std::vector<std::string> got;
  {
    ExecutorConfig cfg;
    cfg.backend = Backend::kSocket;
    cfg.workers = 1;
    cfg.accept_timeout_sec = 30.0;
    CampaignExecutor exec(cfg);
    const std::uint16_t port = exec.BindListener();
    ASSERT_GT(port, 0);
    worker = std::thread(
        [port] { RunSocketWorker("127.0.0.1", port, "test-worker"); });
    got = Dumps(exec.Run("t_echo", EchoJobs(kJobs)));
    EXPECT_EQ(exec.worker_stats().at(0).name, "test-worker");
  }  // destructor shuts the lane down, ending the worker loop
  worker.join();
  EXPECT_EQ(got, reference);
}

TEST(CampaignExecutor, PoolPersistsAcrossRuns) {
  RegisterTestKinds();
  ExecutorConfig cfg;
  cfg.backend = Backend::kProcess;
  cfg.workers = 2;
  CampaignExecutor exec(cfg);
  const auto first = Dumps(exec.Run("t_echo", EchoJobs(4)));
  const auto second = Dumps(exec.Run("t_echo", EchoJobs(4)));
  EXPECT_EQ(first, second);
  // Same pids served both batches: no respawn between runs.
  for (const auto& st : exec.worker_stats()) {
    EXPECT_EQ(st.restarts, 0u);
  }
  std::uint64_t total = 0;
  for (const auto& st : exec.worker_stats()) total += st.jobs;
  EXPECT_EQ(total, 8u);
}

// ---- error propagation (satellite: job-index + backend context) ----------

TEST(CampaignExecutor, ThreadBackendCarriesJobContextInErrors) {
  RegisterTestKinds();
  ExecutorConfig cfg;
  cfg.backend = Backend::kThread;
  cfg.workers = 2;
  CampaignExecutor exec(cfg);
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 6; ++i) {
    jobs.push_back(JobSpec{json::Value(json::Object{}), /*seed=*/i});
  }
  // Seeds 1,3,5 throw; Run must surface the lowest failed index with kind,
  // backend, and the underlying message.
  try {
    exec.Run("t_flaky", jobs);
    FAIL() << "expected CampaignError";
  } catch (const CampaignError& e) {
    EXPECT_EQ(e.job_index(), 1u);
    EXPECT_EQ(e.kind(), "t_flaky");
    EXPECT_EQ(e.backend(), Backend::kThread);
    const std::string what = e.what();
    EXPECT_NE(what.find("job 1"), std::string::npos) << what;
    EXPECT_NE(what.find("t_flaky"), std::string::npos) << what;
    EXPECT_NE(what.find("thread"), std::string::npos) << what;
    EXPECT_NE(what.find("boom seed 1"), std::string::npos) << what;
  }
  // RunAll reports every failure individually, successes intact.
  const auto outcomes = exec.RunAll("t_flaky", jobs);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].ok, i % 2 == 0) << i;
  }
}

TEST(CampaignExecutor, ProcessBackendCarriesJobContextInErrors) {
  RegisterTestKinds();
  ExecutorConfig cfg;
  cfg.backend = Backend::kProcess;
  cfg.workers = 2;
  CampaignExecutor exec(cfg);
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 4; ++i) {
    jobs.push_back(JobSpec{json::Value(json::Object{}), /*seed=*/i});
  }
  try {
    exec.Run("t_flaky", jobs);
    FAIL() << "expected CampaignError";
  } catch (const CampaignError& e) {
    EXPECT_EQ(e.job_index(), 1u);
    EXPECT_EQ(e.backend(), Backend::kProcess);
    const std::string what = e.what();
    EXPECT_NE(what.find("job 1"), std::string::npos) << what;
    EXPECT_NE(what.find("process"), std::string::npos) << what;
    EXPECT_NE(what.find("boom seed 1"), std::string::npos) << what;
  }
}

// ---- crash containment ---------------------------------------------------

TEST(CampaignExecutor, WorkerCrashFailsOnlyItsJob) {
  RegisterTestKinds();
  ExecutorConfig cfg;
  cfg.backend = Backend::kProcess;
  cfg.workers = 2;
  CampaignExecutor exec(cfg);
  constexpr std::size_t kJobs = 6;
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    json::Object o;
    o.emplace_back("crash", i == 3);
    jobs.push_back(JobSpec{json::Value(std::move(o)), /*seed=*/i});
  }
  const auto outcomes = exec.RunAll("t_crash", jobs);
  ASSERT_EQ(outcomes.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(outcomes[i].ok) << i << ": " << outcomes[i].error;
  }
  EXPECT_FALSE(outcomes[3].ok);
  const std::string& err = outcomes[3].error;
  EXPECT_NE(err.find("job 3"), std::string::npos) << err;
  EXPECT_NE(err.find("t_crash"), std::string::npos) << err;
  EXPECT_NE(err.find("process"), std::string::npos) << err;
  EXPECT_NE(err.find("exited with status 42"), std::string::npos) << err;
  // The pool replaced the dead worker to finish the remaining jobs.
  unsigned restarts = 0;
  for (const auto& st : exec.worker_stats()) restarts += st.restarts;
  EXPECT_GE(restarts, 1u);
}

// ---- telemetry -----------------------------------------------------------

TEST(CampaignExecutor, PublishesPerJobEventsAndCounters) {
  RegisterTestKinds();
  telemetry::TelemetryBus bus;
  std::vector<std::size_t> seen;
  bus.campaign_job().Subscribe(
      [&](const telemetry::CampaignJobEvent& e) {
        seen.push_back(e.job_index);
        EXPECT_TRUE(e.ok);
        EXPECT_GE(e.latency_ms, 0.0);
      });
  constexpr std::size_t kJobs = 5;
  {
    ExecutorConfig cfg;
    cfg.backend = Backend::kProcess;
    cfg.workers = 2;
    cfg.bus = &bus;
    CampaignExecutor exec(cfg);
    exec.Run("t_echo", EchoJobs(kJobs));
    const json::Value stats = exec.StatsJson();
    EXPECT_EQ(stats.At("backend").AsString(), "process");
    std::int64_t total = 0;
    for (const auto& w : stats.At("per_worker").AsArray()) {
      total += w.At("jobs").AsInt64();
    }
    EXPECT_EQ(total, static_cast<std::int64_t>(kJobs));
  }
  EXPECT_EQ(seen.size(), kJobs);
  auto& reg = bus.metrics();
  const auto ok_id = reg.Find("campaign.jobs_ok");
  ASSERT_NE(ok_id, telemetry::MetricsRegistry::kInvalidId);
  EXPECT_EQ(reg.counter_value(ok_id), kJobs);
  const auto ms_id = reg.Find("campaign.job_ms");
  ASSERT_NE(ms_id, telemetry::MetricsRegistry::kInvalidId);
  EXPECT_EQ(reg.histogram_count(ms_id), kJobs);
}

TEST(CampaignExecutor, ThreadBackendPublishesInIndexOrder) {
  RegisterTestKinds();
  telemetry::TelemetryBus bus;
  std::vector<std::size_t> seen;
  bus.campaign_job().Subscribe(
      [&](const telemetry::CampaignJobEvent& e) {
        seen.push_back(e.job_index);
      });
  ExecutorConfig cfg;
  cfg.backend = Backend::kThread;
  cfg.workers = 4;
  cfg.bus = &bus;
  CampaignExecutor exec(cfg);
  exec.Run("t_echo", EchoJobs(7));
  // The bus is not thread-safe, so the thread backend publishes after the
  // barrier — deterministically, in job-index order.
  ASSERT_EQ(seen.size(), 7u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace grunt::dist
