#include "attack/kalman.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace grunt::attack {
namespace {

TEST(ScalarKalman, ConvergesToConstantSignal) {
  ScalarKalman kf(/*q=*/0.01, /*r=*/4.0, /*x0=*/0.0, /*p0=*/100.0);
  RngStream rng(1, "kf");
  for (int i = 0; i < 500; ++i) {
    kf.Update(10.0 + rng.NextNormal(0, 2, -100));
  }
  EXPECT_NEAR(kf.value(), 10.0, 0.5);
  // Posterior variance settles well below the prior.
  EXPECT_LT(kf.variance(), 1.0);
}

TEST(ScalarKalman, GainStaysInUnitInterval) {
  ScalarKalman kf(1.0, 10.0, 0.0, 50.0);
  for (int i = 0; i < 100; ++i) {
    kf.Update(5.0);
    EXPECT_GT(kf.last_gain(), 0.0);
    EXPECT_LT(kf.last_gain(), 1.0);
  }
}

TEST(ScalarKalman, SmoothsNoiseBetterThanRawMeasurements) {
  ScalarKalman kf(0.1, 25.0, 100.0, 100.0);
  RngStream rng(2, "kf2");
  double raw_err = 0, kf_err = 0;
  const double truth = 100.0;
  for (int i = 0; i < 1000; ++i) {
    const double meas = truth + rng.NextNormal(0, 5, -1e9);
    const double est = kf.Update(meas);
    raw_err += (meas - truth) * (meas - truth);
    kf_err += (est - truth) * (est - truth);
  }
  EXPECT_LT(kf_err, raw_err / 4);
}

TEST(ScalarKalman, TracksDriftingSignal) {
  // With nonzero process noise the filter follows a ramp with bounded lag.
  ScalarKalman kf(4.0, 25.0, 0.0, 100.0);
  double truth = 0;
  for (int i = 0; i < 300; ++i) {
    truth += 1.0;
    kf.Update(truth);
  }
  EXPECT_NEAR(kf.value(), truth, 5.0);
}

TEST(ScalarKalman, FirstUpdateDominatedByPriorVariance) {
  ScalarKalman kf(0.0, 1.0, 0.0, 1e6);
  kf.Update(42.0);
  EXPECT_NEAR(kf.value(), 42.0, 0.01);  // huge prior variance -> trust data
}

TEST(ScalarKalman, RejectsInvalidVariances) {
  EXPECT_THROW(ScalarKalman(-1, 1, 0, 1), std::invalid_argument);
  EXPECT_THROW(ScalarKalman(1, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(ScalarKalman(1, 1, 0, -1), std::invalid_argument);
}

}  // namespace
}  // namespace grunt::attack
