#include "cloud/monitor.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "workload/workload.h"

namespace grunt::cloud {
namespace {

using grunt::testing::SingleChainApp;

TEST(ResourceMonitor, MeasuresKnownCpuUtilization) {
  sim::Simulation sim;
  const auto app = SingleChainApp();  // deterministic demands
  microsvc::Cluster cluster(sim, app, 1);
  ResourceMonitor monitor(cluster, {Sec(1), "m"});
  monitor.Start();
  // s1: 5 ms (+1 ms post) on 2 cores. 100 req/s -> util = 0.6/2 = 30%.
  workload::OpenLoopSource::Config cfg;
  cfg.rate = 100;
  cfg.mix = workload::RequestMix::Uniform({0});
  workload::OpenLoopSource src(cluster, cfg, 1);
  src.Start();
  sim.RunUntil(Sec(30));
  const auto s1 = *app.FindService("s1");
  const double util = monitor.cpu_util(s1).WindowMean(Sec(5), Sec(30));
  EXPECT_NEAR(util, 0.30, 0.03);
  const auto s0 = *app.FindService("s0");
  EXPECT_NEAR(monitor.cpu_util(s0).WindowMean(Sec(5), Sec(30)), 0.05, 0.02);
  EXPECT_EQ(monitor.HottestService(Sec(5), Sec(30)), s1);
}

TEST(ResourceMonitor, GatewayMbpsTracksBytes) {
  sim::Simulation sim;
  const auto app = SingleChainApp();
  microsvc::Cluster cluster(sim, app, 1);
  ResourceMonitor monitor(cluster, {Sec(1), "m"});
  monitor.Start();
  workload::OpenLoopSource::Config cfg;
  cfg.rate = 200;
  cfg.mix = workload::RequestMix::Uniform({0});
  workload::OpenLoopSource src(cluster, cfg, 2);
  src.Start();
  sim.RunUntil(Sec(20));
  const auto& spec = app.request_type(0);
  const double expected_mbps =
      200.0 * static_cast<double>(spec.request_bytes + spec.response_bytes) /
      1e6;
  EXPECT_NEAR(monitor.gateway_mbps().WindowMean(Sec(5), Sec(20)),
              expected_mbps, expected_mbps * 0.15);
}

TEST(ResourceMonitor, GranularityControlsSampleCount) {
  sim::Simulation sim;
  const auto app = SingleChainApp();
  microsvc::Cluster cluster(sim, app, 1);
  ResourceMonitor coarse(cluster, {Sec(1), "coarse"});
  ResourceMonitor fine(cluster, {Ms(100), "fine"});
  coarse.Start();
  fine.Start();
  sim.RunUntil(Sec(10));
  EXPECT_EQ(coarse.cpu_util(0).size(), 10u);
  EXPECT_EQ(fine.cpu_util(0).size(), 100u);
  coarse.Stop();
  fine.Stop();
  sim.RunUntil(Sec(12));
  EXPECT_EQ(coarse.cpu_util(0).size(), 10u);
}

TEST(ResourceMonitor, FineGranularitySeesMillibottleneckCoarseMisses) {
  // The stealthiness argument in miniature (Fig 13 vs Fig 14): a ~300 ms
  // CPU burst saturates the service; only the 100 ms monitor sees >95%
  // utilization samples.
  sim::Simulation sim;
  const auto app = SingleChainApp();
  microsvc::Cluster cluster(sim, app, 1);
  ResourceMonitor coarse(cluster, {Sec(1), "coarse"});
  ResourceMonitor fine(cluster, {Ms(100), "fine"});
  coarse.Start();
  fine.Start();
  const auto s1 = *app.FindService("s1");
  // Saturate s1's 2 cores for ~300 ms starting at t=2.2s.
  sim.At(Ms(2200), [&] {
    for (int i = 0; i < 100; ++i) {
      cluster.service(s1).RunCpu(Ms(6), [] {});
    }
  });
  sim.RunUntil(Sec(5));
  EXPECT_GT(fine.cpu_util(s1).WindowMax(0, Sec(5)), 0.95);
  EXPECT_LT(coarse.cpu_util(s1).WindowMax(0, Sec(5)), 0.60);
}

TEST(ResponseTimeMonitor, WindowsLegitOnly) {
  sim::Simulation sim;
  const auto app = SingleChainApp();
  microsvc::Cluster cluster(sim, app, 1);
  ResponseTimeMonitor rt(cluster, {Sec(1), "rt"});
  rt.Start();
  // Spaced out so the classes do not contend for CPU.
  sim.At(Ms(100), [&] {
    cluster.Submit(0, microsvc::RequestClass::kLegit, false, 1);
  });
  sim.At(Ms(400), [&] {
    cluster.Submit(0, microsvc::RequestClass::kAttack, true, 2);
  });
  sim.At(Ms(700), [&] {
    cluster.Submit(0, microsvc::RequestClass::kProbe, false, 3);
  });
  sim.RunUntil(Sec(3));
  const Samples window = rt.LegitWindow(0, Sec(3));
  ASSERT_EQ(window.count(), 1u);  // only the legit one
  EXPECT_NEAR(window.mean(), 10.2, 0.01);  // 9 ms CPU + 1.2 ms network
  // Per-window series: the legit completion lands in the first 1 s bucket.
  ASSERT_GE(rt.legit_mean_ms().size(), 3u);
  EXPECT_NEAR(rt.legit_mean_ms().at(0).value, 10.2, 0.01);
  EXPECT_DOUBLE_EQ(rt.legit_mean_ms().at(1).value, 0.0);
  EXPECT_NEAR(rt.legit_throughput().at(0).value, 1.0, 1e-9);
  // The same completion feeds the registry histogram: one observation in
  // "rt.legit_ms", and the p95 estimate lies inside its (10, 20] bucket.
  auto& reg = cluster.telemetry().metrics();
  const auto h = reg.Find("rt.legit_ms");
  ASSERT_NE(h, telemetry::MetricsRegistry::kInvalidId);
  EXPECT_EQ(reg.histogram_count(h), 1u);
  EXPECT_NEAR(reg.histogram_sum(h), 10.2, 0.01);
  const double p95 = reg.histogram_quantile(h, 0.95);
  EXPECT_GT(p95, 10.0);
  EXPECT_LE(p95, 20.0);
}

TEST(ResponseTimeMonitor, P95TracksTail) {
  sim::Simulation sim;
  const auto app = SingleChainApp(microsvc::ServiceTimeDist::kExponential);
  microsvc::Cluster cluster(sim, app, 9);
  ResponseTimeMonitor rt(cluster, {Sec(1), "rt"});
  rt.Start();
  workload::OpenLoopSource::Config cfg;
  cfg.rate = 100;
  cfg.mix = workload::RequestMix::Uniform({0});
  workload::OpenLoopSource src(cluster, cfg, 9);
  src.Start();
  sim.RunUntil(Sec(20));
  const Samples window = rt.LegitWindow(Sec(2), Sec(20));
  EXPECT_GT(window.Percentile(95), window.mean());
}

}  // namespace
}  // namespace grunt::cloud
