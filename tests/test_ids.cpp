#include "cloud/ids.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace grunt::cloud {
namespace {

using grunt::testing::SingleChainApp;

struct Rig {
  sim::Simulation sim;
  microsvc::Application app = SingleChainApp();
  microsvc::Cluster cluster{sim, app, 1};
};

TEST(Ids, FlagsFastConsecutiveRequestsFromOneSession) {
  Rig rig;
  Ids ids(rig.cluster, nullptr, nullptr, {});
  ids.Start();
  // Same client sends two requests 1 s apart (< 3 s threshold).
  rig.sim.At(Sec(1), [&] {
    rig.cluster.Submit(0, microsvc::RequestClass::kAttack, false, 77);
  });
  rig.sim.At(Sec(2), [&] {
    rig.cluster.Submit(0, microsvc::RequestClass::kAttack, false, 77);
  });
  rig.sim.RunUntil(Sec(5));
  EXPECT_EQ(ids.CountAlerts(AlertRule::kInterRequestInterval), 1u);
  EXPECT_EQ(ids.attributed_attack_alerts(), 1u);
}

TEST(Ids, ToleratesHumanPacedSessions) {
  Rig rig;
  Ids ids(rig.cluster, nullptr, nullptr, {});
  ids.Start();
  for (int i = 0; i < 10; ++i) {
    rig.sim.At(Sec(4 * i + 1), [&] {
      rig.cluster.Submit(0, microsvc::RequestClass::kLegit, false, 5);
    });
  }
  rig.sim.RunUntil(Sec(60));
  EXPECT_EQ(ids.CountAlerts(AlertRule::kInterRequestInterval), 0u);
}

TEST(Ids, OneRequestPerBotEvadesTheIntervalRule) {
  // The Grunt bot-farm discipline: every burst request comes from a fresh
  // bot, so no session ever violates the inter-request threshold.
  Rig rig;
  Ids ids(rig.cluster, nullptr, nullptr, {});
  ids.Start();
  for (int i = 0; i < 100; ++i) {
    rig.sim.At(Ms(10 * i + 1000), [&, i] {
      rig.cluster.Submit(0, microsvc::RequestClass::kAttack, true,
                         1000 + static_cast<std::uint64_t>(i));
    });
  }
  rig.sim.RunUntil(Sec(10));
  EXPECT_EQ(ids.CountAlerts(AlertRule::kInterRequestInterval), 0u);
  EXPECT_EQ(ids.CountAlerts(AlertRule::kRateLimit), 0u);
}

TEST(Ids, RateLimitFlagsFloodFromOneIp) {
  Rig rig;
  Ids::Config cfg;
  cfg.rate_limit = 50;
  cfg.rate_window = Sec(60);
  cfg.min_inter_request = 0;  // isolate the rate rule
  Ids ids(rig.cluster, nullptr, nullptr, cfg);
  ids.Start();
  for (int i = 0; i < 120; ++i) {
    rig.sim.At(Ms(100 * i + 100), [&] {
      rig.cluster.Submit(0, microsvc::RequestClass::kAttack, true, 9);
    });
  }
  rig.sim.RunUntil(Sec(30));
  EXPECT_GE(ids.CountAlerts(AlertRule::kRateLimit), 2u);  // 120 / 50
  EXPECT_GE(ids.attributed_attack_alerts(), 2u);
}

TEST(Ids, ResourceSaturationRuleFiresOnSustainedSaturation) {
  Rig rig;
  ResourceMonitor monitor(rig.cluster, {Sec(1), "m"});
  Ids ids(rig.cluster, &monitor, nullptr, {});
  monitor.Start();
  ids.Start();
  const auto s1 = *rig.app.FindService("s1");
  // Saturate both cores for 6 s solid.
  for (int c = 0; c < 2; ++c) {
    rig.sim.At(Sec(1), [&, s1] {
      rig.cluster.service(s1).RunCpu(Sec(6), [] {});
    });
  }
  rig.sim.RunUntil(Sec(10));
  EXPECT_GE(ids.CountAlerts(AlertRule::kResourceSaturation), 1u);
}

TEST(Ids, SubSecondSaturationPulsesDoNotTripResourceRule) {
  Rig rig;
  ResourceMonitor monitor(rig.cluster, {Sec(1), "m"});
  Ids ids(rig.cluster, &monitor, nullptr, {});
  monitor.Start();
  ids.Start();
  const auto s1 = *rig.app.FindService("s1");
  for (SimTime t = Sec(1); t < Sec(30); t += Ms(1500)) {
    rig.sim.At(t, [&, s1] {
      for (int c = 0; c < 2; ++c) {
        rig.cluster.service(s1).RunCpu(Ms(450), [] {});
      }
    });
  }
  rig.sim.RunUntil(Sec(30));
  EXPECT_EQ(ids.CountAlerts(AlertRule::kResourceSaturation), 0u);
}

TEST(Ids, DegradationRuleSeesLongRtButHasNoClientAttribution) {
  Rig rig;
  ResponseTimeMonitor rt(rig.cluster, {Sec(1), "rt"});
  Ids ids(rig.cluster, nullptr, &rt, {});
  rt.Start();
  ids.Start();
  // Saturate s1 then send legit requests that will take > 1 s.
  const auto s1 = *rig.app.FindService("s1");
  rig.sim.At(Ms(100), [&] {
    for (int i = 0; i < 600; ++i) {
      rig.cluster.service(s1).RunCpu(Ms(10), [] {});
    }
    for (int i = 0; i < 5; ++i) {
      rig.cluster.Submit(0, microsvc::RequestClass::kLegit, false, 1);
    }
  });
  rig.sim.RunUntil(Sec(10));
  EXPECT_GE(ids.CountAlerts(AlertRule::kServiceDegradation), 1u);
  for (const auto& alert : ids.alerts()) {
    if (alert.rule == AlertRule::kServiceDegradation) {
      EXPECT_EQ(alert.client_id, 0u);  // no root-cause attribution
    }
  }
  EXPECT_EQ(ids.attributed_attack_alerts(), 0u);
}

TEST(Ids, ContentChecksAlwaysPassOnWellFormedTraffic) {
  Rig rig;
  Ids ids(rig.cluster, nullptr, nullptr, {});
  EXPECT_TRUE(ids.content_checks_passed());
}

TEST(Ids, StoppedIdsIgnoresTraffic) {
  Rig rig;
  Ids ids(rig.cluster, nullptr, nullptr, {});
  ids.Start();
  ids.Stop();
  rig.sim.At(Sec(1), [&] {
    rig.cluster.Submit(0, microsvc::RequestClass::kAttack, false, 7);
    rig.cluster.Submit(0, microsvc::RequestClass::kAttack, false, 7);
  });
  rig.sim.RunUntil(Sec(3));
  EXPECT_TRUE(ids.alerts().empty());
}

}  // namespace
}  // namespace grunt::cloud
