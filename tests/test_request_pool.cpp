// The pooled request lifecycle: SlabPool/RingBuffer semantics, crash/restart
// interacting with pooled state (queued-burst kills, crash-to-zero with
// waiters pending, re-admission ordering), handle-generation safety for
// orphaned attempts, and the bounded completion log. The crash/orphan tests
// double as use-after-free probes for recycled slots under the ASan CI job.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fixtures.h"
#include "microsvc/cluster.h"
#include "sim/ring_buffer.h"
#include "sim/slab_pool.h"

namespace grunt {
namespace {

using grunt::testing::Svc;
using grunt::testing::Type;
using microsvc::Application;
using microsvc::Cluster;
using microsvc::CompletionRecord;
using microsvc::Outcome;
using microsvc::RequestClass;
using microsvc::ServiceId;

// --------------------------------------------------------------------------
// SlabPool

TEST(SlabPool, AcquireReleaseRecyclesSlots) {
  sim::SlabPool<int> pool;
  const auto a = pool.Acquire();
  pool[a] = 41;
  const auto b = pool.Acquire();
  pool[b] = 42;
  EXPECT_NE(a, b);
  EXPECT_EQ(*pool.Get(a), 41);
  EXPECT_EQ(*pool.Get(b), 42);

  pool.Release(a);
  const auto c = pool.Acquire();  // LIFO free list: reuses a's slot
  EXPECT_EQ(c.slot, a.slot);
  EXPECT_NE(c.gen, a.gen);
  // The record is recycled, not destroyed: the old value survives.
  EXPECT_EQ(*pool.Get(c), 41);
}

TEST(SlabPool, StaleAndNullHandlesDereferenceToNull) {
  sim::SlabPool<int> pool;
  EXPECT_EQ(pool.Get(sim::PoolHandle{}), nullptr);
  EXPECT_FALSE(static_cast<bool>(sim::PoolHandle{}));

  const auto h = pool.Acquire();
  EXPECT_TRUE(pool.Alive(h));
  pool.Release(h);
  EXPECT_FALSE(pool.Alive(h));
  EXPECT_EQ(pool.Get(h), nullptr);
  // Recycling the slot must not resurrect the stale handle.
  const auto h2 = pool.Acquire();
  EXPECT_EQ(h2.slot, h.slot);
  EXPECT_EQ(pool.Get(h), nullptr);
  EXPECT_NE(pool.Get(h2), nullptr);
}

TEST(SlabPool, GrowsByChunksAndCountsStats) {
  sim::SlabPool<int> pool;
  std::vector<sim::PoolHandle> handles;
  for (int i = 0; i < 600; ++i) handles.push_back(pool.Acquire());
  const auto& st = pool.stats();
  EXPECT_EQ(st.live, 600u);
  EXPECT_EQ(st.high_water, 600u);
  EXPECT_EQ(st.acquires, 600u);
  EXPECT_GE(st.capacity, 600u);
  EXPECT_EQ(st.capacity % 256, 0u);  // whole chunks
  for (auto h : handles) pool.Release(h);
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().high_water, 600u);
}

TEST(SlabPool, PointersStayValidAcrossGrowth) {
  sim::SlabPool<int> pool;
  const auto first = pool.Acquire();
  int* p = pool.Get(first);
  *p = 7;
  for (int i = 0; i < 1000; ++i) pool.Acquire();  // forces several chunks
  EXPECT_EQ(pool.Get(first), p);  // chunked storage: no reallocation
  EXPECT_EQ(*p, 7);
}

// --------------------------------------------------------------------------
// RingBuffer

TEST(RingBuffer, FifoAcrossGrowthAndWrap) {
  sim::RingBuffer<int> rb;
  // Interleave pushes and pops so the live window wraps the backing array
  // several times while it also grows.
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) rb.push_back(next_push++);
    for (int i = 0; i < 5; ++i) {
      ASSERT_FALSE(rb.empty());
      EXPECT_EQ(rb.front(), next_pop);
      EXPECT_EQ(rb.pop_front(), next_pop++);
    }
  }
  EXPECT_EQ(rb.size(), static_cast<std::size_t>(next_push - next_pop));
  for (std::size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(rb[i], next_pop + static_cast<int>(i));
  }
  while (!rb.empty()) EXPECT_EQ(rb.pop_front(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(RingBuffer, PopFrontMovesOutMoveOnlyValues) {
  sim::RingBuffer<std::unique_ptr<std::string>> rb;
  rb.push_back(std::make_unique<std::string>("a"));
  rb.push_back(std::make_unique<std::string>("b"));
  auto a = rb.pop_front();
  EXPECT_EQ(*a, "a");
  EXPECT_EQ(rb.size(), 1u);
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

// --------------------------------------------------------------------------
// Crash/Restart over pooled request state

/// One service, deterministic bursts, tight CPU so bursts queue.
Application TinyApp(std::int32_t threads, std::int32_t cores) {
  Application::Builder b;
  b.SetName("tiny")
      .SetServiceTimeDist(microsvc::ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  b.AddService(Svc("s", threads, cores));
  b.AddRequestType(Type("t", {{0, Ms(10), 0}}));
  return std::move(b).Build();
}

TEST(PooledCrash, CrashKillsQueuedNotYetRunningBurst) {
  // threads=4, cores=1: both requests get slots, but only the first burst
  // runs — the second sits in the CPU queue when the crash lands.
  const Application app = TinyApp(/*threads=*/4, /*cores=*/1);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  std::vector<CompletionRecord> recs;
  for (int i = 0; i < 2; ++i) {
    cluster.Submit(0, RequestClass::kLegit, false, 1,
                   [&](const CompletionRecord& r) { recs.push_back(r); });
  }
  sim.At(Ms(5), [&] {
    EXPECT_EQ(cluster.service(0).cpu_busy(), 1);
    EXPECT_EQ(cluster.service(0).cpu_queue_length(), 1);
    cluster.service(0).Crash();
  });
  sim.RunAll();
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& r : recs) EXPECT_EQ(r.outcome, Outcome::kFailed);
  EXPECT_EQ(cluster.service(0).killed_bursts(), 2);
  EXPECT_EQ(cluster.service(0).completed_bursts(), 0);
  EXPECT_EQ(cluster.service(0).slots_in_use(), 0);
  // Full drain: every pooled record went back to its free list.
  const auto st = cluster.lifecycle_stats();
  EXPECT_EQ(st.requests.live, 0u);
  EXPECT_EQ(st.calls.live, 0u);
  EXPECT_EQ(st.hops.live, 0u);
}

TEST(PooledCrash, CrashToZeroThenRestartReadmitsWaitersInOrder) {
  // threads=1: request 0 holds the only slot; 1..3 wait on the slot queue.
  const Application app = TinyApp(/*threads=*/1, /*cores=*/1);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  std::vector<CompletionRecord> recs;
  const auto log = [&](const CompletionRecord& r) { recs.push_back(r); };
  for (int i = 0; i < 4; ++i) {
    cluster.Submit(0, RequestClass::kLegit, false, static_cast<std::uint64_t>(i),
                   log);
  }
  sim.At(Ms(5), [&] { cluster.service(0).Crash(); });  // kills request 0
  sim.At(Ms(50), [&] { cluster.service(0).Restart(); });
  sim.RunAll();

  ASSERT_EQ(recs.size(), 4u);
  // The slot holder dies with the crash; the waiters survive (they held no
  // burst) and are re-admitted FIFO after the restart.
  EXPECT_EQ(recs[0].outcome, Outcome::kFailed);
  EXPECT_EQ(recs[0].client_id, 0u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(recs[static_cast<std::size_t>(i)].outcome, Outcome::kOk);
    EXPECT_EQ(recs[static_cast<std::size_t>(i)].client_id,
              static_cast<std::uint64_t>(i));
    EXPECT_GE(recs[static_cast<std::size_t>(i)].end, Ms(50));
  }
  // Serial service, FIFO re-admission: completions are 10 ms apart in
  // submission order.
  EXPECT_EQ(recs[2].end - recs[1].end, Ms(10));
  EXPECT_EQ(recs[3].end - recs[2].end, Ms(10));
  EXPECT_EQ(cluster.service(0).replicas(), 1);
  const auto st = cluster.lifecycle_stats();
  EXPECT_EQ(st.requests.live + st.calls.live + st.hops.live, 0u);
}

TEST(PooledCrash, RepeatedCrashRestartCyclesRecycleSlotsSafely) {
  // Hammer the pool recycling paths: submit → crash → restart, ten cycles.
  // Under ASan this is the use-after-free probe for recycled slots.
  const Application app = TinyApp(/*threads=*/2, /*cores=*/1);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  int failed = 0, ok = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    const SimTime base = Ms(100) * cycle;
    sim.At(base, [&] {
      for (int i = 0; i < 3; ++i) {
        cluster.Submit(0, RequestClass::kLegit, false, 1,
                       [&](const CompletionRecord& r) {
                         (r.outcome == Outcome::kOk ? ok : failed)++;
                       });
      }
    });
    sim.At(base + Ms(5), [&] { cluster.service(0).Crash(); });
    sim.At(base + Ms(20), [&] { cluster.service(0).Restart(); });
  }
  sim.RunAll();
  EXPECT_EQ(ok + failed, 30);
  EXPECT_GT(failed, 0);
  EXPECT_GT(ok, 0);
  const auto st = cluster.lifecycle_stats();
  EXPECT_EQ(st.requests.live + st.calls.live + st.hops.live, 0u);
  // Recycling, not growth: 30 requests never need more than one chunk.
  EXPECT_EQ(st.requests.capacity, 256u);
  EXPECT_EQ(st.requests.acquires, 30u);
  EXPECT_EQ(cluster.DrainInvariantsBroken(), "");
}

// --------------------------------------------------------------------------
// Handle-generation safety: orphaned attempts and their late replies

TEST(PooledLifecycle, OrphanLateReplyIsDiscardedByGenerationCheck) {
  // Two-hop chain; the call into the worker times out long before the
  // worker's 20 ms burst finishes, the retry (against now-warm recycled
  // slots) succeeds, and the orphan's late reply must hit a stale CallState
  // handle and vanish — not alias a recycled record.
  Application::Builder b;
  b.SetName("orphan")
      .SetServiceTimeDist(microsvc::ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  const ServiceId gw = b.AddService(Svc("gw", 8, 4));
  const ServiceId w = b.AddService(Svc("w", 8, 4));
  auto t = Type("t", {{gw, Us(100), 0}, {w, Ms(20), 0}});
  microsvc::RpcPolicy p;
  p.timeout = Ms(5);
  p.max_retries = 3;
  p.backoff_base = Ms(1);
  p.jitter = 0;  // deterministic backoff
  t.hops[1].rpc = p;
  b.AddRequestType(t);
  const Application app = std::move(b).Build();

  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  CompletionRecord rec;
  cluster.Submit(0, RequestClass::kLegit, false, 1,
                 [&](const CompletionRecord& r) { rec = r; });
  sim.RunAll();  // drains the orphan bursts too

  // Every attempt times out (the burst takes 20 ms against a 5 ms timeout).
  EXPECT_EQ(rec.outcome, Outcome::kTimeout);
  EXPECT_EQ(rec.retries, 3);
  // 4 attempts ran to completion downstream as orphans.
  EXPECT_EQ(cluster.service(w).completed_bursts(), 4);
  const auto st = cluster.lifecycle_stats();
  EXPECT_EQ(st.requests.live + st.calls.live + st.hops.live, 0u);
  EXPECT_EQ(st.calls.acquires, 5u);  // hop-0 call + 4 worker attempts
}

TEST(PooledLifecycle, PoolsRecycleAcrossSequentialRequests) {
  const Application app = grunt::testing::SingleChainApp();
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  for (int i = 0; i < 1000; ++i) {
    sim.At(Ms(20) * i, [&cluster] {
      cluster.Submit(0, RequestClass::kLegit, false, 1);
    });
  }
  sim.RunAll();
  EXPECT_EQ(cluster.ok_count(), 1000u);
  const auto st = cluster.lifecycle_stats();
  // Sequential traffic: one request in flight at a time, so the pools never
  // grow past their first chunk no matter how many requests pass through.
  EXPECT_EQ(st.requests.high_water, 1u);
  EXPECT_LE(st.calls.high_water, 4u);
  EXPECT_EQ(st.requests.capacity, 256u);
  EXPECT_EQ(st.requests.acquires, 1000u);
  EXPECT_EQ(st.requests.live + st.calls.live + st.hops.live, 0u);
}

// --------------------------------------------------------------------------
// Bounded completion log

TEST(BoundedCompletions, RetainsNewestSuffixAndCountsDrops) {
  const Application app = TinyApp(/*threads=*/8, /*cores=*/8);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  cluster.SetCompletionLogBound(10);
  std::uint64_t listener_seen = 0;
  cluster.telemetry().completion().Subscribe(
      [&](const CompletionRecord&) { ++listener_seen; });
  for (int i = 0; i < 35; ++i) {
    sim.At(Ms(20) * i, [&cluster] {
      cluster.Submit(0, RequestClass::kLegit, false, 1);
    });
  }
  sim.RunAll();

  EXPECT_EQ(cluster.completed_count(), 35u);
  EXPECT_EQ(listener_seen, 35u);  // the bound drops storage, not visibility
  const auto& log = cluster.completions();
  ASSERT_GE(log.size(), 10u);
  ASSERT_LT(log.size(), 20u);  // compacts at 2n
  EXPECT_EQ(cluster.completions_dropped() + log.size(), 35u);
  // The retained records are the newest contiguous suffix, still in
  // completion order.
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].request_id,
              35u - log.size() + i);
  }
}

TEST(BoundedCompletions, UnboundedByDefault) {
  const Application app = TinyApp(/*threads=*/8, /*cores=*/8);
  sim::Simulation sim;
  Cluster cluster(sim, app, 1);
  for (int i = 0; i < 35; ++i) {
    sim.At(Ms(20) * i, [&cluster] {
      cluster.Submit(0, RequestClass::kLegit, false, 1);
    });
  }
  sim.RunAll();
  EXPECT_EQ(cluster.completions().size(), 35u);
  EXPECT_EQ(cluster.completions_dropped(), 0u);
}

}  // namespace
}  // namespace grunt
