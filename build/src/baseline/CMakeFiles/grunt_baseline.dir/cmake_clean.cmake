file(REMOVE_RECURSE
  "CMakeFiles/grunt_baseline.dir/tail_attack.cpp.o"
  "CMakeFiles/grunt_baseline.dir/tail_attack.cpp.o.d"
  "libgrunt_baseline.a"
  "libgrunt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
