file(REMOVE_RECURSE
  "libgrunt_baseline.a"
)
