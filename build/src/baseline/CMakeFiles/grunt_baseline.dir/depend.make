# Empty dependencies file for grunt_baseline.
# This may be replaced when dependencies are built.
