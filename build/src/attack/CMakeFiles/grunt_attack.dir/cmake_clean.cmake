file(REMOVE_RECURSE
  "CMakeFiles/grunt_attack.dir/botfarm.cpp.o"
  "CMakeFiles/grunt_attack.dir/botfarm.cpp.o.d"
  "CMakeFiles/grunt_attack.dir/burst.cpp.o"
  "CMakeFiles/grunt_attack.dir/burst.cpp.o.d"
  "CMakeFiles/grunt_attack.dir/commander.cpp.o"
  "CMakeFiles/grunt_attack.dir/commander.cpp.o.d"
  "CMakeFiles/grunt_attack.dir/grunt_attack.cpp.o"
  "CMakeFiles/grunt_attack.dir/grunt_attack.cpp.o.d"
  "CMakeFiles/grunt_attack.dir/kalman.cpp.o"
  "CMakeFiles/grunt_attack.dir/kalman.cpp.o.d"
  "CMakeFiles/grunt_attack.dir/profiler.cpp.o"
  "CMakeFiles/grunt_attack.dir/profiler.cpp.o.d"
  "CMakeFiles/grunt_attack.dir/sim_target_client.cpp.o"
  "CMakeFiles/grunt_attack.dir/sim_target_client.cpp.o.d"
  "libgrunt_attack.a"
  "libgrunt_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
