# Empty compiler generated dependencies file for grunt_attack.
# This may be replaced when dependencies are built.
