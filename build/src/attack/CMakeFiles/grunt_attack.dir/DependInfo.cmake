
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/botfarm.cpp" "src/attack/CMakeFiles/grunt_attack.dir/botfarm.cpp.o" "gcc" "src/attack/CMakeFiles/grunt_attack.dir/botfarm.cpp.o.d"
  "/root/repo/src/attack/burst.cpp" "src/attack/CMakeFiles/grunt_attack.dir/burst.cpp.o" "gcc" "src/attack/CMakeFiles/grunt_attack.dir/burst.cpp.o.d"
  "/root/repo/src/attack/commander.cpp" "src/attack/CMakeFiles/grunt_attack.dir/commander.cpp.o" "gcc" "src/attack/CMakeFiles/grunt_attack.dir/commander.cpp.o.d"
  "/root/repo/src/attack/grunt_attack.cpp" "src/attack/CMakeFiles/grunt_attack.dir/grunt_attack.cpp.o" "gcc" "src/attack/CMakeFiles/grunt_attack.dir/grunt_attack.cpp.o.d"
  "/root/repo/src/attack/kalman.cpp" "src/attack/CMakeFiles/grunt_attack.dir/kalman.cpp.o" "gcc" "src/attack/CMakeFiles/grunt_attack.dir/kalman.cpp.o.d"
  "/root/repo/src/attack/profiler.cpp" "src/attack/CMakeFiles/grunt_attack.dir/profiler.cpp.o" "gcc" "src/attack/CMakeFiles/grunt_attack.dir/profiler.cpp.o.d"
  "/root/repo/src/attack/sim_target_client.cpp" "src/attack/CMakeFiles/grunt_attack.dir/sim_target_client.cpp.o" "gcc" "src/attack/CMakeFiles/grunt_attack.dir/sim_target_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/grunt_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/grunt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/microsvc/CMakeFiles/grunt_microsvc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/grunt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grunt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
