file(REMOVE_RECURSE
  "libgrunt_attack.a"
)
