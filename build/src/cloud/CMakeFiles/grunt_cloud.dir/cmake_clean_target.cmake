file(REMOVE_RECURSE
  "libgrunt_cloud.a"
)
