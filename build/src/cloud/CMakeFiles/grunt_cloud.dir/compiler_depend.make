# Empty compiler generated dependencies file for grunt_cloud.
# This may be replaced when dependencies are built.
