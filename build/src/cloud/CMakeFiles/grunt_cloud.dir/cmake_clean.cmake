file(REMOVE_RECURSE
  "CMakeFiles/grunt_cloud.dir/autoscaler.cpp.o"
  "CMakeFiles/grunt_cloud.dir/autoscaler.cpp.o.d"
  "CMakeFiles/grunt_cloud.dir/defense.cpp.o"
  "CMakeFiles/grunt_cloud.dir/defense.cpp.o.d"
  "CMakeFiles/grunt_cloud.dir/ids.cpp.o"
  "CMakeFiles/grunt_cloud.dir/ids.cpp.o.d"
  "CMakeFiles/grunt_cloud.dir/monitor.cpp.o"
  "CMakeFiles/grunt_cloud.dir/monitor.cpp.o.d"
  "libgrunt_cloud.a"
  "libgrunt_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
