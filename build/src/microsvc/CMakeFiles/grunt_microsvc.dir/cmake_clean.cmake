file(REMOVE_RECURSE
  "CMakeFiles/grunt_microsvc.dir/application.cpp.o"
  "CMakeFiles/grunt_microsvc.dir/application.cpp.o.d"
  "CMakeFiles/grunt_microsvc.dir/cluster.cpp.o"
  "CMakeFiles/grunt_microsvc.dir/cluster.cpp.o.d"
  "CMakeFiles/grunt_microsvc.dir/service.cpp.o"
  "CMakeFiles/grunt_microsvc.dir/service.cpp.o.d"
  "libgrunt_microsvc.a"
  "libgrunt_microsvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_microsvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
