file(REMOVE_RECURSE
  "libgrunt_microsvc.a"
)
