# Empty compiler generated dependencies file for grunt_microsvc.
# This may be replaced when dependencies are built.
