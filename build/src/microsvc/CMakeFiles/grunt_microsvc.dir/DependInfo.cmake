
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microsvc/application.cpp" "src/microsvc/CMakeFiles/grunt_microsvc.dir/application.cpp.o" "gcc" "src/microsvc/CMakeFiles/grunt_microsvc.dir/application.cpp.o.d"
  "/root/repo/src/microsvc/cluster.cpp" "src/microsvc/CMakeFiles/grunt_microsvc.dir/cluster.cpp.o" "gcc" "src/microsvc/CMakeFiles/grunt_microsvc.dir/cluster.cpp.o.d"
  "/root/repo/src/microsvc/service.cpp" "src/microsvc/CMakeFiles/grunt_microsvc.dir/service.cpp.o" "gcc" "src/microsvc/CMakeFiles/grunt_microsvc.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/grunt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grunt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
