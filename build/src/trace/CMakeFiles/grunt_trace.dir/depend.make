# Empty dependencies file for grunt_trace.
# This may be replaced when dependencies are built.
