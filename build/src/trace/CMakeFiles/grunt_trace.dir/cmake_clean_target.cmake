file(REMOVE_RECURSE
  "libgrunt_trace.a"
)
