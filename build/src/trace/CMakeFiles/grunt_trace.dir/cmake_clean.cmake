file(REMOVE_RECURSE
  "CMakeFiles/grunt_trace.dir/dependency.cpp.o"
  "CMakeFiles/grunt_trace.dir/dependency.cpp.o.d"
  "CMakeFiles/grunt_trace.dir/tracer.cpp.o"
  "CMakeFiles/grunt_trace.dir/tracer.cpp.o.d"
  "libgrunt_trace.a"
  "libgrunt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
