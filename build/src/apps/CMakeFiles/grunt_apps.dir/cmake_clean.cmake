file(REMOVE_RECURSE
  "CMakeFiles/grunt_apps.dir/hotelreservation.cpp.o"
  "CMakeFiles/grunt_apps.dir/hotelreservation.cpp.o.d"
  "CMakeFiles/grunt_apps.dir/mubench.cpp.o"
  "CMakeFiles/grunt_apps.dir/mubench.cpp.o.d"
  "CMakeFiles/grunt_apps.dir/socialnetwork.cpp.o"
  "CMakeFiles/grunt_apps.dir/socialnetwork.cpp.o.d"
  "libgrunt_apps.a"
  "libgrunt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
