# Empty compiler generated dependencies file for grunt_apps.
# This may be replaced when dependencies are built.
