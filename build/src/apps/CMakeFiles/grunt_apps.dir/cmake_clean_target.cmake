file(REMOVE_RECURSE
  "libgrunt_apps.a"
)
