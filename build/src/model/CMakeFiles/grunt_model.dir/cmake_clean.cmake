file(REMOVE_RECURSE
  "CMakeFiles/grunt_model.dir/queuing_model.cpp.o"
  "CMakeFiles/grunt_model.dir/queuing_model.cpp.o.d"
  "libgrunt_model.a"
  "libgrunt_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
