file(REMOVE_RECURSE
  "libgrunt_model.a"
)
