# Empty compiler generated dependencies file for grunt_model.
# This may be replaced when dependencies are built.
