
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/queuing_model.cpp" "src/model/CMakeFiles/grunt_model.dir/queuing_model.cpp.o" "gcc" "src/model/CMakeFiles/grunt_model.dir/queuing_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/grunt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/microsvc/CMakeFiles/grunt_microsvc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/grunt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grunt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
