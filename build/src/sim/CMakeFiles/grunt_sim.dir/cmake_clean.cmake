file(REMOVE_RECURSE
  "CMakeFiles/grunt_sim.dir/simulation.cpp.o"
  "CMakeFiles/grunt_sim.dir/simulation.cpp.o.d"
  "libgrunt_sim.a"
  "libgrunt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
