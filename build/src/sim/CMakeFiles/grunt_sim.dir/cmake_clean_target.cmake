file(REMOVE_RECURSE
  "libgrunt_sim.a"
)
