# Empty compiler generated dependencies file for grunt_sim.
# This may be replaced when dependencies are built.
