file(REMOVE_RECURSE
  "libgrunt_workload.a"
)
