# Empty dependencies file for grunt_workload.
# This may be replaced when dependencies are built.
