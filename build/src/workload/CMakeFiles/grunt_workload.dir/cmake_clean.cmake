file(REMOVE_RECURSE
  "CMakeFiles/grunt_workload.dir/workload.cpp.o"
  "CMakeFiles/grunt_workload.dir/workload.cpp.o.d"
  "libgrunt_workload.a"
  "libgrunt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
