file(REMOVE_RECURSE
  "CMakeFiles/grunt_util.dir/logging.cpp.o"
  "CMakeFiles/grunt_util.dir/logging.cpp.o.d"
  "CMakeFiles/grunt_util.dir/rng.cpp.o"
  "CMakeFiles/grunt_util.dir/rng.cpp.o.d"
  "CMakeFiles/grunt_util.dir/stats.cpp.o"
  "CMakeFiles/grunt_util.dir/stats.cpp.o.d"
  "CMakeFiles/grunt_util.dir/table.cpp.o"
  "CMakeFiles/grunt_util.dir/table.cpp.o.d"
  "CMakeFiles/grunt_util.dir/timeseries.cpp.o"
  "CMakeFiles/grunt_util.dir/timeseries.cpp.o.d"
  "libgrunt_util.a"
  "libgrunt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
