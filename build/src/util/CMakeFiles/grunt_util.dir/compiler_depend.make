# Empty compiler generated dependencies file for grunt_util.
# This may be replaced when dependencies are built.
