file(REMOVE_RECURSE
  "libgrunt_util.a"
)
