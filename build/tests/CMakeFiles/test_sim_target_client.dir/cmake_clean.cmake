file(REMOVE_RECURSE
  "CMakeFiles/test_sim_target_client.dir/test_sim_target_client.cpp.o"
  "CMakeFiles/test_sim_target_client.dir/test_sim_target_client.cpp.o.d"
  "test_sim_target_client"
  "test_sim_target_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_target_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
