# Empty dependencies file for test_sim_target_client.
# This may be replaced when dependencies are built.
