# Empty compiler generated dependencies file for test_cluster_scaling.
# This may be replaced when dependencies are built.
