file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_scaling.dir/test_cluster_scaling.cpp.o"
  "CMakeFiles/test_cluster_scaling.dir/test_cluster_scaling.cpp.o.d"
  "test_cluster_scaling"
  "test_cluster_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
