# Empty compiler generated dependencies file for test_dependency_extra.
# This may be replaced when dependencies are built.
