file(REMOVE_RECURSE
  "CMakeFiles/test_dependency_extra.dir/test_dependency_extra.cpp.o"
  "CMakeFiles/test_dependency_extra.dir/test_dependency_extra.cpp.o.d"
  "test_dependency_extra"
  "test_dependency_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dependency_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
