file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_attacks.dir/test_baseline_attacks.cpp.o"
  "CMakeFiles/test_baseline_attacks.dir/test_baseline_attacks.cpp.o.d"
  "test_baseline_attacks"
  "test_baseline_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
