file(REMOVE_RECURSE
  "CMakeFiles/test_autoscaler.dir/test_autoscaler.cpp.o"
  "CMakeFiles/test_autoscaler.dir/test_autoscaler.cpp.o.d"
  "test_autoscaler"
  "test_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
