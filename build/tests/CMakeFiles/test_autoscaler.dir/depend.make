# Empty dependencies file for test_autoscaler.
# This may be replaced when dependencies are built.
