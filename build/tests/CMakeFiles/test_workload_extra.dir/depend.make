# Empty dependencies file for test_workload_extra.
# This may be replaced when dependencies are built.
