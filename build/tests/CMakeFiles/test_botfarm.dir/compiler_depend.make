# Empty compiler generated dependencies file for test_botfarm.
# This may be replaced when dependencies are built.
