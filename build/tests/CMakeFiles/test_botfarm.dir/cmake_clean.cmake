file(REMOVE_RECURSE
  "CMakeFiles/test_botfarm.dir/test_botfarm.cpp.o"
  "CMakeFiles/test_botfarm.dir/test_botfarm.cpp.o.d"
  "test_botfarm"
  "test_botfarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_botfarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
