file(REMOVE_RECURSE
  "CMakeFiles/test_application.dir/test_application.cpp.o"
  "CMakeFiles/test_application.dir/test_application.cpp.o.d"
  "test_application"
  "test_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
