file(REMOVE_RECURSE
  "CMakeFiles/test_commander.dir/test_commander.cpp.o"
  "CMakeFiles/test_commander.dir/test_commander.cpp.o.d"
  "test_commander"
  "test_commander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
