
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_kalman.cpp" "tests/CMakeFiles/test_kalman.dir/test_kalman.cpp.o" "gcc" "tests/CMakeFiles/test_kalman.dir/test_kalman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/grunt_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/grunt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/grunt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/grunt_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/grunt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/grunt_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/grunt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/microsvc/CMakeFiles/grunt_microsvc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/grunt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grunt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
