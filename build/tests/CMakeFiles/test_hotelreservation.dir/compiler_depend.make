# Empty compiler generated dependencies file for test_hotelreservation.
# This may be replaced when dependencies are built.
