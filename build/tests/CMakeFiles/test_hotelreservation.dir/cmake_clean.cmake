file(REMOVE_RECURSE
  "CMakeFiles/test_hotelreservation.dir/test_hotelreservation.cpp.o"
  "CMakeFiles/test_hotelreservation.dir/test_hotelreservation.cpp.o.d"
  "test_hotelreservation"
  "test_hotelreservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hotelreservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
