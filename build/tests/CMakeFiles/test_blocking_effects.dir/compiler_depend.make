# Empty compiler generated dependencies file for test_blocking_effects.
# This may be replaced when dependencies are built.
