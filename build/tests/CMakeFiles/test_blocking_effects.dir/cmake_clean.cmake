file(REMOVE_RECURSE
  "CMakeFiles/test_blocking_effects.dir/test_blocking_effects.cpp.o"
  "CMakeFiles/test_blocking_effects.dir/test_blocking_effects.cpp.o.d"
  "test_blocking_effects"
  "test_blocking_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocking_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
