file(REMOVE_RECURSE
  "CMakeFiles/test_grunt_attack.dir/test_grunt_attack.cpp.o"
  "CMakeFiles/test_grunt_attack.dir/test_grunt_attack.cpp.o.d"
  "test_grunt_attack"
  "test_grunt_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grunt_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
