# Empty dependencies file for grunt_benchrig.
# This may be replaced when dependencies are built.
