file(REMOVE_RECURSE
  "CMakeFiles/grunt_benchrig.dir/rig.cpp.o"
  "CMakeFiles/grunt_benchrig.dir/rig.cpp.o.d"
  "libgrunt_benchrig.a"
  "libgrunt_benchrig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_benchrig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
