file(REMOVE_RECURSE
  "libgrunt_benchrig.a"
)
