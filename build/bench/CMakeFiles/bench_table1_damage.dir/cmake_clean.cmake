file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_damage.dir/bench_table1_damage.cpp.o"
  "CMakeFiles/bench_table1_damage.dir/bench_table1_damage.cpp.o.d"
  "bench_table1_damage"
  "bench_table1_damage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_damage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
