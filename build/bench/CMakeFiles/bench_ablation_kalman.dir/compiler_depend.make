# Empty compiler generated dependencies file for bench_ablation_kalman.
# This may be replaced when dependencies are built.
