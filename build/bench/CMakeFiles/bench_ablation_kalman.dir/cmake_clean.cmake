file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kalman.dir/bench_ablation_kalman.cpp.o"
  "CMakeFiles/bench_ablation_kalman.dir/bench_ablation_kalman.cpp.o.d"
  "bench_ablation_kalman"
  "bench_ablation_kalman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kalman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
