# Empty dependencies file for bench_ablation_queuesize.
# This may be replaced when dependencies are built.
