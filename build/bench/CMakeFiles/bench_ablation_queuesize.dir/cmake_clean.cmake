file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_queuesize.dir/bench_ablation_queuesize.cpp.o"
  "CMakeFiles/bench_ablation_queuesize.dir/bench_ablation_queuesize.cpp.o.d"
  "bench_ablation_queuesize"
  "bench_ablation_queuesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_queuesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
