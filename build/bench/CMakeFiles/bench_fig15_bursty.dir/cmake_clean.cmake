file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_bursty.dir/bench_fig15_bursty.cpp.o"
  "CMakeFiles/bench_fig15_bursty.dir/bench_fig15_bursty.cpp.o.d"
  "bench_fig15_bursty"
  "bench_fig15_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
