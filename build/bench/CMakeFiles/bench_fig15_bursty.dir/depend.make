# Empty dependencies file for bench_fig15_bursty.
# This may be replaced when dependencies are built.
