file(REMOVE_RECURSE
  "CMakeFiles/bench_defense_correlation.dir/bench_defense_correlation.cpp.o"
  "CMakeFiles/bench_defense_correlation.dir/bench_defense_correlation.cpp.o.d"
  "bench_defense_correlation"
  "bench_defense_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defense_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
