# Empty compiler generated dependencies file for bench_defense_correlation.
# This may be replaced when dependencies are built.
