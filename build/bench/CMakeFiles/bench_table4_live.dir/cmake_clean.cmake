file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_live.dir/bench_table4_live.cpp.o"
  "CMakeFiles/bench_table4_live.dir/bench_table4_live.cpp.o.d"
  "bench_table4_live"
  "bench_table4_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
