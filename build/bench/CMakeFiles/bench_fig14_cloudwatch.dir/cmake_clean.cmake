file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cloudwatch.dir/bench_fig14_cloudwatch.cpp.o"
  "CMakeFiles/bench_fig14_cloudwatch.dir/bench_fig14_cloudwatch.cpp.o.d"
  "bench_fig14_cloudwatch"
  "bench_fig14_cloudwatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cloudwatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
