# Empty dependencies file for bench_hotelreservation.
# This may be replaced when dependencies are built.
