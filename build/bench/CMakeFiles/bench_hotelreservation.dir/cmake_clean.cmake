file(REMOVE_RECURSE
  "CMakeFiles/bench_hotelreservation.dir/bench_hotelreservation.cpp.o"
  "CMakeFiles/bench_hotelreservation.dir/bench_hotelreservation.cpp.o.d"
  "bench_hotelreservation"
  "bench_hotelreservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hotelreservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
