file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_zoomin.dir/bench_fig13_zoomin.cpp.o"
  "CMakeFiles/bench_fig13_zoomin.dir/bench_fig13_zoomin.cpp.o.d"
  "bench_fig13_zoomin"
  "bench_fig13_zoomin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_zoomin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
