# Empty dependencies file for bench_fig13_zoomin.
# This may be replaced when dependencies are built.
