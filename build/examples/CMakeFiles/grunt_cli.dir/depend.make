# Empty dependencies file for grunt_cli.
# This may be replaced when dependencies are built.
