file(REMOVE_RECURSE
  "CMakeFiles/grunt_cli.dir/grunt_cli.cpp.o"
  "CMakeFiles/grunt_cli.dir/grunt_cli.cpp.o.d"
  "grunt_cli"
  "grunt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grunt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
