file(REMOVE_RECURSE
  "CMakeFiles/defense_monitoring.dir/defense_monitoring.cpp.o"
  "CMakeFiles/defense_monitoring.dir/defense_monitoring.cpp.o.d"
  "defense_monitoring"
  "defense_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
