# Empty compiler generated dependencies file for defense_monitoring.
# This may be replaced when dependencies are built.
