file(REMOVE_RECURSE
  "CMakeFiles/profile_unknown_app.dir/profile_unknown_app.cpp.o"
  "CMakeFiles/profile_unknown_app.dir/profile_unknown_app.cpp.o.d"
  "profile_unknown_app"
  "profile_unknown_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_unknown_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
