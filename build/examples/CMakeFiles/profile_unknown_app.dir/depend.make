# Empty dependencies file for profile_unknown_app.
# This may be replaced when dependencies are built.
