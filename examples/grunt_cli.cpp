// Command-line driver for exploring the library without writing code:
//
//   grunt_cli [--app socialnetwork|hotelreservation|mubench]
//             [--users N] [--attack-seconds S] [--coverage F]
//             [--groups N] [--seed N] [--no-attack]
//
// Deploys the chosen application with the full operator stack, runs the
// complete blackbox campaign, and prints a summary report.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/hotelreservation.h"
#include "apps/mubench.h"
#include "apps/socialnetwork.h"
#include "attack/grunt_attack.h"
#include "attack/sim_target_client.h"
#include "cloud/autoscaler.h"
#include "cloud/ids.h"
#include "cloud/monitor.h"
#include "microsvc/cluster.h"
#include "workload/workload.h"

using namespace grunt;

namespace {

struct Args {
  std::string app = "socialnetwork";
  std::int32_t users = 7000;
  std::int32_t attack_seconds = 60;
  double coverage = 1.0;
  std::size_t max_groups = 0;
  std::uint64_t seed = 42;
  bool attack = true;
};

void Usage() {
  std::printf(
      "usage: grunt_cli [--app socialnetwork|hotelreservation|mubench]\n"
      "                 [--users N] [--attack-seconds S] [--coverage F]\n"
      "                 [--groups N] [--seed N] [--no-attack]\n");
}

bool Parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--app") {
      const char* v = value("--app");
      if (!v) return false;
      args.app = v;
    } else if (flag == "--users") {
      const char* v = value("--users");
      if (!v) return false;
      args.users = std::atoi(v);
    } else if (flag == "--attack-seconds") {
      const char* v = value("--attack-seconds");
      if (!v) return false;
      args.attack_seconds = std::atoi(v);
    } else if (flag == "--coverage") {
      const char* v = value("--coverage");
      if (!v) return false;
      args.coverage = std::atof(v);
    } else if (flag == "--groups") {
      const char* v = value("--groups");
      if (!v) return false;
      args.max_groups = static_cast<std::size_t>(std::atoi(v));
    } else if (flag == "--seed") {
      const char* v = value("--seed");
      if (!v) return false;
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--no-attack") {
      args.attack = false;
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      Usage();
      return false;
    }
  }
  if (args.users < 1 || args.attack_seconds < 1 || args.coverage <= 0 ||
      args.coverage > 1) {
    std::fprintf(stderr, "invalid argument values\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) return 2;

  microsvc::Application app = [&] {
    if (args.app == "hotelreservation") {
      return apps::MakeHotelReservation({});
    }
    if (args.app == "mubench") {
      apps::MuBenchOptions opts;
      opts.seed = args.seed;
      return apps::MakeMuBench(opts);
    }
    return apps::MakeSocialNetwork({});
  }();
  workload::MarkovNavigator nav = [&] {
    if (args.app == "hotelreservation") {
      return apps::HotelReservationNavigator(app);
    }
    if (args.app == "mubench") {
      const auto mix = apps::MuBenchMix(app);
      workload::MarkovNavigator n;
      n.types = mix.types;
      n.transition.assign(mix.types.size(), mix.weights);
      return n;
    }
    return apps::SocialNetworkNavigator(app);
  }();

  sim::Simulation sim;
  microsvc::Cluster cluster(sim, app, args.seed);
  workload::ClosedLoopWorkload::Config wl;
  wl.users = args.users;
  wl.navigator = nav;
  workload::ClosedLoopWorkload users(cluster, wl, args.seed);
  users.Start();

  cloud::ResourceMonitor cloudwatch(cluster, {Sec(1), "cloudwatch"});
  cloud::ResponseTimeMonitor rt(cluster, {Sec(1), "rt"});
  cloud::AutoScaler scaler(cluster, cloudwatch, {});
  cloud::Ids ids(cluster, &cloudwatch, &rt, {});
  cloudwatch.Start();
  rt.Start();
  scaler.Start();
  ids.Start();

  std::printf("deployed %s: %zu services, %zu public paths, %d users\n",
              app.name().c_str(), app.service_count(),
              app.PublicDynamicTypes().size(), args.users);
  sim.RunUntil(Sec(40));
  const Samples base = rt.LegitWindow(Sec(15), Sec(40));
  std::printf("baseline: mean RT %.1f ms, p95 %.1f ms (%zu requests)\n",
              base.mean(), base.Percentile(95), base.count());
  if (!args.attack) return 0;

  attack::SimTargetClient client(cluster, {args.coverage, args.seed});
  attack::GruntConfig cfg;
  cfg.max_groups = args.max_groups;
  attack::GruntAttack grunt(client, cfg);
  bool done = false;
  SimTime attack_start = 0;
  grunt.OnAttackPhaseStart([&](SimTime at) {
    attack_start = at;
    std::printf("attack phase begins at t=%.0fs\n", ToSeconds(at));
  });
  grunt.Run(Sec(args.attack_seconds),
            [&](const attack::GruntReport&) { done = true; });
  while (!done && sim.Now() < Sec(7200)) sim.RunUntil(sim.Now() + Sec(10));
  if (!done) {
    std::fprintf(stderr, "campaign did not finish\n");
    return 1;
  }

  const auto& report = grunt.report();
  std::printf("\ndependency groups (crawl coverage %.0f%%):\n",
              args.coverage * 100);
  for (const auto& g : report.profile.groups) {
    std::printf("  {");
    for (std::size_t i = 0; i < g.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", app.request_type(g[i]).name.c_str());
    }
    std::printf("}\n");
  }
  const Samples att = rt.LegitWindow(attack_start + Sec(5),
                                     attack_start + Sec(args.attack_seconds));
  std::size_t actions = 0;
  for (const auto& a : scaler.actions()) actions += (a.at >= attack_start);
  std::printf("\nunder attack: mean RT %.1f ms (%.1fx), p95 %.1f ms\n",
              att.mean(), base.mean() > 0 ? att.mean() / base.mean() : 0,
              att.Percentile(95));
  std::printf("stealth: mean P_MB %.0f ms, %zu bots, %zu scale actions, "
              "%zu attributable IDS alerts\n",
              report.MeanPmbMs(), report.bots_used, actions,
              ids.attributed_attack_alerts());
  return 0;
}
