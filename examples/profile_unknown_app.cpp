// Blackbox-profiles an application with unknown architecture (the paper's
// live-attack setup, Sec V-C): the attacker crawls the URL catalog, infers
// pairwise execution dependencies by performance-interference testing, and
// reconstructs the dependency groups. The admin-side ground truth
// (trace::GroundTruth, which the attacker cannot see) is printed alongside
// so you can judge the profiler's accuracy — this is Fig 16's measurement
// in miniature.

#include <cstdio>
#include <string>

#include "apps/socialnetwork.h"
#include "attack/botfarm.h"
#include "attack/profiler.h"
#include "attack/sim_target_client.h"
#include "microsvc/cluster.h"
#include "sim/simulation.h"
#include "trace/dependency.h"
#include "workload/workload.h"

using namespace grunt;

int main(int argc, char** argv) {
  const std::int32_t users = argc > 1 ? std::atoi(argv[1]) : 7000;

  sim::Simulation sim;
  const microsvc::Application app = apps::MakeSocialNetwork({});
  microsvc::Cluster cluster(sim, app, /*seed=*/7);

  workload::ClosedLoopWorkload::Config wl;
  wl.users = users;
  wl.navigator = apps::SocialNetworkNavigator(app);
  workload::ClosedLoopWorkload load(cluster, wl, /*seed=*/7);
  load.Start();
  sim.RunUntil(Sec(15));  // warm-up

  // Ground truth from the white-box dependency model (admin side).
  const workload::RequestMix mix = apps::SocialNetworkMix(app);
  std::vector<double> rates(app.request_type_count(), 0.0);
  double weight_total = 0;
  for (double w : mix.weights) weight_total += w;
  const double total_rate = static_cast<double>(users) / 7.0;  // think time
  for (std::size_t i = 0; i < mix.types.size(); ++i) {
    rates[static_cast<std::size_t>(mix.types[i])] =
        total_rate * mix.weights[i] / weight_total;
  }
  trace::GroundTruth truth(app, rates);

  // Blackbox profiling (attacker side).
  attack::SimTargetClient client(cluster);
  attack::BotFarm bots({});
  attack::Profiler profiler(client, bots, {});
  bool done = false;
  attack::ProfileResult result;
  profiler.Run([&](attack::ProfileResult r) {
    result = std::move(r);
    done = true;
  });
  while (!done && sim.Now() < Sec(3600)) sim.RunUntil(sim.Now() + Sec(10));
  if (!done) {
    std::printf("profiling did not finish\n");
    return 1;
  }

  std::printf("profiled %zu candidate URLs at %d users "
              "(%.0f s of profiling traffic, %zu bots)\n\n",
              result.candidates.size(), users, ToSeconds(sim.Now()),
              bots.bot_count());

  int tp = 0, fp = 0, fn = 0, tn = 0, kind_match = 0, dependent_truth = 0;
  std::printf("%-18s %-18s %-18s %-18s\n", "pair", "", "truth", "inferred");
  for (const auto& ev : result.evidence) {
    const trace::DepType truth_type = truth.Classify(ev.a, ev.b);
    const trace::DepType inferred = ev.inferred;
    const bool t = trace::IsDependent(truth_type);
    const bool i = trace::IsDependent(inferred);
    tp += (t && i);
    fp += (!t && i);
    fn += (t && !i);
    tn += (!t && !i);
    dependent_truth += t;
    kind_match += (t && i && trace::SameKind(truth_type, inferred));
    if (t || i) {
      std::printf("%-18s %-18s %-18s %-18s%s\n",
                  app.request_type(ev.a).name.c_str(),
                  app.request_type(ev.b).name.c_str(),
                  trace::ToString(truth_type), trace::ToString(inferred),
                  t == i ? "" : "   <-- MISMATCH");
    }
  }
  const double precision = tp + fp ? static_cast<double>(tp) / (tp + fp) : 1.0;
  const double recall = tp + fn ? static_cast<double>(tp) / (tp + fn) : 1.0;
  const double f1 = precision + recall > 0
                        ? 2 * precision * recall / (precision + recall)
                        : 0.0;
  std::printf("\nexistence: precision %.2f recall %.2f f-score %.2f "
              "(tp=%d fp=%d fn=%d tn=%d)\n",
              precision, recall, f1, tp, fp, fn, tn);
  std::printf("dependency-type agreement on true positives: %d/%d\n",
              kind_match, tp);

  std::printf("\ninferred dependency groups:\n");
  for (const auto& g : result.groups) {
    std::printf("  {");
    for (std::size_t i = 0; i < g.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", app.request_type(g[i]).name.c_str());
    }
    std::printf("}\n");
  }
  return 0;
}
