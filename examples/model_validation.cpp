// Validates the Section III queuing model against the simulator, the same
// way the paper's numerical analysis underpins its Commander design: for a
// sweep of burst shapes we print Eq (1)/(4)/(5) predictions next to what
// the discrete-event substrate actually produced.
//
//   * P_MB (Eq 5)  vs  the true CPU-saturation run on the bottleneck
//   * t_damage (Eq 1+4)  vs  the response time of a probe at burst end
//   * the attacker's blackbox P_MB estimate (Fig 8)  vs  the true value
//
// A downstream user can read this table to judge how far the closed-form
// model can be trusted before the feedback controller has to take over.

#include <cstdio>

#include "attack/burst.h"
#include "attack/sim_target_client.h"
#include "cloud/monitor.h"
#include "microsvc/application.h"
#include "microsvc/cluster.h"
#include "model/queuing_model.h"
#include "sim/simulation.h"

using namespace grunt;

namespace {

// A single worker bottleneck: 2 cores, 9.5 ms total demand, heavy x1.6.
microsvc::Application MakeApp() {
  microsvc::Application::Builder b;
  b.SetName("model-validation")
      .SetServiceTimeDist(microsvc::ServiceTimeDist::kDeterministic)
      .SetNetLatency(Us(200));
  microsvc::ServiceSpec gw;
  gw.name = "gw";
  gw.threads_per_replica = 2048;
  gw.cores_per_replica = 8;
  gw.max_replicas = 8;
  const auto g = b.AddService(gw);
  microsvc::ServiceSpec w;
  w.name = "worker";
  w.threads_per_replica = 256;  // big pool: isolate the CPU bottleneck
  w.cores_per_replica = 2;
  w.max_replicas = 8;
  const auto s = b.AddService(w);
  microsvc::RequestTypeSpec t;
  t.name = "api";
  t.hops = {{g, Us(200), 0}, {s, Us(9000), Us(500)}};
  t.heavy_multiplier = 1.6;
  b.AddRequestType(t);
  return std::move(b).Build();
}

constexpr double kCapLegit = 2.0 / 0.0095;        // ~210.5/s
constexpr double kCapAttack = kCapLegit / 1.6;    // ~131.6/s

}  // namespace

int main() {
  std::printf("Section III model vs simulator (worker: C_L=%.0f/s, "
              "C_A=%.0f/s, idle background)\n\n",
              kCapLegit, kCapAttack);
  std::printf("%6s %6s | %12s %12s | %12s %12s | %12s\n", "B", "V",
              "P_MB eq5", "P_MB true", "t_dmg eq4", "t_dmg sim",
              "P_MB blackbox");

  for (auto [rate, count] : {std::pair{400.0, 40}, {800.0, 30}, {800.0, 60},
                             {1600.0, 50}, {1600.0, 100}, {3200.0, 120}}) {
    const auto app = MakeApp();
    sim::Simulation sim;
    microsvc::Cluster cluster(sim, app, 1);
    cloud::ResourceMonitor fine(cluster, {Ms(10), "fine"});
    fine.Start();
    attack::SimTargetClient client(cluster);
    attack::BotFarm bots({});

    attack::BurstObservation obs;
    sim.At(Sec(1), [&] {
      attack::BurstSender::Send(client, bots, 0, /*heavy=*/true, rate, count,
                                true, [&](attack::BurstObservation o) {
                                  obs = std::move(o);
                                });
    });
    // Probe at burst end measures the damage latency.
    const auto burst_len = static_cast<SimDuration>(1e6 * count / rate);
    SimDuration probe_rt = 0;
    sim.At(Sec(1) + burst_len, [&] {
      cluster.Submit(0, microsvc::RequestClass::kProbe, false, 9,
                     [&](const microsvc::CompletionRecord& r) {
                       probe_rt = r.end - r.start;
                     });
    });
    sim.RunUntil(Sec(30));  // bounded: the monitor timer never drains

    const auto worker = *app.FindService("worker");
    const double true_pmb =
        ToMillis(fine.cpu_util(worker).LongestRunAbove(0.99, 0, Sec(60)));
    const model::Stage stage{256, kCapAttack, kCapLegit, 0};
    const model::Burst burst{rate, static_cast<double>(count) / rate};
    const double eq5 =
        model::MillibottleneckLength(burst, stage) * 1000.0;
    const double eq4 =
        model::DamageLatency(model::QueueFromExecutionBlocking(burst, stage),
                             stage) *
        1000.0;
    std::printf("%6.0f %6d | %9.0f ms %9.0f ms | %9.0f ms %9.0f ms | "
                "%9.0f ms\n",
                rate, count, eq5, true_pmb, eq4, ToMillis(probe_rt),
                obs.EstimatePmbMs());
  }
  std::printf("\nreading: eq5 tracks the true saturation run and eq4 the "
              "probe delay within ~15-20%%;\nthe blackbox estimate "
              "undercounts (the paper calls it conservative), which is why\n"
              "the Commander pairs it with Kalman filtering and feedback "
              "rather than trusting it raw.\n");
  return 0;
}
