// Quickstart: deploy the SocialNetwork benchmark in the simulator, drive it
// with legitimate closed-loop users, then launch a full Grunt attack
// campaign (profiling -> calibration -> alternating bursts) and compare the
// response time legitimate users see before and during the attack.
//
// This is the smallest end-to-end use of the public API:
//   apps::MakeSocialNetwork  -> the target
//   workload::ClosedLoopWorkload -> background users
//   cloud::ResourceMonitor / ResponseTimeMonitor -> the operator's view
//   attack::SimTargetClient + GruntAttack -> the attacker

#include <cstdio>

#include "apps/socialnetwork.h"
#include "attack/grunt_attack.h"
#include "attack/sim_target_client.h"
#include "cloud/monitor.h"
#include "microsvc/cluster.h"
#include "sim/simulation.h"
#include "util/table.h"
#include "workload/workload.h"

int main() {
  using namespace grunt;

  // --- target system ---
  sim::Simulation sim;
  const microsvc::Application app = apps::MakeSocialNetwork({});
  microsvc::Cluster cluster(sim, app, /*seed=*/42);

  // --- legitimate users: 7000 closed-loop users, 7 s think time ---
  workload::ClosedLoopWorkload::Config wl;
  wl.users = 7000;
  wl.navigator = apps::SocialNetworkNavigator(app);
  workload::ClosedLoopWorkload users(cluster, wl, /*seed=*/42);
  users.Start();

  // --- operator-side monitoring (1 s granularity, CloudWatch-style) ---
  cloud::ResourceMonitor monitor(cluster, {Sec(1), "cloudwatch"});
  cloud::ResponseTimeMonitor rt(cluster, {Sec(1), "rt"});
  monitor.Start();
  rt.Start();

  // --- warm up, then measure the baseline ---
  const SimTime kBaselineFrom = Sec(20), kBaselineTo = Sec(50);
  sim.RunUntil(kBaselineTo);
  const Samples baseline = rt.LegitWindow(kBaselineFrom, kBaselineTo);
  std::printf("baseline: %zu legit requests, mean RT %.1f ms, p95 %.1f ms\n",
              baseline.count(), baseline.mean(), baseline.Percentile(95));
  for (std::size_t i = 0; i < app.service_count(); ++i) {
    const auto sid = static_cast<microsvc::ServiceId>(i);
    const double util = monitor.cpu_util(sid).WindowMean(kBaselineFrom,
                                                         kBaselineTo);
    if (util > 0.25) {
      std::printf("  busy service %-16s util %.0f%%\n",
                  app.service(sid).name.c_str(), util * 100);
    }
  }

  // --- the attacker: blackbox client + full Grunt campaign ---
  attack::SimTargetClient client(cluster);
  attack::GruntConfig cfg;
  attack::GruntAttack grunt(client, cfg);

  bool finished = false;
  SimTime attack_began = 0;
  grunt.OnAttackPhaseStart([&](SimTime at) {
    attack_began = at;
    std::printf("\nattack phase begins at t=%.0fs (profiling+calibration "
                "took %.0fs)\n",
                ToSeconds(at), ToSeconds(at - kBaselineTo));
  });
  grunt.Run(/*attack_duration=*/Sec(60),
            [&](const attack::GruntReport& report) {
              finished = true;
              std::printf("\ncampaign done: %zu groups attacked, %zu bots, "
                          "%llu attack requests\n",
                          report.groups.size(), report.bots_used,
                          static_cast<unsigned long long>(
                              report.attack_requests));
              std::printf("profiler found %zu dependency groups:\n",
                          report.profile.groups.size());
              for (const auto& g : report.profile.groups) {
                std::printf("  {");
                for (std::size_t i = 0; i < g.size(); ++i) {
                  std::printf("%s%s", i ? ", " : "",
                              app.request_type(g[i]).name.c_str());
                }
                std::printf("}\n");
              }
              for (const auto& g : report.groups) {
                std::printf("  group: m=%d bursts=%zu avg P_MB=%.0f ms "
                            "avg t_min=%.0f ms\n",
                            g.paths_used, g.bursts.size(), g.MeanPmbMs(),
                            g.MeanTminMs());
              }
            });
  // Drive the simulation until the campaign reports back (bounded).
  while (!finished && sim.Now() < Sec(3600)) {
    sim.RunUntil(sim.Now() + Sec(10));
  }
  if (!finished) {
    std::printf("WARNING: campaign did not finish in time\n");
    return 1;
  }

  // --- attack-window damage as legitimate users saw it ---
  const Samples attacked =
      rt.LegitWindow(attack_began + Sec(5), attack_began + Sec(60));
  std::printf("\nunder attack: %zu legit requests, mean RT %.1f ms, "
              "p95 %.1f ms (%.1fx baseline mean)\n",
              attacked.count(), attacked.mean(), attacked.Percentile(95),
              baseline.mean() > 0 ? attacked.mean() / baseline.mean() : 0.0);
  return 0;
}
