// Defense study (paper Sec VI "Possible defense and mitigation"): the same
// Grunt attack observed by three monitoring configurations —
//   1. the stock 1 s CloudWatch-style monitor + threshold autoscaler + IDS
//      (what the paper's clouds run): sees nothing actionable;
//   2. a fine-grained 100 ms monitor: SEES the alternating millibottlenecks
//      (at the cost of 10x the sampling overhead);
//   3. cloud::CorrelationDefense: flags the bot sessions whose requests
//      correlate with arrival volleys and the 100 ms saturation pulses —
//      the "statistical correlation" defense direction the paper sketches.

#include <cstdio>
#include <map>

#include "apps/socialnetwork.h"
#include "cloud/defense.h"
#include "attack/grunt_attack.h"
#include "attack/sim_target_client.h"
#include "cloud/autoscaler.h"
#include "cloud/ids.h"
#include "cloud/monitor.h"
#include "microsvc/cluster.h"
#include "trace/dependency.h"
#include "workload/workload.h"

using namespace grunt;

int main() {
  sim::Simulation sim;
  const auto app = apps::MakeSocialNetwork({});
  microsvc::Cluster cluster(sim, app, 55);

  workload::ClosedLoopWorkload::Config wl;
  wl.users = 7000;
  wl.navigator = apps::SocialNetworkNavigator(app);
  workload::ClosedLoopWorkload users(cluster, wl, 55);
  users.Start();

  cloud::ResourceMonitor coarse(cluster, {Sec(1), "cloudwatch"});
  cloud::ResourceMonitor fine(cluster, {Ms(100), "fine"});
  cloud::ResponseTimeMonitor rt(cluster, {Sec(1), "rt"});
  cloud::AutoScaler scaler(cluster, coarse, {});
  cloud::Ids ids(cluster, &coarse, &rt, {});
  coarse.Start();
  fine.Start();
  rt.Start();
  scaler.Start();
  ids.Start();
  cloud::CorrelationDefense defense(cluster, &fine, {});
  defense.Start();

  // Record per-type submission timestamps (a gateway log): the correlation
  // detector joins this with the fine monitor afterwards.
  // Ground-truth attacker tags, used only for SCORING the defense.
  std::map<std::uint64_t, bool> is_attacker;
  cluster.telemetry().submit().Subscribe(
      [&](const telemetry::RequestSubmit& e) {
    is_attacker[e.client_id] = is_attacker[e.client_id] ||
                               (e.cls != microsvc::RequestClass::kLegit);
  });

  sim.RunUntil(Sec(40));

  // Attack with a known-good profile (the defense, not the profiler, is
  // under study here).
  std::vector<double> rates(app.request_type_count(), 0.0);
  const auto mix = apps::SocialNetworkMix(app);
  double total_w = 0;
  for (double w : mix.weights) total_w += w;
  for (std::size_t i = 0; i < mix.types.size(); ++i) {
    rates[static_cast<std::size_t>(mix.types[i])] =
        1000.0 * mix.weights[i] / total_w;
  }
  attack::ProfileResult profile;
  profile.baseline_rt_ms.assign(app.request_type_count(), 20.0);
  for (auto t : app.PublicDynamicTypes()) {
    profile.candidates.push_back(t);
    profile.urls.push_back({t, "/" + app.request_type(t).name, false});
  }
  trace::GroundTruth truth(app, rates);
  trace::DependencyGroups groups(app.request_type_count());
  for (const auto& dep : truth.AllPairs()) {
    if (trace::IsDependent(dep.type)) {
      profile.pairs.push_back(dep);
      groups.Union(dep.a, dep.b);
    }
  }
  for (const auto& g : groups.Groups()) profile.groups.push_back(g);

  attack::SimTargetClient client(cluster);
  attack::GruntConfig gcfg;
  gcfg.max_groups = 1;  // focus the attack so the correlation has contrast
  attack::GruntAttack grunt(client, gcfg);
  bool done = false;
  SimTime attack_start = 0;
  grunt.OnAttackPhaseStart([&](SimTime at) { attack_start = at; });
  grunt.RunWithProfile(profile, Sec(60),
                       [&](const attack::GruntReport&) { done = true; });
  while (!done && sim.Now() < Sec(2400)) sim.RunUntil(sim.Now() + Sec(10));
  const SimTime att_to = attack_start + Sec(60);

  // --- 1. stock operator view ---
  std::printf("=== 1. stock defenses (1s monitor, autoscaler, IDS) ===\n");
  std::size_t actions = 0;
  for (const auto& a : scaler.actions()) actions += (a.at >= attack_start);
  std::printf("  scale actions during attack: %zu\n", actions);
  std::printf("  IDS alerts attributable to attacker sessions: %zu\n",
              ids.attributed_attack_alerts());
  std::printf("  service-degradation alerts (no attribution): %zu\n",
              ids.CountAlerts(cloud::AlertRule::kServiceDegradation));
  std::printf("  -> the operator knows RT is bad but has no root cause\n");

  // --- 2. fine-grained monitoring ---
  std::printf("\n=== 2. fine-grained (100ms) monitoring ===\n");
  std::printf("  %-16s %14s %14s\n", "service", "1s max util",
              "100ms max util");
  for (const char* name : {"compose-post", "text-service", "media-service",
                           "social-graph", "user-service"}) {
    const auto sid = *app.FindService(name);
    std::printf("  %-16s %13.0f%% %13.0f%%\n", name,
                coarse.cpu_util(sid).WindowMax(attack_start, att_to) * 100,
                fine.cpu_util(sid).WindowMax(attack_start, att_to) * 100);
  }
  std::printf("  -> millibottlenecks (100%% pulses) exist only in the 100ms "
              "view\n");

  // --- 3. cloud::CorrelationDefense (the paper's sketched direction) ---
  std::printf("\n=== 3. volley/millibottleneck correlation defense ===\n");
  const auto volleys = defense.Volleys(attack_start, att_to);
  std::printf("  arrival volleys during the attack: %zu; confirmed by a "
              "millibottleneck: %zu\n", volleys.volleys, volleys.confirmed);
  RunningStats attacker_frac, legit_frac;
  std::size_t flagged_attackers = 0, flagged_legit = 0, judged_attackers = 0,
              judged_legit = 0;
  for (const auto& v : defense.Analyze(attack_start, att_to)) {
    const bool attacker = is_attacker[v.client_id];
    (attacker ? attacker_frac : legit_frac).Add(v.participation);
    (attacker ? judged_attackers : judged_legit) += 1;
    if (v.flagged) (attacker ? flagged_attackers : flagged_legit) += 1;
  }
  std::printf("  mean volley-participation: attacker sessions %.0f%%, legit "
              "sessions %.0f%%\n",
              attacker_frac.mean() * 100, legit_frac.mean() * 100);
  std::printf("  flagged: %zu/%zu attacker sessions, %zu/%zu legit sessions "
              "(false positives)\n",
              flagged_attackers, judged_attackers, flagged_legit,
              judged_legit);
  std::printf("  -> fine-grained monitoring + arrival-pattern correlation "
              "separates Grunt bots\n     from users (see "
              "bench_defense_correlation for the bot-budget arms race)\n");
  return 0;
}
