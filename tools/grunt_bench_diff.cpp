// grunt_bench_diff — compare a BENCH_*.json result file against its
// checked-in floor file and print per-metric deltas.
//
//   grunt_bench_diff [--warn-only] <floor.json> <bench.json>
//
// The floor file maps dotted metric paths (resolved against the bench JSON's
// nested objects) to minimum acceptable values:
//
//   {
//     "schema": 2,
//     "note": "...",
//     "floors": {
//       "engine.schedule_fire_events_per_sec": 6000000,
//       "timer_heavy.wheel_speedup": 1.15,
//       "?campaign_fanout.process_speedup_vs_thread": 1.15
//     }
//   }
//
// Floor schema v4: a path prefixed with "?" is OPTIONAL — it floors metrics
// a bench legitimately skips on some runners (speedups are null with a
// *_skipped note on a 1-core box). An optional metric that is absent or
// null in the bench JSON prints "skipped" and passes; when it IS present it
// is held to its floor like any other. Unprefixed paths keep the strict
// contract: missing means schema drift.
//
// Exit codes: 0 all metrics at or above floor (or --warn-only), 1 at least
// one metric below floor, 2 usage / schema errors. A required metric path
// that does not resolve in the bench JSON is always a hard error (exit 2),
// even under --warn-only: that is schema drift, not runner noise. Under
// --warn-only a dip prints a GitHub Actions `::warning` annotation instead
// of failing, the same contract as the old inline python floor checks.

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "util/json.h"

namespace {

/// Resolves "a.b.c" against nested JSON objects; nullptr when any hop is
/// missing or not an object.
const grunt::json::Value* Resolve(const grunt::json::Value& root,
                                  std::string_view path) {
  const grunt::json::Value* v = &root;
  while (!path.empty()) {
    const std::size_t dot = path.find('.');
    const std::string_view key =
        dot == std::string_view::npos ? path : path.substr(0, dot);
    path = dot == std::string_view::npos ? std::string_view{}
                                         : path.substr(dot + 1);
    v = v->Find(key);
    if (v == nullptr) return nullptr;
  }
  return v;
}

int Usage() {
  std::fprintf(stderr,
               "usage: grunt_bench_diff [--warn-only] <floor.json> "
               "<bench.json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool warn_only = false;
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "--warn-only") == 0) {
    warn_only = true;
    ++arg;
  }
  if (argc - arg != 2) return Usage();
  const std::string floor_path = argv[arg];
  const std::string bench_path = argv[arg + 1];

  try {
    const grunt::json::Value floor = grunt::json::ParseFile(floor_path);
    const grunt::json::Value bench = grunt::json::ParseFile(bench_path);
    const grunt::json::Value& floors = floor.At("floors");
    if (!floors.is_object() || floors.AsObject().empty()) {
      std::fprintf(stderr, "%s: \"floors\" must be a non-empty object\n",
                   floor_path.c_str());
      return 2;
    }

    int below = 0;
    for (const auto& [raw_path, min_v] : floors.AsObject()) {
      const bool optional = !raw_path.empty() && raw_path[0] == '?';
      const std::string path =
          optional ? raw_path.substr(1) : raw_path;
      const grunt::json::Value* got = Resolve(bench, path);
      if (optional && (got == nullptr || got->is_null())) {
        std::printf("%-48s %14s  floor %14.2f  skipped on this runner\n",
                    path.c_str(), "-", min_v.AsDouble());
        continue;
      }
      if (got == nullptr || !got->is_number()) {
        std::fprintf(stderr,
                     "%s: metric \"%s\" missing from %s (schema drift?)\n",
                     floor_path.c_str(), path.c_str(), bench_path.c_str());
        return 2;
      }
      const double value = got->AsDouble();
      const double lo = min_v.AsDouble();
      const double delta_pct = lo > 0 ? (value / lo - 1.0) * 100.0 : 0.0;
      if (value < lo) {
        ++below;
        std::printf("%-48s %14.2f  floor %14.2f  %+.1f%% BELOW\n",
                    path.c_str(), value, lo, delta_pct);
        if (warn_only) {
          std::printf("::warning title=bench floor::%s at %.2f, below the "
                      "%.2f floor\n",
                      path.c_str(), value, lo);
        }
      } else {
        std::printf("%-48s %14.2f  floor %14.2f  %+.1f%% ok\n", path.c_str(),
                    value, lo, delta_pct);
      }
    }
    if (below > 0 && !warn_only) return 1;
    return 0;
  } catch (const grunt::json::Error& e) {
    std::fprintf(stderr, "grunt_bench_diff: %s\n", e.what());
    return 2;
  }
}
