// Spec lint / dump tool, run in CI against every shipped specs/ file.
//
//   grunt_spec_check FILE...          parse + build every spec file; for the
//                                     builtin-named ones, also check they
//                                     are structurally identical to the
//                                     registry's factory output
//   grunt_spec_check --dump-builtin NAME [FILE]
//                                     dump a builtin scenario's spec (stdout
//                                     or FILE) — how specs/ is (re)generated
//   grunt_spec_check --list           list builtin scenario names

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "scenario/loader.h"
#include "scenario/registry.h"
#include "scenario/spec.h"

using namespace grunt;

namespace {

// specs/<name>.json shadows the builtin <name>; drift between the shipped
// file and the code factory is a CI failure.
std::string BuiltinNameForPath(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::string suffix = ".json";
  if (base.size() > suffix.size() &&
      base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
    base.resize(base.size() - suffix.size());
  }
  return base;
}

int CheckFile(const std::string& path) {
  const scenario::ScenarioSpec spec = scenario::LoadScenarioFile(path);
  // Loading is necessary but not sufficient: building resolves service
  // references and runs the Application validator.
  const auto app = scenario::BuildApplication(spec.topology);
  std::string note;
  if (auto builtin = scenario::MakeBuiltin(BuiltinNameForPath(path))) {
    if (spec != *builtin) {
      std::fprintf(stderr,
                   "%s: drifted from the builtin \"%s\" (regenerate with "
                   "--dump-builtin)\n",
                   path.c_str(), BuiltinNameForPath(path).c_str());
      return 1;
    }
    note = ", matches builtin";
  }
  // Round-trip stability: dump(parse(dump)) == dump.
  const std::string dumped = scenario::DumpScenario(spec);
  if (scenario::DumpScenario(scenario::ParseScenario(dumped)) != dumped) {
    std::fprintf(stderr, "%s: dump/parse round-trip is not stable\n",
                 path.c_str());
    return 1;
  }
  std::printf("%s: ok (%zu services, %zu endpoints%s)\n", path.c_str(),
              app.service_count(), app.request_type_count(), note.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
      std::printf("%s", scenario::ListScenariosText().c_str());
      return 0;
    }
    if (argc >= 3 && std::strcmp(argv[1], "--dump-builtin") == 0) {
      auto spec = scenario::MakeBuiltin(argv[2]);
      if (!spec) {
        std::fprintf(stderr, "unknown builtin \"%s\"; builtins:\n%s", argv[2],
                     scenario::ListScenariosText().c_str());
        return 2;
      }
      if (argc >= 4) {
        scenario::SaveScenarioFile(argv[3], *spec);
        std::printf("wrote %s\n", argv[3]);
      } else {
        std::printf("%s", scenario::DumpScenario(*spec).c_str());
      }
      return 0;
    }
    if (argc < 2) {
      std::fprintf(stderr,
                   "usage: grunt_spec_check FILE...\n"
                   "       grunt_spec_check --dump-builtin NAME [FILE]\n"
                   "       grunt_spec_check --list\n");
      return 2;
    }
    int failures = 0;
    for (int i = 1; i < argc; ++i) failures += CheckFile(argv[i]);
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grunt_spec_check: %s\n", e.what());
    return 1;
  }
}
