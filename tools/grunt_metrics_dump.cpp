// Telemetry-plane dump tool: deploy a scenario under its configured
// workload + operator stack, run it for a stretch of simulated time, and
// emit the cluster's full metrics-registry snapshot as JSON — the same
// byte-stable exporter the benches use for their GRUNT_METRICS_JSON
// artifacts, runnable standalone for quick observability checks.
//
//   grunt_metrics_dump --scenario=<name|file> [--seconds=N] [--seed=S]
//                      [--out=FILE]
//   grunt_metrics_dump --list-scenarios
//
// Defaults: 30 simulated seconds, seed 7, stdout.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "rig.h"
#include "util/json.h"

using namespace grunt;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario=<name|file> [--seconds=N] [--seed=S] "
               "[--out=FILE]\n       %s --list-scenarios\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  long long seconds = 30;
  unsigned long long seed = 7;
  std::string out_path;
  // ParseScenarioArgs handles --scenario/--list-scenarios; the rest here.
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seconds=", 10) == 0) {
      seconds = std::atoll(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--scenario", 10) == 0 ||
               std::strcmp(arg, "--list-scenarios") == 0) {
      if (std::strcmp(arg, "--scenario") == 0) ++i;  // consumes a value
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }
  if (seconds <= 0) {
    std::fprintf(stderr, "--seconds must be positive\n");
    return 2;
  }

  auto scenario_args = bench::ParseScenarioArgs(argc, argv);
  if (scenario_args.should_exit) return scenario_args.exit_code;
  if (scenario_args.scenario == nullptr) return Usage(argv[0]);

  try {
    bench::ScenarioRig rig(*scenario_args.scenario, seed);
    rig.RunUntil(Sec(seconds));
    const json::Value snapshot =
        rig.cluster().telemetry().metrics().Snapshot();
    if (out_path.empty()) {
      std::printf("%s\n", snapshot.Dump(2).c_str());
    } else {
      json::WriteFile(out_path, snapshot);
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
