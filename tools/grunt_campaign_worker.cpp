// Remote campaign worker: joins a CampaignExecutor's socket backend from
// this (or any other) machine and serves the registered bench job kinds
// over the same length-prefixed frame protocol the process backend uses.
//
//   grunt_campaign_worker --connect HOST:PORT [--name NAME]
//       Connect to a bench running with GRUNT_BENCH_BACKEND=socket and
//       serve jobs until the dispatcher shuts the campaign down.
//   grunt_campaign_worker --list-kinds
//       Print the job kinds this worker can serve, one per line.
//   grunt_campaign_worker --selfcheck
//       Fast end-to-end differential check used by CI: runs the same
//       mini-campaign batch on the thread backend, the process backend (1
//       and N workers) and the socket backend (an in-process worker thread
//       joining over loopback), verifies every backend returns bit-identical
//       results, and verifies a worker crash fails only its own job with a
//       diagnosable error. Exits 0 on pass, 1 on fail.
//
// Exit codes (--connect): 0 clean shutdown, 2 protocol violation,
// 3 connect failure.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "campaign_jobs.h"
#include "dist/campaign_executor.h"
#include "dist/job_registry.h"
#include "dist/worker_loop.h"
#include "util/json.h"

namespace {

using namespace grunt;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT [--name NAME]\n"
               "       %s --list-kinds\n"
               "       %s --selfcheck\n",
               argv0, argv0, argv0);
  return 64;
}

bool Check(bool ok, const char* what, int* failures) {
  std::printf("%-60s %s\n", what, ok ? "PASS" : "FAIL");
  if (!ok) ++*failures;
  return ok;
}

std::vector<std::uint64_t> HashesOf(const std::vector<json::Value>& raw) {
  std::vector<std::uint64_t> out;
  out.reserve(raw.size());
  for (const auto& r : raw) {
    out.push_back(bench::HashFromHex(r.At("hash").AsString()));
  }
  return out;
}

std::vector<dist::JobSpec> MiniJobs(std::size_t n) {
  std::vector<dist::JobSpec> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(dist::JobSpec{json::Value(json::Object{}), i});
  }
  return jobs;
}

std::vector<std::uint64_t> RunMiniOn(dist::Backend backend,
                                     unsigned workers, std::size_t n) {
  dist::ExecutorConfig cfg;
  cfg.backend = backend;
  cfg.workers = workers;
  dist::CampaignExecutor exec(cfg);
  return HashesOf(exec.Run("mini_campaign", MiniJobs(n)));
}

/// CI's campaign smoke. Fork-based phases run before any thread is created
/// (fork from a multi-threaded process is where sanitizers get unhappy);
/// the socket phase, which needs a worker thread, runs last.
int SelfCheck() {
  constexpr std::size_t kJobs = 6;
  int failures = 0;

  // Reference: serial in-process run.
  std::vector<std::uint64_t> expect;
  for (std::size_t i = 0; i < kJobs; ++i) {
    expect.push_back(bench::MiniCampaignHash(i));
  }

  // Process backend, 1 worker and N workers, both bit-identical.
  Check(RunMiniOn(dist::Backend::kProcess, 1, kJobs) == expect,
        "process backend (1 worker) bit-identical", &failures);
  Check(RunMiniOn(dist::Backend::kProcess, 3, kJobs) == expect,
        "process backend (3 workers) bit-identical", &failures);

  // Crash containment: the crashing kind kills its worker mid-job; exactly
  // that job must fail, with the job index, kind and backend in the error,
  // and every other job must still succeed (the lane respawns).
  {
    dist::ExecutorConfig cfg;
    cfg.backend = dist::Backend::kProcess;
    cfg.workers = 2;
    dist::CampaignExecutor exec(cfg);
    std::vector<dist::JobSpec> jobs = MiniJobs(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
      json::Object o;
      o.emplace_back("crash", i == 2);
      jobs[i].args = json::Value(std::move(o));
    }
    const auto outcomes = exec.RunAll("selfcheck_maybe_crash", jobs);
    bool others_ok = outcomes.size() == kJobs;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (i == 2) continue;
      others_ok = others_ok && outcomes[i].ok;
    }
    Check(others_ok, "worker crash: all other jobs still succeed",
          &failures);
    const bool crashed_diagnosed =
        outcomes.size() == kJobs && !outcomes[2].ok &&
        outcomes[2].error.find("job 2") != std::string::npos &&
        outcomes[2].error.find("selfcheck_maybe_crash") !=
            std::string::npos &&
        outcomes[2].error.find("process") != std::string::npos;
    Check(crashed_diagnosed,
          "worker crash: failed job carries index/kind/backend", &failures);
    if (!crashed_diagnosed && outcomes.size() == kJobs) {
      std::fprintf(stderr, "  error was: %s\n", outcomes[2].error.c_str());
    }
    bool restarted = false;
    for (const auto& st : exec.worker_stats()) restarted |= st.restarts > 0;
    Check(restarted, "worker crash: lane respawned for remaining jobs",
          &failures);
  }

  // Socket backend: an in-process worker thread joins over loopback and the
  // results still match bit-for-bit. The executor lives in a nested scope
  // so its destructor (which sends kShutdown and closes the connection,
  // ending the worker loop) runs before the join.
  {
    std::thread worker;
    std::vector<std::uint64_t> got;
    {
      dist::ExecutorConfig cfg;
      cfg.backend = dist::Backend::kSocket;
      cfg.workers = 1;
      cfg.accept_timeout_sec = 30.0;
      dist::CampaignExecutor exec(cfg);
      const std::uint16_t port = exec.BindListener();
      worker = std::thread([port] {
        dist::RunSocketWorker("127.0.0.1", port, "selfcheck-worker");
      });
      try {
        got = HashesOf(exec.Run("mini_campaign", MiniJobs(kJobs)));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "socket selfcheck: %s\n", e.what());
      }
    }
    worker.join();
    Check(got == expect, "socket backend (loopback worker) bit-identical",
          &failures);
  }

  std::printf("%s: %d failure(s)\n", failures == 0 ? "SELFCHECK PASS"
                                                   : "SELFCHECK FAIL",
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  grunt::bench::RegisterCampaignJobs();
  // Crash kind for --selfcheck: registered here (not in the bench library)
  // so production campaigns can't trip over it.
  grunt::dist::JobRegistry::Global().Register(
      "selfcheck_maybe_crash",
      [](const json::Value& args, std::uint64_t seed) -> json::Value {
        if (const json::Value* c = args.Find("crash");
            c != nullptr && c->AsBool()) {
          std::fflush(nullptr);
          ::_exit(134);  // simulate an abort without the core-dump noise
        }
        json::Object o;
        o.emplace_back("hash",
                       grunt::bench::HashToHex(
                           grunt::bench::MiniCampaignHash(seed)));
        return json::Value(std::move(o));
      });

  std::string connect, name = "worker";
  bool list_kinds = false, selfcheck = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-kinds") {
      list_kinds = true;
    } else if (arg == "--selfcheck") {
      selfcheck = true;
    } else if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(10);
    } else if (arg == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else if (arg.rfind("--name=", 0) == 0) {
      name = arg.substr(7);
    } else {
      return Usage(argv[0]);
    }
  }

  if (list_kinds) {
    for (const auto& kind : grunt::dist::JobRegistry::Global().Kinds()) {
      std::printf("%s\n", kind.c_str());
    }
    return 0;
  }
  if (selfcheck) return SelfCheck();
  if (connect.empty()) return Usage(argv[0]);

  const std::size_t colon = connect.find_last_of(':');
  if (colon == std::string::npos || colon + 1 >= connect.size()) {
    std::fprintf(stderr, "--connect wants HOST:PORT, got \"%s\"\n",
                 connect.c_str());
    return 64;
  }
  const std::string host = connect.substr(0, colon);
  const long port = std::strtol(connect.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port in \"%s\"\n", connect.c_str());
    return 64;
  }
  return grunt::dist::RunSocketWorker(
      host, static_cast<std::uint16_t>(port), name);
}
