// Graceful degradation as a Grunt countermeasure: re-runs the Table-1 damage
// campaign against the SocialNetwork deployment with each defense mechanism
// toggled —
//
//   undefended    the paper configuration (no fault tolerance at all);
//   timeouts      the retry-at-edge/fail-fast-core RPC discipline alone:
//                 interior edges time out fast and never retry, only the
//                 gateway edge retries, the client waits out the 1 s
//                 end-to-end deadline;
//   bulkhead      timeouts + bulkheads (per-downstream quotas AND bounded
//                 arrival queues — an unbounded queue at the shared
//                 upstream is where a caller timeout strands orphan work);
//   adaptive      timeouts + AIMD per-edge concurrency limits;
//   shed          timeouts + deadline-aware admission shedding;
//   bulk+adapt    timeouts + bulkheads + adaptive limits;
//   full          DefendedDeployment(): all of the above.
//
// The attack is driven from a ground-truth profile (identical and maximally
// informed across configs), so the table isolates what the DEFENSE changes,
// not what the profiler sees. Two axes matter: the residual RT amplification
// under attack (the damage the paper maximizes) and legitimate goodput under
// attack relative to the undefended no-attack baseline (the collateral cost
// of shedding/fast-failing real traffic).
//
// Expected shape: undefended amplifies avg RT >10x. Timeouts ALONE make the
// outage worse, not better — timed-out work is still queued downstream and
// the retries multiply it, which is the paper's execution-dependency argument
// turned against the defender. The gates are what sever the dependency:
// bulkheads alone hold amplification under 3x, and bulkheads + adaptive
// limits do so with attack-window goodput within 5% of the undefended
// no-attack baseline; the full stack adds deadline shedding, trading a
// little goodput for a tighter tail.
//
// Writes a JSON artifact (path via GRUNT_BENCH_DEFENSE_JSON, default
// BENCH_defense.json). `--smoke` runs a shortened campaign on a smaller
// population (CI sanitizer lane); its numbers are not the reference ones.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "rig.h"
#include "scenario/builtin_apps.h"
#include "scenario/loader.h"
#include "util/parallel_runner.h"

using namespace grunt;
using namespace grunt::bench;

namespace {

struct DefenseConfig {
  std::string name;
  scenario::DeploymentParams params;
};

std::vector<DefenseConfig> BuildMatrix(bool smoke) {
  // The mechanism knobs come from the reference preset so every row tests
  // the same numbers the shipped defended scenario deploys.
  const scenario::DeploymentParams ref = scenario::DefendedDeployment();

  scenario::DeploymentParams undefended;
  scenario::DeploymentParams timeouts;
  timeouts.default_rpc = ref.default_rpc;
  timeouts.edge_rpc = ref.edge_rpc;
  timeouts.client_rpc = ref.client_rpc;
  timeouts.endpoint_deadline = ref.endpoint_deadline;

  scenario::DeploymentParams bulkhead = timeouts;
  bulkhead.bulkhead_per_downstream = ref.bulkhead_per_downstream;
  bulkhead.max_queue_per_replica = ref.max_queue_per_replica;
  scenario::DeploymentParams adaptive = timeouts;
  adaptive.adaptive_limit = ref.adaptive_limit;
  scenario::DeploymentParams shed = timeouts;
  shed.deadline_shed = ref.deadline_shed;
  scenario::DeploymentParams bulk_adapt = bulkhead;
  bulk_adapt.adaptive_limit = ref.adaptive_limit;

  std::vector<DefenseConfig> matrix = {{"undefended", undefended},
                                       {"timeouts", timeouts},
                                       {"bulkhead", bulkhead},
                                       {"adaptive", adaptive},
                                       {"shed", shed},
                                       {"bulk+adapt", bulk_adapt},
                                       {"full", ref}};
  if (smoke) {
    // Endpoints only: the cheap sanity lane keeps the two headline rows.
    matrix = {{"undefended", undefended}, {"bulk+adapt", bulk_adapt},
              {"full", ref}};
    for (auto& cfg : matrix) cfg.params.users = 1500;
  }
  return matrix;
}

template <typename T>
T MedianOf(std::vector<T> v) {
  auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  return *mid;
}

/// Freezes the reference campaign into an open-loop schedule: per path, the
/// median burst volume and median inter-burst spacing actually fired during
/// the attack window.
std::vector<attack::GroupReplay> DeriveReplay(
    const attack::GruntReport& report) {
  std::vector<attack::GroupReplay> replay;
  for (const auto& g : report.groups) {
    attack::GroupReplay r;
    r.paths_used = g.paths_used;
    for (const auto& plan : g.plans) {
      std::vector<std::int32_t> counts;
      std::vector<SimTime> starts;
      for (const auto& b : g.bursts) {
        if (b.url != plan.url) continue;
        counts.push_back(b.count);
        starts.push_back(b.at);
      }
      attack::PathPlan p = plan;
      SimDuration interval = 0;
      if (!counts.empty()) p.count = MedianOf(counts);
      if (starts.size() >= 2) {
        std::sort(starts.begin(), starts.end());
        std::vector<SimDuration> gaps;
        for (std::size_t i = 1; i < starts.size(); ++i) {
          gaps.push_back(starts[i] - starts[i - 1]);
        }
        interval = MedianOf(gaps);
      }
      r.plans.push_back(p);
      r.intervals.push_back(interval);
    }
    replay.push_back(std::move(r));
  }
  return replay;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  Banner("Defense: dependency-aware graceful degradation vs Grunt",
         "bulkheads + adaptive limits keep avg-RT amplification <3x with "
         "attack goodput within 5% of the clean baseline");

  const auto matrix = BuildMatrix(smoke);
  const SimDuration attack_duration = smoke ? Sec(15) : Sec(60);

  // Equal attacker budget across configs: the unconstrained Table-1 campaign
  // recruits ~1.8k bots against the undefended deployment, so a 2k cap
  // leaves the reference attack unchanged while preventing a defended run
  // from being brute-forced with a 10x larger botnet.
  attack::GruntConfig attack_cfg;
  attack_cfg.botfarm.max_bots = 2000;

  // One ground-truth profile drives every campaign: the defense knobs do not
  // change the topology, so the attacker's knowledge is held constant.
  const auto truth_spec = scenario::SocialNetworkScenario(matrix[0].params);
  const auto truth_app = scenario::BuildApplication(truth_spec.topology);
  const auto profile = TruthProfile(
      truth_app, ScenarioRates(truth_app, truth_spec.workload));

  // Row 0 is THE Table-1 campaign: full calibration + feedback against the
  // undefended deployment. Its burst log is then frozen into an open-loop
  // schedule that every defended row replays verbatim — same bursts, same
  // cadence, only the deployment under them changes. (Letting the attacker
  // re-calibrate per defense answers a different question, and its
  // feedback loop — damage reads low once gates fast-fail its probes —
  // escalates straight to the stealth floor.)
  std::printf("calibrating reference campaign (%s)...\n",
              matrix[0].name.c_str());
  std::vector<CampaignResult> results(matrix.size());
  {
    auto spec = scenario::SocialNetworkScenario(matrix[0].params);
    spec.name += "-" + matrix[0].name;
    results[0] = RunScenarioCampaign(spec, attack_duration, /*seed=*/17,
                                     attack_cfg, &profile);
  }
  attack::GruntConfig replay_cfg = attack_cfg;
  replay_cfg.replay = DeriveReplay(results[0].report);

  for (std::size_t i = 1; i < matrix.size(); ++i) {
    std::printf("running %s...\n", matrix[i].name.c_str());
  }
  util::ParallelRunner pool;
  std::fprintf(stderr, "dispatching %zu replay campaigns on %u threads\n",
               matrix.size() - 1, pool.threads());
  const auto defended = pool.Map<CampaignResult>(
      matrix.size() - 1,
      [&matrix, attack_duration, &profile, &replay_cfg](std::size_t i) {
        auto spec = scenario::SocialNetworkScenario(matrix[i + 1].params);
        spec.name += "-" + matrix[i + 1].name;
        return RunScenarioCampaign(spec, attack_duration, /*seed=*/17,
                                   replay_cfg, &profile);
      });
  for (std::size_t i = 0; i < defended.size(); ++i) {
    results[i + 1] = defended[i];
  }

  // The undefended run's pre-attack window is the clean reference that
  // defended goodput is measured against.
  const double clean_goodput = results[0].base_goodput;

  Table table({"Config", "AvgRT base (ms)", "AvgRT att (ms)", "RT factor",
               "Goodput base (r/s)", "Goodput att (r/s)", "Att/clean (%)",
               "Err att (%)", "Bulkhead rej", "Limiter rej", "Sheds"});
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const CampaignResult& r = results[i];
    const double factor = r.base_rt_ms.mean() > 0
                              ? r.att_rt_ms.mean() / r.base_rt_ms.mean()
                              : 0;
    const double vs_clean =
        clean_goodput > 0 ? 100.0 * r.att_goodput / clean_goodput : 0;
    table.AddRow({matrix[i].name, Table::Num(r.base_rt_ms.mean()),
                  Table::Num(r.att_rt_ms.mean()), Table::Num(factor, 2),
                  Table::Num(r.base_goodput, 1), Table::Num(r.att_goodput, 1),
                  Table::Num(vs_clean, 1),
                  Table::Num(100.0 * r.att_error_rate, 1),
                  Table::Int(r.bulkhead_rejections),
                  Table::Int(r.limiter_rejections),
                  Table::Int(r.deadline_sheds)});
  }
  std::printf("\nDamage campaign vs graceful-degradation deployments "
              "(white-box attack, seed 17%s)\n",
              smoke ? ", SMOKE run" : "");
  table.Print(std::cout);
  std::printf("\nlegit outcomes over the whole run (ok/timeout/rejected/"
              "deadline/failed) and attack shape:\n");
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const auto& lo = results[i].legit_outcomes;
    const CampaignResult& r = results[i];
    std::printf("  %-10s %llu / %llu / %llu / %llu / %llu | bots %zu, "
                "attack reqs %llu, mean PMB %.0f ms\n",
                matrix[i].name.c_str(),
                static_cast<unsigned long long>(lo[0]),
                static_cast<unsigned long long>(lo[1]),
                static_cast<unsigned long long>(lo[2]),
                static_cast<unsigned long long>(lo[3]),
                static_cast<unsigned long long>(lo[4]), r.bots,
                static_cast<unsigned long long>(r.report.attack_requests),
                r.mean_pmb_ms);
  }
  std::printf("\ntargets: bulk+adapt RT factor < 3.0 and att/clean goodput "
              ">= 95%%; undefended factor is the paper's >10x reference\n");

  const char* path = std::getenv("GRUNT_BENCH_DEFENSE_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_defense.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": 1,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"attack_duration_s\": %.0f,\n",
               ToSeconds(attack_duration));
  std::fprintf(f, "  \"clean_goodput\": %.2f,\n", clean_goodput);
  std::fprintf(f, "  \"configs\": {\n");
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const CampaignResult& r = results[i];
    const double factor = r.base_rt_ms.mean() > 0
                              ? r.att_rt_ms.mean() / r.base_rt_ms.mean()
                              : 0;
    std::fprintf(f, "    \"%s\": {\n", matrix[i].name.c_str());
    std::fprintf(f, "      \"base_rt_ms\": %.3f,\n", r.base_rt_ms.mean());
    std::fprintf(f, "      \"att_rt_ms\": %.3f,\n", r.att_rt_ms.mean());
    std::fprintf(f, "      \"rt_factor\": %.3f,\n", factor);
    std::fprintf(f, "      \"base_goodput\": %.2f,\n", r.base_goodput);
    std::fprintf(f, "      \"att_goodput\": %.2f,\n", r.att_goodput);
    std::fprintf(f, "      \"att_error_rate\": %.4f,\n", r.att_error_rate);
    std::fprintf(f,
                 "      \"legit_outcomes\": [%llu, %llu, %llu, %llu, %llu],\n",
                 static_cast<unsigned long long>(r.legit_outcomes[0]),
                 static_cast<unsigned long long>(r.legit_outcomes[1]),
                 static_cast<unsigned long long>(r.legit_outcomes[2]),
                 static_cast<unsigned long long>(r.legit_outcomes[3]),
                 static_cast<unsigned long long>(r.legit_outcomes[4]));
    std::fprintf(f, "      \"bulkhead_rejections\": %lld,\n",
                 static_cast<long long>(r.bulkhead_rejections));
    std::fprintf(f, "      \"limiter_rejections\": %lld,\n",
                 static_cast<long long>(r.limiter_rejections));
    std::fprintf(f, "      \"deadline_sheds\": %lld,\n",
                 static_cast<long long>(r.deadline_sheds));
    std::fprintf(f, "      \"bots\": %zu\n", r.bots);
    std::fprintf(f, "    }%s\n", i + 1 < matrix.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
  return 0;
}
